// Flickr case study (tutorial §6 + §5b): generate the synthetic
// photo/tag/user/group tagging graph, label a handful of photos, and
// propagate labels over the heterogeneous network to classify every
// photo, tag, and group.
package main

import (
	"fmt"

	"hinet/internal/classify"
	"hinet/internal/flickr"
	"hinet/internal/stats"
)

func main() {
	corpus := flickr.Generate(stats.NewRNG(21), flickr.Config{})
	n := corpus.Net
	fmt.Printf("Flickr corpus: %d photos, %d tags, %d users, %d groups\n",
		n.Count(flickr.TypePhoto), n.Count(flickr.TypeTag),
		n.Count(flickr.TypeUser), n.Count(flickr.TypeGroup))

	k := corpus.Categories()
	seeds := classify.SampleSeeds(stats.NewRNG(22), flickr.TypePhoto, corpus.PhotoCat, k, 12)
	fmt.Printf("seeding %d labeled photos (%d per category)\n", len(seeds), 12)

	scores := classify.Propagate(n, k, seeds, classify.Options{})

	seeded := map[int]bool{}
	for _, s := range seeds {
		seeded[s.ID] = true
	}
	photoPred := classify.Labels(scores[flickr.TypePhoto])
	hit, total := 0, 0
	for p, cat := range corpus.PhotoCat {
		if seeded[p] {
			continue
		}
		total++
		if photoPred[p] == cat {
			hit++
		}
	}
	fmt.Printf("unlabeled photo accuracy: %.3f (%d/%d)\n", float64(hit)/float64(total), hit, total)

	groupPred := classify.Labels(scores[flickr.TypeGroup])
	ghit := 0
	for g, cat := range corpus.GroupCat {
		if groupPred[g] == cat {
			ghit++
		}
	}
	fmt.Printf("group theme accuracy:     %.3f (%d/%d)\n",
		float64(ghit)/float64(len(corpus.GroupCat)), ghit, len(corpus.GroupCat))

	// Show the strongest tags discovered for each category.
	fmt.Println("\nhighest-scoring tags per category:")
	for cat := 0; cat < k; cat++ {
		col := make([]float64, n.Count(flickr.TypeTag))
		for tag := range col {
			col[tag] = scores[flickr.TypeTag][tag][cat]
		}
		fmt.Printf("  category %d:", cat)
		for _, tag := range stats.TopK(col, 5) {
			fmt.Printf(" %s", n.Name(flickr.TypeTag, tag))
		}
		fmt.Println()
	}
}
