// Truth discovery case study (tutorial §3d): synthesize websites that
// assert conflicting facts, run TruthFinder, and show how link analysis
// separates trustworthy providers from unreliable ones — including the
// copycat scenario where majority voting is fooled.
package main

import (
	"fmt"
	"sort"

	"hinet/internal/stats"
	"hinet/internal/truth"
)

func main() {
	// Scenario 1: independent providers with mixed reliability.
	s := truth.Synthesize(stats.NewRNG(31), truth.SynthConfig{
		Objects: 120, Websites: 30, ClaimsPerSite: 50,
		GoodSites: 0.6, GoodErr: 0.08, BadErr: 0.6,
	})
	r := truth.Run(s.Net, truth.Options{})
	fmt.Printf("independent providers: TruthFinder=%.3f majority=%.3f (converged in %d iters)\n",
		s.Accuracy(truth.PredictTruth(s.Net, r.Confidence)),
		s.Accuracy(truth.MajorityVote(s.Net)), r.Iterations)

	// Trust separation.
	type site struct {
		id    int
		trust float64
		good  bool
	}
	var sites []site
	for w, t := range r.Trust {
		sites = append(sites, site{w, t, s.SiteGood[w]})
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].trust > sites[j].trust })
	fmt.Println("most trusted sites (reliability in parentheses):")
	for _, st := range sites[:5] {
		fmt.Printf("  site %2d trust=%.3f (good=%v)\n", st.id, st.trust, st.good)
	}
	fmt.Println("least trusted sites:")
	for _, st := range sites[len(sites)-5:] {
		fmt.Printf("  site %2d trust=%.3f (good=%v)\n", st.id, st.trust, st.good)
	}

	// Scenario 2: copycat mirrors amplify one bad site.
	s2 := truth.Synthesize(stats.NewRNG(32), truth.SynthConfig{
		Objects: 80, Websites: 20, ClaimsPerSite: 40,
		GoodSites: 0.5, GoodErr: 0.05, BadErr: 0.65, Copycats: 6,
	})
	plain := truth.Run(s2.Net, truth.Options{})
	fmt.Printf("\nwith 6 copycat mirrors:\n")
	fmt.Printf("  plain TruthFinder   %.3f\n", s2.Accuracy(truth.PredictTruth(s2.Net, plain.Confidence)))
	fmt.Printf("  majority voting     %.3f\n", s2.Accuracy(truth.MajorityVote(s2.Net)))
	s2.Net.SiteWeight = truth.DetectCopycats(s2.Net, 0.9)
	guarded := truth.Run(s2.Net, truth.Options{})
	fmt.Printf("  TF + copy detection %.3f\n", s2.Accuracy(truth.PredictTruth(s2.Net, guarded.Confidence)))
}
