// Quickstart: build a tiny heterogeneous information network by hand,
// run RankClus on its bi-typed venue–author view, and print the
// integrated clusters + rankings. Start here.
package main

import (
	"fmt"

	"hinet/internal/core"
	"hinet/internal/hin"
	"hinet/internal/stats"
)

func main() {
	// A miniature bibliographic network: two research communities.
	// Venues v0,v1 belong to "databases", v2,v3 to "graphics"; authors
	// publish mostly inside their community.
	n := hin.NewNetwork()
	venues := []string{"sigmod", "vldb", "icde", "siggraph", "eurographics", "vis"}
	for _, v := range venues {
		n.AddObject("venue", v)
	}
	authors := []string{"ada", "bob", "eve", "dan", "gil", "hal"}
	for _, a := range authors {
		n.AddObject("author", a)
	}
	// (venue, author, papers) triples: ada/bob/eve are DB people,
	// dan/gil/hal are graphics people, eve strays once.
	links := []struct {
		venue  string
		author string
		papers float64
	}{
		{"sigmod", "ada", 6}, {"sigmod", "bob", 4}, {"sigmod", "eve", 2},
		{"vldb", "ada", 3}, {"vldb", "bob", 5}, {"vldb", "eve", 3},
		{"icde", "ada", 2}, {"icde", "bob", 2}, {"icde", "eve", 4},
		{"siggraph", "dan", 7}, {"siggraph", "gil", 3}, {"siggraph", "hal", 2},
		{"eurographics", "dan", 2}, {"eurographics", "gil", 4}, {"eurographics", "hal", 4},
		{"vis", "dan", 3}, {"vis", "gil", 3}, {"vis", "hal", 3},
		{"siggraph", "eve", 1}, // a stray cross-community paper
	}
	for _, l := range links {
		n.AddLink("venue", n.Lookup("venue", l.venue), "author", n.Lookup("author", l.author), l.papers)
	}

	// RankClus: clustering and ranking, computed together. Tiny
	// networks are sensitive to the random initial partition, so use a
	// handful of restarts; the best model by link log-likelihood wins.
	m := core.Run(stats.NewRNG(10), n.Bipartite("venue", "author"), core.Options{
		K:        2,
		Method:   core.AuthorityRanking,
		Restarts: 8,
	})

	for k := 0; k < m.K; k++ {
		fmt.Printf("cluster %d\n", k)
		fmt.Print("  venues :")
		for _, v := range m.TopX(k, 3) {
			fmt.Printf(" %s(%.2f)", n.Name("venue", v), m.RankX[k][v])
		}
		fmt.Print("\n  authors:")
		for _, a := range m.TopY(k, 3) {
			fmt.Printf(" %s(%.2f)", n.Name("author", a), m.RankY[k][a])
		}
		fmt.Println()
	}
	fmt.Println("\nposterior (soft membership) per venue:")
	for v, p := range m.Posterior {
		fmt.Printf("  %-13s %v\n", n.Name("venue", v), fmtVec(p))
	}
}

func fmtVec(p []float64) string {
	s := "["
	for i, v := range p {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", v)
	}
	return s + "]"
}
