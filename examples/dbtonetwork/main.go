// Database → information network walk-through (tutorial §1 and §7c):
// build a small relational database, convert tuples + foreign keys into
// a heterogeneous information network, mine it (CrossMine rules,
// CrossClus guided clusters), and OLAP the network by dimensions.
package main

import (
	"fmt"

	"hinet/internal/crossclus"
	"hinet/internal/crossmine"
	"hinet/internal/eval"
	"hinet/internal/olap"
	"hinet/internal/relational"
	"hinet/internal/stats"
)

func main() {
	s := relational.SyntheticCustomers(stats.NewRNG(41), relational.SynthConfig{Customers: 400})

	// 1. The database as a network.
	net := s.DB.Network(relational.NetworkOptions{
		CategoricalAsObjects: []string{"branch.region", "transaction.kind"},
	})
	fmt.Println("database as an information network:")
	for _, t := range net.Types() {
		fmt.Printf("  %-18s %5d objects\n", t, net.Count(t))
	}
	fmt.Println("  schema:", net.SchemaEdges())

	// 2. Cross-relational classification: the class lives in joins.
	var train, test []int
	for i := 0; i < 400; i++ {
		if i < 240 {
			train = append(train, i)
		} else {
			test = append(test, i)
		}
	}
	m := crossmine.Train(s.DB, "customer", s.Class, train, crossmine.Options{})
	fmt.Printf("\nCrossMine learned %d rules, test accuracy %.3f:\n", len(m.Rules), m.Accuracy(s.Class, test))
	for i, r := range m.Rules {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(m.Rules)-3)
			break
		}
		fmt.Printf("  rule %d (prec %.2f, cover %d):", i, r.Precision, r.Coverage)
		for _, l := range r.Literals {
			fmt.Printf(" [%s]", l)
		}
		fmt.Println()
	}
	st := crossmine.TrainSingleTable(s.DB, "customer", s.Class, train)
	fmt.Printf("  flattened 1R baseline accuracy: %.3f\n", st.Accuracy(s.DB, "customer", s.Class, test))

	// 3. User-guided clustering across relations.
	g := crossclus.Run(stats.NewRNG(42), s.DB, "customer", "profile", crossclus.Options{K: 3})
	fmt.Printf("\nCrossClus guided by customer.profile: NMI to latent groups %.3f\n",
		eval.NMI(s.Group, g.Assign))
	fmt.Println("  selected features by weight:")
	for i, f := range g.Features {
		if i == 4 {
			break
		}
		fmt.Printf("    %-32s %.3f\n", f.Desc, f.Weight)
	}

	// 4. Network OLAP: customer-branch links diced by region × kind of
	// the customer's dominant transaction.
	trans := s.DB.Table("transaction")
	domKind := make(map[int]string)
	counts := map[int]map[string]int{}
	for _, row := range trans.Rows {
		c := row[0].(int)
		kind := row[1].(string)
		if counts[c] == nil {
			counts[c] = map[string]int{}
		}
		counts[c][kind]++
		if counts[c][kind] > counts[c][domKind[c]] {
			domKind[c] = kind
		}
	}
	kinds := []string{"credit", "debit", "transfer"}
	regions := []string{"north", "south", "east"}
	kindIdx := map[string]int{"credit": 0, "debit": 1, "transfer": 2}
	regionIdx := map[string]int{"north": 0, "south": 1, "east": 2}
	cube := olap.NewCube([]olap.Dimension{
		{Name: "region", Values: regions},
		{Name: "kind", Values: kinds},
	}, len(s.DB.Table("customer").Rows), len(s.DB.Table("branch").Rows))
	branch := s.DB.Table("branch")
	for c, row := range s.DB.Table("customer").Rows {
		b := row[0].(int)
		region := branch.Rows[b][0].(string)
		cube.Add(olap.Event{
			Src: c, Dst: b, Weight: 1,
			Coords: []int{regionIdx[region], kindIdx[domKind[c]]},
		})
	}
	fmt.Println("\nnetwork OLAP: customer-branch links by region (kind rolled up):")
	for _, r := range cube.RollUp(1).DrillCells(0) {
		fmt.Printf("  region=%-6s links=%4.0f branches=%d customers=%d\n",
			r.Member, r.TotalWeight, r.DstNodes, r.SrcNodes)
	}
}
