// DBLP case study (tutorial §6): generate the four-area synthetic DBLP
// corpus, run NetClus over its star schema, and print each net-cluster's
// conditional rankings of venues, authors and terms — the
// "research areas discovered with their ranked members" demonstration.
package main

import (
	"fmt"

	"hinet/internal/dblp"
	"hinet/internal/eval"
	"hinet/internal/netclus"
	"hinet/internal/stats"
)

func main() {
	corpus := dblp.Generate(stats.NewRNG(11), dblp.Config{})
	fmt.Printf("DBLP corpus: %d papers, %d authors, %d venues, %d terms\n",
		corpus.Net.Count(dblp.TypePaper), corpus.Net.Count(dblp.TypeAuthor),
		corpus.Net.Count(dblp.TypeVenue), corpus.Net.Count(dblp.TypeTerm))

	m := netclus.Run(stats.NewRNG(12), corpus.Star(), netclus.Options{
		K:        corpus.Areas(),
		Restarts: 2,
	})
	fmt.Printf("NetClus: %d net-clusters, converged=%v after %d iterations\n",
		m.K, m.Converged, m.Iterations)
	fmt.Printf("quality: paper NMI=%.3f venue NMI=%.3f author NMI=%.3f\n\n",
		eval.NMI(corpus.PaperArea, m.AssignCenter),
		eval.NMI(corpus.VenueArea, m.AssignAttr(1)),
		eval.NMI(corpus.AuthorArea, m.AssignAttr(0)))

	for k := 0; k < m.K; k++ {
		fmt.Printf("net-cluster %d (prior %.2f)\n", k, m.Prior[k])
		fmt.Print("  venues:")
		for _, v := range m.TopAttr(1, k, 4) {
			fmt.Printf(" %s(%.3f)", corpus.Net.Name(dblp.TypeVenue, v), m.RankDist[1][k][v])
		}
		fmt.Print("\n  authors:")
		for _, a := range m.TopAttr(0, k, 5) {
			fmt.Printf(" %s", corpus.Net.Name(dblp.TypeAuthor, a))
		}
		fmt.Print("\n  terms:")
		for _, t := range m.TopAttr(2, k, 6) {
			fmt.Printf(" %s", corpus.Net.Name(dblp.TypeTerm, t))
		}
		fmt.Println()
	}
}
