// Package chaos is a deterministic fault-injection harness for the
// serving tier. An Injector is configured with a seed and a set of
// fault patterns — kernel slowdowns, request latency spikes, error
// bursts — and hands out per-call decisions that are a pure function of
// (seed, call index). Two runs with the same configuration and the same
// request sequence therefore inject exactly the same faults, which is
// what makes the overload-protection tests (shed-not-collapse, brownout
// entry/exit, deadline propagation) reproducible instead of flaky.
//
// The serving layer consumes an Injector through Options.Chaos
// (internal/serve): request-path faults fire in the route wrapper
// before admission, kernel delays fire in the batch dispatcher around
// the BatchTopK call. All methods are nil-receiver-safe, so production
// code paths carry no conditionals beyond a pointer check.
package chaos

import (
	"sync/atomic"
	"time"
)

// Config declares the fault patterns. Every pattern is counter-driven:
// with Every = E and Burst = B, calls n where n mod E < B are affected
// (n counts from 0), so faults arrive in deterministic bursts of B
// every E calls. Zero values disable a pattern.
type Config struct {
	// Seed perturbs the jitter stream; two injectors with different
	// seeds but the same patterns spike the same calls with different
	// jitter amplitudes.
	Seed int64

	// KernelDelay is added to every batched kernel dispatch — the knob
	// that pins a test server's capacity to a known, machine-independent
	// value. KernelJitter adds a deterministic pseudo-random extra in
	// [0, KernelJitter) per dispatch.
	KernelDelay  time.Duration
	KernelJitter time.Duration

	// ErrorEvery/ErrorBurst inject forced 500s on the request path:
	// of every ErrorEvery heavy requests, the first ErrorBurst fail.
	ErrorEvery int
	ErrorBurst int

	// SpikeEvery/SpikeBurst/SpikeDelay inject latency spikes on the
	// request path: of every SpikeEvery heavy requests, the first
	// SpikeBurst sleep SpikeDelay before the handler runs.
	SpikeEvery int
	SpikeBurst int
	SpikeDelay time.Duration
}

// Stats counts the faults an injector has actually delivered.
type Stats struct {
	Requests int64 // request-path decisions made
	Kernels  int64 // kernel-path decisions made
	Errors   int64 // forced errors injected
	Spikes   int64 // latency spikes injected
}

// Injector hands out deterministic fault decisions. The zero/nil
// injector injects nothing.
type Injector struct {
	cfg     Config
	reqs    atomic.Int64
	kernels atomic.Int64
	errs    atomic.Int64
	spikes  atomic.Int64
}

// New returns an injector for cfg.
func New(cfg Config) *Injector { return &Injector{cfg: cfg} }

// splitmix64 is the one-step splitmix generator: a bijective hash good
// enough to decorrelate per-call jitter from the call index.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// inBurst reports whether call n falls in the leading burst of its
// cycle.
func inBurst(n int64, every, burst int) bool {
	return every > 0 && burst > 0 && int(n%int64(every)) < burst
}

// RequestFault returns the fault decision for the next heavy request:
// whether to fail it outright and how long to stall it first. Nil-safe.
func (i *Injector) RequestFault() (fail bool, delay time.Duration) {
	if i == nil {
		return false, 0
	}
	n := i.reqs.Add(1) - 1
	if inBurst(n, i.cfg.ErrorEvery, i.cfg.ErrorBurst) {
		i.errs.Add(1)
		fail = true
	}
	if i.cfg.SpikeDelay > 0 && inBurst(n, i.cfg.SpikeEvery, i.cfg.SpikeBurst) {
		i.spikes.Add(1)
		delay = i.cfg.SpikeDelay
	}
	return fail, delay
}

// KernelDelay returns the slowdown for the next kernel dispatch:
// the configured base delay plus deterministic jitter. Nil-safe.
func (i *Injector) KernelDelay() time.Duration {
	if i == nil {
		return 0
	}
	n := i.kernels.Add(1) - 1
	d := i.cfg.KernelDelay
	if j := i.cfg.KernelJitter; j > 0 {
		d += time.Duration(splitmix64(uint64(i.cfg.Seed)^uint64(n)) % uint64(j))
	}
	return d
}

// Stats returns the injector's delivered-fault counters. Nil-safe.
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	return Stats{
		Requests: i.reqs.Load(),
		Kernels:  i.kernels.Load(),
		Errors:   i.errs.Load(),
		Spikes:   i.spikes.Load(),
	}
}
