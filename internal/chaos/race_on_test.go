//go:build race

package chaos_test

// raceEnabled reports whether the race detector is instrumenting this
// build. The overload sweep's capacity thresholds assume native-speed
// request handling and are skipped under its 10-20x slowdown.
const raceEnabled = true
