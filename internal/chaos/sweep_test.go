// Overload sweep: the end-to-end shed-not-collapse contract, driven by
// the deterministic fault injector. A chaos-slowed server is pushed to
// 4× its measured capacity open-loop; the admission limiter and shed
// paths must keep goodput near capacity with bounded admitted-request
// latency, and the server must recover to full capacity once the storm
// passes. Lives in package chaos_test (external) because serve imports
// chaos — the test composes serve + loadgen on top of it.
package chaos_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"hinet/internal/chaos"
	"hinet/internal/dblp"
	"hinet/internal/loadgen"
	"hinet/internal/serve"
)

// sweepServer boots a serving stack whose kernel cost is pinned by the
// injector, so capacity is a property of the chaos config, not the
// host: every batched top-k dispatch pays a deterministic 4ms.
func sweepServer(t *testing.T) (*serve.Server, loadgen.Target, *chaos.Injector) {
	t.Helper()
	inj := chaos.New(chaos.Config{Seed: 7, KernelDelay: 4 * time.Millisecond})
	s := serve.New(serve.Options{
		Seed: 1,
		Models: serve.ModelConfig{Corpus: dblp.Config{
			Areas:         []string{"database", "datamining"},
			VenuesPerArea: 3, AuthorsPerArea: 40, TermsPerArea: 30,
			SharedTerms: 15, Papers: 300,
		}},
		MaxBatch:        32,
		MaxConcurrent:   8,
		AdmissionFloor:  1,
		AdmissionWait:   -1, // fail fast: overload answers 503 now, not later
		SLOTargetP99:    60 * time.Millisecond,
		ControlInterval: 20 * time.Millisecond,
		Chaos:           inj,
	})
	addr, err := s.Start()
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, loadgen.NewTarget("http://" + addr), inj
}

// topkEvents builds n top-k queries cycling over the author space with
// a fixed k (k partitions the cache keyspace between phases).
func topkEvents(n, k int, rate float64) []loadgen.Event {
	evs := make([]loadgen.Event, n)
	var spacing float64
	if rate > 0 {
		spacing = 1e6 / rate // µs between arrivals
	}
	for i := range evs {
		evs[i] = loadgen.Event{
			OffsetUS: int64(float64(i) * spacing),
			Cohort:   "pathsim",
			Path:     fmt.Sprintf("/v1/pathsim/topk?id=%d&k=%d", i%80, k),
		}
	}
	return evs
}

// TestOverloadSweep: measure capacity closed-loop, offer 4× that rate
// open-loop, and hold the overload contract: goodput ≥ 80% of capacity,
// admitted p99 ≤ 2× the SLO target, queues bounded by the admission
// ceiling, full recovery afterwards.
func TestOverloadSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load test")
	}
	if raceEnabled {
		t.Skip("capacity thresholds assume native speed; race instrumentation distorts them")
	}
	s, target, inj := sweepServer(t)

	// Phase 1 — calibrate: a modest closed-loop fleet measures what the
	// chaos-pinned server can actually deliver.
	cal, err := loadgen.Run(target, topkEvents(300, 7, 0), loadgen.RunOptions{Concurrency: 6})
	if err != nil {
		t.Fatalf("calibration run: %v", err)
	}
	capacity := float64(cal.Admitted.Count()) / cal.Duration.Seconds()
	if capacity <= 0 {
		t.Fatalf("calibration measured no goodput: %+v", cal)
	}
	t.Logf("calibrated capacity: %.0f q/s (p99 %v)", capacity, cal.Admitted.Quantile(0.99))

	// Phase 2 — overload: 4× capacity, open loop, fresh cache keys. The
	// in-flight cap bounds client-side queueing so the admitted-latency
	// tail measures the server, not a pile of parked connections (over
	// the cap arrivals count as client-side sheds, which is itself the
	// open-loop overload signal).
	rate := 4 * capacity
	n := int(rate * 1.5) // ~1.5s of arrivals
	over, err := loadgen.Run(target, topkEvents(n, 9, rate), loadgen.RunOptions{MaxInFlight: 128})
	if err != nil {
		t.Fatalf("overload run: %v", err)
	}
	goodput := float64(over.Admitted.Count()) / over.Duration.Seconds()
	t.Logf("overload: offered %.0f q/s, goodput %.0f q/s, shed %d (server) + %d (client cap), timeouts %d, admitted p99 %v",
		rate, goodput, over.ShedServer, over.Shed, over.Timeouts, over.Admitted.Quantile(0.99))

	if goodput < 0.8*capacity {
		t.Errorf("goodput %.0f q/s under 4× overload, want ≥ 80%% of capacity %.0f q/s", goodput, capacity)
	}
	slo := 60 * time.Millisecond
	if p99 := over.Admitted.Quantile(0.99); p99 > 2*slo {
		t.Errorf("admitted p99 %v under overload, want ≤ 2×SLO (%v)", p99, 2*slo)
	}
	// Shed, not collapsed: overload was answered (mostly 503s), never
	// dropped on the floor, and the server is still healthy.
	if over.ShedServer == 0 {
		t.Error("4× overload produced no server-side sheds; admission is not engaging")
	}
	st := s.Admission()
	if st.Inflight < 0 || st.Inflight > int64(st.Ceiling) {
		t.Errorf("inflight %d outside [0, ceiling %d]: queue accounting leaked", st.Inflight, st.Ceiling)
	}
	if st.Limit < st.Floor || st.Limit > st.Ceiling {
		t.Errorf("adaptive limit %d escaped [floor %d, ceiling %d]", st.Limit, st.Floor, st.Ceiling)
	}

	// Phase 3 — recovery: idle control ticks must walk the limit back to
	// the ceiling and clear any brownout, and serving must be healthy.
	deadline := time.Now().Add(3 * time.Second)
	for {
		st = s.Admission()
		if st.Limit == st.Ceiling && !st.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery after overload: limit %d/%d, degraded %v", st.Limit, st.Ceiling, st.Degraded)
		}
		time.Sleep(20 * time.Millisecond)
	}
	post, err := loadgen.Run(target, topkEvents(40, 11, 0), loadgen.RunOptions{Concurrency: 2})
	if err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	if post.Admitted.Count() != 40 || post.Errors != 0 {
		t.Errorf("post-recovery: %d/40 admitted, %d errors", post.Admitted.Count(), post.Errors)
	}

	// The injector really drove the kernels (determinism anchor).
	if ks := inj.Stats().Kernels; ks == 0 {
		t.Error("chaos injector saw no kernel dispatches")
	}
}

// TestErrorBurstsSurfaceAndRecover: injected 500 bursts show up as
// request failures without wedging admission — slots always come back.
func TestErrorBurstsSurfaceAndRecover(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 3, ErrorEvery: 4, ErrorBurst: 1})
	s := serve.New(serve.Options{
		Seed: 1,
		Models: serve.ModelConfig{Corpus: dblp.Config{
			Areas:         []string{"database", "datamining"},
			VenuesPerArea: 3, AuthorsPerArea: 40, TermsPerArea: 30,
			SharedTerms: 15, Papers: 300,
		}},
		ControlInterval: -1,
		Chaos:           inj,
	})
	addr, err := s.Start()
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	target := loadgen.NewTarget("http://" + addr)

	res, err := loadgen.Run(target, topkEvents(40, 5, 0), loadgen.RunOptions{Concurrency: 4})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Calls 0 of every 4-cycle fail: exactly 10 of 40.
	if res.Errors != 10 {
		t.Errorf("errors = %d, want exactly 10 (deterministic burst pattern)", res.Errors)
	}
	if st := s.Admission(); st.Inflight != 0 {
		t.Errorf("inflight = %d after run, want 0 (failed requests must release their slots)", st.Inflight)
	}
}
