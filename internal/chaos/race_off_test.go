//go:build !race

package chaos_test

const raceEnabled = false
