package chaos

import (
	"testing"
	"time"
)

// TestNilInjectorIsInert: production code passes nil; every method must
// be a cheap no-op.
func TestNilInjectorIsInert(t *testing.T) {
	var i *Injector
	if fail, delay := i.RequestFault(); fail || delay != 0 {
		t.Errorf("nil RequestFault = (%v, %v)", fail, delay)
	}
	if d := i.KernelDelay(); d != 0 {
		t.Errorf("nil KernelDelay = %v", d)
	}
	if st := i.Stats(); st != (Stats{}) {
		t.Errorf("nil Stats = %+v", st)
	}
}

// TestDeterministicSequences: two injectors with the same config
// produce bit-identical fault sequences — the property every chaos
// test in the serving tier leans on.
func TestDeterministicSequences(t *testing.T) {
	cfg := Config{
		Seed:         99,
		KernelDelay:  3 * time.Millisecond,
		KernelJitter: 2 * time.Millisecond,
		ErrorEvery:   7, ErrorBurst: 2,
		SpikeEvery: 5, SpikeBurst: 1, SpikeDelay: time.Millisecond,
	}
	a, b := New(cfg), New(cfg)
	for n := 0; n < 200; n++ {
		af, ad := a.RequestFault()
		bf, bd := b.RequestFault()
		if af != bf || ad != bd {
			t.Fatalf("request %d diverged: (%v,%v) vs (%v,%v)", n, af, ad, bf, bd)
		}
		if ak, bk := a.KernelDelay(), b.KernelDelay(); ak != bk {
			t.Fatalf("kernel %d diverged: %v vs %v", n, ak, bk)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestBurstPattern: Every=5, Burst=2 fails exactly calls 0,1 of each
// cycle of five.
func TestBurstPattern(t *testing.T) {
	inj := New(Config{ErrorEvery: 5, ErrorBurst: 2})
	for n := 0; n < 25; n++ {
		fail, _ := inj.RequestFault()
		want := n%5 < 2
		if fail != want {
			t.Fatalf("call %d: fail = %v, want %v", n, fail, want)
		}
	}
	if st := inj.Stats(); st.Requests != 25 || st.Errors != 10 {
		t.Errorf("stats = %+v, want 25 requests, 10 errors", st)
	}
}

// TestKernelJitterBounded: delay is always base ≤ d < base+jitter, and
// different seeds actually change the jitter stream.
func TestKernelJitterBounded(t *testing.T) {
	base, jitter := 2*time.Millisecond, 3*time.Millisecond
	a := New(Config{Seed: 1, KernelDelay: base, KernelJitter: jitter})
	b := New(Config{Seed: 2, KernelDelay: base, KernelJitter: jitter})
	diverged := false
	for n := 0; n < 100; n++ {
		da, db := a.KernelDelay(), b.KernelDelay()
		for _, d := range []time.Duration{da, db} {
			if d < base || d >= base+jitter {
				t.Fatalf("call %d: delay %v outside [%v, %v)", n, d, base, base+jitter)
			}
		}
		if da != db {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical jitter streams")
	}
}

// TestSpikePattern: spikes stall without failing when no error pattern
// is configured.
func TestSpikePattern(t *testing.T) {
	inj := New(Config{SpikeEvery: 4, SpikeBurst: 1, SpikeDelay: 7 * time.Millisecond})
	for n := 0; n < 12; n++ {
		fail, delay := inj.RequestFault()
		if fail {
			t.Fatalf("call %d failed with no error pattern", n)
		}
		wantDelay := time.Duration(0)
		if n%4 == 0 {
			wantDelay = 7 * time.Millisecond
		}
		if delay != wantDelay {
			t.Fatalf("call %d: delay %v, want %v", n, delay, wantDelay)
		}
	}
	if st := inj.Stats(); st.Spikes != 3 {
		t.Errorf("spikes = %d, want 3", st.Spikes)
	}
}
