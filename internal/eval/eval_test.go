package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNMIIdenticalPartitions(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if nmi := NMI(a, a); math.Abs(nmi-1) > 1e-12 {
		t.Errorf("NMI(a,a) = %v, want 1", nmi)
	}
	// Renamed clusters still identical as a partition.
	b := []int{7, 7, 3, 3, 9, 9}
	if nmi := NMI(a, b); math.Abs(nmi-1) > 1e-12 {
		t.Errorf("NMI under renaming = %v, want 1", nmi)
	}
}

func TestNMIIndependentPartitions(t *testing.T) {
	// a splits by half, b alternates: perfectly balanced independence.
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 0, 1}
	if nmi := NMI(a, b); math.Abs(nmi) > 1e-12 {
		t.Errorf("NMI of independent = %v, want 0", nmi)
	}
}

func TestNMIDegenerate(t *testing.T) {
	one := []int{5, 5, 5}
	if nmi := NMI(one, one); nmi != 1 {
		t.Errorf("NMI single-cluster identical = %v", nmi)
	}
	split := []int{0, 1, 2}
	if nmi := NMI(one, split); nmi != 0 {
		t.Errorf("NMI single vs split = %v", nmi)
	}
}

func TestNMISymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(3)
		}
		x, y := NMI(a, b), NMI(b, a)
		return math.Abs(x-y) < 1e-9 && x >= -1e-9 && x <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAccuracyExactMatching(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	pred := []int{2, 2, 0, 0, 1, 1} // perfect up to renaming
	if acc := Accuracy(truth, pred); acc != 1 {
		t.Errorf("Accuracy = %v, want 1", acc)
	}
	pred2 := []int{2, 2, 0, 1, 1, 1}
	if acc := Accuracy(truth, pred2); math.Abs(acc-5.0/6) > 1e-12 {
		t.Errorf("Accuracy = %v, want 5/6", acc)
	}
}

func TestAccuracyGreedyLargeK(t *testing.T) {
	// 10 clusters forces the greedy path; identity mapping is recoverable.
	n := 10
	truth := make([]int, 5*n)
	pred := make([]int, 5*n)
	for i := range truth {
		truth[i] = i % n
		pred[i] = (i%n + 3) % n
	}
	if acc := Accuracy(truth, pred); acc != 1 {
		t.Errorf("greedy Accuracy = %v, want 1", acc)
	}
}

func TestARI(t *testing.T) {
	a := []int{0, 0, 1, 1}
	if v := ARI(a, a); math.Abs(v-1) > 1e-12 {
		t.Errorf("ARI identical = %v", v)
	}
	b := []int{0, 1, 0, 1}
	if v := ARI(a, b); v > 0.01 {
		t.Errorf("ARI independent = %v, want ≈<=0", v)
	}
}

func TestPairwisePRF(t *testing.T) {
	truth := []int{0, 0, 0, 1, 1}
	// pred merges everything: recall 1, precision = 4/10.
	allOne := []int{9, 9, 9, 9, 9}
	s := PairwisePRF(truth, allOne)
	if s.Recall != 1 {
		t.Errorf("recall = %v", s.Recall)
	}
	if math.Abs(s.Precision-0.4) > 1e-12 {
		t.Errorf("precision = %v, want 0.4", s.Precision)
	}
	// pred splits everything: precision trivially 0 matches (tp+fp=0 → P=0 by convention, recall 0)
	allDiff := []int{0, 1, 2, 3, 4}
	s = PairwisePRF(truth, allDiff)
	if s.Precision != 0 || s.Recall != 0 || s.F1 != 0 {
		t.Errorf("split scores = %+v", s)
	}
	// perfect
	s = PairwisePRF(truth, []int{5, 5, 5, 7, 7})
	if s.F1 != 1 {
		t.Errorf("perfect F1 = %v", s.F1)
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if v := KendallTau(a, a); math.Abs(v-1) > 1e-12 {
		t.Errorf("tau same = %v", v)
	}
	rev := []float64{4, 3, 2, 1}
	if v := KendallTau(a, rev); math.Abs(v+1) > 1e-12 {
		t.Errorf("tau reversed = %v", v)
	}
	ties := []float64{1, 1, 1, 1}
	if v := KendallTau(a, ties); v != 0 {
		t.Errorf("tau vs constant = %v", v)
	}
}

func TestKendallTauBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(8))
			b[i] = float64(rng.Intn(8))
		}
		v := KendallTau(a, b)
		return v >= -1-1e-9 && v <= 1+1e-9 && math.Abs(v-KendallTau(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPrecisionAtK(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.8, 0.2}
	rel := map[int]bool{0: true, 2: true}
	if p := PrecisionAtK(scores, rel, 2); p != 1 {
		t.Errorf("P@2 = %v", p)
	}
	if p := PrecisionAtK(scores, rel, 4); p != 0.5 {
		t.Errorf("P@4 = %v", p)
	}
	if p := PrecisionAtK(scores, rel, 0); p != 0 {
		t.Errorf("P@0 = %v", p)
	}
}

func TestMeanAveragePrecision(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7}
	rel := map[int]bool{0: true, 2: true}
	// hits at rank 1 (P=1) and rank 3 (P=2/3): MAP = (1 + 2/3)/2.
	want := (1.0 + 2.0/3.0) / 2
	if m := MeanAveragePrecision(scores, rel); math.Abs(m-want) > 1e-12 {
		t.Errorf("MAP = %v, want %v", m, want)
	}
	if m := MeanAveragePrecision(scores, map[int]bool{}); m != 0 {
		t.Errorf("MAP empty = %v", m)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"NMI":      func() { NMI([]int{1}, []int{1, 2}) },
		"Pairwise": func() { PairwisePRF([]int{1}, []int{1, 2}) },
		"Kendall":  func() { KendallTau([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic on mismatch", name)
				}
			}()
			f()
		}()
	}
}
