// Package eval implements the evaluation metrics the reproduced
// experiments report: normalized mutual information (NMI), clustering
// accuracy under best label matching, adjusted Rand index, pairwise
// precision/recall/F1, and Kendall tau rank correlation.
//
// These are the scores in RankClus Table 4, NetClus Table 3, SCAN's
// community-recovery study, and DISTINCT's pairwise F1 table.
package eval

import (
	"math"
	"sort"
)

// contingency builds the k1×k2 joint count table of two labelings over
// the same n items, relabeling arbitrary ints to dense indices.
func contingency(a, b []int) (table [][]int, n int) {
	if len(a) != len(b) {
		panic("eval: labeling length mismatch")
	}
	ai := denseIndex(a)
	bi := denseIndex(b)
	table = make([][]int, len(ai))
	for i := range table {
		table[i] = make([]int, len(bi))
	}
	for i := range a {
		table[ai[a[i]]][bi[b[i]]]++
	}
	return table, len(a)
}

func denseIndex(xs []int) map[int]int {
	m := make(map[int]int)
	keys := make([]int, 0)
	for _, x := range xs {
		if _, ok := m[x]; !ok {
			m[x] = 0
			keys = append(keys, x)
		}
	}
	sort.Ints(keys)
	for i, k := range keys {
		m[k] = i
	}
	return m
}

// NMI returns the normalized mutual information of two labelings in
// [0, 1] (1 = identical partitions up to renaming). Normalization is by
// the arithmetic mean of the entropies, the convention in the RankClus
// evaluation. Degenerate single-cluster cases return 1 when the
// partitions are identical as partitions and 0 otherwise.
func NMI(a, b []int) float64 {
	table, n := contingency(a, b)
	if n == 0 {
		return 0
	}
	ra := make([]float64, len(table))
	rb := make([]float64, len(table[0]))
	for i := range table {
		for j := range table[i] {
			ra[i] += float64(table[i][j])
			rb[j] += float64(table[i][j])
		}
	}
	mi := 0.0
	for i := range table {
		for j := range table[i] {
			c := float64(table[i][j])
			if c == 0 {
				continue
			}
			mi += c / float64(n) * math.Log(c*float64(n)/(ra[i]*rb[j]))
		}
	}
	ha, hb := 0.0, 0.0
	for _, v := range ra {
		if v > 0 {
			p := v / float64(n)
			ha -= p * math.Log(p)
		}
	}
	for _, v := range rb {
		if v > 0 {
			p := v / float64(n)
			hb -= p * math.Log(p)
		}
	}
	if ha == 0 && hb == 0 {
		return 1 // both single-cluster: identical partitions
	}
	if ha == 0 || hb == 0 {
		return 0
	}
	return mi / ((ha + hb) / 2)
}

// Accuracy returns clustering accuracy: the fraction of items whose
// predicted cluster maps to their true class under the best one-to-one
// cluster→class assignment (computed exactly by Hungarian-style
// enumeration for small k via permutation, greedy for large k).
func Accuracy(truth, pred []int) float64 {
	table, n := contingency(truth, pred)
	if n == 0 {
		return 0
	}
	k1, k2 := len(table), len(table[0])
	// cost[i][j] = count of items with true class i assigned to cluster j.
	if k2 <= 8 {
		// exact: permute clusters over classes
		best := 0
		idx := make([]int, k2)
		for i := range idx {
			idx[i] = i
		}
		permute(idx, 0, func(p []int) {
			s := 0
			for j, class := range p {
				if class < k1 {
					s += table[class][j]
				}
			}
			if s > best {
				best = s
			}
		})
		return float64(best) / float64(n)
	}
	// greedy fallback
	usedClass := make([]bool, k1)
	usedClus := make([]bool, k2)
	total := 0
	for {
		bi, bj, bv := -1, -1, -1
		for i := 0; i < k1; i++ {
			if usedClass[i] {
				continue
			}
			for j := 0; j < k2; j++ {
				if usedClus[j] {
					continue
				}
				if table[i][j] > bv {
					bi, bj, bv = i, j, table[i][j]
				}
			}
		}
		if bi < 0 {
			break
		}
		usedClass[bi] = true
		usedClus[bj] = true
		total += bv
	}
	return float64(total) / float64(n)
}

func permute(xs []int, i int, visit func([]int)) {
	if i == len(xs) {
		visit(xs)
		return
	}
	for j := i; j < len(xs); j++ {
		xs[i], xs[j] = xs[j], xs[i]
		permute(xs, i+1, visit)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// ARI returns the adjusted Rand index in [-1, 1]; 1 means identical
// partitions, ~0 means chance agreement.
func ARI(a, b []int) float64 {
	table, n := contingency(a, b)
	if n < 2 {
		return 1
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	sumIJ := 0.0
	ra := make([]float64, len(table))
	rb := make([]float64, len(table[0]))
	for i := range table {
		for j := range table[i] {
			c := float64(table[i][j])
			sumIJ += choose2(c)
			ra[i] += c
			rb[j] += c
		}
	}
	sumA, sumB := 0.0, 0.0
	for _, v := range ra {
		sumA += choose2(v)
	}
	for _, v := range rb {
		sumB += choose2(v)
	}
	expected := sumA * sumB / choose2(float64(n))
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1
	}
	return (sumIJ - expected) / (maxIdx - expected)
}

// PairwiseScores holds pairwise precision/recall/F1, the metric used in
// the DISTINCT object-distinction experiments: a pair of items is a true
// positive when both labelings place the two items together.
type PairwiseScores struct {
	Precision, Recall, F1 float64
}

// PairwisePRF computes pairwise precision/recall/F1 of pred against truth.
func PairwisePRF(truth, pred []int) PairwiseScores {
	if len(truth) != len(pred) {
		panic("eval: labeling length mismatch")
	}
	var tp, fp, fn float64
	for i := 0; i < len(truth); i++ {
		for j := i + 1; j < len(truth); j++ {
			sameT := truth[i] == truth[j]
			sameP := pred[i] == pred[j]
			switch {
			case sameT && sameP:
				tp++
			case !sameT && sameP:
				fp++
			case sameT && !sameP:
				fn++
			}
		}
	}
	var s PairwiseScores
	if tp+fp > 0 {
		s.Precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		s.Recall = tp / (tp + fn)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

// KendallTau returns the Kendall rank correlation between two score
// vectors over the same items, in [-1, 1]. O(n²); fine for the ranking
// lists (tens to thousands of items) compared in the experiments.
func KendallTau(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("eval: score length mismatch")
	}
	n := len(a)
	if n < 2 {
		return 1
	}
	var concordant, discordant, tiesA, tiesB float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da == 0 && db == 0:
				tiesA++
				tiesB++
			case da == 0:
				tiesA++
			case db == 0:
				tiesB++
			case da*db > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	total := float64(n*(n-1)) / 2
	den := math.Sqrt((total - tiesA) * (total - tiesB))
	if den == 0 {
		return 0
	}
	return (concordant - discordant) / den
}

// PrecisionAtK returns |topK(pred) ∩ relevant| / k, the top-k retrieval
// precision used in the PathSim peer-search comparison. pred maps item →
// score; relevant is the ground-truth set.
func PrecisionAtK(scores []float64, relevant map[int]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return scores[idx[x]] > scores[idx[y]] })
	if k > len(idx) {
		k = len(idx)
	}
	hit := 0
	for _, i := range idx[:k] {
		if relevant[i] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// MeanAveragePrecision returns MAP of a ranking against a relevant set.
func MeanAveragePrecision(scores []float64, relevant map[int]bool) float64 {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return scores[idx[x]] > scores[idx[y]] })
	hits, sum := 0, 0.0
	for rank, i := range idx {
		if relevant[i] {
			hits++
			sum += float64(hits) / float64(rank+1)
		}
	}
	if hits == 0 {
		return 0
	}
	return sum / float64(len(relevant))
}
