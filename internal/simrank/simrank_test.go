package simrank

import (
	"math"
	"testing"

	"hinet/internal/sparse"
	"hinet/internal/stats"
)

// twoPapersCiteSame: nodes 0,1 both cited by 2 and 3 (directed edges
// 2→0, 3→0, 2→1, 3→1). 0 and 1 have identical in-neighborhoods.
func twoPapersCiteSame() *sparse.Matrix {
	return sparse.NewFromCoords(4, 4, []sparse.Coord{
		{Row: 2, Col: 0, Val: 1}, {Row: 3, Col: 0, Val: 1},
		{Row: 2, Col: 1, Val: 1}, {Row: 3, Col: 1, Val: 1},
	})
}

func TestSimilarityIdenticalInNeighborhoods(t *testing.T) {
	s := Similarity(twoPapersCiteSame(), Options{MaxIter: 20, Eps: 1e-9})
	// Exact fixed point: s(0,1) = C/4·[s(2,2)+s(2,3)+s(3,2)+s(3,3)]
	// = 0.8/4·(1+0+0+1) = 0.4, since 2,3 have no in-links.
	if math.Abs(s[0][1]-0.4) > 1e-9 {
		t.Errorf("s(0,1) = %v, want 0.4", s[0][1])
	}
	// 2 and 3 have no in-links → s(2,3) = 0
	if s[2][3] != 0 {
		t.Errorf("s(2,3) = %v, want 0", s[2][3])
	}
}

func TestSimilarityInvariants(t *testing.T) {
	rng := stats.NewRNG(1)
	var entries []sparse.Coord
	n := 25
	for i := 0; i < 120; i++ {
		entries = append(entries, sparse.Coord{Row: rng.Intn(n), Col: rng.Intn(n), Val: 1})
	}
	adj := sparse.NewFromCoords(n, n, entries)
	s := Similarity(adj, Options{})
	for a := 0; a < n; a++ {
		if s[a][a] != 1 {
			t.Fatalf("s(%d,%d) = %v, want 1", a, a, s[a][a])
		}
		for b := 0; b < n; b++ {
			if s[a][b] != s[b][a] {
				t.Fatalf("asymmetric at (%d,%d)", a, b)
			}
			if s[a][b] < 0 || s[a][b] > 1+1e-9 {
				t.Fatalf("s(%d,%d) = %v out of [0,1]", a, b, s[a][b])
			}
		}
	}
}

func TestSimilarityDecayMonotone(t *testing.T) {
	adj := twoPapersCiteSame()
	low := Similarity(adj, Options{C: 0.4, MaxIter: 20, Eps: 1e-9})
	high := Similarity(adj, Options{C: 0.9, MaxIter: 20, Eps: 1e-9})
	if low[0][1] >= high[0][1] {
		t.Errorf("C=0.4 gives %v, C=0.9 gives %v; want increasing", low[0][1], high[0][1])
	}
}

func TestBipartiteTwoBlocks(t *testing.T) {
	// X = {0,1,2,3}: 0,1 link Y-block {0,1}; 2,3 link Y-block {2,3}.
	w := sparse.NewFromDense([][]float64{
		{1, 1, 0, 0},
		{1, 1, 0, 0},
		{0, 0, 1, 1},
		{0, 0, 1, 1},
	})
	r := Bipartite(w, Options{MaxIter: 15})
	if r.SX[0][1] <= r.SX[0][2] {
		t.Errorf("same-block sim %v should beat cross-block %v", r.SX[0][1], r.SX[0][2])
	}
	if r.SY[2][3] <= r.SY[0][2] {
		t.Errorf("attribute-side sim wrong: %v vs %v", r.SY[2][3], r.SY[0][2])
	}
	if r.SX[0][2] > 1e-9 {
		t.Errorf("disconnected blocks should have sim 0, got %v", r.SX[0][2])
	}
}

func TestBipartiteSymmetryAndBounds(t *testing.T) {
	rng := stats.NewRNG(2)
	var entries []sparse.Coord
	for i := 0; i < 60; i++ {
		entries = append(entries, sparse.Coord{Row: rng.Intn(10), Col: rng.Intn(15), Val: 1})
	}
	w := sparse.NewFromCoords(10, 15, entries)
	r := Bipartite(w, Options{})
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			if math.Abs(r.SX[a][b]-r.SX[b][a]) > 1e-12 {
				t.Fatal("SX asymmetric")
			}
			if r.SX[a][b] < 0 || r.SX[a][b] > 1+1e-9 {
				t.Fatal("SX out of bounds")
			}
		}
	}
	for c := 0; c < 15; c++ {
		if r.SY[c][c] != 1 {
			t.Fatal("SY diagonal must be 1")
		}
	}
}

func TestIsolatedNodeZeroSimilarity(t *testing.T) {
	// node 2 isolated
	adj := sparse.NewFromCoords(3, 3, []sparse.Coord{{Row: 0, Col: 1, Val: 1}})
	s := Similarity(adj, Options{})
	if s[2][0] != 0 || s[2][1] != 0 {
		t.Error("isolated node should have zero similarity to others")
	}
	if s[2][2] != 1 {
		t.Error("self similarity must stay 1")
	}
}

func TestWeightedLinksInfluenceSimilarity(t *testing.T) {
	// a and b share one heavy co-neighbor; a and c share one light one.
	// X: 0=a,1=b,2=c ; Y: 0 shared heavy, 1 shared light, 2,3 private
	w := sparse.NewFromDense([][]float64{
		{5, 1, 1, 0},
		{5, 0, 0, 1},
		{0, 1, 0, 1},
	})
	r := Bipartite(w, Options{MaxIter: 10})
	if r.SX[0][1] <= r.SX[0][2] {
		t.Errorf("heavily-shared pair %v should beat lightly-shared %v", r.SX[0][1], r.SX[0][2])
	}
}
