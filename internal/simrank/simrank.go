// Package simrank implements SimRank (Jeh & Widom, KDD'02), the
// structural-context similarity measure the tutorial covers in §2b.iii
// and that RankClus uses as its expensive clustering baseline:
// "two objects are similar if they are referenced by similar objects."
//
//	s(a,b) = C / (|I(a)||I(b)|) · Σ_{i∈I(a)} Σ_{j∈I(b)} s(i,j)
//
// with s(a,a) = 1. The fixed point is computed by truncated iteration
// over the dense pair matrix; Bipartite supports the two-sided variant
// used on conference–author networks.
package simrank

import (
	"hinet/internal/sparse"
)

// Options configures the SimRank iteration.
type Options struct {
	C       float64 // decay constant in (0,1); default 0.8
	MaxIter int     // default 10 (SimRank converges fast; K ≈ 5 suffices)
	Eps     float64 // early-exit threshold on max entry change; default 1e-4
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.8
	}
	if o.MaxIter == 0 {
		o.MaxIter = 10
	}
	if o.Eps == 0 {
		o.Eps = 1e-4
	}
	return o
}

// Similarity computes the SimRank matrix of a homogeneous directed
// graph given as an adjacency matrix (row = source). In-neighborhoods
// are the link sources: I(v) = {u : adj[u][v] > 0}. Weights are treated
// as multiplicities ≥ 0. The result is a dense symmetric n×n matrix
// with unit diagonal.
func Similarity(adj *sparse.Matrix, opt Options) [][]float64 {
	opt = opt.withDefaults()
	n := adj.Rows()
	if adj.Cols() != n {
		panic("simrank: adjacency must be square")
	}
	in := inLists(adj.Transpose())
	s := identity(n)
	next := identity(n)
	for it := 0; it < opt.MaxIter; it++ {
		maxDelta := pairSweep(s, next, s, in, opt.C)
		s, next = next, s
		if maxDelta < opt.Eps {
			break
		}
	}
	return s
}

// pairSweep runs one half-matrix SimRank update: next[a][b] =
// pairUpdate over the opposite-side similarity matrix opp, for all
// a < b, returning the largest entry change. Rows are processed in
// parallel blocks on the sparse worker pool; each pair (a,b) with a < b
// is owned by exactly one block (the one containing a), so the
// symmetric writes never collide.
func pairSweep(cur, next, opp [][]float64, nbrs [][]neighbor, c float64) float64 {
	n := len(cur)
	return sparse.ParReduceMax(n, n*n, func(lo, hi int) float64 {
		blockMax := 0.0
		for a := lo; a < hi; a++ {
			for b := a + 1; b < n; b++ {
				v := pairUpdate(opp, nbrs[a], nbrs[b], c)
				next[a][b] = v
				next[b][a] = v
				if d := abs(v - cur[a][b]); d > blockMax {
					blockMax = d
				}
			}
		}
		return blockMax
	})
}

// BipartiteResult holds the two similarity matrices of two-sided
// SimRank on a bipartite X–Y network.
type BipartiteResult struct {
	SX [][]float64 // |X|×|X|
	SY [][]float64 // |Y|×|Y|
}

// Bipartite computes the coupled SimRank recursion on a bipartite
// network W (X rows, Y cols):
//
//	sX(a,b) = C/(|N(a)||N(b)|) Σ sY(neighbors)
//	sY(c,d) = C/(|N(c)||N(d)|) Σ sX(neighbors)
//
// This is the "SimRank on conference–author networks" baseline in the
// RankClus evaluation; its O(n²·d̄²) cost per iteration is the point of
// the scalability comparison.
func Bipartite(w *sparse.Matrix, opt Options) BipartiteResult {
	opt = opt.withDefaults()
	nx, ny := w.Rows(), w.Cols()
	xNb := inLists(w)             // X → multiset of Y neighbors
	yNb := inLists(w.Transpose()) // Y → multiset of X neighbors
	sx := identity(nx)
	sy := identity(ny)
	nextX := identity(nx)
	nextY := identity(ny)
	for it := 0; it < opt.MaxIter; it++ {
		maxDelta := pairSweep(sx, nextX, sy, xNb, opt.C)
		if d := pairSweep(sy, nextY, sx, yNb, opt.C); d > maxDelta {
			maxDelta = d
		}
		sx, nextX = nextX, sx
		sy, nextY = nextY, sy
		if maxDelta < opt.Eps {
			break
		}
	}
	return BipartiteResult{SX: sx, SY: sy}
}

// neighbor is one weighted endpoint.
type neighbor struct {
	id int
	w  float64
}

// inLists converts a CSR matrix to per-row weighted neighbor lists.
func inLists(m *sparse.Matrix) [][]neighbor {
	out := make([][]neighbor, m.Rows())
	for r := 0; r < m.Rows(); r++ {
		m.Row(r, func(c int, v float64) {
			if v > 0 {
				out[r] = append(out[r], neighbor{id: c, w: v})
			}
		})
	}
	return out
}

// pairUpdate evaluates the weighted SimRank update for one pair given
// the current similarity matrix of the opposite (or same) side.
func pairUpdate(s [][]float64, na, nb []neighbor, c float64) float64 {
	if len(na) == 0 || len(nb) == 0 {
		return 0
	}
	var sum, wa, wb float64
	for _, i := range na {
		wa += i.w
	}
	for _, j := range nb {
		wb += j.w
	}
	for _, i := range na {
		row := s[i.id]
		for _, j := range nb {
			sum += i.w * j.w * row[j.id]
		}
	}
	return c * sum / (wa * wb)
}

func identity(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	return m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
