// Sample delta generation: deterministic paper-arrival batches over a
// DBLP corpus, for demos (`hinet ingest -emit`), tests and benchmarks.
// The emitted deltas reference existing authors/venues/terms by name,
// so a batch generated against `dblp.Generate(seed, cfg)` applies
// cleanly to any server built from the same seed and config.

package ingest

import (
	"encoding/json"
	"fmt"
	"io"

	"hinet/internal/dblp"
	"hinet/internal/stats"
)

// SamplePapers generates the delta stream of `papers` new publications
// arriving at a corpus: per paper one add-node plus edges to a venue,
// 1–3 existing authors, 3–5 existing terms and a year, drawn uniformly
// from the corpus's object sets. Identical (corpus, rng state, papers)
// inputs produce identical streams.
func SamplePapers(c *dblp.Corpus, rng *stats.RNG, papers int) []Delta {
	n := c.Net
	var out []Delta
	nA, nV, nT, nY := n.Count(dblp.TypeAuthor), n.Count(dblp.TypeVenue), n.Count(dblp.TypeTerm), n.Count(dblp.TypeYear)
	base := n.Count(dblp.TypePaper)
	for p := 0; p < papers; p++ {
		name := fmt.Sprintf("ingested-paper-%d", base+p)
		out = append(out, Delta{Op: OpAddNode, Type: string(dblp.TypePaper), Name: name})
		edge := func(dt string, dn string) {
			out = append(out, Delta{
				Op:      OpAddEdge,
				SrcType: string(dblp.TypePaper), Src: name,
				DstType: dt, Dst: dn,
			})
		}
		if nV > 0 {
			edge(string(dblp.TypeVenue), n.Name(dblp.TypeVenue, rng.Intn(nV)))
		}
		// Clamp draws to the available population so degenerate corpora
		// (fewer authors/terms than a paper would cite) terminate.
		authors := min(1+rng.Intn(3), nA)
		seen := map[int]bool{}
		for len(seen) < authors {
			a := rng.Intn(nA)
			if seen[a] {
				continue
			}
			seen[a] = true
			edge(string(dblp.TypeAuthor), n.Name(dblp.TypeAuthor, a))
		}
		terms := min(3+rng.Intn(3), nT)
		seenT := map[int]bool{}
		for len(seenT) < terms {
			tm := rng.Intn(nT)
			if seenT[tm] {
				continue
			}
			seenT[tm] = true
			edge(string(dblp.TypeTerm), n.Name(dblp.TypeTerm, tm))
		}
		if nY > 0 {
			edge(string(dblp.TypeYear), n.Name(dblp.TypeYear, rng.Intn(nY)))
		}
	}
	return out
}

// WriteJSONL renders deltas one JSON object per line — the inverse of
// ParseJSONL.
func WriteJSONL(w io.Writer, deltas []Delta) error {
	for _, d := range deltas {
		b, err := json.Marshal(d)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}
