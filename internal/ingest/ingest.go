// Package ingest implements the streaming ingestion half of the
// incremental delta-rebuild subsystem: typed add/remove deltas over
// nodes and edges, parsed from JSONL, validated against a network's
// schema, and applied as batched edge-delta merges through
// hin.Network.ApplyEdgeDeltas — the copy-on-write CSR merge path that
// keeps relation matrices and unaffected meta-path materializations
// warm instead of rebuilding the world.
//
// The paper treats the bibliographic network as a living database that
// keeps accruing papers, authors and venues; this package is the
// write path that keeps the analysis layers (ranking, similarity
// search, serving snapshots) current without full-rebuild latency
// cliffs. The serving layer (internal/serve) drives it against a
// copy-on-write clone of the live network and swaps the result in
// atomically, so ingestion never blocks or corrupts in-flight queries;
// the CLI (hinet ingest) drives it directly or ships batches to a
// running server as JSON.
//
// Delta semantics: objects are addressed by (type, name) — names are
// the stable identity across client and server, matching how the DBLP
// generator names everything deterministically. add-node is idempotent
// by name; add-edge adds link weight (absent edges appear, coinciding
// weights sum); remove-edge subtracts the edge's entire current
// weight; remove-node detaches the object (all incident edge weight
// removed — the id slot remains, preserving dense indexing). Apply is
// sequential: a delta may reference nodes added earlier in the same
// batch.
package ingest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"hinet/internal/hin"
)

// Op names a delta operation.
type Op string

// The four delta operations.
const (
	OpAddNode    Op = "add-node"
	OpRemoveNode Op = "remove-node"
	OpAddEdge    Op = "add-edge"
	OpRemoveEdge Op = "remove-edge"
)

// Delta is one typed mutation. Node operations use Type/Name; edge
// operations use SrcType/Src and DstType/Dst (object names). Weight
// applies to add-edge only (0 means 1, the unweighted-link default).
type Delta struct {
	Op      Op      `json:"op"`
	Type    string  `json:"type,omitempty"`
	Name    string  `json:"name,omitempty"`
	SrcType string  `json:"src_type,omitempty"`
	Src     string  `json:"src,omitempty"`
	DstType string  `json:"dst_type,omitempty"`
	Dst     string  `json:"dst,omitempty"`
	Weight  float64 `json:"weight,omitempty"`
}

// Summary reports what one Apply call did.
type Summary struct {
	NodesAdded   int `json:"nodes_added"`
	NodesRemoved int `json:"nodes_removed"` // detached objects
	EdgesAdded   int `json:"edges_added"`
	EdgesRemoved int `json:"edges_removed"`
	Relations    int `json:"relations_touched"` // distinct type pairs merged
}

// Options configures Apply.
type Options struct {
	// AllowNewRelations permits add-edge between a type pair that has
	// no links yet (a schema extension). The serving layer leaves this
	// off so client batches cannot silently reshape the schema.
	AllowNewRelations bool
	// AllowNewTypes permits add-node with an unregistered type. Off,
	// unknown types are validation errors.
	AllowNewTypes bool
}

// ParseJSONL reads one JSON-encoded Delta per line. Blank lines and
// lines starting with '#' are skipped. Unknown fields are errors —
// a typo'd field name silently dropping a mutation is the failure
// mode this guards against.
func ParseJSONL(r io.Reader) ([]Delta, error) {
	var out []Delta
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		var d Delta
		if err := dec.Decode(&d); err != nil {
			return nil, fmt.Errorf("ingest: line %d: %v", lineNo, err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ingest: %v", err)
	}
	return out, nil
}

// applier carries the state of one Apply run: edge deltas coalesce
// per relation and flush in batches; operations that need to read
// current weights (removals) flush eagerly first.
type applier struct {
	net     *hin.Network
	opts    Options
	pending map[[2]hin.Type][]hin.EdgeDelta
	order   [][2]hin.Type
	touched map[[2]hin.Type]bool
	sum     Summary
}

// Apply validates and applies the deltas to the network in order,
// returning a summary of what changed. On error the network may be
// partially updated — callers that need atomicity (the serving layer)
// apply to a copy-on-write Clone and discard it on failure. Edge
// deltas between validation-passing endpoints coalesce into one
// batched merge per relation, so a thousand-edge batch costs one
// ApplyEdgeDeltas call per touched type pair.
func Apply(net *hin.Network, deltas []Delta, opts Options) (Summary, error) {
	a := &applier{
		net:     net,
		opts:    opts,
		pending: make(map[[2]hin.Type][]hin.EdgeDelta),
		touched: make(map[[2]hin.Type]bool),
	}
	for i, d := range deltas {
		var err error
		switch d.Op {
		case OpAddNode:
			err = a.addNode(d)
		case OpRemoveNode:
			err = a.removeNode(d)
		case OpAddEdge:
			err = a.addEdge(d)
		case OpRemoveEdge:
			err = a.removeEdge(d)
		default:
			err = fmt.Errorf("unknown op %q", d.Op)
		}
		if err != nil {
			return a.sum, fmt.Errorf("ingest: delta %d: %v", i, err)
		}
	}
	if err := a.flush(); err != nil {
		return a.sum, fmt.Errorf("ingest: %v", err)
	}
	a.sum.Relations = len(a.touched)
	return a.sum, nil
}

// flush applies every pending per-relation edge batch.
func (a *applier) flush() error {
	for _, key := range a.order {
		batch := a.pending[key]
		if len(batch) == 0 {
			continue
		}
		if err := a.net.ApplyEdgeDeltas(key[0], key[1], batch); err != nil {
			return err
		}
		a.touched[key] = true
		delete(a.pending, key)
	}
	a.order = a.order[:0]
	return nil
}

// queue stages edge deltas for the (src, dst) relation. The key is
// canonicalized to type order, flipping the deltas when needed, so a
// batch that names one relation in both orientations coalesces into a
// single merge (and counts as one touched relation).
func (a *applier) queue(src, dst hin.Type, ds ...hin.EdgeDelta) {
	if dst < src {
		src, dst = dst, src
		for i, d := range ds {
			ds[i] = hin.EdgeDelta{Src: d.Dst, Dst: d.Src, W: d.W}
		}
	}
	key := [2]hin.Type{src, dst}
	if _, ok := a.pending[key]; !ok {
		a.order = append(a.order, key)
	}
	a.pending[key] = append(a.pending[key], ds...)
}

func (a *applier) addNode(d Delta) error {
	if d.Type == "" || d.Name == "" {
		return fmt.Errorf("add-node needs type and name")
	}
	t := hin.Type(d.Type)
	if !a.opts.AllowNewTypes && a.net.Count(t) == 0 && !typeKnown(a.net, t) {
		return fmt.Errorf("unknown type %q", d.Type)
	}
	if a.net.Lookup(t, d.Name) >= 0 {
		return nil // idempotent
	}
	a.net.AddObject(t, d.Name)
	a.sum.NodesAdded++
	return nil
}

func (a *applier) resolve(ts, name, role string) (hin.Type, int, error) {
	if ts == "" || name == "" {
		return "", -1, fmt.Errorf("edge delta needs %s_type and %s", role, role)
	}
	t := hin.Type(ts)
	id := a.net.Lookup(t, name)
	if id < 0 {
		return "", -1, fmt.Errorf("unknown %s %q of type %q", role, name, ts)
	}
	return t, id, nil
}

func (a *applier) addEdge(d Delta) error {
	st, sid, err := a.resolve(d.SrcType, d.Src, "src")
	if err != nil {
		return err
	}
	dt, did, err := a.resolve(d.DstType, d.Dst, "dst")
	if err != nil {
		return err
	}
	if !a.opts.AllowNewRelations && !a.net.HasRelation(st, dt) {
		return fmt.Errorf("schema has no %s-%s relation", st, dt)
	}
	w := d.Weight
	if w == 0 {
		w = 1
	}
	a.queue(st, dt, hin.EdgeDelta{Src: sid, Dst: did, W: w})
	a.sum.EdgesAdded++
	return nil
}

func (a *applier) removeEdge(d Delta) error {
	st, sid, err := a.resolve(d.SrcType, d.Src, "src")
	if err != nil {
		return err
	}
	dt, did, err := a.resolve(d.DstType, d.Dst, "dst")
	if err != nil {
		return err
	}
	// Removal subtracts the edge's entire current weight, which must be
	// read after everything queued so far has landed.
	if err := a.flush(); err != nil {
		return err
	}
	w := a.net.Relation(st, dt).At(sid, did)
	if w == 0 {
		return fmt.Errorf("no %s %q - %s %q edge to remove", st, d.Src, dt, d.Dst)
	}
	a.queue(st, dt, hin.EdgeDelta{Src: sid, Dst: did, W: -w})
	a.sum.EdgesRemoved++
	return nil
}

func (a *applier) removeNode(d Delta) error {
	if d.Type == "" || d.Name == "" {
		return fmt.Errorf("remove-node needs type and name")
	}
	t := hin.Type(d.Type)
	id := a.net.Lookup(t, d.Name)
	if id < 0 {
		return fmt.Errorf("unknown node %q of type %q", d.Name, d.Type)
	}
	if err := a.flush(); err != nil {
		return err
	}
	// Detach: zero every incident edge across every relation touching
	// t. The id slot survives (dense indexing is load-bearing for every
	// downstream model); a detached object simply has no links.
	for _, pair := range a.net.SchemaEdges() {
		var other hin.Type
		switch t {
		case pair[0]:
			other = pair[1]
		case pair[1]:
			other = pair[0]
		default:
			continue
		}
		m := a.net.Relation(t, other)
		var ds []hin.EdgeDelta
		m.Row(id, func(c int, v float64) {
			ds = append(ds, hin.EdgeDelta{Src: id, Dst: c, W: -v})
		})
		if other == t {
			// Homogeneous relation: in-edges too (column scan).
			for r := 0; r < m.Rows(); r++ {
				if r == id {
					continue
				}
				if v := m.At(r, id); v != 0 {
					ds = append(ds, hin.EdgeDelta{Src: r, Dst: id, W: -v})
				}
			}
		}
		if len(ds) > 0 {
			a.queue(t, other, ds...)
		}
	}
	if err := a.flush(); err != nil {
		return err
	}
	a.sum.NodesRemoved++
	return nil
}

// typeKnown reports whether t is registered (Count can't distinguish a
// registered-but-empty type from an unknown one).
func typeKnown(n *hin.Network, t hin.Type) bool {
	for _, have := range n.Types() {
		if have == t {
			return true
		}
	}
	return false
}
