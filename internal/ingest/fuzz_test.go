package ingest

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDelta hardens the JSONL delta parser: arbitrary input must
// never panic, and any batch it accepts must survive WriteJSONL →
// ParseJSONL unchanged — the contract `hinet ingest` and the loadgen
// harness rely on when shipping batches between processes.
func FuzzParseDelta(f *testing.F) {
	f.Add(`{"op":"add-node","type":"paper","name":"p1"}`)
	f.Add(`{"op":"add-edge","src_type":"paper","src":"p1","dst_type":"author","dst":"a1","weight":2}`)
	f.Add(`{"op":"remove-node","type":"paper","name":"p1"}` + "\n" +
		`{"op":"remove-edge","src_type":"paper","src":"p1","dst_type":"venue","dst":"v1"}`)
	f.Add("# comment line\n\n" + `{"op":"add-node","type":"term","name":"zeta"}`)
	f.Add(`{"op":"warp","type":"paper","name":"p1"}`)
	f.Add(`{"op":"add-node","type":"paper","name":"p1","wat":true}`)
	f.Add("{}")
	f.Add("not json")

	f.Fuzz(func(t *testing.T, in string) {
		deltas, err := ParseJSONL(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, deltas); err != nil {
			t.Fatalf("accepted batch failed to serialize: %v", err)
		}
		again, err := ParseJSONL(&buf)
		if err != nil {
			t.Fatalf("serialized form of an accepted batch was rejected: %v\n%s", err, buf.String())
		}
		if len(again) != len(deltas) {
			t.Fatalf("round trip changed batch size: %d vs %d", len(deltas), len(again))
		}
		for i := range deltas {
			if deltas[i] != again[i] {
				t.Fatalf("round trip changed delta %d: %+v vs %+v", i, deltas[i], again[i])
			}
		}
	})
}
