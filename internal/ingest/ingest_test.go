package ingest

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"hinet/internal/dblp"
	"hinet/internal/hin"
	"hinet/internal/stats"
)

func smallCorpus(seed int64) *dblp.Corpus {
	return dblp.Generate(stats.NewRNG(seed), dblp.Config{
		Areas:         []string{"db", "dm"},
		VenuesPerArea: 2, AuthorsPerArea: 15, TermsPerArea: 10,
		SharedTerms: 5, Papers: 60,
	})
}

func TestParseJSONL(t *testing.T) {
	in := `
# a comment
{"op":"add-node","type":"paper","name":"p-new"}

{"op":"add-edge","src_type":"paper","src":"p-new","dst_type":"author","dst":"db-author-0","weight":2}
`
	ds, err := ParseJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Delta{
		{Op: OpAddNode, Type: "paper", Name: "p-new"},
		{Op: OpAddEdge, SrcType: "paper", Src: "p-new", DstType: "author", Dst: "db-author-0", Weight: 2},
	}
	if !reflect.DeepEqual(ds, want) {
		t.Fatalf("got %+v", ds)
	}
	if _, err := ParseJSONL(strings.NewReader(`{"op":"add-node","typo":"x"}`)); err == nil {
		t.Fatal("unknown fields must be rejected")
	}
	if _, err := ParseJSONL(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed lines must be rejected")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	c := smallCorpus(1)
	ds := SamplePapers(c, stats.NewRNG(9), 3)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ds) {
		t.Fatal("round trip mismatch")
	}
}

func TestApplyValidation(t *testing.T) {
	c := smallCorpus(1)
	cases := []struct {
		name  string
		delta Delta
	}{
		{"unknown op", Delta{Op: "replace-node", Type: "paper", Name: "x"}},
		{"unknown type", Delta{Op: OpAddNode, Type: "gadget", Name: "g"}},
		{"unknown src", Delta{Op: OpAddEdge, SrcType: "paper", Src: "nope", DstType: "author", Dst: "db-author-0"}},
		{"unknown dst", Delta{Op: OpAddEdge, SrcType: "paper", Src: "paper-0", DstType: "author", Dst: "nope"}},
		{"schema-less relation", Delta{Op: OpAddEdge, SrcType: "author", Src: "db-author-0", DstType: "venue", Dst: "db-venue-0"}},
		{"missing fields", Delta{Op: OpAddEdge, SrcType: "paper", Src: "paper-0"}},
		{"absent edge removal", Delta{Op: OpRemoveEdge, SrcType: "paper", Src: "paper-0", DstType: "author", Dst: "db-author-14"}},
		{"unknown node removal", Delta{Op: OpRemoveNode, Type: "paper", Name: "nope"}},
	}
	for _, tc := range cases {
		net := c.Net.Clone()
		if _, err := Apply(net, []Delta{tc.delta}, Options{}); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// "absent edge removal" may name an existing pair: pick one that is
	// genuinely absent.
	if c.Net.Relation("paper", "author").At(0, 14) != 0 {
		t.Skip("fixture edge unexpectedly present")
	}
}

func TestApplyAddsPaper(t *testing.T) {
	c := smallCorpus(2)
	net := c.Net
	papers0 := net.Count(dblp.TypePaper)
	deltas := []Delta{
		{Op: OpAddNode, Type: "paper", Name: "p-new"},
		{Op: OpAddEdge, SrcType: "paper", Src: "p-new", DstType: "author", Dst: "db-author-0"},
		{Op: OpAddEdge, SrcType: "paper", Src: "p-new", DstType: "author", Dst: "dm-author-1"},
		{Op: OpAddEdge, SrcType: "paper", Src: "p-new", DstType: "venue", Dst: "db-venue-0"},
	}
	sum, err := Apply(net, deltas, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.NodesAdded != 1 || sum.EdgesAdded != 3 || sum.Relations != 2 {
		t.Fatalf("summary %+v", sum)
	}
	if net.Count(dblp.TypePaper) != papers0+1 {
		t.Fatal("paper not added")
	}
	pid := net.Lookup(dblp.TypePaper, "p-new")
	pa := net.Relation(dblp.TypePaper, dblp.TypeAuthor)
	if pa.At(pid, net.Lookup(dblp.TypeAuthor, "db-author-0")) != 1 {
		t.Fatal("author edge missing")
	}
	// Idempotent re-add of the node, weight summing on the edge.
	sum2, err := Apply(net, deltas[:2], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.NodesAdded != 0 {
		t.Fatal("add-node must be idempotent by name")
	}
	if net.Relation(dblp.TypePaper, dblp.TypeAuthor).At(pid, net.Lookup(dblp.TypeAuthor, "db-author-0")) != 2 {
		t.Fatal("edge weight should sum")
	}
}

func TestRemoveEdgeAndNode(t *testing.T) {
	c := smallCorpus(3)
	net := c.Net
	pa := net.Relation(dblp.TypePaper, dblp.TypeAuthor)
	// Find a stored edge to remove.
	var aName string
	pa.Row(0, func(col int, v float64) {
		if aName == "" {
			aName = net.Name(dblp.TypeAuthor, col)
		}
	})
	if aName == "" {
		t.Fatal("paper 0 has no authors")
	}
	sum, err := Apply(net, []Delta{
		{Op: OpRemoveEdge, SrcType: "paper", Src: "paper-0", DstType: "author", Dst: aName},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.EdgesRemoved != 1 {
		t.Fatalf("summary %+v", sum)
	}
	aid := net.Lookup(dblp.TypeAuthor, aName)
	if net.Relation(dblp.TypePaper, dblp.TypeAuthor).At(0, aid) != 0 {
		t.Fatal("edge not removed")
	}

	// Detach paper-1 entirely.
	sum, err = Apply(net, []Delta{{Op: OpRemoveNode, Type: "paper", Name: "paper-1"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.NodesRemoved != 1 {
		t.Fatalf("summary %+v", sum)
	}
	for _, ty := range []hin.Type{dblp.TypeAuthor, dblp.TypeVenue, dblp.TypeTerm, dblp.TypeYear} {
		if net.Relation(dblp.TypePaper, ty).RowNNZ(1) != 0 {
			t.Fatalf("paper-1 still linked to %s", ty)
		}
	}
	// Id slots intact.
	if net.Lookup(dblp.TypePaper, "paper-1") != 1 {
		t.Fatal("detached node must keep its id")
	}
}

// TestSampleEquivalence is the end-to-end randomized equivalence
// check: applying sampled paper-arrival batches incrementally (warm
// caches, merge path) yields relation and commuting matrices bitwise
// equal to replaying the same deltas on a cold from-scratch corpus.
func TestSampleEquivalence(t *testing.T) {
	apa := hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeAuthor}
	apvpa := hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue, dblp.TypePaper, dblp.TypeAuthor}

	warm := smallCorpus(4)
	// Materialize so later applies exercise the incremental path.
	warm.Net.CommutingMatrix(apa)
	warm.Net.CommutingMatrix(apvpa)

	cold := smallCorpus(4)
	var applied []Delta
	rng := stats.NewRNG(99)
	for batch := 0; batch < 3; batch++ {
		ds := SamplePapers(warm, rng, 5)
		if _, err := Apply(warm.Net, ds, Options{}); err != nil {
			t.Fatal(err)
		}
		applied = append(applied, ds...)

		ref := cold.Net.Clone()
		if _, err := Apply(ref, applied, Options{}); err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]hin.Type{
			{dblp.TypePaper, dblp.TypeAuthor},
			{dblp.TypePaper, dblp.TypeVenue},
			{dblp.TypePaper, dblp.TypeTerm},
		} {
			a := warm.Net.Relation(pair[0], pair[1])
			b := ref.Relation(pair[0], pair[1])
			if !reflect.DeepEqual(a.Dense(), b.Dense()) {
				t.Fatalf("batch %d: relation %v differs from rebuild", batch, pair)
			}
		}
		for _, path := range []hin.MetaPath{apa, apvpa} {
			a := warm.Net.CommutingMatrix(path)
			b := ref.CommutingMatrix(path)
			if !reflect.DeepEqual(a.Dense(), b.Dense()) {
				t.Fatalf("batch %d: %s differs from rebuild", batch, path.String())
			}
		}
	}
}
