package distinct

import (
	"math"
	"testing"

	"hinet/internal/dblp"
	"hinet/internal/eval"
	"hinet/internal/stats"
)

func ref(id int, feats ...int) Reference {
	f := make(map[int]float64, len(feats))
	for _, x := range feats {
		f[x]++
	}
	return Reference{ID: id, Features: f}
}

func TestResemblance(t *testing.T) {
	a := map[int]float64{1: 1, 2: 1}
	b := map[int]float64{2: 1, 3: 1}
	if r := Resemblance(a, b); math.Abs(r-1.0/3) > 1e-12 {
		t.Errorf("resemblance = %v, want 1/3", r)
	}
	if r := Resemblance(a, a); math.Abs(r-1) > 1e-12 {
		t.Errorf("self resemblance = %v", r)
	}
	if Resemblance(a, map[int]float64{}) != 0 {
		t.Error("empty resemblance should be 0")
	}
}

func TestConnectionStrength(t *testing.T) {
	a := map[int]float64{1: 1}
	b := map[int]float64{1: 2}
	if c := ConnectionStrength(a, b); math.Abs(c-1) > 1e-12 {
		t.Errorf("parallel cosine = %v", c)
	}
	if c := ConnectionStrength(a, map[int]float64{2: 1}); c != 0 {
		t.Errorf("disjoint cosine = %v", c)
	}
}

func TestClusterTwoIdentities(t *testing.T) {
	// Identity A: refs 0,1,2 share co-authors 10,11.
	// Identity B: refs 3,4 share co-authors 20,21.
	refs := []Reference{
		ref(0, 10, 11, 12),
		ref(1, 10, 11, 13),
		ref(2, 10, 11),
		ref(3, 20, 21, 22),
		ref(4, 20, 21),
	}
	labels := Cluster(refs, Options{Threshold: 0.2})
	truth := []int{0, 0, 0, 1, 1}
	if s := eval.PairwisePRF(truth, labels); s.F1 < 0.99 {
		t.Errorf("F1 = %v on trivially separable identities (labels %v)", s.F1, labels)
	}
}

func TestClusterNoFalseMerge(t *testing.T) {
	refs := []Reference{
		ref(0, 1, 2),
		ref(1, 3, 4),
		ref(2, 5, 6),
	}
	labels := Cluster(refs, Options{Threshold: 0.2})
	if labels[0] == labels[1] || labels[1] == labels[2] || labels[0] == labels[2] {
		t.Errorf("disjoint references merged: %v", labels)
	}
}

func TestClusterEmpty(t *testing.T) {
	if Cluster(nil, Options{}) != nil {
		t.Error("empty input should return nil")
	}
}

func TestBaselines(t *testing.T) {
	if l := MergeAllBaseline(3); l[0] != l[1] || l[1] != l[2] {
		t.Error("merge-all should be constant")
	}
	if l := SplitAllBaseline(3); l[0] == l[1] {
		t.Error("split-all should be distinct")
	}
	refs := []Reference{ref(0, 1), ref(1, 1), ref(2, 9)}
	l := ExactLinkBaseline(refs)
	if l[0] != l[1] || l[0] == l[2] {
		t.Errorf("exact-link labels = %v", l)
	}
}

func TestDistinctBeatsBaselinesOnDBLPOverlay(t *testing.T) {
	c := dblp.Generate(stats.NewRNG(1), dblp.Config{
		VenuesPerArea:  3,
		AuthorsPerArea: 60,
		TermsPerArea:   40,
		SharedTerms:    15,
		Papers:         900,
		MinAuthors:     2,
		MaxAuthors:     4,
	})
	// Merge three authors from different areas under one name.
	pa := c.Net.Relation(dblp.TypePaper, dblp.TypeAuthor)
	deg := make([]int, c.Net.Count(dblp.TypeAuthor))
	for p := 0; p < pa.Rows(); p++ {
		pa.Row(p, func(a int, v float64) { deg[a]++ })
	}
	// Moderate-degree authors keep the reference set small enough for
	// the O(n³) agglomeration and the truth clusters balanced.
	pick := func(area int) int {
		for a, d := range deg {
			if c.AuthorArea[a] == area && d >= 10 && d <= 25 {
				return a
			}
		}
		return -1
	}
	merged := []int{pick(0), pick(1), pick(2)}
	occurrences := c.AmbiguousName(merged)
	if len(occurrences) < 12 {
		t.Skip("not enough references in small corpus")
	}
	// Build references: features = co-authors (offset 0), venue
	// (offset 100000) and terms (offset 200000) of the paper.
	pv := c.Net.Relation(dblp.TypePaper, dblp.TypeVenue)
	pt := c.Net.Relation(dblp.TypePaper, dblp.TypeTerm)
	var refs []Reference
	var truth []int
	for i, occ := range occurrences {
		f := make(map[int]float64)
		pa.Row(occ.Paper, func(a int, v float64) {
			if a != occ.TrueAuthor {
				f[a] = v
			}
		})
		pv.Row(occ.Paper, func(v int, w float64) {
			f[100000+v] = w
		})
		pt.Row(occ.Paper, func(v int, w float64) {
			f[200000+v] = w
		})
		refs = append(refs, Reference{ID: i, Features: f})
		truth = append(truth, occ.TrueAuthor)
	}
	pred := Cluster(refs, Options{Threshold: 0.15})
	f1 := eval.PairwisePRF(truth, pred).F1
	mergeF1 := eval.PairwisePRF(truth, MergeAllBaseline(len(refs))).F1
	splitF1 := eval.PairwisePRF(truth, SplitAllBaseline(len(refs))).F1
	if f1 <= mergeF1 || f1 <= splitF1 {
		t.Errorf("DISTINCT F1 %.3f not above merge %.3f / split %.3f", f1, mergeF1, splitF1)
	}
	if f1 < 0.6 {
		t.Errorf("DISTINCT F1 too low: %.3f", f1)
	}
}

func TestSimilarityCombination(t *testing.T) {
	a := ref(0, 1, 2, 3)
	b := ref(1, 1, 2, 4)
	full := Similarity(a, b, Options{ResemblanceWeight: 1})
	if math.Abs(full-Resemblance(a.Features, b.Features)) > 1e-12 {
		t.Error("weight 1 should be pure resemblance")
	}
	// Default mixes both.
	mix := Similarity(a, b, Options{})
	if mix <= 0 {
		t.Error("mixed similarity should be positive for overlapping refs")
	}
}
