// Package distinct implements DISTINCT (Yin, Han, Yu — ICDE'07), the
// object-distinction technique of tutorial §3c: references that share
// one name (e.g. several researchers all called "Wei Wang") are split
// back into the underlying real-world objects by link analysis, since
// different people leave different link trails (co-authors, venues)
// even when their names collide.
//
// Each reference is described by its link neighborhood (a sparse
// feature vector over context objects). Pairwise similarity combines
//
//   - set resemblance (weighted Jaccard of direct neighborhoods), and
//   - connection strength (cosine of one-hop random-walk profiles),
//
// and references are merged by average-link agglomerative clustering
// until no pair exceeds the merge threshold. The same machinery covers
// the tutorial's "object reconciliation" item (§3b): reconciliation
// asks whether two references are the same object, which is the
// threshold decision on the same similarity.
package distinct

import (
	"math"
	"sort"
)

// Reference is one occurrence of the ambiguous name, described by its
// weighted link neighborhood (context object id → weight). Neighborhood
// ids come from any context type (co-authors, venues, terms); callers
// ensure ids from different types do not collide.
type Reference struct {
	ID       int
	Features map[int]float64
}

// Options tunes the clustering.
type Options struct {
	// Threshold is the minimum combined similarity for a merge
	// (default 0.15).
	Threshold float64
	// ResemblanceWeight balances set resemblance vs connection
	// strength in [0,1] (default 0.5).
	ResemblanceWeight float64
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = 0.15
	}
	if o.ResemblanceWeight == 0 {
		o.ResemblanceWeight = 0.5
	}
	return o
}

// Resemblance is the weighted Jaccard similarity of two neighborhoods.
func Resemblance(a, b map[int]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var inter, union float64
	for k, va := range a {
		if vb, ok := b[k]; ok {
			inter += min(va, vb)
			union += max(va, vb)
		} else {
			union += va
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			union += vb
		}
	}
	if union == 0 {
		return 0
	}
	return inter / union
}

// ConnectionStrength is the cosine similarity of the two neighborhoods
// viewed as sparse vectors (the one-hop random-walk profile overlap).
func ConnectionStrength(a, b map[int]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var dot, na, nb float64
	for k, va := range a {
		na += va * va
		if vb, ok := b[k]; ok {
			dot += va * vb
		}
	}
	for _, vb := range b {
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Similarity is the combined DISTINCT similarity.
func Similarity(a, b Reference, opt Options) float64 {
	opt = opt.withDefaults()
	w := opt.ResemblanceWeight
	return w*Resemblance(a.Features, b.Features) + (1-w)*ConnectionStrength(a.Features, b.Features)
}

// Cluster groups references by agglomerative clustering with
// neighborhood pooling: each cluster carries the union of its members'
// link neighborhoods (weights summed), and inter-cluster similarity is
// computed between the pooled profiles. Pooling is what lets two papers
// by the same person with disjoint co-author sets still coalesce once a
// third paper bridges them — the behaviour the DISTINCT paper obtains by
// recomputing set resemblance and connection strength at the cluster
// level after every merge. Merging continues while the best pair's
// similarity is at least the threshold. Returns dense cluster labels.
func Cluster(refs []Reference, opt Options) []int {
	opt = opt.withDefaults()
	n := len(refs)
	if n == 0 {
		return nil
	}
	clusters := make([][]int, n)
	pooled := make([]map[int]float64, n)
	active := make([]bool, n)
	for i := 0; i < n; i++ {
		clusters[i] = []int{i}
		pooled[i] = make(map[int]float64, len(refs[i].Features))
		for k, v := range refs[i].Features {
			pooled[i][k] = v
		}
		active[i] = true
	}
	pairSim := func(a, b int) float64 {
		w := opt.ResemblanceWeight
		return w*Resemblance(pooled[a], pooled[b]) + (1-w)*ConnectionStrength(pooled[a], pooled[b])
	}
	for {
		bi, bj, bs := -1, -1, opt.Threshold
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if s := pairSim(i, j); s >= bs {
					bs, bi, bj = s, i, j
				}
			}
		}
		if bi < 0 {
			break
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		for k, v := range pooled[bj] {
			pooled[bi][k] += v
		}
		active[bj] = false
	}
	labels := make([]int, n)
	next := 0
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if active[i] {
			order = append(order, i)
		}
	}
	sort.Ints(order)
	for _, c := range order {
		for _, r := range clusters[c] {
			labels[r] = next
		}
		next++
	}
	return labels
}

// MergeAllBaseline labels every reference identically (the "one name =
// one object" assumption DISTINCT is designed to break).
func MergeAllBaseline(n int) []int { return make([]int, n) }

// SplitAllBaseline gives every reference its own label (treating each
// occurrence as a distinct object).
func SplitAllBaseline(n int) []int {
	l := make([]int, n)
	for i := range l {
		l[i] = i
	}
	return l
}

// ExactLinkBaseline merges references only when they share at least one
// direct neighbor — transitively (connected components over shared
// features). This is the naive link heuristic DISTINCT improves on.
func ExactLinkBaseline(refs []Reference) []int {
	n := len(refs)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	byFeature := make(map[int]int)
	for i, r := range refs {
		for f := range r.Features {
			if j, ok := byFeature[f]; ok {
				union(i, j)
			} else {
				byFeature[f] = i
			}
		}
	}
	labels := make([]int, n)
	dense := make(map[int]int)
	for i := range refs {
		r := find(i)
		if _, ok := dense[r]; !ok {
			dense[r] = len(dense)
		}
		labels[i] = dense[r]
	}
	return labels
}
