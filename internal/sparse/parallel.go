// Parallel execution engine for the sparse kernels.
//
// Every heavy kernel in this package (MulVec, MulVecT, Mul, Transpose,
// RowNormalized) dispatches row blocks onto a shared worker pool sized
// by GOMAXPROCS. Small operations — below a tunable amount of estimated
// scalar work — run serially so tiny test matrices never pay scheduling
// overhead. The same machinery is exported as ParRange / ParReduce /
// ParReduceMax so the iterative algorithm packages (rank, simrank,
// netclus, core, …) can parallelize their own element-wise and
// reduction loops over the identical pool.
//
// Determinism: for a fixed Parallelism and SerialThreshold setting the
// block partition of any given operation is a pure function of the
// input shape, and block-local partial results are always combined in
// block order. Runs are therefore reproducible; reductions may differ
// from the serial order by floating-point rounding only (≤ 1e-12 in the
// equivalence tests).

package sparse

import (
	"context"
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

const (
	// defaultSerialThreshold is the minimum estimated scalar work
	// (multiply-adds) before a kernel goes parallel.
	defaultSerialThreshold = 1 << 15
	// blocksPerWorker oversubscribes blocks for load balance on skewed
	// matrices.
	blocksPerWorker = 4
	// maxParallelism bounds the worker pool.
	maxParallelism = 256
)

var (
	workerCap  atomic.Int64 // 0 ⇒ use GOMAXPROCS
	workLimit  atomic.Int64 // serial-vs-parallel work threshold
	sharedPool struct {
		mu      sync.Mutex
		tasks   chan func()
		started int
	}
)

func init() {
	workLimit.Store(defaultSerialThreshold)
	// Deploy-time overrides (see docs/OPERATIONS.md): HINET_WORKERS caps
	// the pool like Parallelism(n), HINET_SERIAL_THRESHOLD moves the
	// serial-vs-parallel cutoff like SerialThreshold(n). Programmatic
	// calls made later (e.g. hinet serve -workers) still win.
	if v, err := strconv.Atoi(os.Getenv("HINET_WORKERS")); err == nil && v > 0 {
		Parallelism(v)
	}
	if v, err := strconv.Atoi(os.Getenv("HINET_SERIAL_THRESHOLD")); err == nil && v > 0 {
		SerialThreshold(v)
	}
}

// Parallelism sets the maximum number of pool workers used by the
// parallel kernels when n > 0 (clamped to [1, 256]) and returns the
// effective value. Parallelism(0) queries without changing anything.
// The default (and the value used when the knob has never been set) is
// GOMAXPROCS. Parallelism(1) forces every kernel down its serial path,
// which is how the benchmarks measure serial baselines. Lowering the
// cap below the current pool size takes effect as each excess resident
// worker finishes its next task and retires.
func Parallelism(n int) int {
	if n > 0 {
		if n > maxParallelism {
			n = maxParallelism
		}
		workerCap.Store(int64(n))
	}
	return effectiveWorkers()
}

// SerialThreshold sets the estimated-work cutoff below which kernels
// stay serial when n > 0, and returns the current value. The unit is
// scalar multiply-adds (≈ NNZ for mat-vec). SerialThreshold(0) queries.
func SerialThreshold(n int) int {
	if n > 0 {
		workLimit.Store(int64(n))
	}
	return int(workLimit.Load())
}

func effectiveWorkers() int {
	w := int(workerCap.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > maxParallelism {
		w = maxParallelism
	}
	return w
}

func threshold() int {
	return int(workLimit.Load())
}

// QueueDepth reports the number of tasks currently waiting on the
// shared pool's queue — a point-in-time backlog gauge for /metrics. A
// zero depth with busy workers is normal (runTasks callers help drain);
// a persistently high depth means kernels are arriving faster than the
// configured Parallelism can retire them.
func QueueDepth() int {
	sharedPool.mu.Lock()
	t := sharedPool.tasks
	sharedPool.mu.Unlock()
	if t == nil {
		return 0
	}
	return len(t)
}

// taskQueue returns the shared task channel, growing the pool to n
// resident workers. Workers are cheap (blocked goroutines); each one
// retires after a task if the Parallelism cap has dropped below its
// id, so a lowered cap shrinks the pool (sharedPool.started always
// equals the resident worker count).
func taskQueue(n int) chan func() {
	sharedPool.mu.Lock()
	if sharedPool.tasks == nil {
		sharedPool.tasks = make(chan func(), maxParallelism)
	}
	for sharedPool.started < n {
		go poolWorker(sharedPool.started, sharedPool.tasks)
		sharedPool.started++
	}
	t := sharedPool.tasks
	sharedPool.mu.Unlock()
	return t
}

func poolWorker(id int, tasks chan func()) {
	for f := range tasks {
		f()
		if id >= effectiveWorkers() {
			sharedPool.mu.Lock()
			sharedPool.started--
			sharedPool.mu.Unlock()
			return
		}
	}
}

// runTasks executes fn(0..count-1) on the shared pool and blocks until
// all complete. The calling goroutine helps drain the queue while it
// waits, so nested parallel kernels can never deadlock the pool: a
// waiter either makes progress on queued work or observes completion.
// A panic in any task is captured and re-raised on the calling
// goroutine (first panic wins; the original stack is lost but the
// value is preserved), matching the serial kernels' recoverability.
func runTasks(count, workers int, fn func(i int)) {
	if count == 1 {
		fn(0)
		return
	}
	tasks := taskQueue(workers)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	wg.Add(count)
	for i := 0; i < count; i++ {
		i := i
		f := func() {
			// LIFO defers: the recover runs before wg.Done, so the
			// panicVal write happens-before wg.Wait's return.
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			fn(i)
		}
		select {
		case tasks <- f:
		default:
			f() // pool saturated: run inline
		}
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			if panicVal != nil {
				panic(panicVal)
			}
			return
		case f := <-tasks:
			f()
		}
	}
}

// serialDispatch is the shared gate for kernels whose parallel path
// carries O(workers·cols) buffer overhead (MulVecT, Transpose, Mul):
// serial when only one worker is configured, the estimated work is
// below the threshold or dominated by the dimension-proportional
// overhead, or there is at most one row to split.
func serialDispatch(workers, work, cols, rows int) bool {
	return workers <= 1 || work < threshold() || work < 4*cols || rows <= 1
}

// scratchPool recycles the cols-sized accumulators of MulVecT's
// parallel path so power iterations don't re-allocate every call.
var scratchPool sync.Pool

func getScratch(n int) []float64 {
	if v := scratchPool.Get(); v != nil {
		if buf := v.([]float64); cap(buf) >= n {
			buf = buf[:n]
			for i := range buf {
				buf[i] = 0
			}
			return buf
		}
	}
	return make([]float64, n)
}

func putScratch(buf []float64) { scratchPool.Put(buf) }

// spgemmScratch is the Gustavson working set of one mulRange/gramRange
// call: a dense accumulator, its stamp array, and the touched-column
// list. The pool keeps these alive across products so SpGEMM-heavy
// workloads (meta-path materialization, commuting matrices) stop
// allocating cols-sized scratch per row block per call.
//
// Stamps are never cleared between uses: each call marks row r with
// base+r+1 and advances base past its largest mark on release, so a
// stale stamp from any earlier product can never collide. base resets
// (with a one-off stamp clear) long before integer overflow.
type spgemmScratch struct {
	acc     []float64
	stamp   []int
	touched []int32
	base    int
}

var (
	spgemmPool sync.Pool

	// Pool effectiveness counters: a hit reuses pooled scratch, a miss
	// allocates fresh (first use, GC reclaim, or a too-small pooled
	// buffer). Exported via SpgemmPoolStats for the serving metrics.
	spgemmHits   atomic.Uint64
	spgemmMisses atomic.Uint64
)

// SpgemmPoolStats returns the cumulative SpGEMM scratch-pool hit and
// miss counts since process start.
func SpgemmPoolStats() (hits, misses uint64) {
	return spgemmHits.Load(), spgemmMisses.Load()
}

// getSpgemm returns scratch with acc/stamp sized n whose stamp marks
// base+1 … base+maxMark are guaranteed unused.
func getSpgemm(n, maxMark int) *spgemmScratch {
	if v := spgemmPool.Get(); v != nil {
		s := v.(*spgemmScratch)
		if cap(s.acc) >= n {
			spgemmHits.Add(1)
			s.acc = s.acc[:n]
			s.stamp = s.stamp[:n]
			if s.base > math.MaxInt-maxMark-1 {
				// Reset must clear the stamp's full capacity: a later,
				// wider reslice would otherwise see stale marks beyond
				// the current length colliding with post-reset epochs.
				full := s.stamp[:cap(s.stamp)]
				for i := range full {
					full[i] = 0
				}
				s.base = 0
			}
			return s
		}
	}
	spgemmMisses.Add(1)
	return &spgemmScratch{
		acc:     make([]float64, n),
		stamp:   make([]int, n),
		touched: make([]int32, 0, 256),
	}
}

// putSpgemm releases scratch whose call marked rows up to maxMark.
func putSpgemm(s *spgemmScratch, maxMark int) {
	s.base += maxMark
	spgemmPool.Put(s)
}

// blockCount picks the number of contiguous blocks for an n-element
// range, given the effective worker count.
func blockCount(n, workers int) int {
	b := workers * blocksPerWorker
	if b > n {
		b = n
	}
	if b < 1 {
		b = 1
	}
	return b
}

// ParRange runs body over contiguous sub-ranges of [0, n), in parallel
// on the shared pool when the estimated scalar work is at or above the
// serial threshold and more than one worker is configured; otherwise it
// calls body(0, n) inline. Blocks are disjoint, so body may freely
// write to per-index slots of shared slices.
func ParRange(n, work int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := effectiveWorkers()
	if w <= 1 || work < threshold() {
		body(0, n)
		return
	}
	blocks := blockCount(n, w)
	runTasks(blocks, w, func(b int) {
		body(n*b/blocks, n*(b+1)/blocks)
	})
}

// ctxDone returns ctx's done channel, or nil when ctx is nil or can
// never be canceled (context.Background and friends). A nil channel is
// the "no cancellation" fast path: kernels skip every poll.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// chanClosed is the cooperative-cancellation poll: a single
// non-blocking receive, cheap enough to sit inside row-block loops.
func chanClosed(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// ParRangeCtx is ParRange with cooperative cancellation: ctx is polled
// before each block, and once it is done the remaining blocks are
// skipped. Blocks already dispatched still run to completion — bodies
// that want finer-grained cancellation can poll ctx themselves — so on
// a non-nil return (ctx.Err()) the caller must discard any partial
// results. With a non-cancelable ctx this is exactly ParRange.
func ParRangeCtx(ctx context.Context, n, work int, body func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	done := ctxDone(ctx)
	if done == nil {
		ParRange(n, work, body)
		return nil
	}
	if chanClosed(done) {
		return ctx.Err()
	}
	w := effectiveWorkers()
	blocks := blockCount(n, w)
	if w <= 1 || work < threshold() {
		// Serial path: still split into blocks so long ranges observe
		// cancellation between chunks.
		for b := 0; b < blocks; b++ {
			if chanClosed(done) {
				return ctx.Err()
			}
			body(n*b/blocks, n*(b+1)/blocks)
		}
		return nil
	}
	runTasks(blocks, w, func(b int) {
		if chanClosed(done) {
			return
		}
		body(n*b/blocks, n*(b+1)/blocks)
	})
	if chanClosed(done) {
		// Some block may have been skipped; even if none were, the
		// caller asked to stop — report it. (A skipped block implies a
		// closed channel, so nil is only returned for complete runs.)
		return ctx.Err()
	}
	return nil
}

// ParReduce sums f over block partitions of [0, n). Partial sums are
// combined in block order, so results are reproducible for fixed
// parallelism settings (they can differ from the serial sum by rounding
// only). Below the threshold it returns f(0, n).
func ParReduce(n, work int, f func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	w := effectiveWorkers()
	if w <= 1 || work < threshold() {
		return f(0, n)
	}
	blocks := blockCount(n, w)
	partial := make([]float64, blocks)
	runTasks(blocks, w, func(b int) {
		partial[b] = f(n*b/blocks, n*(b+1)/blocks)
	})
	s := 0.0
	for _, p := range partial {
		s += p
	}
	return s
}

// ParReduceMax maximizes f over block partitions of [0, n). Max is
// order-independent, so the result is bitwise identical to the serial
// evaluation. f must return -Inf-safe values; ParReduceMax of an empty
// range is 0.
func ParReduceMax(n, work int, f func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	w := effectiveWorkers()
	if w <= 1 || work < threshold() {
		return f(0, n)
	}
	blocks := blockCount(n, w)
	partial := make([]float64, blocks)
	runTasks(blocks, w, func(b int) {
		partial[b] = f(n*b/blocks, n*(b+1)/blocks)
	})
	m := partial[0]
	for _, p := range partial[1:] {
		if p > m {
			m = p
		}
	}
	return m
}

// rowBlockBounds splits the matrix's rows into at most `blocks`
// contiguous ranges balanced by stored nonzeros, returning the
// boundary rows (len = count+1, bounds[0] = 0, bounds[count] = rows).
func (m *Matrix) rowBlockBounds(blocks int) []int {
	bounds := make([]int, blocks+1)
	nnz := len(m.vals)
	for b := 1; b < blocks; b++ {
		target := nnz * b / blocks
		// First row whose cumulative nnz reaches the target.
		lo, hi := bounds[b-1], m.rows
		for lo < hi {
			mid := (lo + hi) / 2
			if m.rowPtr[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bounds[b] = lo
	}
	bounds[blocks] = m.rows
	return bounds
}

// forRowBlocks runs body over nnz-balanced row blocks of m, serially
// when the work estimate is below threshold.
func (m *Matrix) forRowBlocks(work int, body func(lo, hi int)) {
	w := effectiveWorkers()
	if w <= 1 || work < threshold() || m.rows <= 1 {
		body(0, m.rows)
		return
	}
	bounds := m.rowBlockBounds(blockCount(m.rows, w))
	runTasks(len(bounds)-1, w, func(b int) {
		if bounds[b] < bounds[b+1] {
			body(bounds[b], bounds[b+1])
		}
	})
}
