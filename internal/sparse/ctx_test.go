package sparse

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestParRangeCtxEquivalence: with a live (or non-cancelable) context,
// ParRangeCtx covers exactly the same range as ParRange, serial and
// parallel.
func TestParRangeCtxEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withParallel(t, workers, func() {
			const n = 1000
			var covered [n]atomic.Int32
			err := ParRangeCtx(context.Background(), n, n*1000, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
			})
			if err != nil {
				t.Fatalf("workers=%d: err = %v", workers, err)
			}
			for i := range covered {
				if got := covered[i].Load(); got != 1 {
					t.Fatalf("workers=%d: index %d covered %d times", workers, i, got)
				}
			}
		})
	}
}

// TestParRangeCtxPreCancelled: an already-dead context runs nothing.
func TestParRangeCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ParRangeCtx(ctx, 100, 1000000, func(lo, hi int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("body ran despite a pre-cancelled context")
	}
}

// TestParRangeCtxMidCancel: cancelling from inside the body stops the
// range early and surfaces ctx.Err().
func TestParRangeCtxMidCancel(t *testing.T) {
	withParallel(t, 1, func() { // serial path polls between blocks
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int32
		err := ParRangeCtx(ctx, 10000, 10000*1000, func(lo, hi int) {
			if calls.Add(1) == 1 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if got := calls.Load(); got >= 32 {
			t.Errorf("%d blocks ran after cancellation; polling is not cutting the range short", got)
		}
	})
}

// TestMulCtxMatchesMul: the cancellable product is the same product.
func TestMulCtxMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSR(rng, 120, 90, 6)
	b := randomCSR(rng, 90, 70, 5)
	want := m.Mul(b)
	got, err := m.MulCtx(context.Background(), b)
	if err != nil {
		t.Fatalf("MulCtx: %v", err)
	}
	sameMatrix(t, "MulCtx", want, got)

	g, err := m.GramCtx(context.Background())
	if err != nil {
		t.Fatalf("GramCtx: %v", err)
	}
	sameMatrix(t, "GramCtx", m.Gram(), g)
}

// TestMulCtxCancelled: a dead context aborts the product with its error
// and never returns a partial matrix.
func TestMulCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomCSR(rng, 200, 200, 8)
	b := randomCSR(rng, 200, 200, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if out, err := m.MulCtx(ctx, b); !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("MulCtx = (%v, %v), want (nil, context.Canceled)", out, err)
	}
	if out, err := m.GramCtx(ctx); !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("GramCtx = (%v, %v), want (nil, context.Canceled)", out, err)
	}
}
