package sparse

import (
	"math/rand"
	"reflect"
	"testing"
)

// rebuildWith reproduces the from-scratch result ApplyDelta must match:
// every stored entry of m as a coordinate, followed by the delta.
func rebuildWith(m *Matrix, delta []Coord) *Matrix {
	var coords []Coord
	for r := 0; r < m.Rows(); r++ {
		m.Row(r, func(c int, v float64) {
			coords = append(coords, Coord{Row: r, Col: c, Val: v})
		})
	}
	coords = append(coords, delta...)
	return NewFromCoords(m.Rows(), m.Cols(), coords)
}

func requireSame(t *testing.T, got, want *Matrix) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("dims: got %dx%d want %dx%d", got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	if !reflect.DeepEqual(got.rowPtr, want.rowPtr) {
		t.Fatalf("rowPtr mismatch:\ngot  %v\nwant %v", got.rowPtr, want.rowPtr)
	}
	if !reflect.DeepEqual(got.colIdx, want.colIdx) {
		t.Fatalf("colIdx mismatch:\ngot  %v\nwant %v", got.colIdx, want.colIdx)
	}
	if !reflect.DeepEqual(got.vals, want.vals) {
		t.Fatalf("vals mismatch:\ngot  %v\nwant %v", got.vals, want.vals)
	}
}

func TestApplyDeltaEmptyReturnsReceiver(t *testing.T) {
	m := NewFromCoords(3, 3, []Coord{{0, 0, 1}, {2, 1, 1}})
	if got := m.ApplyDelta(nil); got != m {
		t.Fatal("empty delta should return the receiver unchanged")
	}
}

func TestApplyDeltaInsertUpdateRemove(t *testing.T) {
	m := NewFromCoords(4, 5, []Coord{
		{0, 1, 1}, {0, 3, 2},
		{1, 0, 1},
		{3, 4, 5},
	})
	delta := []Coord{
		{0, 2, 7},  // insert between stored columns
		{0, 3, -2}, // cancel an entry to zero (drop)
		{1, 0, 3},  // patch a value
		{2, 2, 4},  // insert into an empty row
		{3, 0, 1},  // insert before stored columns
	}
	requireSame(t, m.ApplyDelta(delta), rebuildWith(m, delta))
	// Receiver untouched.
	requireSame(t, m, rebuildWith(m, nil))
}

func TestApplyDeltaValueOnlySharesStructure(t *testing.T) {
	m := NewFromCoords(3, 3, []Coord{{0, 0, 2}, {1, 1, 3}, {2, 0, 4}})
	n := m.ApplyDelta([]Coord{{1, 1, 5}})
	requireSame(t, n, rebuildWith(m, []Coord{{1, 1, 5}}))
	if &n.rowPtr[0] != &m.rowPtr[0] || &n.colIdx[0] != &m.colIdx[0] {
		t.Fatal("value-only delta should alias rowPtr/colIdx")
	}
	if &n.vals[0] == &m.vals[0] {
		t.Fatal("value array must be fresh")
	}
}

func TestApplyDeltaDuplicatesSumInOrder(t *testing.T) {
	m := NewFromCoords(2, 2, []Coord{{0, 0, 1}})
	delta := []Coord{{0, 1, 2}, {0, 1, 3}, {0, 0, -1}, {1, 1, 4}, {1, 1, -4}}
	requireSame(t, m.ApplyDelta(delta), rebuildWith(m, delta))
}

func TestApplyDeltaUnitTracking(t *testing.T) {
	m := NewFromCoords(2, 3, []Coord{{0, 0, 1}, {1, 2, 1}})
	if !m.Unit() {
		t.Fatal("base should be unit")
	}
	if n := m.ApplyDelta([]Coord{{0, 1, 1}}); !n.Unit() {
		t.Fatal("all-ones delta result should stay unit")
	}
	if n := m.ApplyDelta([]Coord{{0, 1, 2}}); n.Unit() {
		t.Fatal("non-one insert must clear unit")
	}
}

func TestApplyDeltaOutOfRangePanics(t *testing.T) {
	m := NewFromCoords(2, 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range delta")
		}
	}()
	m.ApplyDelta([]Coord{{2, 0, 1}})
}

// TestApplyDeltaRandomizedEquivalence drives random delta batches
// (integer weights, so all sums are exact) through chains of
// ApplyDelta calls and checks each stage bitwise against a
// from-scratch rebuild.
func TestApplyDeltaRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		var coords []Coord
		for i := 0; i < rng.Intn(150); i++ {
			coords = append(coords, Coord{
				Row: rng.Intn(rows), Col: rng.Intn(cols),
				Val: float64(rng.Intn(9) - 4),
			})
		}
		m := NewFromCoords(rows, cols, coords)
		all := append([]Coord(nil), coords...)
		for batch := 0; batch < 4; batch++ {
			var delta []Coord
			for i := 0; i < rng.Intn(30); i++ {
				c := Coord{Row: rng.Intn(rows), Col: rng.Intn(cols), Val: float64(rng.Intn(9) - 4)}
				if len(all) > 0 && rng.Intn(2) == 0 {
					// Bias toward touching existing entries, including
					// exact cancellation.
					e := all[rng.Intn(len(all))]
					c.Row, c.Col = e.Row, e.Col
					if rng.Intn(3) == 0 {
						c.Val = -m.At(e.Row, e.Col)
					}
				}
				delta = append(delta, c)
			}
			next := m.ApplyDelta(delta)
			all = append(all, delta...)
			requireSame(t, next, NewFromCoords(rows, cols, all))
			m = next
		}
	}
}

func TestGrow(t *testing.T) {
	m := NewFromCoords(2, 3, []Coord{{0, 1, 2}, {1, 2, 3}})
	n := m.Grow(4, 5)
	if n.Rows() != 4 || n.Cols() != 5 {
		t.Fatalf("got %dx%d", n.Rows(), n.Cols())
	}
	// Entries preserved; new rows/cols empty.
	requireSame(t, n, rebuildWith(m, nil).Grow(4, 5))
	if n.At(0, 1) != 2 || n.At(1, 2) != 3 || n.At(3, 4) != 0 {
		t.Fatal("entries not preserved by Grow")
	}
	if n.NNZ() != m.NNZ() {
		t.Fatal("Grow must not change nnz")
	}
	// Same dims returns the receiver; column-only growth shares rowPtr.
	if m.Grow(2, 3) != m {
		t.Fatal("no-op Grow should return the receiver")
	}
	if c := m.Grow(2, 9); &c.rowPtr[0] != &m.rowPtr[0] {
		t.Fatal("column-only Grow should share the row pointer")
	}
	// Grow then delta into the new region matches a fresh build.
	d := []Coord{{3, 4, 1}, {0, 4, 1}}
	requireSame(t, n.ApplyDelta(d), rebuildWith(n, d))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shrink")
		}
	}()
	m.Grow(1, 3)
}

// TestGrowEquivalentToRebuild checks the HIN usage pattern: growing a
// cached matrix produces exactly what a from-scratch build at the new
// dimensions would.
func TestGrowEquivalentToRebuild(t *testing.T) {
	coords := []Coord{{0, 0, 1}, {2, 1, 2}, {2, 2, 1}}
	m := NewFromCoords(3, 3, coords)
	requireSame(t, m.Grow(5, 4), NewFromCoords(5, 4, coords))
}
