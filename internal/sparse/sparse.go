// Package sparse implements the compressed sparse row (CSR) matrix and
// dense-vector kernels used by every iterative algorithm in this
// repository (PageRank, HITS, authority ranking, SimRank, PathSim,
// spectral clustering).
//
// The paper's algorithms were originally built on MATLAB-style numeric
// stacks; Go has no canonical sparse library, so this package hand-rolls
// the handful of kernels the reproduction needs: mat-vec, transposed
// mat-vec, row normalization, transpose, and sparse-sparse product for
// meta-path composition.
//
// The kernels are memory-bandwidth-bound, so the layout is kept lean:
// column indices are stored as int32 (HIN object counts stay far below
// 2^31; construction rejects larger dimensions), all-ones value arrays —
// the unweighted bipartite relations that dominate HIN workloads — are
// detected once at assembly time and multiplied by pattern-only loops
// that never touch the value array, and derived matrices (Scale,
// RowNormalized) alias the immutable rowPtr/colIdx structure instead of
// deep-copying it. The fused MulVecNorm/MulVecTNorm kernels apply a
// row-normalization vector on the fly, so power iterations never
// materialize a row-stochastic copy of their adjacency matrix.
//
// All heavy kernels execute on a shared goroutine pool (see
// parallel.go): operations over matrices with enough stored nonzeros
// are split into nnz-balanced row blocks across up to Parallelism(0)
// workers, while small operations fall back to the serial loops so unit
// tests and tiny networks pay no scheduling overhead. Matrices are
// immutable, so concurrent kernel calls on the same matrix are safe.
package sparse

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"slices"
)

// Coord is one nonzero entry used while assembling a matrix.
type Coord struct {
	Row, Col int
	Val      float64
}

// maxDim bounds matrix dimensions so every row and column index fits an
// int32 (column indices are stored compact; transposes swap the roles).
const maxDim = math.MaxInt32

// Matrix is an immutable CSR sparse matrix. Column indices are stored
// as int32 — half the index bandwidth of []int on 64-bit hosts — which
// is why construction rejects dimensions above MaxInt32.
type Matrix struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int32
	vals       []float64
	// unit records that every stored value is exactly 1.0 (an unweighted
	// relation), letting the kernels run pattern-only loops that skip
	// the value array entirely.
	unit bool
}

// NewFromCoords builds a CSR matrix from coordinate triples. Duplicate
// (row, col) entries are summed. Entries out of range panic, as do
// dimensions above MaxInt32 (column indices are stored as int32; a
// larger network must be sharded before it reaches the kernels).
func NewFromCoords(rows, cols int, entries []Coord) *Matrix {
	if rows < 0 || cols < 0 {
		panic("sparse: negative dimensions")
	}
	if rows > maxDim || cols > maxDim {
		panic(fmt.Sprintf("sparse: dimensions %dx%d exceed the int32 index range (max %d)", rows, cols, maxDim))
	}
	// Group entries by row with a counting sort — O(nnz + rows) — then
	// order each row by column. The per-row sorts are tiny, so this
	// replaces one comparison sort over all entries (the dominant cost
	// of cold matrix assembly) with near-linear passes.
	cnt := make([]int, rows+1)
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("sparse: entry (%d,%d) out of %dx%d", e.Row, e.Col, rows, cols))
		}
		cnt[e.Row+1]++
	}
	for r := 0; r < rows; r++ {
		cnt[r+1] += cnt[r]
	}
	sorted := make([]Coord, len(entries))
	next := append([]int(nil), cnt[:rows]...)
	for _, e := range entries {
		sorted[next[e.Row]] = e
		next[e.Row]++
	}
	for r := 0; r < rows; r++ {
		row := sorted[cnt[r]:cnt[r+1]]
		if len(row) > 1 {
			slices.SortFunc(row, func(a, b Coord) int { return cmp.Compare(a.Col, b.Col) })
		}
	}
	m := &Matrix{
		rows: rows, cols: cols,
		rowPtr: make([]int, rows+1),
		colIdx: make([]int32, 0, len(sorted)),
		vals:   make([]float64, 0, len(sorted)),
		unit:   true,
	}
	for i := 0; i < len(sorted); {
		c := sorted[i]
		v := 0.0
		j := i
		for ; j < len(sorted) && sorted[j].Row == c.Row && sorted[j].Col == c.Col; j++ {
			v += sorted[j].Val
		}
		if v != 0 {
			if v != 1 {
				m.unit = false
			}
			m.colIdx = append(m.colIdx, int32(c.Col))
			m.vals = append(m.vals, v)
			m.rowPtr[c.Row+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m
}

// NewFromDense builds a CSR matrix from a dense row-major [][]float64.
func NewFromDense(d [][]float64) *Matrix {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	var entries []Coord
	for r, row := range d {
		if len(row) != cols {
			panic("sparse: ragged dense input")
		}
		for c, v := range row {
			if v != 0 {
				entries = append(entries, Coord{r, c, v})
			}
		}
	}
	return NewFromCoords(rows, cols, entries)
}

// allOnes reports whether every value is exactly 1.0.
func allOnes(vals []float64) bool {
	for _, v := range vals {
		if v != 1 {
			return false
		}
	}
	return true
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of stored nonzeros.
func (m *Matrix) NNZ() int { return len(m.vals) }

// Unit reports whether every stored value is exactly 1.0, the
// unweighted-relation pattern the kernels exploit with value-skipping
// loops.
func (m *Matrix) Unit() bool { return m.unit }

// Row invokes f(col, val) for every stored entry of row r.
func (m *Matrix) Row(r int, f func(col int, val float64)) {
	for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
		f(int(m.colIdx[i]), m.vals[i])
	}
}

// RowNNZ returns the number of stored entries in row r.
func (m *Matrix) RowNNZ(r int) int { return m.rowPtr[r+1] - m.rowPtr[r] }

// At returns the value at (r, c); zero when not stored. O(log nnz(row)).
func (m *Matrix) At(r, c int) float64 {
	if c < 0 || c >= m.cols {
		return 0
	}
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	i, ok := slices.BinarySearch(m.colIdx[lo:hi], int32(c))
	if ok {
		return m.vals[lo+i]
	}
	return 0
}

// RowSum returns the sum of entries in row r.
func (m *Matrix) RowSum(r int) float64 {
	s := 0.0
	for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
		s += m.vals[i]
	}
	return s
}

// Sum returns the sum of all entries.
func (m *Matrix) Sum() float64 {
	s := 0.0
	for _, v := range m.vals {
		s += v
	}
	return s
}

// RowInvSums returns the inverse row sums: inv[r] = 1/RowSum(r), with
// rows summing to zero mapped to 1 so that scaling by inv reproduces
// RowNormalized's leave-zero-rows-alone contract. Feed the result to
// MulVecNorm / MulVecTNorm to run row-stochastic iterations without
// materializing the normalized matrix.
func (m *Matrix) RowInvSums() []float64 {
	inv := make([]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		if s := m.RowSum(r); s != 0 {
			inv[r] = 1 / s
		} else {
			inv[r] = 1
		}
	}
	return inv
}

// MulVec computes y = M x. It panics on dimension mismatch; y is
// allocated when nil, otherwise reused (len must equal Rows). Large
// matrices are processed in parallel row blocks; because each y[r] is
// accumulated by exactly one worker in the serial order, the result is
// bitwise identical to the serial loop.
func (m *Matrix) MulVec(x, y []float64) []float64 {
	return m.mulVecDispatch(x, nil, y)
}

// MulVecNorm computes y = diag(inv)·M·x — a fused row-scaled mat-vec.
// With inv = RowInvSums() this is exactly RowNormalized().MulVec(x, y)
// (bitwise: each product term is (val·inv[r])·x[c] in the same order)
// without ever materializing the normalized value array.
func (m *Matrix) MulVecNorm(x, inv, y []float64) []float64 {
	if len(inv) != m.rows {
		panic("sparse: MulVecNorm inv length mismatch")
	}
	return m.mulVecDispatch(x, inv, y)
}

func (m *Matrix) mulVecDispatch(x, inv, y []float64) []float64 {
	if len(x) != m.cols {
		panic("sparse: MulVec dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.rows)
	} else if len(y) != m.rows {
		panic("sparse: MulVec output length mismatch")
	}
	m.forRowBlocks(len(m.vals), func(lo, hi int) {
		switch {
		case m.unit && inv == nil:
			// Pattern-only loop: all values are 1, skip the value array.
			for r := lo; r < hi; r++ {
				s := 0.0
				for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
					s += x[m.colIdx[i]]
				}
				y[r] = s
			}
		case m.unit:
			for r := lo; r < hi; r++ {
				xi := inv[r]
				s := 0.0
				for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
					s += xi * x[m.colIdx[i]]
				}
				y[r] = s
			}
		case inv == nil:
			for r := lo; r < hi; r++ {
				s := 0.0
				for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
					s += m.vals[i] * x[m.colIdx[i]]
				}
				y[r] = s
			}
		default:
			for r := lo; r < hi; r++ {
				xi := inv[r]
				s := 0.0
				for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
					s += (m.vals[i] * xi) * x[m.colIdx[i]]
				}
				y[r] = s
			}
		}
	})
	return y
}

// MulVecT computes y = Mᵀ x without materializing the transpose. The
// parallel path scatters each row block into a private accumulator and
// combines the accumulators in block order, so results are reproducible
// for a fixed Parallelism setting (rounding may differ from the serial
// order by ~1 ulp per combine).
func (m *Matrix) MulVecT(x, y []float64) []float64 {
	return m.mulVecTDispatch(x, nil, y)
}

// MulVecTNorm computes y = (diag(inv)·M)ᵀ x — the transposed fused
// row-scaled mat-vec. With inv = RowInvSums() this is exactly
// RowNormalized().MulVecT(x, y) (bitwise per scattered term), which is
// what lets PageRank-style power iterations drop the row-stochastic
// matrix copy entirely.
func (m *Matrix) MulVecTNorm(x, inv, y []float64) []float64 {
	if len(inv) != m.rows {
		panic("sparse: MulVecTNorm inv length mismatch")
	}
	return m.mulVecTDispatch(x, inv, y)
}

func (m *Matrix) mulVecTDispatch(x, inv, y []float64) []float64 {
	if len(x) != m.rows {
		panic("sparse: MulVecT dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.cols)
	} else if len(y) != m.cols {
		panic("sparse: MulVecT output length mismatch")
	}
	// The parallel path pays O(workers·cols) for the per-block
	// accumulators and their combine, so besides the usual threshold it
	// requires the nnz work to dominate that dimension-proportional
	// overhead (wide, hollow matrices — e.g. per-cluster row
	// restrictions over a full attribute space — stay serial).
	w := effectiveWorkers()
	if serialDispatch(w, len(m.vals), m.cols, m.rows) {
		m.mulVecTRange(x, inv, y, 0, m.rows, true)
		return y
	}
	// One nnz-balanced block per worker (not oversubscribed: each block
	// carries a cols-sized accumulator, recycled via scratchPool).
	bounds := m.rowBlockBounds(min(w, m.rows))
	blocks := len(bounds) - 1
	partial := make([][]float64, blocks)
	runTasks(blocks, w, func(b int) {
		buf := getScratch(m.cols)
		m.mulVecTRange(x, inv, buf, bounds[b], bounds[b+1], false)
		partial[b] = buf
	})
	ParRange(m.cols, blocks*m.cols, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			s := 0.0
			for b := 0; b < blocks; b++ {
				s += partial[b][c]
			}
			y[c] = s
		}
	})
	for _, buf := range partial {
		putScratch(buf)
	}
	return y
}

// mulVecTRange accumulates rows [lo, hi) of Mᵀ x (row-scaled by inv
// when non-nil) into y; when zero is set, y is cleared first.
func (m *Matrix) mulVecTRange(x, inv, y []float64, lo, hi int, zero bool) {
	if zero {
		for i := range y {
			y[i] = 0
		}
	}
	for r := lo; r < hi; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		rlo, rhi := m.rowPtr[r], m.rowPtr[r+1]
		switch {
		case m.unit && inv == nil:
			for i := rlo; i < rhi; i++ {
				y[m.colIdx[i]] += xr
			}
		case m.unit:
			z := inv[r] * xr
			for i := rlo; i < rhi; i++ {
				y[m.colIdx[i]] += z
			}
		case inv == nil:
			for i := rlo; i < rhi; i++ {
				y[m.colIdx[i]] += m.vals[i] * xr
			}
		default:
			xi := inv[r]
			for i := rlo; i < rhi; i++ {
				y[m.colIdx[i]] += (m.vals[i] * xi) * xr
			}
		}
	}
}

// Transpose returns Mᵀ as a new CSR matrix. The parallel path runs the
// classic two-pass algorithm with per-block column counters: block b's
// entries for destination row c land at offset rowPtr[c] + Σ_{b'<b}
// counts[b'][c], which preserves the serial (source-row) order within
// every destination row — the output is bitwise identical to the serial
// path.
func (m *Matrix) Transpose() *Matrix {
	t := &Matrix{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int32, len(m.colIdx)),
		vals:   make([]float64, len(m.vals)),
		unit:   m.unit, // a permutation of the same values
	}
	// Like MulVecT, the parallel path carries O(workers·cols) counter
	// overhead, so wide hollow matrices stay on the serial algorithm.
	w := effectiveWorkers()
	if serialDispatch(w, len(m.vals), m.cols, m.rows) {
		m.transposeSerial(t)
		return t
	}
	bounds := m.rowBlockBounds(min(w, m.rows))
	blocks := len(bounds) - 1
	counts := make([][]int, blocks)
	runTasks(blocks, w, func(b int) {
		cnt := make([]int, m.cols)
		for i := m.rowPtr[bounds[b]]; i < m.rowPtr[bounds[b+1]]; i++ {
			cnt[m.colIdx[i]]++
		}
		counts[b] = cnt
	})
	// One serial O(blocks·cols) pass builds the row pointer and turns
	// counts[b] into block b's write cursors in place.
	for c := 0; c < m.cols; c++ {
		off := t.rowPtr[c]
		for b := 0; b < blocks; b++ {
			n := counts[b][c]
			counts[b][c] = off
			off += n
		}
		t.rowPtr[c+1] = off
	}
	runTasks(blocks, w, func(b int) {
		next := counts[b]
		for r := bounds[b]; r < bounds[b+1]; r++ {
			for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
				c := m.colIdx[i]
				pos := next[c]
				next[c]++
				t.colIdx[pos] = int32(r)
				t.vals[pos] = m.vals[i]
			}
		}
	})
	return t
}

func (m *Matrix) transposeSerial(t *Matrix) {
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for c := 0; c < m.cols; c++ {
		t.rowPtr[c+1] += t.rowPtr[c]
	}
	next := append([]int(nil), t.rowPtr[:m.cols]...)
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			c := m.colIdx[i]
			pos := next[c]
			next[c]++
			t.colIdx[pos] = int32(r)
			t.vals[pos] = m.vals[i]
		}
	}
}

// RowNormalized returns a copy of M whose rows each sum to 1 (rows that
// sum to zero are left all-zero). This is the row-stochastic transition
// matrix used by random-walk style rankings. The result aliases the
// receiver's immutable rowPtr/colIdx structure — only the value array
// is fresh. Each row is scaled by the reciprocal of its sum (one
// division per row, and the same product the fused MulVecNorm /
// MulVecTNorm kernels apply, keeping all normalization paths bitwise
// consistent; entries can differ from per-entry division by ≤ 1 ulp).
// Rows are normalized in parallel blocks; output is bitwise identical
// to the serial loop. Iterative consumers can skip even the value copy
// with the fused kernels.
func (m *Matrix) RowNormalized() *Matrix {
	n := &Matrix{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: m.rowPtr,
		colIdx: m.colIdx,
		vals:   make([]float64, len(m.vals)),
	}
	m.forRowBlocks(len(m.vals), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			s := m.RowSum(r)
			if s == 0 {
				copy(n.vals[m.rowPtr[r]:m.rowPtr[r+1]], m.vals[m.rowPtr[r]:m.rowPtr[r+1]])
				continue
			}
			inv := 1 / s
			for i := n.rowPtr[r]; i < n.rowPtr[r+1]; i++ {
				n.vals[i] = m.vals[i] * inv
			}
		}
	})
	n.unit = allOnes(n.vals)
	return n
}

// Scale returns a copy of M with every entry multiplied by f. The
// result aliases the receiver's immutable rowPtr/colIdx structure.
func (m *Matrix) Scale(f float64) *Matrix {
	n := &Matrix{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: m.rowPtr,
		colIdx: m.colIdx,
		vals:   make([]float64, len(m.vals)),
	}
	for i, v := range m.vals {
		n.vals[i] = v * f
	}
	n.unit = m.unit && f == 1 || allOnes(n.vals)
	return n
}

// mulPart is one row-block's slice of a sparse product.
type mulPart struct {
	colIdx []int32
	vals   []float64
	rowNNZ []int // per-row output counts for rows [lo, hi)
}

// mulRange computes rows [lo, hi) of M·B with a dense stamped
// accumulator (Gustavson's algorithm): O(flops) with no hashing, and
// the accumulation order per output entry matches the serial loop
// exactly, so parallel products are bitwise identical to serial ones.
// The accumulator/stamp/touched scratch comes from a process-wide pool
// (see spgemmScratch), so repeated products allocate nothing beyond
// their output.
func (m *Matrix) mulRange(b *Matrix, lo, hi int, done <-chan struct{}) mulPart {
	s := getSpgemm(b.cols, hi)
	acc, stamp := s.acc, s.stamp
	touched := s.touched[:0]
	base := s.base
	part := mulPart{rowNNZ: make([]int, hi-lo)}
	for r := lo; r < hi; r++ {
		// Cooperative cancellation checkpoint, every 64 rows so the
		// poll never shows up in kernel profiles. A cancelled call
		// returns a truncated part; the dispatcher (mul) detects the
		// closed channel and discards every part before assembly.
		if done != nil && (r-lo)&63 == 63 && chanClosed(done) {
			break
		}
		touched = touched[:0]
		mark := base + r + 1
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			mid := int(m.colIdx[i])
			mv := 1.0
			if !m.unit {
				mv = m.vals[i]
			}
			blo, bhi := b.rowPtr[mid], b.rowPtr[mid+1]
			if b.unit {
				// Pattern-only expansion: B's values are all 1.
				for j := blo; j < bhi; j++ {
					c := b.colIdx[j]
					if stamp[c] != mark {
						stamp[c] = mark
						acc[c] = 0
						touched = append(touched, c)
					}
					acc[c] += mv
				}
			} else {
				for j := blo; j < bhi; j++ {
					c := b.colIdx[j]
					if stamp[c] != mark {
						stamp[c] = mark
						acc[c] = 0
						touched = append(touched, c)
					}
					acc[c] += mv * b.vals[j]
				}
			}
		}
		part.emit(touched, acc, stamp, mark, 0, b.cols, r-lo)
	}
	s.touched = touched
	putSpgemm(s, hi)
	return part
}

// emit appends row row's accumulated entries in ascending column
// order. Sparse rows sort their touched list; dense rows (over a
// quarter of the candidate span) skip the sort and scan the stamp
// array sequentially instead — same output order, branch-predictable,
// and it removes the dominant per-row sort from dense products.
func (part *mulPart) emit(touched []int32, acc []float64, stamp []int, mark, span0, span1, row int) {
	if len(touched)*4 >= span1-span0 {
		for c := span0; c < span1; c++ {
			if stamp[c] == mark && acc[c] != 0 {
				part.colIdx = append(part.colIdx, int32(c))
				part.vals = append(part.vals, acc[c])
				part.rowNNZ[row]++
			}
		}
		return
	}
	slices.Sort(touched)
	for _, c := range touched {
		if acc[c] != 0 {
			part.colIdx = append(part.colIdx, c)
			part.vals = append(part.vals, acc[c])
			part.rowNNZ[row]++
		}
	}
}

// Mul returns the sparse product M·B. Dimensions must agree. Row blocks
// of the output are computed independently on the worker pool and
// stitched together in row order.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	out, _ := m.mul(b, nil)
	return out
}

// MulCtx is Mul with cooperative cancellation: row-block loops poll
// ctx, and a cancelled product stops burning CPU (already-dispatched
// blocks finish their current 64-row stride) and returns ctx.Err()
// with a nil matrix. With a non-cancelable ctx it is exactly Mul.
func (m *Matrix) MulCtx(ctx context.Context, b *Matrix) (*Matrix, error) {
	done := ctxDone(ctx)
	if done != nil && chanClosed(done) {
		return nil, ctx.Err()
	}
	out, aborted := m.mul(b, done)
	if aborted {
		return nil, ctx.Err()
	}
	return out, nil
}

func (m *Matrix) mul(b *Matrix, done <-chan struct{}) (*Matrix, bool) {
	if m.cols != b.rows {
		panic("sparse: Mul dimension mismatch")
	}
	out := &Matrix{rows: m.rows, cols: b.cols, rowPtr: make([]int, m.rows+1)}
	// Estimated flops: every nonzero of M expands into one of B's rows.
	work := 0
	if b.rows > 0 {
		work = len(m.vals) * (1 + len(b.vals)/b.rows)
	}
	// Each parallel block carries cols-sized dense scratch, so wide
	// products with little work stay serial (one scratch allocation).
	w := effectiveWorkers()
	if serialDispatch(w, work, b.cols, m.rows) {
		part := m.mulRange(b, 0, m.rows, done)
		if chanClosed(done) {
			return nil, true
		}
		out.colIdx, out.vals = part.colIdx, part.vals
		for r, n := range part.rowNNZ {
			out.rowPtr[r+1] = out.rowPtr[r] + n
		}
		out.unit = allOnes(out.vals)
		return out, false
	}
	// One nnz-balanced block per worker, not oversubscribed: each
	// mulRange call holds cols-sized dense scratch, so extra blocks
	// multiply scratch residency without improving balance.
	bounds := m.rowBlockBounds(min(w, m.rows))
	blocks := len(bounds) - 1
	parts := make([]mulPart, blocks)
	runTasks(blocks, w, func(bk int) {
		if chanClosed(done) {
			return
		}
		parts[bk] = m.mulRange(b, bounds[bk], bounds[bk+1], done)
	})
	if chanClosed(done) {
		return nil, true
	}
	total := 0
	for _, p := range parts {
		total += len(p.vals)
	}
	out.colIdx = make([]int32, total)
	out.vals = make([]float64, total)
	off := 0
	offsets := make([]int, blocks)
	for bk, p := range parts {
		offsets[bk] = off
		for i, n := range p.rowNNZ {
			r := bounds[bk] + i
			out.rowPtr[r+1] = out.rowPtr[r] + n
		}
		off += len(p.vals)
	}
	runTasks(blocks, w, func(bk int) {
		copy(out.colIdx[offsets[bk]:], parts[bk].colIdx)
		copy(out.vals[offsets[bk]:], parts[bk].vals)
	})
	out.unit = allOnes(out.vals)
	return out, false
}

// gramRange computes the upper-triangle entries (col ≥ row) of rows
// [lo, hi) of M·Mᵀ, given t = Mᵀ. It is Gustavson's algorithm with one
// twist: each scattered row of t is entered at the first column ≥ r
// (binary search over the sorted column indices), so strictly-lower
// entries are never touched — about half the multiply work of a full
// product. Accumulation order per output entry matches the serial loop,
// so parallel Grams are bitwise identical to serial ones. Scratch is
// pooled like mulRange's.
func (m *Matrix) gramRange(t *Matrix, lo, hi int, done <-chan struct{}) mulPart {
	s := getSpgemm(t.cols, hi)
	acc, stamp := s.acc, s.stamp
	touched := s.touched[:0]
	base := s.base
	part := mulPart{rowNNZ: make([]int, hi-lo)}
	for r := lo; r < hi; r++ {
		// Same cancellation checkpoint as mulRange: truncated parts are
		// discarded by gram before assembly.
		if done != nil && (r-lo)&63 == 63 && chanClosed(done) {
			break
		}
		touched = touched[:0]
		mark := base + r + 1
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			mid := int(m.colIdx[i])
			mv := 1.0
			if !m.unit {
				mv = m.vals[i]
			}
			tlo, thi := t.rowPtr[mid], t.rowPtr[mid+1]
			j, _ := slices.BinarySearch(t.colIdx[tlo:thi], int32(r))
			j += tlo
			if t.unit {
				for ; j < thi; j++ {
					c := t.colIdx[j]
					if stamp[c] != mark {
						stamp[c] = mark
						acc[c] = 0
						touched = append(touched, c)
					}
					acc[c] += mv
				}
			} else {
				for ; j < thi; j++ {
					c := t.colIdx[j]
					if stamp[c] != mark {
						stamp[c] = mark
						acc[c] = 0
						touched = append(touched, c)
					}
					acc[c] += mv * t.vals[j]
				}
			}
		}
		// Upper-triangle rows only hold columns ≥ r, so the dense scan
		// (inside emit) starts there.
		part.emit(touched, acc, stamp, mark, r, t.cols, r-lo)
	}
	s.touched = touched
	putSpgemm(s, hi)
	return part
}

// gramBlockBounds splits the rows into at most `blocks` contiguous
// ranges balanced by estimated upper-triangle work: row r's scatter
// only touches columns ≥ r, so its cost shrinks with the row index —
// weighting by nnz(r)·(rows−r) instead of raw nnz keeps the early
// (heavy) rows from landing in one block.
func (m *Matrix) gramBlockBounds(blocks int) []int {
	total := 0.0
	for r := 0; r < m.rows; r++ {
		total += float64(m.rowPtr[r+1]-m.rowPtr[r]) * float64(m.rows-r)
	}
	bounds := make([]int, blocks+1)
	cum := 0.0
	b := 1
	for r := 0; r < m.rows && b < blocks; r++ {
		cum += float64(m.rowPtr[r+1]-m.rowPtr[r]) * float64(m.rows-r)
		for b < blocks && cum >= total*float64(b)/float64(blocks) {
			bounds[b] = r + 1
			b++
		}
	}
	for ; b < blocks; b++ {
		bounds[b] = m.rows
	}
	bounds[blocks] = m.rows
	return bounds
}

// Gram returns the Gram product G = M·Mᵀ. The result is symmetric by
// construction: only the upper triangle is computed (halving the
// multiply work versus Mul(Transpose())) and the strict-lower triangle
// is mirrored from it, so G[i][j] and G[j][i] are the same float64.
// This is the fused kernel the meta-path engine uses to evaluate a
// symmetric path from its half-path product. Upper-triangle row blocks
// run in parallel on the shared worker pool.
func (m *Matrix) Gram() *Matrix {
	out, _ := m.gram(nil)
	return out
}

// GramCtx is Gram with cooperative cancellation, mirroring MulCtx: a
// cancelled factorization returns ctx.Err() with a nil matrix.
func (m *Matrix) GramCtx(ctx context.Context) (*Matrix, error) {
	done := ctxDone(ctx)
	if done != nil && chanClosed(done) {
		return nil, ctx.Err()
	}
	out, aborted := m.gram(done)
	if aborted {
		return nil, ctx.Err()
	}
	return out, nil
}

func (m *Matrix) gram(done <-chan struct{}) (*Matrix, bool) {
	t := m.Transpose()
	out := &Matrix{rows: m.rows, cols: m.rows, rowPtr: make([]int, m.rows+1)}
	// Estimated flops: every nonzero expands into one of t's rows, and
	// the triangle restriction halves that.
	work := 0
	if m.cols > 0 {
		work = len(m.vals) * (1 + len(m.vals)/m.cols) / 2
	}
	w := effectiveWorkers()
	var parts []mulPart
	var bounds []int
	if serialDispatch(w, work, m.rows, m.rows) {
		parts = []mulPart{m.gramRange(t, 0, m.rows, done)}
		bounds = []int{0, m.rows}
	} else {
		// One block per worker (each carries rows-sized dense scratch,
		// like Mul), balanced by triangle work rather than raw nnz.
		bounds = m.gramBlockBounds(min(w, m.rows))
		parts = make([]mulPart, len(bounds)-1)
		runTasks(len(parts), w, func(bk int) {
			if chanClosed(done) {
				return
			}
			parts[bk] = m.gramRange(t, bounds[bk], bounds[bk+1], done)
		})
	}
	if chanClosed(done) {
		return nil, true
	}
	// Assemble the full symmetric CSR from the upper parts. Pass one
	// counts row populations: each upper entry (r, c) lands in row r,
	// and strictly-upper ones mirror into row c.
	for bk, p := range parts {
		idx := 0
		for i, n := range p.rowNNZ {
			r := bounds[bk] + i
			out.rowPtr[r+1] += n
			for e := 0; e < n; e++ {
				if int(p.colIdx[idx]) > r {
					out.rowPtr[p.colIdx[idx]+1]++
				}
				idx++
			}
		}
	}
	for r := 0; r < m.rows; r++ {
		out.rowPtr[r+1] += out.rowPtr[r]
	}
	total := out.rowPtr[m.rows]
	out.colIdx = make([]int32, total)
	out.vals = make([]float64, total)
	next := append([]int(nil), out.rowPtr[:m.rows]...)
	// Pass two fills rows in source order. Processing upper rows in
	// ascending order keeps every output row sorted: the mirrors into
	// row c (columns = source rows < c, ascending) are all written
	// before row c's own upper entries (columns ≥ c, ascending).
	for bk, p := range parts {
		idx := 0
		for i, n := range p.rowNNZ {
			r := bounds[bk] + i
			for e := 0; e < n; e++ {
				c, v := p.colIdx[idx], p.vals[idx]
				out.colIdx[next[r]] = c
				out.vals[next[r]] = v
				next[r]++
				if int(c) > r {
					out.colIdx[next[c]] = int32(r)
					out.vals[next[c]] = v
					next[c]++
				}
				idx++
			}
		}
	}
	out.unit = allOnes(out.vals)
	return out, false
}

// RowSlice returns the sub-matrix of rows [lo, hi) as a zero-copy view:
// the column and value arrays alias the receiver's storage (matrices
// are immutable by convention, so aliasing is safe) and only the row
// pointer is rebased — O(hi−lo) regardless of nnz. This is the
// horizontal-partitioning primitive of the sharded serving tier: a
// shard's slice of a half-path product feeds the same kernels as the
// full matrix and, because the kernels accumulate per output entry in
// ascending-k order, products of a slice are bitwise identical to the
// matching rows of the full product.
func (m *Matrix) RowSlice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.rows {
		panic(fmt.Sprintf("sparse: RowSlice [%d,%d) out of %d rows", lo, hi, m.rows))
	}
	base, end := m.rowPtr[lo], m.rowPtr[hi]
	rp := make([]int, hi-lo+1)
	for r := lo; r <= hi; r++ {
		rp[r-lo] = m.rowPtr[r] - base
	}
	return &Matrix{
		rows:   hi - lo,
		cols:   m.cols,
		rowPtr: rp,
		colIdx: m.colIdx[base:end:end],
		vals:   m.vals[base:end:end],
		unit:   m.unit || allOnes(m.vals[base:end]),
	}
}

// ColSlice returns the sub-matrix of columns [lo, hi), rebased to start
// at column zero. Each output row preserves the source row's ascending
// column order and its exact float64 values, so scanning a sliced row
// visits precisely the source entries with lo ≤ col < hi — the property
// the sharded PathSim tier relies on for bitwise-identical partial
// top-k answers. O(rows·log nnz/row + output nnz).
func (m *Matrix) ColSlice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.cols {
		panic(fmt.Sprintf("sparse: ColSlice [%d,%d) out of %d cols", lo, hi, m.cols))
	}
	out := &Matrix{rows: m.rows, cols: hi - lo, rowPtr: make([]int, m.rows+1)}
	starts := make([]int, m.rows)
	for r := 0; r < m.rows; r++ {
		rlo, rhi := m.rowPtr[r], m.rowPtr[r+1]
		a, _ := slices.BinarySearch(m.colIdx[rlo:rhi], int32(lo))
		b, _ := slices.BinarySearch(m.colIdx[rlo:rhi], int32(hi))
		starts[r] = rlo + a
		out.rowPtr[r+1] = out.rowPtr[r] + (b - a)
	}
	total := out.rowPtr[m.rows]
	out.colIdx = make([]int32, total)
	out.vals = make([]float64, total)
	for r := 0; r < m.rows; r++ {
		n := out.rowPtr[r+1] - out.rowPtr[r]
		for i := 0; i < n; i++ {
			out.colIdx[out.rowPtr[r]+i] = m.colIdx[starts[r]+i] - int32(lo)
		}
		copy(out.vals[out.rowPtr[r]:out.rowPtr[r+1]], m.vals[starts[r]:starts[r]+n])
	}
	out.unit = m.unit || allOnes(out.vals)
	return out
}

// GramDiagonal returns the diagonal of M·Mᵀ — per-row sums of squared
// values — without materializing the product. Each row's sum runs over
// the stored entries in ascending-column order, exactly the
// accumulation sequence the fused Gram kernel uses for its (i, i)
// entries, so the result is bitwise identical to Gram().Diagonal().
// The sharded tier uses this to hand every shard the full PathSim
// denominator vector at O(nnz) cost.
func (m *Matrix) GramDiagonal() []float64 {
	d := make([]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		s := 0.0
		if m.unit {
			// The Gram kernel's pattern-only loop adds 1.0 per entry.
			for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
				s += 1.0
			}
		} else {
			for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
				v := m.vals[i]
				s += v * v
			}
		}
		d[r] = s
	}
	return d
}

// Dense materializes the matrix as row-major [][]float64 (test helper;
// avoid on large matrices).
func (m *Matrix) Dense() [][]float64 {
	d := make([][]float64, m.rows)
	for r := range d {
		d[r] = make([]float64, m.cols)
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			d[r][m.colIdx[i]] = m.vals[i]
		}
	}
	return d
}

// Diagonal returns the main diagonal as a dense vector.
func (m *Matrix) Diagonal() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = m.At(i, i)
	}
	return d
}

// Dot returns the inner product of two equal-length dense vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// AXPY computes y += a*x in place. Element-wise, so the parallel path
// is bitwise identical to the serial one.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("sparse: AXPY length mismatch")
	}
	ParRange(len(x), len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	})
}

// ScaleVec multiplies v by a in place.
func ScaleVec(a float64, v []float64) {
	ParRange(len(v), len(v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v[i] *= a
		}
	})
}

// MaxAbsDiff returns max_i |a_i - b_i|, the convergence test used by the
// fixed-point iterations. Max is order-independent, so the parallel
// reduction is exact.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: MaxAbsDiff length mismatch")
	}
	return ParReduceMax(len(a), len(a), func(lo, hi int) float64 {
		m := 0.0
		for i := lo; i < hi; i++ {
			d := math.Abs(a[i] - b[i])
			if d > m {
				m = d
			}
		}
		return m
	})
}
