// Package sparse implements the compressed sparse row (CSR) matrix and
// dense-vector kernels used by every iterative algorithm in this
// repository (PageRank, HITS, authority ranking, SimRank, PathSim,
// spectral clustering).
//
// The paper's algorithms were originally built on MATLAB-style numeric
// stacks; Go has no canonical sparse library, so this package hand-rolls
// the handful of kernels the reproduction needs: mat-vec, transposed
// mat-vec, row normalization, transpose, and sparse-sparse product for
// meta-path composition.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Coord is one nonzero entry used while assembling a matrix.
type Coord struct {
	Row, Col int
	Val      float64
}

// Matrix is an immutable CSR sparse matrix.
type Matrix struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// NewFromCoords builds a CSR matrix from coordinate triples. Duplicate
// (row, col) entries are summed. Entries out of range panic.
func NewFromCoords(rows, cols int, entries []Coord) *Matrix {
	if rows < 0 || cols < 0 {
		panic("sparse: negative dimensions")
	}
	sorted := append([]Coord(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &Matrix{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		c := sorted[i]
		if c.Row < 0 || c.Row >= rows || c.Col < 0 || c.Col >= cols {
			panic(fmt.Sprintf("sparse: entry (%d,%d) out of %dx%d", c.Row, c.Col, rows, cols))
		}
		v := 0.0
		j := i
		for ; j < len(sorted) && sorted[j].Row == c.Row && sorted[j].Col == c.Col; j++ {
			v += sorted[j].Val
		}
		if v != 0 {
			m.colIdx = append(m.colIdx, c.Col)
			m.vals = append(m.vals, v)
			m.rowPtr[c.Row+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m
}

// NewFromDense builds a CSR matrix from a dense row-major [][]float64.
func NewFromDense(d [][]float64) *Matrix {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	var entries []Coord
	for r, row := range d {
		if len(row) != cols {
			panic("sparse: ragged dense input")
		}
		for c, v := range row {
			if v != 0 {
				entries = append(entries, Coord{r, c, v})
			}
		}
	}
	return NewFromCoords(rows, cols, entries)
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of stored nonzeros.
func (m *Matrix) NNZ() int { return len(m.vals) }

// Row invokes f(col, val) for every stored entry of row r.
func (m *Matrix) Row(r int, f func(col int, val float64)) {
	for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
		f(m.colIdx[i], m.vals[i])
	}
}

// RowNNZ returns the number of stored entries in row r.
func (m *Matrix) RowNNZ(r int) int { return m.rowPtr[r+1] - m.rowPtr[r] }

// At returns the value at (r, c); zero when not stored. O(log nnz(row)).
func (m *Matrix) At(r, c int) float64 {
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	i := lo + sort.SearchInts(m.colIdx[lo:hi], c)
	if i < hi && m.colIdx[i] == c {
		return m.vals[i]
	}
	return 0
}

// RowSum returns the sum of entries in row r.
func (m *Matrix) RowSum(r int) float64 {
	s := 0.0
	for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
		s += m.vals[i]
	}
	return s
}

// Sum returns the sum of all entries.
func (m *Matrix) Sum() float64 {
	s := 0.0
	for _, v := range m.vals {
		s += v
	}
	return s
}

// MulVec computes y = M x. It panics on dimension mismatch; y is
// allocated when nil, otherwise reused (len must equal Rows).
func (m *Matrix) MulVec(x, y []float64) []float64 {
	if len(x) != m.cols {
		panic("sparse: MulVec dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.rows)
	} else if len(y) != m.rows {
		panic("sparse: MulVec output length mismatch")
	}
	for r := 0; r < m.rows; r++ {
		s := 0.0
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			s += m.vals[i] * x[m.colIdx[i]]
		}
		y[r] = s
	}
	return y
}

// MulVecT computes y = Mᵀ x without materializing the transpose.
func (m *Matrix) MulVecT(x, y []float64) []float64 {
	if len(x) != m.rows {
		panic("sparse: MulVecT dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.cols)
	} else if len(y) != m.cols {
		panic("sparse: MulVecT output length mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			y[m.colIdx[i]] += m.vals[i] * xr
		}
	}
	return y
}

// Transpose returns Mᵀ as a new CSR matrix.
func (m *Matrix) Transpose() *Matrix {
	t := &Matrix{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int, len(m.colIdx)),
		vals:   make([]float64, len(m.vals)),
	}
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for c := 0; c < m.cols; c++ {
		t.rowPtr[c+1] += t.rowPtr[c]
	}
	next := append([]int(nil), t.rowPtr[:m.cols]...)
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			c := m.colIdx[i]
			pos := next[c]
			next[c]++
			t.colIdx[pos] = r
			t.vals[pos] = m.vals[i]
		}
	}
	return t
}

// RowNormalized returns a copy of M whose rows each sum to 1 (rows that
// sum to zero are left all-zero). This is the row-stochastic transition
// matrix used by random-walk style rankings.
func (m *Matrix) RowNormalized() *Matrix {
	n := &Matrix{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		vals:   append([]float64(nil), m.vals...),
	}
	for r := 0; r < m.rows; r++ {
		s := m.RowSum(r)
		if s == 0 {
			continue
		}
		for i := n.rowPtr[r]; i < n.rowPtr[r+1]; i++ {
			n.vals[i] /= s
		}
	}
	return n
}

// Scale returns a copy of M with every entry multiplied by f.
func (m *Matrix) Scale(f float64) *Matrix {
	n := &Matrix{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		vals:   make([]float64, len(m.vals)),
	}
	for i, v := range m.vals {
		n.vals[i] = v * f
	}
	return n
}

// Mul returns the sparse product M·B. Dimensions must agree.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic("sparse: Mul dimension mismatch")
	}
	out := &Matrix{rows: m.rows, cols: b.cols, rowPtr: make([]int, m.rows+1)}
	acc := make(map[int]float64)
	var keys []int
	for r := 0; r < m.rows; r++ {
		for k := range acc {
			delete(acc, k)
		}
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			mid := m.colIdx[i]
			mv := m.vals[i]
			for j := b.rowPtr[mid]; j < b.rowPtr[mid+1]; j++ {
				acc[b.colIdx[j]] += mv * b.vals[j]
			}
		}
		keys = keys[:0]
		for k, v := range acc {
			if v != 0 {
				keys = append(keys, k)
			}
		}
		sort.Ints(keys)
		for _, k := range keys {
			out.colIdx = append(out.colIdx, k)
			out.vals = append(out.vals, acc[k])
		}
		out.rowPtr[r+1] = len(out.vals)
	}
	return out
}

// Dense materializes the matrix as row-major [][]float64 (test helper;
// avoid on large matrices).
func (m *Matrix) Dense() [][]float64 {
	d := make([][]float64, m.rows)
	for r := range d {
		d[r] = make([]float64, m.cols)
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			d[r][m.colIdx[i]] = m.vals[i]
		}
	}
	return d
}

// Diagonal returns the main diagonal as a dense vector.
func (m *Matrix) Diagonal() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = m.At(i, i)
	}
	return d
}

// Dot returns the inner product of two equal-length dense vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("sparse: AXPY length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// ScaleVec multiplies v by a in place.
func ScaleVec(a float64, v []float64) {
	for i := range v {
		v[i] *= a
	}
}

// MaxAbsDiff returns max_i |a_i - b_i|, the convergence test used by the
// fixed-point iterations.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: MaxAbsDiff length mismatch")
	}
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
