package sparse

import (
	"math/rand"
	"testing"
)

// randomMatrix builds a rows×cols matrix with the given fill density;
// integer values keep expected results exact.
func randomMatrix(rng *rand.Rand, rows, cols int, density float64, unit bool) *Matrix {
	var entries []Coord
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				v := 1.0
				if !unit {
					v = float64(1 + rng.Intn(5))
				}
				entries = append(entries, Coord{r, c, v})
			}
		}
	}
	return NewFromCoords(rows, cols, entries)
}

func matricesEqual(t *testing.T, want, got *Matrix, label string) {
	t.Helper()
	if want.Rows() != got.Rows() || want.Cols() != got.Cols() {
		t.Fatalf("%s: dims %dx%d vs %dx%d", label, want.Rows(), want.Cols(), got.Rows(), got.Cols())
	}
	for r := 0; r < want.Rows(); r++ {
		wd, gd := want.Dense()[r], got.Dense()[r]
		for c := range wd {
			if wd[c] != gd[c] {
				t.Fatalf("%s: entry (%d,%d) = %v, want %v (bitwise)", label, r, c, gd[c], wd[c])
			}
		}
	}
}

func TestRowSliceMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
		m := randomMatrix(rng, rows, cols, 0.2, trial%2 == 0)
		lo := rng.Intn(rows + 1)
		hi := lo + rng.Intn(rows-lo+1)
		s := m.RowSlice(lo, hi)
		if s.Rows() != hi-lo || s.Cols() != cols {
			t.Fatalf("RowSlice dims %dx%d, want %dx%d", s.Rows(), s.Cols(), hi-lo, cols)
		}
		d, sd := m.Dense(), s.Dense()
		for r := lo; r < hi; r++ {
			for c := 0; c < cols; c++ {
				if d[r][c] != sd[r-lo][c] {
					t.Fatalf("RowSlice(%d,%d) entry (%d,%d) = %v, want %v", lo, hi, r-lo, c, sd[r-lo][c], d[r][c])
				}
			}
		}
	}
}

func TestColSliceMatchesColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
		m := randomMatrix(rng, rows, cols, 0.2, trial%2 == 0)
		lo := rng.Intn(cols + 1)
		hi := lo + rng.Intn(cols-lo+1)
		s := m.ColSlice(lo, hi)
		if s.Rows() != rows || s.Cols() != hi-lo {
			t.Fatalf("ColSlice dims %dx%d, want %dx%d", s.Rows(), s.Cols(), rows, hi-lo)
		}
		d, sd := m.Dense(), s.Dense()
		for r := 0; r < rows; r++ {
			for c := lo; c < hi; c++ {
				if d[r][c] != sd[r][c-lo] {
					t.Fatalf("ColSlice(%d,%d) entry (%d,%d) = %v, want %v", lo, hi, r, c-lo, sd[r][c-lo], d[r][c])
				}
			}
		}
	}
}

// TestRowSliceMulMatchesGramRows is the bitwise contract the sharded
// PathSim tier stands on: rows [lo, hi) of the Gram product G = H·Hᵀ,
// computed as H·(H[lo:hi])ᵀ (the shard-local column-slice build), must
// be float64-identical to slicing the fully materialized Gram — every
// output entry accumulates over the same ascending-k sequence in both
// kernels, and IEEE multiplication commutes exactly.
func TestRowSliceMulMatchesGramRows(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(50), 1+rng.Intn(30)
		h := randomMatrix(rng, rows, cols, 0.25, trial%2 == 0)
		g := h.Gram()
		lo := rng.Intn(rows + 1)
		hi := lo + rng.Intn(rows-lo+1)
		colsOfG := h.Mul(h.RowSlice(lo, hi).Transpose())
		matricesEqual(t, g.ColSlice(lo, hi), colsOfG, "H·(H[lo:hi])ᵀ vs Gram column slice")
	}
}

func TestGramDiagonalMatchesGram(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(50), 1+rng.Intn(30)
		h := randomMatrix(rng, rows, cols, 0.25, trial%2 == 0)
		want := h.Gram().Diagonal()
		got := h.GramDiagonal()
		if len(want) != len(got) {
			t.Fatalf("GramDiagonal length %d, want %d", len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("GramDiagonal[%d] = %v, want %v (bitwise)", i, got[i], want[i])
			}
		}
	}
}

func TestSliceBoundsPanic(t *testing.T) {
	m := NewFromDense([][]float64{{1, 0}, {0, 2}})
	for _, f := range []func(){
		func() { m.RowSlice(-1, 1) },
		func() { m.RowSlice(1, 3) },
		func() { m.ColSlice(-1, 1) },
		func() { m.ColSlice(2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range slice did not panic")
				}
			}()
			f()
		}()
	}
}
