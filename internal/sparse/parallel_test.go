package sparse

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// withParallel forces the parallel path (many workers, threshold 1) for
// the duration of a test and restores the previous knobs afterwards.
func withParallel(t *testing.T, workers int, f func()) {
	t.Helper()
	oldW := Parallelism(0)
	oldT := SerialThreshold(0)
	Parallelism(workers)
	SerialThreshold(1)
	defer func() {
		Parallelism(oldW)
		SerialThreshold(oldT)
	}()
	f()
}

// randomCSR builds a rows×cols matrix with ~avgNNZ entries per row,
// including a sprinkling of deliberately empty rows.
func randomCSR(rng *rand.Rand, rows, cols, avgNNZ int) *Matrix {
	var entries []Coord
	for r := 0; r < rows; r++ {
		if rng.Intn(10) == 0 {
			continue // empty row
		}
		n := 1 + rng.Intn(2*avgNNZ)
		for i := 0; i < n; i++ {
			entries = append(entries, Coord{r, rng.Intn(cols), rng.NormFloat64()})
		}
	}
	return NewFromCoords(rows, cols, entries)
}

func maxDiffVec(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length mismatch %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > 1e-12 {
			t.Fatalf("%s: parallel/serial diverge at %d: %v vs %v (|Δ|=%g)", name, i, a[i], b[i], d)
		}
	}
}

func sameMatrix(t *testing.T, name string, a, b *Matrix) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.NNZ() != b.NNZ() {
		t.Fatalf("%s: shape mismatch %dx%d/%d vs %dx%d/%d",
			name, a.Rows(), a.Cols(), a.NNZ(), b.Rows(), b.Cols(), b.NNZ())
	}
	for r := 0; r < a.Rows(); r++ {
		if a.rowPtr[r+1] != b.rowPtr[r+1] {
			t.Fatalf("%s: rowPtr mismatch at row %d", name, r)
		}
		for i := a.rowPtr[r]; i < a.rowPtr[r+1]; i++ {
			if a.colIdx[i] != b.colIdx[i] {
				t.Fatalf("%s: colIdx mismatch at row %d", name, r)
			}
			if d := math.Abs(a.vals[i] - b.vals[i]); d > 1e-12 {
				t.Fatalf("%s: value diverges at row %d: %v vs %v", name, r, a.vals[i], b.vals[i])
			}
		}
	}
}

// TestParallelEquivalence checks every parallel kernel against its
// serial result on random matrices, including the edge cases the
// partitioner must survive: empty rows, a single row, and matrices
// whose work stays below the serial threshold.
func TestParallelEquivalence(t *testing.T) {
	oldW := Parallelism(0)
	defer Parallelism(oldW)
	rng := rand.New(rand.NewSource(42))
	shapes := []struct {
		rows, cols, deg int
	}{
		{200, 150, 8},
		{1, 300, 40},  // single row
		{500, 1, 1},   // single column
		{64, 64, 1},   // very sparse
		{40, 5000, 3}, // wide and hollow: MulVecT/Transpose stay serial by design
		{300, 200, 20},
	}
	for _, sh := range shapes {
		m := randomCSR(rng, sh.rows, sh.cols, sh.deg)
		b := randomCSR(rng, sh.cols, sh.rows, sh.deg)
		x := make([]float64, sh.cols)
		xt := make([]float64, sh.rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range xt {
			xt[i] = rng.NormFloat64()
		}

		Parallelism(1)
		serMulVec := m.MulVec(x, nil)
		serMulVecT := m.MulVecT(xt, nil)
		serT := m.Transpose()
		serNorm := m.RowNormalized()
		serMul := m.Mul(b)
		serGram := m.Gram()

		for _, workers := range []int{2, 4, 7} {
			withParallel(t, workers, func() {
				maxDiffVec(t, "MulVec", m.MulVec(x, nil), serMulVec)
				maxDiffVec(t, "MulVecT", m.MulVecT(xt, nil), serMulVecT)
				sameMatrix(t, "Transpose", m.Transpose(), serT)
				sameMatrix(t, "RowNormalized", m.RowNormalized(), serNorm)
				sameMatrix(t, "Mul", m.Mul(b), serMul)
				sameMatrix(t, "Gram", m.Gram(), serGram)
			})
		}
	}
}

// TestParallelEquivalenceEmptyAndZero covers degenerate matrices.
func TestParallelEquivalenceEmptyAndZero(t *testing.T) {
	withParallel(t, 4, func() {
		empty := NewFromCoords(0, 0, nil)
		if got := empty.MulVec(nil, nil); len(got) != 0 {
			t.Fatalf("empty MulVec = %v", got)
		}
		if tt := empty.Transpose(); tt.Rows() != 0 || tt.Cols() != 0 {
			t.Fatal("empty Transpose changed shape")
		}
		zero := NewFromCoords(5, 7, nil) // all rows empty
		y := zero.MulVec(make([]float64, 7), nil)
		for _, v := range y {
			if v != 0 {
				t.Fatal("zero matrix MulVec nonzero")
			}
		}
		yt := zero.MulVecT(make([]float64, 5), nil)
		for _, v := range yt {
			if v != 0 {
				t.Fatal("zero matrix MulVecT nonzero")
			}
		}
		if p := zero.Mul(NewFromCoords(7, 3, nil)); p.NNZ() != 0 || p.Rows() != 5 || p.Cols() != 3 {
			t.Fatal("zero Mul wrong")
		}
		if n := zero.RowNormalized(); n.NNZ() != 0 {
			t.Fatal("zero RowNormalized wrong")
		}
	})
}

// TestBelowThresholdStaysSerial pins the fallback contract: work under
// the threshold must produce results identical to the serial kernels
// even with many workers configured (it takes the same code path).
func TestBelowThresholdStaysSerial(t *testing.T) {
	oldW := Parallelism(0)
	oldT := SerialThreshold(0)
	defer func() {
		Parallelism(oldW)
		SerialThreshold(oldT)
	}()
	rng := rand.New(rand.NewSource(7))
	m := randomCSR(rng, 20, 20, 3)
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	Parallelism(1)
	want := m.MulVec(x, nil)
	Parallelism(8)
	SerialThreshold(1 << 20) // far above this matrix's nnz
	got := m.MulVec(x, nil)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("below-threshold path not bitwise serial at %d", i)
		}
	}
}

// TestParallelHelpers checks ParRange / ParReduce / ParReduceMax.
func TestParallelHelpers(t *testing.T) {
	withParallel(t, 5, func() {
		n := 10_000
		seen := make([]int32, n)
		ParRange(n, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("ParRange visited index %d %d times", i, c)
			}
		}
		sum := ParReduce(n, n, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			return s
		})
		if want := float64(n*(n-1)) / 2; math.Abs(sum-want) > 1e-6 {
			t.Fatalf("ParReduce = %v, want %v", sum, want)
		}
		max := ParReduceMax(n, n, func(lo, hi int) float64 {
			m := 0.0
			for i := lo; i < hi; i++ {
				if v := float64(i % 997); v > m {
					m = v
				}
			}
			return m
		})
		if max != 996 {
			t.Fatalf("ParReduceMax = %v, want 996", max)
		}
	})
}

// TestParallelKnobs pins the knob contracts.
func TestParallelKnobs(t *testing.T) {
	oldW := Parallelism(0)
	oldT := SerialThreshold(0)
	defer func() {
		Parallelism(oldW)
		SerialThreshold(oldT)
	}()
	if got := Parallelism(3); got != 3 {
		t.Fatalf("Parallelism(3) = %d", got)
	}
	if got := Parallelism(0); got != 3 {
		t.Fatalf("Parallelism query = %d, want 3", got)
	}
	if got := Parallelism(100000); got != maxParallelism {
		t.Fatalf("Parallelism clamp = %d, want %d", got, maxParallelism)
	}
	if got := SerialThreshold(12345); got != 12345 {
		t.Fatalf("SerialThreshold(12345) = %d", got)
	}
}

// TestParallelRace hammers the kernels from many goroutines sharing the
// same matrices; run with `go test -race ./internal/sparse` to verify
// the engine is data-race free (matrices are immutable, outputs are
// goroutine-local).
func TestParallelRace(t *testing.T) {
	oldW := Parallelism(0)
	defer Parallelism(oldW)
	rng := rand.New(rand.NewSource(99))
	m := randomCSR(rng, 400, 300, 12)
	b := randomCSR(rng, 300, 200, 8)
	x := make([]float64, 300)
	xt := make([]float64, 400)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range xt {
		xt[i] = rng.NormFloat64()
	}
	Parallelism(1)
	want := m.MulVec(x, nil)
	withParallel(t, 6, func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for it := 0; it < 5; it++ {
					got := m.MulVec(x, nil)
					for i := range got {
						if got[i] != want[i] {
							t.Errorf("concurrent MulVec diverged at %d", i)
							return
						}
					}
					m.MulVecT(xt, nil)
					m.Transpose()
					m.RowNormalized()
					m.Mul(b)
				}
			}()
		}
		wg.Wait()
	})
}

// TestNestedParallelNoDeadlock runs parallel kernels from inside
// ParRange bodies, the shape the algorithm packages produce (e.g.
// RankClus ranking clusters in parallel, each cluster calling MulVec).
func TestNestedParallelNoDeadlock(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomCSR(rng, 300, 300, 10)
	x := make([]float64, 300)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	withParallel(t, 4, func() {
		ParRange(16, 1<<30, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				m.MulVec(x, nil)
				m.MulVecT(x, nil)
			}
		})
	})
}

// TestParallelismShrinksPool pins the knob contract that lowering the
// cap retires excess resident workers (each exits after its next task).
func TestParallelismShrinksPool(t *testing.T) {
	oldW := Parallelism(0)
	oldT := SerialThreshold(0)
	defer func() {
		Parallelism(oldW)
		SerialThreshold(oldT)
	}()
	SerialThreshold(1)
	Parallelism(6)
	ParRange(1000, 1<<20, func(lo, hi int) {}) // grow the pool to 6 workers
	Parallelism(2)
	resident := 0
	for i := 0; i < 500; i++ {
		ParRange(1000, 1<<20, func(lo, hi int) {})
		sharedPool.mu.Lock()
		resident = sharedPool.started
		sharedPool.mu.Unlock()
		if resident <= 2 {
			return
		}
	}
	t.Fatalf("pool did not shrink after cap drop: %d resident workers", resident)
}

// TestParallelPanicPropagates pins that a panic inside a parallel task
// re-raises on the calling goroutine instead of killing the process.
func TestParallelPanicPropagates(t *testing.T) {
	withParallel(t, 4, func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want \"boom\"", r)
			}
		}()
		ParRange(1000, 1<<20, func(lo, hi int) { panic("boom") })
		t.Fatal("ParRange returned instead of panicking")
	})
}
