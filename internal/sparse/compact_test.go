// Tests for the bandwidth-lean kernel layout: compact int32 column
// indices, all-ones pattern detection, structure sharing of derived
// matrices, the fused row-normalizing mat-vec kernels, and the pooled
// SpGEMM scratch. The randomized equivalence tests pin every new code
// path *bitwise* against straight-line reference loops that spell out
// the original kernel semantics.
package sparse

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

// randomPattern builds a rows×cols matrix; unit forces every stored
// value to exactly 1 (the unweighted-relation pattern), otherwise
// values are random and include sign-cancelling rows.
func randomPattern(rng *rand.Rand, rows, cols, avgNNZ int, unit bool) *Matrix {
	var entries []Coord
	for r := 0; r < rows; r++ {
		if rng.Intn(8) == 0 {
			continue // empty row
		}
		n := 1 + rng.Intn(2*avgNNZ)
		seen := make(map[int]bool, n)
		for i := 0; i < n; i++ {
			c := rng.Intn(cols)
			if unit && seen[c] {
				continue // duplicates would sum to 2 and break the pattern
			}
			seen[c] = true
			v := 1.0
			if !unit {
				v = rng.NormFloat64()
			}
			entries = append(entries, Coord{r, c, v})
		}
		if !unit && rng.Intn(4) == 0 && cols >= 2 {
			// A row whose sum cancels to exactly zero while holding
			// nonzero entries — the RowNormalized leave-alone edge case.
			entries = append(entries, Coord{r, 0, 2.5}, Coord{r, 1, -2.5 - RowSumOf(entries, r)})
		}
	}
	return NewFromCoords(rows, cols, entries)
}

// RowSumOf sums the already-collected entries of row r (test helper for
// constructing exactly-cancelling rows).
func RowSumOf(entries []Coord, r int) float64 {
	s := 0.0
	for _, e := range entries {
		if e.Row == r {
			s += e.Val
		}
	}
	return s
}

// refMulVec is the definitional serial mat-vec: y[r] = Σ v·x[c] in
// stored order, always loading the value array.
func refMulVec(m *Matrix, x []float64) []float64 {
	y := make([]float64, m.Rows())
	for r := 0; r < m.Rows(); r++ {
		s := 0.0
		m.Row(r, func(c int, v float64) { s += v * x[c] })
		y[r] = s
	}
	return y
}

// refMulVecT is the definitional serial transposed mat-vec with the
// original x[r]==0 row skip.
func refMulVecT(m *Matrix, x []float64) []float64 {
	y := make([]float64, m.Cols())
	for r := 0; r < m.Rows(); r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		m.Row(r, func(c int, v float64) { y[c] += v * xr })
	}
	return y
}

// refMul is the definitional serial Gustavson product, accumulating in
// exactly the kernel's order: rows of M ascending, each expanding B's
// rows in stored order, output columns emitted ascending.
func refMul(m, b *Matrix) [][]float64 {
	out := make([][]float64, m.Rows())
	acc := make([]float64, b.Cols())
	for r := 0; r < m.Rows(); r++ {
		var touched []int
		seen := make(map[int]bool)
		m.Row(r, func(mid int, mv float64) {
			b.Row(mid, func(c int, bv float64) {
				if !seen[c] {
					seen[c] = true
					acc[c] = 0
					touched = append(touched, c)
				}
				acc[c] += mv * bv
			})
		})
		slices.Sort(touched)
		row := make([]float64, b.Cols())
		for _, c := range touched {
			row[c] = acc[c]
		}
		out[r] = row
	}
	return out
}

func bitwiseVec(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: not bitwise identical at %d: %v vs %v", name, i, got[i], want[i])
		}
	}
}

// TestPatternKernelEquivalence pins the int32 / pattern-aware kernel
// paths bitwise against the definitional loops, for both unit
// (value-skipping) and weighted matrices, serial and parallel.
func TestPatternKernelEquivalence(t *testing.T) {
	oldW := Parallelism(0)
	defer Parallelism(oldW)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		rows, cols := 1+rng.Intn(120), 1+rng.Intn(120)
		unit := trial%2 == 0
		m := randomPattern(rng, rows, cols, 4, unit)
		if unit && m.NNZ() > 0 && !m.Unit() {
			t.Fatal("all-ones matrix not detected as unit")
		}
		x := make([]float64, cols)
		xt := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range xt {
			xt[i] = rng.NormFloat64()
		}
		if rng.Intn(3) == 0 {
			xt[rng.Intn(rows)] = 0 // exercise the x[r]==0 skip
		}

		wantV := refMulVec(m, x)
		wantT := refMulVecT(m, xt)
		Parallelism(1)
		bitwiseVec(t, "MulVec/serial", m.MulVec(x, nil), wantV)
		bitwiseVec(t, "MulVecT/serial", m.MulVecT(xt, nil), wantT)

		withParallel(t, 4, func() {
			bitwiseVec(t, "MulVec/parallel", m.MulVec(x, nil), wantV)
			// MulVecT's parallel combine reorders additions; check to
			// tolerance there, bitwise is only contractual serially.
			maxDiffVec(t, "MulVecT/parallel", m.MulVecT(xt, nil), wantT)
		})
	}
}

// TestMulPatternEquivalence pins the SpGEMM pattern paths (unit M, unit
// B, both, neither — all running the pooled scratch) bitwise against
// the definitional Gustavson product.
func TestMulPatternEquivalence(t *testing.T) {
	oldW := Parallelism(0)
	defer Parallelism(oldW)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 16; trial++ {
		rows, mid, cols := 1+rng.Intn(60), 1+rng.Intn(60), 1+rng.Intn(60)
		m := randomPattern(rng, rows, mid, 3, trial%2 == 0)
		b := randomPattern(rng, mid, cols, 3, trial%4 < 2)
		want := refMul(m, b)

		check := func(mode string) {
			got := m.Mul(b)
			if got.Rows() != rows || got.Cols() != cols {
				t.Fatalf("%s: wrong shape", mode)
			}
			d := got.Dense()
			for r := range want {
				bitwiseVec(t, "Mul/"+mode, d[r], want[r])
			}
		}
		Parallelism(1)
		check("serial")
		withParallel(t, 3, func() { check("parallel") })

		// Gram must equal Mul(Transpose()) bitwise on the upper triangle
		// regardless of the pattern path taken.
		g := m.Gram()
		full := m.Mul(m.Transpose())
		for r := 0; r < rows; r++ {
			for c := r; c < rows; c++ {
				if math.Float64bits(g.At(r, c)) != math.Float64bits(full.At(r, c)) {
					t.Fatalf("Gram upper (%d,%d): %v vs %v", r, c, g.At(r, c), full.At(r, c))
				}
			}
		}
	}
}

// TestFusedNormEquivalence pins the fused inverse-row-sum kernels
// bitwise against normalize-then-multiply, including zero-sum rows
// (both empty and sign-cancelling), serial and parallel.
func TestFusedNormEquivalence(t *testing.T) {
	oldW := Parallelism(0)
	defer Parallelism(oldW)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		rows, cols := 1+rng.Intn(100), 1+rng.Intn(100)
		m := randomPattern(rng, rows, cols, 4, trial%3 == 0)
		inv := m.RowInvSums()
		norm := m.RowNormalized()
		x := make([]float64, cols)
		xt := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range xt {
			xt[i] = rng.NormFloat64()
		}

		Parallelism(1)
		bitwiseVec(t, "MulVecNorm/serial", m.MulVecNorm(x, inv, nil), norm.MulVec(x, nil))
		bitwiseVec(t, "MulVecTNorm/serial", m.MulVecTNorm(xt, inv, nil), norm.MulVecT(xt, nil))

		withParallel(t, 4, func() {
			bitwiseVec(t, "MulVecNorm/parallel", m.MulVecNorm(x, inv, nil), norm.MulVec(x, nil))
			bitwiseVec(t, "MulVecTNorm/parallel", m.MulVecTNorm(xt, inv, nil), norm.MulVecT(xt, nil))
		})
	}
}

// TestRowInvSumsContract pins the zero-sum-row convention: inv = 1
// leaves those rows exactly as RowNormalized does.
func TestRowInvSumsContract(t *testing.T) {
	m := NewFromDense([][]float64{
		{2, 2},  // normal row
		{0, 0},  // empty row
		{3, -3}, // cancelling row: sum is 0, entries stay unnormalized
	})
	inv := m.RowInvSums()
	if inv[0] != 0.25 || inv[1] != 1 || inv[2] != 1 {
		t.Fatalf("RowInvSums = %v", inv)
	}
	n := m.RowNormalized()
	if n.At(2, 0) != 3 || n.At(2, 1) != -3 {
		t.Fatalf("cancelling row was rescaled: %v", n.Dense()[2])
	}
}

// TestStructureSharing pins the satellite contract: Scale and
// RowNormalized alias the receiver's rowPtr/colIdx instead of copying,
// and never mutate the receiver's values.
func TestStructureSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := randomPattern(rng, 40, 30, 3, false)
	before := append([]float64(nil), m.vals...)
	for name, d := range map[string]*Matrix{
		"Scale":         m.Scale(2.5),
		"RowNormalized": m.RowNormalized(),
	} {
		if &d.rowPtr[0] != &m.rowPtr[0] {
			t.Errorf("%s copied rowPtr instead of aliasing", name)
		}
		if d.NNZ() > 0 && &d.colIdx[0] != &m.colIdx[0] {
			t.Errorf("%s copied colIdx instead of aliasing", name)
		}
		if d.NNZ() > 0 && &d.vals[0] == &m.vals[0] {
			t.Errorf("%s aliased vals — derived values must be fresh", name)
		}
	}
	for i, v := range m.vals {
		if v != before[i] {
			t.Fatal("derived matrix mutated the receiver's values")
		}
	}
}

// TestUnitFlagPropagation pins where the all-ones pattern flag is
// detected and how it survives derivation.
func TestUnitFlagPropagation(t *testing.T) {
	u := NewFromDense([][]float64{{1, 0, 1}, {0, 1, 0}})
	w := NewFromDense([][]float64{{2, 0}, {0, 1}})
	if !u.Unit() || w.Unit() {
		t.Fatal("unit detection wrong at construction")
	}
	if !u.Transpose().Unit() {
		t.Fatal("Transpose dropped the unit flag")
	}
	if u.Scale(2).Unit() {
		t.Fatal("Scale(2) kept the unit flag")
	}
	if !u.Scale(1).Unit() {
		t.Fatal("Scale(1) dropped the unit flag")
	}
	// Duplicate entries summing to exactly 1 still count.
	h := NewFromCoords(1, 1, []Coord{{0, 0, 0.5}, {0, 0, 0.5}})
	if !h.Unit() {
		t.Fatal("summed-to-one entry not detected as unit")
	}
	// A permutation matrix row-normalizes to itself: unit re-detected.
	p := NewFromDense([][]float64{{0, 1}, {1, 0}})
	if !p.RowNormalized().Unit() {
		t.Fatal("RowNormalized permutation not unit")
	}
	// Products of 0/1 matrices with overlap produce counts ≥ 2.
	if o := u.Gram(); o.Unit() {
		t.Fatal("Gram with overlapping rows should not be unit")
	}
}

// TestDimOverflowGuard pins the int32 boundary: dimensions beyond the
// index range fail loudly at construction (no silent corruption), and
// dimensions at the boundary still work.
func TestDimOverflowGuard(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic, got none", name)
			}
		}()
		f()
	}
	expectPanic("cols overflow", func() { NewFromCoords(3, maxDim+1, nil) })
	expectPanic("rows overflow", func() { NewFromCoords(maxDim+1, 3, nil) })

	// Exactly at the boundary: column index maxDim-1 must round-trip.
	m := NewFromCoords(2, maxDim, []Coord{{1, maxDim - 1, 7}})
	if got := m.At(1, maxDim-1); got != 7 {
		t.Fatalf("boundary entry read back %v, want 7", got)
	}
	if got := m.At(1, maxDim-2); got != 0 {
		t.Fatalf("neighbor of boundary entry = %v, want 0", got)
	}
}

// TestSpgemmScratchReuse drives many sequential products through the
// pooled scratch to shake out stale-stamp bugs (a stamp surviving from
// an earlier product must never validate a new row's accumulator).
func TestSpgemmScratchReuse(t *testing.T) {
	oldW := Parallelism(0)
	defer Parallelism(oldW)
	Parallelism(1)
	rng := rand.New(rand.NewSource(53))
	for round := 0; round < 30; round++ {
		rows := 1 + rng.Intn(40)
		mid := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		m := randomPattern(rng, rows, mid, 3, round%2 == 0)
		b := randomPattern(rng, mid, cols, 3, round%3 == 0)
		want := refMul(m, b)
		d := m.Mul(b).Dense()
		for r := range want {
			bitwiseVec(t, "pooled Mul", d[r], want[r])
		}
	}
}
