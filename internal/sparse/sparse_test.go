package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-10 }

func TestNewFromCoordsDedupAndAt(t *testing.T) {
	m := NewFromCoords(3, 4, []Coord{
		{0, 1, 2}, {0, 1, 3}, {2, 3, 1}, {1, 0, -1}, {2, 0, 0},
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (dups merged, zeros dropped)", m.NNZ())
	}
	if m.At(0, 1) != 5 {
		t.Errorf("At(0,1) = %v, want 5 (2+3)", m.At(0, 1))
	}
	if m.At(2, 0) != 0 || m.At(0, 0) != 0 {
		t.Error("missing entries should read 0")
	}
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Error("dims wrong")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	d := [][]float64{
		{0, 1, 0},
		{2, 0, 3},
		{0, 0, 0},
		{4, 5, 6},
	}
	m := NewFromDense(d)
	got := m.Dense()
	for r := range d {
		for c := range d[r] {
			if got[r][c] != d[r][c] {
				t.Fatalf("round trip mismatch at (%d,%d): %v vs %v", r, c, got[r][c], d[r][c])
			}
		}
	}
}

func randomDense(rng *rand.Rand, rows, cols int) [][]float64 {
	d := make([][]float64, rows)
	for r := range d {
		d[r] = make([]float64, cols)
		for c := range d[r] {
			if rng.Float64() < 0.3 {
				d[r][c] = math.Round(rng.Float64()*10) - 5
			}
		}
	}
	return d
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		d := randomDense(rng, rows, cols)
		m := NewFromDense(d)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVec(x, nil)
		for r := 0; r < rows; r++ {
			want := 0.0
			for c := 0; c < cols; c++ {
				want += d[r][c] * x[c]
			}
			if !almostEq(got[r], want) {
				t.Fatalf("MulVec row %d: %v vs %v", r, got[r], want)
			}
		}
	}
}

func TestMulVecTMatchesTransposeMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewFromDense(randomDense(rng, rows, cols))
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		a := m.MulVecT(x, nil)
		b := m.Transpose().MulVec(x, nil)
		for i := range a {
			if !almostEq(a[i], b[i]) {
				t.Fatalf("MulVecT mismatch at %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewFromDense(randomDense(rng, 6, 9))
	tt := m.Transpose().Transpose()
	if tt.Rows() != m.Rows() || tt.Cols() != m.Cols() || tt.NNZ() != m.NNZ() {
		t.Fatal("transpose-transpose changed shape")
	}
	d1, d2 := m.Dense(), tt.Dense()
	for r := range d1 {
		for c := range d1[r] {
			if d1[r][c] != d2[r][c] {
				t.Fatalf("(Mᵀ)ᵀ ≠ M at (%d,%d)", r, c)
			}
		}
	}
}

func TestRowNormalized(t *testing.T) {
	m := NewFromDense([][]float64{
		{1, 3},
		{0, 0},
		{5, 0},
	})
	n := m.RowNormalized()
	if !almostEq(n.At(0, 0), 0.25) || !almostEq(n.At(0, 1), 0.75) {
		t.Errorf("row 0 not normalized: %v", n.Dense()[0])
	}
	if n.RowSum(1) != 0 {
		t.Error("zero row should stay zero")
	}
	if !almostEq(n.RowSum(2), 1) {
		t.Error("row 2 should sum to 1")
	}
	// Original untouched.
	if m.At(0, 0) != 1 {
		t.Error("RowNormalized mutated receiver")
	}
}

func TestMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		a := randomDense(rng, 1+rng.Intn(6), 1+rng.Intn(6))
		b := randomDense(rng, len(a[0]), 1+rng.Intn(6))
		got := NewFromDense(a).Mul(NewFromDense(b)).Dense()
		for r := range a {
			for c := range b[0] {
				want := 0.0
				for k := range b {
					want += a[r][k] * b[k][c]
				}
				if !almostEq(got[r][c], want) {
					t.Fatalf("Mul mismatch at (%d,%d): %v vs %v", r, c, got[r][c], want)
				}
			}
		}
	}
}

// TestGramMatchesMulTranspose checks the fused Gram kernel against the
// two-step product on random matrices, and that the result is exactly
// symmetric (mirrored entries share one computed float64).
func TestGramMatchesMulTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		d := randomDense(rng, rows, cols)
		m := NewFromDense(d)
		got := m.Gram()
		want := m.Mul(m.Transpose())
		if got.Rows() != want.Rows() || got.Cols() != want.Cols() || got.NNZ() != want.NNZ() {
			t.Fatalf("trial %d: shape %dx%d/%d, want %dx%d/%d", trial,
				got.Rows(), got.Cols(), got.NNZ(), want.Rows(), want.Cols(), want.NNZ())
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < rows; c++ {
				if !almostEq(got.At(r, c), want.At(r, c)) {
					t.Fatalf("trial %d: Gram(%d,%d) = %v, want %v", trial, r, c, got.At(r, c), want.At(r, c))
				}
				if got.At(r, c) != got.At(c, r) {
					t.Fatalf("trial %d: Gram not exactly symmetric at (%d,%d)", trial, r, c)
				}
			}
		}
	}
	// Degenerate shapes.
	if g := NewFromCoords(0, 0, nil).Gram(); g.Rows() != 0 || g.NNZ() != 0 {
		t.Fatal("empty Gram wrong")
	}
	if g := NewFromCoords(3, 2, nil).Gram(); g.Rows() != 3 || g.Cols() != 3 || g.NNZ() != 0 {
		t.Fatal("all-zero Gram wrong")
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mul with mismatched dims should panic")
		}
	}()
	NewFromDense([][]float64{{1}}).Mul(NewFromDense([][]float64{{1, 2}, {3, 4}}))
}

func TestScaleAndSums(t *testing.T) {
	m := NewFromDense([][]float64{{1, 2}, {3, 4}})
	s := m.Scale(2)
	if s.Sum() != 20 {
		t.Errorf("scaled Sum = %v", s.Sum())
	}
	if m.Sum() != 10 {
		t.Errorf("Scale mutated receiver: %v", m.Sum())
	}
	if m.RowSum(1) != 7 {
		t.Errorf("RowSum = %v", m.RowSum(1))
	}
}

func TestDiagonal(t *testing.T) {
	m := NewFromDense([][]float64{{7, 1, 0}, {0, 8, 0}})
	d := m.Diagonal()
	if len(d) != 2 || d[0] != 7 || d[1] != 8 {
		t.Errorf("Diagonal = %v", d)
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v", Dot(a, b))
	}
	if !almostEq(Norm2([]float64{3, 4}), 5) {
		t.Error("Norm2 wrong")
	}
	y := append([]float64(nil), b...)
	AXPY(2, a, y)
	if y[0] != 6 || y[2] != 12 {
		t.Errorf("AXPY = %v", y)
	}
	ScaleVec(0.5, y)
	if y[0] != 3 {
		t.Errorf("ScaleVec = %v", y)
	}
	if MaxAbsDiff(a, b) != 3 {
		t.Errorf("MaxAbsDiff = %v", MaxAbsDiff(a, b))
	}
}

// Property: row sums of RowNormalized are 0 or 1.
func TestRowNormalizedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewFromDense(randomDense(rng, 1+rng.Intn(10), 1+rng.Intn(10))).RowNormalized()
		for r := 0; r < m.Rows(); r++ {
			s := m.RowSum(r)
			if !(s == 0 || almostEq(s, 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewFromDense(randomDense(rng, 1+rng.Intn(6), 1+rng.Intn(6)))
		b := NewFromDense(randomDense(rng, a.Cols(), 1+rng.Intn(6)))
		lhs := a.Mul(b).Transpose().Dense()
		rhs := b.Transpose().Mul(a.Transpose()).Dense()
		for r := range lhs {
			for c := range lhs[r] {
				if !almostEq(lhs[r][c], rhs[r][c]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
