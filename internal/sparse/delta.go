// Copy-on-write CSR delta merging: the kernel under the incremental
// ingestion subsystem (internal/ingest). A matrix stays immutable;
// applying a batch of coordinate deltas produces a *new* matrix that
// shares as much of the receiver's storage as the change allows:
//
//   - an empty delta returns the receiver itself;
//   - a delta that only adjusts the values of already-stored entries
//     (no inserts, no entries cancelled to zero) aliases the receiver's
//     rowPtr/colIdx structure and rewrites only the value array, the
//     same structure-sharing contract as Scale/RowNormalized;
//   - a structural delta allocates fresh arrays, bulk-copies the
//     untouched row spans (straight memcpy, no per-entry work) and
//     two-pointer-merges only the touched rows, so merge work is
//     O(nnz_delta + nnz of touched rows + rows) rather than the
//     O(nnz log nnz) of a from-scratch NewFromCoords build.
//
// Grow extends a matrix's dimensions without touching its entries —
// new rows and columns are empty — sharing the column/value arrays
// outright (and the row pointer too when only columns grow). It is how
// the HIN layer keeps cached relation matrices warm when objects are
// added to a type.

package sparse

import (
	"cmp"
	"fmt"
	"slices"
)

// ApplyDelta merges a batch of coordinate deltas into the matrix and
// returns the result as a new matrix (the receiver is never modified).
// Delta values are *added* to the stored entries: an absent (row, col)
// is inserted, coinciding entries are summed, and entries whose merged
// value is exactly zero are dropped — the same semantics as appending
// the delta to the coordinate list a from-scratch NewFromCoords build
// would consume. Duplicate delta coordinates are summed in input
// order. Out-of-range coordinates panic, like NewFromCoords.
//
// For weights whose sums are exactly representable (the unweighted and
// integer-weighted relations that dominate HIN workloads) the result
// is bitwise identical to the from-scratch rebuild; otherwise it can
// differ by the usual reassociation rounding (~1 ulp per duplicate).
func (m *Matrix) ApplyDelta(delta []Coord) *Matrix {
	if len(delta) == 0 {
		return m
	}
	for _, e := range delta {
		if e.Row < 0 || e.Row >= m.rows || e.Col < 0 || e.Col >= m.cols {
			panic(fmt.Sprintf("sparse: delta entry (%d,%d) out of %dx%d", e.Row, e.Col, m.rows, m.cols))
		}
	}
	rows, starts, deltaCols, deltaVals := coalesceDelta(m.rows, delta)

	// Merge each touched row against its base row into one contiguous
	// scratch area, remembering per-row extents. structural flips when
	// any column is inserted or an entry cancels to zero, which is what
	// decides between the value-patch and rebuild paths below.
	type rowSpan struct {
		row    int
		lo, hi int // extent in mergedIdx/mergedVals
	}
	spans := make([]rowSpan, len(rows))
	var mergedIdx []int32
	var mergedVals []float64
	structural := false
	for ri, r := range rows {
		lo := len(mergedIdx)
		bi, bhi := m.rowPtr[r], m.rowPtr[r+1]
		di, dhi := starts[ri], starts[ri+1]
		for bi < bhi || di < dhi {
			switch {
			case di == dhi || (bi < bhi && m.colIdx[bi] < deltaCols[di]):
				mergedIdx = append(mergedIdx, m.colIdx[bi])
				mergedVals = append(mergedVals, m.vals[bi])
				bi++
			case bi == bhi || deltaCols[di] < m.colIdx[bi]:
				// Insert — unless the delta's own duplicates cancelled
				// to zero, in which case nothing is stored and the
				// structure is untouched.
				if deltaVals[di] != 0 {
					structural = true
					mergedIdx = append(mergedIdx, deltaCols[di])
					mergedVals = append(mergedVals, deltaVals[di])
				}
				di++
			default: // equal columns: patch the stored value
				v := m.vals[bi] + deltaVals[di]
				if v == 0 {
					structural = true
				} else {
					mergedIdx = append(mergedIdx, m.colIdx[bi])
					mergedVals = append(mergedVals, v)
				}
				bi++
				di++
			}
		}
		spans[ri] = rowSpan{row: r, lo: lo, hi: len(mergedIdx)}
	}
	if !structural {
		// Pattern unchanged: alias the immutable rowPtr/colIdx structure
		// and rewrite only the value array (copy-on-write, like Scale).
		n := &Matrix{
			rows:   m.rows,
			cols:   m.cols,
			rowPtr: m.rowPtr,
			colIdx: m.colIdx,
			vals:   slices.Clone(m.vals),
		}
		unit := m.unit
		for _, sp := range spans {
			copy(n.vals[m.rowPtr[sp.row]:], mergedVals[sp.lo:sp.hi])
			if unit {
				unit = allOnes(mergedVals[sp.lo:sp.hi])
			}
		}
		n.unit = unit
		return n
	}

	// Structural change: fresh arrays. Untouched row spans are copied
	// in bulk between consecutive touched rows.
	nnz := len(m.vals)
	for _, sp := range spans {
		nnz += (sp.hi - sp.lo) - (m.rowPtr[sp.row+1] - m.rowPtr[sp.row])
	}
	n := &Matrix{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: make([]int, m.rows+1),
		colIdx: make([]int32, nnz),
		vals:   make([]float64, nnz),
	}
	unit := m.unit
	out := 0                     // write cursor into n.colIdx/n.vals
	prevEnd := 0                 // end (in m's arrays) of the last copied/merged range
	prevRow := 0                 // first row whose rowPtr is not yet final
	flushGap := func(upto int) { // bulk-copy base rows [prevRow, upto)
		span := m.rowPtr[upto] - prevEnd
		copy(n.colIdx[out:], m.colIdx[prevEnd:m.rowPtr[upto]])
		copy(n.vals[out:], m.vals[prevEnd:m.rowPtr[upto]])
		shift := out - prevEnd
		for r := prevRow; r < upto; r++ {
			n.rowPtr[r+1] = m.rowPtr[r+1] + shift
		}
		out += span
	}
	for _, sp := range spans {
		flushGap(sp.row)
		copy(n.colIdx[out:], mergedIdx[sp.lo:sp.hi])
		copy(n.vals[out:], mergedVals[sp.lo:sp.hi])
		if unit {
			unit = allOnes(mergedVals[sp.lo:sp.hi])
		}
		out += sp.hi - sp.lo
		n.rowPtr[sp.row+1] = out
		prevEnd = m.rowPtr[sp.row+1]
		prevRow = sp.row + 1
	}
	flushGap(m.rows)
	n.unit = unit
	return n
}

// coalesceDelta groups the delta by row (ascending) and, within each
// row, produces column-sorted entries with duplicates summed in input
// order. It returns the touched rows (ascending) and, per row, the
// [starts[i], starts[i+1]) extent into the returned deltaCols /
// deltaVals arrays. Like NewFromCoords, grouping is a counting sort —
// O(nnz_delta + numRows) — followed by tiny stable per-row column
// sorts (stability is what keeps duplicate sums in input order).
func coalesceDelta(numRows int, delta []Coord) (rows []int, starts []int, deltaCols []int32, deltaVals []float64) {
	cnt := make([]int, numRows+1)
	for _, e := range delta {
		cnt[e.Row+1]++
	}
	for r := 0; r < numRows; r++ {
		cnt[r+1] += cnt[r]
	}
	sorted := make([]Coord, len(delta))
	next := append([]int(nil), cnt[:numRows]...)
	for _, e := range delta {
		sorted[next[e.Row]] = e
		next[e.Row]++
	}

	deltaCols = make([]int32, 0, len(delta))
	deltaVals = make([]float64, 0, len(delta))
	for i := 0; i < len(sorted); {
		r := sorted[i].Row
		j := cnt[r+1]
		rows = append(rows, r)
		starts = append(starts, len(deltaCols))
		row := sorted[i:j]
		if len(row) > 1 {
			slices.SortStableFunc(row, func(a, b Coord) int { return cmp.Compare(a.Col, b.Col) })
		}
		for k := 0; k < len(row); {
			c := row[k].Col
			v := 0.0
			for ; k < len(row) && row[k].Col == c; k++ {
				v += row[k].Val
			}
			deltaCols = append(deltaCols, int32(c))
			deltaVals = append(deltaVals, v)
		}
		i = j
	}
	starts = append(starts, len(deltaCols))
	return rows, starts, deltaCols, deltaVals
}

// Grow returns a matrix with the same stored entries but the given
// (larger or equal) dimensions; new rows and columns are empty. The
// column/value arrays are always shared with the receiver, and the row
// pointer too when the row count is unchanged, so growing costs at
// most O(new rows). Shrinking panics.
func (m *Matrix) Grow(rows, cols int) *Matrix {
	if rows < m.rows || cols < m.cols {
		panic(fmt.Sprintf("sparse: Grow %dx%d below current %dx%d", rows, cols, m.rows, m.cols))
	}
	if rows > maxDim || cols > maxDim {
		panic(fmt.Sprintf("sparse: dimensions %dx%d exceed the int32 index range (max %d)", rows, cols, maxDim))
	}
	if rows == m.rows && cols == m.cols {
		return m
	}
	n := &Matrix{rows: rows, cols: cols, rowPtr: m.rowPtr, colIdx: m.colIdx, vals: m.vals, unit: m.unit}
	if rows > m.rows {
		rp := make([]int, rows+1)
		copy(rp, m.rowPtr)
		for r := m.rows; r < rows; r++ {
			rp[r+1] = rp[m.rows]
		}
		n.rowPtr = rp
	}
	return n
}
