// Package rank implements the link-based ranking algorithms the tutorial
// covers for homogeneous networks (§2b.ii–iii) — PageRank, Personalized
// PageRank and HITS — plus the two conditional ranking functions for
// bi-typed networks that RankClus (§4c) integrates with clustering:
// simple ranking and authority ranking.
//
// All iterations are hand-rolled power iterations over the CSR matrices
// in internal/sparse; no external numeric library is used. The matrix
// products and the element-wise/reduction loops of each iteration run
// on sparse's shared parallel worker pool, so large networks use every
// core while small test fixtures stay on the serial fast path.
package rank

import (
	"math"

	"hinet/internal/sparse"
	"hinet/internal/stats"
)

// Options configures the fixed-point iterations.
type Options struct {
	Damping   float64 // PageRank damping factor d (default 0.85)
	MaxIter   int     // iteration cap (default 100)
	Tolerance float64 // L∞ convergence threshold (default 1e-9)

	// Start warm-starts the power iteration from a previous solution
	// instead of the restart distribution. The fixed point is the same
	// — PageRank's stationary distribution does not depend on the
	// starting vector — but starting near it (e.g. from the previous
	// epoch's scores after a small delta batch) converges in a fraction
	// of the iterations, which is what the incremental ingestion path
	// exploits. The vector is copied and L1-normalized; it is ignored
	// when its length does not match the matrix or it has no positive
	// mass, so callers can pass a stale vector unconditionally.
	Start []float64
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// Result carries a ranking vector plus convergence diagnostics.
type Result struct {
	Scores     []float64
	Iterations int
	Converged  bool
}

// TopK returns the ids of the k highest-scoring nodes, descending
// (ties by lower id; k is clamped to [0, node count]).
func (r Result) TopK(k int) []int { return stats.TopK(r.Scores, k) }

// PageRank computes the stationary distribution of the damped random
// walk on adj (a possibly weighted, directed adjacency matrix whose
// rows are source nodes). Dangling rows redistribute uniformly. The
// output sums to 1.
func PageRank(adj *sparse.Matrix, opt Options) Result {
	return personalized(adj, nil, opt)
}

// Personalized computes Personalized PageRank with restart distribution
// restart (need not be normalized; zero vector behaves like uniform).
func Personalized(adj *sparse.Matrix, restart []float64, opt Options) Result {
	return personalized(adj, restart, opt)
}

func personalized(adj *sparse.Matrix, restart []float64, opt Options) Result {
	opt = opt.withDefaults()
	n := adj.Rows()
	if adj.Cols() != n {
		panic("rank: PageRank needs a square matrix")
	}
	if n == 0 {
		return Result{Converged: true}
	}
	// Fused row-stochastic iteration: instead of materializing the
	// normalized transition matrix (a full value-array copy), keep the
	// inverse row sums and let MulVecTNorm apply them on the fly — the
	// per-term products match RowNormalized().MulVecT bitwise. One
	// sweep fills both vectors: rows summing to zero are the dangling
	// rows, and get inv = 1 (left unnormalized, exactly like
	// RowNormalized) while redistributing via the dangling mass.
	inv := make([]float64, n)
	dangling := make([]bool, n)
	for r := 0; r < n; r++ {
		if s := adj.RowSum(r); s != 0 {
			inv[r] = 1 / s
		} else {
			inv[r] = 1
			dangling[r] = true
		}
	}
	tele := make([]float64, n)
	if restart == nil {
		for i := range tele {
			tele[i] = 1 / float64(n)
		}
	} else {
		if len(restart) != n {
			panic("rank: restart vector length mismatch")
		}
		copy(tele, restart)
		if s := sum(tele); s > 0 {
			sparse.ScaleVec(1/s, tele)
		} else {
			for i := range tele {
				tele[i] = 1 / float64(n)
			}
		}
	}
	x := make([]float64, n)
	copy(x, tele)
	if len(opt.Start) == n {
		if s := sum(opt.Start); s > 0 {
			copy(x, opt.Start)
			sparse.ScaleVec(1/s, x)
		}
	}
	next := make([]float64, n)
	d := opt.Damping
	for it := 1; it <= opt.MaxIter; it++ {
		// next = d·(Pᵀx + danglingMass·tele) + (1-d)·tele, with
		// P = diag(inv)·adj applied without materialization.
		adj.MulVecTNorm(x, inv, next)
		dm := sparse.ParReduce(n, n, func(lo, hi int) float64 {
			s := 0.0
			for r := lo; r < hi; r++ {
				if dangling[r] {
					s += x[r]
				}
			}
			return s
		})
		sparse.ParRange(n, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				next[i] = d*(next[i]+dm*tele[i]) + (1-d)*tele[i]
			}
		})
		if sparse.MaxAbsDiff(x, next) < opt.Tolerance {
			copy(x, next)
			return Result{Scores: x, Iterations: it, Converged: true}
		}
		x, next = next, x
	}
	return Result{Scores: x, Iterations: opt.MaxIter, Converged: false}
}

// HITSResult carries the two HITS vectors.
type HITSResult struct {
	Authority  []float64
	Hub        []float64
	Iterations int
	Converged  bool
}

// TopAuthorities returns the ids of the k highest-authority nodes,
// descending.
func (h HITSResult) TopAuthorities(k int) []int { return stats.TopK(h.Authority, k) }

// TopHubs returns the ids of the k highest-hub nodes, descending.
func (h HITSResult) TopHubs(k int) []int { return stats.TopK(h.Hub, k) }

// HITS computes hub and authority scores by the mutual-reinforcement
// iteration a ← Aᵀh, h ← Aa with L2 normalization each round.
func HITS(adj *sparse.Matrix, opt Options) HITSResult {
	opt = opt.withDefaults()
	n := adj.Rows()
	if adj.Cols() != n {
		panic("rank: HITS needs a square matrix")
	}
	if n == 0 {
		return HITSResult{Converged: true}
	}
	a := make([]float64, n)
	h := make([]float64, n)
	for i := range h {
		h[i] = 1 / math.Sqrt(float64(n))
		a[i] = h[i]
	}
	prevA := make([]float64, n)
	for it := 1; it <= opt.MaxIter; it++ {
		copy(prevA, a)
		adj.MulVecT(h, a) // authority from in-links
		normalize2(a)
		adj.MulVec(a, h) // hub from out-links
		normalize2(h)
		if sparse.MaxAbsDiff(prevA, a) < opt.Tolerance {
			return HITSResult{Authority: a, Hub: h, Iterations: it, Converged: true}
		}
	}
	return HITSResult{Authority: a, Hub: h, Iterations: opt.MaxIter, Converged: false}
}

// BiRank is the result of ranking a bi-typed network: conditional rank
// distributions over the target type X and attribute type Y. Both sum
// to 1 (they are probability distributions, per the RankClus model).
type BiRank struct {
	X, Y []float64
}

// SimpleRanking ranks by normalized weighted degree: rY(j) ∝ Σ_i W[i][j],
// rX(i) ∝ Σ_j W[i][j]. This is RankClus's cheap ranking function; it is
// vulnerable to spam-like high-degree objects but needs no iteration.
func SimpleRanking(w *sparse.Matrix) BiRank {
	x := make([]float64, w.Rows())
	y := make([]float64, w.Cols())
	for r := 0; r < w.Rows(); r++ {
		w.Row(r, func(c int, v float64) {
			x[r] += v
			y[c] += v
		})
	}
	normalize1(x)
	normalize1(y)
	return BiRank{X: x, Y: y}
}

// AuthorityOptions configures AuthorityRanking.
type AuthorityOptions struct {
	Alpha     float64 // weight of the X–X homogeneous propagation (default 0.95 when WXX present, else 1)
	MaxIter   int
	Tolerance float64
}

// AuthorityRanking computes RankClus's authority ranking on a bi-typed
// network: iterate
//
//	rY ← normalize(Wᵀ rX)
//	rX ← normalize(α·W rY + (1-α)·WXX rX)
//
// until the rank distributions stabilize. High-rank attribute objects
// propagate authority to the targets they link, and vice versa; this is
// the ranking whose conditional form drives RankClus and NetClus.
func AuthorityRanking(w, wxx *sparse.Matrix, opt AuthorityOptions) BiRank {
	if opt.MaxIter == 0 {
		opt.MaxIter = 100
	}
	if opt.Tolerance == 0 {
		opt.Tolerance = 1e-9
	}
	alpha := opt.Alpha
	if wxx == nil {
		alpha = 1
	} else if alpha == 0 {
		alpha = 0.95
	}
	nx, ny := w.Rows(), w.Cols()
	rx := uniform(nx)
	ry := uniform(ny)
	tmpX := make([]float64, nx)
	prevX := make([]float64, nx)
	for it := 0; it < opt.MaxIter; it++ {
		copy(prevX, rx)
		w.MulVecT(rx, ry)
		normalize1(ry)
		w.MulVec(ry, rx)
		if wxx != nil && alpha < 1 {
			wxx.MulVec(prevX, tmpX)
			sparse.ParRange(nx, nx, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					rx[i] = alpha*rx[i] + (1-alpha)*tmpX[i]
				}
			})
		}
		normalize1(rx)
		if sparse.MaxAbsDiff(prevX, rx) < opt.Tolerance {
			break
		}
	}
	return BiRank{X: rx, Y: ry}
}

// ConditionalRank restricts the bi-typed network to the given target
// objects (e.g. the conferences currently assigned to one cluster),
// ranks within the sub-network, and returns rank distributions over the
// *full* X and Y index spaces (targets outside the cluster get rank 0;
// attribute ranks are smoothed nowhere — smoothing is the caller's
// concern). This is the "conditional rank" building block of RankClus.
func ConditionalRank(w, wxx *sparse.Matrix, members []int, authority bool, opt AuthorityOptions) BiRank {
	sub := restrictRows(w, members)
	var br BiRank
	if authority {
		var subXX *sparse.Matrix
		if wxx != nil {
			subXX = restrictBoth(wxx, members)
		}
		br = AuthorityRanking(sub, subXX, opt)
	} else {
		br = SimpleRanking(sub)
	}
	full := BiRank{X: make([]float64, w.Rows()), Y: br.Y}
	for i, m := range members {
		full.X[m] = br.X[i]
	}
	return full
}

// restrictRows keeps only the given rows of w (in order), producing a
// len(members)×Cols matrix.
func restrictRows(w *sparse.Matrix, members []int) *sparse.Matrix {
	var entries []sparse.Coord
	for i, m := range members {
		w.Row(m, func(c int, v float64) {
			entries = append(entries, sparse.Coord{Row: i, Col: c, Val: v})
		})
	}
	return sparse.NewFromCoords(len(members), w.Cols(), entries)
}

// restrictBoth keeps the given rows and columns of a square matrix.
func restrictBoth(w *sparse.Matrix, members []int) *sparse.Matrix {
	pos := make(map[int]int, len(members))
	for i, m := range members {
		pos[m] = i
	}
	var entries []sparse.Coord
	for i, m := range members {
		w.Row(m, func(c int, v float64) {
			if j, ok := pos[c]; ok {
				entries = append(entries, sparse.Coord{Row: i, Col: j, Val: v})
			}
		})
	}
	return sparse.NewFromCoords(len(members), len(members), entries)
}

func uniform(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / float64(n)
	}
	return v
}

func sum(xs []float64) float64 {
	return sparse.ParReduce(len(xs), len(xs), func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		return s
	})
}

func normalize1(xs []float64) {
	if s := sum(xs); s > 0 {
		sparse.ScaleVec(1/s, xs)
	}
}

func normalize2(xs []float64) {
	if n := sparse.Norm2(xs); n > 0 {
		sparse.ScaleVec(1/n, xs)
	}
}
