package rank

import (
	"math"
	"testing"
	"testing/quick"

	"hinet/internal/graph"
	"hinet/internal/netgen"
	"hinet/internal/sparse"
	"hinet/internal/stats"
)

func sumOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// star: node 0 is pointed at by 1..n-1.
func starAdj(n int) *sparse.Matrix {
	var entries []sparse.Coord
	for i := 1; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: 0, Val: 1})
	}
	return sparse.NewFromCoords(n, n, entries)
}

func TestPageRankSumsToOne(t *testing.T) {
	r := PageRank(starAdj(10), Options{})
	if !r.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(sumOf(r.Scores)-1) > 1e-9 {
		t.Errorf("sum = %v", sumOf(r.Scores))
	}
}

func TestPageRankStarCenterWins(t *testing.T) {
	r := PageRank(starAdj(20), Options{})
	for i := 1; i < 20; i++ {
		if r.Scores[0] <= r.Scores[i] {
			t.Fatalf("center rank %v not above leaf %v", r.Scores[0], r.Scores[i])
		}
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	n := 7
	var entries []sparse.Coord
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: (i + 1) % n, Val: 1})
	}
	r := PageRank(sparse.NewFromCoords(n, n, entries), Options{})
	for i := 0; i < n; i++ {
		if math.Abs(r.Scores[i]-1.0/float64(n)) > 1e-6 {
			t.Fatalf("cycle not uniform: %v", r.Scores)
		}
	}
}

func TestPageRankFixedPointProperty(t *testing.T) {
	// The returned vector must satisfy its own update equation.
	rng := stats.NewRNG(1)
	g := netgen.BarabasiAlbert(rng, 300, 3)
	adj := g.Adjacency()
	r := PageRank(adj, Options{Tolerance: 1e-12, MaxIter: 500})
	if !r.Converged {
		t.Fatal("no convergence")
	}
	p := adj.RowNormalized()
	n := adj.Rows()
	next := p.MulVecT(r.Scores, nil)
	d := 0.85
	for i := 0; i < n; i++ {
		next[i] = d*next[i] + (1-d)/float64(n)
	}
	if diff := sparse.MaxAbsDiff(r.Scores, next); diff > 1e-9 {
		t.Errorf("fixed point violated by %v", diff)
	}
}

// TestPageRankFusedMatchesMaterialized pins the fused inverse-row-sum
// iteration bitwise against the pre-fusion path: materialize the
// row-stochastic matrix, run the identical power iteration with plain
// MulVecT. Every iterate must agree exactly, so the two paths converge
// at the same iteration to the same vector.
func TestPageRankFusedMatchesMaterialized(t *testing.T) {
	rng := stats.NewRNG(7)
	g := netgen.BarabasiAlbert(rng, 400, 3)
	adj := g.Adjacency()
	got := PageRank(adj, Options{})

	// Reference: the original implementation shape.
	n := adj.Rows()
	p := adj.RowNormalized()
	dangling := make([]bool, n)
	for r := 0; r < n; r++ {
		dangling[r] = p.RowSum(r) == 0
	}
	tele := make([]float64, n)
	for i := range tele {
		tele[i] = 1 / float64(n)
	}
	x := append([]float64(nil), tele...)
	next := make([]float64, n)
	// Runtime variable, not a constant: (1-d) must be computed in
	// float64 like the implementation does, not constant-folded exactly.
	d := 0.85
	want := x
	iters := 0
	for it := 1; it <= 100; it++ {
		p.MulVecT(x, next)
		dm := 0.0
		for r := 0; r < n; r++ {
			if dangling[r] {
				dm += x[r]
			}
		}
		for i := range next {
			next[i] = d*(next[i]+dm*tele[i]) + (1-d)*tele[i]
		}
		if sparse.MaxAbsDiff(x, next) < 1e-9 {
			copy(x, next)
			want, iters = x, it
			break
		}
		x, next = next, x
	}
	if got.Iterations != iters {
		t.Fatalf("fused converged in %d iterations, materialized in %d", got.Iterations, iters)
	}
	for i := range want {
		if got.Scores[i] != want[i] {
			t.Fatalf("fused score[%d] = %v, materialized = %v (must be bitwise equal)",
				i, got.Scores[i], want[i])
		}
	}
}

func TestPageRankDanglingMassRedistributed(t *testing.T) {
	// 0→1, 1 dangles.
	m := sparse.NewFromCoords(2, 2, []sparse.Coord{{Row: 0, Col: 1, Val: 1}})
	r := PageRank(m, Options{})
	if !r.Converged {
		t.Fatal("no convergence")
	}
	if math.Abs(sumOf(r.Scores)-1) > 1e-9 {
		t.Errorf("dangling leak: sum = %v", sumOf(r.Scores))
	}
	if r.Scores[1] <= r.Scores[0] {
		t.Error("node with in-link should outrank")
	}
}

func TestPersonalizedBiasesTowardRestart(t *testing.T) {
	rng := stats.NewRNG(2)
	g := netgen.ErdosRenyi(rng, 100, 0.05)
	adj := g.Adjacency()
	restart := make([]float64, 100)
	restart[7] = 1
	r := Personalized(adj, restart, Options{})
	count := 0
	for i, s := range r.Scores {
		if i != 7 && s >= r.Scores[7] {
			count++
		}
	}
	if count > 0 {
		t.Errorf("%d nodes outrank the restart node", count)
	}
}

func TestPersonalizedZeroRestartFallsBackUniform(t *testing.T) {
	adj := starAdj(5)
	a := Personalized(adj, make([]float64, 5), Options{})
	b := PageRank(adj, Options{})
	if sparse.MaxAbsDiff(a.Scores, b.Scores) > 1e-9 {
		t.Error("zero restart should equal global PageRank")
	}
}

func TestHITSAuthorityOnStar(t *testing.T) {
	r := HITS(starAdj(10), Options{})
	if !r.Converged {
		t.Fatal("no convergence")
	}
	// node 0 receives all links: top authority; leaves are hubs.
	for i := 1; i < 10; i++ {
		if r.Authority[0] <= r.Authority[i] {
			t.Fatal("authority wrong")
		}
		if r.Hub[i] <= r.Hub[0] {
			t.Fatal("hub wrong")
		}
	}
}

func TestHITSNonNegativeUnitNorm(t *testing.T) {
	rng := stats.NewRNG(3)
	g := netgen.BarabasiAlbert(rng, 200, 2)
	r := HITS(g.Adjacency(), Options{})
	na := sparse.Norm2(r.Authority)
	if math.Abs(na-1) > 1e-6 {
		t.Errorf("authority norm = %v", na)
	}
	for _, v := range r.Authority {
		if v < 0 {
			t.Fatal("negative authority")
		}
	}
}

func TestSimpleRankingDistributions(t *testing.T) {
	w := sparse.NewFromDense([][]float64{
		{3, 1},
		{0, 2},
	})
	br := SimpleRanking(w)
	if math.Abs(sumOf(br.X)-1) > 1e-12 || math.Abs(sumOf(br.Y)-1) > 1e-12 {
		t.Fatal("rank distributions must sum to 1")
	}
	if math.Abs(br.X[0]-4.0/6) > 1e-12 {
		t.Errorf("X[0] = %v", br.X[0])
	}
	if math.Abs(br.Y[0]-0.5) > 1e-12 {
		t.Errorf("Y[0] = %v", br.Y[0])
	}
}

func TestAuthorityRankingRewardsWellConnected(t *testing.T) {
	// conf0 is linked by the two most prolific authors; conf2 by one lone author.
	w := sparse.NewFromDense([][]float64{
		{5, 5, 0},
		{3, 2, 1},
		{0, 0, 1},
	})
	br := AuthorityRanking(w, nil, AuthorityOptions{})
	if br.X[0] <= br.X[2] {
		t.Errorf("authority ranking order wrong: %v", br.X)
	}
	if math.Abs(sumOf(br.X)-1) > 1e-9 || math.Abs(sumOf(br.Y)-1) > 1e-9 {
		t.Error("distributions must sum to 1")
	}
}

func TestAuthorityRankingWithHomogeneousLinks(t *testing.T) {
	w := sparse.NewFromDense([][]float64{
		{2, 0},
		{0, 2},
		{1, 1},
	})
	wxx := sparse.NewFromDense([][]float64{
		{0, 1, 0},
		{1, 0, 0},
		{0, 0, 0},
	})
	br := AuthorityRanking(w, wxx, AuthorityOptions{Alpha: 0.7})
	if math.Abs(sumOf(br.X)-1) > 1e-9 {
		t.Error("X must remain a distribution with WXX mixing")
	}
	for _, v := range br.X {
		if v < 0 {
			t.Fatal("negative rank")
		}
	}
}

func TestConditionalRankRestriction(t *testing.T) {
	w := sparse.NewFromDense([][]float64{
		{4, 0, 0},
		{0, 3, 1},
		{0, 0, 2},
	})
	br := ConditionalRank(w, nil, []int{1, 2}, false, AuthorityOptions{})
	if br.X[0] != 0 {
		t.Error("excluded member must have zero rank")
	}
	if math.Abs(sumOf(br.X)-1) > 1e-12 {
		t.Error("restricted X ranks must sum to 1")
	}
	// attribute 0 gets no mass from members {1,2}
	if br.Y[0] != 0 {
		t.Errorf("Y[0] = %v, want 0", br.Y[0])
	}
}

func TestConditionalRankAuthorityMatchesDirect(t *testing.T) {
	w := sparse.NewFromDense([][]float64{
		{4, 1, 0},
		{0, 3, 1},
		{2, 0, 2},
	})
	all := []int{0, 1, 2}
	via := ConditionalRank(w, nil, all, true, AuthorityOptions{})
	direct := AuthorityRanking(w, nil, AuthorityOptions{})
	if sparse.MaxAbsDiff(via.X, direct.X) > 1e-12 || sparse.MaxAbsDiff(via.Y, direct.Y) > 1e-12 {
		t.Error("full-membership conditional rank must equal direct ranking")
	}
}

func TestPageRankDistributionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		g := netgen.ErdosRenyi(rng, 30+rng.Intn(50), 0.08)
		r := PageRank(g.Adjacency(), Options{})
		if math.Abs(sumOf(r.Scores)-1) > 1e-6 {
			return false
		}
		for _, v := range r.Scores {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestEmptyGraphs(t *testing.T) {
	r := PageRank(sparse.NewFromCoords(0, 0, nil), Options{})
	if !r.Converged || len(r.Scores) != 0 {
		t.Error("empty PageRank should trivially converge")
	}
	h := HITS(sparse.NewFromCoords(0, 0, nil), Options{})
	if !h.Converged {
		t.Error("empty HITS should trivially converge")
	}
}

func TestPageRankOnGraphAdjacency(t *testing.T) {
	// Smoke: undirected path graph; middle node should outrank endpoint.
	g := graph.New(3, false)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	r := PageRank(g.Adjacency(), Options{})
	if r.Scores[1] <= r.Scores[0] {
		t.Error("middle of path should outrank endpoint")
	}
}

func TestResultTopKHelpers(t *testing.T) {
	r := Result{Scores: []float64{0.1, 0.5, 0.2, 0.4}}
	if got := r.TopK(2); got[0] != 1 || got[1] != 3 {
		t.Errorf("TopK(2) = %v", got)
	}
	if got := r.TopK(10); len(got) != 4 {
		t.Errorf("TopK should clamp, got %v", got)
	}
	if got := r.TopK(-1); len(got) != 0 {
		t.Errorf("TopK(-1) should clamp to empty, got %v", got)
	}
	h := HITSResult{Authority: []float64{0.9, 0.1}, Hub: []float64{0.1, 0.9}}
	if got := h.TopAuthorities(1); got[0] != 0 {
		t.Errorf("TopAuthorities = %v", got)
	}
	if got := h.TopHubs(1); got[0] != 1 {
		t.Errorf("TopHubs = %v", got)
	}
}

// TestPageRankWarmStart checks that a warm-started iteration reaches
// the same stationary distribution as a cold one (the fixed point does
// not depend on the start vector) in no more iterations, and that
// malformed warm vectors are ignored.
func TestPageRankWarmStart(t *testing.T) {
	g := netgen.BarabasiAlbert(stats.NewRNG(5), 400, 3)
	adj := g.Adjacency()
	cold := PageRank(adj, Options{})
	if !cold.Converged {
		t.Fatal("cold run did not converge")
	}

	// Perturb the graph slightly, recompute cold and warm.
	perturbed := adj.ApplyDelta([]sparse.Coord{
		{Row: 0, Col: 5, Val: 1}, {Row: 7, Col: 3, Val: 1}, {Row: 2, Col: 9, Val: 1},
	})
	cold2 := PageRank(perturbed, Options{})
	warm := PageRank(perturbed, Options{Start: cold.Scores})
	if !warm.Converged {
		t.Fatal("warm run did not converge")
	}
	if d := sparse.MaxAbsDiff(cold2.Scores, warm.Scores); d > 1e-6 {
		t.Fatalf("warm and cold disagree by %g", d)
	}
	if warm.Iterations > cold2.Iterations {
		t.Fatalf("warm start took %d iterations, cold %d", warm.Iterations, cold2.Iterations)
	}

	// Mismatched length and zero-mass warm vectors fall back to cold.
	if got := PageRank(perturbed, Options{Start: []float64{1, 2, 3}}); got.Iterations != cold2.Iterations {
		t.Fatal("length-mismatched Start must be ignored")
	}
	if got := PageRank(perturbed, Options{Start: make([]float64, perturbed.Rows())}); got.Iterations != cold2.Iterations {
		t.Fatal("zero-mass Start must be ignored")
	}
}
