package cluster

import (
	"math/rand"
	"testing"
)

func TestPartitionByNNZBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		dim := 1 + rng.Intn(500)
		shards := 1 + rng.Intn(9)
		weights := make([]int, dim)
		total := 0
		for i := range weights {
			// Heavy-tailed: a few hub rows dominate.
			w := rng.Intn(4)
			if rng.Intn(20) == 0 {
				w = 200 + rng.Intn(400)
			}
			weights[i] = w
			total += w
		}
		p := PartitionByNNZ("author", dim, shards, func(r int) int { return weights[r] })
		if p.Shards() != shards {
			t.Fatalf("got %d ranges, want %d", p.Shards(), shards)
		}
		// Disjoint, covering, monotone.
		if p.Bounds[0] != 0 || p.Bounds[shards] != dim {
			t.Fatalf("bounds %v do not cover [0,%d)", p.Bounds, dim)
		}
		for i := 1; i <= shards; i++ {
			if p.Bounds[i] < p.Bounds[i-1] {
				t.Fatalf("bounds %v not monotone", p.Bounds)
			}
		}
		if total == 0 {
			continue
		}
		// Each shard's weight stays within one max row of the even
		// share (cut points land on the first row crossing each target).
		maxRow := 0
		for _, w := range weights {
			maxRow = max(maxRow, w)
		}
		share := total / shards
		for i := 0; i < shards; i++ {
			lo, hi := p.Range(i)
			w := 0
			for r := lo; r < hi; r++ {
				w += weights[r]
			}
			if w > share+maxRow {
				t.Fatalf("shard %d weight %d exceeds share %d + max row %d (bounds %v)",
					i, w, share, maxRow, p.Bounds)
			}
		}
	}
}

func TestPartitionUniformAndZeroWeight(t *testing.T) {
	p := PartitionByNNZ("author", 10, 3, func(int) int { return 0 })
	u := PartitionUniform("author", 10, 3)
	for i := range u.Bounds {
		if p.Bounds[i] != u.Bounds[i] {
			t.Fatalf("zero-weight fallback %v, want uniform %v", p.Bounds, u.Bounds)
		}
	}
	lo, hi := u.rangeOf(2, 15) // last shard absorbs appended ids
	if lo != u.Bounds[2] || hi != 15 {
		t.Fatalf("rangeOf(last, 15) = [%d,%d)", lo, hi)
	}
	if lo, hi := u.rangeOf(0, 15); lo != 0 || hi != u.Bounds[1] {
		t.Fatalf("rangeOf(0, 15) = [%d,%d), want fixed bounds", lo, hi)
	}
}

func TestPolicies(t *testing.T) {
	load := []int64{5, 0, 3}
	inflight := func(i int) int64 { return load[i] }

	rr := &RoundRobin{}
	for want := 0; want < 7; want++ {
		if got := rr.Pick("k", 3, inflight); got != want%3 {
			t.Fatalf("round-robin pick %d = %d, want %d", want, got, want%3)
		}
	}

	ll := &LeastLoaded{}
	for i := 0; i < 5; i++ {
		if got := ll.Pick("k", 3, inflight); got != 1 {
			t.Fatalf("least-loaded picked %d, want 1", got)
		}
	}
	// Ties spread over the tied shards via the rotating start.
	flat := func(int) int64 { return 0 }
	seen := map[int]bool{}
	for i := 0; i < 9; i++ {
		seen[ll.Pick("k", 3, flat)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("least-loaded tie-break stuck on %v", seen)
	}

	ka := KeyAffinity{}
	a, b := ka.Pick("query-1", 8, inflight), ka.Pick("query-2", 8, inflight)
	for i := 0; i < 10; i++ {
		if ka.Pick("query-1", 8, inflight) != a || ka.Pick("query-2", 8, inflight) != b {
			t.Fatal("key-affinity not stable")
		}
	}

	for _, name := range []string{"", "round-robin", "least-loaded", "key-affinity"} {
		if _, err := NewPolicy(name); err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
	}
	if _, err := NewPolicy("bogus"); err == nil {
		t.Fatal("NewPolicy(bogus) should fail")
	}
}
