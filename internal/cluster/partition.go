// Horizontal partitioning of the similarity index's candidate space.
// The partition is fixed at coordinator construction — bounds are part
// of the cluster's identity, not per-generation state — and ids are
// append-only, so objects added by ingest land past the last boundary
// and are absorbed by the last shard until a re-partition (a future
// rebalance operation; skew is surfaced so operators can see it
// coming).

package cluster

import "fmt"

// Partition splits the id space [0, Bounds[len-1]) of one object type
// into len(Bounds)-1 contiguous shard ranges: shard i owns
// [Bounds[i], Bounds[i+1]).
type Partition struct {
	// Of is the partitioned object type (the default path's endpoint
	// type, e.g. "author"). Meta-paths ending in a different type fall
	// back to even id-range splits of that type.
	Of string
	// Bounds has one entry per shard boundary; Bounds[0] is always 0.
	Bounds []int
}

// PartitionByNNZ cuts [0, dim) into shards ranges balancing the
// cumulative row weight (typically the PathSim commuting matrix's
// per-row nonzero count, so each shard scans a comparable share of the
// index regardless of hub skew). Cut i lands on the first row where
// the weight prefix reaches i/shards of the total. Falls back to even
// id ranges when the total weight is zero.
func PartitionByNNZ(of string, dim, shards int, rowWeight func(int) int) Partition {
	if shards < 1 {
		panic("cluster: need at least one shard")
	}
	total := 0
	for r := 0; r < dim; r++ {
		total += rowWeight(r)
	}
	if total == 0 {
		return PartitionUniform(of, dim, shards)
	}
	bounds := make([]int, shards+1)
	bounds[shards] = dim
	prefix, row := 0, 0
	for i := 1; i < shards; i++ {
		// Smallest row with prefix(row) ≥ i·total/shards; rows and
		// targets both advance monotonically, one pass overall.
		target := (i*total + shards - 1) / shards
		for row < dim && prefix < target {
			prefix += rowWeight(row)
			row++
		}
		bounds[i] = row
	}
	return Partition{Of: of, Bounds: bounds}
}

// PartitionUniform cuts [0, dim) into equal-width id ranges — the
// fallback when no weight signal exists, and the degenerate-skew
// baseline the equivalence tests exercise.
func PartitionUniform(of string, dim, shards int) Partition {
	if shards < 1 {
		panic("cluster: need at least one shard")
	}
	bounds := make([]int, shards+1)
	for i := 0; i <= shards; i++ {
		bounds[i] = i * dim / shards
	}
	return Partition{Of: of, Bounds: bounds}
}

// Shards returns the number of shard ranges.
func (p Partition) Shards() int { return len(p.Bounds) - 1 }

// Range returns shard i's owned range [lo, hi) at partition time (the
// last shard additionally absorbs ids appended after construction —
// see rangeOf).
func (p Partition) Range(i int) (lo, hi int) { return p.Bounds[i], p.Bounds[i+1] }

// rangeOf resolves shard i's range against a current dimension of the
// partitioned type: the last shard's range grows to absorb appended
// ids. dim below the partition's last bound is impossible (ids are
// append-only) and panics rather than silently dropping candidates.
func (p Partition) rangeOf(i, dim int) (lo, hi int) {
	lo, hi = p.Range(i)
	if i == p.Shards()-1 {
		if dim < hi {
			panic(fmt.Sprintf("cluster: dimension shrank below partition bound: %d < %d", dim, hi))
		}
		hi = dim
	}
	return lo, hi
}

// evenRange is the fallback split for meta-paths whose endpoint type
// is not the partitioned one: shard i owns [i·dim/s, (i+1)·dim/s).
// Every replica computes it from the same dim, so the ranges are
// disjoint and covering by construction.
func evenRange(i, shards, dim int) (lo, hi int) {
	return i * dim / shards, (i + 1) * dim / shards
}
