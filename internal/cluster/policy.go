// Routing policies for single-shard reads (replica selection). The
// scatter-gather query plane always fans out to every shard; the
// policies route the reads that any one replica can answer alone —
// cluster-model reads today, warm-cache query affinity once shards
// live behind a transport.

package cluster

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// Policy picks one of n shards for a single-shard read. key is a
// stable request identity (path, algo, query id) for affinity
// policies; inflight exposes the current per-shard inflight counter
// for load-aware ones. Implementations must be safe for concurrent
// use.
type Policy interface {
	Name() string
	Pick(key string, n int, inflight func(int) int64) int
}

// NewPolicy resolves a policy by its knob name: "round-robin" (default
// for an empty name), "least-loaded", or "key-affinity".
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "", "round-robin":
		return &RoundRobin{}, nil
	case "least-loaded":
		return &LeastLoaded{}, nil
	case "key-affinity":
		return KeyAffinity{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown routing policy %q (want round-robin|least-loaded|key-affinity)", name)
	}
}

// RoundRobin cycles through the shards in order, ignoring key and
// load — the simplest fair spread.
type RoundRobin struct{ next atomic.Uint64 }

func (p *RoundRobin) Name() string { return "round-robin" }

func (p *RoundRobin) Pick(_ string, n int, _ func(int) int64) int {
	return int((p.next.Add(1) - 1) % uint64(n))
}

// LeastLoaded picks the shard with the fewest inflight requests,
// breaking ties from a rotating start position so equal-load shards
// share the traffic instead of funneling it to shard 0.
type LeastLoaded struct{ start atomic.Uint64 }

func (p *LeastLoaded) Name() string { return "least-loaded" }

func (p *LeastLoaded) Pick(_ string, n int, inflight func(int) int64) int {
	first := int((p.start.Add(1) - 1) % uint64(n))
	best := first
	bestLoad := inflight(first)
	for d := 1; d < n; d++ {
		i := (first + d) % n
		if load := inflight(i); load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// KeyAffinity hashes the request key onto a shard, so repeated reads
// with the same identity land on the same replica (warm meta-path and
// result caches once shards are remote).
type KeyAffinity struct{}

func (KeyAffinity) Name() string { return "key-affinity" }

func (KeyAffinity) Pick(key string, n int, _ func(int) int64) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum64() % uint64(n))
}
