// The shared model recipe: one deterministic function from (seed,
// spec) — and, for incremental generations, the previous models plus a
// delta batch — to the full artifact set a serving generation needs.
// Both the single-process snapshot store (internal/serve) and every
// cluster shard build through these two functions, which is what makes
// shards exact replicas of the single-process store: same seed, same
// spec, same delta history ⇒ bitwise-identical models.

package cluster

import (
	"hinet/internal/core"
	"hinet/internal/dblp"
	"hinet/internal/hin"
	"hinet/internal/ingest"
	"hinet/internal/netclus"
	"hinet/internal/pathsim"
	"hinet/internal/rank"
	"hinet/internal/stats"
)

// Meta paths materialized at build time: APVPA (shared-venue peers,
// the PathSim index) and APA (co-authorship, the square graph PageRank
// and HITS run on).
var (
	// PathAPVPA is the default similarity path; its endpoint type is
	// the type the cluster partitions.
	PathAPVPA = hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue, dblp.TypePaper, dblp.TypeAuthor}
	// PathAPA is the co-authorship projection the ranking models run on.
	PathAPA = hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeAuthor}
)

// ModelSpec controls what a generation materializes. It mirrors the
// single-process store's model configuration; SkipPathSim is the shard
// variant — shards never hold the full similarity index, only their
// column slice, built separately from the same network.
type ModelSpec struct {
	Corpus   dblp.Config // corpus size/separability (zero value = library defaults)
	K        int         // cluster count for RankClus/NetClus (0 = number of corpus areas)
	Restarts int         // random restarts per clustering model (0 = 1)

	// SkipPathSim leaves Models.PathSim nil. Shards set it: the full
	// commuting matrix is exactly what sharding avoids materializing.
	SkipPathSim bool
}

// Models is one generation's artifact set — everything a Snapshot
// carries except the serving-layer memoization state.
type Models struct {
	Seed     int64
	Corpus   *dblp.Corpus    // network + names + ground-truth areas
	PageRank rank.Result     // PageRank over the co-author (APA) graph
	HITS     rank.HITSResult // HITS over the same graph
	RankClus *core.Model     // venue clusters (venue×author bipartite)
	NetClus  *netclus.Model  // net-clusters of the paper star network
	PathSim  *pathsim.Index  // prebuilt APVPA index (nil with SkipPathSim)
}

// clusterParams resolves the spec's clustering knobs against a corpus.
func (spec ModelSpec) clusterParams(c *dblp.Corpus) (k, restarts int) {
	k = spec.K
	if k == 0 {
		k = c.Areas()
	}
	restarts = spec.Restarts
	if restarts == 0 {
		restarts = 1
	}
	return k, restarts
}

// BuildModels materializes a fresh generation from seed: generate the
// corpus, run the ranking models over the co-author graph, fit both
// clustering models, and (unless spec skips it) build the default
// PathSim index. Deterministic: equal (seed, spec) always produce
// identical artifacts, bit for bit.
func BuildModels(seed int64, spec ModelSpec) *Models {
	c := dblp.Generate(stats.NewRNG(seed), spec.Corpus)
	k, restarts := spec.clusterParams(c)
	coauthor := c.Net.CommutingMatrix(PathAPA)
	m := &Models{
		Seed:     seed,
		Corpus:   c,
		PageRank: rank.PageRank(coauthor, rank.Options{}),
		HITS:     rank.HITS(coauthor, rank.Options{}),
		RankClus: core.Run(stats.NewRNG(seed+1), c.VenueAuthorBipartite(),
			core.Options{K: k, Method: core.AuthorityRanking, Restarts: restarts}),
		NetClus: netclus.Run(stats.NewRNG(seed+2), c.Star(),
			netclus.Options{K: k, Restarts: restarts}),
	}
	if !spec.SkipPathSim {
		m.PathSim = pathsim.NewIndex(c.Net, PathAPVPA)
	}
	return m
}

// IngestModels applies a delta batch to prev as an incremental
// generation: the network is cloned copy-on-write (sharing link
// storage, relation matrices and surviving meta-path materializations),
// the deltas merge into the clone, and new models build from the
// result — PageRank warm-started from the previous generation's
// scores. The clustering models are carried over unless refreshModels
// is set (they summarize the corpus and drift only slowly under small
// deltas). On a validation error the clone is discarded and prev is
// untouched — ingestion is all-or-nothing.
//
// Determinism carries through: two replicas holding identical prev
// models that apply the same batch produce identical next models,
// which is the invariant the cluster's fan-out write path stands on.
func IngestModels(prev *Models, deltas []ingest.Delta, refreshModels bool, spec ModelSpec) (*Models, ingest.Summary, error) {
	net := prev.Corpus.Net.Clone()
	sum, err := ingest.Apply(net, deltas, ingest.Options{})
	if err != nil {
		return nil, sum, err
	}
	corpus := prev.Corpus.WithNetwork(net)
	coauthor := net.CommutingMatrix(PathAPA)
	m := &Models{
		Seed:     prev.Seed,
		Corpus:   corpus,
		PageRank: rank.PageRank(coauthor, rank.Options{Start: PadScores(prev.PageRank.Scores, coauthor.Rows())}),
		HITS:     rank.HITS(coauthor, rank.Options{}),
		RankClus: prev.RankClus,
		NetClus:  prev.NetClus,
	}
	if refreshModels {
		k, restarts := spec.clusterParams(corpus)
		m.RankClus = core.Run(stats.NewRNG(prev.Seed+1), corpus.VenueAuthorBipartite(),
			core.Options{K: k, Method: core.AuthorityRanking, Restarts: restarts})
		m.NetClus = netclus.Run(stats.NewRNG(prev.Seed+2), corpus.Star(),
			netclus.Options{K: k, Restarts: restarts})
	}
	if prev.PathSim != nil || !spec.SkipPathSim {
		m.PathSim = pathsim.NewIndex(net, PathAPVPA)
	}
	return m, sum, nil
}

// PadScores returns scores extended with zeros to length n (ids are
// append-only, so a previous epoch's vector is a prefix of the new
// object space). Same-length vectors pass through unchanged.
func PadScores(scores []float64, n int) []float64 {
	if len(scores) >= n {
		return scores
	}
	out := make([]float64, n)
	copy(out, scores)
	return out
}
