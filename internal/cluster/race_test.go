// Concurrency suite (run under -race in CI): scatter-gather reads,
// ingest fan-out, and shard restarts all proceed concurrently while
// per-shard and coordinator epochs stay monotone, reads only ever see
// fully published generations, and the final epoch accounts exactly
// for the writes that succeeded — the PR 6 saturation-race pattern
// extended across the shard boundary.

package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hinet/internal/dblp"
	"hinet/internal/ingest"
	"hinet/internal/pathsim"
)

func raceSpec() ModelSpec {
	return ModelSpec{Corpus: dblp.Config{
		VenuesPerArea:  2,
		AuthorsPerArea: 15,
		TermsPerArea:   10,
		SharedTerms:    4,
		Papers:         90,
	}}
}

// TestPreviousEpochReadRace pins the genAt/newGeneration interleaving:
// lock-free readers querying the retained previous generation follow
// generation.prev at the same time the next write trims the chain
// (prev.prev → nil). Run under -race; before prev became an atomic
// pointer the detector flagged this as a data race.
func TestPreviousEpochReadRace(t *testing.T) {
	const shards = 2
	spec := raceSpec()
	seed := int64(11)
	ref := BuildModels(seed, spec)
	part := PartitionByNNZ(string(dblp.TypeAuthor), ref.PathSim.Dim(), shards, ref.PathSim.M.RowNNZ)
	c, err := NewLocalCluster(shards, part, spec, nil, seed)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	dim := ref.PathSim.Dim()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				sh := c.Shard(rng.Intn(shards))
				// Deliberately one epoch behind the shard: the read that
				// must traverse the prev link during a write's fan-out.
				ep := max(sh.Epoch()-1, 1)
				_, err := sh.TopK(ctx, ep, "", rng.Intn(dim), 5)
				if err != nil {
					var ee *EpochError
					if !errors.As(err, &ee) {
						t.Errorf("previous-epoch reader: unexpected error: %v", err)
						return
					}
				}
			}
		}(r)
	}

	refCur := ref
	for w := 0; w < 6; w++ {
		deltas := newTestDeltas(refCur, fmt.Sprintf("prev-%d", w))
		next, _, err := IngestModels(refCur, deltas, false, spec)
		if err != nil {
			t.Fatalf("reference ingest %d: %v", w, err)
		}
		refCur = next
		if _, _, err := c.Ingest(deltas, false); err != nil {
			t.Fatalf("cluster ingest %d: %v", w, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestClusterRace(t *testing.T) {
	const shards = 3
	const writes = 5
	spec := raceSpec()
	seed := int64(7)
	ref := BuildModels(seed, spec)
	part := PartitionByNNZ(string(dblp.TypeAuthor), ref.PathSim.Dim(), shards, ref.PathSim.M.RowNNZ)
	c, err := NewLocalCluster(shards, part, spec, &LeastLoaded{}, seed)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var readOK, readEpochMiss atomic.Uint64
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// Epoch monotonicity watchers: the coordinator and every shard.
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := c.Epoch()
		lastShard := make([]int64, shards)
		for i := range lastShard {
			lastShard[i] = c.Shard(i).Epoch()
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if e := c.Epoch(); e < last {
				fail("coordinator epoch went backwards: %d -> %d", last, e)
				return
			} else {
				last = e
			}
			for i := 0; i < shards; i++ {
				if e := c.Shard(i).Epoch(); e < lastShard[i] {
					fail("shard %d epoch went backwards: %d -> %d", i, lastShard[i], e)
					return
				} else {
					lastShard[i] = e
				}
			}
		}
	}()

	// Scatter-gather readers. A read may fail with an EpochError while
	// a shard replays its log mid-restart; any other failure is a bug.
	dim := ref.PathSim.Dim()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				x, k := rng.Intn(dim), 1+rng.Intn(10)
				pairs, ep, err := c.TopK(ctx, "", x, k)
				if err != nil {
					var ee *EpochError
					if !errors.As(err, &ee) {
						fail("reader: unexpected error: %v", err)
						return
					}
					readEpochMiss.Add(1)
					continue
				}
				if ep < 1 || ep > writes+1 {
					fail("reader: answered at impossible epoch %d", ep)
					return
				}
				// Sanity on the merged answer: sorted, deduped, in range.
				for i, p := range pairs {
					if p.ID < 0 || (i > 0 && pathsim.ComparePairs(pairs[i-1], p) >= 0) {
						fail("reader: merged answer out of order at %d", i)
						return
					}
				}
				readOK.Add(1)
			}
		}(r)
	}

	// Restart loop: bounce shards while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(55))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sh := c.Shard(rng.Intn(shards)).(*LocalShard)
			before := sh.Epoch()
			if err := sh.Restart(); err != nil {
				fail("restart: %v", err)
				return
			}
			if after := sh.Epoch(); after < before {
				fail("restart dropped shard epoch %d -> %d", before, after)
				return
			}
		}
	}()

	// Writer: sequential ingest fan-outs through the coordinator,
	// mirrored into the single-process reference.
	refCur := ref
	for w := 0; w < writes; w++ {
		deltas := newTestDeltas(refCur, fmt.Sprintf("race-%d", w))
		next, _, err := IngestModels(refCur, deltas, false, spec)
		if err != nil {
			t.Fatalf("reference ingest %d: %v", w, err)
		}
		refCur = next
		ep, _, err := c.Ingest(deltas, false)
		if err != nil {
			t.Fatalf("cluster ingest %d: %v", w, err)
		}
		if want := int64(w + 2); ep != want {
			t.Fatalf("ingest %d published epoch %d, want %d", w, ep, want)
		}
	}
	// One rejected batch must change nothing (validation gate).
	badEp := c.Epoch()
	if _, _, err := c.Ingest([]ingest.Delta{{Op: ingest.OpAddEdge,
		SrcType: "paper", Src: "no-such-paper", DstType: "author", Dst: "nobody"}}, false); err == nil {
		t.Fatal("invalid batch should be rejected")
	}
	if c.Epoch() != badEp {
		t.Fatalf("rejected batch moved the epoch %d -> %d", badEp, c.Epoch())
	}

	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Exact final-epoch accounting: boot(1) + every accepted write, on
	// the coordinator and every shard.
	want := int64(writes + 1)
	if c.Epoch() != want {
		t.Fatalf("final coordinator epoch %d, want %d", c.Epoch(), want)
	}
	for i := 0; i < shards; i++ {
		if e := c.Shard(i).Epoch(); e != want {
			t.Fatalf("final shard %d epoch %d, want %d", i, e, want)
		}
	}
	// And the final state is bitwise the single-process one.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		x := rng.Intn(refCur.PathSim.Dim())
		got, ep, err := c.TopK(ctx, "", x, 10)
		if err != nil || ep != want {
			t.Fatalf("final TopK: epoch %d err %v", ep, err)
		}
		pairsEqual(t, refCur.PathSim.TopK(x, 10), got, "final state")
	}
	t.Logf("reads ok=%d epoch-miss=%d", readOK.Load(), readEpochMiss.Load())
}
