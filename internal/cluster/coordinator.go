// The scatter-gather coordinator: fans queries out to every shard,
// merges partial top-k answers under the same strict total order the
// single-index scan uses, and serializes write fan-out so the cluster
// epoch advances only when every shard has published. The coordinator
// holds no model state of its own — it is pure routing and merging —
// which is what keeps it transport-agnostic.

package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hinet/internal/core"
	"hinet/internal/ingest"
	"hinet/internal/netclus"
	"hinet/internal/obs"
	"hinet/internal/pathsim"
)

// Coordinator routes queries across one partition's shards.
type Coordinator struct {
	part   Partition
	shards []Shard
	policy Policy

	mu    sync.Mutex   // serializes write fan-out
	epoch atomic.Int64 // min over shard epochs, advanced after all publish

	scatters atomic.Uint64 // scatter-gather fan-outs issued
	routed   atomic.Uint64 // single-shard reads routed by policy
}

// NewCoordinator wires a coordinator over pre-built shards. The
// coordinator's epoch starts at the minimum shard epoch (0 for empty
// shards; call Rebuild to materialize the first generation).
func NewCoordinator(shards []Shard, part Partition, policy Policy) *Coordinator {
	if len(shards) == 0 {
		panic("cluster: coordinator needs at least one shard")
	}
	if policy == nil {
		policy = &RoundRobin{}
	}
	c := &Coordinator{part: part, shards: shards, policy: policy}
	minEp := shards[0].Epoch()
	for _, sh := range shards[1:] {
		minEp = min(minEp, sh.Epoch())
	}
	c.epoch.Store(minEp)
	return c
}

// NewLocalCluster builds n in-process shards over the partition,
// materializes their first generation from seed, and returns the
// coordinator — the `hinet serve -shards N` construction path.
func NewLocalCluster(n int, part Partition, spec ModelSpec, policy Policy, seed int64) (*Coordinator, error) {
	if part.Shards() != n {
		return nil, fmt.Errorf("cluster: partition has %d ranges for %d shards", part.Shards(), n)
	}
	shards := make([]Shard, n)
	for i := range shards {
		shards[i] = NewLocalShard(i, part, spec)
	}
	c := NewCoordinator(shards, part, policy)
	if _, err := c.Rebuild(seed); err != nil {
		return nil, err
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Shard returns shard i (tests and the restart harness).
func (c *Coordinator) Shard(i int) Shard { return c.shards[i] }

// Epoch returns the cluster epoch: the highest generation every shard
// has published.
func (c *Coordinator) Epoch() int64 { return c.epoch.Load() }

// PolicyName returns the routing policy's knob name.
func (c *Coordinator) PolicyName() string { return c.policy.Name() }

// Partition returns the fixed candidate partition.
func (c *Coordinator) Partition() Partition { return c.part }

// Scatters returns the number of fan-out reads issued.
func (c *Coordinator) Scatters() uint64 { return c.scatters.Load() }

// Routed returns the number of single-shard reads routed by policy.
func (c *Coordinator) Routed() uint64 { return c.routed.Load() }

// inflightOf adapts the shard stats to the Policy load signal.
func (c *Coordinator) inflightOf(i int) int64 { return c.shards[i].Stats().Inflight }

// scatter runs fn against every shard concurrently at the given epoch
// and reports per-shard wall times. The first error wins (client
// errors take priority, so a bad path is always reported as such);
// partial results are discarded on error.
func (c *Coordinator) scatter(ctx context.Context, epoch int64, fn func(i int, sh Shard) error) ([]time.Duration, error) {
	c.scatters.Add(1)
	durs := make([]time.Duration, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			start := time.Now()
			errs[i] = fn(i, sh)
			durs[i] = time.Since(start)
		}(i, sh)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var ce *ClientError
		if errors.As(err, &ce) {
			return durs, err
		}
		if first == nil {
			first = err
		}
	}
	return durs, first
}

// addShardSpans attaches per-shard timings as children of the caller's
// scatter span when the context carries a trace (obs.Trace is not
// concurrent-safe, so timings are recorded after the gather, not from
// inside the fan-out goroutines).
func addShardSpans(tr *obs.Trace, parent int, durs []time.Duration) {
	for i, d := range durs {
		tr.AddTimed(parent, fmt.Sprintf("shard%d", i), d)
	}
}

// TopKAt scatter-gathers a top-k query at a fixed epoch: every shard
// scans its candidate slice of the query's row, and the partials merge
// under the single-index order (pathsim.MergeTopK), yielding an answer
// bitwise-identical to a single-process index at that epoch.
func (c *Coordinator) TopKAt(ctx context.Context, epoch int64, path string, x, k int) ([]pathsim.Pair, error) {
	tr := obs.FromContext(ctx)
	sp := tr.Start("scatter")
	partials := make([][]pathsim.Pair, len(c.shards))
	durs, err := c.scatter(ctx, epoch, func(i int, sh Shard) error {
		var err error
		partials[i], err = sh.TopK(ctx, epoch, path, x, k)
		return err
	})
	addShardSpans(tr, sp, durs)
	if err != nil {
		tr.End(sp)
		return nil, err
	}
	sp = tr.Next(sp, "merge")
	merged := pathsim.MergeTopK(partials, k, nil)
	tr.End(sp)
	return merged, nil
}

// TopK is TopKAt at the current cluster epoch, retrying once if a
// write advanced the cluster mid-flight.
func (c *Coordinator) TopK(ctx context.Context, path string, x, k int) ([]pathsim.Pair, int64, error) {
	for attempt := 0; ; attempt++ {
		epoch := c.epoch.Load()
		pairs, err := c.TopKAt(ctx, epoch, path, x, k)
		if err == nil {
			return pairs, epoch, nil
		}
		var ee *EpochError
		if attempt < 2 && errors.As(err, &ee) && c.epoch.Load() != epoch {
			continue
		}
		return nil, 0, err
	}
}

// BatchTopKAt is the batched scatter-gather: the whole query batch
// fans out to every shard (each answering all queries over its own
// slice, in parallel internally), then each query's partials merge.
func (c *Coordinator) BatchTopKAt(ctx context.Context, epoch int64, path string, xs []int, k int) ([][]pathsim.Pair, error) {
	tr := obs.FromContext(ctx)
	sp := tr.Start("scatter")
	partials := make([][][]pathsim.Pair, len(c.shards))
	durs, err := c.scatter(ctx, epoch, func(i int, sh Shard) error {
		var err error
		partials[i], err = sh.BatchTopK(ctx, epoch, path, xs, k)
		return err
	})
	addShardSpans(tr, sp, durs)
	if err != nil {
		tr.End(sp)
		return nil, err
	}
	sp = tr.Next(sp, "merge")
	out := make([][]pathsim.Pair, len(xs))
	parts := make([][]pathsim.Pair, len(c.shards))
	for q := range xs {
		for i := range c.shards {
			parts[i] = partials[i][q]
		}
		out[q] = pathsim.MergeTopK(parts, k, nil)
	}
	tr.End(sp)
	return out, nil
}

// RankAt scatter-gathers the ranking metric at a fixed epoch: each
// shard contributes the top-k of its owned id range of the (replica)
// score vector, and the merge reproduces the single-process
// stats.TopK order exactly. Iteration metadata comes from shard 0's
// replica (identical everywhere).
func (c *Coordinator) RankAt(ctx context.Context, epoch int64, metric string, k int) ([]pathsim.Pair, int, bool, error) {
	tr := obs.FromContext(ctx)
	sp := tr.Start("scatter")
	partials := make([][]pathsim.Pair, len(c.shards))
	iters := make([]int, len(c.shards))
	conv := make([]bool, len(c.shards))
	durs, err := c.scatter(ctx, epoch, func(i int, sh Shard) error {
		var err error
		partials[i], iters[i], conv[i], err = sh.Rank(ctx, epoch, metric, k)
		return err
	})
	addShardSpans(tr, sp, durs)
	if err != nil {
		tr.End(sp)
		return nil, 0, false, err
	}
	sp = tr.Next(sp, "merge")
	merged := pathsim.MergeTopK(partials, k, nil)
	tr.End(sp)
	return merged, iters[0], conv[0], nil
}

// ClustersAt routes a cluster-model read to one shard picked by the
// routing policy (any replica answers identically).
func (c *Coordinator) ClustersAt(ctx context.Context, epoch int64, algo string) (*core.Model, *netclus.Model, error) {
	c.routed.Add(1)
	i := c.policy.Pick("clusters|"+algo, len(c.shards), c.inflightOf)
	tr := obs.FromContext(ctx)
	sp := tr.Start(fmt.Sprintf("shard%d", i))
	rc, nc, err := c.shards[i].Clusters(ctx, epoch)
	tr.End(sp)
	return rc, nc, err
}

// Ingest fans a delta batch out to every shard, shard 0 first: shards
// are deterministic replicas, so shard 0 is the validation gate — a
// rejected batch changes nothing anywhere, and once shard 0 accepts,
// the rest cannot fail differently. The cluster epoch advances only
// after every shard has published the new generation; reads at the
// previous epoch keep answering from retained generations throughout
// the fan-out window.
func (c *Coordinator) Ingest(deltas []ingest.Delta, refreshModels bool) (int64, ingest.Summary, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	minEp, sum, err := c.shards[0].Ingest(deltas, refreshModels)
	if err != nil {
		return 0, sum, err
	}
	for _, sh := range c.shards[1:] {
		ep, _, err := sh.Ingest(deltas, refreshModels)
		if err != nil {
			return 0, sum, fmt.Errorf("cluster: shard %d diverged on ingest accepted by shard 0: %w", sh.ID(), err)
		}
		minEp = min(minEp, ep)
	}
	c.epoch.Store(minEp)
	return minEp, sum, nil
}

// Rebuild fans a fresh-generation build out to every shard (shard 0
// first, same protocol as Ingest) and advances the cluster epoch once
// all have published.
func (c *Coordinator) Rebuild(seed int64) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	minEp, err := c.shards[0].Rebuild(seed)
	if err != nil {
		return 0, err
	}
	for _, sh := range c.shards[1:] {
		ep, err := sh.Rebuild(seed)
		if err != nil {
			return 0, fmt.Errorf("cluster: shard %d diverged on rebuild accepted by shard 0: %w", sh.ID(), err)
		}
		minEp = min(minEp, ep)
	}
	c.epoch.Store(minEp)
	return minEp, nil
}

// Stats returns every shard's stats, in shard order — the partition
// skew view (/v1/cluster/shards, hinet_shard_* metrics).
func (c *Coordinator) Stats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.Stats()
	}
	return out
}

// Skew summarizes the partition imbalance across shards: the ratio of
// the largest to the mean per-shard nnz (1.0 = perfectly balanced; 0
// when the cluster is empty).
func (c *Coordinator) Skew() float64 {
	total, maxNNZ := 0, 0
	for _, st := range c.Stats() {
		total += st.NNZ
		maxNNZ = max(maxNNZ, st.NNZ)
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(c.shards))
	return float64(maxNNZ) / mean
}
