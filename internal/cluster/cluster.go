// Package cluster is the sharded scatter-gather serving tier: it
// splits the PathSim query plane of one logical snapshot across N
// shards while keeping every answer bitwise-identical to a
// single-process store.
//
// The design partitions the *similarity index* and replicates the
// *models*:
//
//   - Each shard owns a contiguous candidate range [Lo, Hi) of the
//     PathSim index's endpoint type, chosen by nnz-balanced row ranges
//     of the commuting matrix (Partition), and holds only the matching
//     column slice (pathsim.RangeIndex) — the one artifact whose memory
//     and scan cost grow with the network. Gram-eligible paths never
//     materialize the full commuting matrix on a shard.
//   - The ranking and clustering models (PageRank, HITS, RankClus,
//     NetClus) are deterministic functions of (seed, spec, delta
//     history), so every shard holds an identical replica (Models);
//     rank queries scatter over owned id ranges and merge, cluster
//     reads route to any one replica via a Policy.
//
// TopK/BatchTopK queries scatter to all shards — every shard scans its
// slice of the query's row and returns a local top-k — and the
// coordinator merges the partials with the same bounded-heap order the
// single-index scan uses (pathsim.MergeTopK), which is what makes the
// merged answer bitwise-equal, tie order included.
//
// Writes (Ingest/Rebuild) fan out shard 0 first: shards are
// deterministic replicas, so shard 0 acts as the validation gate — if
// it rejects a batch nothing has changed anywhere, and if it accepts,
// the remaining shards cannot fail differently. Each shard publishes
// its new generation atomically, retaining the previous one so reads
// at the prior epoch keep answering during the fan-out window; the
// coordinator's epoch advances only after every shard has published.
//
// Shards are addressed through the transport-agnostic Shard interface;
// LocalShard is the in-process implementation (an HTTP/gRPC transport
// can wrap the same interface later without touching the coordinator).
package cluster

import (
	"context"
	"fmt"

	"hinet/internal/core"
	"hinet/internal/ingest"
	"hinet/internal/netclus"
	"hinet/internal/pathsim"
)

// Shard is one partition of the serving tier. Read methods take the
// epoch the caller expects to query — a shard answers from its current
// or immediately previous generation and fails with an EpochError
// otherwise, so a coordinator can never silently mix generations.
// Write methods return the shard's new epoch.
type Shard interface {
	// ID returns the shard's index in the partition.
	ID() int
	// Epoch returns the shard's current published epoch (0 before the
	// first write).
	Epoch() int64
	// TopK answers a partial top-k query over the shard's candidate
	// range of the given meta-path (empty spec = the prebuilt default).
	TopK(ctx context.Context, epoch int64, path string, x, k int) ([]pathsim.Pair, error)
	// BatchTopK answers one partial top-k per entry of xs.
	BatchTopK(ctx context.Context, epoch int64, path string, xs []int, k int) ([][]pathsim.Pair, error)
	// Rank returns the shard's partial top-k of the named ranking
	// metric (pagerank|authority|hub) over its owned id range, plus the
	// model's iteration/convergence metadata (identical on every
	// replica).
	Rank(ctx context.Context, epoch int64, metric string, k int) ([]pathsim.Pair, int, bool, error)
	// Clusters returns the shard's replica clustering models.
	Clusters(ctx context.Context, epoch int64) (*core.Model, *netclus.Model, error)
	// Ingest applies a delta batch as a new generation (all-or-nothing)
	// and returns the published epoch.
	Ingest(deltas []ingest.Delta, refreshModels bool) (int64, ingest.Summary, error)
	// Rebuild materializes a fresh generation from seed.
	Rebuild(seed int64) (int64, error)
	// Stats reports the shard's partition geometry and load counters.
	Stats() ShardStats
}

// ShardStats is one shard's observable state: partition geometry, the
// default-path slice size (the skew signal), and load counters.
type ShardStats struct {
	ID       int    `json:"id"`
	Epoch    int64  `json:"epoch"`
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
	Rows     int    `json:"rows"`
	NNZ      int    `json:"nnz"`
	Inflight int64  `json:"inflight"`
	Queries  uint64 `json:"queries"`
}

// EpochError reports a query for a generation the shard no longer (or
// does not yet) retain.
type EpochError struct {
	Shard int
	Want  int64
	Have  int64
}

func (e *EpochError) Error() string {
	return fmt.Sprintf("cluster: shard %d cannot serve epoch %d (at epoch %d)", e.Shard, e.Want, e.Have)
}

// ClientError marks a query error caused by the request itself (bad
// path, unknown metric) rather than shard state; the serving layer
// maps it to HTTP 400.
type ClientError struct{ Err error }

func (e *ClientError) Error() string { return e.Err.Error() }
func (e *ClientError) Unwrap() error { return e.Err }
