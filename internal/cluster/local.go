// LocalShard: the in-process Shard implementation. One shard owns a
// replica of the model set plus the column slice of the similarity
// index for its candidate range; generations publish atomically behind
// an atomic pointer (the PR 5 snapshot-store discipline), each
// retaining its predecessor so reads at the previous epoch keep
// answering through a write fan-out window. Every write is appended to
// a replayable log, so Restart can rebuild the exact current state
// from scratch — the recovery story a remote shard process will need,
// exercised by the race suite.

package cluster

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"hinet/internal/core"
	"hinet/internal/hin"
	"hinet/internal/ingest"
	"hinet/internal/netclus"
	"hinet/internal/pathsim"
	"hinet/internal/stats"
)

// maxRangeIndexes bounds a generation's memoized per-path range
// indexes, mirroring the single-process snapshot's index memo cap: an
// adversarial stream of distinct paths cannot grow shard memory
// without bound (beyond the cap, indexes are rebuilt per request).
const maxRangeIndexes = 64

// generation is one published shard state. Immutable after publish
// except the ranges memo (concurrent-safe, append-only) and prev,
// which the next write trims to nil after it has been published —
// atomic, because lock-free readers follow it in genAt.
type generation struct {
	epoch  int64
	models *Models
	def    *pathsim.RangeIndex        // default-path slice, built eagerly at publish
	prev   atomic.Pointer[generation] // immediately previous generation (nil beyond that)

	ranges     sync.Map // path string → *pathsim.RangeIndex
	rangeCount atomic.Int32
}

// writeOp is one replayable entry of the shard's write log.
type writeOp struct {
	rebuildSeed int64 // valid when rebuild is true
	rebuild     bool
	deltas      []ingest.Delta
	refresh     bool
}

// LocalShard implements Shard in-process.
type LocalShard struct {
	id   int
	part Partition
	spec ModelSpec

	mu      sync.Mutex // serializes writes, the log, and Restart
	gen     atomic.Pointer[generation]
	epoch   atomic.Int64 // last published epoch; never decreases, even mid-Restart
	baseOps []writeOp    // write log since the last full rebuild
	base    int64        // epoch the log replays from (epoch before baseOps[0])

	inflight atomic.Int64
	queries  atomic.Uint64
}

// NewLocalShard returns shard id of the partition, empty until the
// first Rebuild. The spec's SkipPathSim is forced on — a shard never
// materializes the full similarity index.
func NewLocalShard(id int, part Partition, spec ModelSpec) *LocalShard {
	spec.SkipPathSim = true
	return &LocalShard{id: id, part: part, spec: spec}
}

// ID implements Shard.
func (sh *LocalShard) ID() int { return sh.id }

// Epoch implements Shard.
func (sh *LocalShard) Epoch() int64 { return sh.epoch.Load() }

// boundsFor resolves the shard's owned candidate range for a path
// ending at the given endpoint type: the partitioned type uses the
// partition's bounds (last shard absorbing appended ids), any other
// type an even id split.
func (sh *LocalShard) boundsFor(endpoint hin.Type, dim int) (lo, hi int) {
	if string(endpoint) == sh.part.Of {
		return sh.part.rangeOf(sh.id, dim)
	}
	return evenRange(sh.id, sh.part.Shards(), dim)
}

// newGeneration builds the publishable state around a model set.
func (sh *LocalShard) newGeneration(m *Models, epoch int64, prev *generation) (*generation, error) {
	endpoint := PathAPVPA[len(PathAPVPA)-1]
	lo, hi := sh.boundsFor(endpoint, m.Corpus.Net.Count(endpoint))
	def, err := pathsim.NewRangeIndexCtx(context.Background(), m.Corpus.Net, PathAPVPA, lo, hi)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d default index: %w", sh.id, err)
	}
	if prev != nil {
		prev.prev.Store(nil) // retain exactly one predecessor
	}
	g := &generation{epoch: epoch, models: m, def: def}
	g.prev.Store(prev)
	g.ranges.Store(PathAPVPA.String(), def)
	g.rangeCount.Store(1)
	return g, nil
}

// publish swaps g in as the live generation. Callers hold mu.
func (sh *LocalShard) publish(g *generation) {
	sh.gen.Store(g)
	sh.epoch.Store(g.epoch)
}

// Rebuild implements Shard: a fresh generation from seed. The write
// log restarts here — a rebuild's state does not depend on prior
// history.
func (sh *LocalShard) Rebuild(seed int64) (int64, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	epoch := sh.epoch.Load() + 1
	g, err := sh.newGeneration(BuildModels(seed, sh.spec), epoch, sh.gen.Load())
	if err != nil {
		return 0, err
	}
	sh.base = epoch - 1
	sh.baseOps = []writeOp{{rebuild: true, rebuildSeed: seed}}
	sh.publish(g)
	return epoch, nil
}

// Ingest implements Shard: all-or-nothing application of a delta
// batch as a new generation. A validation error changes nothing and is
// not logged.
func (sh *LocalShard) Ingest(deltas []ingest.Delta, refreshModels bool) (int64, ingest.Summary, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.gen.Load()
	if cur == nil {
		return 0, ingest.Summary{}, fmt.Errorf("cluster: shard %d has no generation to ingest into", sh.id)
	}
	m, sum, err := IngestModels(cur.models, deltas, refreshModels, sh.spec)
	if err != nil {
		return 0, sum, err
	}
	epoch := cur.epoch + 1
	g, err := sh.newGeneration(m, epoch, cur)
	if err != nil {
		return 0, sum, err
	}
	sh.baseOps = append(sh.baseOps, writeOp{deltas: slices.Clone(deltas), refresh: refreshModels})
	sh.publish(g)
	return epoch, sum, nil
}

// Restart models a shard process restart: the live generation is
// dropped (reads fail with an EpochError while the shard is down — the
// published epoch counter never decreases), then the write log replays
// from scratch and the rebuilt state publishes atomically. Because
// every model build is deterministic, the recovered generation is
// bit-identical to the one dropped, at the same epoch.
func (sh *LocalShard) Restart() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.baseOps) == 0 {
		return nil
	}
	sh.gen.Store(nil)
	epoch := sh.base
	var g *generation
	var m *Models
	for _, op := range sh.baseOps {
		if op.rebuild {
			m = BuildModels(op.rebuildSeed, sh.spec)
		} else {
			next, _, err := IngestModels(m, op.deltas, op.refresh, sh.spec)
			if err != nil {
				return fmt.Errorf("cluster: shard %d replay diverged: %w", sh.id, err)
			}
			m = next
		}
		epoch++
		next, err := sh.newGeneration(m, epoch, g)
		if err != nil {
			return err
		}
		g = next
	}
	sh.publish(g)
	return nil
}

// genAt resolves the generation serving the requested epoch: the
// current one or its retained predecessor.
func (sh *LocalShard) genAt(epoch int64) (*generation, error) {
	g := sh.gen.Load()
	if g == nil {
		return nil, &EpochError{Shard: sh.id, Want: epoch, Have: sh.epoch.Load()}
	}
	if g.epoch == epoch {
		return g, nil
	}
	if p := g.prev.Load(); p != nil && p.epoch == epoch {
		return p, nil
	}
	return nil, &EpochError{Shard: sh.id, Want: epoch, Have: g.epoch}
}

// rangeFor resolves a client path spec against a generation's memoized
// range indexes (empty spec = the eagerly built default slice),
// building and capping like the single-process snapshot's index memo.
func (sh *LocalShard) rangeFor(ctx context.Context, g *generation, spec string) (*pathsim.RangeIndex, error) {
	if spec == "" {
		return g.def, nil
	}
	net := g.models.Corpus.Net
	path, err := net.ParseMetaPath(spec)
	if err != nil {
		return nil, &ClientError{Err: err}
	}
	if err := pathsim.ValidatePath(path); err != nil {
		return nil, &ClientError{Err: err}
	}
	key := path.String()
	if v, ok := g.ranges.Load(key); ok {
		return v.(*pathsim.RangeIndex), nil
	}
	endpoint := path[len(path)-1]
	lo, hi := sh.boundsFor(endpoint, net.Count(endpoint))
	ix, err := pathsim.NewRangeIndexCtx(ctx, net, path, lo, hi)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, &ClientError{Err: err}
	}
	if g.rangeCount.Load() >= maxRangeIndexes {
		return ix, nil
	}
	v, loaded := g.ranges.LoadOrStore(key, ix)
	if !loaded {
		g.rangeCount.Add(1)
	}
	return v.(*pathsim.RangeIndex), nil
}

// TopK implements Shard.
func (sh *LocalShard) TopK(ctx context.Context, epoch int64, path string, x, k int) ([]pathsim.Pair, error) {
	sh.inflight.Add(1)
	defer sh.inflight.Add(-1)
	sh.queries.Add(1)
	g, err := sh.genAt(epoch)
	if err != nil {
		return nil, err
	}
	ix, err := sh.rangeFor(ctx, g, path)
	if err != nil {
		return nil, err
	}
	return ix.TopK(x, k), nil
}

// BatchTopK implements Shard.
func (sh *LocalShard) BatchTopK(ctx context.Context, epoch int64, path string, xs []int, k int) ([][]pathsim.Pair, error) {
	sh.inflight.Add(1)
	defer sh.inflight.Add(-1)
	sh.queries.Add(1)
	g, err := sh.genAt(epoch)
	if err != nil {
		return nil, err
	}
	ix, err := sh.rangeFor(ctx, g, path)
	if err != nil {
		return nil, err
	}
	return ix.BatchTopKCtx(ctx, xs, k)
}

// Rank implements Shard: the partial top-k of the metric's score
// vector over the shard's owned id range, under the exact
// stats.TopK order (score descending, ties by lower id) so the merged
// ranking is identical to the single-process one.
func (sh *LocalShard) Rank(ctx context.Context, epoch int64, metric string, k int) ([]pathsim.Pair, int, bool, error) {
	sh.inflight.Add(1)
	defer sh.inflight.Add(-1)
	sh.queries.Add(1)
	g, err := sh.genAt(epoch)
	if err != nil {
		return nil, 0, false, err
	}
	m := g.models
	var scores []float64
	var iters int
	var converged bool
	switch metric {
	case "pagerank":
		scores, iters, converged = m.PageRank.Scores, m.PageRank.Iterations, m.PageRank.Converged
	case "authority":
		scores, iters, converged = m.HITS.Authority, m.HITS.Iterations, m.HITS.Converged
	case "hub":
		scores, iters, converged = m.HITS.Hub, m.HITS.Iterations, m.HITS.Converged
	default:
		return nil, 0, false, &ClientError{Err: fmt.Errorf("unknown metric %q (want pagerank|authority|hub)", metric)}
	}
	lo, hi := sh.boundsFor(PathAPA[0], len(scores))
	if k < 0 {
		k = 0
	}
	h := make([]pathsim.Pair, 0, min(k, hi-lo))
	for id := lo; id < hi; id++ {
		h = stats.BoundedOffer(h, k, pathsim.Pair{ID: id, Score: scores[id]}, pathsim.WorsePair)
	}
	slices.SortFunc(h, pathsim.ComparePairs)
	return h, iters, converged, nil
}

// Clusters implements Shard: the replica clustering models at the
// requested epoch (identical on every shard by determinism).
func (sh *LocalShard) Clusters(ctx context.Context, epoch int64) (*core.Model, *netclus.Model, error) {
	sh.inflight.Add(1)
	defer sh.inflight.Add(-1)
	sh.queries.Add(1)
	g, err := sh.genAt(epoch)
	if err != nil {
		return nil, nil, err
	}
	return g.models.RankClus, g.models.NetClus, nil
}

// Models returns the live generation's model replica (nil before the
// first write) — the hook the serving layer uses to render names and
// cluster payloads without duplicating state access.
func (sh *LocalShard) Models() *Models {
	if g := sh.gen.Load(); g != nil {
		return g.models
	}
	return nil
}

// Stats implements Shard.
func (sh *LocalShard) Stats() ShardStats {
	st := ShardStats{
		ID:       sh.id,
		Epoch:    sh.epoch.Load(),
		Inflight: sh.inflight.Load(),
		Queries:  sh.queries.Load(),
	}
	if g := sh.gen.Load(); g != nil {
		st.Lo, st.Hi = g.def.Lo(), g.def.Hi()
		st.Rows = g.def.Rows()
		st.NNZ = g.def.NNZ()
	}
	return st
}
