// The randomized sharding equivalence suite: for seeds × shard counts
// × partition shapes, every coordinator answer must be BITWISE equal
// to the single-process store's on the same snapshot — same ids, same
// order (ties included), float64 scores identical to the last bit.
// This is the acceptance bar the whole tier stands on.

package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hinet/internal/dblp"
	"hinet/internal/ingest"
	"hinet/internal/pathsim"
	"hinet/internal/stats"
)

// testSpec keeps model builds fast; two areas, few hundred papers.
func testSpec() ModelSpec {
	return ModelSpec{Corpus: dblp.Config{
		VenuesPerArea:  3,
		AuthorsPerArea: 30,
		TermsPerArea:   20,
		SharedTerms:    8,
		Papers:         220,
	}}
}

func pairsEqual(t *testing.T, want, got []pathsim.Pair, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
			t.Fatalf("%s: pair %d = {%d, %v}, want {%d, %v} (bitwise)",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// skewedPartition cuts the id space at random points — including empty
// and tiny ranges — the adversarial shape for merge correctness.
func skewedPartition(rng *rand.Rand, of string, dim, shards int) Partition {
	bounds := make([]int, shards+1)
	bounds[shards] = dim
	for i := 1; i < shards; i++ {
		bounds[i] = rng.Intn(dim + 1)
	}
	for i := 1; i < shards; i++ {
		for j := i; j > 1 && bounds[j] < bounds[j-1]; j-- {
			bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
		}
	}
	return Partition{Of: of, Bounds: bounds}
}

// newTestDeltas appends papers (and one brand-new author) to the
// corpus, exercising the last shard's absorption of appended ids.
func newTestDeltas(m *Models, tag string) []ingest.Delta {
	net := m.Corpus.Net
	newAuthor := fmt.Sprintf("new-author-%s", tag)
	ds := []ingest.Delta{{Op: ingest.OpAddNode, Type: string(dblp.TypeAuthor), Name: newAuthor}}
	for p := 0; p < 3; p++ {
		name := fmt.Sprintf("new-paper-%s-%d", tag, p)
		ds = append(ds,
			ingest.Delta{Op: ingest.OpAddNode, Type: string(dblp.TypePaper), Name: name},
			ingest.Delta{Op: ingest.OpAddEdge, SrcType: string(dblp.TypePaper), Src: name,
				DstType: string(dblp.TypeAuthor), Dst: newAuthor},
			ingest.Delta{Op: ingest.OpAddEdge, SrcType: string(dblp.TypePaper), Src: name,
				DstType: string(dblp.TypeAuthor), Dst: net.Name(dblp.TypeAuthor, p%net.Count(dblp.TypeAuthor))},
			ingest.Delta{Op: ingest.OpAddEdge, SrcType: string(dblp.TypePaper), Src: name,
				DstType: string(dblp.TypeVenue), Dst: net.Name(dblp.TypeVenue, p%net.Count(dblp.TypeVenue))},
		)
	}
	return ds
}

// checkEquivalence compares every read surface of the coordinator
// against the single-process reference models at the same epoch.
func checkEquivalence(t *testing.T, rng *rand.Rand, c *Coordinator, ref *Models, label string) {
	t.Helper()
	ctx := context.Background()
	full := ref.PathSim
	dim := full.Dim()
	epoch := c.Epoch()

	for _, k := range []int{1, 10, dim} {
		xs := make([]int, 12)
		for i := range xs {
			xs[i] = rng.Intn(dim)
		}
		for _, x := range xs[:6] {
			got, ep, err := c.TopK(ctx, "", x, k)
			if err != nil {
				t.Fatalf("%s: TopK: %v", label, err)
			}
			if ep != epoch {
				t.Fatalf("%s: TopK answered at epoch %d, want %d", label, ep, epoch)
			}
			pairsEqual(t, full.TopK(x, k), got, fmt.Sprintf("%s TopK(x=%d,k=%d)", label, x, k))
		}
		batch, err := c.BatchTopKAt(ctx, epoch, "", xs, k)
		if err != nil {
			t.Fatalf("%s: BatchTopK: %v", label, err)
		}
		wantBatch := full.BatchTopK(xs, k)
		for i := range xs {
			pairsEqual(t, wantBatch[i], batch[i], fmt.Sprintf("%s BatchTopK[%d]", label, i))
		}
	}

	// A non-default path resolves per shard and merges identically.
	apa := PathAPA.String()
	fullAPA, err := pathsim.NewIndexE(ref.Corpus.Net, PathAPA)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		x := rng.Intn(fullAPA.Dim())
		got, _, err := c.TopK(ctx, apa, x, 10)
		if err != nil {
			t.Fatalf("%s: TopK(path=APA): %v", label, err)
		}
		pairsEqual(t, fullAPA.TopK(x, 10), got, label+" TopK path=APA")
	}

	// Rank: merged per-shard range top-k == stats.TopK of the replica
	// vector, metadata identical.
	for _, metric := range []string{"pagerank", "authority", "hub"} {
		var scores []float64
		var iters int
		var conv bool
		switch metric {
		case "pagerank":
			scores, iters, conv = ref.PageRank.Scores, ref.PageRank.Iterations, ref.PageRank.Converged
		case "authority":
			scores, iters, conv = ref.HITS.Authority, ref.HITS.Iterations, ref.HITS.Converged
		case "hub":
			scores, iters, conv = ref.HITS.Hub, ref.HITS.Iterations, ref.HITS.Converged
		}
		for _, k := range []int{1, 10, len(scores) + 5} {
			got, gi, gc, err := c.RankAt(ctx, epoch, metric, k)
			if err != nil {
				t.Fatalf("%s: Rank(%s): %v", label, metric, err)
			}
			if gi != iters || gc != conv {
				t.Fatalf("%s: Rank(%s) metadata (%d,%v), want (%d,%v)", label, metric, gi, gc, iters, conv)
			}
			wantIDs := stats.TopK(scores, k)
			if len(wantIDs) != len(got) {
				t.Fatalf("%s: Rank(%s,k=%d): %d ids, want %d", label, metric, k, len(got), len(wantIDs))
			}
			for i, id := range wantIDs {
				if got[i].ID != id || got[i].Score != scores[id] {
					t.Fatalf("%s: Rank(%s) row %d = {%d,%v}, want {%d,%v}",
						label, metric, i, got[i].ID, got[i].Score, id, scores[id])
				}
			}
		}
	}

	// Cluster models: replicas must equal the reference build exactly
	// (same assignment vector — the models are deterministic).
	rc, nc, err := c.ClustersAt(ctx, epoch, "rankclus")
	if err != nil {
		t.Fatalf("%s: Clusters: %v", label, err)
	}
	if rc.K != ref.RankClus.K || nc.K != ref.NetClus.K {
		t.Fatalf("%s: cluster K mismatch", label)
	}
	for i, a := range ref.RankClus.Assign {
		if rc.Assign[i] != a {
			t.Fatalf("%s: RankClus assignment diverged at %d", label, i)
		}
	}
}

func TestShardedEquivalence(t *testing.T) {
	spec := testSpec()
	of := string(dblp.TypeAuthor)
	for _, seed := range []int64{1, 5} {
		// Single-process reference: the same recipe the serve.Store uses.
		ref := BuildModels(seed, spec)
		dim := ref.PathSim.Dim()
		rng := rand.New(rand.NewSource(seed * 997))
		for _, shards := range []int{1, 2, 3, 8} {
			parts := map[string]Partition{
				"nnz":     PartitionByNNZ(of, dim, shards, ref.PathSim.M.RowNNZ),
				"uniform": PartitionUniform(of, dim, shards),
				"skewed":  skewedPartition(rng, of, dim, shards),
			}
			for pname, part := range parts {
				label := fmt.Sprintf("seed=%d shards=%d part=%s", seed, shards, pname)
				c, err := NewLocalCluster(shards, part, spec, &RoundRobin{}, seed)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if c.Epoch() != 1 {
					t.Fatalf("%s: boot epoch %d, want 1", label, c.Epoch())
				}
				checkEquivalence(t, rng, c, ref, label)

				// Ingest the same deltas into both sides; equivalence must
				// hold on the new generation (including ids the last shard
				// absorbed past the partition bound), and the previous
				// epoch must keep answering.
				deltas := newTestDeltas(ref, fmt.Sprintf("%d-%d-%s", seed, shards, pname))
				ref2, _, err := IngestModels(ref, deltas, false, spec)
				if err != nil {
					t.Fatalf("%s: reference ingest: %v", label, err)
				}
				ep, _, err := c.Ingest(deltas, false)
				if err != nil {
					t.Fatalf("%s: cluster ingest: %v", label, err)
				}
				if ep != 2 || c.Epoch() != 2 {
					t.Fatalf("%s: post-ingest epoch %d/%d, want 2", label, ep, c.Epoch())
				}
				checkEquivalence(t, rng, c, ref2, label+" epoch2")
				// Previous generation still answers at epoch 1.
				x := rng.Intn(dim)
				prev, err := c.TopKAt(context.Background(), 1, "", x, 10)
				if err != nil {
					t.Fatalf("%s: TopKAt(epoch=1): %v", label, err)
				}
				pairsEqual(t, ref.PathSim.TopK(x, 10), prev, label+" retained epoch 1")
				// Epoch 0 (never published past) and epoch 3 (future) fail.
				if _, err := c.TopKAt(context.Background(), 3, "", x, 10); err == nil {
					t.Fatalf("%s: future epoch should fail", label)
				}
			}
		}
	}
}

// TestShardedEquivalenceAfterRestart replays a shard's write log and
// checks the recovered generation answers identically.
func TestShardedEquivalenceAfterRestart(t *testing.T) {
	spec := testSpec()
	of := string(dblp.TypeAuthor)
	ref := BuildModels(9, spec)
	part := PartitionByNNZ(of, ref.PathSim.Dim(), 3, ref.PathSim.M.RowNNZ)
	c, err := NewLocalCluster(3, part, spec, &RoundRobin{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	deltas := newTestDeltas(ref, "restart")
	ref2, _, err := IngestModels(ref, deltas, false, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Ingest(deltas, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sh := c.Shard(i).(*LocalShard)
		if err := sh.Restart(); err != nil {
			t.Fatalf("shard %d restart: %v", i, err)
		}
		if sh.Epoch() != 2 {
			t.Fatalf("shard %d epoch %d after restart, want 2", i, sh.Epoch())
		}
	}
	rng := rand.New(rand.NewSource(42))
	checkEquivalence(t, rng, c, ref2, "post-restart")
}
