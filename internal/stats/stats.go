// Package stats provides small deterministic statistical utilities shared
// by the generators and algorithms in this repository: a seeded RNG
// wrapper, Zipf and categorical samplers, and numerically careful
// aggregation helpers.
//
// Everything here is intentionally dependency-free (stdlib only) because
// the reproduction targets an offline build; the iterative numeric kernels
// the paper's algorithms need are hand-rolled on top of these primitives.
package stats

import (
	"cmp"
	"math"
	"math/rand"
	"slices"
	"sort"
)

// RNG is a deterministic random source. It wraps math/rand.Rand so that
// every generator in the repository can be seeded explicitly and replayed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Poisson returns a Poisson variate with mean lambda using Knuth's method
// for small lambda and a normal approximation for large lambda.
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation with continuity correction.
		v := g.NormFloat64()*math.Sqrt(lambda) + lambda
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= g.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf draws integers in [0, n) with P(i) proportional to 1/(i+1)^s.
// It precomputes the CDF so draws are O(log n).
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n items with exponent s (> 0).
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf needs n > 0")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw returns the next Zipf-distributed index.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Categorical draws indices with the given (unnormalized) weights.
type Categorical struct {
	cdf []float64
	rng *RNG
}

// NewCategorical builds a sampler over weights. Negative weights panic;
// all-zero weights yield a uniform distribution.
func NewCategorical(rng *RNG, weights []float64) *Categorical {
	cdf := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("stats: negative categorical weight")
		}
		total += w
		cdf[i] = total
	}
	if total == 0 {
		for i := range cdf {
			cdf[i] = float64(i+1) / float64(len(cdf))
		}
	} else {
		for i := range cdf {
			cdf[i] /= total
		}
	}
	return &Categorical{cdf: cdf, rng: rng}
}

// Draw returns the next category index.
func (c *Categorical) Draw() int {
	u := c.rng.Float64()
	i := sort.SearchFloat64s(c.cdf, u)
	if i >= len(c.cdf) {
		i = len(c.cdf) - 1
	}
	return i
}

// LogSumExp returns log(sum(exp(xs))) guarding against overflow.
// It returns -Inf for an empty slice.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	maxV := xs[0]
	for _, x := range xs[1:] {
		if x > maxV {
			maxV = x
		}
	}
	if math.IsInf(maxV, -1) {
		return maxV
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - maxV)
	}
	return maxV + math.Log(sum)
}

// Normalize scales xs in place so it sums to 1. If the sum is zero it
// sets the uniform distribution. It returns the original sum.
func Normalize(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if sum == 0 {
		if len(xs) > 0 {
			u := 1 / float64(len(xs))
			for i := range xs {
				xs[i] = u
			}
		}
		return 0
	}
	for i := range xs {
		xs[i] /= sum
	}
	return sum
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for n < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Entropy returns the Shannon entropy (nats) of a distribution given as
// non-negative weights; the weights are normalized internally.
func Entropy(p []float64) float64 {
	total := 0.0
	for _, v := range p {
		total += v
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, v := range p {
		if v > 0 {
			q := v / total
			h -= q * math.Log(q)
		}
	}
	return h
}

// KLDivergence returns KL(p || q) in nats over distributions given as
// weights; both are normalized internally and q is smoothed by eps to
// keep the divergence finite.
func KLDivergence(p, q []float64, eps float64) float64 {
	if len(p) != len(q) {
		panic("stats: KL length mismatch")
	}
	ps := append([]float64(nil), p...)
	qs := make([]float64, len(q))
	for i, v := range q {
		qs[i] = v + eps
	}
	Normalize(ps)
	Normalize(qs)
	d := 0.0
	for i := range ps {
		if ps[i] > 0 {
			d += ps[i] * math.Log(ps[i]/qs[i])
		}
	}
	return d
}

// CosineSim returns the cosine similarity of two equal-length vectors.
// Zero vectors have similarity 0.
func CosineSim(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: cosine length mismatch")
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// L1Distance returns the L1 distance between equal-length vectors.
func L1Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: L1 length mismatch")
	}
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// ArgMax returns the index of the largest element (first on ties) and -1
// for empty input.
func ArgMax(xs []float64) int {
	best := -1
	bv := math.Inf(-1)
	for i, x := range xs {
		if x > bv {
			bv = x
			best = i
		}
	}
	return best
}

// BoundedOffer offers v to a k-bounded selection held in h, a min-heap
// whose root is the worst retained element under worse(a, b) ("a ranks
// strictly below b"). While fewer than k elements are held v is pushed;
// afterwards v replaces the root only if the root is worse than v.
// Returns the updated heap (h's backing array is reused; pass a
// pre-sized buffer to select without allocating). Offering every
// candidate of a stream and sorting the survivors reproduces a full
// sort-then-truncate top-k exactly — ties included, provided worse is a
// strict total order. This is the one heap used by every top-k hot
// path (stats.TopK, pathsim.TopK/BatchTopK).
func BoundedOffer[T any](h []T, k int, v T, worse func(a, b T) bool) []T {
	if len(h) < k {
		h = append(h, v)
		for i := len(h) - 1; i > 0; {
			parent := (i - 1) / 2
			if !worse(h[i], h[parent]) {
				break
			}
			h[i], h[parent] = h[parent], h[i]
			i = parent
		}
		return h
	}
	if !worse(h[0], v) {
		return h
	}
	h[0] = v
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			return h
		}
		if r := l + 1; r < len(h) && worse(h[r], h[l]) {
			l = r
		}
		if !worse(h[l], h[i]) {
			return h
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
}

// TopK returns the indices of the k largest values in xs, descending.
// Ties break by lower index. k is clamped to [0, len(xs)]. Selection is
// a bounded min-heap partial sort — O(n·log k) with k-sized scratch
// instead of sorting an n-sized index permutation — matching the
// stable-full-sort order exactly (score descending, ties by index).
func TopK(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	if k <= 0 {
		return []int{}
	}
	// Index a outranks b when xs[a] > xs[b], or a < b at equal values.
	worse := func(a, b int) bool {
		if xs[a] != xs[b] {
			return xs[a] < xs[b]
		}
		return a > b
	}
	h := make([]int, 0, k)
	for i := range xs {
		h = BoundedOffer(h, k, i, worse)
	}
	slices.SortFunc(h, func(a, b int) int {
		if xs[a] != xs[b] {
			return cmp.Compare(xs[b], xs[a])
		}
		return cmp.Compare(a, b)
	})
	return h
}
