package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(1)
	z := NewZipf(rng, 100, 1.5)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[10] {
		t.Errorf("Zipf head not dominant: c0=%d c10=%d", counts[0], counts[10])
	}
	// Rough mass check: top item should carry a noticeable share for s=1.5.
	if counts[0] < 2000 {
		t.Errorf("Zipf top item mass too small: %d/20000", counts[0])
	}
}

func TestZipfDrawInRange(t *testing.T) {
	rng := NewRNG(7)
	z := NewZipf(rng, 13, 1.0)
	for i := 0; i < 1000; i++ {
		d := z.Draw()
		if d < 0 || d >= 13 {
			t.Fatalf("Zipf draw %d out of range", d)
		}
	}
}

func TestCategoricalMatchesWeights(t *testing.T) {
	rng := NewRNG(3)
	c := NewCategorical(rng, []float64{1, 0, 3})
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[c.Draw()]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("category ratio = %.2f, want ≈3", ratio)
	}
}

func TestCategoricalAllZeroUniform(t *testing.T) {
	rng := NewRNG(5)
	c := NewCategorical(rng, []float64{0, 0, 0, 0})
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[c.Draw()]++
	}
	for i, n := range counts {
		if n < 1500 || n > 2500 {
			t.Errorf("uniform fallback skewed: counts[%d]=%d", i, n)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	rng := NewRNG(11)
	for _, lambda := range []float64{0.5, 4, 50} {
		sum := 0
		n := 20000
		for i := 0; i < n; i++ {
			sum += rng.Poisson(lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > 0.15*lambda+0.1 {
			t.Errorf("Poisson(%g) mean = %.3f", lambda, mean)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if math.Abs(got-math.Log(6)) > 1e-12 {
		t.Errorf("LogSumExp = %v, want log 6", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(nil) should be -Inf")
	}
	// Large magnitudes must not overflow.
	got = LogSumExp([]float64{1000, 1000})
	if math.Abs(got-(1000+math.Log(2))) > 1e-9 {
		t.Errorf("LogSumExp overflow guard failed: %v", got)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{2, 6}
	Normalize(xs)
	if xs[0] != 0.25 || xs[1] != 0.75 {
		t.Errorf("Normalize = %v", xs)
	}
	zero := []float64{0, 0, 0, 0}
	Normalize(zero)
	for _, v := range zero {
		if v != 0.25 {
			t.Errorf("zero-sum Normalize should be uniform, got %v", zero)
		}
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = math.Abs(math.Mod(v, 100))
		}
		Normalize(xs)
		if len(xs) == 0 {
			return true
		}
		sum := 0.0
		for _, v := range xs {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntropyBounds(t *testing.T) {
	if e := Entropy([]float64{1, 1, 1, 1}); math.Abs(e-math.Log(4)) > 1e-12 {
		t.Errorf("uniform entropy = %v, want log 4", e)
	}
	if e := Entropy([]float64{1, 0, 0}); e != 0 {
		t.Errorf("point-mass entropy = %v, want 0", e)
	}
	if e := Entropy(nil); e != 0 {
		t.Errorf("empty entropy = %v", e)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	if d := KLDivergence(p, p, 0); math.Abs(d) > 1e-12 {
		t.Errorf("KL(p||p) = %v", d)
	}
	q := []float64{0.9, 0.1}
	if d := KLDivergence(p, q, 1e-12); d <= 0 {
		t.Errorf("KL(p||q) = %v, want > 0", d)
	}
}

func TestCosineSim(t *testing.T) {
	if s := CosineSim([]float64{1, 0}, []float64{0, 1}); s != 0 {
		t.Errorf("orthogonal cosine = %v", s)
	}
	if s := CosineSim([]float64{2, 2}, []float64{1, 1}); math.Abs(s-1) > 1e-12 {
		t.Errorf("parallel cosine = %v", s)
	}
	if s := CosineSim([]float64{0, 0}, []float64{1, 1}); s != 0 {
		t.Errorf("zero-vector cosine = %v", s)
	}
}

func TestCosineSymmetricProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		x, y := make([]float64, 4), make([]float64, 4)
		for i := 0; i < 4; i++ {
			// Clamp magnitudes so the dot product cannot overflow.
			x[i] = math.Mod(a[i], 1e6)
			y[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
			if math.IsNaN(y[i]) {
				y[i] = 0
			}
		}
		return math.Abs(CosineSim(x, y)-CosineSim(y, x)) < 1e-12 &&
			CosineSim(x, y) < 1+1e-12 && CosineSim(x, y) > -1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArgMaxTopK(t *testing.T) {
	xs := []float64{3, 9, 1, 9, 5}
	if i := ArgMax(xs); i != 1 {
		t.Errorf("ArgMax = %d, want 1 (first tie)", i)
	}
	top := TopK(xs, 3)
	want := []int{1, 3, 4}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", top, want)
		}
	}
	if got := TopK(xs, 99); len(got) != len(xs) {
		t.Errorf("TopK over-length = %d items", len(got))
	}
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil) should be -1")
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v", v)
	}
	if Variance([]float64{3}) != 0 || Mean(nil) != 0 {
		t.Error("degenerate Mean/Variance wrong")
	}
}

func TestL1Distance(t *testing.T) {
	if d := L1Distance([]float64{1, 2}, []float64{3, 0}); d != 4 {
		t.Errorf("L1 = %v", d)
	}
}
