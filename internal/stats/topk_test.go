package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// refTopK is the original stable-full-sort implementation TopK's heap
// selection must match exactly (descending values, ties by lower index).
func refTopK(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	if k < 0 {
		k = 0
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx[:k]
}

// TestTopKHeapMatchesStableSort pins the bounded-heap selection against
// the stable full sort on tie-heavy random inputs.
func TestTopKHeapMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			// Small integer values force many exact ties.
			xs[i] = float64(rng.Intn(8))
		}
		for _, k := range []int{0, 1, 3, 10, n / 2, n, n + 7, -2} {
			got := TopK(xs, k)
			want := refTopK(xs, k)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: %d results, want %d", n, k, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("n=%d k=%d rank %d: index %d, want %d (ties break by lower index)",
						n, k, j, got[j], want[j])
				}
			}
		}
	}
}
