// Package kmeans implements Lloyd's k-means with k-means++ seeding plus
// a spherical (cosine-distance) variant. It is the shared clustering
// backend for spectral clustering, the SimRank-feature baseline, and
// RankClus's posterior-space cluster adjustment.
package kmeans

import (
	"math"

	"hinet/internal/stats"
)

// Options configures a clustering run.
type Options struct {
	MaxIter   int  // default 100
	Restarts  int  // independent k-means++ restarts, best inertia wins; default 4
	Spherical bool // cosine distance on L2-normalized points instead of Euclidean
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.Restarts == 0 {
		o.Restarts = 4
	}
	return o
}

// Result is a clustering of n points into k clusters.
type Result struct {
	Assign  []int       // cluster of each point
	Centers [][]float64 // k × dim
	Inertia float64     // total within-cluster squared distance
}

// Cluster partitions points (n × dim) into k clusters.
func Cluster(rng *stats.RNG, points [][]float64, k int, opt Options) Result {
	opt = opt.withDefaults()
	n := len(points)
	if n == 0 || k <= 0 {
		return Result{}
	}
	if k > n {
		k = n
	}
	pts := points
	if opt.Spherical {
		pts = normalizeRows(points)
	}
	best := Result{Inertia: math.Inf(1)}
	for r := 0; r < opt.Restarts; r++ {
		res := lloyd(rng, pts, k, opt)
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	return best
}

func lloyd(rng *stats.RNG, pts [][]float64, k int, opt Options) Result {
	n := len(pts)
	centers := seedPlusPlus(rng, pts, k)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for it := 0; it < opt.MaxIter; it++ {
		changed := 0
		for i, p := range pts {
			bi, bd := 0, math.Inf(1)
			for c := range centers {
				d := sqDist(p, centers[c])
				if d < bd {
					bd, bi = d, c
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed++
			}
		}
		// recompute centers
		counts := make([]int, k)
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
		}
		for i, p := range pts {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				centers[c][j] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// re-seed empty cluster at the point farthest from its center
				far, fd := 0, -1.0
				for i, p := range pts {
					if d := sqDist(p, centers[assign[i]]); d > fd {
						fd, far = d, i
					}
				}
				copy(centers[c], pts[far])
				continue
			}
			for j := range centers[c] {
				centers[c][j] /= float64(counts[c])
			}
			if opt.Spherical {
				normalizeInPlace(centers[c])
			}
		}
		if changed == 0 {
			break
		}
	}
	inertia := 0.0
	for i, p := range pts {
		inertia += sqDist(p, centers[assign[i]])
	}
	return Result{Assign: assign, Centers: centers, Inertia: inertia}
}

// seedPlusPlus picks k initial centers with D² weighting.
func seedPlusPlus(rng *stats.RNG, pts [][]float64, k int) [][]float64 {
	n := len(pts)
	centers := make([][]float64, 0, k)
	first := rng.Intn(n)
	centers = append(centers, clone(pts[first]))
	d2 := make([]float64, n)
	for i, p := range pts {
		d2[i] = sqDist(p, centers[0])
	}
	for len(centers) < k {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(n)
		} else {
			u := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= u {
					pick = i
					break
				}
			}
		}
		centers = append(centers, clone(pts[pick]))
		for i, p := range pts {
			if d := sqDist(p, centers[len(centers)-1]); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clone(p []float64) []float64 { return append([]float64(nil), p...) }

func normalizeRows(pts [][]float64) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = clone(p)
		normalizeInPlace(out[i])
	}
	return out
}

func normalizeInPlace(p []float64) {
	n := 0.0
	for _, v := range p {
		n += v * v
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range p {
		p[i] /= n
	}
}
