package kmeans

import (
	"math"
	"testing"

	"hinet/internal/eval"
	"hinet/internal/stats"
)

// blobs generates three well-separated Gaussian blobs.
func blobs(rng *stats.RNG, per int) ([][]float64, []int) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	var pts [][]float64
	var labels []int
	for c, ctr := range centers {
		for i := 0; i < per; i++ {
			pts = append(pts, []float64{
				ctr[0] + rng.NormFloat64()*0.5,
				ctr[1] + rng.NormFloat64()*0.5,
			})
			labels = append(labels, c)
		}
	}
	return pts, labels
}

func TestClusterSeparatedBlobs(t *testing.T) {
	rng := stats.NewRNG(1)
	pts, truth := blobs(rng, 50)
	res := Cluster(rng, pts, 3, Options{})
	if acc := eval.Accuracy(truth, res.Assign); acc < 0.99 {
		t.Errorf("accuracy = %v on trivial blobs", acc)
	}
	if len(res.Centers) != 3 {
		t.Errorf("centers = %d", len(res.Centers))
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	rng := stats.NewRNG(2)
	pts, _ := blobs(rng, 40)
	r1 := Cluster(stats.NewRNG(3), pts, 1, Options{})
	r3 := Cluster(stats.NewRNG(3), pts, 3, Options{})
	if r3.Inertia >= r1.Inertia {
		t.Errorf("inertia should drop: k=1 %v, k=3 %v", r1.Inertia, r3.Inertia)
	}
}

func TestKGreaterThanN(t *testing.T) {
	rng := stats.NewRNG(4)
	pts := [][]float64{{0, 0}, {1, 1}}
	res := Cluster(rng, pts, 10, Options{})
	if len(res.Assign) != 2 {
		t.Fatal("assignment length wrong")
	}
	if res.Assign[0] == res.Assign[1] {
		t.Error("two distinct points with k>=n should split")
	}
}

func TestEmptyInput(t *testing.T) {
	rng := stats.NewRNG(5)
	res := Cluster(rng, nil, 3, Options{})
	if res.Assign != nil {
		t.Error("empty input should give empty result")
	}
}

func TestSphericalClusteringDirections(t *testing.T) {
	rng := stats.NewRNG(6)
	// two direction groups with very different magnitudes
	var pts [][]float64
	var truth []int
	for i := 0; i < 40; i++ {
		scale := 1 + rng.Float64()*100
		pts = append(pts, []float64{scale * (1 + rng.NormFloat64()*0.05), scale * rng.NormFloat64() * 0.05})
		truth = append(truth, 0)
	}
	for i := 0; i < 40; i++ {
		scale := 1 + rng.Float64()*100
		pts = append(pts, []float64{scale * rng.NormFloat64() * 0.05, scale * (1 + rng.NormFloat64()*0.05)})
		truth = append(truth, 1)
	}
	res := Cluster(rng, pts, 2, Options{Spherical: true})
	if acc := eval.Accuracy(truth, res.Assign); acc < 0.95 {
		t.Errorf("spherical accuracy = %v", acc)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	pts, _ := blobs(stats.NewRNG(7), 30)
	a := Cluster(stats.NewRNG(42), pts, 3, Options{})
	b := Cluster(stats.NewRNG(42), pts, 3, Options{})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same-seed k-means differs")
		}
	}
}

func TestAssignmentsMatchNearestCenter(t *testing.T) {
	rng := stats.NewRNG(8)
	pts, _ := blobs(rng, 30)
	res := Cluster(rng, pts, 3, Options{})
	for i, p := range pts {
		bi, bd := -1, math.Inf(1)
		for c := range res.Centers {
			d := sqDist(p, res.Centers[c])
			if d < bd {
				bd, bi = d, c
			}
		}
		if bi != res.Assign[i] {
			t.Fatalf("point %d not assigned to nearest center", i)
		}
	}
}

func TestIdenticalPointsSingleCluster(t *testing.T) {
	rng := stats.NewRNG(9)
	pts := make([][]float64, 10)
	for i := range pts {
		pts[i] = []float64{3, 3}
	}
	res := Cluster(rng, pts, 2, Options{})
	if res.Inertia != 0 {
		t.Errorf("identical points inertia = %v", res.Inertia)
	}
}
