package metapath

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"hinet/internal/sparse"
)

// mapSource is a hermetic Source over explicit matrices. Relation
// returns the stored orientation or its exact transpose, matching the
// contract hin.Network provides.
type mapSource struct {
	types  []string
	counts map[string]int
	rels   map[[2]string]*sparse.Matrix
}

func (s *mapSource) Types() []string       { return s.types }
func (s *mapSource) HasType(t string) bool { _, ok := s.counts[t]; return ok }
func (s *mapSource) Count(t string) int    { return s.counts[t] }

func (s *mapSource) HasRelation(a, b string) bool {
	_, ok := s.rels[[2]string{a, b}]
	if !ok {
		_, ok = s.rels[[2]string{b, a}]
	}
	return ok
}

func (s *mapSource) Relation(a, b string) *sparse.Matrix {
	if m, ok := s.rels[[2]string{a, b}]; ok {
		return m
	}
	if m, ok := s.rels[[2]string{b, a}]; ok {
		return m.Transpose()
	}
	return sparse.NewFromCoords(s.counts[a], s.counts[b], nil)
}

func (s *mapSource) addRel(rng *rand.Rand, a, b string, links int) {
	var entries []sparse.Coord
	for i := 0; i < links; i++ {
		entries = append(entries, sparse.Coord{
			Row: rng.Intn(s.counts[a]),
			Col: rng.Intn(s.counts[b]),
			Val: float64(1 + rng.Intn(3)), // integer weights ⇒ exact products
		})
	}
	s.rels[[2]string{a, b}] = sparse.NewFromCoords(s.counts[a], s.counts[b], entries)
}

// randomSource builds a random star-ish schema: k types, every type
// linked to type 0, plus a few extra random edges.
func randomSource(rng *rand.Rand) *mapSource {
	k := 3 + rng.Intn(3)
	s := &mapSource{counts: make(map[string]int), rels: make(map[[2]string]*sparse.Matrix)}
	for i := 0; i < k; i++ {
		t := fmt.Sprintf("t%d", i)
		s.types = append(s.types, t)
		s.counts[t] = 3 + rng.Intn(10)
	}
	for i := 1; i < k; i++ {
		s.addRel(rng, s.types[0], s.types[i], 5+rng.Intn(20))
	}
	for e := 0; e < rng.Intn(3); e++ {
		a, b := s.types[rng.Intn(k)], s.types[rng.Intn(k)]
		if a != b && !s.HasRelation(a, b) {
			s.addRel(rng, a, b, 5+rng.Intn(15))
		}
	}
	return s
}

// randomWalkPath walks the schema graph for a random path of the given
// relation count.
func randomWalkPath(rng *rand.Rand, s *mapSource, rels int) []string {
	path := []string{s.types[rng.Intn(len(s.types))]}
	for len(path) <= rels {
		var nbrs []string
		for _, t := range s.types {
			if t != path[len(path)-1] && s.HasRelation(path[len(path)-1], t) {
				nbrs = append(nbrs, t)
			}
		}
		if len(nbrs) == 0 {
			path[0] = s.types[rng.Intn(len(s.types))]
			path = path[:1]
			continue
		}
		path = append(path, nbrs[rng.Intn(len(nbrs))])
	}
	return path
}

// naiveCommute is the pre-engine evaluation: strict left-to-right.
func naiveCommute(s Source, path []string) *sparse.Matrix {
	m := s.Relation(path[0], path[1])
	for i := 1; i+1 < len(path); i++ {
		m = m.Mul(s.Relation(path[i], path[i+1]))
	}
	return m
}

// sameMatrix asserts exact equality (the random sources use integer
// weights, so planned and Gram-factored products must agree bitwise
// with the naive order).
func sameMatrix(t *testing.T, label string, got, want *sparse.Matrix) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	if got.NNZ() != want.NNZ() {
		t.Fatalf("%s: nnz %d, want %d", label, got.NNZ(), want.NNZ())
	}
	for r := 0; r < got.Rows(); r++ {
		for c := 0; c < got.Cols(); c++ {
			if got.At(r, c) != want.At(r, c) {
				t.Fatalf("%s: (%d,%d) = %v, want %v", label, r, c, got.At(r, c), want.At(r, c))
			}
		}
	}
}

// TestCommuteMatchesNaiveRandomized is the engine's core equivalence
// property: across random schemas, seeds and walks — including the
// symmetric paths that trigger Gram factorization — the planned product
// equals the naive left-to-right product exactly.
func TestCommuteMatchesNaiveRandomized(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := randomSource(rng)
		e := New(src)
		for trial := 0; trial < 6; trial++ {
			path := randomWalkPath(rng, src, 1+rng.Intn(4))
			got, err := e.Commute(path)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, path, err)
			}
			sameMatrix(t, fmt.Sprintf("seed %d path %v", seed, path), got, naiveCommute(src, path))

			// Mirror the walk into a symmetric path: exercises the Gram
			// kernel and half-path caching.
			sym := append([]string(nil), path...)
			for i := len(path) - 2; i >= 0; i-- {
				sym = append(sym, path[i])
			}
			got, err = e.Commute(sym)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, sym, err)
			}
			sameMatrix(t, fmt.Sprintf("seed %d sym %v", seed, sym), got, naiveCommute(src, sym))

			// And the reverse orientation (served by transpose).
			rev := make([]string, len(path))
			for i, ty := range path {
				rev[len(path)-1-i] = ty
			}
			got, err = e.Commute(rev)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, rev, err)
			}
			sameMatrix(t, fmt.Sprintf("seed %d rev %v", seed, rev), got, naiveCommute(src, rev))
		}
		if st := e.Stats(); st.Grams == 0 {
			t.Fatalf("seed %d: no Gram factorizations exercised", seed)
		}
	}
}

// fixedSource is the tiny A-P-V schema used by the focused tests.
func fixedSource() *mapSource {
	rng := rand.New(rand.NewSource(99))
	s := &mapSource{counts: map[string]int{"author": 6, "paper": 9, "venue": 3}, rels: make(map[[2]string]*sparse.Matrix)}
	s.types = []string{"author", "paper", "venue"}
	s.addRel(rng, "paper", "author", 18)
	s.addRel(rng, "paper", "venue", 9)
	return s
}

func TestValidateErrors(t *testing.T) {
	e := New(fixedSource())
	for _, tc := range []struct {
		path []string
		frag string
	}{
		{[]string{"author"}, "at least two"},
		{[]string{"author", "nosuch"}, "unknown type"},
		{[]string{"author", "venue"}, "no author-venue relation"},
	} {
		err := e.Validate(tc.path)
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("Validate(%v) = %v, want %q", tc.path, err, tc.frag)
		}
		if _, err := e.Commute(tc.path); err == nil {
			t.Fatalf("Commute(%v) accepted invalid path", tc.path)
		}
	}
	if err := e.Validate([]string{"author", "paper", "venue"}); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
}

func TestParsePath(t *testing.T) {
	e := New(fixedSource())
	for _, tc := range []struct {
		spec string
		want string
		errf string
	}{
		{spec: "A-P-A", want: "author-paper-author"},
		{spec: "a-P-v", want: "author-paper-venue"},
		{spec: "author-paper-Venue", want: "author-paper-venue"},
		{spec: "AUTH-P-A", want: "author-paper-author"},
		{spec: "x-P-A", errf: "unknown type"},
		{spec: "A--A", errf: "empty type token"},
		{spec: "A-V", errf: "no author-venue relation"},
		{spec: strings.Repeat("A-P-", 10) + "A", errf: "max"},
	} {
		got, err := e.ParsePath(tc.spec)
		if tc.errf != "" {
			if err == nil || !strings.Contains(err.Error(), tc.errf) {
				t.Fatalf("ParsePath(%q) = %v, %v; want error containing %q", tc.spec, got, err, tc.errf)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParsePath(%q): %v", tc.spec, err)
		}
		if join(got) != tc.want {
			t.Fatalf("ParsePath(%q) = %q, want %q", tc.spec, join(got), tc.want)
		}
	}
}

func TestParseAmbiguousPrefix(t *testing.T) {
	s := fixedSource()
	s.types = append(s.types, "paperback")
	s.counts["paperback"] = 2
	e := New(s)
	if _, err := e.ParsePath("pa-author-pa"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous prefix accepted: %v", err)
	}
	// Exact name still wins over being a prefix of another type.
	if got, err := e.ParsePath("paper-author-paper"); err != nil || got[0] != "paper" {
		t.Fatalf("exact match lost: %v %v", got, err)
	}
}

// TestCacheReuseAndCanonicalization drives the materialization cache:
// repeats hit, reverses share one materialization via transpose, and
// sub-paths of a symmetric product are reused.
func TestCacheReuseAndCanonicalization(t *testing.T) {
	src := fixedSource()
	e := New(src)
	apv := []string{"author", "paper", "venue"}
	vpa := []string{"venue", "paper", "author"}

	m1, _ := e.Commute(apv)
	st := e.Stats()
	if st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("cold stats: %+v", st)
	}
	misses := st.Misses
	m2, _ := e.Commute(apv)
	if m2 != m1 {
		t.Fatal("repeat Commute did not return the cached matrix")
	}
	if st = e.Stats(); st.Misses != misses {
		t.Fatalf("repeat missed the cache: %+v", st)
	}

	// Reverse orientation: derived by transpose, not recomputed.
	products := st.Products
	grams := st.Grams
	mr, _ := e.Commute(vpa)
	st = e.Stats()
	if st.Products != products || st.Grams != grams {
		t.Fatalf("reverse recomputed a product: %+v", st)
	}
	if st.Transposes == 0 {
		t.Fatal("reverse did not use the transpose path")
	}
	sameMatrix(t, "reverse", mr, m1.Transpose())

	// Symmetric APVPA: its half is the cached APV — no new leaf misses
	// for the half, one Gram product.
	if _, err := e.Commute([]string{"author", "paper", "venue", "paper", "author"}); err != nil {
		t.Fatal(err)
	}
	if st = e.Stats(); st.Grams != grams+1 {
		t.Fatalf("symmetric path did not Gram-factor: %+v", st)
	}
}

// TestSyncEpochInvalidates pins the epoch behavior: same epoch keeps
// the cache, a moved epoch drops it.
func TestSyncEpochInvalidates(t *testing.T) {
	e := New(fixedSource())
	if _, err := e.Commute([]string{"author", "paper", "venue"}); err != nil {
		t.Fatal(err)
	}
	e.SyncEpoch(0) // unchanged epoch: cache survives
	if st := e.Stats(); st.Entries == 0 {
		t.Fatal("SyncEpoch(same) dropped the cache")
	}
	e.SyncEpoch(7)
	st := e.Stats()
	if st.Entries != 0 || st.Epoch != 7 {
		t.Fatalf("SyncEpoch(new) kept the cache: %+v", st)
	}
}

// TestConcurrentCommuteSingleflight hammers one path from many
// goroutines: everyone must see the same matrix and the engine must
// compute it once (run under -race in CI).
func TestConcurrentCommuteSingleflight(t *testing.T) {
	src := fixedSource()
	e := New(src)
	path := []string{"author", "paper", "venue", "paper", "author"}
	const n = 16
	results := make([]*sparse.Matrix, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := e.Commute(path)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers saw different materializations")
		}
	}
	if st := e.Stats(); st.Grams != 1 {
		t.Fatalf("expected exactly one Gram product, got %+v", st)
	}
}

// TestPlan checks the planner's visible artifacts on the asymmetric
// APVPA-style chain: Gram factorization flagged, and the chosen order
// estimated no worse than left-to-right.
func TestPlan(t *testing.T) {
	e := New(fixedSource())
	p, err := e.Plan([]string{"author", "paper", "venue", "paper", "author"})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Gram {
		t.Fatalf("APVPA not Gram-factored: %+v", p)
	}
	if !strings.HasPrefix(p.Order, "gram(") {
		t.Fatalf("Order = %q", p.Order)
	}
	if p.EstFlops > p.NaiveFlops {
		t.Fatalf("planned estimate %v worse than naive %v", p.EstFlops, p.NaiveFlops)
	}
	if p.String() == "" {
		t.Fatal("empty plan string")
	}
	if _, err := e.Plan([]string{"author"}); err == nil {
		t.Fatal("Plan accepted invalid path")
	}

	// A homogeneous-hop palindrome must not Gram-factor (X-X relations
	// need not be symmetric), but must still evaluate correctly.
	s2 := fixedSource()
	rng := rand.New(rand.NewSource(5))
	s2.addRel(rng, "paper", "paper", 10)
	e2 := New(s2)
	pp := []string{"author", "paper", "paper", "author"}
	p2, err := e2.Plan(pp)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Gram {
		t.Fatal("homogeneous-hop palindrome Gram-factored")
	}
	got, err := e2.Commute(pp)
	if err != nil {
		t.Fatal(err)
	}
	sameMatrix(t, "APPA", got, naiveCommute(s2, pp))
}
