// Package metapath is the meta-path compilation and materialization
// engine: it turns meta-path specs (strings like "A-P-V-P-A" or typed
// sequences) into commuting matrices the cheap way.
//
// Meta-paths are the paper's central query primitive — PathSim,
// projections and the bipartite/star views all reduce to products of
// relation matrices along a type sequence — and computing those
// products is the scalability bottleneck of the whole family (Shi et
// al.'s HIN survey). The engine attacks the cost three ways:
//
//   - a cost-based planner (plan.go) picks the sparse matrix-chain
//     association order by dynamic programming over nnz/flop estimates,
//     instead of multiplying strictly left-to-right;
//   - symmetric paths are factored through a half-path Gram product
//     (M = H·Hᵀ via the fused sparse.Matrix.Gram kernel), computing
//     half the path and half the final product's multiply work;
//   - an epoch-aware materialization cache canonicalizes sub-paths (a
//     path and its reverse share one entry, reached by a cheap
//     transpose) and reuses every intermediate across queries.
//
// The engine sees the network through the Source interface, so this
// package depends only on internal/sparse; internal/hin adapts its
// Network into a Source and owns one engine per network (see
// Network.PathEngine), which is how every CommutingMatrix call site in
// the repository shares one cache.
package metapath

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hinet/internal/sparse"
)

// Source is the network view the engine plans against. Type names are
// plain strings so implementations outside internal/hin (tests,
// adapters) stay trivial.
type Source interface {
	// Types lists the object type names in registration order.
	Types() []string
	// HasType reports whether t is a registered type.
	HasType(t string) bool
	// Count returns the number of objects of type t.
	Count(t string) int
	// HasRelation reports whether any links exist between the two
	// types, in either orientation.
	HasRelation(a, b string) bool
	// Relation returns the weighted a×b adjacency matrix. The engine
	// relies on Relation(a, b) being the exact transpose of
	// Relation(b, a) whenever a != b.
	Relation(a, b string) *sparse.Matrix
}

// maxEntries bounds the materialization cache. Beyond it, new paths are
// still answered but their matrices are not retained, so a server fed
// adversarial path streams cannot grow memory without bound.
const maxEntries = 256

// entry is one cached materialization. ready is closed once m is set,
// so concurrent askers of the same path share a single computation
// (singleflight) instead of racing duplicate products. path is the
// type sequence the entry was materialized for — selective
// invalidation (Invalidate) matches against it.
type entry struct {
	ready chan struct{}
	path  []string
	m     *sparse.Matrix
}

// closedReady is the pre-closed channel entries adopted by CloneFor
// share (their matrices are already materialized).
var closedReady = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Epoch       int64 // cache generation (the owning network's version)
	Entries     int   // materialized matrices currently cached
	Hits        uint64
	Misses      uint64
	Products    uint64        // sparse products issued (planned splits)
	Grams       uint64        // half-path Gram factorizations issued
	Transposes  uint64        // reversed-orientation answers derived by transpose
	ProductTime time.Duration // cumulative wall time inside Mul kernels
	GramTime    time.Duration // cumulative wall time inside Gram kernels
}

// Engine compiles, plans, materializes and caches meta-path commuting
// matrices over one Source. All methods are safe for concurrent use;
// computations for distinct paths proceed in parallel, and concurrent
// requests for the same (sub-)path share one computation.
type Engine struct {
	src Source

	mu      sync.Mutex
	epoch   int64
	entries map[string]*entry

	hits       atomic.Uint64
	misses     atomic.Uint64
	products   atomic.Uint64
	grams      atomic.Uint64
	transposes atomic.Uint64

	// Cumulative nanoseconds spent inside the product kernels — the
	// "where does materialization time go" split the serving tier
	// exports (planned splits vs. Gram factorizations).
	productNS atomic.Int64
	gramNS    atomic.Int64
}

// New returns an engine over src with an empty cache at epoch 0.
func New(src Source) *Engine {
	return &Engine{src: src, entries: make(map[string]*entry)}
}

// SyncEpoch invalidates the cache if v differs from the engine's
// current epoch (the owner calls this with its mutation counter, so a
// network edit after materialization can never serve stale products).
// Owners that know *which* relations a mutation touched should call
// Invalidate instead — it moves the epoch while keeping every entry
// the mutation cannot have affected.
func (e *Engine) SyncEpoch(v int64) {
	e.mu.Lock()
	if v != e.epoch {
		e.epoch = v
		e.entries = make(map[string]*entry)
	}
	e.mu.Unlock()
}

// Invalidate moves the cache to epoch v, dropping only the entries
// whose path matches drop. This is the selective form of SyncEpoch the
// incremental-ingestion path uses: a mutation confined to one relation
// (or one grown type) invalidates exactly the sub-paths that read it,
// and every other cached materialization survives the epoch move.
// In-flight computations that match are detached from the cache; their
// waiters still receive the (pre-mutation) result, which is only safe
// because owners never mutate concurrently with queries.
func (e *Engine) Invalidate(v int64, drop func(path []string) bool) {
	e.mu.Lock()
	e.epoch = v
	for k, ent := range e.entries {
		if drop(ent.path) {
			delete(e.entries, k)
		}
	}
	e.mu.Unlock()
}

// CloneFor returns a new engine over src at epoch v, seeded with every
// *completed* cached materialization of the receiver (in-flight
// computations are skipped, not awaited). Matrices are shared, not
// copied — they are immutable — so cloning is O(entries). This is how
// a copy-on-write network clone (hin.Network.Clone) carries the warm
// materialization cache into its new generation; counters start at
// zero.
func (e *Engine) CloneFor(src Source, v int64) *Engine {
	ne := New(src)
	ne.epoch = v
	e.mu.Lock()
	for k, ent := range e.entries {
		select {
		case <-ent.ready:
			if ent.m != nil {
				ne.entries[k] = &entry{ready: closedReady, path: ent.path, m: ent.m}
			}
		default:
		}
	}
	e.mu.Unlock()
	return ne
}

// Reset drops every cached materialization (the benchmarks use this to
// time cold planned evaluations).
func (e *Engine) Reset() {
	e.mu.Lock()
	e.entries = make(map[string]*entry)
	e.mu.Unlock()
}

// Stats returns the current counter values.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	epoch, entries := e.epoch, len(e.entries)
	e.mu.Unlock()
	return Stats{
		Epoch:       epoch,
		Entries:     entries,
		Hits:        e.hits.Load(),
		Misses:      e.misses.Load(),
		Products:    e.products.Load(),
		Grams:       e.grams.Load(),
		Transposes:  e.transposes.Load(),
		ProductTime: time.Duration(e.productNS.Load()),
		GramTime:    time.Duration(e.gramNS.Load()),
	}
}

// Validate checks that path is a well-formed meta-path over the source
// schema: at least two types, every type registered, and every adjacent
// pair connected by a relation. It returns nil or a descriptive error —
// never panics — making it the boundary that keeps malformed client
// paths out of the kernels.
func (e *Engine) Validate(path []string) error {
	if len(path) < 2 {
		return fmt.Errorf("metapath: path %q needs at least two types", join(path))
	}
	for _, t := range path {
		if !e.src.HasType(t) {
			return fmt.Errorf("metapath: unknown type %q (have %s)", t, strings.Join(e.src.Types(), ", "))
		}
	}
	for i := 0; i+1 < len(path); i++ {
		if !e.src.HasRelation(path[i], path[i+1]) {
			return fmt.Errorf("metapath: schema has no %s-%s relation", path[i], path[i+1])
		}
	}
	return nil
}

// Commute returns the commuting matrix of the meta-path: the product of
// relation matrices along it, evaluated in planned order with Gram
// factorization and sub-path reuse. The result must not be mutated (it
// may be shared with other callers through the cache — sparse matrices
// are immutable by convention).
func (e *Engine) Commute(path []string) (*sparse.Matrix, error) {
	return e.CommuteCtx(context.Background(), path)
}

// CommuteCtx is Commute with cooperative cancellation threaded through
// the whole materialization chain: the planner recursion, the cached
// singleflight waits, and the SpGEMM kernels themselves (MulCtx /
// GramCtx row-block checkpoints). On cancellation it returns ctx.Err();
// a cancelled in-flight computation withdraws its cache entry, so
// waiters with live contexts simply retry and recompute — a dead
// caller can never poison the cache. With a non-cancelable ctx it is
// exactly Commute.
func (e *Engine) CommuteCtx(ctx context.Context, path []string) (*sparse.Matrix, error) {
	if err := e.Validate(path); err != nil {
		return nil, err
	}
	return e.matrix(ctx, path)
}

// matrix materializes a validated path through the cache.
func (e *Engine) matrix(ctx context.Context, path []string) (*sparse.Matrix, error) {
	canon, rev := canonicalize(path)
	if !rev {
		return e.cached(ctx, path, e.compute)
	}
	// Reversed orientation: materialize the canonical orientation, then
	// derive this one by a cheap O(nnz) transpose — also cached, so
	// repeated reverse queries are pure lookups.
	return e.cached(ctx, path, func(ctx context.Context, _ []string) (*sparse.Matrix, error) {
		m, err := e.cached(ctx, canon, e.compute)
		if err != nil {
			return nil, err
		}
		e.transposes.Add(1)
		return m.Transpose(), nil
	})
}

// cached runs compute under a singleflight entry for path. When the
// cache is full, the value is computed but not retained. A waiter whose
// ctx dies while another goroutine computes abandons the wait (the
// computation itself keeps running for the live callers); a computing
// goroutine that fails — panic or cancellation — withdraws the entry so
// later callers retry.
func (e *Engine) cached(ctx context.Context, path []string, compute func(context.Context, []string) (*sparse.Matrix, error)) (*sparse.Matrix, error) {
	key := join(path)
	e.mu.Lock()
	if ent, ok := e.entries[key]; ok {
		e.mu.Unlock()
		if done := ctx.Done(); done != nil {
			select {
			case <-ent.ready:
			case <-done:
				return nil, ctx.Err()
			}
		} else {
			<-ent.ready
		}
		if ent.m == nil {
			// The computing goroutine panicked (or was cancelled) and
			// withdrew the entry; retry against the refreshed map.
			return e.cached(ctx, path, compute)
		}
		e.hits.Add(1)
		return ent.m, nil
	}
	e.misses.Add(1)
	if len(e.entries) >= maxEntries {
		e.mu.Unlock()
		return compute(ctx, path)
	}
	ent := &entry{ready: make(chan struct{}), path: path}
	e.entries[key] = ent
	e.mu.Unlock()
	defer func() {
		if ent.m == nil {
			// compute panicked or was cancelled: drop the entry so later
			// calls retry, and release waiters (they observe the nil and
			// recompute). The pointer check keeps a concurrent Invalidate
			// + re-register under the same key from losing the fresh
			// entry.
			e.mu.Lock()
			if e.entries[key] == ent {
				delete(e.entries, key)
			}
			e.mu.Unlock()
		}
		close(ent.ready)
	}()
	m, err := compute(ctx, path)
	if err != nil {
		return nil, err
	}
	ent.m = m
	return m, nil
}

// compute evaluates a validated path with the planner. Sub-chains
// recurse through matrix(), so every intermediate lands in the cache
// under its own canonical key and is shared across top-level paths
// (e.g. A-P-V-P-A's half A-P-V also answers V-P-A requests).
func (e *Engine) compute(ctx context.Context, path []string) (*sparse.Matrix, error) {
	rels := len(path) - 1
	if rels == 1 {
		return e.src.Relation(path[0], path[1]), nil
	}
	if gramEligible(path) {
		h, err := e.matrix(ctx, path[:rels/2+1:rels/2+1])
		if err != nil {
			return nil, err
		}
		e.grams.Add(1)
		start := time.Now()
		m, err := h.GramCtx(ctx)
		e.gramNS.Add(int64(time.Since(start)))
		return m, err
	}
	k, err := e.bestSplit(ctx, path)
	if err != nil {
		return nil, err
	}
	left, err := e.matrix(ctx, path[:k+2:k+2])
	if err != nil {
		return nil, err
	}
	right, err := e.matrix(ctx, path[k+1:])
	if err != nil {
		return nil, err
	}
	e.products.Add(1)
	start := time.Now()
	m, err := left.MulCtx(ctx, right)
	e.productNS.Add(int64(time.Since(start)))
	return m, err
}

// CommuteColsCtx materializes columns [lo, hi) of the commuting matrix
// together with its full diagonal — the shard-local build of the
// sharded PathSim tier (internal/cluster), where each shard owns a
// candidate range but must score queries from the whole endpoint type.
// For Gram-eligible paths it never materializes the full commuting
// matrix: it multiplies the cached half-path product H against the
// transpose of its own row slice (columns [lo, hi) of H·Hᵀ) and
// derives the diagonal from per-row norms. Both are bitwise-identical
// to slicing a full CommuteCtx product: every output entry accumulates
// the same k-terms in the same ascending order in either kernel, and
// IEEE multiplication commutes exactly (see the sparse slice tests).
// Non-Gram paths fall back to slicing the full (cached) product.
func (e *Engine) CommuteColsCtx(ctx context.Context, path []string, lo, hi int) (cols *sparse.Matrix, diag []float64, err error) {
	if err := e.Validate(path); err != nil {
		return nil, nil, err
	}
	if dim := e.src.Count(path[len(path)-1]); lo < 0 || hi < lo || hi > dim {
		return nil, nil, fmt.Errorf("metapath: column range [%d,%d) out of [0,%d)", lo, hi, dim)
	}
	rels := len(path) - 1
	if gramEligible(path) {
		h, err := e.matrix(ctx, path[:rels/2+1:rels/2+1])
		if err != nil {
			return nil, nil, err
		}
		e.products.Add(1)
		start := time.Now()
		cols, err = h.MulCtx(ctx, h.RowSlice(lo, hi).Transpose())
		e.productNS.Add(int64(time.Since(start)))
		if err != nil {
			return nil, nil, err
		}
		return cols, h.GramDiagonal(), nil
	}
	m, err := e.matrix(ctx, path)
	if err != nil {
		return nil, nil, err
	}
	return m.ColSlice(lo, hi), m.Diagonal(), nil
}

// bestSplit returns the top-level split point (relations 0..k and
// k+1..rels-1) chosen by the chain planner.
func (e *Engine) bestSplit(ctx context.Context, path []string) (int, error) {
	dims, nnz, err := e.leafStats(ctx, path)
	if err != nil {
		return 0, err
	}
	dp := planChain(dims, nnz)
	return dp.split[0][len(nnz)-1], nil
}

// leafStats materializes (through the cache) the relation matrices
// along the path and returns the chain dimensions and per-leaf nonzero
// counts the planner costs against.
func (e *Engine) leafStats(ctx context.Context, path []string) (dims []int, nnz []float64, err error) {
	rels := len(path) - 1
	dims = make([]int, rels+1)
	nnz = make([]float64, rels)
	for i, t := range path {
		dims[i] = e.src.Count(t)
	}
	for i := 0; i < rels; i++ {
		leaf, err := e.matrix(ctx, path[i:i+2:i+2])
		if err != nil {
			return nil, nil, err
		}
		nnz[i] = float64(leaf.NNZ())
	}
	return dims, nnz, nil
}

// gramEligible reports whether the path can be evaluated as H·Hᵀ of its
// half-path product: a palindrome with an odd number of types (so the
// relation count is even), and no adjacent repeated type — the Gram
// identity needs every mirrored relation to be the exact transpose of
// its partner, which Source.Relation guarantees only for distinct type
// pairs (a homogeneous X-X relation need not be symmetric).
func gramEligible(path []string) bool {
	if len(path) < 3 || len(path)%2 == 0 {
		return false
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		if path[i] != path[j] {
			return false
		}
	}
	for i := 0; i+1 < len(path); i++ {
		if path[i] == path[i+1] {
			return false
		}
	}
	return true
}

// canonicalize returns the cache orientation of a path: of the path and
// its reverse, the lexicographically smaller key wins, so a path and
// its reverse share one materialization (the other is a transpose
// away). Paths with an adjacent repeated type are not canonicalized —
// reversal is only transpose-equivalent when every relation along the
// path joins two distinct types.
func canonicalize(path []string) (canon []string, reversed bool) {
	for i := 0; i+1 < len(path); i++ {
		if path[i] == path[i+1] {
			return path, false
		}
	}
	rev := make([]string, len(path))
	for i, t := range path {
		rev[len(path)-1-i] = t
	}
	if join(rev) < join(path) {
		return rev, true
	}
	return path, false
}

func join(path []string) string { return strings.Join(path, "-") }
