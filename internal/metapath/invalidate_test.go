package metapath

import (
	"math/rand"
	"slices"
	"testing"

	"hinet/internal/sparse"
)

// invalSource builds a small A-P-V schema with deterministic matrices.
func invalSource() *mapSource {
	rng := rand.New(rand.NewSource(3))
	s := &mapSource{
		types:  []string{"A", "P", "V"},
		counts: map[string]int{"A": 6, "P": 10, "V": 3},
		rels:   make(map[[2]string]*sparse.Matrix),
	}
	s.addRel(rng, "A", "P", 20)
	s.addRel(rng, "P", "V", 10)
	return s
}

func pathHasPair(path []string, a, b string) bool {
	for i := 0; i+1 < len(path); i++ {
		if (path[i] == a && path[i+1] == b) || (path[i] == b && path[i+1] == a) {
			return true
		}
	}
	return false
}

func TestInvalidateDropsOnlyMatchingPaths(t *testing.T) {
	src := invalSource()
	e := New(src)
	apa, err := e.Commute([]string{"A", "P", "A"})
	if err != nil {
		t.Fatal(err)
	}
	pvp, err := e.Commute([]string{"P", "V", "P"})
	if err != nil {
		t.Fatal(err)
	}

	// Invalidate everything that reads the P-V relation; A-P products
	// must survive the epoch move.
	e.Invalidate(5, func(path []string) bool { return pathHasPair(path, "P", "V") })
	if got := e.Stats().Epoch; got != 5 {
		t.Fatalf("epoch = %d, want 5", got)
	}

	hits0 := e.Stats().Hits
	again, _ := e.Commute([]string{"A", "P", "A"})
	if again != apa {
		t.Fatal("A-P-A should still be served from cache after a P-V invalidation")
	}
	if e.Stats().Hits == hits0 {
		t.Fatal("expected a cache hit for the surviving entry")
	}

	miss0 := e.Stats().Misses
	pvp2, _ := e.Commute([]string{"P", "V", "P"})
	if pvp2 == pvp {
		t.Fatal("P-V-P must be rematerialized after invalidation")
	}
	if e.Stats().Misses == miss0 {
		t.Fatal("expected a cache miss for the dropped entry")
	}

	// SyncEpoch with the post-invalidation epoch must not wipe the
	// survivors (this is the contract the HIN layer relies on).
	e.SyncEpoch(5)
	if again2, _ := e.Commute([]string{"A", "P", "A"}); again2 != apa {
		t.Fatal("SyncEpoch at the current epoch must keep surviving entries")
	}
}

func TestInvalidateByType(t *testing.T) {
	src := invalSource()
	e := New(src)
	if _, err := e.Commute([]string{"A", "P", "V", "P", "A"}); err != nil {
		t.Fatal(err)
	}
	entries0 := e.Stats().Entries
	if entries0 == 0 {
		t.Fatal("expected cached sub-paths")
	}
	// Dropping every path that mentions V keeps A-P (and A-P-A if
	// cached) but removes the APVPA chain pieces.
	e.Invalidate(2, func(path []string) bool { return slices.Contains(path, "V") })
	st := e.Stats()
	if st.Entries >= entries0 {
		t.Fatalf("entries should shrink: %d -> %d", entries0, st.Entries)
	}
	if st.Entries == 0 {
		t.Fatal("V-free sub-paths (A-P) should survive")
	}
}

func TestCloneForCarriesCompletedEntries(t *testing.T) {
	src := invalSource()
	e := New(src)
	apa, err := e.Commute([]string{"A", "P", "A"})
	if err != nil {
		t.Fatal(err)
	}

	clone := e.CloneFor(src, 9)
	if got := clone.Stats().Epoch; got != 9 {
		t.Fatalf("clone epoch = %d, want 9", got)
	}
	if clone.Stats().Entries != e.Stats().Entries {
		t.Fatalf("clone entries = %d, want %d", clone.Stats().Entries, e.Stats().Entries)
	}
	// The clone serves the shared immutable matrix without recomputing.
	got, err := clone.Commute([]string{"A", "P", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if got != apa {
		t.Fatal("clone should share the parent's materialized matrix")
	}
	if clone.Stats().Hits == 0 || clone.Stats().Products != 0 {
		t.Fatalf("clone stats: %+v (want pure cache hits)", clone.Stats())
	}
	// Invalidating the clone must not disturb the parent.
	clone.Invalidate(10, func([]string) bool { return true })
	if again, _ := e.Commute([]string{"A", "P", "A"}); again != apa {
		t.Fatal("parent cache must be unaffected by clone invalidation")
	}
}
