package metapath

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// TestCommuteCtxMatchesCommute: a live context changes nothing about
// the result.
func TestCommuteCtxMatchesCommute(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	src := randomSource(rng)
	path := randomWalkPath(rng, src, 3)
	want, err := New(src).Commute(path)
	if err != nil {
		t.Fatalf("Commute: %v", err)
	}
	got, err := New(src).CommuteCtx(context.Background(), path)
	if err != nil {
		t.Fatalf("CommuteCtx: %v", err)
	}
	sameMatrix(t, "CommuteCtx", got, want)
}

// TestCommuteCtxCancelledNotPoisoned: a cancelled materialization must
// surface ctx.Err() AND withdraw its cache entry, so the next caller
// computes fresh instead of waiting forever on (or receiving) a dead
// entry.
func TestCommuteCtxCancelledNotPoisoned(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := randomSource(rng)
	path := randomWalkPath(rng, src, 3)
	e := New(src)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.CommuteCtx(ctx, path); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled CommuteCtx err = %v, want context.Canceled", err)
	}

	// The failed attempt must not have cached anything: a fresh call
	// succeeds and matches the naive evaluation.
	got, err := e.CommuteCtx(context.Background(), path)
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	sameMatrix(t, "retry", got, naiveCommute(src, path))
}

// TestCommuteCtxWaiterCancel: a waiter blocked on another goroutine's
// in-flight materialization honors its own context, while the computing
// goroutine still finishes and caches the result.
func TestCommuteCtxWaiterCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	src := randomSource(rng)
	path := randomWalkPath(rng, src, 4)
	e := New(src)

	var wg sync.WaitGroup
	results := make([]error, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%2 == 1 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				cancel()
			}
			_, results[i] = e.CommuteCtx(ctx, path)
		}(i)
	}
	wg.Wait()
	for i, err := range results {
		if i%2 == 1 {
			// Cancelled callers may still have won the compute race (and
			// then completed: the pre-existing ParRange path ignores a
			// dead ctx only if it never polls) — but a returned error
			// must be the context's.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled caller %d: err = %v", i, err)
			}
		} else if err != nil {
			t.Errorf("live caller %d: err = %v", i, err)
		}
	}

	// Whatever the interleaving, the engine must end consistent: a
	// fresh call returns the correct matrix.
	got, err := e.CommuteCtx(context.Background(), path)
	if err != nil {
		t.Fatalf("final call: %v", err)
	}
	sameMatrix(t, "final", got, naiveCommute(src, path))
}
