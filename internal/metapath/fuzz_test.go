package metapath

import (
	"strings"
	"testing"
)

// FuzzParseMetaPath hardens the meta-path spec parser, which is fed
// directly from the `path=` query parameter on /v1/pathsim/topk: it
// must never panic, and accepted specs must resolve to schema types
// and re-parse to themselves (canonical fixed point).
func FuzzParseMetaPath(f *testing.F) {
	f.Add("A-P-A")
	f.Add("A-P-V-P-A")
	f.Add("author-paper-Venue")
	f.Add("a-P-v")
	f.Add("AUTH-P-A")
	f.Add("x-P-A")
	f.Add("A--A")
	f.Add("A-V")
	f.Add(strings.Repeat("A-P-", 10) + "A")
	f.Add("")
	f.Add("-")
	f.Add("päper-∆-päper")

	f.Fuzz(func(t *testing.T, spec string) {
		e := New(fixedSource())
		path, err := e.ParsePath(spec)
		if err != nil {
			return
		}
		if len(path) < 2 {
			t.Fatalf("ParsePath(%q) accepted a path of %d types", spec, len(path))
		}
		src := fixedSource()
		for _, typ := range path {
			if !src.HasType(typ) {
				t.Fatalf("ParsePath(%q) resolved to unknown type %q", spec, typ)
			}
		}
		// Canonical fixed point: the resolved form must parse to itself.
		again, err := e.ParsePath(strings.Join(path, "-"))
		if err != nil {
			t.Fatalf("canonical form %v of %q rejected: %v", path, spec, err)
		}
		if strings.Join(again, "-") != strings.Join(path, "-") {
			t.Fatalf("canonicalization unstable: %v -> %v", path, again)
		}
	})
}
