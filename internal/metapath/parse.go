// Parsing meta-path specs. A spec is dash-separated type tokens
// ("A-P-V-P-A", "author-paper-author", "a-P-Venue-p-A"); each token
// resolves against the source's registered types by exact match,
// case-insensitive match, or unique case-insensitive prefix — so the
// single-letter shorthand of the paper's figures works whenever it is
// unambiguous, and ambiguity is an error rather than a guess.

package metapath

import (
	"fmt"
	"strings"
)

// maxPathTypes bounds accepted spec length: long chains are almost
// certainly hostile input (each extra hop multiplies serving cost), and
// the bound keeps the planner's O(L³) tables trivial.
const maxPathTypes = 16

// ParsePath resolves a spec into a validated type sequence. Errors
// name the offending token and the candidate types, so an HTTP 400 body
// can be returned to clients verbatim.
func (e *Engine) ParsePath(spec string) ([]string, error) {
	tokens := strings.Split(spec, "-")
	if len(tokens) > maxPathTypes {
		return nil, fmt.Errorf("metapath: path %q has %d types (max %d)", spec, len(tokens), maxPathTypes)
	}
	types := e.src.Types()
	path := make([]string, 0, len(tokens))
	for _, tok := range tokens {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return nil, fmt.Errorf("metapath: empty type token in %q", spec)
		}
		t, err := resolveType(types, tok)
		if err != nil {
			return nil, err
		}
		path = append(path, t)
	}
	if err := e.Validate(path); err != nil {
		return nil, err
	}
	return path, nil
}

// resolveType maps one token to a registered type name.
func resolveType(types []string, tok string) (string, error) {
	for _, t := range types {
		if t == tok {
			return t, nil
		}
	}
	lower := strings.ToLower(tok)
	var exact, prefix []string
	for _, t := range types {
		lt := strings.ToLower(t)
		if lt == lower {
			exact = append(exact, t)
		} else if strings.HasPrefix(lt, lower) {
			prefix = append(prefix, t)
		}
	}
	switch {
	case len(exact) == 1:
		return exact[0], nil
	case len(exact) > 1:
		return "", fmt.Errorf("metapath: type %q is ambiguous (matches %s)", tok, strings.Join(exact, ", "))
	case len(prefix) == 1:
		return prefix[0], nil
	case len(prefix) > 1:
		return "", fmt.Errorf("metapath: type %q is ambiguous (matches %s)", tok, strings.Join(prefix, ", "))
	}
	return "", fmt.Errorf("metapath: unknown type %q (have %s)", tok, strings.Join(types, ", "))
}
