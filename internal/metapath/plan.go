// Cost-based planning for sparse matrix chains. The commuting matrix of
// a meta-path is a product W₀·W₁·…·W_{L-1}; association order changes
// the work by orders of magnitude when the chain runs through a small
// type (e.g. the 20 venues between 800 authors and 2000 papers in
// A-P-V-P-A). The planner is the classic matrix-chain dynamic program,
// but costed for sparse products: the flop estimate for A·B is
// nnz(A)·(nnz(B)/rows(B)) — every stored nonzero of A expands one
// average row of B — and intermediate nnz is estimated as the flop
// count capped by the dense size. Estimates, not truth; but they only
// have to rank orders, not predict runtimes.

package metapath

import (
	"context"
	"fmt"
	"strings"
)

// chainDP holds the interval tables of the dynamic program. Indices are
// leaf (relation) positions: table[i][j] describes the product of
// relations i..j inclusive.
type chainDP struct {
	cost  [][]float64 // estimated flops to materialize the interval
	nnz   [][]float64 // estimated nonzeros of the interval's product
	split [][]int     // top split k: (i..k)·(k+1..j)
}

// prodFlops estimates the multiply work of an (estimated) product:
// left nonzeros each expand an average row of the right operand.
func prodFlops(leftNNZ, rightNNZ float64, inner int) float64 {
	if inner <= 0 {
		return 0
	}
	return leftNNZ * (rightNNZ / float64(inner))
}

// estNNZ caps the flop estimate by the dense size of the product.
func estNNZ(flops float64, rows, cols int) float64 {
	dense := float64(rows) * float64(cols)
	if dense < flops {
		return dense
	}
	return flops
}

// planChain runs the dynamic program over a chain whose i-th relation
// is dims[i]×dims[i+1] with nnz[i] stored nonzeros.
func planChain(dims []int, nnz []float64) chainDP {
	n := len(nnz)
	dp := chainDP{
		cost:  make([][]float64, n),
		nnz:   make([][]float64, n),
		split: make([][]int, n),
	}
	for i := 0; i < n; i++ {
		dp.cost[i] = make([]float64, n)
		dp.nnz[i] = make([]float64, n)
		dp.split[i] = make([]int, n)
		dp.nnz[i][i] = nnz[i]
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span-1 < n; i++ {
			j := i + span - 1
			best, bestK, bestNNZ := -1.0, i, 0.0
			for k := i; k < j; k++ {
				f := prodFlops(dp.nnz[i][k], dp.nnz[k+1][j], dims[k+1])
				c := dp.cost[i][k] + dp.cost[k+1][j] + f
				if best < 0 || c < best {
					best, bestK = c, k
					bestNNZ = estNNZ(f, dims[i], dims[j+1])
				}
			}
			dp.cost[i][j] = best
			dp.split[i][j] = bestK
			dp.nnz[i][j] = bestNNZ
		}
	}
	return dp
}

// Plan describes how the engine would evaluate a path: the association
// order, whether the top level is a Gram factorization, and the
// planner's flop estimates for the chosen and the naive left-to-right
// orders. It exists for tests, benchmarks and observability — Commute
// does not need a Plan in hand to run.
type Plan struct {
	Path       []string
	Order      string  // parenthesized association order, e.g. "gram((A-P)·(P-V))"
	Gram       bool    // top level evaluated as half·halfᵀ
	EstFlops   float64 // estimated flops of the chosen order
	NaiveFlops float64 // estimated flops of the left-to-right order
}

// Plan compiles a path without materializing it beyond its leaf
// relations (which it needs for nnz estimates, and which land in the
// cache for the eventual Commute).
func (e *Engine) Plan(path []string) (*Plan, error) {
	if err := e.Validate(path); err != nil {
		return nil, err
	}
	dims, nnz, err := e.leafStats(context.Background(), path)
	if err != nil {
		return nil, err
	}
	dp := planChain(dims, nnz)
	n := len(nnz)
	p := &Plan{
		Path:       append([]string(nil), path...),
		NaiveFlops: naiveFlops(dims, nnz),
	}
	if gramEligible(path) {
		half := n / 2
		halfDP := planChain(dims[:half+1], nnz[:half])
		// The Gram kernel computes only the upper triangle of H·Hᵀ.
		gram := prodFlops(halfDP.nnz[0][half-1], halfDP.nnz[0][half-1], dims[half]) / 2
		p.Gram = true
		p.EstFlops = halfDP.cost[0][half-1] + gram
		p.Order = "gram(" + orderString(path, halfDP, 0, half-1) + ")"
		return p, nil
	}
	p.EstFlops = dp.cost[0][n-1]
	p.Order = orderString(path, dp, 0, n-1)
	return p, nil
}

// naiveFlops estimates the strict left-to-right evaluation cost — the
// baseline CommutingMatrix used before the engine existed.
func naiveFlops(dims []int, nnz []float64) float64 {
	total := 0.0
	accNNZ := nnz[0]
	for i := 1; i < len(nnz); i++ {
		f := prodFlops(accNNZ, nnz[i], dims[i])
		total += f
		accNNZ = estNNZ(f, dims[0], dims[i+1])
	}
	return total
}

// orderString renders the planned association of relations i..j.
func orderString(path []string, dp chainDP, i, j int) string {
	if i == j {
		return fmt.Sprintf("%s-%s", path[i], path[i+1])
	}
	k := dp.split[i][j]
	return "(" + orderString(path, dp, i, k) + " · " + orderString(path, dp, k+1, j) + ")"
}

// String renders the plan compactly for logs and the CLI.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s => %s", join(p.Path), p.Order)
	fmt.Fprintf(&b, " (est %.3g flops, naive %.3g)", p.EstFlops, p.NaiveFlops)
	return b.String()
}
