// Package hin implements the heterogeneous information network (HIN)
// abstraction at the center of the paper: a multi-typed graph whose
// objects are partitioned into types (author, paper, venue, term, ...)
// and whose links connect objects of specific type pairs.
//
// The tutorial's thesis is that a database *is* such a network; the
// RankClus (bi-typed), NetClus (star-schema) and PathSim (meta-path)
// algorithms all consume views exported from this package:
//
//   - Relation(src, dst): the weighted src×dst adjacency matrix,
//   - Bipartite(x, y): the bi-typed sub-network RankClus works on,
//   - Projection(path): the homogeneous graph induced by a meta-path
//     (e.g. co-authorship = A–P–A), and
//   - Star(center): the star-schema view NetClus works on.
package hin

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sync"

	"hinet/internal/graph"
	"hinet/internal/metapath"
	"hinet/internal/sparse"
)

// Type names an object type in the network schema (e.g. "author").
type Type string

// ObjectRef identifies one object: its type plus the dense index of the
// object within that type.
type ObjectRef struct {
	Type Type
	ID   int
}

type link struct {
	src, dst int
	w        float64
}

type relationKey struct {
	src, dst Type
}

// Network is a heterogeneous information network. Objects of each type
// are dense integers 0..Count(t)-1 with optional names; links are typed
// and weighted. Link insertion order is preserved per relation.
//
// Concurrency: any number of goroutines may query a network
// concurrently (Relation, CommutingMatrix, lookups, ...). Mutations
// (AddObject, AddLink, ApplyEdgeDeltas, ...) are single-writer and
// must not run concurrently with queries — the serving layer gets
// both by mutating a copy-on-write Clone and swapping it in atomically.
type Network struct {
	types    []Type
	names    map[Type][]string
	index    map[Type]map[string]int
	relation map[relationKey][]link

	// version counts structural mutations; the meta-path engine's
	// materialization cache moves epochs with it, so a network edit
	// after a CommutingMatrix call can never serve stale products.
	// Mutations invalidate selectively: only cached matrices and
	// engine entries that read the touched relation (or a relation of
	// a grown type) are dropped.
	version int64
	engMu   sync.Mutex
	eng     *metapath.Engine

	// relCache memoizes Relation's materialized adjacency matrices per
	// orientation. Matrices are immutable, so cached values are shared
	// freely; ApplyEdgeDeltas keeps them warm by merging deltas instead
	// of rebuilding, and AddObject grows them in place of dropping.
	relMu    sync.Mutex
	relCache map[relationKey]*sparse.Matrix
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		names:    make(map[Type][]string),
		index:    make(map[Type]map[string]int),
		relation: make(map[relationKey][]link),
		relCache: make(map[relationKey]*sparse.Matrix),
	}
}

// AddType registers a type; registering an existing type is a no-op.
func (n *Network) AddType(t Type) {
	if _, ok := n.names[t]; ok {
		return
	}
	n.version++
	n.types = append(n.types, t)
	n.names[t] = nil
	n.index[t] = make(map[string]int)
	// A new type has no links, so no cached matrix or product can be
	// stale — move the engine's epoch without dropping anything.
	n.engInvalidate(func([]string) bool { return false })
}

// Types returns the registered types in insertion order.
func (n *Network) Types() []Type { return append([]Type(nil), n.types...) }

// AddObject inserts an object of type t with the given name and returns
// its dense id. Duplicate names within a type return the existing id.
func (n *Network) AddObject(t Type, name string) int {
	n.AddType(t)
	if id, ok := n.index[t][name]; ok {
		return id
	}
	id := len(n.names[t])
	n.version++
	n.names[t] = append(n.names[t], name)
	n.index[t][name] = id
	n.typeGrew(t)
	return id
}

// AddAnonymous inserts count unnamed objects of type t and returns the id
// of the first one; ids are contiguous.
func (n *Network) AddAnonymous(t Type, count int) int {
	n.AddType(t)
	first := len(n.names[t])
	n.version++
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("%s#%d", t, first+i)
		n.names[t] = append(n.names[t], name)
		n.index[t][name] = first + i
	}
	n.typeGrew(t)
	return first
}

// typeGrew reconciles the caches after Count(t) increased: cached
// relation matrices touching t grow to the new dimensions (their
// entries are unchanged — a fresh object has no links), and cached
// meta-path products whose path mentions t are dropped, since their
// dimensions are stale. The engine's surviving entries move to the new
// epoch.
func (n *Network) typeGrew(t Type) {
	n.relMu.Lock()
	for k, m := range n.relCache {
		if k.src == t || k.dst == t {
			n.relCache[k] = m.Grow(n.Count(k.src), n.Count(k.dst))
		}
	}
	n.relMu.Unlock()
	n.engInvalidate(func(path []string) bool { return slices.Contains(path, string(t)) })
}

// relationChanged reconciles the caches after links between a and b
// changed in a way not already merged into the cached matrices: both
// cached orientations are dropped, along with every cached meta-path
// product that traverses the a-b relation.
func (n *Network) relationChanged(a, b Type) {
	n.relMu.Lock()
	delete(n.relCache, relationKey{a, b})
	delete(n.relCache, relationKey{b, a})
	n.relMu.Unlock()
	n.engInvalidate(func(path []string) bool { return pathHasPair(path, string(a), string(b)) })
}

// pathHasPair reports whether the path traverses the a-b relation in
// either direction.
func pathHasPair(path []string, a, b string) bool {
	for i := 0; i+1 < len(path); i++ {
		if (path[i] == a && path[i+1] == b) || (path[i] == b && path[i+1] == a) {
			return true
		}
	}
	return false
}

// engInvalidate moves the engine's cache to the network's current
// version, dropping entries that match drop. A nil engine has nothing
// cached, and a later PathEngine() call syncs it to the version.
func (n *Network) engInvalidate(drop func(path []string) bool) {
	n.engMu.Lock()
	e := n.eng
	n.engMu.Unlock()
	if e != nil {
		e.Invalidate(n.version, drop)
	}
}

// Count returns the number of objects of type t.
func (n *Network) Count(t Type) int { return len(n.names[t]) }

// Name returns the name of object (t, id).
func (n *Network) Name(t Type, id int) string { return n.names[t][id] }

// Lookup returns the id of the named object of type t, or -1.
func (n *Network) Lookup(t Type, name string) int {
	if m, ok := n.index[t]; ok {
		if id, ok := m[name]; ok {
			return id
		}
	}
	return -1
}

// AddLink records a weighted link between (src type, srcID) and
// (dst type, dstID). Links are conceptually undirected between the two
// types; they are stored under the (src, dst) orientation and exposed
// symmetrically by Relation.
func (n *Network) AddLink(src Type, srcID int, dst Type, dstID int, w float64) {
	if srcID < 0 || srcID >= n.Count(src) || dstID < 0 || dstID >= n.Count(dst) {
		panic(fmt.Sprintf("hin: link (%s,%d)-(%s,%d) out of range", src, srcID, dst, dstID))
	}
	n.version++
	n.relation[relationKey{src, dst}] = append(n.relation[relationKey{src, dst}], link{srcID, dstID, w})
	n.relationChanged(src, dst)
}

// EdgeDelta is one signed weight adjustment between two objects of a
// relation: positive adds link weight, negative removes it. A pair
// whose total weight reaches exactly zero drops out of the relation
// matrix entirely, matching a from-scratch rebuild of the link log.
type EdgeDelta struct {
	Src, Dst int
	W        float64
}

// ApplyEdgeDeltas applies a batch of edge deltas to the (src, dst)
// relation: the deltas are appended to the link log (so a from-scratch
// rebuild replays to the identical network) and merged into any cached
// relation matrices via the sparse copy-on-write delta kernel —
// O(batch + touched rows) instead of an O(links) rebuild. Cached
// meta-path products that traverse the relation are invalidated; all
// others survive. Endpoints out of range return an error before
// anything is modified.
func (n *Network) ApplyEdgeDeltas(src, dst Type, deltas []EdgeDelta) error {
	if len(deltas) == 0 {
		return nil
	}
	ns, nd := n.Count(src), n.Count(dst)
	for _, d := range deltas {
		if d.Src < 0 || d.Src >= ns || d.Dst < 0 || d.Dst >= nd {
			return fmt.Errorf("hin: delta (%s,%d)-(%s,%d) out of range", src, d.Src, dst, d.Dst)
		}
	}
	key := relationKey{src, dst}
	ls := n.relation[key]
	for _, d := range deltas {
		ls = append(ls, link{d.Src, d.Dst, d.W})
	}
	n.relation[key] = ls
	n.version++

	// Merge into whichever orientations are materialized. Relation
	// merges both log orientations, so the (dst, src) matrix sees the
	// batch transposed.
	n.relMu.Lock()
	if m, ok := n.relCache[key]; ok {
		coords := make([]sparse.Coord, len(deltas))
		for i, d := range deltas {
			coords[i] = sparse.Coord{Row: d.Src, Col: d.Dst, Val: d.W}
		}
		n.relCache[key] = m.ApplyDelta(coords)
	}
	if rev := (relationKey{dst, src}); src != dst {
		if m, ok := n.relCache[rev]; ok {
			coords := make([]sparse.Coord, len(deltas))
			for i, d := range deltas {
				coords[i] = sparse.Coord{Row: d.Dst, Col: d.Src, Val: d.W}
			}
			n.relCache[rev] = m.ApplyDelta(coords)
		}
	}
	n.relMu.Unlock()

	// The relation matrices are already current; only derived products
	// along the pair are stale.
	n.engInvalidate(func(path []string) bool { return pathHasPair(path, string(src), string(dst)) })
	return nil
}

// LinkCount returns the number of stored links in the (src, dst)
// orientation (reverse-orientation links are counted by their own key).
func (n *Network) LinkCount(src, dst Type) int {
	return len(n.relation[relationKey{src, dst}])
}

// HasRelation reports whether any links exist between the two types in
// either orientation.
func (n *Network) HasRelation(a, b Type) bool {
	return len(n.relation[relationKey{a, b}]) > 0 || len(n.relation[relationKey{b, a}]) > 0
}

// Relation returns the weighted adjacency matrix W with W[i][j] = total
// link weight between object i of type src and object j of type dst,
// merging links stored in either orientation. The matrix is immutable
// and memoized: repeated calls return the same (shared) matrix until a
// mutation touching the relation invalidates it, and ApplyEdgeDeltas
// keeps it warm by merging instead of rebuilding.
func (n *Network) Relation(src, dst Type) *sparse.Matrix {
	key := relationKey{src, dst}
	n.relMu.Lock()
	if m, ok := n.relCache[key]; ok {
		n.relMu.Unlock()
		return m
	}
	n.relMu.Unlock()
	m := n.buildRelation(src, dst)
	n.relMu.Lock()
	if prev, ok := n.relCache[key]; ok {
		// A concurrent query built it first; share that one.
		m = prev
	} else {
		n.relCache[key] = m
	}
	n.relMu.Unlock()
	return m
}

// buildRelation materializes the (src, dst) adjacency from the link
// log — the cold path behind Relation's cache.
func (n *Network) buildRelation(src, dst Type) *sparse.Matrix {
	var entries []sparse.Coord
	for _, l := range n.relation[relationKey{src, dst}] {
		entries = append(entries, sparse.Coord{Row: l.src, Col: l.dst, Val: l.w})
	}
	if src != dst {
		for _, l := range n.relation[relationKey{dst, src}] {
			entries = append(entries, sparse.Coord{Row: l.dst, Col: l.src, Val: l.w})
		}
	}
	return sparse.NewFromCoords(n.Count(src), n.Count(dst), entries)
}

// SchemaEdges lists the type pairs that have at least one link, each pair
// once in a canonical order (useful to print the network schema).
func (n *Network) SchemaEdges() [][2]Type {
	seen := make(map[[2]Type]bool)
	for k, ls := range n.relation {
		if len(ls) == 0 {
			continue
		}
		a, b := k.src, k.dst
		if b < a {
			a, b = b, a
		}
		seen[[2]Type{a, b}] = true
	}
	out := make([][2]Type, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	slices.SortFunc(out, func(a, b [2]Type) int {
		if c := cmp.Compare(a[0], b[0]); c != 0 {
			return c
		}
		return cmp.Compare(a[1], b[1])
	})
	return out
}

// Bipartite is the bi-typed sub-network view consumed by RankClus:
// target type X, attribute type Y, and the X×Y link matrix W. WXX is the
// optional homogeneous X×X matrix (e.g. co-author links); it may be nil.
type Bipartite struct {
	X, Y Type
	W    *sparse.Matrix // |X| × |Y|
	WXX  *sparse.Matrix // |X| × |X| or nil
}

// Bipartite extracts the bi-typed view between target x and attribute y.
// Any homogeneous x–x links present are attached as WXX.
func (n *Network) Bipartite(x, y Type) *Bipartite {
	b := &Bipartite{X: x, Y: y, W: n.Relation(x, y)}
	if n.HasRelation(x, x) {
		b.WXX = n.Relation(x, x)
	}
	return b
}

// Star is the star-schema view consumed by NetClus: a center type whose
// objects each link to objects of the attribute types (for DBLP: paper
// center with author/venue/term attributes).
type Star struct {
	Center     Type
	Attributes []Type
	// Rel[i] is the Center×Attributes[i] link matrix.
	Rel []*sparse.Matrix
}

// Star extracts the star-schema view centered on center; attrs lists the
// attribute types in presentation order. It panics if a relation is
// entirely absent, since the star schema requires every attribute type to
// touch the center. StarE is the non-panicking form for untrusted input.
func (n *Network) Star(center Type, attrs ...Type) *Star {
	s, err := n.StarE(center, attrs...)
	if err != nil {
		panic("hin: " + err.Error())
	}
	return s
}

// StarE extracts the star-schema view, returning an error (instead of
// panicking like Star) when an attribute type has no relation to the
// center.
func (n *Network) StarE(center Type, attrs ...Type) (*Star, error) {
	s := &Star{Center: center, Attributes: append([]Type(nil), attrs...)}
	for _, a := range attrs {
		if !n.HasRelation(center, a) {
			return nil, fmt.Errorf("star schema missing relation %s-%s", center, a)
		}
		s.Rel = append(s.Rel, n.Relation(center, a))
	}
	return s, nil
}

// MetaPath is a sequence of types describing a composite relation, e.g.
// {"author","paper","author"} for co-authorship.
type MetaPath []Type

// String renders the path as A-P-A style.
func (p MetaPath) String() string {
	out := ""
	for i, t := range p {
		if i > 0 {
			out += "-"
		}
		out += string(t)
	}
	return out
}

// Symmetric reports whether the path reads the same reversed.
func (p MetaPath) Symmetric() bool {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		if p[i] != p[j] {
			return false
		}
	}
	return true
}

// netSource adapts the network into the metapath engine's Source view
// (plain string type names, so internal/metapath needs no hin import).
type netSource struct{ n *Network }

func (s netSource) Types() []string {
	out := make([]string, len(s.n.types))
	for i, t := range s.n.types {
		out[i] = string(t)
	}
	return out
}

func (s netSource) HasType(t string) bool {
	_, ok := s.n.names[Type(t)]
	return ok
}

func (s netSource) Count(t string) int { return s.n.Count(Type(t)) }

func (s netSource) HasRelation(a, b string) bool { return s.n.HasRelation(Type(a), Type(b)) }

func (s netSource) Relation(a, b string) *sparse.Matrix { return s.n.Relation(Type(a), Type(b)) }

// Clone returns a copy-on-write clone of the network for incremental
// delta chains: the clone shares the parent's immutable link storage,
// cached relation matrices and completed meta-path materializations,
// so cloning costs O(objects + relations), not O(links). Mutating the
// clone never changes what the parent serves — link logs are
// capacity-clipped so appends reallocate, matrices are immutable, and
// the engine cache is copied entry-by-entry.
//
// The intended discipline is a single-writer chain (the serving
// layer's ingest path): clone the live network, apply a delta batch to
// the clone, swap it in, and never mutate the parent again. Queries
// against the parent remain safe throughout.
func (n *Network) Clone() *Network {
	c := &Network{
		types:    append([]Type(nil), n.types...),
		names:    make(map[Type][]string, len(n.names)),
		index:    make(map[Type]map[string]int, len(n.index)),
		relation: make(map[relationKey][]link, len(n.relation)),
		relCache: make(map[relationKey]*sparse.Matrix),
		version:  n.version,
	}
	for t, ns := range n.names {
		// Clip capacity so an append in the clone reallocates instead
		// of writing into the parent's backing array.
		c.names[t] = ns[:len(ns):len(ns)]
	}
	for t, idx := range n.index {
		m := make(map[string]int, len(idx))
		for name, id := range idx {
			m[name] = id
		}
		c.index[t] = m
	}
	for k, ls := range n.relation {
		c.relation[k] = ls[:len(ls):len(ls)]
	}
	n.relMu.Lock()
	for k, m := range n.relCache {
		c.relCache[k] = m
	}
	n.relMu.Unlock()
	n.engMu.Lock()
	eng := n.eng
	n.engMu.Unlock()
	if eng != nil {
		c.eng = eng.CloneFor(netSource{c}, c.version)
	}
	return c
}

// PathEngine returns the network's meta-path engine — the planner and
// materialization cache every CommutingMatrix/Projection call runs
// through. The engine is created lazily and its cache is invalidated
// whenever the network has been mutated since the previous call, so it
// is always safe to hold onto. Concurrent PathEngine/Commute calls are
// safe; mutating the network concurrently with queries is not (and
// never was).
func (n *Network) PathEngine() *metapath.Engine {
	n.engMu.Lock()
	if n.eng == nil {
		n.eng = metapath.New(netSource{n})
	}
	e := n.eng
	n.engMu.Unlock()
	e.SyncEpoch(n.version)
	return e
}

// ParseMetaPath resolves a spec like "A-P-V-P-A" or
// "author-paper-author" against the network's registered types and
// validates it against the schema. Tokens match a type exactly,
// case-insensitively, or by unique case-insensitive prefix.
func (n *Network) ParseMetaPath(spec string) (MetaPath, error) {
	path, err := n.PathEngine().ParsePath(spec)
	if err != nil {
		return nil, err
	}
	return toMetaPath(path), nil
}

func toMetaPath(path []string) MetaPath {
	p := make(MetaPath, len(path))
	for i, t := range path {
		p[i] = Type(t)
	}
	return p
}

func fromMetaPath(p MetaPath) []string {
	out := make([]string, len(p))
	for i, t := range p {
		out[i] = string(t)
	}
	return out
}

// CommutingMatrix returns the product of relation matrices along the
// path: M = W(t0,t1) · W(t1,t2) · … . Paths must have length ≥ 2. The
// product is evaluated by the meta-path engine — planned association
// order, Gram factorization of symmetric paths, cached intermediates —
// so repeated or overlapping paths cost far less than their naive
// products. It panics on malformed paths; CommutingMatrixE returns an
// error instead.
func (n *Network) CommutingMatrix(p MetaPath) *sparse.Matrix {
	m, err := n.CommutingMatrixE(p)
	if err != nil {
		panic("hin: " + err.Error())
	}
	return m
}

// CommutingMatrixE is the non-panicking CommutingMatrix: malformed
// paths (too short, unknown types, missing schema relations) come back
// as errors, which is what the serving layer needs to turn client input
// into 400s rather than crashes.
func (n *Network) CommutingMatrixE(p MetaPath) (*sparse.Matrix, error) {
	return n.PathEngine().Commute(fromMetaPath(p))
}

// CommutingMatrixCtx is CommutingMatrixE with cooperative cancellation
// threaded into the engine's materialization (see
// metapath.Engine.CommuteCtx): a cancelled ctx stops the product chain
// at its next row-block checkpoint and returns ctx.Err().
func (n *Network) CommutingMatrixCtx(ctx context.Context, p MetaPath) (*sparse.Matrix, error) {
	return n.PathEngine().CommuteCtx(ctx, fromMetaPath(p))
}

// CommutingColsCtx materializes columns [lo, hi) of the commuting
// matrix along with its full diagonal — the range-restricted build the
// sharded serving tier uses so each shard holds only its candidate
// slice (see metapath.Engine.CommuteColsCtx for the bitwise-equality
// contract with the full product).
func (n *Network) CommutingColsCtx(ctx context.Context, p MetaPath, lo, hi int) (*sparse.Matrix, []float64, error) {
	return n.PathEngine().CommuteColsCtx(ctx, fromMetaPath(p), lo, hi)
}

// Projection builds the homogeneous weighted graph on type p[0] induced
// by a symmetric meta-path: nodes are the objects of p[0]; edge weights
// are the off-diagonal entries of the commuting matrix. Labels carry the
// object names. It panics on invalid paths; ProjectionE returns an
// error instead.
func (n *Network) Projection(p MetaPath) *graph.Graph {
	g, err := n.ProjectionE(p)
	if err != nil {
		panic("hin: " + err.Error())
	}
	return g
}

// ProjectionE is the non-panicking Projection.
func (n *Network) ProjectionE(p MetaPath) (*graph.Graph, error) {
	if len(p) == 0 || !p.Symmetric() || p[0] != p[len(p)-1] {
		return nil, fmt.Errorf("projection requires a symmetric meta path, got %q", p.String())
	}
	m, err := n.CommutingMatrixE(p)
	if err != nil {
		return nil, err
	}
	g := graph.New(n.Count(p[0]), false)
	for id := 0; id < n.Count(p[0]); id++ {
		g.SetLabel(id, n.Name(p[0], id))
	}
	for r := 0; r < m.Rows(); r++ {
		m.Row(r, func(c int, v float64) {
			if c > r && v > 0 {
				g.AddEdge(r, c, v)
			}
		})
	}
	return g, nil
}

// Homogeneous converts the whole network into one untyped directed graph
// whose nodes are all objects of all types (ordered by type registration
// then id). It returns the graph and the per-type offset map. This is the
// "database as one gigantic network" view from the tutorial's
// introduction, and also feeds the homogeneous baselines.
func (n *Network) Homogeneous() (*graph.Graph, map[Type]int) {
	offset := make(map[Type]int)
	total := 0
	for _, t := range n.types {
		offset[t] = total
		total += n.Count(t)
	}
	g := graph.New(total, false)
	for _, t := range n.types {
		for id := 0; id < n.Count(t); id++ {
			g.SetLabel(offset[t]+id, string(t)+":"+n.Name(t, id))
		}
	}
	for k, ls := range n.relation {
		for _, l := range ls {
			u := offset[k.src] + l.src
			v := offset[k.dst] + l.dst
			if u != v {
				g.AddEdge(u, v, l.w)
			}
		}
	}
	return g, offset
}
