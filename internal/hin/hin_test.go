package hin

import (
	"testing"
)

// tinyDBLP builds the toy network used across these tests:
// 2 authors, 3 papers, 2 venues; a0 writes p0,p1; a1 writes p1,p2;
// p0,p1 in v0; p2 in v1.
func tinyDBLP() *Network {
	n := NewNetwork()
	a0 := n.AddObject("author", "alice")
	a1 := n.AddObject("author", "bob")
	p0 := n.AddObject("paper", "p0")
	p1 := n.AddObject("paper", "p1")
	p2 := n.AddObject("paper", "p2")
	v0 := n.AddObject("venue", "sigmod")
	v1 := n.AddObject("venue", "kdd")
	n.AddLink("paper", p0, "author", a0, 1)
	n.AddLink("paper", p1, "author", a0, 1)
	n.AddLink("paper", p1, "author", a1, 1)
	n.AddLink("paper", p2, "author", a1, 1)
	n.AddLink("paper", p0, "venue", v0, 1)
	n.AddLink("paper", p1, "venue", v0, 1)
	n.AddLink("paper", p2, "venue", v1, 1)
	return n
}

func TestObjectRegistration(t *testing.T) {
	n := NewNetwork()
	id := n.AddObject("author", "alice")
	again := n.AddObject("author", "alice")
	if id != again {
		t.Error("duplicate name should return same id")
	}
	if n.Count("author") != 1 {
		t.Errorf("Count = %d", n.Count("author"))
	}
	if n.Lookup("author", "alice") != id || n.Lookup("author", "nobody") != -1 {
		t.Error("Lookup wrong")
	}
	if n.Name("author", id) != "alice" {
		t.Error("Name wrong")
	}
}

func TestAddAnonymous(t *testing.T) {
	n := NewNetwork()
	first := n.AddAnonymous("term", 5)
	if first != 0 || n.Count("term") != 5 {
		t.Fatalf("AddAnonymous first=%d count=%d", first, n.Count("term"))
	}
	second := n.AddAnonymous("term", 3)
	if second != 5 || n.Count("term") != 8 {
		t.Errorf("second batch first=%d count=%d", second, n.Count("term"))
	}
}

func TestRelationSymmetricAcrossOrientation(t *testing.T) {
	n := tinyDBLP()
	pa := n.Relation("paper", "author")
	ap := n.Relation("author", "paper")
	if pa.Rows() != 3 || pa.Cols() != 2 || ap.Rows() != 2 || ap.Cols() != 3 {
		t.Fatal("relation dims wrong")
	}
	for p := 0; p < 3; p++ {
		for a := 0; a < 2; a++ {
			if pa.At(p, a) != ap.At(a, p) {
				t.Fatalf("orientation mismatch at paper %d author %d", p, a)
			}
		}
	}
	if pa.At(1, 0) != 1 || pa.At(1, 1) != 1 || pa.At(0, 1) != 0 {
		t.Error("relation content wrong")
	}
}

func TestSchemaEdges(t *testing.T) {
	n := tinyDBLP()
	edges := n.SchemaEdges()
	if len(edges) != 2 {
		t.Fatalf("schema edges = %v", edges)
	}
	// canonical order: author-paper then paper-venue
	if edges[0] != [2]Type{"author", "paper"} || edges[1] != [2]Type{"paper", "venue"} {
		t.Errorf("schema edges = %v", edges)
	}
}

func TestBipartiteView(t *testing.T) {
	n := tinyDBLP()
	b := n.Bipartite("venue", "author")
	if b.W.Rows() != 2 || b.W.Cols() != 2 {
		t.Fatalf("bipartite dims %dx%d", b.W.Rows(), b.W.Cols())
	}
	// venue-author has no direct links in this schema
	if b.W.NNZ() != 0 {
		t.Error("no direct venue-author links expected")
	}
	if b.WXX != nil {
		t.Error("no homogeneous venue links expected")
	}
	// add venue-venue link, check WXX appears
	n.AddLink("venue", 0, "venue", 1, 2)
	b = n.Bipartite("venue", "author")
	if b.WXX == nil || b.WXX.At(0, 1) != 2 {
		t.Error("WXX missing")
	}
}

func TestStarView(t *testing.T) {
	n := tinyDBLP()
	s := n.Star("paper", "author", "venue")
	if s.Center != "paper" || len(s.Rel) != 2 {
		t.Fatal("star structure wrong")
	}
	if s.Rel[0].Rows() != 3 || s.Rel[0].Cols() != 2 {
		t.Error("star author relation dims wrong")
	}
	if s.Rel[1].At(2, 1) != 1 {
		t.Error("p2 should link kdd")
	}
}

func TestStarMissingRelationPanics(t *testing.T) {
	n := tinyDBLP()
	defer func() {
		if recover() == nil {
			t.Error("missing star relation should panic")
		}
	}()
	n.Star("paper", "author", "term")
}

func TestMetaPathString(t *testing.T) {
	p := MetaPath{"author", "paper", "author"}
	if p.String() != "author-paper-author" {
		t.Errorf("String = %q", p.String())
	}
	if !p.Symmetric() {
		t.Error("APA should be symmetric")
	}
	if (MetaPath{"author", "paper", "venue"}).Symmetric() {
		t.Error("APV should not be symmetric")
	}
}

func TestCommutingMatrixCoauthor(t *testing.T) {
	n := tinyDBLP()
	m := n.CommutingMatrix(MetaPath{"author", "paper", "author"})
	// alice-bob share exactly p1.
	if m.At(0, 1) != 1 || m.At(1, 0) != 1 {
		t.Errorf("co-author count = %v", m.At(0, 1))
	}
	// diagonal = paper counts.
	if m.At(0, 0) != 2 || m.At(1, 1) != 2 {
		t.Errorf("diagonal = %v,%v", m.At(0, 0), m.At(1, 1))
	}
}

func TestProjectionGraph(t *testing.T) {
	n := tinyDBLP()
	g := n.Projection(MetaPath{"author", "paper", "author"})
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("projection N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) {
		t.Error("co-author edge missing")
	}
	if g.Label(0) != "alice" {
		t.Errorf("label = %q", g.Label(0))
	}
}

func TestProjectionRequiresSymmetry(t *testing.T) {
	n := tinyDBLP()
	defer func() {
		if recover() == nil {
			t.Error("asymmetric projection should panic")
		}
	}()
	n.Projection(MetaPath{"author", "paper", "venue"})
}

func TestHomogeneousView(t *testing.T) {
	n := tinyDBLP()
	g, offset := n.Homogeneous()
	if g.N() != 7 {
		t.Fatalf("homogeneous N = %d, want 7", g.N())
	}
	if g.M() != 7 {
		t.Errorf("homogeneous M = %d, want 7 links", g.M())
	}
	// paper p0 connects author alice.
	p0 := offset["paper"] + 0
	a0 := offset["author"] + 0
	if !g.HasEdge(p0, a0) {
		t.Error("typed link lost in homogeneous view")
	}
	if g.Label(a0) != "author:alice" {
		t.Errorf("label = %q", g.Label(a0))
	}
}

func TestLinkCountAndHasRelation(t *testing.T) {
	n := tinyDBLP()
	if n.LinkCount("paper", "author") != 4 {
		t.Errorf("LinkCount = %d", n.LinkCount("paper", "author"))
	}
	if !n.HasRelation("author", "paper") {
		t.Error("HasRelation should merge orientations")
	}
	if n.HasRelation("author", "venue") {
		t.Error("no author-venue relation expected")
	}
}
