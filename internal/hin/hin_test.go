package hin

import (
	"testing"
)

// tinyDBLP builds the toy network used across these tests:
// 2 authors, 3 papers, 2 venues; a0 writes p0,p1; a1 writes p1,p2;
// p0,p1 in v0; p2 in v1.
func tinyDBLP() *Network {
	n := NewNetwork()
	a0 := n.AddObject("author", "alice")
	a1 := n.AddObject("author", "bob")
	p0 := n.AddObject("paper", "p0")
	p1 := n.AddObject("paper", "p1")
	p2 := n.AddObject("paper", "p2")
	v0 := n.AddObject("venue", "sigmod")
	v1 := n.AddObject("venue", "kdd")
	n.AddLink("paper", p0, "author", a0, 1)
	n.AddLink("paper", p1, "author", a0, 1)
	n.AddLink("paper", p1, "author", a1, 1)
	n.AddLink("paper", p2, "author", a1, 1)
	n.AddLink("paper", p0, "venue", v0, 1)
	n.AddLink("paper", p1, "venue", v0, 1)
	n.AddLink("paper", p2, "venue", v1, 1)
	return n
}

func TestObjectRegistration(t *testing.T) {
	n := NewNetwork()
	id := n.AddObject("author", "alice")
	again := n.AddObject("author", "alice")
	if id != again {
		t.Error("duplicate name should return same id")
	}
	if n.Count("author") != 1 {
		t.Errorf("Count = %d", n.Count("author"))
	}
	if n.Lookup("author", "alice") != id || n.Lookup("author", "nobody") != -1 {
		t.Error("Lookup wrong")
	}
	if n.Name("author", id) != "alice" {
		t.Error("Name wrong")
	}
}

func TestAddAnonymous(t *testing.T) {
	n := NewNetwork()
	first := n.AddAnonymous("term", 5)
	if first != 0 || n.Count("term") != 5 {
		t.Fatalf("AddAnonymous first=%d count=%d", first, n.Count("term"))
	}
	second := n.AddAnonymous("term", 3)
	if second != 5 || n.Count("term") != 8 {
		t.Errorf("second batch first=%d count=%d", second, n.Count("term"))
	}
}

func TestRelationSymmetricAcrossOrientation(t *testing.T) {
	n := tinyDBLP()
	pa := n.Relation("paper", "author")
	ap := n.Relation("author", "paper")
	if pa.Rows() != 3 || pa.Cols() != 2 || ap.Rows() != 2 || ap.Cols() != 3 {
		t.Fatal("relation dims wrong")
	}
	for p := 0; p < 3; p++ {
		for a := 0; a < 2; a++ {
			if pa.At(p, a) != ap.At(a, p) {
				t.Fatalf("orientation mismatch at paper %d author %d", p, a)
			}
		}
	}
	if pa.At(1, 0) != 1 || pa.At(1, 1) != 1 || pa.At(0, 1) != 0 {
		t.Error("relation content wrong")
	}
}

func TestSchemaEdges(t *testing.T) {
	n := tinyDBLP()
	edges := n.SchemaEdges()
	if len(edges) != 2 {
		t.Fatalf("schema edges = %v", edges)
	}
	// canonical order: author-paper then paper-venue
	if edges[0] != [2]Type{"author", "paper"} || edges[1] != [2]Type{"paper", "venue"} {
		t.Errorf("schema edges = %v", edges)
	}
}

func TestBipartiteView(t *testing.T) {
	n := tinyDBLP()
	b := n.Bipartite("venue", "author")
	if b.W.Rows() != 2 || b.W.Cols() != 2 {
		t.Fatalf("bipartite dims %dx%d", b.W.Rows(), b.W.Cols())
	}
	// venue-author has no direct links in this schema
	if b.W.NNZ() != 0 {
		t.Error("no direct venue-author links expected")
	}
	if b.WXX != nil {
		t.Error("no homogeneous venue links expected")
	}
	// add venue-venue link, check WXX appears
	n.AddLink("venue", 0, "venue", 1, 2)
	b = n.Bipartite("venue", "author")
	if b.WXX == nil || b.WXX.At(0, 1) != 2 {
		t.Error("WXX missing")
	}
}

func TestStarView(t *testing.T) {
	n := tinyDBLP()
	s := n.Star("paper", "author", "venue")
	if s.Center != "paper" || len(s.Rel) != 2 {
		t.Fatal("star structure wrong")
	}
	if s.Rel[0].Rows() != 3 || s.Rel[0].Cols() != 2 {
		t.Error("star author relation dims wrong")
	}
	if s.Rel[1].At(2, 1) != 1 {
		t.Error("p2 should link kdd")
	}
}

func TestStarMissingRelationPanics(t *testing.T) {
	n := tinyDBLP()
	defer func() {
		if recover() == nil {
			t.Error("missing star relation should panic")
		}
	}()
	n.Star("paper", "author", "term")
}

func TestMetaPathString(t *testing.T) {
	p := MetaPath{"author", "paper", "author"}
	if p.String() != "author-paper-author" {
		t.Errorf("String = %q", p.String())
	}
	if !p.Symmetric() {
		t.Error("APA should be symmetric")
	}
	if (MetaPath{"author", "paper", "venue"}).Symmetric() {
		t.Error("APV should not be symmetric")
	}
}

func TestCommutingMatrixCoauthor(t *testing.T) {
	n := tinyDBLP()
	m := n.CommutingMatrix(MetaPath{"author", "paper", "author"})
	// alice-bob share exactly p1.
	if m.At(0, 1) != 1 || m.At(1, 0) != 1 {
		t.Errorf("co-author count = %v", m.At(0, 1))
	}
	// diagonal = paper counts.
	if m.At(0, 0) != 2 || m.At(1, 1) != 2 {
		t.Errorf("diagonal = %v,%v", m.At(0, 0), m.At(1, 1))
	}
}

func TestProjectionGraph(t *testing.T) {
	n := tinyDBLP()
	g := n.Projection(MetaPath{"author", "paper", "author"})
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("projection N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) {
		t.Error("co-author edge missing")
	}
	if g.Label(0) != "alice" {
		t.Errorf("label = %q", g.Label(0))
	}
}

func TestProjectionRequiresSymmetry(t *testing.T) {
	n := tinyDBLP()
	defer func() {
		if recover() == nil {
			t.Error("asymmetric projection should panic")
		}
	}()
	n.Projection(MetaPath{"author", "paper", "venue"})
}

// TestErrorVariants pins the non-panicking boundary: every …E variant
// returns descriptive errors for the inputs the wrappers panic on.
func TestErrorVariants(t *testing.T) {
	n := tinyDBLP()
	if _, err := n.CommutingMatrixE(MetaPath{"author"}); err == nil {
		t.Error("short path accepted")
	}
	if _, err := n.CommutingMatrixE(MetaPath{"author", "nosuch"}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := n.CommutingMatrixE(MetaPath{"author", "venue"}); err == nil {
		t.Error("schema-less hop accepted")
	}
	if _, err := n.ProjectionE(MetaPath{"author", "paper", "venue"}); err == nil {
		t.Error("asymmetric projection accepted")
	}
	if _, err := n.ProjectionE(nil); err == nil {
		t.Error("empty projection accepted")
	}
	if _, err := n.StarE("paper", "author", "term"); err == nil {
		t.Error("missing star relation accepted")
	}
	m, err := n.CommutingMatrixE(MetaPath{"author", "paper", "author"})
	if err != nil || m.At(0, 1) != 1 {
		t.Fatalf("valid path: %v, %v", m, err)
	}
}

func TestCommutingMatrixShortPathPanics(t *testing.T) {
	n := tinyDBLP()
	defer func() {
		if recover() == nil {
			t.Error("short path should panic through the wrapper")
		}
	}()
	n.CommutingMatrix(MetaPath{"author"})
}

func TestParseMetaPath(t *testing.T) {
	n := tinyDBLP()
	p, err := n.ParseMetaPath("a-p-a")
	if err != nil || p.String() != "author-paper-author" {
		t.Fatalf("ParseMetaPath = %v, %v", p, err)
	}
	if _, err := n.ParseMetaPath("a-x-a"); err == nil {
		t.Error("unknown token accepted")
	}
	if _, err := n.ParseMetaPath("a-v"); err == nil {
		t.Error("schema-less hop accepted")
	}
}

// TestEngineInvalidationOnMutation pins the epoch contract: a network
// edit after a CommutingMatrix call must invalidate the engine's
// materialization cache, never serve the stale product.
func TestEngineInvalidationOnMutation(t *testing.T) {
	n := tinyDBLP()
	apa := MetaPath{"author", "paper", "author"}
	before := n.CommutingMatrix(apa)
	if before.At(0, 1) != 1 {
		t.Fatalf("baseline co-author count = %v", before.At(0, 1))
	}
	// bob joins p0, which alice wrote: the pair now shares two papers.
	n.AddLink("paper", 0, "author", 1, 1)
	after := n.CommutingMatrix(apa)
	if after.At(0, 1) != 2 {
		t.Fatalf("post-mutation co-author count = %v, want 2 (stale cache?)", after.At(0, 1))
	}
	// Unchanged network: the same materialization comes back.
	if again := n.CommutingMatrix(apa); again != after {
		t.Error("unchanged network should serve the cached matrix")
	}
}

// TestCommutingMatrixMatchesNaive is the hin-level equivalence check:
// the engine's planned/Gram evaluation must equal the strict
// left-to-right product of Relation matrices (exactly — tinyDBLP's
// weights are integers).
func TestCommutingMatrixMatchesNaive(t *testing.T) {
	n := tinyDBLP()
	paths := []MetaPath{
		{"author", "paper", "author"},
		{"author", "paper", "venue"},
		{"venue", "paper", "author"},
		{"author", "paper", "venue", "paper", "author"},
		{"venue", "paper", "author", "paper", "venue"},
		{"paper", "author", "paper", "venue", "paper"},
	}
	for _, p := range paths {
		naive := n.Relation(p[0], p[1])
		for i := 1; i < len(p)-1; i++ {
			naive = naive.Mul(n.Relation(p[i], p[i+1]))
		}
		got := n.CommutingMatrix(p)
		if got.Rows() != naive.Rows() || got.Cols() != naive.Cols() || got.NNZ() != naive.NNZ() {
			t.Fatalf("%s: shape/nnz mismatch", p.String())
		}
		for r := 0; r < got.Rows(); r++ {
			for c := 0; c < got.Cols(); c++ {
				if got.At(r, c) != naive.At(r, c) {
					t.Fatalf("%s: (%d,%d) = %v, want %v", p.String(), r, c, got.At(r, c), naive.At(r, c))
				}
			}
		}
	}
	if st := n.PathEngine().Stats(); st.Grams == 0 {
		t.Fatalf("symmetric paths did not exercise Gram: %+v", st)
	}
}

func TestHomogeneousView(t *testing.T) {
	n := tinyDBLP()
	g, offset := n.Homogeneous()
	if g.N() != 7 {
		t.Fatalf("homogeneous N = %d, want 7", g.N())
	}
	if g.M() != 7 {
		t.Errorf("homogeneous M = %d, want 7 links", g.M())
	}
	// paper p0 connects author alice.
	p0 := offset["paper"] + 0
	a0 := offset["author"] + 0
	if !g.HasEdge(p0, a0) {
		t.Error("typed link lost in homogeneous view")
	}
	if g.Label(a0) != "author:alice" {
		t.Errorf("label = %q", g.Label(a0))
	}
}

func TestLinkCountAndHasRelation(t *testing.T) {
	n := tinyDBLP()
	if n.LinkCount("paper", "author") != 4 {
		t.Errorf("LinkCount = %d", n.LinkCount("paper", "author"))
	}
	if !n.HasRelation("author", "paper") {
		t.Error("HasRelation should merge orientations")
	}
	if n.HasRelation("author", "venue") {
		t.Error("no author-venue relation expected")
	}
}
