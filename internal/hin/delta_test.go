package hin

import (
	"math/rand"
	"reflect"
	"testing"
)

// replayNetwork rebuilds a fresh network by replaying ops, the
// from-scratch reference every incremental path must match.
type op struct {
	src  Type
	sid  int
	dst  Type
	did  int
	w    float64
	node bool   // when set, this op is AddObject(src, name)
	name string // node name
}

func replay(ops []op) *Network {
	n := NewNetwork()
	for _, o := range ops {
		if o.node {
			n.AddObject(o.src, o.name)
		} else {
			n.AddLink(o.src, o.sid, o.dst, o.did, o.w)
		}
	}
	return n
}

func sameMatrix(t *testing.T, what string, a, b interface {
	Rows() int
	Cols() int
	Dense() [][]float64
}) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		t.Fatalf("%s dims: %dx%d vs %dx%d", what, a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	if !reflect.DeepEqual(a.Dense(), b.Dense()) {
		t.Fatalf("%s entries differ", what)
	}
}

// TestApplyEdgeDeltasEquivalence drives randomized delta batches —
// interleaved with queries so the incremental merge path (not a cold
// rebuild) is what's exercised — and checks every relation and
// commuting matrix bitwise against a replayed from-scratch network.
func TestApplyEdgeDeltasEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		inc := NewNetwork()
		var ops []op
		addObj := func(ty Type, name string) {
			inc.AddObject(ty, name)
			ops = append(ops, op{src: ty, node: true, name: name})
		}
		nA, nP, nV := 4+rng.Intn(5), 6+rng.Intn(8), 2+rng.Intn(3)
		for i := 0; i < nA; i++ {
			addObj("author", string(rune('a'+i)))
		}
		for i := 0; i < nP; i++ {
			addObj("paper", string(rune('A'+i)))
		}
		for i := 0; i < nV; i++ {
			addObj("venue", string(rune('u'+i)))
		}
		addLink := func(s Type, si int, d Type, di int, w float64) {
			inc.AddLink(s, si, d, di, w)
			ops = append(ops, op{src: s, sid: si, dst: d, did: di, w: w})
		}
		for i := 0; i < 15+rng.Intn(20); i++ {
			addLink("paper", rng.Intn(nP), "author", rng.Intn(nA), float64(1+rng.Intn(3)))
		}
		for i := 0; i < nP; i++ {
			addLink("paper", i, "venue", rng.Intn(nV), 1)
		}

		apa := MetaPath{"author", "paper", "author"}
		apvpa := MetaPath{"author", "paper", "venue", "paper", "author"}
		// Materialize caches so later batches exercise the merge path.
		inc.CommutingMatrix(apa)
		inc.CommutingMatrix(apvpa)

		for batch := 0; batch < 4; batch++ {
			// Occasionally grow the object sets mid-stream.
			if rng.Intn(2) == 0 {
				addObj("author", string(rune('a'+nA)))
				nA++
			}
			var deltas []EdgeDelta
			for i := 0; i < 1+rng.Intn(8); i++ {
				d := EdgeDelta{Src: rng.Intn(nP), Dst: rng.Intn(nA), W: float64(rng.Intn(5) - 2)}
				if rng.Intn(3) == 0 {
					// Exact removal of the current total weight.
					d.W = -inc.Relation("paper", "author").At(d.Src, d.Dst)
				}
				if d.W == 0 {
					continue
				}
				deltas = append(deltas, d)
			}
			if err := inc.ApplyEdgeDeltas("paper", "author", deltas); err != nil {
				t.Fatal(err)
			}
			for _, d := range deltas {
				ops = append(ops, op{src: "paper", sid: d.Src, dst: "author", did: d.Dst, w: d.W})
			}

			ref := replay(ops)
			sameMatrix(t, "paper-author", inc.Relation("paper", "author"), ref.Relation("paper", "author"))
			sameMatrix(t, "author-paper", inc.Relation("author", "paper"), ref.Relation("author", "paper"))
			sameMatrix(t, "paper-venue", inc.Relation("paper", "venue"), ref.Relation("paper", "venue"))
			sameMatrix(t, "APA", inc.CommutingMatrix(apa), ref.CommutingMatrix(apa))
			sameMatrix(t, "APVPA", inc.CommutingMatrix(apvpa), ref.CommutingMatrix(apvpa))
		}
	}
}

func TestApplyEdgeDeltasValidation(t *testing.T) {
	n := NewNetwork()
	n.AddObject("a", "x")
	n.AddObject("b", "y")
	if err := n.ApplyEdgeDeltas("a", "b", []EdgeDelta{{Src: 0, Dst: 5, W: 1}}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	// Nothing applied: the relation is still empty.
	if n.Relation("a", "b").NNZ() != 0 {
		t.Fatal("failed batch must not mutate the network")
	}
	if err := n.ApplyEdgeDeltas("a", "b", nil); err != nil {
		t.Fatal(err)
	}
}

// TestSelectiveInvalidation checks that a delta on one relation keeps
// unrelated cached products alive (same pointer) while refreshing the
// affected ones.
func TestSelectiveInvalidation(t *testing.T) {
	n := NewNetwork()
	n.AddObject("author", "a0")
	n.AddObject("author", "a1")
	n.AddObject("paper", "p0")
	n.AddObject("paper", "p1")
	n.AddObject("venue", "v0")
	n.AddObject("term", "t0")
	n.AddLink("paper", 0, "author", 0, 1)
	n.AddLink("paper", 1, "author", 1, 1)
	n.AddLink("paper", 0, "venue", 0, 1)
	n.AddLink("paper", 1, "venue", 0, 1)
	n.AddLink("paper", 0, "term", 0, 1)

	apa := n.CommutingMatrix(MetaPath{"author", "paper", "author"})
	tpt := n.CommutingMatrix(MetaPath{"term", "paper", "term"})
	vpv := n.CommutingMatrix(MetaPath{"venue", "paper", "venue"})

	// A paper-author delta must not disturb the term/venue products.
	if err := n.ApplyEdgeDeltas("paper", "author", []EdgeDelta{{Src: 1, Dst: 0, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := n.CommutingMatrix(MetaPath{"term", "paper", "term"}); got != tpt {
		t.Fatal("T-P-T should survive a paper-author delta")
	}
	if got := n.CommutingMatrix(MetaPath{"venue", "paper", "venue"}); got != vpv {
		t.Fatal("V-P-V should survive a paper-author delta")
	}
	if got := n.CommutingMatrix(MetaPath{"author", "paper", "author"}); got == apa {
		t.Fatal("A-P-A must be rematerialized after a paper-author delta")
	}
	// Correct value: a0 and a1 now share paper p1.
	if got := n.CommutingMatrix(MetaPath{"author", "paper", "author"}).At(0, 1); got != 1 {
		t.Fatalf("A-P-A[0][1] = %v, want 1", got)
	}
}

// TestCloneIsolation checks the copy-on-write contract: mutating a
// clone never changes what the parent serves, and the clone starts
// with the parent's warm caches.
func TestCloneIsolation(t *testing.T) {
	n := NewNetwork()
	n.AddObject("author", "a0")
	n.AddObject("author", "a1")
	n.AddObject("paper", "p0")
	n.AddLink("paper", 0, "author", 0, 1)
	apa := n.CommutingMatrix(MetaPath{"author", "paper", "author"})
	pa := n.Relation("paper", "author")

	c := n.Clone()
	// Clone serves the shared matrices without recomputation.
	if c.Relation("paper", "author") != pa {
		t.Fatal("clone should share the cached relation matrix")
	}
	if c.CommutingMatrix(MetaPath{"author", "paper", "author"}) != apa {
		t.Fatal("clone should share the cached commuting matrix")
	}

	// Mutate the clone: new author, new paper, new links.
	c.AddObject("author", "a2")
	c.AddObject("paper", "p1")
	if err := c.ApplyEdgeDeltas("paper", "author", []EdgeDelta{
		{Src: 1, Dst: 0, W: 1}, {Src: 1, Dst: 2, W: 1},
	}); err != nil {
		t.Fatal(err)
	}

	// Parent is untouched.
	if n.Count("author") != 2 || n.Count("paper") != 1 {
		t.Fatalf("parent counts changed: %d authors, %d papers", n.Count("author"), n.Count("paper"))
	}
	if n.Relation("paper", "author") != pa {
		t.Fatal("parent relation cache must be unaffected")
	}
	if n.LinkCount("paper", "author") != 1 {
		t.Fatalf("parent link log grew: %d", n.LinkCount("paper", "author"))
	}

	// Clone state matches a replayed build.
	ref := NewNetwork()
	ref.AddObject("author", "a0")
	ref.AddObject("author", "a1")
	ref.AddObject("paper", "p0")
	ref.AddLink("paper", 0, "author", 0, 1)
	ref.AddObject("author", "a2")
	ref.AddObject("paper", "p1")
	ref.AddLink("paper", 1, "author", 0, 1)
	ref.AddLink("paper", 1, "author", 2, 1)
	sameMatrix(t, "clone paper-author", c.Relation("paper", "author"), ref.Relation("paper", "author"))
	sameMatrix(t, "clone APA", c.CommutingMatrix(MetaPath{"author", "paper", "author"}), ref.CommutingMatrix(MetaPath{"author", "paper", "author"}))
	if c.Lookup("author", "a2") != 2 || n.Lookup("author", "a2") != -1 {
		t.Fatal("name index isolation violated")
	}
}
