// Micro-batching queue for top-k similarity queries. Concurrent
// requests funnel into one dispatcher goroutine that coalesces them
// into a single pathsim.BatchTopK call, which fans the batch out over
// the sparse worker pool. Coalescing is "natural" by default: while one
// batch computes, new arrivals pile up in the queue and form the next
// batch, so an idle server adds no latency and a loaded server batches
// automatically. An optional window keeps a batch open a little longer
// to trade first-query latency for wider batches; the admission
// controller widens it dynamically under load (setWindow).
//
// Deadlines propagate into the kernel: each request carries its
// context, already-dead requests are dropped from a batch before the
// kernel runs, and if every rider of a batch is gone the kernel call
// itself is cancelled mid-flight.

package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hinet/internal/chaos"
	"hinet/internal/pathsim"
)

var errShutdown = errors.New("serve: server is shutting down")

// topKKernel is what the batcher dispatches a coalesced batch against:
// a single-process *pathsim.Index, or the sharded tier's scatter-gather
// coordinator (clusterKernel). Either way one call answers the whole
// deduplicated batch.
type topKKernel interface {
	Dim() int
	BatchTopKCtx(ctx context.Context, xs []int, k int) ([][]pathsim.Pair, error)
}

type topKReq struct {
	ctx     context.Context // caller's context: deadline + disconnect signal
	x, k    int
	kern    topKKernel // kernel the query runs against
	pathKey string     // resolved path string (group + cache key component)
	epoch   int64      // epoch of the snapshot the kernel belongs to
	out     chan topKResp
}

type topKResp struct {
	pairs  []pathsim.Pair
	epoch  int64
	batch  int           // size of the coalesced batch this query rode in
	kernel time.Duration // wall time of the BatchTopK call that answered it
	err    error
}

// batcher owns the queue and the single dispatcher goroutine.
type batcher struct {
	queue    chan topKReq
	maxBatch int
	windowNS atomic.Int64 // coalescing window in ns (adaptive, see setWindow)
	inj      *chaos.Injector
	quit     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	batches atomic.Uint64 // BatchTopK calls issued
	queries atomic.Uint64 // requests answered through batches
	unique  atomic.Uint64 // distinct ids actually computed (post-dedup)
	largest atomic.Int64  // widest batch observed (in requests)
}

func newBatcher(maxBatch int, window time.Duration, inj *chaos.Injector) *batcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	b := &batcher{
		queue:    make(chan topKReq, 4*maxBatch),
		maxBatch: maxBatch,
		inj:      inj,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	b.windowNS.Store(int64(window))
	go b.run()
	return b
}

// setWindow adjusts the coalescing window; the admission controller
// calls it each tick to widen batches while the limit is depressed.
func (b *batcher) setWindow(d time.Duration) { b.windowNS.Store(int64(d)) }

// TopK submits one query against req.ix and blocks until its batch is
// answered, the context is canceled, or the batcher shuts down.
func (b *batcher) TopK(ctx context.Context, req topKReq) (topKResp, error) {
	if err := ctx.Err(); err != nil {
		return topKResp{}, err
	}
	out := make(chan topKResp, 1)
	req.ctx = ctx
	req.out = out
	select {
	case b.queue <- req:
	case <-b.quit:
		return topKResp{}, errShutdown
	case <-ctx.Done():
		return topKResp{}, ctx.Err()
	}
	select {
	case resp := <-out:
		return resp, resp.err
	case <-ctx.Done():
		// The dispatcher will still complete (or drop) the query into
		// the buffered out channel; nothing leaks.
		return topKResp{}, ctx.Err()
	case <-b.quit:
		// The dispatcher may already be gone (the enqueue above can
		// win a race against a closed quit); don't wait on a reply
		// that will never come.
		return topKResp{}, errShutdown
	}
}

// stop ends the dispatcher and fails any queued requests. Callers must
// stop accepting new TopK submissions first (the HTTP server is drained
// before stop runs).
func (b *batcher) stop() {
	b.stopOnce.Do(func() { close(b.quit) })
	<-b.done
}

// stopCtx is stop with a deadline: it signals shutdown and waits for
// the dispatcher to finish at most until ctx expires, so Shutdown
// stays bounded even if a kernel call is mid-flight.
func (b *batcher) stopCtx(ctx context.Context) error {
	b.stopOnce.Do(func() { close(b.quit) })
	select {
	case <-b.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (b *batcher) run() {
	defer close(b.done)
	for {
		select {
		case <-b.quit:
			b.drain()
			return
		case first := <-b.queue:
			batch := append(make([]topKReq, 0, b.maxBatch), first)
			b.flush(b.fill(batch))
		}
	}
}

// fill widens the batch: first a greedy drain of everything queued,
// then a cooperative-yield phase so clients that are runnable but not
// yet scheduled (typically ones just woken by the previous flush) get
// to enqueue — on an idle server the yield is a near no-op, under load
// it is what lets batches form on few-core hosts, where the scheduler's
// direct handoff would otherwise wake the dispatcher after every single
// enqueue. Finally, if a window is configured, the batch stays open up
// to window for stragglers.
func (b *batcher) fill(batch []topKReq) []topKReq {
	batch = b.drainInto(batch)
	for i := 0; i < 2 && len(batch) < b.maxBatch; i++ {
		n := len(batch)
		runtime.Gosched()
		batch = b.drainInto(batch)
		if len(batch) == n {
			break
		}
	}
	window := time.Duration(b.windowNS.Load())
	if window <= 0 || len(batch) >= b.maxBatch {
		return batch
	}
	timer := time.NewTimer(window)
	defer timer.Stop()
	for len(batch) < b.maxBatch {
		select {
		case r := <-b.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-b.quit:
			return batch
		}
	}
	return batch
}

// drainInto moves everything currently queued into batch, up to the
// batch cap, without blocking.
func (b *batcher) drainInto(batch []topKReq) []topKReq {
	for len(batch) < b.maxBatch {
		select {
		case r := <-b.queue:
			batch = append(batch, r)
		default:
			return batch
		}
	}
	return batch
}

// flush answers one coalesced batch. Requests are grouped by the
// (epoch, path) of the index they target — a rebuild or a mix of path=
// parameters inside one batch never cross-pollinates — and each group
// runs as one BatchTopK call: requests whose id falls outside the index
// get an error, the rest deduplicate by id (concurrent askers of the
// same object share one computation, singleflight-style) at the widest
// requested k, trimmed back to each request's own k on delivery.
func (b *batcher) flush(batch []topKReq) {
	groups := make(map[string][]topKReq)
	order := make([]string, 0, 1)
	for _, r := range batch {
		key := fmt.Sprintf("%d|%s", r.epoch, r.pathKey)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], r)
	}
	for _, key := range order {
		b.flushGroup(groups[key])
	}
}

// flushGroup answers one same-index group of a batch. Requests whose
// context is already dead are dropped before the kernel runs (their
// waiter has moved on; the buffered out channel absorbs the reply), and
// a watcher cancels the kernel mid-flight if every remaining rider
// disconnects while it computes — a batch never outlives all of its
// askers.
func (b *batcher) flushGroup(group []topKReq) {
	kern := group[0].kern
	n := kern.Dim()
	xs := make([]int, 0, len(group))
	slot := make(map[int]int, len(group)) // id → index in xs
	live := make([]topKReq, 0, len(group))
	kmax := 0
	for _, r := range group {
		if r.ctx != nil && r.ctx.Err() != nil {
			r.out <- topKResp{err: r.ctx.Err()}
			continue
		}
		if r.x < 0 || r.x >= n {
			r.out <- topKResp{err: fmt.Errorf("serve: id %d out of range [0,%d)", r.x, n)}
			continue
		}
		if r.k > kmax {
			kmax = r.k
		}
		if _, ok := slot[r.x]; !ok {
			slot[r.x] = len(xs)
			xs = append(xs, r.x)
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}

	// Kernel context: cancelled once ALL live riders are gone. The
	// watcher waits on each rider's Done in turn — order is irrelevant,
	// all of them must fire — and exits via stop on normal completion.
	// A rider with a non-cancellable context (nil Done) parks the
	// watcher until stop: the kernel then always runs to completion,
	// which is the correct behavior when someone still wants the answer.
	kctx, cancel := context.WithCancel(context.Background())
	stop := make(chan struct{})
	go func() {
		for _, r := range live {
			var dc <-chan struct{}
			if r.ctx != nil {
				dc = r.ctx.Done()
			}
			select {
			case <-dc:
			case <-stop:
				return
			}
		}
		cancel()
	}()

	if d := b.inj.KernelDelay(); d > 0 {
		time.Sleep(d)
	}
	kstart := time.Now()
	res, err := kern.BatchTopKCtx(kctx, xs, kmax)
	kernel := time.Since(kstart)
	close(stop)
	cancel()
	if err != nil {
		// Abandoned mid-flight: every rider already left, but deliver
		// the error anyway (buffered channels) for uniformity.
		for _, r := range live {
			r.out <- topKResp{err: err}
		}
		return
	}
	b.batches.Add(1)
	b.queries.Add(uint64(len(live)))
	b.unique.Add(uint64(len(xs)))
	if w := int64(len(live)); w > b.largest.Load() {
		b.largest.Store(w)
	}
	for _, r := range live {
		pairs := res[slot[r.x]]
		if r.k < len(pairs) {
			pairs = pairs[:r.k]
		}
		r.out <- topKResp{pairs: pairs, epoch: r.epoch, batch: len(live), kernel: kernel}
	}
}

// drain fails everything still queued at shutdown.
func (b *batcher) drain() {
	for {
		select {
		case r := <-b.queue:
			r.out <- topKResp{err: errShutdown}
		default:
			return
		}
	}
}
