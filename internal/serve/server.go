// Package serve is the online query-serving subsystem: it turns the
// library's batch kernels into a long-running HTTP JSON service, the
// paper's "mine knowledge interactively" reading of ranking, clustering
// and similarity search (§2, §4, §7b as query-time primitives).
//
// Three pieces cooperate:
//
//   - a snapshot Store (snapshot.go) materializes immutable model
//     artifacts — PageRank/HITS vectors, RankClus and NetClus cluster
//     models, a prebuilt PathSim index — and swaps generations
//     atomically, so rebuilds never block queries; each snapshot also
//     carries its network's meta-path engine (internal/metapath), so
//     /v1/pathsim/topk serves arbitrary path= meta-paths, planned and
//     materialized on first use and answered from cache afterwards;
//   - a sharded LRU Cache (cache.go) answers hot queries from memory,
//     keyed by (snapshot epoch, path, query) so a swap invalidates
//     implicitly;
//   - a micro-batching queue (batch.go) coalesces concurrent top-k
//     queries into per-(epoch, path) pathsim.BatchTopK calls that fan
//     out over the shared sparse worker pool.
//
// Every request is traced (internal/obs): the route wrapper mints one
// span trace per request, handlers chain named stage spans through it,
// and Finish feeds per-endpoint-per-stage histograms (/metrics,
// /v1/stats) plus the slow-query log (/v1/debug/slowlog). Appending
// debug=1 to any query echoes the request's own span tree in the
// response.
//
// Endpoints: /healthz, /metrics, /v1/stats, /v1/rank, /v1/clusters,
// /v1/pathsim/topk, /v1/cluster/shards, POST /v1/rebuild, POST
// /v1/ingest, and /v1/debug/slowlog (plus /debug/pprof/* when
// Options.Pprof is set).
// See docs/ARCHITECTURE.md ("Serving layer") and the README quickstart.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hinet/internal/chaos"
	"hinet/internal/cluster"
	"hinet/internal/dblp"
	"hinet/internal/eval"
	"hinet/internal/hin"
	"hinet/internal/ingest"
	"hinet/internal/obs"
	"hinet/internal/pathsim"
	"hinet/internal/sparse"
)

// Options configures a Server.
type Options struct {
	Addr   string      // listen address (default ":8080")
	Seed   int64       // seed of the startup snapshot (default 1)
	Models ModelConfig // snapshot contents (corpus size, cluster count)

	// Sharded serving tier (internal/cluster): Shards > 1 partitions the
	// PathSim candidate space over that many in-process shards behind a
	// scatter-gather coordinator; answers are bitwise-identical to the
	// single-process path. ShardPolicy picks the single-shard routing
	// policy ("", "round-robin", "least-loaded", "key-affinity").
	Shards      int
	ShardPolicy string

	CacheCapacity int           // result cache entries; 0 = 4096, < 0 disables
	CacheShards   int           // cache shards (default 16)
	MaxBatch      int           // top-k coalescing cap (default 64)
	BatchWindow   time.Duration // extra wait to widen batches (default 0: natural coalescing)
	Workers       int           // sparse pool worker cap (0 = leave as configured)
	MaxConcurrent int           // admission ceiling for heavy queries (default 4×workers)
	AdmissionWait time.Duration // max time queued for admission before 503 (default 5s, < 0 fail-fast)

	// Overload protection (see admission.go and the OPERATIONS.md
	// runbook). The adaptive limiter walks the effective concurrency
	// limit between AdmissionFloor and MaxConcurrent, comparing the
	// windowed p99 of admitted query requests against SLOTargetP99
	// every ControlInterval.
	DefaultTimeout  time.Duration // per-request deadline when the client sends no timeout_ms (0 = none)
	SLOTargetP99    time.Duration // admission controller's p99 target (default 150ms)
	AdmissionFloor  int           // lowest adaptive limit (default max(1, MaxConcurrent/8))
	ControlInterval time.Duration // controller tick (default 100ms; < 0 disables the controller)
	BatchWindowMax  time.Duration // widest adaptive batch window under overload (default 2ms)
	BrownoutEnter   int           // consecutive over-target ticks before brownout (default 5)
	BrownoutExit    int           // consecutive healthy ticks before recovery (default 10)
	BrownoutK       int           // top-k truncation during brownout (default 5)

	Chaos *chaos.Injector // deterministic fault injection (tests; nil in production)

	Pprof   bool // expose net/http/pprof under /debug/pprof/
	NoTrace bool // disable per-request span traces (stage histograms and slowlog stay empty)
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = ":8080"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 4096
	}
	if o.CacheShards == 0 {
		o.CacheShards = 16
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	if o.AdmissionWait == 0 {
		o.AdmissionWait = 5 * time.Second
	}
	if o.SLOTargetP99 == 0 {
		o.SLOTargetP99 = 150 * time.Millisecond
	}
	if o.ControlInterval == 0 {
		o.ControlInterval = 100 * time.Millisecond
	}
	if o.BatchWindowMax == 0 {
		o.BatchWindowMax = 2 * time.Millisecond
	}
	if o.BatchWindowMax < o.BatchWindow {
		o.BatchWindowMax = o.BatchWindow
	}
	if o.BrownoutEnter == 0 {
		o.BrownoutEnter = 5
	}
	if o.BrownoutExit == 0 {
		o.BrownoutExit = 10
	}
	if o.BrownoutK == 0 {
		o.BrownoutK = 5
	}
	return o
}

// Server wires the store, cache, batcher and admission controller
// behind an http.Handler.
type Server struct {
	opts  Options
	store *Store
	cache *Cache
	batch *batcher
	met   *metrics
	obs   *obs.Registry
	ing   ingestStats
	adm   *admission
	rejAd atomic.Uint64 // heavy requests rejected at admission
	mux   *http.ServeMux
	hs    *http.Server
	ln    net.Listener

	coord   *cluster.Coordinator // scatter-gather tier (nil when Shards <= 1)
	writeMu sync.Mutex           // orders coordinator-first write fan-out against the store

	shutOnce sync.Once
	shutErr  error
}

// ingestStats counts the ingestion write path (see /metrics and
// /v1/stats).
type ingestStats struct {
	batches  atomic.Uint64 // accepted delta batches
	deltas   atomic.Uint64 // deltas in accepted batches
	rejected atomic.Uint64 // batches rejected by validation
	nanos    atomic.Int64  // cumulative apply+rebuild time
}

// New builds a server and materializes its first snapshot synchronously,
// so the returned server is immediately healthy. Call Shutdown to
// release the batcher goroutine.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	if opts.Workers > 0 {
		sparse.Parallelism(opts.Workers)
	}
	if opts.MaxConcurrent == 0 {
		opts.MaxConcurrent = 4 * sparse.Parallelism(0)
	}
	if opts.AdmissionFloor == 0 {
		opts.AdmissionFloor = max(1, opts.MaxConcurrent/8)
	}
	s := &Server{
		opts:  opts,
		store: NewStore(opts.Models),
		cache: NewCache(opts.CacheCapacity, opts.CacheShards),
		obs:   obs.NewRegistry(obs.Options{}),
		mux:   http.NewServeMux(),
	}
	s.adm = newAdmission(opts.AdmissionFloor, opts.MaxConcurrent,
		opts.SLOTargetP99, opts.ControlInterval, opts.BrownoutEnter, opts.BrownoutExit)
	s.store.Rebuild(opts.Seed)
	if opts.Shards > 1 {
		// The sharded tier boots from the same seed and spec, so every
		// shard is a replica of the store's generation; the partition
		// balances per-shard candidate work by row nnz of the prebuilt
		// index.
		policy, err := cluster.NewPolicy(opts.ShardPolicy)
		if err != nil {
			panic("serve: " + err.Error())
		}
		snap := s.store.Current()
		part := cluster.PartitionByNNZ(string(pathAPVPA[0]), snap.PathSim.Dim(),
			opts.Shards, snap.PathSim.M.RowNNZ)
		coord, err := cluster.NewLocalCluster(opts.Shards, part,
			cluster.ModelSpec{Corpus: opts.Models.Corpus, K: opts.Models.K, Restarts: opts.Models.Restarts},
			policy, opts.Seed)
		if err != nil {
			panic("serve: sharded boot: " + err.Error())
		}
		s.coord = coord
	}
	s.batch = newBatcher(opts.MaxBatch, opts.BatchWindow, opts.Chaos)
	if opts.ControlInterval > 0 {
		go s.controlLoop()
	} else {
		close(s.adm.done) // no controller goroutine to wait for at shutdown
	}
	s.met = newMetrics(
		"/healthz", "/metrics", "/v1/stats", "/v1/rank", "/v1/clusters",
		"/v1/pathsim/topk", "/v1/rebuild", "/v1/ingest", "/v1/debug/slowlog",
		"/v1/cluster/shards",
	)
	// Every endpoint's trace family and stage plan is declared here, at
	// boot, so the /metrics and /v1/stats series sets are fixed for the
	// process lifetime and the request path never mutates registry maps.
	for e := range s.met.endpoints {
		s.obs.Family(e)
	}
	s.obs.Family("/v1/stats").Declare("collect", "serialize")
	s.obs.Family("/v1/cluster/shards").Declare("collect", "serialize")
	s.obs.Family("/v1/rank").Declare("params", "rank", "render", "serialize")
	s.obs.Family("/v1/clusters").Declare("params", "cluster", "score", "serialize")
	s.obs.Family("/v1/pathsim/topk").Declare(
		"admission", "params", "resolve", "query", "cache", "batch", "kernel", "render", "serialize")
	s.obs.Family("/v1/rebuild").Declare("admission", "params", "rebuild", "serialize")
	s.obs.Family("/v1/ingest").Declare("admission", "decode", "apply", "serialize")

	s.route("/healthz", classCritical, s.handleHealthz)
	s.route("/metrics", classCritical, s.handleMetrics)
	s.route("/v1/stats", classCheap, s.handleStats)
	s.route("/v1/rank", classCheap, s.handleRank)
	s.route("/v1/clusters", classCheap, s.handleClusters)
	s.route("/v1/pathsim/topk", classQuery, s.handleTopK)
	s.route("/v1/rebuild", classWrite, s.handleRebuild)
	s.route("/v1/ingest", classWrite, s.handleIngest)
	s.route("/v1/debug/slowlog", classCheap, s.handleSlowlog)
	s.route("/v1/cluster/shards", classCheap, s.handleClusterShards)
	if opts.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the live snapshot.
func (s *Server) Snapshot() *Snapshot { return s.store.Current() }

// Start listens on opts.Addr (":0" picks a free port) and serves in a
// background goroutine. It returns the bound address.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s.mux}
	go func() { _ = s.hs.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown drains in-flight HTTP requests, stops the admission
// controller, and drains the batching queue — every phase bounded by
// ctx's deadline, so a wedged in-flight batch cannot hang the caller.
// Safe to call whether or not Start was used; idempotent: the second
// and later calls are no-ops returning the first call's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		var err error
		if s.hs != nil {
			err = s.hs.Shutdown(ctx)
		}
		s.adm.stop()
		if berr := s.batch.stopCtx(ctx); err == nil {
			err = berr
		}
		s.shutErr = err
	})
	return s.shutErr
}

// controlLoop drives the admission controller: every tick, one AIMD
// step against the latest latency window and pool backlog, then the
// batch window tracks the limit (full window at the floor, configured
// base at the ceiling).
func (s *Server) controlLoop() {
	defer close(s.adm.done)
	t := time.NewTicker(s.adm.interval)
	defer t.Stop()
	for {
		select {
		case <-s.adm.quit:
			return
		case <-t.C:
			s.controlStep()
		}
	}
}

// controlStep is one controller tick (exposed separately so tests can
// drive the control loop deterministically with ControlInterval < 0).
func (s *Server) controlStep() {
	s.adm.step(sparse.QueueDepth())
	s.batch.setWindow(s.adaptiveWindow())
}

// adaptiveWindow interpolates the batch window linearly between the
// configured base (at the ceiling) and BatchWindowMax (at the floor):
// the more the limiter squeezes concurrency, the longer batches stay
// open, trading first-query latency for wider, cheaper kernel calls.
func (s *Server) adaptiveWindow() time.Duration {
	base, widest := s.opts.BatchWindow, s.opts.BatchWindowMax
	span := s.adm.ceil - s.adm.floor
	if span <= 0 || widest <= base {
		return base
	}
	frac := float64(s.adm.ceil-s.adm.Limit()) / float64(span)
	return base + time.Duration(frac*float64(widest-base))
}

// route registers an instrumented handler: each request gets a span
// trace (unless Options.NoTrace) carried in the statusRecorder, and the
// wrapper finishes it — closing any span the handler left open, feeding
// the stage histograms and the slowlog — before recording the endpoint
// counters. Heavy endpoints (classQuery, classWrite) additionally get
// their per-request deadline installed (timeout_ms or DefaultTimeout),
// pass through the admission limiter under an "admission" span, and —
// when admitted and successful — feed the controller's latency signal.
func (s *Server) route(pattern, class string, h http.HandlerFunc) {
	st := s.met.get(pattern)
	heavy := class == classQuery || class == classWrite
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		var start time.Time
		var tr *obs.Trace
		if s.opts.NoTrace {
			start = time.Now()
		} else {
			tr = s.obs.StartTrace(pattern)
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK, tr: tr}
		admitted := false
		finish := func() {
			d := tr.Finish(rec.code)
			if tr == nil {
				d = time.Since(start)
			}
			st.observe(rec.code, d)
			if rec.code == http.StatusGatewayTimeout {
				s.adm.timeouts.Add(1)
			}
			if admitted && class == classQuery && rec.code < 400 {
				// The controller's feedback signal: full-request latency
				// (admission wait included — queueing delay is exactly
				// what the limiter must react to) of successful queries.
				s.adm.lat.Observe(d)
			}
		}
		if heavy {
			// Deadline propagation starts here: the ctx flows through
			// admission → batcher → materialization → kernel dispatch.
			if d := s.requestTimeout(r); d > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), d)
				defer cancel()
				r = r.WithContext(ctx)
			}
			if fail, delay := s.opts.Chaos.RequestFault(); fail || delay > 0 {
				if delay > 0 {
					time.Sleep(delay)
				}
				if fail {
					httpError(rec, http.StatusInternalServerError, "chaos: injected fault")
					finish()
					return
				}
			}
			ad := tr.Start("admission")
			release, code, msg := s.admit(r, class)
			tr.End(ad)
			if release == nil {
				if msg == "" {
					s.shed(rec, class)
				} else {
					httpError(rec, code, "%s", msg)
				}
				finish()
				return
			}
			admitted = true
			defer release()
		}
		h(rec, r)
		finish()
	})
}

// requestTimeout resolves the request's deadline: an explicit
// timeout_ms query parameter wins, otherwise Options.DefaultTimeout
// (0 = none). The RawQuery substring probe keeps the common
// no-timeout-configured path completely allocation-free.
func (s *Server) requestTimeout(r *http.Request) time.Duration {
	if strings.Contains(r.URL.RawQuery, "timeout_ms") {
		if v := r.URL.Query().Get("timeout_ms"); v != "" {
			if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
				return time.Duration(ms) * time.Millisecond
			}
		}
	}
	return s.opts.DefaultTimeout
}

// admit acquires an admission slot for the given class, waiting at most
// opts.AdmissionWait (negative: fail fast, no queueing). On success it
// returns the release function; on rejection it returns a nil release
// with the response status — 503 with an empty msg means "shed, use the
// machine-readable overload body", 504 means the request's own deadline
// expired while queued. Bounding the wait is what turns saturation into
// prompt, visible 503s instead of an unbounded queue of hung requests.
//
// Class policy: writes (ingest/rebuild) shed without queueing whenever
// the server is degraded or inflight is at 3/4 of the adaptive limit —
// they are the first load to go, protecting query capacity.
func (s *Server) admit(r *http.Request, class string) (release func(), code int, msg string) {
	a := s.adm
	if class == classWrite {
		lim := int(a.limit.Load())
		if a.degraded.Load() || int(a.inflight.Load()) >= (lim*3+3)/4 {
			a.shedWrite.Add(1)
			s.rejAd.Add(1)
			return nil, http.StatusServiceUnavailable, ""
		}
	}
	// Fast path: a free slot costs no timer.
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return func() { a.inflight.Add(-1); <-a.sem }, 0, ""
	default:
	}
	if s.opts.AdmissionWait < 0 {
		a.shedFor(class)
		s.rejAd.Add(1)
		return nil, http.StatusServiceUnavailable, ""
	}
	t := time.NewTimer(s.opts.AdmissionWait)
	defer t.Stop()
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return func() { a.inflight.Add(-1); <-a.sem }, 0, ""
	case <-t.C:
		a.shedFor(class)
		s.rejAd.Add(1)
		return nil, http.StatusServiceUnavailable, ""
	case <-r.Context().Done():
		if errors.Is(r.Context().Err(), context.DeadlineExceeded) {
			return nil, http.StatusGatewayTimeout, "deadline exceeded while queued for admission"
		}
		return nil, http.StatusServiceUnavailable, "request canceled while queued for admission"
	}
}

// shedFor attributes one shed to the class's counter.
func (a *admission) shedFor(class string) {
	if class == classWrite {
		a.shedWrite.Add(1)
	} else {
		a.shedQuery.Add(1)
	}
}

// shed writes the machine-readable overload response every shed path
// shares: a Retry-After header (seconds, for generic clients) plus a
// JSON body with the class that was shed and a millisecond-resolution
// backoff hint (loadgen honors it in closed-loop mode).
func (s *Server) shed(w http.ResponseWriter, class string) {
	ms := s.adm.retryAfterMS()
	w.Header().Set("Retry-After", strconv.Itoa((ms+999)/1000))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":          "overloaded",
		"class":          class,
		"retry_after_ms": ms,
	})
}

type statusRecorder struct {
	http.ResponseWriter
	code int
	tr   *obs.Trace // this request's trace (nil when tracing is off)
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// traceOf recovers the request's trace from the writer the route
// wrapper installed. Handlers invoked outside route (none today) just
// get nil, which the whole obs API tolerates.
func traceOf(w http.ResponseWriter) *obs.Trace {
	if rec, ok := w.(*statusRecorder); ok {
		return rec.tr
	}
	return nil
}

// debugTrace echoes the request's own span tree into the payload when
// the client asked for it with debug=1. The trace is still open — the
// serialize span is rendered up to "now" — which is exactly what the
// client can observe from inside the request.
func debugTrace(q url.Values, tr *obs.Trace, payload map[string]any) map[string]any {
	if tr != nil && q.Get("debug") == "1" {
		payload["trace"] = tr.Snapshot()
	}
	return payload
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// intParam parses an integer query parameter with a default. Handlers
// parse the URL query once and pass the values in (url.Query re-parses
// and re-allocates on every call).
func intParam(q url.Values, name string, def int) (int, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return n, nil
}

// scoredObject is one (id, name, score) row of a JSON answer.
type scoredObject struct {
	ID    int     `json:"id"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// topK is the shared cache→batcher query path, also driven directly by
// the serving benchmarks. The query runs against kern (a single-process
// index resolved from snap, or the scatter-gather coordinator pinned to
// snap's epoch); the cache key carries the snapshot epoch and the path,
// so neither a rebuild nor a different path can ever serve a stale or
// foreign answer. It returns the answer, the epoch it came from, and
// whether it was a cache hit.
//
// A trace carried by ctx gets child spans under the caller's open span:
// "cache" (noted hit/miss), then on a miss "batch" covering queue wait
// plus compute, with a "kernel" child pinned to the BatchTopK wall time
// measured by the dispatcher.
func (s *Server) topK(ctx context.Context, snap *Snapshot, kern topKKernel, pathKey string, x, k int) ([]pathsim.Pair, int64, bool, error) {
	tr := obs.FromContext(ctx)
	key := topKKey(snap.Epoch, pathKey, x, k)
	sp := tr.Start("cache")
	if v, ok := s.cache.Get(key); ok {
		tr.Note("hit")
		tr.End(sp)
		return v.([]pathsim.Pair), snap.Epoch, true, nil
	}
	tr.Note("miss")
	sp = tr.Next(sp, "batch")
	resp, err := s.batch.TopK(ctx, topKReq{x: x, k: k, kern: kern, pathKey: pathKey, epoch: snap.Epoch})
	if err != nil {
		tr.End(sp)
		return nil, 0, false, err
	}
	tr.AddTimed(sp, "kernel", resp.kernel)
	tr.End(sp)
	// Batch results alias one shared arena (pathsim.BatchTopK); clone
	// before caching so one retained entry cannot pin its whole batch's
	// backing array for the cache entry's lifetime.
	pairs := slices.Clone(resp.pairs)
	s.cache.Put(topKKey(resp.epoch, pathKey, x, k), pairs)
	return pairs, resp.epoch, false, nil
}

// TopK is the exported form of the cached, batched query path, against
// the current snapshot's prebuilt APVPA index (scatter-gathered across
// the shards when the server is sharded).
func (s *Server) TopK(ctx context.Context, x, k int) ([]pathsim.Pair, bool, error) {
	snap := s.store.Current()
	if snap == nil {
		return nil, false, fmt.Errorf("no snapshot available")
	}
	kern, pathKey := s.defaultKernel(snap)
	pairs, _, hit, err := s.topK(ctx, snap, kern, pathKey, x, k)
	return pairs, hit, err
}

func topKKey(epoch int64, path string, x, k int) string {
	return fmt.Sprintf("topk|%d|%s|%d|%d", epoch, path, x, k)
}

// --- handlers --------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.store.Current() == nil {
		httpError(w, http.StatusServiceUnavailable, "no snapshot")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

// handleSlowlog serves the trace retention buffers: the N slowest
// completed requests since boot and the N most recent, as span trees.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	log := s.obs.Log()
	render := func(traces []*obs.Trace) []*obs.TraceJSON {
		out := make([]*obs.TraceJSON, len(traces))
		for i, t := range traces {
			out[i] = t.Snapshot()
		}
		return out
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"slowest": render(log.Slowest()),
		"recent":  render(log.Recent()),
	})
}

// latencyStats summarizes request and stage latency quantiles for
// /v1/stats. The key set is static — every endpoint and every declared
// stage is always present, populated or not — so the response shape
// never depends on which requests happened to arrive first (the replay
// harness digests response shapes).
func (s *Server) latencyStats() map[string]any {
	quant := func(h *obs.Hist) map[string]any {
		return map[string]any{
			"count":  h.Count(),
			"p50_us": float64(h.Quantile(0.50)) / 1e3,
			"p95_us": float64(h.Quantile(0.95)) / 1e3,
			"p99_us": float64(h.Quantile(0.99)) / 1e3,
		}
	}
	out := make(map[string]any)
	for _, f := range s.obs.Families() {
		entry := quant(s.met.get(f.Name()).lat)
		stages := make(map[string]any)
		for _, stage := range f.Stages() {
			stages[stage] = quant(f.Stage(stage))
		}
		entry["stages"] = stages
		out[f.Name()] = entry
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Current()
	if snap == nil {
		httpError(w, http.StatusServiceUnavailable, "no snapshot")
		return
	}
	tr := traceOf(w)
	sp := tr.Start("collect")
	q := r.URL.Query()
	objects := map[string]int{}
	for _, t := range snap.Corpus.Net.Types() {
		objects[string(t)] = snap.Corpus.Net.Count(t)
	}
	es := snap.Engine().Stats()
	payload := map[string]any{
		"epoch":         snap.Epoch,
		"seed":          snap.Seed,
		"built_at":      snap.BuiltAt.UTC().Format(time.RFC3339Nano),
		"build_seconds": snap.BuildTime.Seconds(),
		"objects":       objects,
		"pathsim": map[string]int{
			"dim": snap.PathSim.Dim(),
			"nnz": snap.PathSim.NNZ(),
		},
		"metapath": map[string]any{
			"cache_hits":      es.Hits,
			"cache_misses":    es.Misses,
			"cache_entries":   es.Entries,
			"products":        es.Products,
			"gram_products":   es.Grams,
			"transposes":      es.Transposes,
			"product_seconds": es.ProductTime.Seconds(),
			"gram_seconds":    es.GramTime.Seconds(),
		},
		"cache": s.cache.Stats(),
		"ingest": map[string]any{
			"batches":       s.ing.batches.Load(),
			"deltas":        s.ing.deltas.Load(),
			"rejected":      s.ing.rejected.Load(),
			"apply_seconds": time.Duration(s.ing.nanos.Load()).Seconds(),
		},
		"batch": map[string]uint64{
			"batches": s.batch.batches.Load(),
			"queries": s.batch.queries.Load(),
			"unique":  s.batch.unique.Load(),
			"largest": uint64(s.batch.largest.Load()),
		},
		"latency":            s.latencyStats(),
		"cluster":            s.clusterStats(snap),
		"workers":            sparse.Parallelism(0),
		"max_concurrent":     cap(s.adm.sem),
		"admission_rejected": s.rejAd.Load(),
		"admission": map[string]any{
			"limit":              s.adm.Limit(),
			"floor":              s.adm.floor,
			"ceiling":            s.adm.ceil,
			"inflight":           s.adm.inflight.Load(),
			"degraded":           s.adm.Degraded(),
			"windowed_p99_us":    float64(s.adm.windowedP99.Load()) / 1e3,
			"slo_target_p99_us":  float64(s.adm.slo) / 1e3,
			"shed_query":         s.adm.shedQuery.Load(),
			"shed_write":         s.adm.shedWrite.Load(),
			"brownouts":          s.adm.brownouts.Load(),
			"degraded_responses": s.adm.degradedServed.Load(),
			"timeouts":           s.adm.timeouts.Load(),
		},
	}
	tr.Next(sp, "serialize")
	writeJSON(w, http.StatusOK, debugTrace(q, tr, payload))
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Current()
	if snap == nil {
		httpError(w, http.StatusServiceUnavailable, "no snapshot")
		return
	}
	tr := traceOf(w)
	sp := tr.Start("params")
	q := r.URL.Query()
	top, err := intParam(q, "top", 10)
	if err != nil || top < 0 {
		httpError(w, http.StatusBadRequest, "top must be a non-negative integer")
		return
	}
	metric := q.Get("metric")
	if metric == "" {
		metric = "pagerank"
	}
	sp = tr.Next(sp, "rank")
	var pairs []pathsim.Pair
	var iters int
	var converged bool
	if s.coord != nil {
		// Sharded: each shard contributes the top of its owned id range
		// of the (replica) score vector; the merge reproduces the
		// single-process stats.TopK order exactly. The metric is
		// validated here so a bad one never scatters (and the 400 bytes
		// match the single-process switch below).
		switch metric {
		case "pagerank", "authority", "hub":
		default:
			httpError(w, http.StatusBadRequest, "unknown metric %q (want pagerank|authority|hub)", metric)
			return
		}
		ctx := r.Context()
		if tr != nil {
			ctx = obs.WithTrace(ctx, tr)
		}
		// Shards retain one previous generation, so two writes landing
		// between the snapshot load above and the scatter can evict
		// snap.Epoch; mirror Coordinator.TopK and retry once from a
		// freshly loaded snapshot before giving up.
		for attempt := 0; ; attempt++ {
			var err error
			pairs, iters, converged, err = s.coord.RankAt(ctx, snap.Epoch, metric, top)
			if err == nil {
				break
			}
			var ee *cluster.EpochError
			if attempt == 0 && errors.As(err, &ee) {
				if fresh := s.store.Current(); fresh != nil && fresh.Epoch != snap.Epoch {
					snap = fresh
					continue
				}
			}
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
	} else {
		var scores []float64
		var ids []int
		switch metric {
		case "pagerank":
			scores, iters, converged = snap.PageRank.Scores, snap.PageRank.Iterations, snap.PageRank.Converged
			ids = snap.PageRank.TopK(top)
		case "authority":
			scores, iters, converged = snap.HITS.Authority, snap.HITS.Iterations, snap.HITS.Converged
			ids = snap.HITS.TopAuthorities(top)
		case "hub":
			scores, iters, converged = snap.HITS.Hub, snap.HITS.Iterations, snap.HITS.Converged
			ids = snap.HITS.TopHubs(top)
		default:
			httpError(w, http.StatusBadRequest, "unknown metric %q (want pagerank|authority|hub)", metric)
			return
		}
		pairs = make([]pathsim.Pair, 0, len(ids))
		for _, id := range ids {
			pairs = append(pairs, pathsim.Pair{ID: id, Score: scores[id]})
		}
	}
	sp = tr.Next(sp, "render")
	rows := make([]scoredObject, 0, len(pairs))
	for _, p := range pairs {
		rows = append(rows, scoredObject{ID: p.ID, Name: snap.Corpus.Net.Name(dblp.TypeAuthor, p.ID), Score: p.Score})
	}
	payload := map[string]any{
		"metric":     metric,
		"graph":      pathAPA.String(),
		"epoch":      snap.Epoch,
		"iterations": iters,
		"converged":  converged,
		"top":        rows,
	}
	tr.Next(sp, "serialize")
	writeJSON(w, http.StatusOK, debugTrace(q, tr, payload))
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Current()
	if snap == nil {
		httpError(w, http.StatusServiceUnavailable, "no snapshot")
		return
	}
	tr := traceOf(w)
	sp := tr.Start("params")
	q := r.URL.Query()
	top, err := intParam(q, "top", 5)
	if err != nil || top < 0 {
		httpError(w, http.StatusBadRequest, "top must be a non-negative integer")
		return
	}
	algo := q.Get("algo")
	if algo == "" {
		algo = "rankclus"
	}
	c := snap.Corpus
	// Cluster models are whole-model reads, so the sharded tier routes
	// them to one replica by policy instead of scattering; the fetched
	// models are bit-identical to the snapshot's own (deterministic
	// recipe), so the rendering below is shared.
	rcm, ncm := snap.RankClus, snap.NetClus
	if s.coord != nil {
		switch algo {
		case "rankclus", "netclus":
		default:
			httpError(w, http.StatusBadRequest, "unknown algo %q (want rankclus|netclus)", algo)
			return
		}
		ctx := r.Context()
		if tr != nil {
			ctx = obs.WithTrace(ctx, tr)
		}
		// Same eviction window as /v1/rank: two writes between the
		// snapshot load and the routed read can evict snap.Epoch from
		// the shards' retained generations, so retry once from a fresh
		// snapshot before 503ing.
		for attempt := 0; ; attempt++ {
			var err error
			rcm, ncm, err = s.coord.ClustersAt(ctx, snap.Epoch, algo)
			if err == nil {
				break
			}
			var ee *cluster.EpochError
			if attempt == 0 && errors.As(err, &ee) {
				if fresh := s.store.Current(); fresh != nil && fresh.Epoch != snap.Epoch {
					snap, c = fresh, fresh.Corpus
					continue
				}
			}
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
	}
	switch algo {
	case "rankclus":
		m := rcm
		sp = tr.Next(sp, "cluster")
		clusters := make([]map[string]any, m.K)
		for k := 0; k < m.K; k++ {
			venues := make([]scoredObject, 0, top)
			for _, v := range m.TopX(k, top) {
				venues = append(venues, scoredObject{ID: v, Name: c.Net.Name(dblp.TypeVenue, v), Score: m.RankX[k][v]})
			}
			authors := make([]scoredObject, 0, top)
			for _, a := range m.TopY(k, top) {
				authors = append(authors, scoredObject{ID: a, Name: c.Net.Name(dblp.TypeAuthor, a), Score: m.RankY[k][a]})
			}
			clusters[k] = map[string]any{"id": k, "venues": venues, "authors": authors}
		}
		sp = tr.Next(sp, "score")
		nmi := nmiAligned(c.VenueArea, m.Assign)
		payload := map[string]any{
			"algo":     algo,
			"epoch":    snap.Epoch,
			"k":        m.K,
			"nmi":      nmi,
			"clusters": clusters,
		}
		tr.Next(sp, "serialize")
		writeJSON(w, http.StatusOK, debugTrace(q, tr, payload))
	case "netclus":
		m := ncm
		sp = tr.Next(sp, "cluster")
		// Attribute-type order matches Corpus.Star: author, venue, term.
		attrs := []struct {
			idx int
			t   hin.Type
		}{{0, dblp.TypeAuthor}, {1, dblp.TypeVenue}, {2, dblp.TypeTerm}}
		clusters := make([]map[string]any, m.K)
		for k := 0; k < m.K; k++ {
			entry := map[string]any{"id": k}
			for _, at := range attrs {
				rows := make([]scoredObject, 0, top)
				for _, o := range m.TopAttr(at.idx, k, top) {
					rows = append(rows, scoredObject{ID: o, Name: c.Net.Name(at.t, o), Score: m.RankDist[at.idx][k][o]})
				}
				entry[string(at.t)+"s"] = rows
			}
			clusters[k] = entry
		}
		sp = tr.Next(sp, "score")
		nmiPaper := nmiAligned(c.PaperArea, m.AssignCenter)
		nmiVenue := nmiAligned(c.VenueArea, m.AssignAttr(1))
		payload := map[string]any{
			"algo":      algo,
			"epoch":     snap.Epoch,
			"k":         m.K,
			"nmi_paper": nmiPaper,
			"nmi_venue": nmiVenue,
			"clusters":  clusters,
		}
		tr.Next(sp, "serialize")
		writeJSON(w, http.StatusOK, debugTrace(q, tr, payload))
	default:
		httpError(w, http.StatusBadRequest, "unknown algo %q (want rankclus|netclus)", algo)
	}
}

// nmiAligned scores the overlap of a ground-truth labeling and a
// cluster assignment. After an ingest that added objects, the
// carried-over model is shorter than the padded ground truth (and a
// refreshed model can be longer than an old snapshot's) — the overlap
// is the population both labelings cover.
func nmiAligned(truth, assign []int) float64 {
	n := min(len(truth), len(assign))
	return eval.NMI(truth[:n], assign[:n])
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Current()
	if snap == nil {
		httpError(w, http.StatusServiceUnavailable, "no snapshot")
		return
	}
	tr := traceOf(w)
	sp := tr.Start("params")
	q := r.URL.Query()
	ctx := r.Context()
	if tr != nil {
		ctx = obs.WithTrace(ctx, tr)
	}
	k, err := intParam(q, "k", 10)
	if err != nil || k < 1 {
		httpError(w, http.StatusBadRequest, "k must be a positive integer")
		return
	}
	// Brownout: truncate k and answer from already-materialized state
	// only — no index builds, no kernel dispatches (cache misses shed).
	degraded := s.adm.Degraded()
	if degraded && k > s.opts.BrownoutK {
		k = s.opts.BrownoutK
	}
	// path= selects the meta-path; empty keeps the prebuilt APVPA
	// index. The engine validates the spec — any parse/schema/symmetry
	// problem is the client's, hence 400, and the snapshot memoizes the
	// index so repeat queries pay one lookup (the resolve span's note
	// says which way it went: prebuilt, cached, or built).
	sp = tr.Next(sp, "resolve")
	var kern topKKernel
	var pathKey string
	var endpoint hin.Type
	var dim int
	if degraded {
		// Brownout resolution never builds: already-materialized indexes
		// only, even on a sharded server (the cache-only query path below
		// never reaches a kernel anyway).
		ix, ok := snap.PathIndexCached(q.Get("path"))
		if !ok {
			tr.Note("degraded-shed")
			s.adm.shedFor(classQuery)
			s.shed(w, classQuery)
			return
		}
		kern, pathKey, endpoint, dim = ix, ix.Path.String(), ix.Path[0], ix.Dim()
	} else if s.coord != nil {
		// Sharded: the handler runs the same client-side validation the
		// single-process resolve applies (identical error bytes), and the
		// shards materialize their range indexes lazily at query time —
		// a schema error surfaces from the scatter as a ClientError and
		// maps to the same 400 below.
		if spec := q.Get("path"); spec == "" {
			tr.Note("prebuilt")
			kern, pathKey = s.defaultKernel(snap)
			endpoint, dim = pathAPVPA[0], snap.PathSim.Dim()
		} else {
			path, perr := snap.Corpus.Net.ParseMetaPath(spec)
			if perr == nil {
				perr = pathsim.ValidatePath(path)
			}
			if perr != nil {
				httpError(w, http.StatusBadRequest, "invalid path: %v", perr)
				return
			}
			pathKey, endpoint = path.String(), path[0]
			dim = snap.Corpus.Net.Count(endpoint)
			kern = clusterKernel{coord: s.coord, path: pathKey, dim: dim, epoch: snap.Epoch}
		}
	} else {
		ix, ierr := snap.PathIndex(ctx, q.Get("path"))
		if ierr != nil {
			if ctx.Err() != nil {
				tr.Note("deadline")
				httpError(w, http.StatusGatewayTimeout, "deadline exceeded while resolving path: %v", ctx.Err())
				return
			}
			httpError(w, http.StatusBadRequest, "invalid path: %v", ierr)
			return
		}
		kern, pathKey, endpoint, dim = ix, ix.Path.String(), ix.Path[0], ix.Dim()
	}
	// The queried objects live at the path's endpoint type (author for
	// the default APVPA). name= (author= kept as an alias) looks an
	// object up by name within that type.
	x := -1
	name := q.Get("name")
	if name == "" {
		name = q.Get("author")
	}
	if name != "" {
		if x = snap.Corpus.Net.Lookup(endpoint, name); x < 0 {
			httpError(w, http.StatusNotFound, "unknown %s %q", endpoint, name)
			return
		}
	} else {
		x, err = intParam(q, "id", -1)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if x < 0 || x >= dim {
		httpError(w, http.StatusBadRequest, "need id in [0,%d) or name=<%s name>", dim, endpoint)
		return
	}
	sp = tr.Next(sp, "query")
	var pairs []pathsim.Pair
	var epoch int64
	var hit bool
	if degraded {
		// Cache-only: a hit serves (annotated), a miss sheds — the
		// brownout's whole point is that no query reaches the kernels.
		sp2 := tr.Start("cache")
		v, ok := s.cache.Get(topKKey(snap.Epoch, pathKey, x, k))
		if !ok {
			tr.Note("miss")
			tr.End(sp2)
			s.adm.shedFor(classQuery)
			s.shed(w, classQuery)
			return
		}
		tr.Note("hit")
		tr.End(sp2)
		pairs, epoch, hit = v.([]pathsim.Pair), snap.Epoch, true
	} else if pairs, epoch, hit, err = s.topK(ctx, snap, kern, pathKey, x, k); err != nil {
		var ce *cluster.ClientError
		if errors.As(err, &ce) {
			// A shard rejected the query's meta-path (schema-less hop the
			// client asked for): the client's error, same bytes as the
			// single-process resolve would have produced.
			httpError(w, http.StatusBadRequest, "invalid path: %v", ce.Err)
			return
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// Partial-work accounting: the trace's open spans show the
			// stage the deadline landed in; the note marks it for the
			// slowlog.
			tr.Note("deadline")
			httpError(w, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
			return
		}
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	source := "batch"
	if hit {
		source = "cache"
	}
	sp = tr.Next(sp, "render")
	results := make([]scoredObject, len(pairs))
	for i, p := range pairs {
		results[i] = scoredObject{ID: p.ID, Name: snap.Corpus.Net.Name(endpoint, p.ID), Score: p.Score}
	}
	payload := map[string]any{
		"query":   map[string]any{"id": x, "name": snap.Corpus.Net.Name(endpoint, x)},
		"path":    pathKey,
		"k":       k,
		"epoch":   epoch,
		"source":  source,
		"results": results,
	}
	if degraded {
		s.adm.degradedServed.Add(1)
		payload["degraded"] = true
	}
	tr.Next(sp, "serialize")
	writeJSON(w, http.StatusOK, debugTrace(q, tr, payload))
}

// ingestRequest is the POST /v1/ingest body: a delta batch plus
// options. See internal/ingest for delta semantics.
type ingestRequest struct {
	Deltas        []ingest.Delta `json:"deltas"`
	RefreshModels bool           `json:"refresh_models,omitempty"`
}

// maxIngestBody bounds the /v1/ingest request body (16 MiB ≈ hundreds
// of thousands of deltas), so a misbehaving client cannot balloon the
// server's memory with one request.
const maxIngestBody = 16 << 20

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "ingest requires POST")
		return
	}
	tr := traceOf(w)
	sp := tr.Start("decode")
	q := r.URL.Query()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	dec.DisallowUnknownFields()
	var req ingestRequest
	if err := dec.Decode(&req); err != nil {
		s.ing.rejected.Add(1)
		httpError(w, http.StatusBadRequest, "invalid ingest body: %v", err)
		return
	}
	if len(req.Deltas) == 0 {
		s.ing.rejected.Add(1)
		httpError(w, http.StatusBadRequest, "ingest body carries no deltas")
		return
	}
	sp = tr.Next(sp, "apply")
	start := time.Now()
	// Sharded: the fan-out runs before the store under writeMu (shard 0
	// is the validation gate, and a shard rejection is byte-identical to
	// the store's), so the coordinator epoch always leads the store's
	// and every published snapshot epoch is servable by the shards.
	var snap *Snapshot
	var sum ingest.Summary
	err := s.clusterWrite(
		func() error {
			_, _, err := s.coord.Ingest(req.Deltas, req.RefreshModels)
			return err
		},
		func() error {
			var err error
			snap, sum, err = s.store.Ingest(req.Deltas, req.RefreshModels)
			return err
		})
	if err != nil {
		s.ing.rejected.Add(1)
		code := http.StatusBadRequest
		if errors.Is(err, errNoSnapshot) {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, "%v", err)
		return
	}
	s.ing.batches.Add(1)
	s.ing.deltas.Add(uint64(len(req.Deltas)))
	s.ing.nanos.Add(int64(time.Since(start)))
	payload := map[string]any{
		"epoch":         snap.Epoch,
		"applied":       sum,
		"build_seconds": snap.BuildTime.Seconds(),
	}
	tr.Next(sp, "serialize")
	writeJSON(w, http.StatusOK, debugTrace(q, tr, payload))
}

func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "rebuild requires POST")
		return
	}
	tr := traceOf(w)
	sp := tr.Start("params")
	q := r.URL.Query()
	cur := s.store.Current()
	def := s.opts.Seed + 1
	if cur != nil {
		def = cur.Seed + 1
	}
	seed, err := intParam(q, "seed", int(def))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sp = tr.Next(sp, "rebuild")
	var snap *Snapshot
	if werr := s.clusterWrite(
		func() error {
			_, err := s.coord.Rebuild(int64(seed))
			return err
		},
		func() error {
			snap = s.store.Rebuild(int64(seed))
			return nil
		}); werr != nil {
		httpError(w, http.StatusInternalServerError, "%v", werr)
		return
	}
	payload := map[string]any{
		"epoch":         snap.Epoch,
		"seed":          snap.Seed,
		"build_seconds": snap.BuildTime.Seconds(),
	}
	tr.Next(sp, "serialize")
	writeJSON(w, http.StatusOK, debugTrace(q, tr, payload))
}
