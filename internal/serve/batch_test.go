package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestConcurrentTopKRace hammers the coalescing path from many
// goroutines while a snapshot rebuild swaps the epoch mid-flight. Run
// under -race in CI; the assertions also pin answer sanity.
func TestConcurrentTopKRace(t *testing.T) {
	s := newTestServer(t, Options{Seed: 5})
	dim := s.Snapshot().PathSim.Dim()
	ctx := context.Background()

	const goroutines = 16
	const perG = 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				x := (g*31 + i*7) % dim
				pairs, _, err := s.TopK(ctx, x, 5)
				if err != nil {
					errs <- err
					return
				}
				for j := 1; j < len(pairs); j++ {
					if pairs[j].Score > pairs[j-1].Score {
						t.Errorf("unsorted answer for x=%d", x)
						return
					}
				}
			}
		}(g)
	}
	// Swap the snapshot while queries are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.store.Rebuild(6)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("query error: %v", err)
	}
	if got := s.Snapshot().Epoch; got != 2 {
		t.Fatalf("epoch = %d, want 2", got)
	}
}

// TestBatcherCoalesces checks that concurrent queries share BatchTopK
// calls when a batching window is configured.
func TestBatcherCoalesces(t *testing.T) {
	s := newTestServer(t, Options{CacheCapacity: -1, BatchWindow: 10 * time.Millisecond})
	ctx := context.Background()

	const n = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if _, _, err := s.TopK(ctx, i, 5); err != nil {
				t.Errorf("query %d: %v", i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	batches := s.batch.batches.Load()
	queries := s.batch.queries.Load()
	if queries != n {
		t.Fatalf("queries = %d, want %d", queries, n)
	}
	if batches >= queries {
		t.Fatalf("no coalescing: %d batches for %d queries", batches, queries)
	}
	if s.batch.largest.Load() < 2 {
		t.Fatalf("largest batch = %d", s.batch.largest.Load())
	}
}

// TestBatcherMixedK verifies per-request k trimming inside one batch.
func TestBatcherMixedK(t *testing.T) {
	s := newTestServer(t, Options{CacheCapacity: -1, BatchWindow: 10 * time.Millisecond})
	ctx := context.Background()
	var wg sync.WaitGroup
	lens := make([]int, 2)
	for i, k := range []int{3, 9} {
		wg.Add(1)
		go func(i, k int) {
			defer wg.Done()
			pairs, _, err := s.TopK(ctx, 4, k)
			if err != nil {
				t.Errorf("k=%d: %v", k, err)
				return
			}
			lens[i] = len(pairs)
		}(i, k)
	}
	wg.Wait()
	if lens[0] > 3 || lens[1] > 9 || lens[1] < lens[0] {
		t.Fatalf("lens = %v", lens)
	}
}

func TestBatcherRejectsBadIDs(t *testing.T) {
	s := newTestServer(t, Options{})
	ctx := context.Background()
	for _, x := range []int{-1, s.Snapshot().PathSim.Dim()} {
		if _, _, err := s.TopK(ctx, x, 5); err == nil {
			t.Fatalf("id %d accepted", x)
		}
	}
}

func TestBatcherShutdown(t *testing.T) {
	s := newTestServer(t, Options{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.TopK(context.Background(), 0, 5); err == nil {
		t.Fatal("TopK succeeded after shutdown")
	}
}

func TestTopKContextCancel(t *testing.T) {
	s := newTestServer(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.TopK(ctx, 0, 5); err == nil {
		t.Fatal("canceled context accepted")
	}
}
