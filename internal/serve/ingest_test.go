package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"hinet/internal/dblp"
	"hinet/internal/ingest"
	"hinet/internal/pathsim"
	"hinet/internal/stats"
)

// samePairs compares two answers element-wise (nil and empty are the
// same answer).
func samePairs(a, b []pathsim.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// postIngest ships a delta batch through the HTTP handler and decodes
// the response.
func postIngest(t *testing.T, srv *Server, deltas []ingest.Delta) (map[string]any, int) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"deltas": deltas})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	var out map[string]any
	_ = json.Unmarshal(rec.Body.Bytes(), &out)
	return out, rec.Code
}

func TestIngestEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{})
	snap0 := srv.Snapshot()

	deltas := []ingest.Delta{
		{Op: ingest.OpAddNode, Type: "paper", Name: "ingested-0"},
		{Op: ingest.OpAddEdge, SrcType: "paper", Src: "ingested-0", DstType: "author", Dst: snap0.Corpus.Net.Name(dblp.TypeAuthor, 0)},
		{Op: ingest.OpAddEdge, SrcType: "paper", Src: "ingested-0", DstType: "venue", Dst: snap0.Corpus.Net.Name(dblp.TypeVenue, 0)},
	}
	out, code := postIngest(t, srv, deltas)
	if code != http.StatusOK {
		t.Fatalf("ingest returned %d: %v", code, out)
	}
	if int64(out["epoch"].(float64)) != snap0.Epoch+1 {
		t.Fatalf("epoch %v, want %d", out["epoch"], snap0.Epoch+1)
	}
	snap1 := srv.Snapshot()
	if snap1 == snap0 {
		t.Fatal("snapshot not swapped")
	}
	if snap1.Corpus.Net.Count(dblp.TypePaper) != snap0.Corpus.Net.Count(dblp.TypePaper)+1 {
		t.Fatal("paper not ingested")
	}
	// The old snapshot's network is untouched (copy-on-write).
	if snap0.Corpus.Net.Lookup(dblp.TypePaper, "ingested-0") != -1 {
		t.Fatal("old snapshot's network was mutated")
	}
	// Clustering models carried over; ranking recomputed at new size.
	if snap1.RankClus != snap0.RankClus || snap1.NetClus != snap0.NetClus {
		t.Fatal("cluster models should carry over without refresh_models")
	}
	if len(snap1.PageRank.Scores) != snap1.Corpus.Net.Count(dblp.TypeAuthor) {
		t.Fatal("PageRank not rebuilt over the new graph")
	}

	// Method and body validation.
	req := httptest.NewRequest(http.MethodGet, "/v1/ingest", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest: %d", rec.Code)
	}
	if _, code := postIngest(t, srv, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", code)
	}
	if _, code := postIngest(t, srv, []ingest.Delta{
		{Op: ingest.OpAddEdge, SrcType: "paper", Src: "no-such-paper", DstType: "author", Dst: "no-such-author"},
	}); code != http.StatusBadRequest {
		t.Fatalf("invalid batch: %d", code)
	}
	// A rejected batch must not advance the epoch.
	if srv.Snapshot().Epoch != snap1.Epoch {
		t.Fatal("rejected batch advanced the epoch")
	}
}

// TestIngestEquivalentToRebuild is the serving-level equivalence
// check: a store that ingests delta batches ends with the same
// network matrices and (within tolerance) the same PageRank as a
// store that replays everything from scratch.
func TestIngestEquivalentToRebuild(t *testing.T) {
	inc := NewStore(testConfig())
	inc.Rebuild(1)
	ref := NewStore(testConfig())
	ref.Rebuild(1)

	rng := stats.NewRNG(42)
	var all []ingest.Delta
	for batch := 0; batch < 3; batch++ {
		ds := ingest.SamplePapers(inc.Current().Corpus, rng, 4)
		if _, _, err := inc.Ingest(ds, false); err != nil {
			t.Fatal(err)
		}
		all = append(all, ds...)
	}
	// Replay the same deltas in one shot on the reference store.
	if _, _, err := ref.Ingest(all, false); err != nil {
		t.Fatal(err)
	}

	a, b := inc.Current(), ref.Current()
	if got, want := a.Corpus.Net.Count(dblp.TypePaper), b.Corpus.Net.Count(dblp.TypePaper); got != want {
		t.Fatalf("paper counts %d vs %d", got, want)
	}
	am := a.Corpus.Net.Relation(dblp.TypePaper, dblp.TypeAuthor)
	bm := b.Corpus.Net.Relation(dblp.TypePaper, dblp.TypeAuthor)
	if !reflect.DeepEqual(am.Dense(), bm.Dense()) {
		t.Fatal("paper-author relation differs between batched and replayed ingestion")
	}
	if !reflect.DeepEqual(a.PathSim.M.Dense(), b.PathSim.M.Dense()) {
		t.Fatal("PathSim commuting matrix differs")
	}
	for i := range a.PageRank.Scores {
		d := a.PageRank.Scores[i] - b.PageRank.Scores[i]
		if d < -1e-6 || d > 1e-6 {
			t.Fatalf("PageRank diverged at %d: %g vs %g", i, a.PageRank.Scores[i], b.PageRank.Scores[i])
		}
	}
}

// TestIngestInvalidatesCachedAnswers checks that an ingest which
// changes a query's true answer is reflected immediately — the cache
// keys on the epoch, so no stale entry can be served.
func TestIngestInvalidatesCachedAnswers(t *testing.T) {
	srv := newTestServer(t, Options{})
	snap := srv.Snapshot()
	net := snap.Corpus.Net

	// Prime the cache for author 0's top-k.
	before, _, err := srv.TopK(context.Background(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Forge a batch that makes author 1 an overwhelming APVPA peer of
	// author 0: many shared papers in one venue.
	var ds []ingest.Delta
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("forged-%d", i)
		ds = append(ds, ingest.Delta{Op: ingest.OpAddNode, Type: "paper", Name: name},
			ingest.Delta{Op: ingest.OpAddEdge, SrcType: "paper", Src: name, DstType: "author", Dst: net.Name(dblp.TypeAuthor, 0)},
			ingest.Delta{Op: ingest.OpAddEdge, SrcType: "paper", Src: name, DstType: "author", Dst: net.Name(dblp.TypeAuthor, 1)},
			ingest.Delta{Op: ingest.OpAddEdge, SrcType: "paper", Src: name, DstType: "venue", Dst: net.Name(dblp.TypeVenue, 0)})
	}
	if _, code := postIngest(t, srv, ds); code != http.StatusOK {
		t.Fatalf("ingest failed: %d", code)
	}
	after, hit, err := srv.TopK(context.Background(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("post-ingest query must not hit the pre-ingest cache entry")
	}
	if reflect.DeepEqual(before, after) {
		t.Fatal("ingest did not change the served answer")
	}
	// And the fresh answer matches a direct index query on the new
	// snapshot.
	want := srv.Snapshot().PathSim.TopK(0, 5)
	if !samePairs(after, want) {
		t.Fatalf("served %v, index says %v", after, want)
	}
}

// TestConcurrentIngestRebuildReads hammers the server with concurrent
// ingests, rebuilds and reads (run under -race in CI): snapshot epochs
// must be strictly monotonic at every observation point, responses
// must never mix epochs with answers, and the final state must serve
// the current snapshot's own results.
func TestConcurrentIngestRebuildReads(t *testing.T) {
	srv := newTestServer(t, Options{})
	defer srv.Shutdown(context.Background())
	base := srv.Snapshot()
	authors := base.Corpus.Net.Count(dblp.TypeAuthor)

	var lastSeen atomic.Int64
	lastSeen.Store(base.Epoch)
	observe := func(epoch int64) {
		for {
			prev := lastSeen.Load()
			if epoch < prev {
				// Receding epochs are only legal across different
				// observers (a reader may hold an older snapshot); the
				// high-water mark itself must never recede, which
				// CompareAndSwap enforces.
				return
			}
			if lastSeen.CompareAndSwap(prev, epoch) {
				return
			}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Ingest writers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(int64(100 + g))
			for i := 0; i < 5; i++ {
				cur := srv.store.Current()
				ds := ingest.SamplePapers(cur.Corpus, rng, 2)
				snap, _, err := srv.store.Ingest(ds, false)
				if err != nil {
					errs <- err
					return
				}
				observe(snap.Epoch)
			}
		}(g)
	}
	// Rebuild writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			snap := srv.store.Rebuild(int64(i + 2))
			observe(snap.Epoch)
		}
	}()
	// Readers: top-k + rank + stats against whatever snapshot is live.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				snap := srv.store.Current()
				observe(snap.Epoch)
				x := (g*13 + i) % authors
				pairs, epoch, _, err := srv.topK(context.Background(), snap, snap.PathSim, snap.PathSim.Path.String(), x, 5)
				if err != nil {
					errs <- err
					return
				}
				if epoch != snap.Epoch {
					errs <- fmt.Errorf("answer epoch %d for snapshot epoch %d", epoch, snap.Epoch)
					return
				}
				// The served answer must equal the snapshot's own index
				// answer — a stale cache entry from another epoch would
				// differ whenever the graph changed.
				if want := snap.PathSim.TopK(x, 5); !samePairs(pairs, want) {
					errs <- fmt.Errorf("stale answer for x=%d at epoch %d", x, snap.Epoch)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced: the live snapshot answers for itself.
	snap := srv.Snapshot()
	pairs, _, _, err := srv.topK(context.Background(), snap, snap.PathSim, snap.PathSim.Path.String(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := snap.PathSim.TopK(0, 5); !samePairs(pairs, want) {
		t.Fatal("final answer does not match the live snapshot")
	}
}
