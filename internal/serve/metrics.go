// Per-endpoint serving counters and the /metrics exposition. The
// registry's endpoint set is fixed at construction, so the hot path is
// pure atomics — no locks, no map writes. Exposition is Prometheus
// text format assembled by hand (the repo is stdlib-only); the series
// set is fixed at boot — endpoint families, stage histograms and
// gauges are all pre-declared — so the metric name sequence never
// varies between scrapes (pinned by TestMetricsDeterministicOrder).

package serve

import (
	"fmt"
	"io"
	"runtime"
	"slices"
	"sync/atomic"
	"time"

	"hinet/internal/obs"
	"hinet/internal/sparse"
)

// endpointStats counts one endpoint's traffic. Latency goes into a
// shared obs histogram, so /metrics can report a real Prometheus
// histogram (buckets + sum + count) instead of a lossy mean.
type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	lat      *obs.Hist
}

func (e *endpointStats) observe(code int, d time.Duration) {
	e.requests.Add(1)
	if code >= 400 {
		e.errors.Add(1)
	}
	e.lat.Observe(d)
}

// metrics is the fixed per-endpoint registry.
type metrics struct {
	endpoints map[string]*endpointStats
}

func newMetrics(endpoints ...string) *metrics {
	m := &metrics{endpoints: make(map[string]*endpointStats, len(endpoints))}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointStats{lat: obs.NewHist()}
	}
	return m
}

func (m *metrics) get(endpoint string) *endpointStats {
	if st, ok := m.endpoints[endpoint]; ok {
		return st
	}
	panic("serve: endpoint not registered: " + endpoint)
}

// writeMetrics renders the Prometheus text exposition for /metrics:
// snapshot identity, per-endpoint request counters and latency
// histograms, per-stage duration histograms from the tracer, cache hit
// rates, batching effectiveness, and process/pool runtime gauges.
func (s *Server) writeMetrics(w io.Writer) {
	if snap := s.store.Current(); snap != nil {
		fmt.Fprintf(w, "hinet_snapshot_epoch %d\n", snap.Epoch)
		fmt.Fprintf(w, "hinet_snapshot_seed %d\n", snap.Seed)
		fmt.Fprintf(w, "hinet_snapshot_build_seconds %g\n", snap.BuildTime.Seconds())
		types := snap.Corpus.Net.Types()
		slices.Sort(types)
		for _, t := range types {
			fmt.Fprintf(w, "hinet_snapshot_objects{type=%q} %d\n", string(t), snap.Corpus.Net.Count(t))
		}
		fmt.Fprintf(w, "hinet_pathsim_index_nnz %d\n", snap.PathSim.NNZ())

		// Meta-path engine: materialization-cache effectiveness, how the
		// planner is evaluating products, and where the product wall
		// time goes (planned splits vs. Gram factorizations).
		es := snap.Engine().Stats()
		fmt.Fprintf(w, "hinet_metapath_cache_hits_total %d\n", es.Hits)
		fmt.Fprintf(w, "hinet_metapath_cache_misses_total %d\n", es.Misses)
		fmt.Fprintf(w, "hinet_metapath_cache_entries %d\n", es.Entries)
		fmt.Fprintf(w, "hinet_metapath_products_total %d\n", es.Products)
		fmt.Fprintf(w, "hinet_metapath_gram_products_total %d\n", es.Grams)
		fmt.Fprintf(w, "hinet_metapath_transposes_total %d\n", es.Transposes)
		fmt.Fprintf(w, "hinet_metapath_product_seconds_total %g\n", es.ProductTime.Seconds())
		fmt.Fprintf(w, "hinet_metapath_gram_seconds_total %g\n", es.GramTime.Seconds())
	}

	names := make([]string, 0, len(s.met.endpoints))
	for e := range s.met.endpoints {
		names = append(names, e)
	}
	slices.Sort(names)
	for _, e := range names {
		st := s.met.endpoints[e]
		fmt.Fprintf(w, "hinet_http_requests_total{endpoint=%q} %d\n", e, st.requests.Load())
		fmt.Fprintf(w, "hinet_http_errors_total{endpoint=%q} %d\n", e, st.errors.Load())
	}
	// Request-duration histograms follow the counters so the flat
	// counter block stays easy to eyeball.
	for _, e := range names {
		s.met.endpoints[e].lat.WriteProm(w, "hinet_request_duration_seconds",
			fmt.Sprintf("endpoint=%q", e))
	}
	// Per-stage duration histograms from the span tracer. Families and
	// stages are declared at boot, so this block's series set is fixed.
	for _, f := range s.obs.Families() {
		for _, stage := range f.Stages() {
			f.Stage(stage).WriteProm(w, "hinet_stage_duration_seconds",
				fmt.Sprintf("endpoint=%q,stage=%q", f.Name(), stage))
		}
	}

	cs := s.cache.Stats()
	fmt.Fprintf(w, "hinet_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "hinet_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "hinet_cache_entries %d\n", cs.Entries)

	fmt.Fprintf(w, "hinet_ingest_batches_total %d\n", s.ing.batches.Load())
	fmt.Fprintf(w, "hinet_ingest_deltas_total %d\n", s.ing.deltas.Load())
	fmt.Fprintf(w, "hinet_ingest_rejected_total %d\n", s.ing.rejected.Load())
	fmt.Fprintf(w, "hinet_ingest_apply_seconds_sum %g\n", time.Duration(s.ing.nanos.Load()).Seconds())

	fmt.Fprintf(w, "hinet_admission_rejected_total %d\n", s.rejAd.Load())

	// Overload protection: the adaptive limiter and brownout state.
	fmt.Fprintf(w, "hinet_admission_limit %d\n", s.adm.Limit())
	fmt.Fprintf(w, "hinet_admission_ceiling %d\n", s.adm.ceil)
	fmt.Fprintf(w, "hinet_admission_floor %d\n", s.adm.floor)
	fmt.Fprintf(w, "hinet_admission_inflight %d\n", s.adm.inflight.Load())
	fmt.Fprintf(w, "hinet_admission_shed_total{class=\"query\"} %d\n", s.adm.shedQuery.Load())
	fmt.Fprintf(w, "hinet_admission_shed_total{class=\"write\"} %d\n", s.adm.shedWrite.Load())
	degraded := 0
	if s.adm.Degraded() {
		degraded = 1
	}
	fmt.Fprintf(w, "hinet_degraded %d\n", degraded)
	fmt.Fprintf(w, "hinet_brownouts_total %d\n", s.adm.brownouts.Load())
	fmt.Fprintf(w, "hinet_degraded_responses_total %d\n", s.adm.degradedServed.Load())
	fmt.Fprintf(w, "hinet_timeouts_total %d\n", s.adm.timeouts.Load())

	fmt.Fprintf(w, "hinet_topk_batches_total %d\n", s.batch.batches.Load())
	fmt.Fprintf(w, "hinet_topk_batched_queries_total %d\n", s.batch.queries.Load())
	fmt.Fprintf(w, "hinet_topk_unique_queries_total %d\n", s.batch.unique.Load())
	fmt.Fprintf(w, "hinet_topk_largest_batch %d\n", s.batch.largest.Load())

	// Process and pool runtime gauges.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "hinet_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "hinet_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "hinet_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(w, "hinet_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(w, "hinet_pool_workers %d\n", sparse.Parallelism(0))
	fmt.Fprintf(w, "hinet_pool_queue_depth %d\n", sparse.QueueDepth())
	hits, misses := sparse.SpgemmPoolStats()
	fmt.Fprintf(w, "hinet_spgemm_scratch_hits_total %d\n", hits)
	fmt.Fprintf(w, "hinet_spgemm_scratch_misses_total %d\n", misses)

	// Sharded tier series (emitted only when the server is sharded).
	s.writeClusterMetrics(w)
}

// EndpointMetrics is a point-in-time copy of one endpoint's counters,
// exported for tests and the load-generation harness.
type EndpointMetrics struct {
	Requests uint64
	Errors   uint64
	Latency  time.Duration // cumulative
}

// Endpoints returns a snapshot of the per-endpoint counters keyed by
// route pattern.
func (s *Server) Endpoints() map[string]EndpointMetrics {
	out := make(map[string]EndpointMetrics, len(s.met.endpoints))
	for name, st := range s.met.endpoints {
		out[name] = EndpointMetrics{
			Requests: st.requests.Load(),
			Errors:   st.errors.Load(),
			Latency:  st.lat.Sum(),
		}
	}
	return out
}

// AdmissionRejected returns the number of heavy requests turned away at
// the admission semaphore (503s from a full queue, not cancellations).
func (s *Server) AdmissionRejected() uint64 { return s.rejAd.Load() }

// AdmissionState is a point-in-time copy of the overload-protection
// state, exported for tests and the load harness.
type AdmissionState struct {
	Limit, Floor, Ceiling int
	Inflight              int64
	Degraded              bool
	ShedQuery, ShedWrite  uint64
	Brownouts             uint64
	DegradedResponses     uint64
	Timeouts              uint64
}

// Admission returns the adaptive limiter's current state and counters.
func (s *Server) Admission() AdmissionState {
	return AdmissionState{
		Limit:             s.adm.Limit(),
		Floor:             s.adm.floor,
		Ceiling:           s.adm.ceil,
		Inflight:          s.adm.inflight.Load(),
		Degraded:          s.adm.Degraded(),
		ShedQuery:         s.adm.shedQuery.Load(),
		ShedWrite:         s.adm.shedWrite.Load(),
		Brownouts:         s.adm.brownouts.Load(),
		DegradedResponses: s.adm.degradedServed.Load(),
		Timeouts:          s.adm.timeouts.Load(),
	}
}

// CacheStats exposes the result cache counters for tests and the load
// harness.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Obs exposes the observability registry (stage histograms, slowlog)
// for tests and embedders.
func (s *Server) Obs() *obs.Registry { return s.obs }
