// Per-endpoint serving counters and the /metrics exposition. The
// registry's endpoint set is fixed at construction, so the hot path is
// pure atomics — no locks, no map writes. Exposition is Prometheus
// text format assembled by hand (the repo is stdlib-only).

package serve

import (
	"fmt"
	"io"
	"slices"
	"sync/atomic"
	"time"

	"hinet/internal/sparse"
)

// endpointStats counts one endpoint's traffic.
type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	latency  atomic.Int64 // cumulative nanoseconds
}

func (e *endpointStats) observe(code int, d time.Duration) {
	e.requests.Add(1)
	if code >= 400 {
		e.errors.Add(1)
	}
	e.latency.Add(int64(d))
}

// metrics is the fixed per-endpoint registry.
type metrics struct {
	endpoints map[string]*endpointStats
}

func newMetrics(endpoints ...string) *metrics {
	m := &metrics{endpoints: make(map[string]*endpointStats, len(endpoints))}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointStats{}
	}
	return m
}

func (m *metrics) get(endpoint string) *endpointStats {
	if st, ok := m.endpoints[endpoint]; ok {
		return st
	}
	panic("serve: endpoint not registered: " + endpoint)
}

// writeMetrics renders the Prometheus text exposition for /metrics:
// snapshot identity, per-endpoint request/error/latency counters, cache
// hit rates, and batching effectiveness.
func (s *Server) writeMetrics(w io.Writer) {
	if snap := s.store.Current(); snap != nil {
		fmt.Fprintf(w, "hinet_snapshot_epoch %d\n", snap.Epoch)
		fmt.Fprintf(w, "hinet_snapshot_seed %d\n", snap.Seed)
		fmt.Fprintf(w, "hinet_snapshot_build_seconds %g\n", snap.BuildTime.Seconds())
		types := snap.Corpus.Net.Types()
		slices.Sort(types)
		for _, t := range types {
			fmt.Fprintf(w, "hinet_snapshot_objects{type=%q} %d\n", string(t), snap.Corpus.Net.Count(t))
		}
		fmt.Fprintf(w, "hinet_pathsim_index_nnz %d\n", snap.PathSim.NNZ())

		// Meta-path engine: materialization-cache effectiveness and how
		// the planner is evaluating products for this snapshot.
		es := snap.Engine().Stats()
		fmt.Fprintf(w, "hinet_metapath_cache_hits_total %d\n", es.Hits)
		fmt.Fprintf(w, "hinet_metapath_cache_misses_total %d\n", es.Misses)
		fmt.Fprintf(w, "hinet_metapath_cache_entries %d\n", es.Entries)
		fmt.Fprintf(w, "hinet_metapath_products_total %d\n", es.Products)
		fmt.Fprintf(w, "hinet_metapath_gram_products_total %d\n", es.Grams)
		fmt.Fprintf(w, "hinet_metapath_transposes_total %d\n", es.Transposes)
	}

	names := make([]string, 0, len(s.met.endpoints))
	for e := range s.met.endpoints {
		names = append(names, e)
	}
	slices.Sort(names)
	for _, e := range names {
		st := s.met.endpoints[e]
		fmt.Fprintf(w, "hinet_http_requests_total{endpoint=%q} %d\n", e, st.requests.Load())
		fmt.Fprintf(w, "hinet_http_errors_total{endpoint=%q} %d\n", e, st.errors.Load())
		fmt.Fprintf(w, "hinet_http_latency_seconds_sum{endpoint=%q} %g\n", e,
			time.Duration(st.latency.Load()).Seconds())
	}

	cs := s.cache.Stats()
	fmt.Fprintf(w, "hinet_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "hinet_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "hinet_cache_entries %d\n", cs.Entries)

	fmt.Fprintf(w, "hinet_ingest_batches_total %d\n", s.ing.batches.Load())
	fmt.Fprintf(w, "hinet_ingest_deltas_total %d\n", s.ing.deltas.Load())
	fmt.Fprintf(w, "hinet_ingest_rejected_total %d\n", s.ing.rejected.Load())
	fmt.Fprintf(w, "hinet_ingest_apply_seconds_sum %g\n", time.Duration(s.ing.nanos.Load()).Seconds())

	fmt.Fprintf(w, "hinet_admission_rejected_total %d\n", s.rejAd.Load())

	fmt.Fprintf(w, "hinet_topk_batches_total %d\n", s.batch.batches.Load())
	fmt.Fprintf(w, "hinet_topk_batched_queries_total %d\n", s.batch.queries.Load())
	fmt.Fprintf(w, "hinet_topk_unique_queries_total %d\n", s.batch.unique.Load())
	fmt.Fprintf(w, "hinet_topk_largest_batch %d\n", s.batch.largest.Load())

	fmt.Fprintf(w, "hinet_pool_workers %d\n", sparse.Parallelism(0))
}

// EndpointMetrics is a point-in-time copy of one endpoint's counters,
// exported for tests and the load-generation harness.
type EndpointMetrics struct {
	Requests uint64
	Errors   uint64
	Latency  time.Duration // cumulative
}

// Endpoints returns a snapshot of the per-endpoint counters keyed by
// route pattern.
func (s *Server) Endpoints() map[string]EndpointMetrics {
	out := make(map[string]EndpointMetrics, len(s.met.endpoints))
	for name, st := range s.met.endpoints {
		out[name] = EndpointMetrics{
			Requests: st.requests.Load(),
			Errors:   st.errors.Load(),
			Latency:  time.Duration(st.latency.Load()),
		}
	}
	return out
}

// AdmissionRejected returns the number of heavy requests turned away at
// the admission semaphore (503s from a full queue, not cancellations).
func (s *Server) AdmissionRejected() uint64 { return s.rejAd.Load() }

// CacheStats exposes the result cache counters for tests and the load
// harness.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }
