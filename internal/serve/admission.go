// Adaptive admission control: an AIMD concurrency limiter plus
// brownout (degraded-mode) state, replacing PR 6's static semaphore.
//
// The limiter keeps the semaphore but makes its effective capacity a
// control variable: a background controller compares the windowed p99
// of admitted query requests against an SLO target every tick and
// walks the limit between a floor and the configured ceiling — additive
// increase while healthy, multiplicative decrease while over target
// (the classic AIMD shape, same reasoning as TCP: converge fast on
// overload, probe gently on recovery). The batch window widens in step
// with the limit reduction, so under pressure the server trades a
// little first-query latency for wider, cheaper batches.
//
// Request classes give shedding an order: critical endpoints (healthz,
// metrics) never touch admission; cheap precomputed reads (stats, rank,
// clusters, slowlog) are never shed — they cost microseconds and no
// kernel time; query (topk) sheds when the adaptive limit is full;
// write (ingest, rebuild) sheds earlier, at 3/4 of the limit, and
// always during a brownout. Sustained overload — `enter` consecutive
// over-target ticks — trips the brownout: topk answers from cache only
// with k truncated, annotated "degraded": true, and writes shed
// outright. `exit` consecutive healthy ticks recover automatically.
package serve

import (
	"sync/atomic"
	"time"

	"hinet/internal/obs"
)

// Request classes, in shed order (never → first).
const (
	classCritical = "critical" // healthz, metrics: never shed
	classCheap    = "cheap"    // precomputed reads: never shed
	classQuery    = "query"    // heavy uncached queries: shed at the limit
	classWrite    = "write"    // ingest/rebuild: shed at 3/4 limit and in brownout
)

// minWindowSamples is the fewest admitted-request observations a
// control window needs before its p99 is trusted for a decrease
// decision; smaller windows only ever increase the limit.
const minWindowSamples = 4

// admission is the adaptive limiter. Requests interact with sem (and
// the atomics) only; the controller goroutine owns held/prev and the
// tick counters.
type admission struct {
	floor, ceil int
	slo         time.Duration
	interval    time.Duration
	enter, exit int // brownout entry/exit thresholds, in ticks

	// sem has capacity ceil; the controller "holds" ceil-limit tokens
	// to shrink the effective limit, releasing them to grow it again.
	sem      chan struct{}
	limit    atomic.Int64
	held     int          // tokens held by the controller (controller-only)
	inflight atomic.Int64 // currently admitted heavy requests

	// lat collects full-request latencies of admitted, successful query
	// requests — the controller's feedback signal. prev is the last
	// tick's bucket snapshot (controller-only): quantiles are computed
	// over the delta, so one bad burst ages out instead of poisoning
	// the signal forever.
	lat  *obs.Hist
	prev obs.HistSnap

	degraded    atomic.Bool
	overTicks   int          // consecutive over-target ticks (controller-only)
	underTicks  int          // consecutive healthy ticks (controller-only)
	windowedP99 atomic.Int64 // last window's p99 (ns), exported via /v1/stats

	shedQuery      atomic.Uint64 // query-class requests shed
	shedWrite      atomic.Uint64 // write-class requests shed
	brownouts      atomic.Uint64 // brownout entries
	degradedServed atomic.Uint64 // responses answered in degraded mode
	timeouts       atomic.Uint64 // requests surfaced as 504 (deadline exceeded)

	quit chan struct{}
	done chan struct{}
}

func newAdmission(floor, ceil int, slo, interval time.Duration, enter, exit int) *admission {
	if floor < 1 {
		floor = 1
	}
	if floor > ceil {
		floor = ceil
	}
	a := &admission{
		floor:    floor,
		ceil:     ceil,
		slo:      slo,
		interval: interval,
		enter:    enter,
		exit:     exit,
		sem:      make(chan struct{}, ceil),
		lat:      obs.NewHist(),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	a.limit.Store(int64(ceil))
	return a
}

// Limit returns the current effective admission limit.
func (a *admission) Limit() int { return int(a.limit.Load()) }

// Degraded reports whether the server is in brownout mode.
func (a *admission) Degraded() bool { return a.degraded.Load() }

// step runs one control tick against the latest latency window.
// queueDepth is the sparse pool's backlog gauge; a backed-up pool
// blocks additive increase even when latencies look healthy (the
// latency signal lags the queue signal by one window).
func (a *admission) step(queueDepth int) {
	cnt := a.lat.CountSince(&a.prev)
	p99 := a.lat.QuantileSince(&a.prev, 0.99)
	a.prev = a.lat.Snap()
	a.windowedP99.Store(int64(p99))
	lim := int(a.limit.Load())
	switch {
	case cnt >= minWindowSamples && p99 > a.slo:
		// Multiplicative decrease: ×0.7 per over-target tick, floored.
		nl := lim * 7 / 10
		if nl >= lim {
			nl = lim - 1
		}
		if nl < a.floor {
			nl = a.floor
		}
		a.limit.Store(int64(nl))
		a.overTicks++
		a.underTicks = 0
		if !a.degraded.Load() && a.overTicks >= a.enter {
			a.degraded.Store(true)
			a.brownouts.Add(1)
		}
	case cnt == 0 || p99 <= a.slo*4/5:
		// Healthy (or idle): additive increase toward the ceiling,
		// unless the kernel pool is visibly backed up.
		if nl := lim + 1; nl <= a.ceil && queueDepth <= a.ceil {
			a.limit.Store(int64(nl))
		}
		a.healthyTick()
	default:
		// Inside the band (80%–100% of target): hold the limit.
		a.healthyTick()
	}
	a.converge()
}

func (a *admission) healthyTick() {
	a.overTicks = 0
	a.underTicks++
	if a.degraded.Load() && a.underTicks >= a.exit {
		a.degraded.Store(false)
	}
}

// converge moves the controller's held-token count toward ceil−limit.
// Shrinking acquires tokens non-blockingly — slots occupied by running
// requests are picked up as they release, over the next ticks — and
// growing hands tokens back immediately.
func (a *admission) converge() {
	want := a.ceil - int(a.limit.Load())
	for a.held < want {
		select {
		case a.sem <- struct{}{}:
			a.held++
		default:
			return
		}
	}
	for a.held > want {
		<-a.sem
		a.held--
	}
}

// retryAfterMS is the backoff hint attached to shed responses: a couple
// of control ticks for a transient queue-full blip, a full second
// during a brownout (clients should get out of the way of recovery).
func (a *admission) retryAfterMS() int {
	if a.degraded.Load() {
		return 1000
	}
	iv := int(a.interval / time.Millisecond)
	if iv <= 0 {
		iv = 100
	}
	return 2 * iv
}

// stop terminates the controller goroutine (idempotent via Server's
// shutdown-once). Callers that never started a controller (negative
// ControlInterval) close done at construction time instead.
func (a *admission) stop() {
	select {
	case <-a.quit:
	default:
		close(a.quit)
	}
	<-a.done
}
