package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestAdmissionShedsNotHangs: with every admission slot held, a heavy
// request must come back as a prompt 503 — bounded by AdmissionWait —
// rather than queueing indefinitely. This is the serving tier's
// overload contract, exercised at scale by the loadgen saturation test.
func TestAdmissionShedsNotHangs(t *testing.T) {
	s := newTestServer(t, Options{MaxConcurrent: 1, AdmissionWait: 50 * time.Millisecond})

	// Occupy the only admission slot directly.
	s.adm.sem <- struct{}{}
	defer func() { <-s.adm.sem }()

	start := time.Now()
	code := get(t, s, "GET", "/v1/pathsim/topk?id=0&k=5", nil)
	elapsed := time.Since(start)

	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated heavy endpoint returned %d, want 503", code)
	}
	if elapsed < 40*time.Millisecond {
		t.Errorf("rejected after %v, before AdmissionWait elapsed", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Errorf("rejection took %v; admission is hanging, not shedding", elapsed)
	}
	if got := s.AdmissionRejected(); got != 1 {
		t.Errorf("AdmissionRejected() = %d, want 1", got)
	}

	// Light endpoints bypass admission entirely and must still serve.
	if code := get(t, s, "GET", "/v1/stats", nil); code != http.StatusOK {
		t.Errorf("light endpoint returned %d while heavy slots are full", code)
	}
}

// TestAdmissionFailFast: AdmissionWait < 0 rejects without waiting.
func TestAdmissionFailFast(t *testing.T) {
	s := newTestServer(t, Options{MaxConcurrent: 1, AdmissionWait: -1})
	s.adm.sem <- struct{}{}
	defer func() { <-s.adm.sem }()

	start := time.Now()
	code := get(t, s, "GET", "/v1/pathsim/topk?id=0&k=5", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("got %d, want 503", code)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("fail-fast rejection took %v", elapsed)
	}
}

// TestAdmissionRecovers: once the slot frees, the same request serves.
func TestAdmissionRecovers(t *testing.T) {
	s := newTestServer(t, Options{MaxConcurrent: 1, AdmissionWait: -1})
	s.adm.sem <- struct{}{}
	if code := get(t, s, "GET", "/v1/pathsim/topk?id=0&k=5", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("saturated: got %d, want 503", code)
	}
	<-s.adm.sem
	if code := get(t, s, "GET", "/v1/pathsim/topk?id=0&k=5", nil); code != http.StatusOK {
		t.Fatalf("after release: got %d, want 200", code)
	}
}

// TestMetricsDeterministicOrder pins the /metrics exposition's metric
// name sequence. Golden-trace replays and the loadgen scraper depend on
// the exposition being stable across runs; sorting (not map order) is
// what guarantees it. Extend the list when adding metrics — the point
// is that the order never varies run to run.
func TestMetricsDeterministicOrder(t *testing.T) {
	s := newTestServer(t, Options{})
	// Touch a few endpoints so counters are live, then scrape twice.
	get(t, s, "GET", "/v1/stats", nil)
	get(t, s, "GET", "/v1/pathsim/topk?id=0&k=5", nil)

	scrape := func() []string {
		req := httptest.NewRequest("GET", "/metrics", nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("/metrics returned %d", rec.Code)
		}
		var names []string
		for _, line := range strings.Split(rec.Body.String(), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			names = append(names, strings.SplitN(line, " ", 2)[0])
		}
		return names
	}

	first := scrape()
	get(t, s, "GET", "/v1/rank?metric=pagerank&top=5", nil) // perturb counters between scrapes
	second := scrape()

	if len(first) != len(second) {
		t.Fatalf("metric count changed between scrapes: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("metric order varies at %d: %q vs %q", i, first[i], second[i])
		}
	}

	// The serving counters the loadgen harness consumes must exist under
	// their pinned names.
	need := []string{
		"hinet_snapshot_epoch",
		"hinet_cache_hits_total",
		"hinet_cache_misses_total",
		"hinet_admission_rejected_total",
		`hinet_http_requests_total{endpoint="/v1/pathsim/topk"}`,
	}
	have := map[string]bool{}
	for _, n := range first {
		have[n] = true
	}
	for _, n := range need {
		if !have[n] {
			t.Errorf("/metrics lacks %s", n)
		}
	}
}
