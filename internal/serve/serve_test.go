package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hinet/internal/dblp"
	"hinet/internal/hin"
	"hinet/internal/pathsim"
	"hinet/internal/stats"
)

// testConfig is a small two-area corpus so snapshot builds stay fast.
func testConfig() ModelConfig {
	return ModelConfig{Corpus: dblp.Config{
		Areas:         []string{"database", "datamining"},
		VenuesPerArea: 3, AuthorsPerArea: 40, TermsPerArea: 30,
		SharedTerms: 15, Papers: 300,
	}}
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Models.Corpus.Papers == 0 {
		opts.Models = testConfig()
	}
	s := New(opts)
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	return s
}

// get performs one request against the server's handler and decodes the
// JSON body (nil out skips decoding).
func get(t *testing.T, s *Server, method, path string, out any) int {
	t.Helper()
	req := httptest.NewRequest(method, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON: %v\n%s", method, path, err, rec.Body.String())
		}
	}
	return rec.Code
}

func TestHealthzAndStats(t *testing.T) {
	s := newTestServer(t, Options{Seed: 3})
	if code := get(t, s, "GET", "/healthz", nil); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	var st struct {
		Epoch   int64          `json:"epoch"`
		Seed    int64          `json:"seed"`
		Objects map[string]int `json:"objects"`
		PathSim struct {
			Dim int `json:"dim"`
			NNZ int `json:"nnz"`
		} `json:"pathsim"`
	}
	if code := get(t, s, "GET", "/v1/stats", &st); code != 200 {
		t.Fatalf("stats = %d", code)
	}
	if st.Epoch != 1 || st.Seed != 3 {
		t.Fatalf("epoch/seed = %d/%d", st.Epoch, st.Seed)
	}
	if st.Objects["author"] != 80 || st.PathSim.Dim != 80 || st.PathSim.NNZ == 0 {
		t.Fatalf("stats payload: %+v", st)
	}
}

type topKBody struct {
	Query struct {
		ID   int    `json:"id"`
		Name string `json:"name"`
	} `json:"query"`
	Path    string `json:"path"`
	Epoch   int64  `json:"epoch"`
	Source  string `json:"source"`
	Results []struct {
		ID    int     `json:"id"`
		Name  string  `json:"name"`
		Score float64 `json:"score"`
	} `json:"results"`
}

// TestTopKMatchesLibrary is the acceptance check: the served answer must
// equal a direct library call on the same seed.
func TestTopKMatchesLibrary(t *testing.T) {
	const seed = 7
	s := newTestServer(t, Options{Seed: seed})
	c := dblp.Generate(stats.NewRNG(seed), testConfig().Corpus)
	ix := pathsim.NewIndex(c.Net, pathAPVPA)

	for _, x := range []int{0, 5, 17, 63} {
		var body topKBody
		if code := get(t, s, "GET", "/v1/pathsim/topk?id="+itoa(x)+"&k=8", &body); code != 200 {
			t.Fatalf("topk id=%d: code %d", x, code)
		}
		want := ix.TopK(x, 8)
		if len(body.Results) != len(want) {
			t.Fatalf("id=%d: got %d results, want %d", x, len(body.Results), len(want))
		}
		for i, p := range want {
			got := body.Results[i]
			if got.ID != p.ID || math.Abs(got.Score-p.Score) > 1e-12 {
				t.Fatalf("id=%d rank %d: got (%d, %v), want (%d, %v)", x, i, got.ID, got.Score, p.ID, p.Score)
			}
			if got.Name != c.Net.Name(dblp.TypeAuthor, p.ID) {
				t.Fatalf("id=%d rank %d: name %q", x, i, got.Name)
			}
		}
	}
}

func TestTopKByNameAndErrors(t *testing.T) {
	s := newTestServer(t, Options{})
	name := s.Snapshot().Corpus.Net.Name(dblp.TypeAuthor, 3)
	var body topKBody
	if code := get(t, s, "GET", "/v1/pathsim/topk?author="+name+"&k=5", &body); code != 200 {
		t.Fatalf("by-name code %d", code)
	}
	if body.Query.ID != 3 || body.Query.Name != name {
		t.Fatalf("query echo: %+v", body.Query)
	}
	if code := get(t, s, "GET", "/v1/pathsim/topk?author=nobody", nil); code != 404 {
		t.Fatalf("unknown author: code %d", code)
	}
	if code := get(t, s, "GET", "/v1/pathsim/topk?id=100000", nil); code != 400 {
		t.Fatalf("out-of-range id: code %d", code)
	}
	if code := get(t, s, "GET", "/v1/pathsim/topk?id=1&k=0", nil); code != 400 {
		t.Fatalf("k=0: code %d", code)
	}
	if code := get(t, s, "GET", "/v1/pathsim/topk", nil); code != 400 {
		t.Fatalf("missing id: code %d", code)
	}
}

// TestTopKArbitraryPath serves a client-supplied meta-path and checks
// the answer against a direct library computation on the same seed.
func TestTopKArbitraryPath(t *testing.T) {
	const seed = 11
	s := newTestServer(t, Options{Seed: seed})
	c := dblp.Generate(stats.NewRNG(seed), testConfig().Corpus)
	apa := hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeAuthor}
	ix := pathsim.NewIndex(c.Net, apa)

	for _, x := range []int{0, 7, 42} {
		var body topKBody
		if code := get(t, s, "GET", "/v1/pathsim/topk?path=A-P-A&id="+itoa(x)+"&k=6", &body); code != 200 {
			t.Fatalf("topk path=A-P-A id=%d: code %d", x, code)
		}
		if body.Path != apa.String() {
			t.Fatalf("path echo = %q, want %q", body.Path, apa.String())
		}
		want := ix.TopK(x, 6)
		if len(body.Results) != len(want) {
			t.Fatalf("id=%d: got %d results, want %d", x, len(body.Results), len(want))
		}
		for i, p := range want {
			got := body.Results[i]
			if got.ID != p.ID || math.Abs(got.Score-p.Score) > 1e-12 {
				t.Fatalf("id=%d rank %d: got (%d, %v), want (%d, %v)", x, i, got.ID, got.Score, p.ID, p.Score)
			}
		}
	}

	// Repeat query: the per-snapshot index is memoized and the result
	// cache keys on the path, so the second hit comes from cache.
	var a, b topKBody
	get(t, s, "GET", "/v1/pathsim/topk?path=A-P-A&id=3&k=4", &a)
	get(t, s, "GET", "/v1/pathsim/topk?path=A-P-A&id=3&k=4", &b)
	if a.Source == "cache" || b.Source != "cache" {
		t.Fatalf("sources = %q, %q", a.Source, b.Source)
	}
	// Same id under a different path must not alias in the cache.
	var other topKBody
	get(t, s, "GET", "/v1/pathsim/topk?id=3&k=4", &other)
	if other.Source == "cache" {
		t.Fatal("default-path query served from A-P-A cache entry")
	}

	// Venue-endpoint path (venues sharing authors): results carry venue
	// names, resolved within the path's endpoint type.
	var vp topKBody
	if code := get(t, s, "GET", "/v1/pathsim/topk?path=V-P-A-P-V&id=0&k=3", &vp); code != 200 {
		t.Fatalf("V-P-A-P-V: code %d", code)
	}
	if len(vp.Results) == 0 || vp.Results[0].Name == "" {
		t.Fatalf("V-P-A-P-V results: %+v", vp.Results)
	}
}

// TestTopKInvalidPaths is the no-crash regression suite: every way a
// client can hand us a bad path or id must come back 4xx, never panic.
func TestTopKInvalidPaths(t *testing.T) {
	s := newTestServer(t, Options{})
	for _, tc := range []struct {
		query string
		code  int
	}{
		{"path=A-P-X&id=0", 400},          // unknown type
		{"path=A-P-V&id=0", 400},          // asymmetric
		{"path=A&id=0", 400},              // too short
		{"path=A--A&id=0", 400},           // empty token
		{"path=A-V-A&id=0", 400},          // no author-venue relation in schema
		{"path=V-P-V&id=100000", 400},     // id beyond the venue index dim
		{"path=V-P-V&name=nobody", 404},   // unknown name at endpoint type
		{"path=A-P-A&author=nobody", 404}, // alias param, unknown name
	} {
		if code := get(t, s, "GET", "/v1/pathsim/topk?"+tc.query, nil); code != tc.code {
			t.Fatalf("%s: code %d, want %d", tc.query, code, tc.code)
		}
	}
	// The server must still answer after all that hostile input.
	if code := get(t, s, "GET", "/v1/pathsim/topk?id=0&k=3", nil); code != 200 {
		t.Fatalf("server unhealthy after invalid paths: %d", code)
	}
}

// TestTopKOutOfRangeRegression pins the pathsim fix: an id valid for
// the default author index but out of range for a smaller per-path
// index must 400 (it used to panic in diag[x] before the Dim check and
// the TopK range guard existed).
func TestTopKOutOfRangeRegression(t *testing.T) {
	s := newTestServer(t, Options{})
	snap := s.Snapshot()
	vpv, err := snap.PathIndex(context.Background(), "V-P-V")
	if err != nil {
		t.Fatal(err)
	}
	x := vpv.Dim() // valid author id (80 authors), invalid venue id (6 venues)
	if x >= snap.PathSim.Dim() {
		t.Fatalf("test premise broken: %d venues >= %d authors", x, snap.PathSim.Dim())
	}
	if code := get(t, s, "GET", "/v1/pathsim/topk?path=V-P-V&id="+itoa(x), nil); code != 400 {
		t.Fatalf("out-of-range id for per-path index: code %d, want 400", code)
	}
	// And the library layer itself returns empty instead of panicking.
	if got := vpv.TopK(x, 5); got != nil {
		t.Fatalf("TopK out of range = %v, want nil", got)
	}
	if got := vpv.BatchTopK([]int{-1, x}, 5); len(got) != 2 || got[0] != nil || got[1] != nil {
		t.Fatalf("BatchTopK out of range = %v", got)
	}
}

func TestRankEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	snap := s.Snapshot()
	for _, metric := range []string{"pagerank", "authority", "hub"} {
		var body struct {
			Metric string `json:"metric"`
			Top    []struct {
				ID    int     `json:"id"`
				Score float64 `json:"score"`
			} `json:"top"`
		}
		if code := get(t, s, "GET", "/v1/rank?metric="+metric+"&top=6", &body); code != 200 {
			t.Fatalf("%s: code %d", metric, code)
		}
		if body.Metric != metric || len(body.Top) != 6 {
			t.Fatalf("%s: %+v", metric, body)
		}
		for i := 1; i < len(body.Top); i++ {
			if body.Top[i].Score > body.Top[i-1].Score {
				t.Fatalf("%s: scores not descending", metric)
			}
		}
	}
	var pr struct {
		Top []struct {
			ID int `json:"id"`
		} `json:"top"`
	}
	get(t, s, "GET", "/v1/rank?top=1", &pr)
	if want := snap.PageRank.TopK(1)[0]; pr.Top[0].ID != want {
		t.Fatalf("pagerank top-1 = %d, want %d", pr.Top[0].ID, want)
	}
	if code := get(t, s, "GET", "/v1/rank?metric=bogus", nil); code != 400 {
		t.Fatal("bogus metric accepted")
	}
	if code := get(t, s, "GET", "/v1/rank?top=-1", nil); code != 400 {
		t.Fatal("negative top accepted")
	}
}

func TestClustersEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	var rc struct {
		K        int     `json:"k"`
		NMI      float64 `json:"nmi"`
		Clusters []struct {
			Venues  []scoredObject `json:"venues"`
			Authors []scoredObject `json:"authors"`
		} `json:"clusters"`
	}
	if code := get(t, s, "GET", "/v1/clusters?algo=rankclus&top=3", &rc); code != 200 {
		t.Fatalf("rankclus code %d", code)
	}
	if rc.K != 2 || len(rc.Clusters) != 2 || len(rc.Clusters[0].Venues) == 0 {
		t.Fatalf("rankclus payload: %+v", rc)
	}
	var nc map[string]any
	if code := get(t, s, "GET", "/v1/clusters?algo=netclus&top=3", &nc); code != 200 {
		t.Fatalf("netclus code %d", code)
	}
	clusters := nc["clusters"].([]any)
	entry := clusters[0].(map[string]any)
	for _, key := range []string{"authors", "venues", "terms"} {
		if _, ok := entry[key]; !ok {
			t.Fatalf("netclus cluster missing %q: %v", key, entry)
		}
	}
	if code := get(t, s, "GET", "/v1/clusters?algo=bogus", nil); code != 400 {
		t.Fatal("bogus algo accepted")
	}
	if code := get(t, s, "GET", "/v1/clusters?top=-1", nil); code != 400 {
		t.Fatal("negative top accepted")
	}
}

// TestCacheHitAndEpochInvalidation drives the cache through the full
// lifecycle: miss → hit → snapshot swap → miss under the new epoch.
func TestCacheHitAndEpochInvalidation(t *testing.T) {
	s := newTestServer(t, Options{})
	var first, second, third topKBody
	get(t, s, "GET", "/v1/pathsim/topk?id=9&k=5", &first)
	get(t, s, "GET", "/v1/pathsim/topk?id=9&k=5", &second)
	if first.Source != "batch" || second.Source != "cache" {
		t.Fatalf("sources = %q, %q; want batch, cache", first.Source, second.Source)
	}
	if first.Epoch != 1 || second.Epoch != 1 {
		t.Fatalf("epochs = %d, %d", first.Epoch, second.Epoch)
	}

	var rb struct {
		Epoch int64 `json:"epoch"`
		Seed  int64 `json:"seed"`
	}
	if code := get(t, s, "POST", "/v1/rebuild?seed=99", &rb); code != 200 {
		t.Fatalf("rebuild code %d", code)
	}
	if rb.Epoch != 2 || rb.Seed != 99 {
		t.Fatalf("rebuild = %+v", rb)
	}
	if code := get(t, s, "GET", "/v1/rebuild", nil); code != 405 {
		t.Fatal("GET rebuild accepted")
	}

	get(t, s, "GET", "/v1/pathsim/topk?id=9&k=5", &third)
	if third.Source != "batch" || third.Epoch != 2 {
		t.Fatalf("post-rebuild source=%q epoch=%d; want batch, 2", third.Source, third.Epoch)
	}
}

func TestCacheDisabledServer(t *testing.T) {
	s := newTestServer(t, Options{CacheCapacity: -1})
	var a, b topKBody
	get(t, s, "GET", "/v1/pathsim/topk?id=2&k=4", &a)
	get(t, s, "GET", "/v1/pathsim/topk?id=2&k=4", &b)
	if a.Source != "batch" || b.Source != "batch" {
		t.Fatalf("disabled cache still hit: %q, %q", a.Source, b.Source)
	}
}

func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, Options{})
	get(t, s, "GET", "/v1/pathsim/topk?id=0&k=3", nil)
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"hinet_snapshot_epoch 1",
		`hinet_http_requests_total{endpoint="/v1/pathsim/topk"} 1`,
		"hinet_topk_batches_total 1",
		"hinet_cache_misses_total 1",
		"hinet_metapath_cache_hits_total",
		"hinet_metapath_gram_products_total",
		"hinet_pool_workers",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func itoa(x int) string {
	b, _ := json.Marshal(x)
	return string(b)
}
