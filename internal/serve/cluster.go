// Sharded serving glue: when Options.Shards > 1 the server fronts an
// in-process scatter-gather cluster (internal/cluster) instead of the
// snapshot's own index. The store keeps materializing snapshots — every
// shard is a deterministic replica of the same recipe, so the store's
// artifacts double as the reference the sharded answers must be
// bitwise-equal to — and the coordinator answers the kernel-shaped
// surfaces (top-k, rank, clusters) from partitioned candidate ranges.

package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"hinet/internal/cluster"
	"hinet/internal/pathsim"
)

// clusterKernel adapts the scatter-gather coordinator to the batcher's
// topKKernel: one coalesced batch becomes one BatchTopK fan-out at the
// pinned epoch. Dim is the endpoint-type cardinality captured at
// resolve time (the replica networks agree with the store's snapshot).
type clusterKernel struct {
	coord *cluster.Coordinator
	path  string // resolved path spec ("" = prebuilt APVPA)
	dim   int
	epoch int64
}

func (ck clusterKernel) Dim() int { return ck.dim }

func (ck clusterKernel) BatchTopKCtx(ctx context.Context, xs []int, k int) ([][]pathsim.Pair, error) {
	return ck.coord.BatchTopKAt(ctx, ck.epoch, ck.path, xs, k)
}

// defaultKernel is the kernel for the default (empty path=) query
// surface: the coordinator when sharded, the snapshot's prebuilt index
// otherwise.
func (s *Server) defaultKernel(snap *Snapshot) (topKKernel, string) {
	if s.coord != nil {
		return clusterKernel{coord: s.coord, path: "", dim: snap.PathSim.Dim(), epoch: snap.Epoch}, pathAPVPA.String()
	}
	return snap.PathSim, pathAPVPA.String()
}

// Coordinator exposes the scatter-gather tier (nil when unsharded);
// tests and the bench harness reach shards through it.
func (s *Server) Coordinator() *cluster.Coordinator { return s.coord }

// clusterStats is the /v1/stats "cluster" entry. Its key set and value
// types are identical in both modes — the replay harness digests
// response shapes, and a trace recorded single-process must replay
// cleanly against a sharded server (and vice versa).
func (s *Server) clusterStats(snap *Snapshot) map[string]any {
	if s.coord == nil {
		return map[string]any{
			"shards":   1,
			"epoch":    snap.Epoch,
			"policy":   "none",
			"skew":     1.0,
			"scatters": uint64(0),
			"routed":   uint64(0),
		}
	}
	return map[string]any{
		"shards":   s.coord.Shards(),
		"epoch":    s.coord.Epoch(),
		"policy":   s.coord.PolicyName(),
		"skew":     s.coord.Skew(),
		"scatters": s.coord.Scatters(),
		"routed":   s.coord.Routed(),
	}
}

// handleClusterShards serves the partition-skew view: per-shard epoch,
// candidate range, nnz, and load counters. Registered in both modes
// (the endpoint set is fixed at boot); an unsharded server answers 404.
func (s *Server) handleClusterShards(w http.ResponseWriter, r *http.Request) {
	if s.coord == nil {
		httpError(w, http.StatusNotFound, "server is not sharded (start with -shards N)")
		return
	}
	tr := traceOf(w)
	sp := tr.Start("collect")
	q := r.URL.Query()
	stats := s.coord.Stats()
	shards := make([]map[string]any, len(stats))
	for i, st := range stats {
		shards[i] = map[string]any{
			"id":       st.ID,
			"epoch":    st.Epoch,
			"lo":       st.Lo,
			"hi":       st.Hi,
			"rows":     st.Rows,
			"nnz":      st.NNZ,
			"inflight": st.Inflight,
			"queries":  st.Queries,
		}
	}
	payload := map[string]any{
		"shards":    shards,
		"epoch":     s.coord.Epoch(),
		"policy":    s.coord.PolicyName(),
		"partition": s.coord.Partition().Bounds,
		"skew":      s.coord.Skew(),
	}
	tr.Next(sp, "serialize")
	writeJSON(w, http.StatusOK, debugTrace(q, tr, payload))
}

// writeClusterMetrics appends the hinet_cluster_* / hinet_shard_*
// series to /metrics. Nothing is emitted unsharded — a scrape config
// keyed on these series only ever sees them on a sharded process.
func (s *Server) writeClusterMetrics(w io.Writer) {
	if s.coord == nil {
		return
	}
	fmt.Fprintf(w, "hinet_cluster_shards %d\n", s.coord.Shards())
	fmt.Fprintf(w, "hinet_cluster_epoch %d\n", s.coord.Epoch())
	fmt.Fprintf(w, "hinet_cluster_skew %g\n", s.coord.Skew())
	fmt.Fprintf(w, "hinet_cluster_scatters_total %d\n", s.coord.Scatters())
	fmt.Fprintf(w, "hinet_cluster_routed_total %d\n", s.coord.Routed())
	for _, st := range s.coord.Stats() {
		fmt.Fprintf(w, "hinet_shard_epoch{shard=\"%d\"} %d\n", st.ID, st.Epoch)
		fmt.Fprintf(w, "hinet_shard_nnz{shard=\"%d\"} %d\n", st.ID, st.NNZ)
		fmt.Fprintf(w, "hinet_shard_rows{shard=\"%d\"} %d\n", st.ID, st.Rows)
		fmt.Fprintf(w, "hinet_shard_inflight{shard=\"%d\"} %d\n", st.ID, st.Inflight)
		fmt.Fprintf(w, "hinet_shard_queries_total{shard=\"%d\"} %d\n", st.ID, st.Queries)
	}
}

// clusterWrite runs the coordinator half of a write before the store
// half, both under writeMu: the coordinator epoch therefore always
// leads (or equals) the store epoch, so a snapshot's epoch is always
// servable by the shards — current, or the retained previous
// generation. Unsharded, it reduces to just the store call.
func (s *Server) clusterWrite(coordFn func() error, storeFn func() error) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.coord != nil {
		if err := coordFn(); err != nil {
			return err
		}
	}
	return storeFn()
}
