// Snapshot store: the offline half of the serving subsystem. A
// Snapshot is one immutable generation of model artifacts — ranking
// vectors, cluster models, and a prebuilt PathSim index — materialized
// from a single corpus build. The Store owns the live snapshot behind
// an atomic pointer: queries read it wait-free, rebuilds construct a
// whole new generation off to the side and swap it in atomically, so a
// rebuild never blocks or corrupts in-flight queries. Each generation
// carries a monotonically increasing epoch; the result cache keys on it,
// so a swap implicitly invalidates every cached answer.

package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"hinet/internal/cluster"
	"hinet/internal/core"
	"hinet/internal/dblp"
	"hinet/internal/ingest"
	"hinet/internal/metapath"
	"hinet/internal/netclus"
	"hinet/internal/obs"
	"hinet/internal/pathsim"
	"hinet/internal/rank"
)

// Meta paths materialized at snapshot build time: APVPA (shared-venue
// peers, the PathSim index) and APA (co-authorship, the square graph
// PageRank and HITS run on). These alias internal/cluster's: the model
// recipe itself lives there (cluster.BuildModels / cluster.IngestModels),
// which is what makes cluster shards exact replicas of this store's
// generations.
var (
	pathAPVPA = cluster.PathAPVPA
	pathAPA   = cluster.PathAPA
)

// Snapshot is one immutable generation of serving artifacts. Nothing
// in it is mutated after Rebuild returns; handlers and the batcher may
// read it from any goroutine without locking.
type Snapshot struct {
	Epoch     int64         // generation counter, starts at 1
	Seed      int64         // RNG seed the corpus and models were built from
	BuiltAt   time.Time     // wall-clock time of the build
	BuildTime time.Duration // how long materialization took

	Corpus   *dblp.Corpus    // network + names + ground-truth areas
	PageRank rank.Result     // PageRank over the co-author (APA) graph
	HITS     rank.HITSResult // HITS over the same graph
	RankClus *core.Model     // venue clusters (venue×author bipartite)
	NetClus  *netclus.Model  // net-clusters of the paper star network
	PathSim  *pathsim.Index  // prebuilt APVPA similarity index

	// paths memoizes pathsim indexes built on demand for arbitrary
	// path= queries, keyed by resolved path string, holding at most
	// maxPathIndexes entries (beyond that, indexes are rebuilt per
	// request — correct, just uncached — so an adversarial stream of
	// distinct paths cannot grow memory without bound; the engine's own
	// cache has the matching maxEntries cap). The commuting matrices
	// behind them live in the network's meta-path engine, so an index
	// build after the first for a given path is just a diagonal
	// extraction. Dies with the snapshot, so a rebuild can never serve
	// a stale-epoch index.
	paths     sync.Map
	pathCount atomic.Int32
}

// maxPathIndexes bounds Snapshot.paths (see its comment).
const maxPathIndexes = 64

// errNoSnapshot is returned by Ingest before the first Rebuild — the
// one ingest failure that is the server's state, not the client's
// batch (it maps to 503, not 400).
var errNoSnapshot = errors.New("serve: no snapshot to ingest into")

// Engine returns the snapshot's meta-path engine (the planner and
// materialization cache of the snapshot's network).
func (s *Snapshot) Engine() *metapath.Engine { return s.Corpus.Net.PathEngine() }

// PathIndex resolves a client path spec (e.g. "A-P-A"; empty means the
// prebuilt APVPA index) into a PathSim index over this snapshot,
// building and memoizing it on first use. Errors are client errors —
// unparseable specs, unknown types, schema-less hops, asymmetric paths
// — and map to HTTP 400. A trace carried by ctx (obs.WithTrace) has
// its current span annotated with how the index was resolved:
// "prebuilt", "cached", or "built".
func (s *Snapshot) PathIndex(ctx context.Context, spec string) (*pathsim.Index, error) {
	tr := obs.FromContext(ctx)
	if spec == "" {
		tr.Note("prebuilt")
		return s.PathSim, nil
	}
	path, err := s.Corpus.Net.ParseMetaPath(spec)
	if err != nil {
		return nil, err
	}
	key := path.String()
	if v, ok := s.paths.Load(key); ok {
		tr.Note("cached")
		return v.(*pathsim.Index), nil
	}
	// NewIndexCtx validates symmetry and length (errors go to the client
	// verbatim) and threads ctx into the materialization, so a dead
	// caller stops the product chain; a cancelled build is not cached.
	ix, err := pathsim.NewIndexCtx(ctx, s.Corpus.Net, path)
	if err != nil {
		return nil, err
	}
	tr.Note("built")
	if s.pathCount.Load() >= maxPathIndexes {
		return ix, nil
	}
	v, loaded := s.paths.LoadOrStore(key, ix)
	if !loaded {
		s.pathCount.Add(1)
	}
	return v.(*pathsim.Index), nil
}

// PathIndexCached resolves spec only against already-materialized
// indexes — the prebuilt one or a previously built entry of the memo
// map. This is the brownout resolution path: a degraded server must
// not start new commuting-matrix materializations, so anything not
// already in memory reports false (and the caller sheds).
func (s *Snapshot) PathIndexCached(spec string) (*pathsim.Index, bool) {
	if spec == "" {
		return s.PathSim, true
	}
	path, err := s.Corpus.Net.ParseMetaPath(spec)
	if err != nil {
		return nil, false
	}
	if v, ok := s.paths.Load(path.String()); ok {
		return v.(*pathsim.Index), true
	}
	return nil, false
}

// ModelConfig controls what a snapshot materializes.
type ModelConfig struct {
	Corpus   dblp.Config // corpus size/separability (zero value = library defaults)
	K        int         // cluster count for RankClus/NetClus (0 = number of corpus areas)
	Restarts int         // random restarts per clustering model (0 = 1)
}

// Store holds the live snapshot and serializes rebuilds.
type Store struct {
	cfg   ModelConfig
	cur   atomic.Pointer[Snapshot]
	epoch atomic.Int64
	mu    sync.Mutex // one rebuild at a time
}

// NewStore returns an empty store; call Rebuild to materialize the
// first snapshot.
func NewStore(cfg ModelConfig) *Store { return &Store{cfg: cfg} }

// Current returns the live snapshot, or nil before the first Rebuild.
func (s *Store) Current() *Snapshot { return s.cur.Load() }

// spec translates the store's model configuration into the shared
// build-recipe spec (internal/cluster).
func (s *Store) spec() cluster.ModelSpec {
	return cluster.ModelSpec{Corpus: s.cfg.Corpus, K: s.cfg.K, Restarts: s.cfg.Restarts}
}

// models views a snapshot as the shared recipe's artifact set, so
// Ingest can hand it to cluster.IngestModels as the previous generation.
func (snap *Snapshot) models() *cluster.Models {
	return &cluster.Models{
		Seed:     snap.Seed,
		Corpus:   snap.Corpus,
		PageRank: snap.PageRank,
		HITS:     snap.HITS,
		RankClus: snap.RankClus,
		NetClus:  snap.NetClus,
		PathSim:  snap.PathSim,
	}
}

// fromModels wraps a recipe artifact set in a Snapshot (epoch and
// timings are the caller's).
func fromModels(m *cluster.Models, builtAt time.Time) *Snapshot {
	return &Snapshot{
		Seed:     m.Seed,
		BuiltAt:  builtAt,
		Corpus:   m.Corpus,
		PageRank: m.PageRank,
		HITS:     m.HITS,
		RankClus: m.RankClus,
		NetClus:  m.NetClus,
		PathSim:  m.PathSim,
	}
}

// Rebuild materializes a fresh snapshot from seed and atomically swaps
// it in as the live generation. Concurrent queries keep reading the old
// snapshot until the swap; concurrent Rebuild calls run one at a time.
// The artifacts come from cluster.BuildModels — the same deterministic
// recipe every shard of a sharded tier runs.
func (s *Store) Rebuild(seed int64) *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()

	start := time.Now()
	snap := fromModels(cluster.BuildModels(seed, s.spec()), start)
	snap.BuildTime = time.Since(start)
	snap.Epoch = s.epoch.Add(1)
	// Register the prebuilt index under its path key so
	// path=A-P-V-P-A resolves to it instead of rebuilding.
	snap.paths.Store(pathAPVPA.String(), snap.PathSim)
	snap.pathCount.Add(1)
	s.cur.Store(snap)
	return snap
}

// Ingest applies a delta batch as an incremental generation: the live
// network is cloned copy-on-write (the clone shares link storage,
// relation matrices and meta-path materializations), the deltas merge
// into the clone through internal/ingest, and a new snapshot is built
// from the result — PageRank warm-started from the previous epoch's
// scores, the PathSim index rebuilt from the engine's surviving
// cached intermediates — then swapped in atomically. In-flight queries
// keep reading the previous snapshot (whose network is never mutated)
// until the swap; epochs come from the same counter as Rebuild, so
// they stay strictly monotonic across mixed ingest/rebuild streams.
//
// On a validation error the clone is discarded and nothing changes
// (ingestion is all-or-nothing at the store level). The clustering
// models (RankClus/NetClus) are carried over from the previous
// snapshot by default — they summarize the corpus and drift only
// slowly under small deltas; pass refreshModels to recompute them.
func (s *Store) Ingest(deltas []ingest.Delta, refreshModels bool) (*Snapshot, ingest.Summary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.cur.Load()
	if cur == nil {
		return nil, ingest.Summary{}, errNoSnapshot
	}
	start := time.Now()
	m, sum, err := cluster.IngestModels(cur.models(), deltas, refreshModels, s.spec())
	if err != nil {
		return nil, sum, err
	}
	snap := fromModels(m, start)
	snap.BuildTime = time.Since(start)
	snap.Epoch = s.epoch.Add(1)
	snap.paths.Store(pathAPVPA.String(), snap.PathSim)
	snap.pathCount.Add(1)
	s.cur.Store(snap)
	return snap, sum, nil
}
