//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation perturbs allocation counts, so alloc-budget tests
// skip themselves under -race.
const raceEnabled = true
