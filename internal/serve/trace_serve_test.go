package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hinet/internal/obs"
)

// lastTrace returns the most recent completed trace for endpoint, or
// fails the test.
func lastTrace(t *testing.T, s *Server, endpoint string) *obs.TraceJSON {
	t.Helper()
	for _, tr := range s.Obs().Log().Recent() {
		if tr.Endpoint() == endpoint {
			return tr.Snapshot()
		}
	}
	t.Fatalf("no trace recorded for %s", endpoint)
	return nil
}

// countSpans walks a span tree counting named spans.
func countSpans(spans []*obs.SpanJSON) int {
	n := 0
	for _, sp := range spans {
		n += 1 + countSpans(sp.Children)
	}
	return n
}

// TestTraceStageCoverage is the PR's acceptance criterion: every 2xx
// response on the three query endpoints carries a trace with at least
// four named stages whose root spans account for at least 90% of the
// handler wall time (Next-chained spans tile, so the only untraced time
// is the wrapper's own entry/exit).
func TestTraceStageCoverage(t *testing.T) {
	s := newTestServer(t, Options{Seed: 5})
	reqs := map[string]string{
		"/v1/rank":         "/v1/rank?top=10",
		"/v1/clusters":     "/v1/clusters?top=3",
		"/v1/pathsim/topk": "/v1/pathsim/topk?id=1&k=5",
	}
	for endpoint, path := range reqs {
		// The span chains tile by construction, but the covered fraction
		// is measured against a real clock: a GC pause landing between
		// two spans (common right after the snapshot build) shows up as
		// untraced time. Every trace must carry the full stage set; the
		// timing bound is asserted on the best of a few attempts.
		best := 0.0
		for attempt := 0; attempt < 5; attempt++ {
			if code := get(t, s, "GET", path, nil); code != 200 {
				t.Fatalf("%s = %d", path, code)
			}
			js := lastTrace(t, s, endpoint)
			if js.Status != 200 {
				t.Fatalf("%s trace status = %d", endpoint, js.Status)
			}
			if n := countSpans(js.Stages); n < 4 {
				t.Fatalf("%s trace has %d named stages, want >= 4", endpoint, n)
			}
			var rootSum float64
			for _, sp := range js.Stages {
				rootSum += sp.DurUS
			}
			if js.DurUS <= 0 {
				t.Fatalf("%s trace has no duration", endpoint)
			}
			if cover := rootSum / js.DurUS; cover > best {
				best = cover
			}
			if best >= 0.9 {
				break
			}
		}
		if best < 0.9 || best > 1.0+1e-9 {
			t.Errorf("%s stages cover %.1f%% of wall time, want >= 90%%", endpoint, 100*best)
		}
	}
}

// TestTraceStageNames pins the per-endpoint stage plans end to end: the
// spans a real request produces are exactly the declared ones, so the
// /metrics series and the trace trees can never drift apart.
func TestTraceStageNames(t *testing.T) {
	s := newTestServer(t, Options{Seed: 5})
	// Miss then hit: the second topk request exercises the cache-hit arm.
	for i := 0; i < 2; i++ {
		if code := get(t, s, "GET", "/v1/pathsim/topk?id=2&k=5", nil); code != 200 {
			t.Fatalf("topk = %d", code)
		}
	}
	js := lastTrace(t, s, "/v1/pathsim/topk")
	names := map[string]string{} // stage → note
	var walk func([]*obs.SpanJSON)
	walk = func(spans []*obs.SpanJSON) {
		for _, sp := range spans {
			names[sp.Stage] = sp.Note
			walk(sp.Children)
		}
	}
	walk(js.Stages)
	for _, want := range []string{"admission", "params", "resolve", "query", "cache", "render", "serialize"} {
		if _, ok := names[want]; !ok {
			t.Errorf("topk trace missing stage %q (got %v)", want, names)
		}
	}
	if names["cache"] != "hit" {
		t.Errorf("second topk cache note = %q, want hit", names["cache"])
	}
	if names["resolve"] != "prebuilt" {
		t.Errorf("resolve note = %q, want prebuilt", names["resolve"])
	}
	// Undeclared span names must not create stage histograms.
	fam := s.Obs().Family("/v1/pathsim/topk")
	if fam.Stage("cache") == nil || fam.Stage("kernel") == nil {
		t.Fatal("declared stages missing from family")
	}
	if got := fam.Stage("no-such-stage"); got != nil {
		t.Fatalf("undeclared stage produced a histogram: %v", got)
	}
}

// TestTraceAllocDelta pins the tracing overhead on the hot (cache-hit)
// query path: at most 2 heap allocations per request over the untraced
// baseline — one for the Trace itself, one for the context node that
// carries it into the query path.
func TestTraceAllocDelta(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	run := func(noTrace bool) float64 {
		s := newTestServer(t, Options{Seed: 5, NoTrace: noTrace})
		const path = "/v1/pathsim/topk?id=3&k=5"
		hit := func() {
			req := httptest.NewRequest("GET", path, nil)
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != 200 {
				t.Fatalf("topk = %d", rec.Code)
			}
		}
		hit() // warm the result cache so runs measure the steady state
		return testing.AllocsPerRun(100, hit)
	}
	base := run(true)
	traced := run(false)
	if delta := traced - base; delta > 2.5 {
		t.Fatalf("tracing adds %.1f allocs/request (traced %.1f, base %.1f), want <= 2", delta, traced, base)
	}
}

// TestSlowlogEndpoint exercises /v1/debug/slowlog end to end: traffic
// lands in both retention buffers and renders as span trees.
func TestSlowlogEndpoint(t *testing.T) {
	s := newTestServer(t, Options{Seed: 5})
	for i := 0; i < 3; i++ {
		if code := get(t, s, "GET", "/v1/rank?top=5", nil); code != 200 {
			t.Fatalf("rank = %d", code)
		}
	}
	var body struct {
		Slowest []obs.TraceJSON `json:"slowest"`
		Recent  []obs.TraceJSON `json:"recent"`
	}
	if code := get(t, s, "GET", "/v1/debug/slowlog", &body); code != 200 {
		t.Fatalf("slowlog = %d", code)
	}
	if len(body.Slowest) == 0 || len(body.Recent) == 0 {
		t.Fatalf("slowlog empty: %d slowest, %d recent", len(body.Slowest), len(body.Recent))
	}
	found := false
	for _, tr := range body.Recent {
		if tr.Endpoint == "/v1/rank" {
			found = true
			if len(tr.Stages) < 4 {
				t.Fatalf("rank trace in slowlog has %d stages", len(tr.Stages))
			}
		}
	}
	if !found {
		t.Fatal("no /v1/rank trace in slowlog recent buffer")
	}
}

// TestDebugEcho: debug=1 attaches the request's own span tree to the
// response payload; without it the key is absent.
func TestDebugEcho(t *testing.T) {
	s := newTestServer(t, Options{Seed: 5})
	var withDebug map[string]json.RawMessage
	if code := get(t, s, "GET", "/v1/rank?top=3&debug=1", &withDebug); code != 200 {
		t.Fatalf("rank = %d", code)
	}
	raw, ok := withDebug["trace"]
	if !ok {
		t.Fatal("debug=1 response carries no trace")
	}
	if !strings.Contains(string(raw), `"stage": "rank"`) {
		t.Fatalf("debug trace missing rank stage:\n%s", raw)
	}
	var plain map[string]json.RawMessage
	if code := get(t, s, "GET", "/v1/rank?top=3", &plain); code != 200 {
		t.Fatalf("rank = %d", code)
	}
	if _, ok := plain["trace"]; ok {
		t.Fatal("trace echoed without debug=1")
	}
}

// TestPprofGate: /debug/pprof/ is absent by default and live behind
// Options.Pprof.
func TestPprofGate(t *testing.T) {
	off := newTestServer(t, Options{Seed: 5})
	if code := get(t, off, "GET", "/debug/pprof/", nil); code != http.StatusNotFound {
		t.Fatalf("pprof without flag = %d, want 404", code)
	}
	on := newTestServer(t, Options{Seed: 5, Pprof: true})
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	on.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index = %d", rec.Code)
	}
}

// TestStatsLatencyShape: the /v1/stats latency section always carries
// every endpoint and every declared stage, populated or not — the
// replay harness digests response shapes, so the key set must not
// depend on traffic order.
func TestStatsLatencyShape(t *testing.T) {
	s := newTestServer(t, Options{Seed: 5})
	var body struct {
		Latency map[string]struct {
			Count  uint64             `json:"count"`
			P50    float64            `json:"p50_us"`
			P99    float64            `json:"p99_us"`
			Stages map[string]ANYStat `json:"stages"`
		} `json:"latency"`
	}
	if code := get(t, s, "GET", "/v1/stats", &body); code != 200 {
		t.Fatalf("stats = %d", code)
	}
	for _, ep := range []string{"/healthz", "/metrics", "/v1/stats", "/v1/rank", "/v1/clusters",
		"/v1/pathsim/topk", "/v1/rebuild", "/v1/ingest", "/v1/debug/slowlog"} {
		if _, ok := body.Latency[ep]; !ok {
			t.Errorf("latency section missing endpoint %s", ep)
		}
	}
	topk := body.Latency["/v1/pathsim/topk"]
	for _, stage := range []string{"admission", "params", "resolve", "query", "cache", "batch", "kernel", "render", "serialize"} {
		if _, ok := topk.Stages[stage]; !ok {
			t.Errorf("topk latency missing stage %s", stage)
		}
	}
	// The /v1/stats request itself was traced, so its own endpoint shows
	// at least the in-flight count from a second scrape.
	if code := get(t, s, "GET", "/v1/stats", &body); code != 200 {
		t.Fatalf("stats = %d", code)
	}
	if body.Latency["/v1/stats"].Count == 0 {
		t.Error("stats latency count still zero after a traced request")
	}
}

// ANYStat absorbs one quantile row without pinning its field set.
type ANYStat map[string]float64
