// Sharded LRU result cache. Hot queries are answered straight from
// memory without touching the batching queue or the index. Keys embed
// the snapshot epoch (see Server.topK), so a snapshot swap leaves stale
// entries unreachable; they age out of the LRU lists naturally instead
// of requiring a flush. Sharding by key hash keeps lock contention flat
// under concurrent load — each shard has its own mutex and its own
// recency list.

package serve

import (
	"container/list"
	"sync"
)

// Cache is a sharded LRU map from string keys to opaque values. A nil
// *Cache is valid and behaves as always-miss (caching disabled).
type Cache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	val any
}

// NewCache returns a cache holding up to capacity entries across the
// given number of shards (clamped to ≥ 1). capacity ≤ 0 returns nil,
// the disabled cache.
func NewCache(capacity, shards int) *Cache {
	if capacity <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	perShard := (capacity + shards - 1) / shards
	c := &Cache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element, perShard)
	}
	return c
}

// fnv32a is the FNV-1a hash used to pick a shard.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[fnv32a(key)%uint32(len(c.shards))]
}

// Get returns the cached value and whether it was present, promoting
// the entry to most-recently-used on a hit.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.hits++
		s.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).val, true
	}
	s.misses++
	return nil, false
}

// Put inserts or refreshes an entry, evicting the shard's
// least-recently-used entry when the shard is full.
func (c *Cache) Put(key string, val any) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// CacheStats aggregates hit/miss counters across shards.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
	Shards  int    `json:"shards"`
}

// Stats returns the aggregate counters. The zero value is returned for
// the disabled (nil) cache.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{Shards: len(c.shards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Entries += s.ll.Len()
		s.mu.Unlock()
	}
	return st
}
