package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hinet/internal/chaos"
)

// slowChaos pins the kernel to a known, machine-independent cost so
// deadline and disconnect tests are deterministic rather than racing
// the real (microsecond-scale) kernel on the tiny test corpus.
func slowChaos(kernel time.Duration) *chaos.Injector {
	return chaos.New(chaos.Config{Seed: 1, KernelDelay: kernel})
}

// TestDeadlinePropagation: a request carrying timeout_ms shorter than
// the kernel cost must come back 504 — the deadline is enforced through
// admission → batcher → kernel dispatch, not just at the HTTP edge —
// and be accounted in the timeouts counter.
func TestDeadlinePropagation(t *testing.T) {
	s := newTestServer(t, Options{ControlInterval: -1, Chaos: slowChaos(80 * time.Millisecond)})

	req := httptest.NewRequest("GET", "/v1/pathsim/topk?id=0&k=5&timeout_ms=15", nil)
	rec := httptest.NewRecorder()
	start := time.Now()
	s.Handler().ServeHTTP(rec, req)
	elapsed := time.Since(start)

	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("got %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Errorf("504 body does not mention the deadline: %s", rec.Body.String())
	}
	// The response must arrive near the deadline, not after the kernel.
	if elapsed >= 80*time.Millisecond {
		t.Errorf("504 took %v; deadline did not cut the request short", elapsed)
	}
	if got := s.Admission().Timeouts; got != 1 {
		t.Errorf("Timeouts = %d, want 1", got)
	}
}

// TestDefaultTimeout: Options.DefaultTimeout applies when the client
// sends no timeout_ms.
func TestDefaultTimeout(t *testing.T) {
	s := newTestServer(t, Options{
		ControlInterval: -1,
		DefaultTimeout:  15 * time.Millisecond,
		Chaos:           slowChaos(80 * time.Millisecond),
	})
	if code := get(t, s, "GET", "/v1/pathsim/topk?id=0&k=5", nil); code != http.StatusGatewayTimeout {
		t.Fatalf("got %d, want 504", code)
	}
}

// shedBody is the machine-readable overload response contract.
type shedBody struct {
	Error        string `json:"error"`
	Class        string `json:"class"`
	RetryAfterMS int    `json:"retry_after_ms"`
}

// TestShedResponseFormat: every shed carries a Retry-After header and
// the JSON overload body loadgen's closed-loop backoff consumes.
func TestShedResponseFormat(t *testing.T) {
	s := newTestServer(t, Options{MaxConcurrent: 1, AdmissionWait: -1, ControlInterval: -1})

	// Query shed: the only slot is occupied.
	s.adm.sem <- struct{}{}
	req := httptest.NewRequest("GET", "/v1/pathsim/topk?id=0&k=5", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	<-s.adm.sem
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("got %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 lacks a Retry-After header")
	}
	var body shedBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("shed body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if body.Error != "overloaded" || body.Class != "query" || body.RetryAfterMS <= 0 {
		t.Errorf("shed body = %+v, want error=overloaded class=query retry_after_ms>0", body)
	}

	// Write shed: inflight at 3/4 of the limit sheds writes before
	// queries (with limit 1 the threshold is 1 inflight request).
	s.adm.inflight.Add(1)
	defer s.adm.inflight.Add(-1)
	req = httptest.NewRequest("POST", "/v1/rebuild", nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write got %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Class != "write" {
		t.Errorf("write shed body = %+v (err %v), want class=write", body, err)
	}
	if got := s.Admission().ShedWrite; got != 1 {
		t.Errorf("ShedWrite = %d, want 1", got)
	}
}

// TestAIMDLimiter drives the controller deterministically (no ticker:
// ControlInterval < 0) and checks the limit walks down multiplicatively
// under an over-target window, holds tokens to enforce it, and probes
// back up additively once the window clears.
func TestAIMDLimiter(t *testing.T) {
	s := newTestServer(t, Options{
		MaxConcurrent: 8, AdmissionFloor: 2,
		SLOTargetP99: 10 * time.Millisecond, ControlInterval: -1,
	})
	a := s.adm
	if a.Limit() != 8 {
		t.Fatalf("initial limit = %d, want 8 (the ceiling)", a.Limit())
	}

	overTarget := func() {
		for i := 0; i < 8; i++ {
			a.lat.Observe(50 * time.Millisecond)
		}
	}

	overTarget()
	s.controlStep()
	if a.Limit() != 5 {
		t.Fatalf("after one over-target window: limit = %d, want 5 (8×0.7)", a.Limit())
	}
	// No requests are in flight, so converge acquires all held tokens
	// immediately: effective capacity matches the limit.
	if held := len(a.sem); held != 3 {
		t.Errorf("controller holds %d tokens, want 3 (ceil−limit)", held)
	}

	overTarget()
	s.controlStep()
	overTarget()
	s.controlStep()
	overTarget()
	s.controlStep()
	if a.Limit() != 2 {
		t.Fatalf("after sustained overload: limit = %d, want the floor 2", a.Limit())
	}
	// The batch window tracks the squeeze: at the floor it is fully open.
	if w := time.Duration(s.batch.windowNS.Load()); w != s.opts.BatchWindowMax {
		t.Errorf("batch window = %v at the floor, want BatchWindowMax %v", w, s.opts.BatchWindowMax)
	}

	// Idle (empty) windows probe back up one step per tick.
	s.controlStep()
	s.controlStep()
	if a.Limit() != 4 {
		t.Errorf("after two healthy ticks: limit = %d, want 4", a.Limit())
	}
}

// TestBrownout: sustained over-target windows trip degraded mode —
// cache-only serving with truncated k and a "degraded" annotation,
// writes shed outright — and healthy windows recover automatically.
func TestBrownout(t *testing.T) {
	s := newTestServer(t, Options{
		MaxConcurrent: 4, SLOTargetP99: 10 * time.Millisecond, ControlInterval: -1,
		BrownoutEnter: 2, BrownoutExit: 2, BrownoutK: 5,
	})

	// Prime the cache so degraded mode has something to answer from.
	if code := get(t, s, "GET", "/v1/pathsim/topk?id=0&k=5", nil); code != 200 {
		t.Fatalf("prime query = %d", code)
	}

	for tick := 0; tick < 2; tick++ {
		for i := 0; i < 8; i++ {
			s.adm.lat.Observe(100 * time.Millisecond)
		}
		s.controlStep()
	}
	if !s.Admission().Degraded {
		t.Fatal("two over-target ticks did not enter brownout")
	}
	if got := s.Admission().Brownouts; got != 1 {
		t.Errorf("Brownouts = %d, want 1", got)
	}

	// Cached answer still serves, annotated, with k truncated to
	// BrownoutK (k=50 hits the same cache entry as the k=5 prime).
	req := httptest.NewRequest("GET", "/v1/pathsim/topk?id=0&k=50", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("degraded cached query = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Degraded bool   `json:"degraded"`
		Source   string `json:"source"`
		K        int    `json:"k"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if !body.Degraded || body.Source != "cache" || body.K != 5 {
		t.Errorf("degraded payload = %+v, want degraded=true source=cache k=5", body)
	}
	if got := s.Admission().DegradedResponses; got != 1 {
		t.Errorf("DegradedResponses = %d, want 1", got)
	}

	// A cache miss sheds instead of dispatching the kernel.
	if code := get(t, s, "GET", "/v1/pathsim/topk?id=1&k=5", nil); code != http.StatusServiceUnavailable {
		t.Errorf("degraded cache miss = %d, want 503", code)
	}
	// An unmaterialized path sheds instead of building an index.
	if code := get(t, s, "GET", "/v1/pathsim/topk?id=0&k=5&path=A-P-A", nil); code != http.StatusServiceUnavailable {
		t.Errorf("degraded unbuilt path = %d, want 503", code)
	}
	// Writes shed outright during a brownout.
	if code := get(t, s, "POST", "/v1/rebuild", nil); code != http.StatusServiceUnavailable {
		t.Errorf("degraded write = %d, want 503", code)
	}

	// Healthy (idle) windows recover automatically.
	s.controlStep()
	s.controlStep()
	if s.Admission().Degraded {
		t.Fatal("two healthy ticks did not exit brownout")
	}
	if code := get(t, s, "GET", "/v1/pathsim/topk?id=1&k=5", nil); code != 200 {
		t.Errorf("post-recovery kernel query = %d, want 200", code)
	}
}

// TestShutdownIdempotent: Shutdown is safe to call repeatedly, later
// calls return the first result immediately, and the server sheds
// cleanly (no hangs, no panics) afterwards.
func TestShutdownIdempotent(t *testing.T) {
	s := newTestServer(t, Options{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	start := time.Now()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("second Shutdown took %v, want immediate", d)
	}
	// The batcher is gone: heavy queries fail with 503, not a hang.
	if code := get(t, s, "GET", "/v1/pathsim/topk?id=0&k=5", nil); code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown query = %d, want 503", code)
	}
}

// TestShutdownBounded: a context that expires bounds Shutdown even
// when a chaos-slowed kernel call is mid-flight.
func TestShutdownBounded(t *testing.T) {
	s := New(Options{Models: testConfig(), ControlInterval: -1, Chaos: slowChaos(300 * time.Millisecond)})
	// Park a query in the batcher so a kernel dispatch is in flight.
	go func() {
		req := httptest.NewRequest("GET", "/v1/pathsim/topk?id=0&k=5", nil)
		s.Handler().ServeHTTP(httptest.NewRecorder(), req)
	}()
	time.Sleep(30 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Shutdown took %v despite a %v context", d, 50*time.Millisecond)
	}
	if err == nil {
		t.Log("shutdown finished inside the deadline (kernel completed first)")
	}
	// Let the dispatcher drain before the test returns.
	_ = s.Shutdown(context.Background())
	time.Sleep(350 * time.Millisecond)
}

// TestClientDisconnectMidBatch: a client that vanishes while its query
// is batched must not poison the shared batch result, leak its
// admission slot, or wedge the dispatcher. Run under -race in CI.
func TestClientDisconnectMidBatch(t *testing.T) {
	s := newTestServer(t, Options{ControlInterval: -1, Chaos: slowChaos(40 * time.Millisecond)})

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest("GET", "/v1/pathsim/topk?id=0&k=5", nil).WithContext(ctx)
		s.Handler().ServeHTTP(httptest.NewRecorder(), req)
	}()
	time.Sleep(15 * time.Millisecond) // admitted, batched, kernel delayed
	cancel()
	wg.Wait()

	// The slot came back.
	st := s.Admission()
	if st.Inflight != 0 {
		t.Errorf("Inflight = %d after disconnect, want 0", st.Inflight)
	}
	if n := len(s.adm.sem); n != 0 {
		t.Errorf("%d semaphore slots still held after disconnect", n)
	}

	// The same query answers correctly afterwards — the abandoned batch
	// did not cache a partial or poisoned result.
	req := httptest.NewRequest("GET", "/v1/pathsim/topk?id=0&k=5", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("follow-up query = %d: %s", rec.Code, rec.Body.String())
	}
	var body topKBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(body.Results) == 0 {
		t.Error("follow-up query returned no results")
	}
}

// TestDisconnectedRiderDoesNotSinkCompanions: when two queries share a
// batch and one client disconnects, the surviving rider still gets its
// answer (the kernel is only abandoned when every rider is gone).
func TestDisconnectedRiderDoesNotSinkCompanions(t *testing.T) {
	s := newTestServer(t, Options{
		ControlInterval: -1,
		BatchWindow:     30 * time.Millisecond,
		Chaos:           slowChaos(40 * time.Millisecond),
	})

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest("GET", "/v1/pathsim/topk?id=0&k=5", nil).WithContext(ctx)
		s.Handler().ServeHTTP(httptest.NewRecorder(), req)
	}()
	time.Sleep(5 * time.Millisecond) // rider 1 holds the batch window open

	var code int
	var bodyBytes []byte
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest("GET", "/v1/pathsim/topk?id=1&k=5", nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		code = rec.Code
		bodyBytes = rec.Body.Bytes()
	}()
	time.Sleep(10 * time.Millisecond) // both riders batched
	cancel()                          // rider 1 vanishes
	wg.Wait()

	if code != 200 {
		t.Fatalf("surviving rider got %d: %s", code, bodyBytes)
	}
	var body topKBody
	if err := json.Unmarshal(bodyBytes, &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(body.Results) == 0 {
		t.Error("surviving rider got an empty answer")
	}
}
