// HTTP-layer parity for the sharded serving tier: a sharded server and
// a single-process server booted from the same seed must answer every
// query surface with byte-identical JSON — same ids, same tie order,
// same float bits, same error strings — before and after an identical
// ingest. (The coordinator-level bitwise suite lives in
// internal/cluster; this pins the handler plumbing on top of it.)

package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"hinet/internal/dblp"
	"hinet/internal/ingest"
)

// do runs one request (with optional body) and returns status + body.
func do(t *testing.T, s *Server, method, path, body string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestShardedServeParity(t *testing.T) {
	single := newTestServer(t, Options{Seed: 4})
	sharded := newTestServer(t, Options{Seed: 4, Shards: 3, ShardPolicy: "least-loaded"})
	if sharded.Coordinator() == nil || sharded.Coordinator().Shards() != 3 {
		t.Fatal("sharded server did not boot a 3-shard coordinator")
	}

	name := url.QueryEscape(single.Snapshot().Corpus.Net.Name(dblp.TypeAuthor, 5))
	surfaces := []string{
		"/v1/pathsim/topk?id=0&k=5",
		"/v1/pathsim/topk?id=7&k=25",
		"/v1/pathsim/topk?id=7&k=25", // repeat: cache hit on both sides
		"/v1/pathsim/topk?path=A-P-A&id=3&k=10",
		"/v1/pathsim/topk?path=A-P-V-P-A&id=3&k=10", // spelled-out default path
		"/v1/pathsim/topk?name=" + name + "&k=5",
		"/v1/pathsim/topk?id=99999&k=5",        // 400: id out of range
		"/v1/pathsim/topk?id=0&k=5&path=A-P",   // 400: asymmetric path
		"/v1/pathsim/topk?id=0&k=5&path=A-X-A", // 400: unknown type
		"/v1/rank?metric=pagerank&top=12",
		"/v1/rank?metric=authority&top=12",
		"/v1/rank?metric=hub&top=12",
		"/v1/rank?metric=hub&top=99999", // k past the vector length
		"/v1/rank?metric=bogus",         // 400: unknown metric
		"/v1/clusters?algo=rankclus&top=4",
		"/v1/clusters?algo=netclus&top=4",
		"/v1/clusters?algo=bogus", // 400: unknown algo
	}
	compare := func(stage string) {
		t.Helper()
		for _, p := range surfaces {
			c1, b1 := do(t, single, "GET", p, "")
			c2, b2 := do(t, sharded, "GET", p, "")
			if c1 != c2 || b1 != b2 {
				t.Fatalf("%s: %s diverged\nsingle  (%d): %s\nsharded (%d): %s", stage, p, c1, b1, c2, b2)
			}
		}
	}
	compare("epoch1")

	// Identical ingest into both; the new generation must stay in
	// lockstep (the coordinator fans out before the store publishes).
	net := single.Snapshot().Corpus.Net
	deltas := []ingest.Delta{
		{Op: ingest.OpAddNode, Type: string(dblp.TypeAuthor), Name: "parity-author"},
		{Op: ingest.OpAddNode, Type: string(dblp.TypePaper), Name: "parity-paper"},
		{Op: ingest.OpAddEdge, SrcType: string(dblp.TypePaper), Src: "parity-paper",
			DstType: string(dblp.TypeAuthor), Dst: "parity-author"},
		{Op: ingest.OpAddEdge, SrcType: string(dblp.TypePaper), Src: "parity-paper",
			DstType: string(dblp.TypeAuthor), Dst: net.Name(dblp.TypeAuthor, 2)},
		{Op: ingest.OpAddEdge, SrcType: string(dblp.TypePaper), Src: "parity-paper",
			DstType: string(dblp.TypeVenue), Dst: net.Name(dblp.TypeVenue, 1)},
	}
	body, err := json.Marshal(map[string]any{"deltas": deltas})
	if err != nil {
		t.Fatal(err)
	}
	c1, b1 := do(t, single, "POST", "/v1/ingest", string(body))
	c2, b2 := do(t, sharded, "POST", "/v1/ingest", string(body))
	if c1 != 200 || c2 != 200 {
		t.Fatalf("ingest: single %d %s / sharded %d %s", c1, b1, c2, b2)
	}
	// The write responses carry wall-clock build_seconds, so they are
	// compared structurally (epoch + applied summary), not byte-wise.
	var ir1, ir2 struct {
		Epoch   int64          `json:"epoch"`
		Applied ingest.Summary `json:"applied"`
	}
	if err := json.Unmarshal([]byte(b1), &ir1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b2), &ir2); err != nil {
		t.Fatal(err)
	}
	if ir1.Epoch != 2 || ir1.Epoch != ir2.Epoch || ir1.Applied != ir2.Applied {
		t.Fatalf("ingest responses diverged:\n%s\n%s", b1, b2)
	}
	if ep := sharded.Coordinator().Epoch(); ep != 2 {
		t.Fatalf("coordinator epoch %d after ingest, want 2", ep)
	}
	// A rejected batch is rejected identically and moves no epoch.
	bad := `{"deltas":[{"op":"add_edge","src_type":"paper","src":"no-such-paper","dst_type":"author","dst":"nobody"}]}`
	c1, b1 = do(t, single, "POST", "/v1/ingest", bad)
	c2, b2 = do(t, sharded, "POST", "/v1/ingest", bad)
	if c1 != 400 || c1 != c2 || b1 != b2 {
		t.Fatalf("bad ingest: single %d %s / sharded %d %s", c1, b1, c2, b2)
	}
	if ep := sharded.Coordinator().Epoch(); ep != 2 {
		t.Fatalf("rejected batch moved coordinator epoch to %d", ep)
	}
	compare("epoch2")

	// The skew surface: present and populated sharded, 404 single, and
	// the /v1/stats cluster entry keeps the same shape in both modes.
	code, shardsBody := do(t, sharded, "GET", "/v1/cluster/shards", "")
	if code != 200 {
		t.Fatalf("/v1/cluster/shards = %d", code)
	}
	var sb struct {
		Shards []struct {
			ID    int   `json:"id"`
			Epoch int64 `json:"epoch"`
			NNZ   int   `json:"nnz"`
			Rows  int   `json:"rows"`
		} `json:"shards"`
		Epoch     int64   `json:"epoch"`
		Partition []int   `json:"partition"`
		Skew      float64 `json:"skew"`
		Policy    string  `json:"policy"`
	}
	if err := json.Unmarshal([]byte(shardsBody), &sb); err != nil {
		t.Fatal(err)
	}
	if len(sb.Shards) != 3 || sb.Epoch != 2 || sb.Policy != "least-loaded" || sb.Skew <= 0 {
		t.Fatalf("shard stats payload: %s", shardsBody)
	}
	totalNNZ := 0
	for _, sh := range sb.Shards {
		if sh.Epoch != 2 {
			t.Fatalf("shard %d at epoch %d, want 2", sh.ID, sh.Epoch)
		}
		totalNNZ += sh.NNZ
	}
	if want := sharded.Snapshot().PathSim.NNZ(); totalNNZ != want {
		t.Fatalf("per-shard nnz sums to %d, index has %d", totalNNZ, want)
	}
	if code, _ := do(t, single, "GET", "/v1/cluster/shards", ""); code != 404 {
		t.Fatalf("unsharded /v1/cluster/shards = %d, want 404", code)
	}
	for _, s := range []*Server{single, sharded} {
		var st struct {
			Cluster map[string]any `json:"cluster"`
		}
		_, body := do(t, s, "GET", "/v1/stats", "")
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"shards", "epoch", "policy", "skew", "scatters", "routed"} {
			if _, ok := st.Cluster[key]; !ok {
				t.Fatalf("stats cluster entry missing %q: %v", key, st.Cluster)
			}
		}
	}

	// Metrics: the sharded process exposes the hinet_shard_* series.
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	sharded.Handler().ServeHTTP(rec, req)
	for _, series := range []string{"hinet_cluster_shards 3", "hinet_shard_nnz{shard=\"0\"}", "hinet_shard_nnz{shard=\"2\"}", "hinet_cluster_epoch 2"} {
		if !bytes.Contains(rec.Body.Bytes(), []byte(series)) {
			t.Fatalf("/metrics missing %q", series)
		}
	}
	rec = httptest.NewRecorder()
	single.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if bytes.Contains(rec.Body.Bytes(), []byte("hinet_shard_")) {
		t.Fatal("unsharded /metrics exposes shard series")
	}

	// Rebuild through the sharded write path: both sides reseed and the
	// parity surfaces stay in lockstep at epoch 3.
	c1, b1 = do(t, single, "POST", "/v1/rebuild?seed=11", "")
	c2, b2 = do(t, sharded, "POST", "/v1/rebuild?seed=11", "")
	var rr1, rr2 struct {
		Epoch int64 `json:"epoch"`
		Seed  int64 `json:"seed"`
	}
	if json.Unmarshal([]byte(b1), &rr1) != nil || json.Unmarshal([]byte(b2), &rr2) != nil ||
		c1 != 200 || c1 != c2 || rr1 != rr2 || rr1.Epoch != 3 || rr1.Seed != 11 {
		t.Fatalf("rebuild: single %d %s / sharded %d %s", c1, b1, c2, b2)
	}
	if ep := sharded.Coordinator().Epoch(); ep != 3 {
		t.Fatalf("coordinator epoch %d after rebuild, want 3", ep)
	}
	compare("epoch3")
}
