package serve

import (
	"fmt"
	"testing"
)

func TestCachePutGetEvict(t *testing.T) {
	c := NewCache(2, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatal("a missing")
	}
	c.Put("c", 3) // "b" is now LRU and must go
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache(4, 2)
	c.Put("k", 1)
	c.Put("k", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if v, _ := c.Get("k"); v.(int) != 2 {
		t.Fatalf("stale value %v", v)
	}
}

func TestCacheDisabledNil(t *testing.T) {
	c := NewCache(0, 8)
	if c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	c.Put("a", 1) // all nil-receiver calls must be safe no-ops
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache hit")
	}
	if c.Len() != 0 || c.Stats() != (CacheStats{}) {
		t.Fatal("nil cache has state")
	}
}

func TestCacheShardedStats(t *testing.T) {
	c := NewCache(64, 8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.Len(); n == 0 || n > 64 {
		t.Fatalf("Len = %d, want (0, 64]", n)
	}
	hits, misses := 0, 0
	for i := 0; i < 100; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%d", i)); ok {
			hits++
		} else {
			misses++
		}
	}
	st := c.Stats()
	if st.Hits != uint64(hits) || st.Misses != uint64(misses) {
		t.Fatalf("stats %+v, counted %d/%d", st, hits, misses)
	}
	if st.Shards != 8 || st.Entries != c.Len() {
		t.Fatalf("stats %+v", st)
	}
	if hits == 0 {
		t.Fatal("nothing was retained")
	}
}
