package obs

import (
	"context"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic span tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func ms(n float64) float64                   { return n * 1000 } // µs helper
func regWith(clk *fakeClock, ro, so int) *Registry {
	return NewRegistry(Options{Clock: clk.now, Recent: ro, Slowest: so})
}

// TestSpanTreeDeterministic drives one trace under a pinned clock and
// asserts the exact assembled span tree: names, nesting, notes, and
// durations.
func TestSpanTreeDeterministic(t *testing.T) {
	clk := newFakeClock()
	reg := regWith(clk, 4, 4)
	reg.Family("/x").Declare("a", "b", "c", "k")

	tr := reg.StartTrace("/x")
	clk.advance(1 * time.Millisecond)
	a := tr.Start("a")
	clk.advance(1 * time.Millisecond)
	b := tr.Start("b")
	tr.Note("hit")
	clk.advance(1 * time.Millisecond)
	tr.End(b)
	clk.advance(1 * time.Millisecond)
	c := tr.Next(a, "c")
	clk.advance(1 * time.Millisecond)
	tr.AddTimed(c, "k", 500*time.Microsecond)
	clk.advance(1 * time.Millisecond)
	total := tr.Finish(200)

	if total != 6*time.Millisecond {
		t.Fatalf("Finish total = %v, want 6ms", total)
	}
	if tr.Status() != 200 || tr.Endpoint() != "/x" {
		t.Fatalf("identity: status=%d endpoint=%q", tr.Status(), tr.Endpoint())
	}

	js := tr.Snapshot()
	if js.DurUS != ms(6) {
		t.Fatalf("snapshot dur = %v µs, want 6000", js.DurUS)
	}
	if len(js.Stages) != 2 {
		t.Fatalf("root stages = %d, want 2 (a, c)", len(js.Stages))
	}
	ra, rc := js.Stages[0], js.Stages[1]
	if ra.Stage != "a" || ra.StartUS != ms(1) || ra.DurUS != ms(3) {
		t.Errorf("span a = %+v, want start 1000 dur 3000", ra)
	}
	if len(ra.Children) != 1 || ra.Children[0].Stage != "b" {
		t.Fatalf("a children = %+v, want [b]", ra.Children)
	}
	rb := ra.Children[0]
	if rb.Note != "hit" || rb.StartUS != ms(2) || rb.DurUS != ms(1) {
		t.Errorf("span b = %+v, want note=hit start 2000 dur 1000", rb)
	}
	// Next tiles: c starts exactly where a ends.
	if rc.Stage != "c" || rc.StartUS != ra.StartUS+ra.DurUS {
		t.Errorf("span c = %+v, want start %v", rc, ra.StartUS+ra.DurUS)
	}
	// c was left open; Finish closed it at the final timestamp.
	if rc.DurUS != ms(2) {
		t.Errorf("span c dur = %v, want 2000", rc.DurUS)
	}
	if len(rc.Children) != 1 {
		t.Fatalf("c children = %+v, want [k]", rc.Children)
	}
	rk := rc.Children[0]
	if rk.Stage != "k" || rk.DurUS != 500 || rk.StartUS != ms(4.5) {
		t.Errorf("span k = %+v, want start 4500 dur 500", rk)
	}

	// Every closed span landed in its declared stage histogram.
	for stage, want := range map[string]time.Duration{
		"a": 3 * time.Millisecond,
		"b": 1 * time.Millisecond,
		"c": 2 * time.Millisecond,
		"k": 500 * time.Microsecond,
	} {
		h := reg.Family("/x").Stage(stage)
		if h.Count() != 1 || h.Max() != want {
			t.Errorf("stage %s: count=%d max=%v, want 1 × %v", stage, h.Count(), h.Max(), want)
		}
	}
}

// TestNilSafety: a nil registry and nil trace must absorb the full API
// without panicking — this is the "tracing disabled" mode.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	tr := reg.StartTrace("/x")
	if tr != nil {
		t.Fatal("nil registry minted a trace")
	}
	sp := tr.Start("a")
	if sp != -1 {
		t.Fatalf("nil trace Start = %d, want -1", sp)
	}
	sp = tr.Next(sp, "b")
	tr.Note("n")
	tr.AddTimed(sp, "k", time.Millisecond)
	tr.End(sp)
	if d := tr.Finish(200); d != 0 {
		t.Fatalf("nil Finish = %v", d)
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil trace rendered a snapshot")
	}
	if reg.Log().Recent() != nil || reg.Log().Slowest() != nil {
		t.Fatal("nil slowlog returned traces")
	}
	if reg.Family("/x").Stage("a") != nil {
		t.Fatal("nil registry returned a family stage")
	}
}

// TestSpanOverflow: a trace past maxSpans stays valid and truncated.
func TestSpanOverflow(t *testing.T) {
	clk := newFakeClock()
	reg := regWith(clk, 4, 4)
	tr := reg.StartTrace("/x")
	for i := 0; i < maxSpans+10; i++ {
		clk.advance(time.Microsecond)
		id := tr.Start("s")
		tr.End(id)
	}
	tr.Finish(200)
	js := tr.Snapshot()
	if len(js.Stages) != maxSpans {
		t.Fatalf("rendered %d spans, want %d", len(js.Stages), maxSpans)
	}
}

// TestContextPropagation: WithTrace/FromContext round-trip, and a bare
// context yields a usable nil trace.
func TestContextPropagation(t *testing.T) {
	reg := regWith(newFakeClock(), 4, 4)
	tr := reg.StartTrace("/x")
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatal("trace lost in context round-trip")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatal("empty context produced a trace")
	}
	FromContext(context.Background()).Note("ok") // must not panic
}

// TestTraceAllocs pins the hot-path cost: one heap allocation per
// trace lifecycle (the Trace itself; spans are inline).
func TestTraceAllocs(t *testing.T) {
	reg := NewRegistry(Options{Recent: 8, Slowest: 8})
	reg.Family("/x").Declare("a", "b")
	allocs := testing.AllocsPerRun(200, func() {
		tr := reg.StartTrace("/x")
		sp := tr.Start("a")
		sp = tr.Next(sp, "b")
		tr.End(sp)
		tr.Finish(200)
	})
	if allocs > 1 {
		t.Fatalf("trace lifecycle costs %.1f allocs, want ≤ 1", allocs)
	}
}
