package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentTraceAndScrape hammers the registry from tracer
// goroutines while scrapers concurrently render slowlog snapshots,
// read quantiles, and write the Prometheus exposition. Run under
// -race (the CI race job includes this package); the assertions
// themselves are sanity floors, the race detector is the real check.
func TestConcurrentTraceAndScrape(t *testing.T) {
	reg := NewRegistry(Options{Recent: 16, Slowest: 8})
	for _, ep := range []string{"/a", "/b"} {
		reg.Family(ep).Declare("parse", "work", "serialize")
	}

	const writers, perWriter = 8, 300
	var wWG, sWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wWG.Add(1)
		go func(w int) {
			defer wWG.Done()
			ep := "/a"
			if w%2 == 1 {
				ep = "/b"
			}
			for i := 0; i < perWriter; i++ {
				tr := reg.StartTrace(ep)
				sp := tr.Start("parse")
				sp = tr.Next(sp, "work")
				tr.Note("hit")
				tr.AddTimed(sp, "kernel", time.Duration(i)*time.Nanosecond)
				sp = tr.Next(sp, "serialize")
				tr.End(sp)
				tr.Finish(200)
			}
		}(w)
	}

	// Scrapers: snapshot the rings and render everything they find,
	// concurrently with the writers.
	for r := 0; r < 3; r++ {
		sWG.Add(1)
		go func() {
			defer sWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range reg.Log().Recent() {
					_ = tr.Snapshot()
				}
				for _, tr := range reg.Log().Slowest() {
					_ = tr.Snapshot()
				}
				for _, f := range reg.Families() {
					for _, st := range f.Stages() {
						h := f.Stage(st)
						_ = h.Quantile(0.99)
						h.WriteProm(io.Discard, "x_seconds", `stage="`+st+`"`)
					}
				}
			}
		}()
	}

	wWG.Wait()
	close(stop)
	sWG.Wait()

	var total uint64
	for _, f := range reg.Families() {
		total += f.Stage("serialize").Count()
	}
	if want := uint64(writers * perWriter); total != want {
		t.Fatalf("serialize observations = %d, want %d", total, want)
	}
	if len(reg.Log().Recent()) == 0 || len(reg.Log().Slowest()) == 0 {
		t.Fatal("slowlog empty after concurrent load")
	}
}
