package obs

import (
	"testing"
	"time"
)

// finish runs one trace of exactly dur under the fake clock.
func finish(reg *Registry, clk *fakeClock, endpoint string, dur time.Duration, status int) {
	tr := reg.StartTrace(endpoint)
	clk.advance(dur)
	tr.Finish(status)
}

// TestSlowlogEvictionOrder drives both rings past capacity and pins
// the exact retention and ordering semantics: the recent ring evicts
// oldest-first, the slowest ring evicts its fastest member, and both
// listings come back sorted (newest first, slowest first).
func TestSlowlogEvictionOrder(t *testing.T) {
	clk := newFakeClock()
	reg := regWith(clk, 4, 3)

	durs := []time.Duration{
		50 * time.Millisecond,
		10 * time.Millisecond,
		30 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		60 * time.Millisecond,
		5 * time.Millisecond,
	}
	for _, d := range durs {
		finish(reg, clk, "/x", d, 200)
	}

	recent := reg.Log().Recent()
	if len(recent) != 4 {
		t.Fatalf("recent retained %d traces, want ring size 4", len(recent))
	}
	wantRecent := []time.Duration{5, 60, 40, 20} // newest first, in ms
	for i, tr := range recent {
		if tr.Total() != wantRecent[i]*time.Millisecond {
			t.Errorf("recent[%d] = %v, want %v", i, tr.Total(), wantRecent[i]*time.Millisecond)
		}
	}

	slow := reg.Log().Slowest()
	if len(slow) != 3 {
		t.Fatalf("slowest retained %d traces, want 3", len(slow))
	}
	wantSlow := []time.Duration{60, 50, 40} // slowest first, in ms
	for i, tr := range slow {
		if tr.Total() != wantSlow[i]*time.Millisecond {
			t.Errorf("slowest[%d] = %v, want %v", i, tr.Total(), wantSlow[i]*time.Millisecond)
		}
	}

	// A burst of fast requests must not displace anything retained as
	// slow (the atomic threshold fast path).
	for i := 0; i < 20; i++ {
		finish(reg, clk, "/x", time.Millisecond, 200)
	}
	slow = reg.Log().Slowest()
	for i, tr := range slow {
		if tr.Total() != wantSlow[i]*time.Millisecond {
			t.Errorf("after fast burst, slowest[%d] = %v, want %v",
				i, tr.Total(), wantSlow[i]*time.Millisecond)
		}
	}
	// ...while the recent ring now holds only the burst.
	for i, tr := range reg.Log().Recent() {
		if tr.Total() != time.Millisecond {
			t.Errorf("after fast burst, recent[%d] = %v, want 1ms", i, tr.Total())
		}
	}

	// A new slowest arrival evicts exactly the fastest retained trace.
	finish(reg, clk, "/x", 55*time.Millisecond, 200)
	slow = reg.Log().Slowest()
	want := []time.Duration{60, 55, 50}
	for i, tr := range slow {
		if tr.Total() != want[i]*time.Millisecond {
			t.Errorf("after 55ms arrival, slowest[%d] = %v, want %v",
				i, tr.Total(), want[i]*time.Millisecond)
		}
	}
}

// TestSlowlogTies: equal totals are retained in insertion order and
// listed stably.
func TestSlowlogTies(t *testing.T) {
	clk := newFakeClock()
	reg := regWith(clk, 8, 2)
	finish(reg, clk, "/a", 10*time.Millisecond, 200)
	finish(reg, clk, "/b", 10*time.Millisecond, 200)
	finish(reg, clk, "/c", 10*time.Millisecond, 200)
	slow := reg.Log().Slowest()
	if len(slow) != 2 {
		t.Fatalf("retained %d, want 2", len(slow))
	}
	if slow[0].Endpoint() != "/a" || slow[1].Endpoint() != "/b" {
		t.Errorf("tie order: got [%s %s], want [/a /b]",
			slow[0].Endpoint(), slow[1].Endpoint())
	}
}
