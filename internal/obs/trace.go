// Package obs is the observability layer: an allocation-lean span
// tracer with context propagation, lock-free log-bucketed latency
// histograms, and a slow-query log.
//
// The serving tier (internal/serve) threads a Trace through every
// request — admission wait, cache lookup, micro-batch coalescing,
// meta-path resolution, kernel execution, serialization — and each
// finished span lands in a per-endpoint per-stage histogram. The same
// Hist type backs the load generator's client-side measurements, so
// client-observed and server-attributed latency are directly
// comparable. Completed traces are retained in fixed-size rings (the N
// most recent and the N slowest, see Slowlog) and served as JSON span
// trees at /v1/debug/slowlog.
//
// The design optimizes the hot path: one heap allocation per trace
// (the Trace itself, with inline span storage), atomic-only histogram
// writes, and nil-receiver-safe methods so disabled tracing costs a
// few predicted branches and nothing else.
package obs

import (
	"context"
	"slices"
	"sync"
	"time"
)

// maxSpans bounds the spans recorded per trace; later Start calls are
// dropped (the trace stays valid, just truncated). 24 covers the
// deepest serving path (9 stages) with generous headroom.
const maxSpans = 24

// maxDepth bounds span nesting. Deeper Start calls still record spans,
// parented to the deepest tracked ancestor.
const maxDepth = 8

// Options configures a Registry.
type Options struct {
	Clock   func() time.Time // injected clock (default time.Now; tests pin it)
	Recent  int              // most-recent completed traces retained (default 64)
	Slowest int              // slowest completed traces retained (default 32)
}

// Registry owns the per-endpoint stage histogram families and the
// slowlog, and mints traces. A nil *Registry is valid: StartTrace
// returns a nil *Trace whose methods all no-op.
type Registry struct {
	clock func() time.Time
	log   *Slowlog

	mu   sync.RWMutex
	fams map[string]*Family
}

// NewRegistry builds a registry. Families are declared up front (see
// Family.Declare) so the exported metric series set is fixed at boot.
func NewRegistry(opts Options) *Registry {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Recent <= 0 {
		opts.Recent = 64
	}
	if opts.Slowest <= 0 {
		opts.Slowest = 32
	}
	return &Registry{
		clock: opts.Clock,
		log:   newSlowlog(opts.Recent, opts.Slowest),
		fams:  make(map[string]*Family),
	}
}

// Family returns the stage-histogram family for an endpoint, creating
// it if needed. Call at boot, then Declare the endpoint's stage names;
// stages are never created lazily, so the /metrics series set cannot
// drift between scrapes.
func (r *Registry) Family(endpoint string) *Family {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	f := r.fams[endpoint]
	r.mu.RUnlock()
	if f != nil {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f = r.fams[endpoint]; f == nil {
		f = &Family{name: endpoint, stages: make(map[string]*Hist)}
		r.fams[endpoint] = f
	}
	return f
}

// Families returns the declared families sorted by endpoint name.
func (r *Registry) Families() []*Family {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]*Family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.RUnlock()
	slices.SortFunc(out, func(a, b *Family) int {
		switch {
		case a.name < b.name:
			return -1
		case a.name > b.name:
			return 1
		}
		return 0
	})
	return out
}

// Log returns the registry's slowlog (nil on a nil registry).
func (r *Registry) Log() *Slowlog {
	if r == nil {
		return nil
	}
	return r.log
}

// StartTrace begins a trace for one request against an endpoint. The
// returned trace is not safe for concurrent use by multiple goroutines
// (one request, one goroutine owns it until Finish); after Finish it is
// immutable and may be read from anywhere.
func (r *Registry) StartTrace(endpoint string) *Trace {
	if r == nil {
		return nil
	}
	return &Trace{
		reg:      r,
		fam:      r.Family(endpoint),
		endpoint: endpoint,
		begin:    r.clock(),
	}
}

// Family is the per-endpoint set of stage histograms.
type Family struct {
	name string

	mu     sync.RWMutex
	stages map[string]*Hist
}

// Name returns the endpoint the family belongs to.
func (f *Family) Name() string { return f.name }

// Declare registers stage names, creating an empty histogram for each.
// Call once at boot; spans whose name was never declared are kept in
// the trace tree but not aggregated into any histogram.
func (f *Family) Declare(stages ...string) *Family {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	for _, s := range stages {
		if f.stages[s] == nil {
			f.stages[s] = NewHist()
		}
	}
	f.mu.Unlock()
	return f
}

// Stage returns the histogram for a declared stage, or nil.
func (f *Family) Stage(name string) *Hist {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	h := f.stages[name]
	f.mu.RUnlock()
	return h
}

// Stages returns the declared stage names, sorted.
func (f *Family) Stages() []string {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	out := make([]string, 0, len(f.stages))
	for s := range f.stages {
		out = append(out, s)
	}
	f.mu.RUnlock()
	slices.Sort(out)
	return out
}

// spanRec is one span, stored inline in the trace. Offsets are
// nanoseconds since the trace began; end < 0 marks an open span.
type spanRec struct {
	name   string
	note   string
	start  int64
	end    int64
	parent int16 // index of the parent span, -1 for roots
}

// Trace is one request's span record. All methods are safe on a nil
// receiver (tracing disabled). The struct is sized so a whole trace is
// a single heap allocation.
type Trace struct {
	reg      *Registry
	fam      *Family
	endpoint string
	begin    time.Time
	status   int
	total    int64  // ns, set at Finish
	seq      uint64 // slowlog insertion order, stamped by the slowlog
	n        int16  // spans recorded
	depth    int16  // open-span stack depth
	stack    [maxDepth]int16
	spans    [maxSpans]spanRec
}

// since returns nanoseconds since the trace began.
func (t *Trace) since() int64 {
	return int64(t.reg.clock().Sub(t.begin))
}

// Endpoint returns the endpoint the trace was started for.
func (t *Trace) Endpoint() string {
	if t == nil {
		return ""
	}
	return t.endpoint
}

// Status returns the HTTP status recorded at Finish (0 before).
func (t *Trace) Status() int {
	if t == nil {
		return 0
	}
	return t.status
}

// Total returns the trace duration recorded at Finish.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.total)
}

// Start opens a span named name, nested under the innermost open span,
// and returns its id (-1 when the trace is nil or full — the id is
// always safe to pass back to End/Next).
func (t *Trace) Start(name string) int {
	if t == nil {
		return -1
	}
	return t.open(name, t.since())
}

func (t *Trace) open(name string, now int64) int {
	if int(t.n) >= maxSpans {
		return -1
	}
	id := t.n
	parent := int16(-1)
	if t.depth > 0 {
		parent = t.stack[t.depth-1]
	}
	t.spans[id] = spanRec{name: name, start: now, end: -1, parent: parent}
	t.n++
	if int(t.depth) < maxDepth {
		t.stack[t.depth] = id
		t.depth++
	}
	return int(id)
}

// End closes span id. Closing an already-closed or invalid id no-ops.
func (t *Trace) End(id int) {
	if t == nil {
		return
	}
	t.close(id, t.since())
}

func (t *Trace) close(id int, now int64) {
	if id < 0 || id >= int(t.n) || t.spans[id].end >= 0 {
		return
	}
	t.spans[id].end = now
	if t.depth > 0 && t.stack[t.depth-1] == int16(id) {
		t.depth--
	}
}

// Next closes span id and opens a sibling named name at the same
// instant, so consecutive stages tile the timeline without gaps. It
// returns the new span's id.
func (t *Trace) Next(id int, name string) int {
	if t == nil {
		return -1
	}
	now := t.since()
	t.close(id, now)
	return t.open(name, now)
}

// Note annotates the innermost open span (e.g. "hit", "miss",
// "prebuilt") — shown in span trees, not aggregated.
func (t *Trace) Note(note string) {
	if t == nil || t.depth == 0 {
		return
	}
	t.spans[t.stack[t.depth-1]].note = note
}

// AddTimed records an already-measured child span of parent, ending
// now and starting d earlier — how externally timed work (the batched
// kernel call, measured by the dispatcher goroutine) is attributed to
// the request's trace.
func (t *Trace) AddTimed(parent int, name string, d time.Duration) {
	if t == nil || int(t.n) >= maxSpans {
		return
	}
	now := t.since()
	start := now - int64(d)
	if start < 0 {
		start = 0
	}
	p := int16(-1)
	if parent >= 0 && parent < int(t.n) {
		p = int16(parent)
	}
	t.spans[t.n] = spanRec{name: name, start: start, end: now, parent: p}
	t.n++
}

// Finish completes the trace: closes any still-open spans at the final
// timestamp, records every span's duration into the endpoint's stage
// histograms, inserts the trace into the slowlog, and returns the
// total duration. The trace is immutable afterwards.
func (t *Trace) Finish(status int) time.Duration {
	if t == nil {
		return 0
	}
	now := t.since()
	t.status = status
	t.total = now
	for i := 0; i < int(t.n); i++ {
		if t.spans[i].end < 0 {
			t.spans[i].end = now
		}
	}
	t.depth = 0
	if t.fam != nil {
		for i := 0; i < int(t.n); i++ {
			sp := &t.spans[i]
			if h := t.fam.Stage(sp.name); h != nil {
				h.Observe(time.Duration(sp.end - sp.start))
			}
		}
	}
	if t.reg != nil && t.reg.log != nil {
		t.reg.log.insert(t)
	}
	return time.Duration(now)
}

// SpanJSON is one rendered span. Times are microseconds relative to
// the trace start, fractional to keep nanosecond precision.
type SpanJSON struct {
	Stage    string      `json:"stage"`
	Note     string      `json:"note,omitempty"`
	StartUS  float64     `json:"start_us"`
	DurUS    float64     `json:"dur_us"`
	Children []*SpanJSON `json:"children,omitempty"`
}

// TraceJSON is a rendered trace: the span tree plus identity.
type TraceJSON struct {
	Endpoint string      `json:"endpoint"`
	Status   int         `json:"status"`
	Start    string      `json:"start"` // RFC3339Nano wall-clock begin
	DurUS    float64     `json:"dur_us"`
	Stages   []*SpanJSON `json:"stages"`
}

// Snapshot renders the trace as a span tree. Safe on finished traces
// from any goroutine; on a live trace (the ?debug=1 echo renders
// before Finish) open spans are shown as running up to now.
func (t *Trace) Snapshot() *TraceJSON {
	if t == nil {
		return nil
	}
	total := t.total
	var now int64
	if t.status == 0 { // not finished: render in-flight state
		now = t.since()
		total = now
	}
	out := &TraceJSON{
		Endpoint: t.endpoint,
		Status:   t.status,
		Start:    t.begin.UTC().Format(time.RFC3339Nano),
		DurUS:    float64(total) / 1e3,
	}
	nodes := make([]*SpanJSON, t.n)
	for i := 0; i < int(t.n); i++ {
		sp := &t.spans[i]
		end := sp.end
		if end < 0 {
			end = now
		}
		nodes[i] = &SpanJSON{
			Stage:   sp.name,
			Note:    sp.note,
			StartUS: float64(sp.start) / 1e3,
			DurUS:   float64(end-sp.start) / 1e3,
		}
		if sp.parent >= 0 {
			p := nodes[sp.parent]
			p.Children = append(p.Children, nodes[i])
		} else {
			out.Stages = append(out.Stages, nodes[i])
		}
	}
	return out
}

// ctxKey is the private context key for trace propagation.
type ctxKey struct{}

// WithTrace returns a context carrying tr, for propagation into layers
// that cannot see the request (snapshot resolution, the batcher).
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil — always safe
// to call methods on the result.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
