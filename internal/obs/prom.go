// Prometheus text-format rendering for Hist. Buckets are exported at
// octave granularity — 26 upper bounds from ~2µs doubling to ~68s —
// rather than the histogram's full 16-sub-bucket resolution: 29 lines
// per series keeps /metrics readable while preserving the log-scale
// shape scrapers need for quantile estimation. The bound list is fixed
// at compile time, so the exposition's series set never varies.

package obs

import (
	"fmt"
	"io"
)

// promBounds are the exported le= upper bounds in seconds: the upper
// edge of octave o spans 2^(11+o) nanoseconds.
var promBounds = func() [histOctaves]float64 {
	var b [histOctaves]float64
	for o := 0; o < histOctaves; o++ {
		b[o] = float64(int64(1)<<(11+o)) / 1e9
	}
	return b
}()

// WriteProm renders the histogram as one Prometheus histogram series:
// cumulative <name>_bucket lines per octave bound plus +Inf, then
// <name>_sum (seconds) and <name>_count. labels is the inner label
// list without braces (e.g. `endpoint="/v1/rank"`); empty means no
// labels.
func (h *Hist) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	i := 0
	for o := 0; o < histOctaves; o++ {
		for ; i < (o+1)*histSub; i++ {
			cum += h.counts[i].Load()
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(promBounds[o]), cum)
	}
	total := h.n.Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, total)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum().Seconds())
		fmt.Fprintf(w, "%s_count %d\n", name, total)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, total)
}

// formatBound renders a bound the way %g would, used for both the
// exposition and tests that parse it back.
func formatBound(s float64) string { return fmt.Sprintf("%g", s) }
