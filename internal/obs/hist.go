// Latency histogram: log-spaced buckets with atomic counters, so many
// goroutines can record observations without locks and percentile reads
// are cheap. 16 sub-buckets per power-of-two octave bound quantile
// error at ~6%, plenty for SLO verdicts; exact min/max/sum ride along
// for the tails and the mean. Promoted out of internal/loadgen so the
// server's per-endpoint and per-stage histograms and the load
// generator's client-side measurements share one implementation.

package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	histMinNS   = 1 << 10 // finest resolution: ~1µs
	histSub     = 16      // linear sub-buckets per octave
	histOctaves = 26      // 2^10ns .. 2^36ns ≈ 68s
	histBuckets = histOctaves * histSub
)

// Hist is a concurrency-safe latency histogram. The zero value is not
// ready; use NewHist.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Int64 // ns
	min    atomic.Int64 // ns
	max    atomic.Int64 // ns
}

// NewHist returns an empty histogram ready for concurrent Observe calls.
func NewHist() *Hist {
	h := &Hist{}
	h.min.Store(int64(1) << 62)
	return h
}

// bucketOf maps a latency in nanoseconds to its bucket index.
func bucketOf(ns int64) int {
	v := ns / histMinNS
	if v < 1 {
		return 0
	}
	octave := bits.Len64(uint64(v)) - 1
	if octave >= histOctaves {
		return histBuckets - 1
	}
	base := int64(1) << octave
	sub := int((v - base) * histSub / base)
	return octave*histSub + sub
}

// bucketMid returns a representative latency (ns) for a bucket.
func bucketMid(i int) int64 {
	octave := i / histSub
	sub := i % histSub
	base := int64(1) << octave
	return (base + (int64(sub)*base+base/2)/histSub) * histMinNS
}

// Observe records one latency.
func (h *Hist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(1)
	h.n.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.n.Load() }

// Sum returns the cumulative observed latency.
func (h *Hist) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the mean latency (0 when empty).
func (h *Hist) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Max returns the largest observation (0 when empty).
func (h *Hist) Max() time.Duration {
	if h.n.Load() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Min returns the smallest observation (0 when empty).
func (h *Hist) Min() time.Duration {
	if h.n.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// HistSnap is a point-in-time copy of a histogram's bucket counts,
// used to compute quantiles over a *window* of observations (the delta
// between two snapshots) rather than the process lifetime. The
// admission controller's p99 signal is windowed this way: a cumulative
// p99 would never recover after one bad burst.
type HistSnap struct {
	counts [histBuckets]uint64
	n      uint64
}

// Count returns the number of observations in the snapshot.
func (s *HistSnap) Count() uint64 { return s.n }

// Snap captures the current bucket counts. Concurrent Observe calls may
// land on either side of the snapshot; windows are approximate by one
// in-flight observation, which is fine for control loops.
func (h *Hist) Snap() HistSnap {
	var s HistSnap
	for i := range s.counts {
		s.counts[i] = h.counts[i].Load()
	}
	s.n = h.n.Load()
	return s
}

// CountSince returns the number of observations recorded after prev was
// taken.
func (h *Hist) CountSince(prev *HistSnap) uint64 {
	return h.n.Load() - prev.n
}

// QuantileSince returns the q-quantile of the observations recorded
// after prev was taken, from the bucket-count deltas. Unlike Quantile
// it cannot clamp to exact min/max (those are lifetime values), so the
// answer is a bucket midpoint — ~6% resolution, plenty for an SLO
// comparison. An empty window returns 0.
func (h *Hist) QuantileSince(prev *HistSnap, q float64) time.Duration {
	var n uint64
	var delta [histBuckets]uint64
	for i := range delta {
		c := h.counts[i].Load() - prev.counts[i]
		delta[i] = c
		n += c
	}
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n-1))
	var seen uint64
	last := 0
	for i, c := range delta {
		if c == 0 {
			continue
		}
		last = i
		seen += c
		if seen > rank {
			return time.Duration(bucketMid(i))
		}
	}
	return time.Duration(bucketMid(last))
}

// Quantile returns the q-quantile (q in [0,1]) from the bucket counts,
// clamped to the exact observed min/max so the extremes are never
// inflated by bucket width. Empty histograms return 0.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(q * float64(n-1))
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			ns := bucketMid(i)
			if lo := h.min.Load(); ns < lo {
				ns = lo
			}
			if hi := h.max.Load(); ns > hi {
				ns = hi
			}
			return time.Duration(ns)
		}
	}
	return time.Duration(h.max.Load())
}
