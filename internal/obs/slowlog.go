// Slow-query log: two fixed-size retention rings over completed
// traces. The recent ring is lock-free — an atomic position counter
// picks the slot, an atomic pointer store publishes the trace — so the
// request hot path never contends with scrapes. The slowest ring keeps
// the N largest totals behind a mutex, but an atomic threshold
// (the smallest retained total) lets the common case — a request
// faster than everything retained — skip the lock entirely.

package obs

import (
	"slices"
	"sync"
	"sync/atomic"
)

// Slowlog retains completed traces: the keep-N most recent and the
// keep-N slowest since boot. Traces are immutable once inserted.
type Slowlog struct {
	recent []atomic.Pointer[Trace]
	pos    atomic.Uint64 // next insertion sequence (1-based)

	keep  int          // slowest-ring capacity
	minNS atomic.Int64 // smallest total retained in slow; -1 until full
	mu    sync.Mutex
	slow  []*Trace
}

func newSlowlog(recent, slowest int) *Slowlog {
	l := &Slowlog{
		recent: make([]atomic.Pointer[Trace], recent),
		keep:   slowest,
		slow:   make([]*Trace, 0, slowest),
	}
	l.minNS.Store(-1)
	return l
}

// insert publishes a finished trace into both rings. The sequence
// stamp happens-before the pointer store, so readers that observe the
// trace also observe its seq.
func (l *Slowlog) insert(t *Trace) {
	seq := l.pos.Add(1)
	t.seq = seq
	l.recent[(seq-1)%uint64(len(l.recent))].Store(t)

	// Fast path: the ring is full and this trace is no slower than the
	// fastest retained one.
	if m := l.minNS.Load(); m >= 0 && t.total <= m {
		return
	}
	l.mu.Lock()
	if len(l.slow) < l.keep {
		l.slow = append(l.slow, t)
		if len(l.slow) == l.keep {
			l.minNS.Store(l.slowMin())
		}
	} else {
		// Replace the fastest retained trace in place (no allocation).
		mi := 0
		for i, s := range l.slow {
			if s.total < l.slow[mi].total {
				mi = i
			}
		}
		if t.total > l.slow[mi].total {
			l.slow[mi] = t
			l.minNS.Store(l.slowMin())
		}
	}
	l.mu.Unlock()
}

// slowMin returns the smallest total currently retained (call with mu
// held and slow non-empty).
func (l *Slowlog) slowMin() int64 {
	m := l.slow[0].total
	for _, s := range l.slow[1:] {
		if s.total < m {
			m = s.total
		}
	}
	return m
}

// Recent returns the retained most-recent traces, newest first.
func (l *Slowlog) Recent() []*Trace {
	if l == nil {
		return nil
	}
	out := make([]*Trace, 0, len(l.recent))
	for i := range l.recent {
		if t := l.recent[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	slices.SortFunc(out, func(a, b *Trace) int {
		switch {
		case a.seq > b.seq:
			return -1
		case a.seq < b.seq:
			return 1
		}
		return 0
	})
	return out
}

// Slowest returns the retained slowest traces, slowest first.
func (l *Slowlog) Slowest() []*Trace {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := slices.Clone(l.slow)
	l.mu.Unlock()
	slices.SortFunc(out, func(a, b *Trace) int {
		switch {
		case a.total > b.total:
			return -1
		case a.total < b.total:
			return 1
		// Ties resolve by insertion order so the listing is stable.
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		}
		return 0
	})
	return out
}
