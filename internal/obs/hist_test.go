package obs

import (
	"bufio"
	"bytes"
	"math"
	"math/rand"
	"slices"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestQuantilePropertyVsSorted is the histogram's accuracy contract:
// against an exact sorted reference over random log-uniform samples,
// every interior quantile lands within the bucket-width error bound,
// and q≤0 / q≥1 clamp to the exact observed min and max.
func TestQuantilePropertyVsSorted(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		h := NewHist()
		n := 20000
		samples := make([]time.Duration, n)
		for i := range samples {
			// Log-uniform over 32µs .. ~16s. Below ~16µs the integer
			// sub-bucket split collapses to whole octaves, so the ~6%
			// bound only holds in the SLO-relevant range.
			exp := 15 + rng.Float64()*19
			samples[i] = time.Duration(int64(math.Exp2(exp)))
			h.Observe(samples[i])
		}
		sorted := slices.Clone(samples)
		slices.Sort(sorted)

		if got := h.Quantile(0); got != sorted[0] {
			t.Errorf("seed %d: Quantile(0) = %v, want exact min %v", seed, got, sorted[0])
		}
		if got := h.Quantile(-0.5); got != sorted[0] {
			t.Errorf("seed %d: Quantile(-0.5) = %v, want clamp to min", seed, got)
		}
		if got := h.Quantile(1); got != sorted[n-1] {
			t.Errorf("seed %d: Quantile(1) = %v, want exact max %v", seed, got, sorted[n-1])
		}
		if got := h.Quantile(1.5); got != sorted[n-1] {
			t.Errorf("seed %d: Quantile(1.5) = %v, want clamp to max", seed, got)
		}
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999} {
			got := h.Quantile(q)
			want := sorted[int(q*float64(n-1))]
			if relErr(got, want) > 0.09 {
				t.Errorf("seed %d: Quantile(%g) = %v, exact %v (rel err %.3f)",
					seed, q, got, want, relErr(got, want))
			}
		}
	}
}

func relErr(a, b time.Duration) float64 {
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	return d / float64(b)
}

// TestHistBasics covers the counters and edge cases around empty and
// negative observations.
func TestHistBasics(t *testing.T) {
	h := NewHist()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Observe(-time.Second) // clamps to 0
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 4*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Sum() != 6*time.Millisecond {
		t.Fatalf("sum = %v, want 6ms", h.Sum())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v, want 2ms", h.Mean())
	}
}

// TestWriteProm parses the exposition back: bucket counts must be
// cumulative and monotone, end at the total count, and carry the
// labels verbatim.
func TestWriteProm(t *testing.T) {
	h := NewHist()
	durs := []time.Duration{time.Microsecond, 30 * time.Microsecond, time.Millisecond,
		3 * time.Millisecond, 80 * time.Millisecond, 2 * time.Second}
	for _, d := range durs {
		h.Observe(d)
	}
	var buf bytes.Buffer
	h.WriteProm(&buf, "x_seconds", `endpoint="/v1/rank",stage="cache"`)

	var bucketLines, prev uint64
	var sawInf, sawSum, sawCount bool
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable line %q", line)
		}
		switch {
		case strings.HasPrefix(name, "x_seconds_bucket{"):
			if !strings.Contains(name, `endpoint="/v1/rank",stage="cache",le="`) {
				t.Fatalf("bucket labels wrong: %q", name)
			}
			c, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", val, err)
			}
			if c < prev {
				t.Fatalf("bucket counts not cumulative at %q: %d < %d", name, c, prev)
			}
			prev = c
			bucketLines++
			if strings.Contains(name, `le="+Inf"`) {
				sawInf = true
				if c != uint64(len(durs)) {
					t.Fatalf("+Inf bucket = %d, want %d", c, len(durs))
				}
			}
		case strings.HasPrefix(name, "x_seconds_sum{"):
			sawSum = true
			want := time.Duration(0)
			for _, d := range durs {
				want += d
			}
			got, _ := strconv.ParseFloat(val, 64)
			if diff := got - want.Seconds(); diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("sum = %v, want %v", got, want.Seconds())
			}
		case strings.HasPrefix(name, "x_seconds_count{"):
			sawCount = true
			if val != strconv.Itoa(len(durs)) {
				t.Fatalf("count = %s, want %d", val, len(durs))
			}
		default:
			t.Fatalf("unexpected line %q", line)
		}
	}
	if bucketLines != histOctaves+1 || !sawInf || !sawSum || !sawCount {
		t.Fatalf("exposition incomplete: %d bucket lines (want %d), inf=%v sum=%v count=%v",
			bucketLines, histOctaves+1, sawInf, sawSum, sawCount)
	}

	// Unlabeled form: plain _sum/_count without braces.
	var plain bytes.Buffer
	h.WriteProm(&plain, "y_seconds", "")
	out := plain.String()
	if !strings.Contains(out, "y_seconds_sum ") || !strings.Contains(out, "y_seconds_count ") {
		t.Fatalf("unlabeled exposition malformed:\n%s", out)
	}
	if strings.Contains(out, "{,") || strings.Contains(out, "{}") {
		t.Fatalf("stray label separators in unlabeled exposition:\n%s", out)
	}
}
