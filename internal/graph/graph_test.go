package graph

import (
	"testing"
)

func path(n int) *Graph {
	g := New(n, false)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func TestBasicConstruction(t *testing.T) {
	g := New(3, false)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 1)
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2 (undirected)", g.Degree(1))
	}
	if g.WeightedDegree(1) != 3 {
		t.Errorf("WeightedDegree(1) = %v", g.WeightedDegree(1))
	}
	if !g.HasEdge(1, 0) {
		t.Error("undirected edge should be visible both ways")
	}
}

func TestDirectedEdges(t *testing.T) {
	g := New(3, true)
	g.AddEdge(0, 1, 1)
	if g.HasEdge(1, 0) {
		t.Error("directed graph must not mirror edges")
	}
	in := g.InDegrees()
	if in[1] != 1 || in[0] != 0 {
		t.Errorf("InDegrees = %v", in)
	}
	r := g.Reverse()
	if !r.HasEdge(1, 0) || r.HasEdge(0, 1) {
		t.Error("Reverse wrong")
	}
}

func TestSelfLoopIgnoredUndirected(t *testing.T) {
	g := New(2, false)
	g.AddEdge(0, 0, 1)
	if g.M() != 0 || g.Degree(0) != 0 {
		t.Error("undirected self loop should be dropped")
	}
	d := New(2, true)
	d.AddEdge(0, 0, 1)
	if d.M() != 1 {
		t.Error("directed self loop should be kept")
	}
}

func TestAddNodeAndLabels(t *testing.T) {
	g := New(1, false)
	id := g.AddNode("v1")
	if id != 1 || g.N() != 2 {
		t.Fatalf("AddNode id=%d n=%d", id, g.N())
	}
	if g.Label(1) != "v1" {
		t.Errorf("Label = %q", g.Label(1))
	}
	g.SetLabel(0, "root")
	if g.Label(0) != "root" {
		t.Error("SetLabel failed")
	}
}

func TestNeighborSet(t *testing.T) {
	g := New(4, false)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 1, 1) // parallel edge
	open := g.NeighborSet(0, false)
	if len(open) != 2 || open[0] != 1 || open[1] != 2 {
		t.Errorf("open neighborhood = %v", open)
	}
	closed := g.NeighborSet(0, true)
	if len(closed) != 3 || closed[0] != 0 {
		t.Errorf("closed neighborhood = %v", closed)
	}
}

func TestBFSDistances(t *testing.T) {
	g := path(5)
	g.AddNode("isolated")
	d := g.BFS(0)
	want := []int{0, 1, 2, 3, 4, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("BFS = %v, want %v", d, want)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6, false)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comp, k := g.ConnectedComponents()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] || comp[5] == comp[0] {
		t.Errorf("component labels = %v", comp)
	}
}

func TestConnectedComponentsDirectedUsesWeakConnectivity(t *testing.T) {
	g := New(3, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 1, 1)
	_, k := g.ConnectedComponents()
	if k != 1 {
		t.Errorf("weak components = %d, want 1", k)
	}
}

func TestAdjacencyMatrix(t *testing.T) {
	g := New(3, false)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 5)
	a := g.Adjacency()
	if a.At(0, 1) != 2 || a.At(1, 0) != 2 || a.At(1, 2) != 5 {
		t.Error("adjacency values wrong")
	}
	if a.At(0, 2) != 0 {
		t.Error("absent edge nonzero")
	}
	// Symmetry for undirected graphs.
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if a.At(r, c) != a.At(c, r) {
				t.Fatal("undirected adjacency not symmetric")
			}
		}
	}
}

func TestEdgeRangePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge should panic")
		}
	}()
	New(2, false).AddEdge(0, 5, 1)
}
