// Package graph provides the homogeneous weighted graph used by the
// tutorial's "elementary information network analysis" layer: PageRank,
// HITS, SCAN, spectral clustering and the statistics in internal/netstat
// all consume this representation.
//
// Nodes are dense integers 0..N-1; an optional string label can be
// attached for presentation. The structure is adjacency-list based and
// append-only; algorithms treat it as immutable after construction.
package graph

import (
	"fmt"
	"slices"

	"hinet/internal/sparse"
)

// Edge is one endpoint record in an adjacency list.
type Edge struct {
	To     int
	Weight float64
}

// Graph is a weighted graph. When Directed is false every AddEdge call
// stores both orientations, and Degree counts each neighbor once.
type Graph struct {
	Directed bool
	adj      [][]Edge
	labels   []string
	numEdges int
}

// New creates a graph with n nodes and no edges.
func New(n int, directed bool) *Graph {
	return &Graph{Directed: directed, adj: make([][]Edge, n), labels: make([]string, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of logical edges (an undirected edge counts once).
func (g *Graph) M() int { return g.numEdges }

// AddNode appends a node with the given label and returns its id.
func (g *Graph) AddNode(label string) int {
	g.adj = append(g.adj, nil)
	g.labels = append(g.labels, label)
	return len(g.adj) - 1
}

// SetLabel assigns a presentation label to node v.
func (g *Graph) SetLabel(v int, label string) { g.labels[v] = label }

// Label returns node v's label (may be empty).
func (g *Graph) Label(v int) string { return g.labels[v] }

// AddEdge inserts an edge u→v with weight w (and v→u when undirected).
// Self loops are allowed for directed graphs and ignored for undirected
// ones. Parallel edges accumulate as separate adjacency entries.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, len(g.adj)))
	}
	if !g.Directed && u == v {
		return
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: w})
	if !g.Directed {
		g.adj[v] = append(g.adj[v], Edge{To: u, Weight: w})
	}
	g.numEdges++
}

// Neighbors returns the adjacency list of u. The slice is shared; callers
// must not mutate it.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// Degree returns the out-degree of u (undirected: neighbor count).
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// WeightedDegree returns the sum of edge weights incident from u.
func (g *Graph) WeightedDegree(u int) float64 {
	s := 0.0
	for _, e := range g.adj[u] {
		s += e.Weight
	}
	return s
}

// HasEdge reports whether an edge u→v exists.
func (g *Graph) HasEdge(u, v int) bool {
	for _, e := range g.adj[u] {
		if e.To == v {
			return true
		}
	}
	return false
}

// NeighborSet returns the sorted distinct neighbor ids of u, including u
// itself when closed is true (the closed neighborhood Γ[u] used by SCAN).
func (g *Graph) NeighborSet(u int, closed bool) []int {
	seen := make(map[int]bool, len(g.adj[u])+1)
	for _, e := range g.adj[u] {
		seen[e.To] = true
	}
	if closed {
		seen[u] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// Adjacency returns the graph's (weighted) adjacency matrix in CSR form.
// For undirected graphs the matrix is symmetric.
func (g *Graph) Adjacency() *sparse.Matrix {
	var entries []sparse.Coord
	for u := range g.adj {
		for _, e := range g.adj[u] {
			entries = append(entries, sparse.Coord{Row: u, Col: e.To, Val: e.Weight})
		}
	}
	return sparse.NewFromCoords(len(g.adj), len(g.adj), entries)
}

// InDegrees returns the in-degree of every node (equal to Degree for
// undirected graphs).
func (g *Graph) InDegrees() []int {
	in := make([]int, len(g.adj))
	for u := range g.adj {
		for _, e := range g.adj[u] {
			in[e.To]++
		}
	}
	return in
}

// Reverse returns the transpose graph (directed); undirected graphs are
// returned as a structural copy.
func (g *Graph) Reverse() *Graph {
	r := New(g.N(), g.Directed)
	copy(r.labels, g.labels)
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if g.Directed {
				r.adj[e.To] = append(r.adj[e.To], Edge{To: u, Weight: e.Weight})
				r.numEdges++
			}
		}
	}
	if !g.Directed {
		for u := range g.adj {
			r.adj[u] = append([]Edge(nil), g.adj[u]...)
		}
		r.numEdges = g.numEdges
	}
	return r
}

// BFS runs a breadth-first traversal from src and returns hop distances
// (-1 for unreachable nodes).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if dist[e.To] < 0 {
				dist[e.To] = dist[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

// ConnectedComponents labels each node with a component id (undirected
// semantics: edges are followed in both directions even when directed)
// and returns the labels plus the component count.
func (g *Graph) ConnectedComponents() ([]int, int) {
	und := g
	if g.Directed {
		und = New(g.N(), false)
		for u := range g.adj {
			for _, e := range g.adj[u] {
				if u != e.To {
					und.AddEdge(u, e.To, e.Weight)
				}
			}
		}
	}
	comp := make([]int, und.N())
	for i := range comp {
		comp[i] = -1
	}
	c := 0
	for s := range comp {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = c
		stack := []int{s}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range und.adj[u] {
				if comp[e.To] < 0 {
					comp[e.To] = c
					stack = append(stack, e.To)
				}
			}
		}
		c++
	}
	return comp, c
}
