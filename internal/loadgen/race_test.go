package loadgen

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"hinet/internal/serve"
)

// TestSaturationRace drives a saturated mixed workload — Zipf-skewed
// queries (cached and uncached), ingest batches, and explicit rebuilds —
// at a concurrency far above the server's admission capacity, and
// checks the serving tier's consistency contract under overload:
//
//   - snapshot epochs observed by any one worker never go backwards
//     (each worker's requests are sequential, so a regression would mean
//     a stale snapshot — or a cache entry from a future epoch — leaked
//     across a swap);
//   - the final epoch equals the initial one plus exactly the mutations
//     the server accepted (no lost or double-counted swaps);
//   - overload is shed as prompt 503s, never hangs or other statuses.
//
// Run under -race this is the PR's concurrency regression test for the
// ingest/rebuild/query triangle.
func TestSaturationRace(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation run")
	}
	target := startTestServer(t, serve.Options{
		MaxConcurrent: 1,
		AdmissionWait: -1, // fail fast: saturation must answer, not queue
		CacheCapacity: 64, // small enough that evictions keep some queries uncached
	})

	ks := testKeyspace(t, nil)
	cfg := Config{
		Seed:     11,
		Arrival:  ArrivalClosed,
		Requests: 300,
		Mix:      Mix{PathSim: 60, Ingest: 15, Stats: 25},
	}
	tr, err := Generate(cfg, ks)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Splice explicit rebuilds into the schedule: full snapshot swaps
	// racing the incremental ingest path and the query cohorts.
	events := make([]Event, 0, len(tr.Events)+len(tr.Events)/50)
	for i, ev := range tr.Events {
		if i > 0 && i%50 == 0 {
			events = append(events, Event{
				Cohort: "rebuild", Method: "POST", Path: "/v1/rebuild", ExpectStatus: 200,
			})
		}
		events = append(events, ev)
	}

	type workerState struct {
		lastEpoch float64
	}
	var (
		mu        sync.Mutex
		workers   = map[int]*workerState{}
		mutations int
		badStatus []string
		regressed []string
	)
	obs := func(worker int, ev *Event, status int, body []byte) {
		mu.Lock()
		defer mu.Unlock()
		switch status {
		case 200, 503:
		default:
			if len(badStatus) < 5 {
				badStatus = append(badStatus, ev.Path+": status "+strconv.Itoa(status))
			}
			return
		}
		if status != 200 {
			return
		}
		if ev.Cohort == CohortIngest || ev.Cohort == "rebuild" {
			mutations++
		}
		var payload struct {
			Epoch *float64 `json:"epoch"`
		}
		if err := json.Unmarshal(body, &payload); err != nil || payload.Epoch == nil {
			return
		}
		ws := workers[worker]
		if ws == nil {
			ws = &workerState{}
			workers[worker] = ws
		}
		if *payload.Epoch < ws.lastEpoch && len(regressed) < 5 {
			regressed = append(regressed, fmt.Sprintf("%s: epoch went %g -> %g", ev.Path, ws.lastEpoch, *payload.Epoch))
		}
		if *payload.Epoch > ws.lastEpoch {
			ws.lastEpoch = *payload.Epoch
		}
	}

	start := time.Now()
	res, err := Run(target, events, RunOptions{Concurrency: 12, Observer: obs})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	elapsed := time.Since(start)

	if len(badStatus) > 0 {
		t.Fatalf("statuses other than 200/503 under saturation: %v", badStatus)
	}
	if len(regressed) > 0 {
		t.Fatalf("per-worker epoch regressions: %v", regressed)
	}
	if res.Requests != uint64(len(events)) {
		t.Fatalf("completed %d of %d requests — something hung or was dropped", res.Requests, len(events))
	}
	// Fail-fast admission with 12 workers contending for 1 slot must
	// shed; if every request succeeded the admission path wasn't tested.
	rejected := 0.0
	if res.MetricsAfter != nil {
		rejected = res.MetricsAfter["hinet_admission_rejected_total"]
	}
	if rejected == 0 {
		t.Error("no admission rejections at 12x oversubscription; overload path untested")
	}
	// Rejections must be prompt: with fail-fast admission the whole run
	// should take far less than requests x per-request work.
	if elapsed > 2*time.Minute {
		t.Errorf("saturated run took %v; admission is queueing, not shedding", elapsed)
	}

	// Exact epoch accounting: seed build is epoch 1, and every accepted
	// ingest batch or rebuild bumps it exactly once.
	var stats struct {
		Epoch int `json:"epoch"`
	}
	resp, err := target.Client.Get(target.BaseURL + "/v1/stats")
	if err != nil {
		t.Fatalf("final stats: %v", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	mu.Lock()
	wantEpoch := 1 + mutations
	mu.Unlock()
	if stats.Epoch != wantEpoch {
		t.Fatalf("final epoch %d, want %d (1 + %d accepted mutations)", stats.Epoch, wantEpoch, wantEpoch-1)
	}
}
