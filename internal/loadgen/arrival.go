// Arrival processes: every generator draws offsets (µs from run
// start) from the schedule RNG only — determinism lives here. Open-loop
// processes model request independence (arrivals don't wait for
// responses, the regime where saturation shows up as queueing); the
// closed-loop process models a fixed worker fleet and is what record
// and replay use for reproducible sequential runs.

package loadgen

import (
	"fmt"
	"math"
	"slices"
	"time"

	"hinet/internal/stats"
)

// arrivalOffsets returns the sorted schedule offsets for cfg (already
// defaulted). Closed-loop schedules have all-zero offsets: workers
// issue them back-to-back in order.
func arrivalOffsets(cfg Config, rng *stats.RNG) ([]int64, error) {
	switch cfg.Arrival {
	case ArrivalClosed:
		if cfg.Requests <= 0 {
			return nil, fmt.Errorf("loadgen: closed-loop schedule needs Requests > 0")
		}
		return make([]int64, cfg.Requests), nil
	case ArrivalPoisson:
		return poissonOffsets(cfg, rng, func(time.Duration) float64 { return 1 }), nil
	case ArrivalBursty:
		period := cfg.BurstPeriod.Seconds()
		amp := cfg.BurstAmp
		return poissonOffsets(cfg, rng, func(t time.Duration) float64 {
			return 1 + amp*math.Sin(2*math.Pi*t.Seconds()/period)
		}), nil
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (want %s|%s|%s)",
			cfg.Arrival, ArrivalPoisson, ArrivalClosed, ArrivalBursty)
	}
}

// poissonSlice discretizes the horizon for envelope-modulated Poisson
// arrivals; 100ms is fine-grained next to any realistic burst period.
const poissonSlice = 100 * time.Millisecond

// poissonOffsets generates an inhomogeneous Poisson process with rate
// cfg.Rate · envelope(t): per time slice, a Poisson-distributed count of
// arrivals placed uniformly within the slice, then sorted. With the
// constant envelope this is an ordinary Poisson process (exponential
// gaps in distribution), and the piecewise construction keeps the draw
// count — and therefore the RNG stream — deterministic.
func poissonOffsets(cfg Config, rng *stats.RNG, envelope func(time.Duration) float64) []int64 {
	var out []int64
	sliceUS := poissonSlice.Microseconds()
	horizonUS := cfg.Duration.Microseconds()
	for startUS := int64(0); startUS < horizonUS; startUS += sliceUS {
		width := sliceUS
		if startUS+width > horizonUS {
			width = horizonUS - startUS
		}
		mid := time.Duration(startUS+width/2) * time.Microsecond
		mult := envelope(mid)
		if mult < 0 {
			mult = 0
		}
		lambda := cfg.Rate * mult * (time.Duration(width) * time.Microsecond).Seconds()
		n := rng.Poisson(lambda)
		for i := 0; i < n; i++ {
			out = append(out, startUS+rng.Int63n(width))
		}
	}
	slices.Sort(out)
	return out
}
