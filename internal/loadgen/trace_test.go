package loadgen

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestTraceRoundTrip: write → parse reproduces header and events, and a
// second write is byte-identical.
func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{
		Header: Header{Version: 1, Seed: 9, Arrival: ArrivalPoisson, Rate: 50, DurationUS: 2_000_000, Requests: 3},
		Events: []Event{
			{OffsetUS: 0, Cohort: CohortStats, Path: "/v1/stats", ExpectStatus: 200},
			{OffsetUS: 1500, Cohort: CohortPathSim, Path: "/v1/pathsim/topk?id=3&k=5", ExpectStatus: 200, Digest: "abc123"},
			{OffsetUS: 2500, Cohort: CohortIngest, Method: "POST", Path: "/v1/ingest", Body: `{"deltas":[]}`, ExpectStatus: 200},
		},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ParseTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if got.Header != tr.Header {
		t.Fatalf("header round-trip: got %+v want %+v", got.Header, tr.Header)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("event count: got %d want %d", len(got.Events), len(tr.Events))
	}
	for i := range got.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], tr.Events[i])
		}
	}
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, got); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("write → parse → write is not byte-stable")
	}
}

// TestParseTraceSkipsCommentsAndBlanks: operators annotate traces.
func TestParseTraceSkipsCommentsAndBlanks(t *testing.T) {
	in := "# recorded against v5\n\n" +
		`{"hinet_trace":1,"seed":3}` + "\n" +
		"# the hot query\n" +
		`{"offset_us":10,"cohort":"stats","path":"/v1/stats"}` + "\n"
	tr, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if tr.Header.Seed != 3 || len(tr.Events) != 1 {
		t.Fatalf("got header %+v, %d events", tr.Header, len(tr.Events))
	}
}

// TestParseTraceErrors: strictness is the point — every malformed line
// is an error naming its line number.
func TestParseTraceErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"unknown field", `{"offset_us":1,"cohort":"stats","path":"/v1/stats","wat":1}`, "line 1"},
		{"bad method", `{"offset_us":1,"cohort":"stats","method":"DELETE","path":"/v1/stats"}`, "method"},
		{"unrooted path", `{"offset_us":1,"cohort":"stats","path":"v1/stats"}`, "rooted"},
		{"negative offset", `{"offset_us":-5,"cohort":"stats","path":"/v1/stats"}`, "offset"},
		{"bad status", `{"offset_us":1,"cohort":"stats","path":"/v1/stats","expect_status":9999}`, "expect_status"},
		{"no cohort", `{"offset_us":1,"path":"/v1/stats"}`, "cohort"},
		{"bad header version", `{"hinet_trace":2}`, "version"},
		{"header junk", `{"hinet_trace":1,"wat":true}`, "header"},
		{"not json", `offset_us=1`, "line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrace(strings.NewReader(tc.in + "\n"))
			if err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestDigestStability: digests ignore volatile values but move when the
// response shape or a whitelisted stable value changes.
func TestDigestStability(t *testing.T) {
	base := []byte(`{"path":"A-P-V-P-A","k":5,"epoch":3,"query":{"id":7,"name":"a"},"results":[{"id":1,"score":0.5},{"id":2,"score":0.25}]}`)
	sameShape := []byte(`{"path":"A-P-V-P-A","k":5,"epoch":9,"query":{"id":7,"name":"a"},"results":[{"id":1,"score":0.123},{"id":2,"score":0.9}]}`)
	otherIDs := []byte(`{"path":"A-P-V-P-A","k":5,"epoch":3,"query":{"id":7,"name":"a"},"results":[{"id":4,"score":0.5},{"id":2,"score":0.25}]}`)
	renamed := []byte(`{"path":"A-P-V-P-A","k":5,"epoch":3,"query":{"id":7,"name":"a"},"results":[{"ident":1,"score":0.5},{"ident":2,"score":0.25}]}`)

	d := Digest(CohortPathSim, 200, base)
	if got := Digest(CohortPathSim, 200, sameShape); got != d {
		t.Error("digest moved on volatile-only change (epoch/scores)")
	}
	if got := Digest(CohortPathSim, 200, otherIDs); got == d {
		t.Error("digest ignored a result-id change")
	}
	if got := Digest(CohortPathSim, 200, renamed); got == d {
		t.Error("digest ignored a field rename")
	}
	if got := Digest(CohortPathSim, 503, base); got == d {
		t.Error("digest ignored the status code")
	}
	if Digest(CohortStats, 200, []byte("not json")) == "" {
		t.Error("non-JSON body must still digest")
	}
}

// TestHistQuantiles sanity-checks the log-bucketed histogram against a
// known distribution.
func TestHistQuantiles(t *testing.T) {
	h := newHist()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must read zero")
	}
	// 1..1000 ms, uniform.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != time.Second {
		t.Fatalf("min/max: %v/%v", h.Min(), h.Max())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Millisecond}, {0.9, 900 * time.Millisecond}, {0.99, 990 * time.Millisecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if rel := (got.Seconds() - c.want.Seconds()) / c.want.Seconds(); rel < -0.08 || rel > 0.08 {
			t.Errorf("q%.2f: got %v, want %v ±8%%", c.q, got, c.want)
		}
	}
	if h.Quantile(1) != time.Second {
		t.Errorf("q1 must clamp to exact max, got %v", h.Quantile(1))
	}
	if h.Quantile(0) != time.Millisecond {
		t.Errorf("q0 must clamp to exact min, got %v", h.Quantile(0))
	}
}

// TestFindKnee: the knee is the first failing offered rate; capacity is
// the achieved throughput of the last passing step.
func TestFindKnee(t *testing.T) {
	steps := []SweepStep{
		{TargetRPS: 100, AchievedRPS: 99, Pass: true},
		{TargetRPS: 200, AchievedRPS: 197, Pass: true},
		{TargetRPS: 400, AchievedRPS: 260, Pass: false, Violation: "p99 900ms exceeds SLO 250ms"},
	}
	knee, capacity := findKnee(steps)
	if knee != 400 || capacity != 197 {
		t.Fatalf("knee %g capacity %g, want 400/197", knee, capacity)
	}
	knee, capacity = findKnee(steps[:2])
	if knee != 0 || capacity != 197 {
		t.Fatalf("no-knee case: got %g/%g, want 0/197", knee, capacity)
	}
	if k, c := findKnee(nil); k != 0 || c != 0 {
		t.Fatalf("empty sweep: got %g/%g", k, c)
	}
}
