// Reporting and capacity planning. The JSON report follows the same
// conventions as cmd/benchjson's "hinet-bench/1" documents: a schema
// tag, a context block (host facts + run parameters), and sorted
// result entries, so downstream tooling can diff runs the same way it
// diffs benchmark sweeps. The saturation sweep steps the offered rate
// geometrically and declares the knee at the first step that violates
// the SLO — capacity is the last rate the server absorbed cleanly.

package loadgen

import (
	"cmp"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"time"
)

// ReportSchema tags serving-load reports, versioned independently of
// the micro-benchmark schema.
const ReportSchema = "hinet-serve/1"

// SLO is the service-level objective a run is judged against.
type SLO struct {
	P99          time.Duration // overall p99 latency bound
	MaxErrorRate float64       // errors+shed over arrivals, in [0,1]
}

// DefaultSLO matches the capacity-planning guidance in
// docs/OPERATIONS.md: interactive queries under 250ms at the tail, at
// most 1% failures.
func DefaultSLO() SLO {
	return SLO{P99: 250 * time.Millisecond, MaxErrorRate: 0.01}
}

// Check returns "" when res meets the SLO, else a human-readable
// violation description. The latency bound is judged over admitted
// (2xx) requests when any were recorded: a shed request answers in
// microseconds by design, and a timed-out one is already counted by the
// error-rate bound — folding either into the latency signal would let a
// server "pass" p99 by shedding, or fail it for refusing promptly.
func (s SLO) Check(res *RunResult) string {
	h := res.Overall
	if res.Admitted != nil && res.Admitted.Count() > 0 {
		h = res.Admitted
	}
	if p99 := h.Quantile(0.99); s.P99 > 0 && p99 > s.P99 {
		return fmt.Sprintf("admitted p99 %v exceeds SLO %v", p99.Round(time.Microsecond), s.P99)
	}
	if er := res.ErrorRate(); er > s.MaxErrorRate {
		return fmt.Sprintf("error rate %.2f%% exceeds SLO %.2f%%", er*100, s.MaxErrorRate*100)
	}
	return ""
}

// EndpointReport is the per-cohort slice of a report. Latencies are in
// microseconds to keep the JSON integral and diff-friendly.
type EndpointReport struct {
	Cohort        string  `json:"cohort"`
	Requests      uint64  `json:"requests"`
	Errors        uint64  `json:"errors"`
	Mismatches    uint64  `json:"mismatches,omitempty"`
	Shed          uint64  `json:"shed,omitempty"`
	ShedServer    uint64  `json:"shed_server,omitempty"`
	Timeouts      uint64  `json:"timeouts,omitempty"`
	Degraded      uint64  `json:"degraded,omitempty"`
	MeanUS        int64   `json:"mean_us"`
	P50US         int64   `json:"p50_us"`
	P90US         int64   `json:"p90_us"`
	P99US         int64   `json:"p99_us"`
	P999US        int64   `json:"p999_us"`
	MaxUS         int64   `json:"max_us"`
	AdmittedP99US int64   `json:"admitted_p99_us,omitempty"`
	ErrorRate     float64 `json:"error_rate"`
}

// Report is the JSON document for a single measured run.
type Report struct {
	Schema        string            `json:"schema"`
	Context       map[string]string `json:"context"`
	Requests      uint64            `json:"requests"`
	Errors        uint64            `json:"errors"`
	Mismatch      uint64            `json:"mismatches,omitempty"`
	Shed          uint64            `json:"shed,omitempty"`
	ShedServer    uint64            `json:"shed_server,omitempty"`
	Timeouts      uint64            `json:"timeouts,omitempty"`
	Degraded      uint64            `json:"degraded,omitempty"`
	DurationS     float64           `json:"duration_s"`
	RPS           float64           `json:"throughput_rps"`
	ErrorRate     float64           `json:"error_rate"`
	P50US         int64             `json:"p50_us"`
	P99US         int64             `json:"p99_us"`
	AdmittedP99US int64             `json:"admitted_p99_us,omitempty"`
	CacheHit      float64           `json:"cache_hit_rate"`
	SLO           map[string]any    `json:"slo"`
	Verdict       string            `json:"verdict"` // "pass" | violation text
	Endpoints     []EndpointReport  `json:"endpoints"`
	Stages        []StageLatency    `json:"server_stages,omitempty"`
	Sweep         *SweepReport      `json:"sweep,omitempty"`
}

// us rounds a duration to integral microseconds for report fields.
func us(d time.Duration) int64 { return d.Microseconds() }

// endpointReports flattens per-cohort results, sorted by cohort name
// for deterministic JSON.
func endpointReports(res *RunResult) []EndpointReport {
	out := make([]EndpointReport, 0, len(res.Cohorts))
	for name, c := range res.Cohorts {
		er := EndpointReport{
			Cohort:     name,
			Requests:   c.Requests,
			Errors:     c.Errors,
			Mismatches: c.Mismatches,
			Shed:       c.Shed,
			ShedServer: c.ShedServer,
			Timeouts:   c.Timeouts,
			Degraded:   c.Degraded,
			MeanUS:     us(c.Hist.Mean()),
			P50US:      us(c.Hist.Quantile(0.50)),
			P90US:      us(c.Hist.Quantile(0.90)),
			P99US:      us(c.Hist.Quantile(0.99)),
			P999US:     us(c.Hist.Quantile(0.999)),
			MaxUS:      us(c.Hist.Max()),
		}
		if c.Admitted != nil && c.Admitted.Count() > 0 {
			er.AdmittedP99US = us(c.Admitted.Quantile(0.99))
		}
		if total := c.Requests + c.Shed; total > 0 {
			er.ErrorRate = float64(c.Errors+c.Shed) / float64(total)
		}
		out = append(out, er)
	}
	slices.SortFunc(out, func(a, b EndpointReport) int {
		if a.Cohort < b.Cohort {
			return -1
		}
		if a.Cohort > b.Cohort {
			return 1
		}
		return 0
	})
	return out
}

// cacheHitRate derives the serving cache hit rate over the run window
// from the bracketing /metrics scrapes; -1 when unavailable.
func cacheHitRate(before, after map[string]float64) float64 {
	if before == nil || after == nil {
		return -1
	}
	hits := after["hinet_cache_hits_total"] - before["hinet_cache_hits_total"]
	misses := after["hinet_cache_misses_total"] - before["hinet_cache_misses_total"]
	if hits+misses <= 0 {
		return -1
	}
	return hits / (hits + misses)
}

// StageLatency summarizes one server-side request stage over the run
// window: where the server spent its time, as seen from the tracer's
// hinet_stage_duration_seconds histograms in the bracketing /metrics
// scrapes. Quantiles are bucket upper bounds (octave resolution), in
// microseconds like every other latency column.
type StageLatency struct {
	Endpoint string `json:"endpoint"`
	Stage    string `json:"stage"`
	Count    uint64 `json:"count"`
	P50US    int64  `json:"p50_us"`
	P99US    int64  `json:"p99_us"`
}

// labelVal extracts one label's value from a flat Prometheus label
// list (`endpoint="/v1/rank",stage="params",le="+Inf"`).
func labelVal(labels, name string) (string, bool) {
	marker := name + `="`
	i := strings.Index(labels, marker)
	if i < 0 {
		return "", false
	}
	rest := labels[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// stageLatencies derives per-endpoint-per-stage latency summaries from
// the delta of the bracketing scrapes' stage histogram buckets. Stages
// the run never touched (zero delta) are dropped; nil scrapes yield nil.
func stageLatencies(before, after map[string]float64) []StageLatency {
	const prefix = "hinet_stage_duration_seconds_bucket{"
	type seriesKey struct{ endpoint, stage string }
	type bucket struct{ le, cum float64 }
	acc := map[seriesKey][]bucket{}
	for key, v := range after {
		if !strings.HasPrefix(key, prefix) || !strings.HasSuffix(key, "}") {
			continue
		}
		labels := key[len(prefix) : len(key)-1]
		ep, ok1 := labelVal(labels, "endpoint")
		st, ok2 := labelVal(labels, "stage")
		leStr, ok3 := labelVal(labels, "le")
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64) // "+Inf" parses to +Inf
		if err != nil {
			continue
		}
		k := seriesKey{ep, st}
		acc[k] = append(acc[k], bucket{le, v - before[key]})
	}
	out := make([]StageLatency, 0, len(acc))
	for k, bs := range acc {
		slices.SortFunc(bs, func(a, b bucket) int { return cmp.Compare(a.le, b.le) })
		total := bs[len(bs)-1].cum // the +Inf bucket is the count
		if total <= 0 || len(bs) < 2 {
			continue
		}
		finite := bs[:len(bs)-1]
		quant := func(q float64) int64 {
			rank := q * total
			for _, b := range finite {
				if b.cum >= rank {
					return int64(b.le * 1e6)
				}
			}
			// Off the top of the finite bounds: report the widest one.
			return int64(finite[len(finite)-1].le * 1e6)
		}
		out = append(out, StageLatency{
			Endpoint: k.endpoint,
			Stage:    k.stage,
			Count:    uint64(total),
			P50US:    quant(0.50),
			P99US:    quant(0.99),
		})
	}
	slices.SortFunc(out, func(a, b StageLatency) int {
		if c := cmp.Compare(a.Endpoint, b.Endpoint); c != 0 {
			return c
		}
		return cmp.Compare(a.Stage, b.Stage)
	})
	return out
}

// BuildReport assembles the JSON report for a run. cfg supplies the
// schedule parameters echoed into the context block.
func BuildReport(cfg Config, res *RunResult, slo SLO) *Report {
	verdict := slo.Check(res)
	if verdict == "" {
		verdict = "pass"
	}
	r := &Report{
		Schema: ReportSchema,
		Context: map[string]string{
			"goos":     runtime.GOOS,
			"goarch":   runtime.GOARCH,
			"cpus":     fmt.Sprintf("%d", runtime.NumCPU()),
			"seed":     fmt.Sprintf("%d", cfg.Seed),
			"arrival":  cfg.Arrival,
			"rate":     fmt.Sprintf("%g", cfg.Rate),
			"duration": cfg.Duration.String(),
			"zipf_s":   fmt.Sprintf("%g", cfg.ZipfS),
		},
		Requests:   res.Requests,
		Errors:     res.Errors,
		Mismatch:   res.Mismatches,
		Shed:       res.Shed,
		ShedServer: res.ShedServer,
		Timeouts:   res.Timeouts,
		Degraded:   res.Degraded,
		DurationS:  res.Duration.Seconds(),
		RPS:        res.ThroughputRPS(),
		ErrorRate:  res.ErrorRate(),
		P50US:      us(res.Overall.Quantile(0.50)),
		P99US:      us(res.Overall.Quantile(0.99)),
		CacheHit:   cacheHitRate(res.MetricsBefore, res.MetricsAfter),
		SLO: map[string]any{
			"p99_us":         us(slo.P99),
			"max_error_rate": slo.MaxErrorRate,
		},
		Verdict:   verdict,
		Endpoints: endpointReports(res),
		Stages:    stageLatencies(res.MetricsBefore, res.MetricsAfter),
	}
	if res.Admitted != nil && res.Admitted.Count() > 0 {
		r.AdmittedP99US = us(res.Admitted.Quantile(0.99))
	}
	return r
}

// WriteJSON renders the report with stable formatting.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// --- saturation sweep ------------------------------------------------

// SweepStep is one measured rate step.
type SweepStep struct {
	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	P50US       int64   `json:"p50_us"`
	P99US       int64   `json:"p99_us"`
	ErrorRate   float64 `json:"error_rate"`
	Shed        uint64  `json:"shed,omitempty"`
	Pass        bool    `json:"pass"`
	Violation   string  `json:"violation,omitempty"`
}

// SweepReport summarizes a stepped-rate saturation sweep.
type SweepReport struct {
	Steps       []SweepStep `json:"steps"`
	KneeRPS     float64     `json:"knee_rps"`     // first offered rate violating the SLO (0: none found)
	CapacityRPS float64     `json:"capacity_rps"` // achieved RPS at the last passing step
}

// evalStep converts a run into a sweep step judged against the SLO.
func evalStep(target float64, res *RunResult, slo SLO) SweepStep {
	violation := slo.Check(res)
	return SweepStep{
		TargetRPS:   target,
		AchievedRPS: res.ThroughputRPS(),
		P50US:       us(res.Overall.Quantile(0.50)),
		P99US:       us(res.Overall.Quantile(0.99)),
		ErrorRate:   res.ErrorRate(),
		Shed:        res.Shed,
		Pass:        violation == "",
		Violation:   violation,
	}
}

// findKnee scans ordered steps for the SLO knee: the first offered
// rate that violates the objective. Capacity is the achieved
// throughput of the last passing step before it.
func findKnee(steps []SweepStep) (knee, capacity float64) {
	for _, s := range steps {
		if !s.Pass {
			return s.TargetRPS, capacity
		}
		capacity = s.AchievedRPS
	}
	return 0, capacity
}

// RunSweep measures the SLO knee: run the base config's mix at
// geometrically increasing offered rates (doubling from cfg.Rate,
// maxSteps steps of stepDur each), stopping early once a step fails.
// Each step regenerates its schedule from the same seed, so the mix
// and key popularity are identical across steps — only the arrival
// intensity changes. progress (optional) is told about each step.
func RunSweep(t Target, cfg Config, ks *Keyspace, slo SLO, maxSteps int, stepDur time.Duration,
	progress func(step SweepStep)) (*SweepReport, error) {
	if maxSteps <= 0 {
		maxSteps = 5
	}
	if stepDur <= 0 {
		stepDur = 5 * time.Second
	}
	sw := &SweepReport{}
	rate := cfg.Rate
	if rate <= 0 {
		rate = 50
	}
	for i := 0; i < maxSteps; i++ {
		stepCfg := cfg
		stepCfg.Rate = rate
		stepCfg.Duration = stepDur
		stepCfg.Requests = 0 // re-derive from rate × duration
		stepCfg.Arrival = ArrivalPoisson
		tr, err := Generate(stepCfg, ks)
		if err != nil {
			return nil, err
		}
		res, err := Run(t, tr.Events, RunOptions{})
		if err != nil {
			return nil, err
		}
		step := evalStep(rate, res, slo)
		sw.Steps = append(sw.Steps, step)
		if progress != nil {
			progress(step)
		}
		if !step.Pass {
			break
		}
		rate *= 2
	}
	sw.KneeRPS, sw.CapacityRPS = findKnee(sw.Steps)
	return sw, nil
}
