// Trace format: one JSON object per line (JSONL). An optional first
// object carrying "hinet_trace" is the header (schedule provenance);
// every other line is one Event. Blank lines and lines starting with
// '#' are skipped, unknown fields are errors — the same strictness as
// the ingest delta parser, and for the same reason: a typo'd field
// silently dropping a request is the failure mode to guard against.
//
// Events recorded from a sequential run additionally carry the observed
// status and a digest of the response body's epoch-stable content, so a
// replay doubles as a wire-format regression test: any endpoint that
// renames a field, drops a key, or reorders results fails the digest
// comparison.

package loadgen

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
)

// Header is the optional first trace line: where the schedule came
// from. Replay does not require it, but `hinet loadgen -replay` uses it
// to pick sensible defaults.
type Header struct {
	Version     int     `json:"hinet_trace"` // format version, currently 1
	Seed        int64   `json:"seed,omitempty"`
	Arrival     string  `json:"arrival,omitempty"`
	Rate        float64 `json:"rate,omitempty"`        // open-loop arrivals/s
	DurationUS  int64   `json:"duration_us,omitempty"` // schedule horizon
	Requests    int     `json:"requests,omitempty"`    // closed-loop request count
	Concurrency int     `json:"concurrency,omitempty"` // closed-loop workers
}

// Event is one scheduled request. Offsets are relative to the start of
// the run — the schedule never contains wall-clock time, which is what
// makes generation bit-deterministic under a seed.
type Event struct {
	OffsetUS     int64  `json:"offset_us"`        // scheduled start, µs from run start
	Cohort       string `json:"cohort"`           // rank|clusters|pathsim|ingest|stats
	Method       string `json:"method,omitempty"` // default GET
	Path         string `json:"path"`             // URL path + query, e.g. /v1/rank?top=10
	Body         string `json:"body,omitempty"`   // JSON body for POSTs
	ExpectStatus int    `json:"expect_status,omitempty"`
	Digest       string `json:"digest,omitempty"` // stable response digest (see Digest)
}

// Trace is a parsed trace file.
type Trace struct {
	Header Header
	Events []Event
}

// traceLineMax bounds one trace line (ingest bodies dominate; 1 MiB
// matches the ingest parser's own line bound).
const traceLineMax = 1 << 20

// WriteTrace renders a trace as JSONL, header first when present
// (Version > 0). Output is byte-deterministic for a given trace.
func WriteTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if tr.Header.Version > 0 {
		b, err := json.Marshal(tr.Header)
		if err != nil {
			return err
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	for i := range tr.Events {
		b, err := json.Marshal(&tr.Events[i])
		if err != nil {
			return err
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ParseTrace reads a JSONL trace, validating every event: methods are
// GET or POST, paths are rooted, offsets non-negative, statuses HTTP-
// plausible. Errors carry the line number.
func ParseTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), traceLineMax)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if tr.Header.Version == 0 && len(tr.Events) == 0 && strings.Contains(line, `"hinet_trace"`) {
			var h Header
			dec := json.NewDecoder(strings.NewReader(line))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&h); err != nil {
				return nil, fmt.Errorf("loadgen: trace line %d: header: %v", lineNo, err)
			}
			if h.Version != 1 {
				return nil, fmt.Errorf("loadgen: trace line %d: unsupported trace version %d", lineNo, h.Version)
			}
			tr.Header = h
			continue
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("loadgen: trace line %d: %v", lineNo, err)
		}
		if err := validateEvent(&ev); err != nil {
			return nil, fmt.Errorf("loadgen: trace line %d: %v", lineNo, err)
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: %v", err)
	}
	return tr, nil
}

func validateEvent(ev *Event) error {
	switch ev.Method {
	case "", "GET", "POST":
	default:
		return fmt.Errorf("unsupported method %q", ev.Method)
	}
	if !strings.HasPrefix(ev.Path, "/") {
		return fmt.Errorf("path %q is not rooted", ev.Path)
	}
	if ev.OffsetUS < 0 {
		return fmt.Errorf("negative offset %d", ev.OffsetUS)
	}
	if ev.ExpectStatus != 0 && (ev.ExpectStatus < 100 || ev.ExpectStatus > 599) {
		return fmt.Errorf("implausible expect_status %d", ev.ExpectStatus)
	}
	if ev.Cohort == "" {
		return fmt.Errorf("event has no cohort")
	}
	return nil
}

// --- stable response digest -----------------------------------------

// Digest computes a short hex digest of a response's epoch-stable
// content: the status code, the recursive *shape* of the JSON body
// (sorted object keys, array lengths, scalar types — so any field
// rename, removal or type change shifts the digest), plus a small
// per-cohort set of stable values (the echoed query, result ids for
// pathsim). Volatile values — scores, latencies, epochs, counters — are
// deliberately excluded so recorded digests replay cleanly on any
// machine and across snapshot generations.
func Digest(cohort string, status int, body []byte) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "status=%d;", status)
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		// Non-JSON body (e.g. /healthz): digest the raw bytes.
		sb.WriteString("raw=")
		sb.Write(body)
	} else {
		sb.WriteString("shape=")
		writeShape(&sb, v)
		sb.WriteByte(';')
		writeStableValues(&sb, cohort, v)
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:8])
}

// writeShape canonicalizes the structure of a decoded JSON value:
// objects list their sorted keys with nested shapes, arrays record the
// length and the shape of their first element, scalars reduce to a type
// letter.
func writeShape(sb *strings.Builder, v any) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		sb.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(k)
			sb.WriteByte(':')
			writeShape(sb, t[k])
		}
		sb.WriteByte('}')
	case []any:
		fmt.Fprintf(sb, "[%d", len(t))
		if len(t) > 0 {
			sb.WriteByte(':')
			writeShape(sb, t[0])
		}
		sb.WriteByte(']')
	case string:
		sb.WriteByte('s')
	case float64:
		sb.WriteByte('n')
	case bool:
		sb.WriteByte('b')
	default:
		sb.WriteByte('z')
	}
}

// writeStableValues appends the per-cohort whitelist of value-level
// fields that are deterministic for a fixed seed and request sequence.
func writeStableValues(sb *strings.Builder, cohort string, v any) {
	obj, ok := v.(map[string]any)
	if !ok {
		return
	}
	str := func(k string) string {
		s, _ := obj[k].(string)
		return s
	}
	switch cohort {
	case CohortPathSim:
		fmt.Fprintf(sb, "path=%s;k=%v;", str("path"), obj["k"])
		if q, ok := obj["query"].(map[string]any); ok {
			fmt.Fprintf(sb, "id=%v;name=%s;", q["id"], q["name"])
		}
		if rs, ok := obj["results"].([]any); ok {
			sb.WriteString("ids=")
			for i, r := range rs {
				if m, ok := r.(map[string]any); ok {
					if i > 0 {
						sb.WriteByte(',')
					}
					if id, ok := m["id"].(float64); ok {
						sb.WriteString(strconv.FormatInt(int64(id), 10))
					}
				}
			}
			sb.WriteByte(';')
		}
	case CohortRank:
		fmt.Fprintf(sb, "metric=%s;", str("metric"))
		if top, ok := obj["top"].([]any); ok {
			fmt.Fprintf(sb, "top=%d;", len(top))
		}
	case CohortClusters:
		fmt.Fprintf(sb, "algo=%s;k=%v;", str("algo"), obj["k"])
	}
	// Error payloads are stable too: a 4xx body's message names the
	// client's mistake deterministically.
	if e := str("error"); e != "" {
		fmt.Fprintf(sb, "error=%s;", e)
	}
}
