// Package loadgen is the deterministic workload generator, trace
// record/replay harness and capacity-planning tool for the serving
// tier (internal/serve). The paper's premise is online analytical
// querying over a live information network; this package is how the
// repository measures that claim end-to-end instead of by kernel
// microbenchmarks alone.
//
// Three layers:
//
//   - schedule generation (this file + arrival.go): a seeded PRNG turns
//     a Config into a list of timestamped requests — mixed query
//     cohorts over the serving endpoints with Zipf-skewed key
//     popularity, under an open-loop Poisson, closed-loop, or bursty
//     (sinusoidal-envelope) arrival process. No wall-clock enters the
//     schedule, so the same seed always yields a byte-identical trace;
//   - trace record/replay (trace.go, run.go): schedules serialize to a
//     JSONL trace; a sequential recorded run captures per-request
//     status and a stable response digest, and replaying the trace
//     against a server turns wire-format drift into test failures;
//   - measurement (hist.go, run.go, report.go): per-cohort latency
//     histograms (p50/p90/p99/p999), error rates, cache-hit rates
//     scraped from /metrics, a stepped-rate saturation sweep that
//     locates the throughput knee against an SLO, and a
//     machine-readable BENCH_SERVE.json report.
//
// The CLI entry point is `hinet loadgen`; see docs/OPERATIONS.md
// ("Load testing & capacity planning").
package loadgen

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"hinet/internal/dblp"
	"hinet/internal/hin"
	"hinet/internal/ingest"
	"hinet/internal/stats"
)

// Cohort labels: one per serving endpoint family the generator drives.
const (
	CohortPathSim  = "pathsim"
	CohortRank     = "rank"
	CohortClusters = "clusters"
	CohortIngest   = "ingest"
	CohortStats    = "stats"
)

// cohortOrder fixes the draw order of the cohort sampler — part of the
// determinism contract, never reorder.
var cohortOrder = []string{CohortPathSim, CohortRank, CohortClusters, CohortIngest, CohortStats}

// Arrival process kinds.
const (
	ArrivalPoisson = "poisson" // open-loop, exponential gaps at Rate
	ArrivalClosed  = "closed"  // closed-loop, Requests issued by Concurrency workers
	ArrivalBursty  = "bursty"  // open-loop Poisson under a sinusoidal rate envelope
)

// Mix weighs the query cohorts; weights need not sum to anything.
type Mix struct {
	PathSim  float64
	Rank     float64
	Clusters float64
	Ingest   float64
	Stats    float64
}

// DefaultMix approximates a read-heavy analytical deployment:
// similarity search dominates, rankings are common, cluster views and
// operational polls are occasional, and a trickle of ingest keeps
// epochs (and thus cache invalidation) realistic.
func DefaultMix() Mix {
	return Mix{PathSim: 60, Rank: 20, Clusters: 5, Ingest: 5, Stats: 10}
}

func (m Mix) weights() []float64 {
	return []float64{m.PathSim, m.Rank, m.Clusters, m.Ingest, m.Stats}
}

// ParseMix reads "pathsim=60,rank=20,ingest=5"-style specs; omitted
// cohorts get weight 0.
func ParseMix(spec string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("loadgen: mix term %q is not cohort=weight", part)
		}
		var w float64
		if _, err := fmt.Sscanf(v, "%g", &w); err != nil || w < 0 {
			return m, fmt.Errorf("loadgen: mix weight %q must be a non-negative number", v)
		}
		switch k {
		case CohortPathSim:
			m.PathSim = w
		case CohortRank:
			m.Rank = w
		case CohortClusters:
			m.Clusters = w
		case CohortIngest:
			m.Ingest = w
		case CohortStats:
			m.Stats = w
		default:
			return m, fmt.Errorf("loadgen: unknown cohort %q (want %v)", k, cohortOrder)
		}
	}
	if sum := m.PathSim + m.Rank + m.Clusters + m.Ingest + m.Stats; sum <= 0 {
		return m, fmt.Errorf("loadgen: mix %q has no positive weight", spec)
	}
	return m, nil
}

// Config parameterizes schedule generation. The zero value is not
// runnable; use withDefaults via Generate.
type Config struct {
	Seed        int64
	Arrival     string        // ArrivalPoisson | ArrivalClosed | ArrivalBursty
	Rate        float64       // open-loop mean arrivals/s
	Duration    time.Duration // open-loop schedule horizon
	Requests    int           // closed-loop request count (default Rate·Duration)
	Mix         Mix           // cohort weights (zero value = DefaultMix)
	ZipfS       float64       // key-popularity skew exponent (default 1.1)
	K           int           // top-k for pathsim queries (default 10)
	Paths       []string      // pathsim path= variants; "" = the prebuilt index
	IngestBatch int           // papers per ingest request (default 3)

	// Bursty envelope: rate(t) = Rate · (1 + BurstAmp·sin(2πt/BurstPeriod)).
	BurstPeriod time.Duration // default 10s
	BurstAmp    float64       // in [0,1); default 0.8
}

func (c Config) withDefaults() Config {
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.Rate == 0 {
		c.Rate = 200
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.Mix == (Mix{}) {
		c.Mix = DefaultMix()
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.K == 0 {
		c.K = 10
	}
	if len(c.Paths) == 0 {
		c.Paths = []string{"", "A-P-A"}
	}
	if c.IngestBatch == 0 {
		c.IngestBatch = 3
	}
	if c.BurstPeriod == 0 {
		c.BurstPeriod = 10 * time.Second
	}
	if c.BurstAmp == 0 {
		c.BurstAmp = 0.8
	}
	if c.Requests == 0 {
		c.Requests = int(c.Rate * c.Duration.Seconds())
	}
	return c
}

// Keyspace resolves the generator's draws against a concrete corpus:
// per-path endpoint dimensions for Zipf key sampling and object names
// for ingest deltas. Build it from the same seed/config as the target
// server (the `hinet ingest` convention) and every generated request is
// valid there.
type Keyspace struct {
	corpus *dblp.Corpus
	paths  []pathKeys
}

type pathKeys struct {
	spec     string   // as sent in path= ("" = prebuilt index)
	endpoint hin.Type // type queried at the path's ends
	dim      int      // object count of the endpoint type
}

// NewKeyspace validates the path specs against the corpus schema and
// captures the endpoint dimensions.
func NewKeyspace(c *dblp.Corpus, specs []string) (*Keyspace, error) {
	if len(specs) == 0 {
		specs = []string{""}
	}
	ks := &Keyspace{corpus: c}
	for _, spec := range specs {
		resolved := spec
		if resolved == "" {
			resolved = "A-P-V-P-A" // the server's prebuilt index
		}
		mp, err := c.Net.ParseMetaPath(resolved)
		if err != nil {
			return nil, fmt.Errorf("loadgen: path %q: %v", spec, err)
		}
		dim := c.Net.Count(mp[0])
		if dim == 0 {
			return nil, fmt.Errorf("loadgen: path %q has an empty endpoint type %q", spec, mp[0])
		}
		ks.paths = append(ks.paths, pathKeys{spec: spec, endpoint: mp[0], dim: dim})
	}
	return ks, nil
}

// Generate turns a config into a schedule: arrival offsets from the
// configured process, one request per arrival drawn from the cohort
// mix, keys Zipf-skewed over a seeded popularity permutation. The
// entire schedule is a pure function of (config, keyspace) — no
// wall-clock, no global state — so identical inputs yield a
// byte-identical trace.
func Generate(cfg Config, ks *Keyspace) (*Trace, error) {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)
	offsets, err := arrivalOffsets(cfg, rng)
	if err != nil {
		return nil, err
	}

	cohorts := stats.NewCategorical(rng, cfg.Mix.weights())
	// Per-path Zipf samplers over a seeded popularity permutation:
	// rank-0 popularity lands on a different object per path and per
	// seed, rather than always id 0.
	type keyDraw struct {
		zipf *stats.Zipf
		perm []int
	}
	draws := make([]keyDraw, len(ks.paths))
	for i, p := range ks.paths {
		draws[i] = keyDraw{zipf: stats.NewZipf(rng, p.dim, cfg.ZipfS), perm: rng.Perm(p.dim)}
	}

	tr := &Trace{Header: Header{
		Version: 1, Seed: cfg.Seed, Arrival: cfg.Arrival, Rate: cfg.Rate,
		DurationUS: cfg.Duration.Microseconds(), Requests: len(offsets),
	}}
	tr.Events = make([]Event, 0, len(offsets))
	ingestSeq := 0
	for _, off := range offsets {
		ev := Event{OffsetUS: off, ExpectStatus: 200}
		switch cohortOrder[cohorts.Draw()] {
		case CohortPathSim:
			pi := 0
			if len(ks.paths) > 1 {
				pi = rng.Intn(len(ks.paths))
			}
			d := draws[pi]
			id := d.perm[d.zipf.Draw()]
			ev.Cohort = CohortPathSim
			ev.Path = fmt.Sprintf("/v1/pathsim/topk?id=%d&k=%d", id, cfg.K)
			if ks.paths[pi].spec != "" {
				ev.Path += "&path=" + ks.paths[pi].spec
			}
		case CohortRank:
			metrics := []string{"pagerank", "pagerank", "authority", "hub"}
			tops := []int{5, 10, 25}
			ev.Cohort = CohortRank
			ev.Path = fmt.Sprintf("/v1/rank?metric=%s&top=%d", metrics[rng.Intn(len(metrics))], tops[rng.Intn(len(tops))])
		case CohortClusters:
			algos := []string{"rankclus", "netclus"}
			tops := []int{3, 5}
			ev.Cohort = CohortClusters
			ev.Path = fmt.Sprintf("/v1/clusters?algo=%s&top=%d", algos[rng.Intn(len(algos))], tops[rng.Intn(len(tops))])
		case CohortIngest:
			body, err := ks.ingestBody(rng, cfg.IngestBatch, ingestSeq)
			if err != nil {
				return nil, err
			}
			ingestSeq += cfg.IngestBatch
			ev.Cohort = CohortIngest
			ev.Method = "POST"
			ev.Path = "/v1/ingest"
			ev.Body = body
		case CohortStats:
			ev.Cohort = CohortStats
			ev.Path = "/v1/stats"
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr, nil
}

// ingestBody builds one POST /v1/ingest payload: batch new papers, each
// wired to a venue, 1–3 authors and 2 terms drawn from the initial
// corpus. Paper names carry a running sequence number, so every event
// in a schedule adds distinct papers, yet the whole schedule stays
// replayable (names resolve against any same-seed server, and re-adding
// a name is idempotent at the node level).
func (ks *Keyspace) ingestBody(rng *stats.RNG, batch, seq int) (string, error) {
	n := ks.corpus.Net
	nA, nV, nT := n.Count(dblp.TypeAuthor), n.Count(dblp.TypeVenue), n.Count(dblp.TypeTerm)
	var ds []ingest.Delta
	for p := 0; p < batch; p++ {
		name := fmt.Sprintf("loadgen-paper-%d", seq+p)
		ds = append(ds, ingest.Delta{Op: ingest.OpAddNode, Type: string(dblp.TypePaper), Name: name})
		edge := func(dt hin.Type, id int) {
			ds = append(ds, ingest.Delta{
				Op:      ingest.OpAddEdge,
				SrcType: string(dblp.TypePaper), Src: name,
				DstType: string(dt), Dst: n.Name(dt, id),
			})
		}
		if nV > 0 {
			edge(dblp.TypeVenue, rng.Intn(nV))
		}
		for a, picked := 0, 1+rng.Intn(3); a < picked && a < nA; a++ {
			edge(dblp.TypeAuthor, rng.Intn(nA))
		}
		for t := 0; t < 2 && t < nT; t++ {
			edge(dblp.TypeTerm, rng.Intn(nT))
		}
	}
	b, err := json.Marshal(map[string]any{"deltas": ds})
	if err != nil {
		return "", err
	}
	return string(b), nil
}
