// Latency histogram, promoted to internal/obs so the server's stage
// tracer and the load generator share one implementation (log-spaced
// buckets, atomic counters, exact min/max clamping — see obs/hist.go).
// The alias keeps loadgen's public surface (Hist fields in RunResult,
// Quantile semantics) unchanged.

package loadgen

import "hinet/internal/obs"

// Hist is the shared concurrency-safe latency histogram. The zero
// value is not ready; use newHist.
type Hist = obs.Hist

func newHist() *Hist { return obs.NewHist() }
