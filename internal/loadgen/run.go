// Executing a schedule against a live server: open-loop (honoring the
// scheduled offsets, with a bounded in-flight cap so an overloaded
// target sheds instead of ballooning goroutines), closed-loop (a fixed
// worker fleet draining the schedule in order), and sequential record
// mode (capture status + stable digest per event for later replay).
// Only measurement uses the wall clock; the schedule itself never does.

package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Target is the server under load: a base URL ("http://127.0.0.1:port")
// and the client used to reach it.
type Target struct {
	BaseURL string
	Client  *http.Client
}

// NewTarget builds a target with a connection pool sized for the
// harness's concurrency.
func NewTarget(baseURL string) Target {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 512
	tr.MaxIdleConnsPerHost = 512
	return Target{
		BaseURL: strings.TrimRight(baseURL, "/"),
		Client:  &http.Client{Transport: tr, Timeout: 30 * time.Second},
	}
}

// RunOptions configures one execution of a schedule.
type RunOptions struct {
	// Concurrency > 0 runs closed-loop with that many workers in trace
	// order; 0 runs open-loop honoring event offsets.
	Concurrency int
	// MaxInFlight caps concurrent open-loop requests (default 1024);
	// arrivals beyond the cap are shed and counted, which is itself a
	// saturation signal.
	MaxInFlight int
	// CheckDigests compares observed status/digest against recorded
	// expectations and counts mismatches.
	CheckDigests bool
	// Record runs the schedule sequentially and writes the observed
	// status and digest back into each event (implies Concurrency 1).
	Record bool
	// HonorRetryAfter makes closed-loop workers back off after a 503:
	// the worker sleeps for the server's retry_after_ms hint (or the
	// Retry-After header) before taking its next event, capped at
	// RetryAfterCap (default 1s). Open-loop runs ignore it — an
	// open-loop harness models clients that do not cooperate.
	HonorRetryAfter bool
	RetryAfterCap   time.Duration
	// Observer, when set, sees every completed request: the worker index
	// (-1 open-loop), the event, the status (0 = transport error) and
	// the response body. Must be safe for concurrent calls across
	// workers; calls within one worker are sequential.
	Observer func(worker int, ev *Event, status int, body []byte)
}

// CohortResult aggregates one cohort's outcomes.
type CohortResult struct {
	Requests   uint64 // completed requests (sheds excluded)
	Errors     uint64 // transport errors + unexpected >= 400 statuses
	Mismatches uint64 // status/digest deviations from the recorded trace
	Shed       uint64 // open-loop arrivals dropped at the in-flight cap
	ShedServer uint64 // 503s: requests the server shed under overload
	Timeouts   uint64 // 504s: requests that ran out of deadline server-side
	Degraded   uint64 // 2xx responses annotated "degraded": true (brownout)
	Hist       *Hist  // all completed requests, sheds and timeouts included
	Admitted   *Hist  // successful (2xx) requests only — the goodput latency
}

// RunResult is the measurement of one schedule execution.
type RunResult struct {
	Duration   time.Duration
	Requests   uint64
	Errors     uint64
	Mismatches uint64
	Shed       uint64
	ShedServer uint64 // server-side 503 sheds (see CohortResult)
	Timeouts   uint64 // server-side 504 deadline expirations
	Degraded   uint64 // brownout-annotated 2xx responses
	Overall    *Hist
	Admitted   *Hist // successful (2xx) requests only
	Cohorts    map[string]*CohortResult
	// MetricsBefore/MetricsAfter are /metrics scrapes bracketing the
	// run (nil when the target exposes none); report.go derives cache
	// hit rates from the deltas.
	MetricsBefore, MetricsAfter map[string]float64
	// MismatchDetails carries the first few mismatch descriptions for
	// actionable failure output.
	MismatchDetails []string
}

// ErrorRate returns (errors + shed) over scheduled arrivals.
func (r *RunResult) ErrorRate() float64 {
	total := r.Requests + r.Shed
	if total == 0 {
		return 0
	}
	return float64(r.Errors+r.Shed) / float64(total)
}

// ThroughputRPS returns completed requests per second of run time.
func (r *RunResult) ThroughputRPS() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Duration.Seconds()
}

// runState is the mutable half of a run, shared by workers.
type runState struct {
	target   Target
	opts     RunOptions
	overall  *Hist
	admitted *Hist
	cohorts  map[string]*cohortCounters

	requests, errors, mismatches, shed     atomic.Uint64
	shedServer, timeouts, degradedResponse atomic.Uint64

	mu     sync.Mutex
	detail []string
}

type cohortCounters struct {
	requests, errors, mismatches, shed     atomic.Uint64
	shedServer, timeouts, degradedResponse atomic.Uint64
	hist                                   *Hist
	admitted                               *Hist
}

// Run executes the events of a trace against the target and returns the
// measurement. Events are not mutated unless opts.Record is set.
func Run(t Target, events []Event, opts RunOptions) (*RunResult, error) {
	if opts.MaxInFlight == 0 {
		opts.MaxInFlight = 1024
	}
	if opts.Record {
		opts.Concurrency = 1
	}
	if opts.RetryAfterCap == 0 {
		opts.RetryAfterCap = time.Second
	}
	st := &runState{target: t, opts: opts, overall: newHist(), admitted: newHist(), cohorts: map[string]*cohortCounters{}}
	for i := range events {
		if _, ok := st.cohorts[events[i].Cohort]; !ok {
			st.cohorts[events[i].Cohort] = &cohortCounters{hist: newHist(), admitted: newHist()}
		}
	}

	before, _ := ScrapeMetrics(t)
	start := time.Now()
	if opts.Concurrency > 0 {
		runClosed(st, events)
	} else {
		runOpen(st, events)
	}
	elapsed := time.Since(start)
	after, _ := ScrapeMetrics(t)

	res := &RunResult{
		Duration:      elapsed,
		Requests:      st.requests.Load(),
		Errors:        st.errors.Load(),
		Mismatches:    st.mismatches.Load(),
		Shed:          st.shed.Load(),
		ShedServer:    st.shedServer.Load(),
		Timeouts:      st.timeouts.Load(),
		Degraded:      st.degradedResponse.Load(),
		Overall:       st.overall,
		Admitted:      st.admitted,
		Cohorts:       make(map[string]*CohortResult, len(st.cohorts)),
		MetricsBefore: before,
		MetricsAfter:  after,
	}
	for name, c := range st.cohorts {
		res.Cohorts[name] = &CohortResult{
			Requests:   c.requests.Load(),
			Errors:     c.errors.Load(),
			Mismatches: c.mismatches.Load(),
			Shed:       c.shed.Load(),
			ShedServer: c.shedServer.Load(),
			Timeouts:   c.timeouts.Load(),
			Degraded:   c.degradedResponse.Load(),
			Hist:       c.hist,
			Admitted:   c.admitted,
		}
	}
	st.mu.Lock()
	res.MismatchDetails = st.detail
	st.mu.Unlock()
	return res, nil
}

// runClosed drains the schedule in order through a fixed worker fleet.
func runClosed(st *runState, events []Event) {
	ch := make(chan *Event)
	var wg sync.WaitGroup
	for w := 0; w < st.opts.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for ev := range ch {
				if backoff := st.do(worker, ev); backoff > 0 && st.opts.HonorRetryAfter {
					time.Sleep(backoff)
				}
			}
		}(w)
	}
	for i := range events {
		ch <- &events[i]
	}
	close(ch)
	wg.Wait()
}

// runOpen issues each event at its scheduled offset, shedding arrivals
// when MaxInFlight requests are already outstanding.
func runOpen(st *runState, events []Event) {
	sem := make(chan struct{}, st.opts.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range events {
		ev := &events[i]
		due := time.Duration(ev.OffsetUS) * time.Microsecond
		if wait := due - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-sem; wg.Done() }()
				st.do(-1, ev)
			}()
		default:
			st.shed.Add(1)
			st.cohorts[ev.Cohort].shed.Add(1)
		}
	}
	wg.Wait()
}

// do issues one request, records its latency, and checks expectations.
// The return value is the server's backoff hint (zero unless the
// request was shed with a Retry-After); closed-loop workers honor it
// when opts.HonorRetryAfter is set.
func (st *runState) do(worker int, ev *Event) time.Duration {
	method := ev.Method
	if method == "" {
		method = http.MethodGet
	}
	var body io.Reader
	if ev.Body != "" {
		body = strings.NewReader(ev.Body)
	}
	req, err := http.NewRequest(method, st.target.BaseURL+ev.Path, body)
	if err != nil {
		st.fail(worker, ev, fmt.Sprintf("build request %s: %v", ev.Path, err))
		return 0
	}
	if ev.Body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	c := st.cohorts[ev.Cohort]
	t0 := time.Now()
	resp, err := st.target.Client.Do(req)
	if err != nil {
		c.hist.Observe(time.Since(t0))
		st.overall.Observe(time.Since(t0))
		st.fail(worker, ev, fmt.Sprintf("%s %s: %v", method, ev.Path, err))
		return 0
	}
	respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	resp.Body.Close()
	lat := time.Since(t0)
	c.hist.Observe(lat)
	st.overall.Observe(lat)
	st.requests.Add(1)
	c.requests.Add(1)

	status := resp.StatusCode
	var backoff time.Duration
	switch {
	case status == http.StatusServiceUnavailable:
		st.shedServer.Add(1)
		c.shedServer.Add(1)
		backoff = retryAfter(resp, respBody, st.opts.RetryAfterCap)
	case status == http.StatusGatewayTimeout:
		st.timeouts.Add(1)
		c.timeouts.Add(1)
	case status < 400:
		st.admitted.Observe(lat)
		c.admitted.Observe(lat)
		if bodyDegraded(respBody) {
			st.degradedResponse.Add(1)
			c.degradedResponse.Add(1)
		}
	}
	if st.opts.Record {
		ev.ExpectStatus = status
		ev.Digest = Digest(ev.Cohort, status, respBody)
	} else {
		unexpected := status >= 400 && (ev.ExpectStatus == 0 || status != ev.ExpectStatus)
		if unexpected {
			st.errors.Add(1)
			c.errors.Add(1)
		}
		if st.opts.CheckDigests {
			if ev.ExpectStatus != 0 && status != ev.ExpectStatus {
				st.mismatch(c, "%s %s: status %d, trace expects %d", method, ev.Path, status, ev.ExpectStatus)
			} else if ev.Digest != "" {
				if got := Digest(ev.Cohort, status, respBody); got != ev.Digest {
					st.mismatch(c, "%s %s: digest %s, trace expects %s", method, ev.Path, got, ev.Digest)
				}
			}
		}
	}
	if st.opts.Observer != nil {
		st.opts.Observer(worker, ev, status, respBody)
	}
	return backoff
}

// retryAfter extracts the server's backoff hint from a shed response:
// the JSON body's retry_after_ms field wins (millisecond resolution),
// falling back to the Retry-After header (whole seconds), capped.
func retryAfter(resp *http.Response, body []byte, ceiling time.Duration) time.Duration {
	var d time.Duration
	var hint struct {
		RetryAfterMS int `json:"retry_after_ms"`
	}
	if json.Unmarshal(body, &hint) == nil && hint.RetryAfterMS > 0 {
		d = time.Duration(hint.RetryAfterMS) * time.Millisecond
	} else if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d > ceiling {
		d = ceiling
	}
	return d
}

// bodyDegraded reports whether a 2xx JSON body carries the brownout
// annotation. A substring probe (both compact and indented encodings)
// keeps the hot path free of a full JSON parse.
func bodyDegraded(body []byte) bool {
	return bytes.Contains(body, []byte(`"degraded": true`)) ||
		bytes.Contains(body, []byte(`"degraded":true`))
}

// fail records a transport-level failure (no HTTP status).
func (st *runState) fail(worker int, ev *Event, msg string) {
	c := st.cohorts[ev.Cohort]
	st.requests.Add(1)
	c.requests.Add(1)
	st.errors.Add(1)
	c.errors.Add(1)
	st.note(msg)
	if st.opts.Observer != nil {
		st.opts.Observer(worker, ev, 0, nil)
	}
}

func (st *runState) mismatch(c *cohortCounters, format string, args ...any) {
	st.mismatches.Add(1)
	c.mismatches.Add(1)
	st.note(fmt.Sprintf(format, args...))
}

// note keeps the first few failure descriptions for reporting.
func (st *runState) note(msg string) {
	st.mu.Lock()
	if len(st.detail) < 10 {
		st.detail = append(st.detail, msg)
	}
	st.mu.Unlock()
}

// ScrapeMetrics fetches and parses the target's Prometheus text
// exposition into a flat name{labels} → value map. A target without
// /metrics returns an error (callers treat the scrape as optional).
func ScrapeMetrics(t Target) (map[string]float64, error) {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(t.BaseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: /metrics returned %s", resp.Status)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 4<<20))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out[name] = f
	}
	return out, sc.Err()
}
