package loadgen

import (
	"fmt"
	"testing"
)

// stageSeries fabricates one stage histogram series in scrape-map form:
// cumulative counts over the given (le seconds, cum) pairs plus +Inf.
func stageSeries(m map[string]float64, endpoint, stage string, bounds []float64, cums []float64, total float64) {
	for i, le := range bounds {
		key := fmt.Sprintf("hinet_stage_duration_seconds_bucket{endpoint=%q,stage=%q,le=%q}",
			endpoint, stage, fmt.Sprintf("%g", le))
		m[key] = cums[i]
	}
	m[fmt.Sprintf("hinet_stage_duration_seconds_bucket{endpoint=%q,stage=%q,le=\"+Inf\"}", endpoint, stage)] = total
}

func TestStageLatencies(t *testing.T) {
	bounds := []float64{0.001, 0.002, 0.004}
	before := map[string]float64{}
	after := map[string]float64{}
	// kernel: 90 obs ≤ 1ms, 9 more ≤ 2ms, 1 more ≤ 4ms → p50 = 1ms,
	// p99 = 2ms (rank 99 lands in the ≤2ms bucket: cum 99 ≥ 99).
	stageSeries(after, "/v1/pathsim/topk", "kernel", bounds, []float64{90, 99, 100}, 100)
	// render existed before the window and saw no new traffic → dropped.
	stageSeries(before, "/v1/pathsim/topk", "render", bounds, []float64{5, 5, 5}, 5)
	stageSeries(after, "/v1/pathsim/topk", "render", bounds, []float64{5, 5, 5}, 5)
	// params on another endpoint: all 10 obs beyond the widest bound →
	// quantiles clamp to it.
	stageSeries(after, "/v1/rank", "params", bounds, []float64{0, 0, 0}, 10)

	got := stageLatencies(before, after)
	if len(got) != 2 {
		t.Fatalf("stages = %+v, want 2 entries", got)
	}
	// Sorted by endpoint then stage: /v1/pathsim/topk before /v1/rank.
	k := got[0]
	if k.Endpoint != "/v1/pathsim/topk" || k.Stage != "kernel" || k.Count != 100 {
		t.Fatalf("first entry = %+v", k)
	}
	if k.P50US != 1000 || k.P99US != 2000 {
		t.Errorf("kernel quantiles = p50 %d p99 %d, want 1000/2000", k.P50US, k.P99US)
	}
	p := got[1]
	if p.Endpoint != "/v1/rank" || p.Stage != "params" || p.Count != 10 {
		t.Fatalf("second entry = %+v", p)
	}
	if p.P50US != 4000 || p.P99US != 4000 {
		t.Errorf("beyond-range quantiles = p50 %d p99 %d, want clamp to 4000", p.P50US, p.P99US)
	}

	if s := stageLatencies(nil, nil); s != nil && len(s) != 0 {
		t.Fatalf("nil scrapes produced stages: %+v", s)
	}
}
