package loadgen

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"hinet/internal/dblp"
	"hinet/internal/serve"
	"hinet/internal/stats"
)

// testCorpusConfig mirrors internal/serve's small two-area test corpus,
// so keyspaces here resolve against servers built the same way.
func testCorpusConfig() dblp.Config {
	return dblp.Config{
		Areas:         []string{"database", "datamining"},
		VenuesPerArea: 3, AuthorsPerArea: 40, TermsPerArea: 30,
		SharedTerms: 15, Papers: 300,
	}
}

func testKeyspace(t *testing.T, specs []string) *Keyspace {
	t.Helper()
	c := dblp.Generate(stats.NewRNG(1), testCorpusConfig())
	ks, err := NewKeyspace(c, specs)
	if err != nil {
		t.Fatalf("NewKeyspace: %v", err)
	}
	return ks
}

// startTestServer boots an in-process serving tier on a loopback port.
func startTestServer(t *testing.T, opts serve.Options) Target {
	t.Helper()
	if opts.Models.Corpus.Papers == 0 {
		opts.Models = serve.ModelConfig{Corpus: testCorpusConfig()}
	}
	opts.Addr = "127.0.0.1:0"
	opts.Seed = 1
	s := serve.New(opts)
	bound, err := s.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return NewTarget("http://" + bound)
}

// TestGenerateDeterministic is the core contract: the same seed and
// config produce a byte-identical trace file.
func TestGenerateDeterministic(t *testing.T) {
	ks := testKeyspace(t, nil)
	cfg := Config{Seed: 42, Rate: 300, Duration: 4 * time.Second}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		tr, err := Generate(cfg, ks)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		if err := WriteTrace(&bufs[i], tr); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("same seed produced different trace bytes")
	}
	tr2, err := Generate(Config{Seed: 43, Rate: 300, Duration: 4 * time.Second}, ks)
	if err != nil {
		t.Fatalf("Generate seed 43: %v", err)
	}
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, tr2); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if bytes.Equal(bufs[0].Bytes(), buf2.Bytes()) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestGenerateMixRatios checks the cohort sampler tracks the configured
// weights within sampling noise.
func TestGenerateMixRatios(t *testing.T) {
	ks := testKeyspace(t, nil)
	cfg := Config{Seed: 7, Rate: 2000, Duration: 5 * time.Second,
		Mix: Mix{PathSim: 50, Rank: 30, Stats: 20}}
	tr, err := Generate(cfg, ks)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range tr.Events {
		counts[ev.Cohort]++
	}
	if counts[CohortIngest] != 0 || counts[CohortClusters] != 0 {
		t.Fatalf("zero-weight cohorts appeared: %v", counts)
	}
	n := float64(len(tr.Events))
	for cohort, want := range map[string]float64{CohortPathSim: 0.5, CohortRank: 0.3, CohortStats: 0.2} {
		got := float64(counts[cohort]) / n
		if math.Abs(got-want) > 0.05 {
			t.Errorf("cohort %s: fraction %.3f, want %.2f±0.05 (n=%d)", cohort, got, want, len(tr.Events))
		}
	}
}

// TestGenerateZipfSkew: with s well above 1, the most popular key must
// receive a disproportionate share of the pathsim queries.
func TestGenerateZipfSkew(t *testing.T) {
	ks := testKeyspace(t, []string{""})
	cfg := Config{Seed: 3, Rate: 2000, Duration: 5 * time.Second, ZipfS: 1.5,
		Mix: Mix{PathSim: 1}}
	tr, err := Generate(cfg, ks)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	byPath := map[string]int{}
	for _, ev := range tr.Events {
		byPath[ev.Path]++
	}
	max, total := 0, 0
	for _, c := range byPath {
		total += c
		if c > max {
			max = c
		}
	}
	// 80 authors uniform would give 1.25% to the top key; Zipf s=1.5
	// concentrates far more than that.
	if frac := float64(max) / float64(total); frac < 0.10 {
		t.Errorf("hottest key drew only %.1f%% of %d queries; want Zipf concentration >= 10%%", frac*100, total)
	}
}

// TestArrivalProcesses exercises the three processes' shape guarantees.
func TestArrivalProcesses(t *testing.T) {
	ks := testKeyspace(t, nil)

	t.Run("poisson", func(t *testing.T) {
		tr, err := Generate(Config{Seed: 1, Arrival: ArrivalPoisson, Rate: 500, Duration: 4 * time.Second}, ks)
		if err != nil {
			t.Fatal(err)
		}
		n := len(tr.Events)
		if n < 1600 || n > 2400 {
			t.Errorf("poisson 500rps x 4s: %d arrivals, want ~2000", n)
		}
		assertSortedWithin(t, tr.Events, 4*time.Second)
	})

	t.Run("bursty", func(t *testing.T) {
		tr, err := Generate(Config{Seed: 1, Arrival: ArrivalBursty, Rate: 500, Duration: 4 * time.Second,
			BurstPeriod: 4 * time.Second, BurstAmp: 0.9}, ks)
		if err != nil {
			t.Fatal(err)
		}
		assertSortedWithin(t, tr.Events, 4*time.Second)
		// First half of the sine period is above the mean rate, second
		// half below: the halves must differ markedly.
		half := int64(2 * time.Second / time.Microsecond)
		var first, second int
		for _, ev := range tr.Events {
			if ev.OffsetUS < half {
				first++
			} else {
				second++
			}
		}
		if first < second*2 {
			t.Errorf("bursty envelope flat: first half %d arrivals, second half %d", first, second)
		}
	})

	t.Run("closed", func(t *testing.T) {
		tr, err := Generate(Config{Seed: 1, Arrival: ArrivalClosed, Requests: 250}, ks)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Events) != 250 {
			t.Fatalf("closed: %d events, want 250", len(tr.Events))
		}
		for _, ev := range tr.Events {
			if ev.OffsetUS != 0 {
				t.Fatal("closed-loop schedule must have zero offsets")
			}
		}
	})

	t.Run("unknown", func(t *testing.T) {
		if _, err := Generate(Config{Seed: 1, Arrival: "thundering-herd"}, ks); err == nil {
			t.Fatal("unknown arrival process accepted")
		}
	})
}

func assertSortedWithin(t *testing.T, evs []Event, horizon time.Duration) {
	t.Helper()
	limit := horizon.Microseconds()
	var prev int64
	for i, ev := range evs {
		if ev.OffsetUS < prev {
			t.Fatalf("event %d: offset %d before previous %d", i, ev.OffsetUS, prev)
		}
		if ev.OffsetUS >= limit {
			t.Fatalf("event %d: offset %d beyond horizon %d", i, ev.OffsetUS, limit)
		}
		prev = ev.OffsetUS
	}
}

// TestParseMix covers the spec syntax and its failure modes.
func TestParseMix(t *testing.T) {
	m, err := ParseMix("pathsim=60, rank=20,ingest=5")
	if err != nil {
		t.Fatalf("ParseMix: %v", err)
	}
	if m.PathSim != 60 || m.Rank != 20 || m.Ingest != 5 || m.Clusters != 0 || m.Stats != 0 {
		t.Fatalf("ParseMix: got %+v", m)
	}
	for _, bad := range []string{"pathsim", "pathsim=-1", "warp=9", "", "pathsim=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q): want error", bad)
		}
	}
}

// TestNewKeyspaceRejectsBadPath: schema validation happens at keyspace
// construction, not at request time.
func TestNewKeyspaceRejectsBadPath(t *testing.T) {
	c := dblp.Generate(stats.NewRNG(1), testCorpusConfig())
	if _, err := NewKeyspace(c, []string{"A-P-X-P-A"}); err == nil {
		t.Fatal("bad meta-path accepted")
	}
}
