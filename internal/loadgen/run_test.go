package loadgen

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hinet/internal/serve"
)

// -update regenerates testdata/golden_trace.jsonl from goldenConfig.
var update = flag.Bool("update", false, "rewrite golden trace fixtures")

// goldenConfig pins the committed golden trace's schedule. Closed-loop,
// so replay is a pure function of the request sequence, not of timing.
func goldenConfig() Config {
	return Config{
		Seed:     42,
		Arrival:  ArrivalClosed,
		Requests: 60,
		Paths:    []string{"", "A-P-A"},
	}
}

const goldenPath = "testdata/golden_trace.jsonl"

// TestRunSmoke drives a short open-loop schedule end-to-end against an
// in-process server and checks the measurement plumbing.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a server")
	}
	target := startTestServer(t, serve.Options{})
	ks := testKeyspace(t, nil)
	tr, err := Generate(Config{Seed: 5, Rate: 150, Duration: 2 * time.Second}, ks)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	res, err := Run(target, tr.Events, RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if res.Errors > 0 {
		t.Fatalf("%d errors: %v", res.Errors, res.MismatchDetails)
	}
	if res.Overall.Count() != res.Requests {
		t.Fatalf("histogram count %d != requests %d", res.Overall.Count(), res.Requests)
	}
	if res.ThroughputRPS() <= 0 {
		t.Fatal("zero throughput")
	}
	if res.MetricsAfter == nil {
		t.Fatal("metrics scrape failed against a server that exposes /metrics")
	}
	rep := BuildReport(goldenConfig(), res, DefaultSLO())
	if rep.Schema != ReportSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if rep.CacheHit < 0 {
		t.Error("cache hit rate unavailable despite bracketing scrapes")
	}
	if len(rep.Stages) == 0 {
		t.Error("no server-side stage latencies despite bracketing scrapes")
	}
	found := false
	for _, st := range rep.Stages {
		if st.Endpoint == "/v1/pathsim/topk" && st.Stage == "kernel" {
			found = true
			if st.Count == 0 || st.P99US <= 0 {
				t.Errorf("kernel stage summary empty: %+v", st)
			}
		}
	}
	if !found {
		t.Errorf("no kernel stage for topk in %+v", rep.Stages)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(ReportSchema)) {
		t.Fatal("report JSON lacks schema tag")
	}
}

// TestRecordReplayRoundTrip records a run and immediately replays it:
// every digest must match, including the ingest-mutated tail.
func TestRecordReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two servers")
	}
	ks := testKeyspace(t, goldenConfig().Paths)
	tr, err := Generate(goldenConfig(), ks)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}

	rec := startTestServer(t, serve.Options{})
	if _, err := Run(rec, tr.Events, RunOptions{Record: true}); err != nil {
		t.Fatalf("record run: %v", err)
	}
	for i, ev := range tr.Events {
		if ev.ExpectStatus == 0 || ev.Digest == "" {
			t.Fatalf("event %d not recorded: %+v", i, ev)
		}
	}

	// Serialize and re-parse: the replay path sees exactly what a
	// committed trace file carries.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	parsed, err := ParseTrace(&buf)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}

	rep := startTestServer(t, serve.Options{})
	res, err := Run(rep, parsed.Events, RunOptions{Concurrency: 1, CheckDigests: true})
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if res.Mismatches > 0 || res.Errors > 0 {
		t.Fatalf("replay diverged: %d mismatches %d errors: %v",
			res.Mismatches, res.Errors, res.MismatchDetails)
	}
}

// TestGoldenReplay replays the committed golden trace against a fresh
// same-seed server: a wire-format regression test. Regenerate the
// fixture with `go test ./internal/loadgen -run TestGoldenReplay -update`
// after intentional response-format changes.
func TestGoldenReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a server")
	}
	target := startTestServer(t, serve.Options{})

	if *update {
		ks := testKeyspace(t, goldenConfig().Paths)
		tr, err := Generate(goldenConfig(), ks)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		if _, err := Run(target, tr.Events, RunOptions{Record: true}); err != nil {
			t.Fatalf("record run: %v", err)
		}
		tr.Header.Concurrency = 1
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(goldenPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteTrace(f, tr); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d events", goldenPath, len(tr.Events))
		return
	}

	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("open golden trace (regenerate with -update): %v", err)
	}
	defer f.Close()
	tr, err := ParseTrace(f)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("golden trace is empty")
	}
	res, err := Run(target, tr.Events, RunOptions{Concurrency: 1, CheckDigests: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors > 0 || res.Mismatches > 0 {
		t.Fatalf("golden replay diverged: %d errors %d mismatches: %v",
			res.Errors, res.Mismatches, res.MismatchDetails)
	}
}

// TestGoldenShardedReplay replays the same committed golden trace
// through a 3-shard scatter-gather server: every digest recorded
// against a single-process server must match the sharded tier's
// responses — the serving-layer face of the bitwise-equivalence
// guarantee (internal/cluster pins the kernel-level half).
func TestGoldenShardedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a server")
	}
	if *update {
		t.Skip("fixture being rewritten")
	}
	target := startTestServer(t, serve.Options{Shards: 3, ShardPolicy: "least-loaded"})
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("open golden trace (regenerate with -update): %v", err)
	}
	defer f.Close()
	tr, err := ParseTrace(f)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	res, err := Run(target, tr.Events, RunOptions{Concurrency: 1, CheckDigests: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors > 0 || res.Mismatches > 0 {
		t.Fatalf("sharded golden replay diverged: %d errors %d mismatches: %v",
			res.Errors, res.Mismatches, res.MismatchDetails)
	}
}

// TestGoldenTraceScheduleStable: regenerating the schedule half of the
// golden trace (offsets, cohorts, paths, bodies) from goldenConfig must
// reproduce the committed file exactly — the bit-determinism acceptance
// check, run against the real fixture.
func TestGoldenTraceScheduleStable(t *testing.T) {
	if *update {
		t.Skip("fixture being rewritten")
	}
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("open golden trace: %v", err)
	}
	defer f.Close()
	committed, err := ParseTrace(f)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	ks := testKeyspace(t, goldenConfig().Paths)
	regen, err := Generate(goldenConfig(), ks)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(regen.Events) != len(committed.Events) {
		t.Fatalf("regenerated %d events, committed %d", len(regen.Events), len(committed.Events))
	}
	for i := range regen.Events {
		g, w := regen.Events[i], committed.Events[i]
		if g.OffsetUS != w.OffsetUS || g.Cohort != w.Cohort || g.Method != w.Method ||
			g.Path != w.Path || g.Body != w.Body {
			t.Fatalf("event %d schedule drift:\nregen:     %+v\ncommitted: %+v", i, g, w)
		}
	}
}
