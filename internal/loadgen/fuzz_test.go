package loadgen

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTrace hardens the trace parser against arbitrary input: it
// must never panic, and anything it accepts must survive a write →
// re-parse round trip unchanged (the replay path depends on that).
func FuzzParseTrace(f *testing.F) {
	f.Add(`{"hinet_trace":1,"seed":42,"arrival":"poisson","rate":100}` + "\n" +
		`{"offset_us":0,"cohort":"stats","path":"/v1/stats","expect_status":200}`)
	f.Add(`{"offset_us":12,"cohort":"pathsim","path":"/v1/pathsim/topk?id=3&k=5","digest":"0011223344556677"}`)
	f.Add(`{"offset_us":1,"cohort":"ingest","method":"POST","path":"/v1/ingest","body":"{\"deltas\":[]}"}`)
	f.Add("# comment\n\n" + `{"offset_us":0,"cohort":"rank","path":"/v1/rank?top=5"}`)
	f.Add(`{"hinet_trace":2}`)
	f.Add(`{"offset_us":-1,"cohort":"x","path":"/y"}`)
	f.Add("not json at all")

	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		tr2, err := ParseTrace(&buf)
		if err != nil {
			t.Fatalf("serialized form of an accepted trace was rejected: %v\n%s", err, buf.String())
		}
		if tr2.Header != tr.Header || len(tr2.Events) != len(tr.Events) {
			t.Fatalf("round trip changed the trace: %+v vs %+v", tr, tr2)
		}
		for i := range tr.Events {
			if tr.Events[i] != tr2.Events[i] {
				t.Fatalf("round trip changed event %d: %+v vs %+v", i, tr.Events[i], tr2.Events[i])
			}
		}
	})
}
