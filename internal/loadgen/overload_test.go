package loadgen

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryAfterParsing: the JSON body's millisecond hint wins over the
// header, the header's whole seconds are honored when the body has no
// hint, and both are capped at the ceiling.
func TestRetryAfterParsing(t *testing.T) {
	cases := []struct {
		name    string
		header  string
		body    string
		ceiling time.Duration
		want    time.Duration
	}{
		{"body wins", "2", `{"error":"overloaded","retry_after_ms":250}`, time.Second, 250 * time.Millisecond},
		{"header fallback", "2", `{"error":"overloaded"}`, 5 * time.Second, 2 * time.Second},
		{"body capped", "", `{"retry_after_ms":9000}`, time.Second, time.Second},
		{"header capped", "30", ``, time.Second, time.Second},
		{"no hint", "", `{}`, time.Second, 0},
		{"garbage body falls back", "1", `not json`, time.Second, time.Second},
	}
	for _, tc := range cases {
		resp := &http.Response{Header: http.Header{}}
		if tc.header != "" {
			resp.Header.Set("Retry-After", tc.header)
		}
		if got := retryAfter(resp, []byte(tc.body), tc.ceiling); got != tc.want {
			t.Errorf("%s: retryAfter = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestBodyDegraded: both compact and indented encodings of the
// brownout annotation are recognized; absence and false are not.
func TestBodyDegraded(t *testing.T) {
	if !bodyDegraded([]byte(`{"degraded":true,"results":[]}`)) {
		t.Error("compact encoding not detected")
	}
	if !bodyDegraded([]byte("{\n  \"degraded\": true\n}")) {
		t.Error("indented encoding not detected")
	}
	if bodyDegraded([]byte(`{"degraded":false}`)) {
		t.Error("degraded:false misread as degraded")
	}
	if bodyDegraded([]byte(`{"results":[]}`)) {
		t.Error("absent annotation misread as degraded")
	}
}

// TestHonorRetryAfterClosedLoop: a closed-loop run against a server
// that sheds with a backoff hint slows down when HonorRetryAfter is
// set, and counts every shed either way.
func TestHonorRetryAfterClosedLoop(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Shed every other request with a 40ms hint.
		if hits.Add(1)%2 == 0 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"overloaded","class":"query","retry_after_ms":40}`))
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	events := make([]Event, 8)
	for i := range events {
		events[i] = Event{Cohort: "t", Path: "/"}
	}
	target := NewTarget(ts.URL)

	start := time.Now()
	res, err := Run(target, events, RunOptions{Concurrency: 1, HonorRetryAfter: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	elapsed := time.Since(start)
	if res.ShedServer != 4 {
		t.Fatalf("ShedServer = %d, want 4", res.ShedServer)
	}
	if res.Admitted.Count() != 4 {
		t.Fatalf("Admitted = %d, want 4", res.Admitted.Count())
	}
	// Four sheds × 40ms backoff: the run cannot finish faster than the
	// honored hints allow.
	if elapsed < 160*time.Millisecond {
		t.Errorf("run took %v with HonorRetryAfter; backoff hints were not honored", elapsed)
	}

	hits.Store(0)
	start = time.Now()
	res, err = Run(target, events, RunOptions{Concurrency: 1})
	if err != nil {
		t.Fatalf("Run (no honor): %v", err)
	}
	if got := time.Since(start); got > 150*time.Millisecond {
		t.Errorf("run without HonorRetryAfter took %v; sheds should not stall it", got)
	}
	if res.ShedServer != 4 {
		t.Errorf("ShedServer = %d without honoring, want 4 (counting is independent)", res.ShedServer)
	}
}
