package truth

import (
	"math"
	"testing"

	"hinet/internal/stats"
)

// tinyNetwork: 2 objects, 2 facts each; sites 0,1 assert truth (facts
// 0, 2); site 2 asserts falsehoods (facts 1, 3).
func tinyNetwork() *Network {
	return &Network{
		NumWebsites: 3,
		NumFacts:    4,
		FactObject:  []int{0, 0, 1, 1},
		Claims: []Claim{
			{Website: 0, Fact: 0}, {Website: 0, Fact: 2},
			{Website: 1, Fact: 0}, {Website: 1, Fact: 2},
			{Website: 2, Fact: 1}, {Website: 2, Fact: 3},
		},
	}
}

func TestRunMajorityBackedFactsWin(t *testing.T) {
	n := tinyNetwork()
	r := Run(n, Options{})
	if !r.Converged {
		t.Fatal("no convergence")
	}
	if r.Confidence[0] <= r.Confidence[1] || r.Confidence[2] <= r.Confidence[3] {
		t.Errorf("confidences = %v; facts 0,2 should win", r.Confidence)
	}
	if r.Trust[0] <= r.Trust[2] {
		t.Errorf("trust = %v; sites 0,1 should beat site 2", r.Trust)
	}
}

func TestBoundsInvariants(t *testing.T) {
	rng := stats.NewRNG(1)
	s := Synthesize(rng, SynthConfig{})
	r := Run(s.Net, Options{})
	for w, tr := range r.Trust {
		if tr <= 0 || tr >= 1 {
			t.Fatalf("trust[%d] = %v out of (0,1)", w, tr)
		}
	}
	for f, c := range r.Confidence {
		if c < 0 || c > 1 {
			t.Fatalf("confidence[%d] = %v", f, c)
		}
	}
}

func TestCopycatsHurtAndCopyDetectionRecovers(t *testing.T) {
	rng := stats.NewRNG(2)
	// Copycats amplify one bad site's claims: plain TruthFinder (and
	// majority voting) degrade; copy detection restores accuracy.
	s := Synthesize(rng, SynthConfig{
		Objects:       80,
		Websites:      20,
		ClaimsPerSite: 40,
		GoodSites:     0.5,
		GoodErr:       0.05,
		BadErr:        0.65,
		Copycats:      6,
	})
	plain := Run(s.Net, Options{})
	plainAcc := s.Accuracy(PredictTruth(s.Net, plain.Confidence))

	s.Net.SiteWeight = DetectCopycats(s.Net, 0.9)
	guarded := Run(s.Net, Options{})
	guardedAcc := s.Accuracy(PredictTruth(s.Net, guarded.Confidence))

	if guardedAcc <= plainAcc {
		t.Errorf("copy detection should help: plain %.3f, guarded %.3f", plainAcc, guardedAcc)
	}
	if guardedAcc < 0.8 {
		t.Errorf("guarded accuracy too low: %.3f", guardedAcc)
	}
}

func TestDetectCopycatsWeights(t *testing.T) {
	rng := stats.NewRNG(7)
	s := Synthesize(rng, SynthConfig{Websites: 10, Copycats: 4, ClaimsPerSite: 30})
	w := DetectCopycats(s.Net, 0.95)
	// The 4 copycats + their source form a group of 5 → weight 0.2.
	low := 0
	for _, v := range w {
		if v < 0.25 {
			low++
		}
	}
	if low < 5 {
		t.Errorf("expected ≥5 down-weighted mirror sites, got %d (weights %v)", low, w)
	}
}

func TestTruthFinderAtLeastMatchesMajorityUncorrelated(t *testing.T) {
	// Uncorrelated individual errors: TruthFinder's trust weighting
	// should match or beat raw voting across seeds.
	var tfSum, mvSum float64
	for seed := int64(0); seed < 5; seed++ {
		s := Synthesize(stats.NewRNG(100+seed), SynthConfig{
			Objects:       60,
			FalsePerObj:   4,
			Websites:      40,
			ClaimsPerSite: 45,
			GoodSites:     0.4,
			GoodErr:       0.05,
			BadErr:        0.55,
		})
		r := Run(s.Net, Options{})
		tfSum += s.Accuracy(PredictTruth(s.Net, r.Confidence))
		mvSum += s.Accuracy(MajorityVote(s.Net))
	}
	if tfSum < mvSum-0.05 {
		t.Errorf("TruthFinder total %.3f below majority %.3f", tfSum, mvSum)
	}
}

func TestHighAccuracyOnCleanWorkload(t *testing.T) {
	rng := stats.NewRNG(3)
	s := Synthesize(rng, SynthConfig{GoodSites: 0.8, GoodErr: 0.05, BadErr: 0.5})
	r := Run(s.Net, Options{})
	if acc := s.Accuracy(PredictTruth(s.Net, r.Confidence)); acc < 0.85 {
		t.Errorf("clean-workload accuracy = %.3f", acc)
	}
}

func TestGoodSitesEarnMoreTrust(t *testing.T) {
	rng := stats.NewRNG(4)
	s := Synthesize(rng, SynthConfig{Websites: 40, ClaimsPerSite: 60})
	r := Run(s.Net, Options{})
	var goodSum, badSum float64
	var goodN, badN int
	for w, g := range s.SiteGood {
		if g {
			goodSum += r.Trust[w]
			goodN++
		} else {
			badSum += r.Trust[w]
			badN++
		}
	}
	if goodN == 0 || badN == 0 {
		t.Skip("degenerate site split")
	}
	if goodSum/float64(goodN) <= badSum/float64(badN) {
		t.Errorf("mean trust good=%.3f bad=%.3f", goodSum/float64(goodN), badSum/float64(badN))
	}
}

func TestImplicationFunctionUsed(t *testing.T) {
	// Two facts on one object; a positive implication from the
	// well-supported fact should *raise* the weak fact's confidence
	// relative to full inhibition.
	base := tinyNetwork()
	inhibit := Run(base, Options{})
	support := tinyNetwork()
	support.Implication = func(g, f int) float64 { return 0.5 }
	boosted := Run(support, Options{})
	if boosted.Confidence[1] <= inhibit.Confidence[1] {
		t.Errorf("positive implication should raise weak-fact confidence: %v vs %v",
			boosted.Confidence[1], inhibit.Confidence[1])
	}
}

func TestWebsiteWithNoClaims(t *testing.T) {
	n := tinyNetwork()
	n.NumWebsites = 4 // site 3 claims nothing
	r := Run(n, Options{})
	if math.IsNaN(r.Trust[3]) {
		t.Error("claimless site trust is NaN")
	}
}

func TestMajorityVoteBaseline(t *testing.T) {
	n := tinyNetwork()
	mv := MajorityVote(n)
	if mv[0] != 0 || mv[1] != 2 {
		t.Errorf("majority vote = %v", mv)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(stats.NewRNG(5), SynthConfig{})
	b := Synthesize(stats.NewRNG(5), SynthConfig{})
	if len(a.Net.Claims) != len(b.Net.Claims) {
		t.Fatal("claim counts differ")
	}
	for i := range a.Net.Claims {
		if a.Net.Claims[i] != b.Net.Claims[i] {
			t.Fatal("claims differ")
		}
	}
}

func TestSynthesizeShape(t *testing.T) {
	s := Synthesize(stats.NewRNG(6), SynthConfig{Objects: 10, FalsePerObj: 2, Websites: 5, ClaimsPerSite: 8})
	if s.Net.NumFacts != 30 {
		t.Errorf("facts = %d, want 30", s.Net.NumFacts)
	}
	if len(s.Net.Claims) != 5*8 {
		t.Errorf("claims = %d, want 40", len(s.Net.Claims))
	}
	for o, f := range s.TrueFact {
		if s.Net.FactObject[f] != o {
			t.Fatal("true fact maps to wrong object")
		}
	}
}

func TestAccuracyHelper(t *testing.T) {
	s := &Synthetic{TrueFact: []int{0, 5}}
	if a := s.Accuracy(map[int]int{0: 0, 1: 5}); a != 1 {
		t.Errorf("accuracy = %v", a)
	}
	if a := s.Accuracy(map[int]int{0: 1, 1: 5}); a != 0.5 {
		t.Errorf("accuracy = %v", a)
	}
}
