// Package truth implements TruthFinder (Yin, Han, Yu — TKDE'08), the
// veracity-analysis technique the tutorial presents in §3d: given many
// websites asserting conflicting facts about objects, discover which
// facts are true and how trustworthy each website is, by link analysis
// on the website–fact network.
//
// The fixed point couples two quantities:
//
//	trust(w)      = mean confidence of the facts w provides
//	score(f)      = Σ_{w provides f} −ln(1 − trust(w))     (evidence)
//	adjusted(f)   = score(f) + ρ · Σ_{g≠f, same object} imp(g→f)·score(g)
//	confidence(f) = 1 / (1 + e^{−γ·adjusted(f)})
//
// where imp(g→f) ∈ [−1, 1] lets conflicting facts about the same object
// inhibit each other. Iteration stops when website trust stabilizes.
package truth

import (
	"math"

	"hinet/internal/stats"
)

// Claim states that website W asserts fact F.
type Claim struct {
	Website int
	Fact    int
}

// Network is the website–fact claim graph plus the fact→object map.
type Network struct {
	NumWebsites int
	NumFacts    int
	FactObject  []int   // object each fact describes
	Claims      []Claim // website–fact links

	// Implication returns imp(g→f) in [−1,1] for facts about the same
	// object. When nil, conflicting facts fully inhibit each other
	// (imp = −1) and there is no positive reinforcement.
	Implication func(g, f int) float64

	// SiteWeight optionally scales each website's evidence contribution
	// (e.g. from DetectCopycats); nil means weight 1 everywhere.
	SiteWeight []float64
}

// Options tunes the fixed point.
type Options struct {
	Gamma     float64 // sigmoid dampening, default 0.3
	Rho       float64 // implication weight, default 0.5
	InitTrust float64 // initial website trust, default 0.9
	MaxIter   int     // default 50
	Tolerance float64 // trust L∞ convergence, default 1e-6
}

func (o Options) withDefaults() Options {
	if o.Gamma == 0 {
		o.Gamma = 0.3
	}
	if o.Rho == 0 {
		o.Rho = 0.5
	}
	if o.InitTrust == 0 {
		o.InitTrust = 0.9
	}
	if o.MaxIter == 0 {
		o.MaxIter = 50
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	return o
}

// Result carries the fixed point.
type Result struct {
	Trust      []float64 // per website, in (0,1)
	Confidence []float64 // per fact, in (0,1)
	Iterations int
	Converged  bool
}

// Run executes the TruthFinder iteration.
func Run(n *Network, opt Options) Result {
	opt = opt.withDefaults()
	factsOf := make([][]int, n.NumWebsites) // website → facts
	sitesOf := make([][]int, n.NumFacts)    // fact → websites
	for _, c := range n.Claims {
		factsOf[c.Website] = append(factsOf[c.Website], c.Fact)
		sitesOf[c.Fact] = append(sitesOf[c.Fact], c.Website)
	}
	objFacts := make(map[int][]int) // object → facts
	for f, o := range n.FactObject {
		objFacts[o] = append(objFacts[o], f)
	}
	imp := n.Implication
	if imp == nil {
		imp = func(g, f int) float64 { return -1 }
	}

	trust := make([]float64, n.NumWebsites)
	for i := range trust {
		trust[i] = opt.InitTrust
	}
	conf := make([]float64, n.NumFacts)
	score := make([]float64, n.NumFacts)
	adjusted := make([]float64, n.NumFacts)
	prevTrust := make([]float64, n.NumWebsites)

	for it := 1; it <= opt.MaxIter; it++ {
		copy(prevTrust, trust)

		// Fact evidence from current website trust.
		for f := range score {
			s := 0.0
			for _, w := range sitesOf[f] {
				t := trust[w]
				if t > 1-1e-9 {
					t = 1 - 1e-9
				}
				wt := 1.0
				if n.SiteWeight != nil {
					wt = n.SiteWeight[w]
				}
				s += wt * -math.Log(1-t)
			}
			score[f] = s
		}
		// Implication adjustment among facts about the same object.
		for f := range adjusted {
			adjusted[f] = score[f]
		}
		for _, facts := range objFacts {
			for _, f := range facts {
				for _, g := range facts {
					if g == f {
						continue
					}
					adjusted[f] += opt.Rho * imp(g, f) * score[g]
				}
			}
		}
		// Dampened sigmoid to confidence.
		for f := range conf {
			conf[f] = 1 / (1 + math.Exp(-opt.Gamma*adjusted[f]))
		}
		// Website trust = mean confidence of its facts.
		for w := range trust {
			if len(factsOf[w]) == 0 {
				trust[w] = opt.InitTrust
				continue
			}
			s := 0.0
			for _, f := range factsOf[w] {
				s += conf[f]
			}
			trust[w] = s / float64(len(factsOf[w]))
		}

		maxDiff := 0.0
		for w := range trust {
			if d := math.Abs(trust[w] - prevTrust[w]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff < opt.Tolerance {
			return Result{Trust: trust, Confidence: conf, Iterations: it, Converged: true}
		}
	}
	return Result{Trust: trust, Confidence: conf, Iterations: opt.MaxIter, Converged: false}
}

// DetectCopycats groups websites whose claim sets are near-duplicates
// (Jaccard similarity ≥ threshold) and returns per-site weights that
// split one unit of evidence across each duplicate group — the simple
// copying-detection guard from the tutorial's veracity discussion
// (Dong et al., VLDB'09): a fact copied by k mirror sites should count
// once, not k times.
func DetectCopycats(n *Network, threshold float64) []float64 {
	sets := make([]map[int]bool, n.NumWebsites)
	for i := range sets {
		sets[i] = make(map[int]bool)
	}
	for _, c := range n.Claims {
		sets[c.Website][c.Fact] = true
	}
	group := make([]int, n.NumWebsites)
	for i := range group {
		group[i] = i
	}
	// Greedy grouping: site joins the first earlier site it duplicates.
	for a := 0; a < n.NumWebsites; a++ {
		for b := 0; b < a; b++ {
			if group[b] != b {
				continue
			}
			if jaccard(sets[a], sets[b]) >= threshold {
				group[a] = b
				break
			}
		}
	}
	size := make(map[int]int)
	for _, g := range group {
		size[g]++
	}
	weights := make([]float64, n.NumWebsites)
	for w, g := range group {
		weights[w] = 1 / float64(size[g])
	}
	return weights
}

func jaccard(a, b map[int]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, big := a, b
	if len(b) < len(a) {
		small, big = b, a
	}
	inter := 0
	for f := range small {
		if big[f] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// PredictTruth returns, per object, the fact with the highest
// confidence — the discovered "true" value.
func PredictTruth(n *Network, conf []float64) map[int]int {
	best := make(map[int]int)
	bestConf := make(map[int]float64)
	for f, o := range n.FactObject {
		if c, ok := bestConf[o]; !ok || conf[f] > c {
			bestConf[o] = conf[f]
			best[o] = f
		}
	}
	return best
}

// MajorityVote is the baseline: per object, the fact asserted by the
// most websites (ties broken by lower fact id).
func MajorityVote(n *Network) map[int]int {
	votes := make([]int, n.NumFacts)
	for _, c := range n.Claims {
		votes[c.Fact]++
	}
	best := make(map[int]int)
	bestVotes := make(map[int]int)
	for f, o := range n.FactObject {
		if v, ok := bestVotes[o]; !ok || votes[f] > v {
			bestVotes[o] = votes[f]
			best[o] = f
		}
	}
	return best
}

// SynthConfig controls the synthetic conflicting-claims workload that
// substitutes for the paper's web-extracted datasets (book authors,
// movie runtimes): a pool of websites with individual error rates, a set
// of objects each having one true fact and several false alternatives,
// and optional copycat sites that clone a bad site's claims.
type SynthConfig struct {
	Objects       int     // default 100
	FalsePerObj   int     // false alternatives per object, default 3
	Websites      int     // default 30
	ClaimsPerSite int     // objects each site claims about, default 40
	GoodSites     float64 // fraction of reliable sites, default 0.6
	GoodErr       float64 // error rate of reliable sites, default 0.1
	BadErr        float64 // error rate of unreliable sites, default 0.7
	Copycats      int     // sites that clone the first bad site, default 0
}

func (c SynthConfig) withDefaults() SynthConfig {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.Objects, 100)
	def(&c.FalsePerObj, 3)
	def(&c.Websites, 30)
	def(&c.ClaimsPerSite, 40)
	if c.GoodSites == 0 {
		c.GoodSites = 0.6
	}
	if c.GoodErr == 0 {
		c.GoodErr = 0.1
	}
	if c.BadErr == 0 {
		c.BadErr = 0.7
	}
	return c
}

// Synthetic is a generated workload with ground truth.
type Synthetic struct {
	Net      *Network
	TrueFact []int  // per object, the correct fact id
	SiteGood []bool // per website, whether it was generated reliable
}

// Synthesize builds a deterministic conflicting-claims network.
func Synthesize(rng *stats.RNG, cfg SynthConfig) *Synthetic {
	cfg = cfg.withDefaults()
	perObj := 1 + cfg.FalsePerObj
	n := &Network{
		NumWebsites: cfg.Websites + cfg.Copycats,
		NumFacts:    cfg.Objects * perObj,
		FactObject:  make([]int, cfg.Objects*perObj),
	}
	trueFact := make([]int, cfg.Objects)
	for o := 0; o < cfg.Objects; o++ {
		for j := 0; j < perObj; j++ {
			n.FactObject[o*perObj+j] = o
		}
		trueFact[o] = o * perObj // fact 0 of each object is the truth
	}
	good := make([]bool, cfg.Websites+cfg.Copycats)
	var firstBad = -1
	for w := 0; w < cfg.Websites; w++ {
		good[w] = rng.Float64() < cfg.GoodSites
		if !good[w] && firstBad < 0 {
			firstBad = w
		}
		errRate := cfg.GoodErr
		if !good[w] {
			errRate = cfg.BadErr
		}
		seen := make(map[int]bool)
		for len(seen) < cfg.ClaimsPerSite && len(seen) < cfg.Objects {
			o := rng.Intn(cfg.Objects)
			if seen[o] {
				continue
			}
			seen[o] = true
			fact := trueFact[o]
			if rng.Float64() < errRate {
				fact = o*perObj + 1 + rng.Intn(cfg.FalsePerObj)
			}
			n.Claims = append(n.Claims, Claim{Website: w, Fact: fact})
		}
	}
	// Copycats replicate the first bad site's claims verbatim.
	if cfg.Copycats > 0 && firstBad >= 0 {
		var src []Claim
		for _, c := range n.Claims {
			if c.Website == firstBad {
				src = append(src, c)
			}
		}
		for i := 0; i < cfg.Copycats; i++ {
			w := cfg.Websites + i
			good[w] = false
			for _, c := range src {
				n.Claims = append(n.Claims, Claim{Website: w, Fact: c.Fact})
			}
		}
	}
	return &Synthetic{Net: n, TrueFact: trueFact, SiteGood: good}
}

// Accuracy scores a prediction map against the ground truth.
func (s *Synthetic) Accuracy(pred map[int]int) float64 {
	if len(s.TrueFact) == 0 {
		return 0
	}
	hit := 0
	for o, f := range pred {
		if s.TrueFact[o] == f {
			hit++
		}
	}
	return float64(hit) / float64(len(s.TrueFact))
}
