package dblp

import (
	"testing"

	"hinet/internal/stats"
)

func small() Config {
	return Config{
		VenuesPerArea:  3,
		AuthorsPerArea: 50,
		TermsPerArea:   40,
		SharedTerms:    20,
		Papers:         400,
		Years:          3,
	}
}

func TestGenerateShape(t *testing.T) {
	c := Generate(stats.NewRNG(1), small())
	n := c.Net
	if n.Count(TypeVenue) != 12 {
		t.Errorf("venues = %d, want 12", n.Count(TypeVenue))
	}
	if n.Count(TypeAuthor) != 200 {
		t.Errorf("authors = %d", n.Count(TypeAuthor))
	}
	if n.Count(TypeTerm) != 180 {
		t.Errorf("terms = %d", n.Count(TypeTerm))
	}
	if n.Count(TypePaper) != 400 {
		t.Errorf("papers = %d", n.Count(TypePaper))
	}
	if n.Count(TypeYear) != 3 {
		t.Errorf("years = %d", n.Count(TypeYear))
	}
	if len(c.PaperArea) != 400 || len(c.AuthorArea) != 200 || len(c.VenueArea) != 12 {
		t.Error("truth label sizes wrong")
	}
}

func TestEveryPaperFullyLinked(t *testing.T) {
	c := Generate(stats.NewRNG(2), small())
	pv := c.Net.Relation(TypePaper, TypeVenue)
	pa := c.Net.Relation(TypePaper, TypeAuthor)
	pt := c.Net.Relation(TypePaper, TypeTerm)
	py := c.Net.Relation(TypePaper, TypeYear)
	cfg := c.Config
	for p := 0; p < 400; p++ {
		if pv.RowNNZ(p) != 1 {
			t.Fatalf("paper %d has %d venues", p, pv.RowNNZ(p))
		}
		if a := pa.RowNNZ(p); a < cfg.MinAuthors || a > cfg.MaxAuthors {
			t.Fatalf("paper %d has %d authors", p, a)
		}
		if tt := pt.RowNNZ(p); tt < cfg.MinTerms || tt > cfg.MaxTerms {
			t.Fatalf("paper %d has %d terms", p, tt)
		}
		if py.RowNNZ(p) != 1 {
			t.Fatalf("paper %d has %d years", p, py.RowNNZ(p))
		}
	}
}

func TestAreaCoherence(t *testing.T) {
	c := Generate(stats.NewRNG(3), small())
	pv := c.Net.Relation(TypePaper, TypeVenue)
	match, total := 0, 0
	for p := 0; p < c.Net.Count(TypePaper); p++ {
		pv.Row(p, func(v int, w float64) {
			total++
			if c.VenueArea[v] == c.PaperArea[p] {
				match++
			}
		})
	}
	if frac := float64(match) / float64(total); frac < 0.90 {
		t.Errorf("venue-area coherence = %.2f, want ≥0.90", frac)
	}
}

func TestDeterministic(t *testing.T) {
	a := Generate(stats.NewRNG(7), small())
	b := Generate(stats.NewRNG(7), small())
	if a.Net.LinkCount(TypePaper, TypeAuthor) != b.Net.LinkCount(TypePaper, TypeAuthor) {
		t.Error("same-seed corpora differ")
	}
	for i := range a.PaperArea {
		if a.PaperArea[i] != b.PaperArea[i] {
			t.Fatal("paper areas differ")
		}
	}
}

func TestStarView(t *testing.T) {
	c := Generate(stats.NewRNG(4), small())
	s := c.Star()
	if s.Center != TypePaper || len(s.Rel) != 3 {
		t.Fatal("star view wrong")
	}
	if s.Rel[0].Rows() != 400 {
		t.Error("star center count wrong")
	}
}

func TestVenueAuthorBipartite(t *testing.T) {
	c := Generate(stats.NewRNG(5), small())
	b := c.VenueAuthorBipartite()
	if b.W.Rows() != 12 || b.W.Cols() != 200 {
		t.Fatalf("bipartite dims %dx%d", b.W.Rows(), b.W.Cols())
	}
	// Total venue-author weight = total (paper, author) pairs since each
	// paper has exactly one venue.
	pa := c.Net.Relation(TypePaper, TypeAuthor)
	if b.W.Sum() != pa.Sum() {
		t.Errorf("bipartite mass %v != paper-author mass %v", b.W.Sum(), pa.Sum())
	}
}

func TestZipfProductivity(t *testing.T) {
	c := Generate(stats.NewRNG(6), Config{Papers: 2000})
	pa := c.Net.Relation(TypePaper, TypeAuthor)
	counts := make([]float64, c.Net.Count(TypeAuthor))
	for p := 0; p < pa.Rows(); p++ {
		pa.Row(p, func(a int, v float64) { counts[a] += v })
	}
	// The most productive author should dwarf the median.
	max, nonzero := 0.0, 0
	for _, v := range counts {
		if v > max {
			max = v
		}
		if v > 0 {
			nonzero++
		}
	}
	mean := 0.0
	for _, v := range counts {
		mean += v
	}
	mean /= float64(nonzero)
	if max < 4*mean {
		t.Errorf("no productivity skew: max=%v mean=%v", max, mean)
	}
}

func TestAmbiguousName(t *testing.T) {
	c := Generate(stats.NewRNG(8), small())
	// Pick two authors with at least one paper each.
	pa := c.Net.Relation(TypePaper, TypeAuthor)
	deg := make([]int, c.Net.Count(TypeAuthor))
	for p := 0; p < pa.Rows(); p++ {
		pa.Row(p, func(a int, v float64) { deg[a]++ })
	}
	var chosen []int
	for a, d := range deg {
		if d >= 2 {
			chosen = append(chosen, a)
		}
		if len(chosen) == 2 {
			break
		}
	}
	if len(chosen) < 2 {
		t.Skip("no productive authors in tiny corpus")
	}
	refs := c.AmbiguousName(chosen)
	if len(refs) < 4 {
		t.Fatalf("too few references: %d", len(refs))
	}
	seen := map[int]bool{}
	for _, r := range refs {
		seen[r.TrueAuthor] = true
		if r.TrueAuthor != chosen[0] && r.TrueAuthor != chosen[1] {
			t.Fatal("reference to unexpected author")
		}
	}
	if len(seen) != 2 {
		t.Error("references should cover both authors")
	}
}

func TestCustomAreas(t *testing.T) {
	cfg := small()
	cfg.Areas = []string{"x", "y"}
	c := Generate(stats.NewRNG(9), cfg)
	if c.Areas() != 2 {
		t.Errorf("areas = %d", c.Areas())
	}
	for _, a := range c.PaperArea {
		if a < 0 || a > 1 {
			t.Fatal("area out of range")
		}
	}
	if c.Net.Count(TypeVenue) != 6 {
		t.Errorf("venues = %d", c.Net.Count(TypeVenue))
	}
}
