// Package dblp generates the synthetic four-area bibliographic network
// used as the stand-in for the real DBLP database in the tutorial's case
// studies (§6): papers as the star center linked to authors, venues,
// terms and publication years.
//
// The generator reproduces the statistical structure the RankClus and
// NetClus experiments rely on — a handful of research communities
// (database, data mining, information retrieval, artificial
// intelligence), Zipf-skewed author productivity and term frequency,
// venues almost fully committed to one area, and a controllable rate of
// cross-area publication — while providing exact ground-truth labels
// that real DBLP lacks.
package dblp

import (
	"fmt"

	"hinet/internal/hin"
	"hinet/internal/stats"
)

// Type names of the DBLP star schema.
const (
	TypePaper  = hin.Type("paper")
	TypeAuthor = hin.Type("author")
	TypeVenue  = hin.Type("venue")
	TypeTerm   = hin.Type("term")
	TypeYear   = hin.Type("year")
)

// DefaultAreas are the four research communities of the NetClus study.
var DefaultAreas = []string{"database", "datamining", "inforetrieval", "ai"}

// Config controls corpus size and separability.
type Config struct {
	Areas            []string // community names (default DefaultAreas)
	VenuesPerArea    int      // default 5
	AuthorsPerArea   int      // default 200
	TermsPerArea     int      // default 150
	SharedTerms      int      // area-neutral vocabulary, default 100
	Papers           int      // total papers, default 2000
	Years            int      // distinct publication years, default 5
	MinAuthors       int      // authors per paper lower bound, default 1
	MaxAuthors       int      // upper bound, default 4
	MinTerms         int      // terms per paper lower bound, default 4
	MaxTerms         int      // upper bound, default 8
	CrossAreaAuthor  float64  // P(author drawn from a foreign area), default 0.10
	CrossAreaVenue   float64  // P(paper published in a foreign-area venue), default 0.05
	SharedTermRate   float64  // P(term drawn from shared vocabulary), default 0.25
	ProductivitySkew float64  // Zipf exponent for author pick, default 1.1
	TermSkew         float64  // Zipf exponent for term pick, default 1.05
}

func (c Config) withDefaults() Config {
	if len(c.Areas) == 0 {
		c.Areas = DefaultAreas
	}
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.VenuesPerArea, 5)
	def(&c.AuthorsPerArea, 200)
	def(&c.TermsPerArea, 150)
	def(&c.SharedTerms, 100)
	def(&c.Papers, 2000)
	def(&c.Years, 5)
	def(&c.MinAuthors, 1)
	def(&c.MaxAuthors, 4)
	def(&c.MinTerms, 4)
	def(&c.MaxTerms, 8)
	deff := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	deff(&c.CrossAreaAuthor, 0.10)
	deff(&c.CrossAreaVenue, 0.05)
	deff(&c.SharedTermRate, 0.25)
	deff(&c.ProductivitySkew, 1.1)
	deff(&c.TermSkew, 1.05)
	return c
}

// Corpus is a generated bibliographic network with ground truth.
type Corpus struct {
	Net    *hin.Network
	Config Config

	// Ground-truth area per object (index = dense object id). Terms in
	// the shared vocabulary and nothing else carry area −1.
	PaperArea  []int
	AuthorArea []int
	VenueArea  []int
	TermArea   []int

	PaperYear []int // year index (0-based) per paper
}

// Areas returns the number of communities.
func (c *Corpus) Areas() int { return len(c.Config.Areas) }

// WithNetwork returns a shallow copy of the corpus bound to net —
// typically a delta-applied clone of c.Net (see hin.Network.Clone and
// internal/ingest). Ground-truth area slices are padded with −1
// ("no known area", the label the generator already uses for shared
// terms) up to the new object counts, so evaluations against ground
// truth stay well-formed after objects arrive that the generator never
// labeled.
func (c *Corpus) WithNetwork(net *hin.Network) *Corpus {
	c2 := *c
	c2.Net = net
	c2.PaperArea = padAreas(c.PaperArea, net.Count(TypePaper))
	c2.AuthorArea = padAreas(c.AuthorArea, net.Count(TypeAuthor))
	c2.VenueArea = padAreas(c.VenueArea, net.Count(TypeVenue))
	c2.TermArea = padAreas(c.TermArea, net.Count(TypeTerm))
	return &c2
}

// padAreas extends labels to length n with −1; unchanged lengths pass
// the slice through untouched.
func padAreas(labels []int, n int) []int {
	if len(labels) >= n {
		return labels
	}
	out := make([]int, n)
	copy(out, labels)
	for i := len(labels); i < n; i++ {
		out[i] = -1
	}
	return out
}

// Generate builds a corpus. Identical (seed, cfg) pairs produce
// identical corpora.
func Generate(rng *stats.RNG, cfg Config) *Corpus {
	cfg = cfg.withDefaults()
	k := len(cfg.Areas)
	n := hin.NewNetwork()
	c := &Corpus{Net: n, Config: cfg}

	// Objects. Venue/author/term ids are grouped by area so base offsets
	// are area*count.
	for a, area := range cfg.Areas {
		for v := 0; v < cfg.VenuesPerArea; v++ {
			n.AddObject(TypeVenue, fmt.Sprintf("%s-venue-%d", area, v))
			c.VenueArea = append(c.VenueArea, a)
		}
	}
	for a, area := range cfg.Areas {
		for w := 0; w < cfg.AuthorsPerArea; w++ {
			n.AddObject(TypeAuthor, fmt.Sprintf("%s-author-%d", area, w))
			c.AuthorArea = append(c.AuthorArea, a)
		}
	}
	for a, area := range cfg.Areas {
		for t := 0; t < cfg.TermsPerArea; t++ {
			n.AddObject(TypeTerm, fmt.Sprintf("%s-term-%d", area, t))
			c.TermArea = append(c.TermArea, a)
		}
	}
	for t := 0; t < cfg.SharedTerms; t++ {
		n.AddObject(TypeTerm, fmt.Sprintf("shared-term-%d", t))
		c.TermArea = append(c.TermArea, -1)
	}
	for y := 0; y < cfg.Years; y++ {
		n.AddObject(TypeYear, fmt.Sprintf("%d", 2000+y))
	}

	authorZipf := stats.NewZipf(rng, cfg.AuthorsPerArea, cfg.ProductivitySkew)
	termZipf := stats.NewZipf(rng, cfg.TermsPerArea, cfg.TermSkew)
	sharedBase := k * cfg.TermsPerArea

	for p := 0; p < cfg.Papers; p++ {
		area := rng.Intn(k)
		pid := n.AddObject(TypePaper, fmt.Sprintf("paper-%d", p))
		c.PaperArea = append(c.PaperArea, area)

		// Venue: home area unless a cross-area publication.
		vArea := area
		if k > 1 && rng.Float64() < cfg.CrossAreaVenue {
			vArea = otherArea(rng, k, area)
		}
		venue := vArea*cfg.VenuesPerArea + rng.Intn(cfg.VenuesPerArea)
		n.AddLink(TypePaper, pid, TypeVenue, venue, 1)

		// Authors: Zipf-productive within area, occasional outsider.
		nAuthors := cfg.MinAuthors + rng.Intn(cfg.MaxAuthors-cfg.MinAuthors+1)
		used := make(map[int]bool, nAuthors)
		for len(used) < nAuthors {
			aArea := area
			if k > 1 && rng.Float64() < cfg.CrossAreaAuthor {
				aArea = otherArea(rng, k, area)
			}
			author := aArea*cfg.AuthorsPerArea + authorZipf.Draw()
			if used[author] {
				continue
			}
			used[author] = true
			n.AddLink(TypePaper, pid, TypeAuthor, author, 1)
		}

		// Terms: area vocabulary mixed with shared words.
		nTerms := cfg.MinTerms + rng.Intn(cfg.MaxTerms-cfg.MinTerms+1)
		usedT := make(map[int]bool, nTerms)
		for len(usedT) < nTerms {
			var term int
			if cfg.SharedTerms > 0 && rng.Float64() < cfg.SharedTermRate {
				term = sharedBase + rng.Intn(cfg.SharedTerms)
			} else {
				term = area*cfg.TermsPerArea + termZipf.Draw()
			}
			if usedT[term] {
				continue
			}
			usedT[term] = true
			n.AddLink(TypePaper, pid, TypeTerm, term, 1)
		}

		// Year.
		year := rng.Intn(cfg.Years)
		c.PaperYear = append(c.PaperYear, year)
		n.AddLink(TypePaper, pid, TypeYear, year, 1)
	}
	return c
}

func otherArea(rng *stats.RNG, k, area int) int {
	a := rng.Intn(k - 1)
	if a >= area {
		a++
	}
	return a
}

// Star returns the NetClus star-schema view (paper center; author,
// venue, term attributes — year excluded, matching the NetClus setup).
func (c *Corpus) Star() *hin.Star {
	return c.Net.Star(TypePaper, TypeAuthor, TypeVenue, TypeTerm)
}

// VenueAuthorBipartite returns the RankClus view: the venue×author
// weight matrix counting papers, as extracted by the conference–author
// bi-typed network of the EDBT'09 study. The product runs through the
// network's meta-path engine, which canonicalizes V-P-A to A-P-V — the
// half-path of the serving layer's APVPA index — so a snapshot build
// computes that product exactly once.
func (c *Corpus) VenueAuthorBipartite() *hin.Bipartite {
	m := c.Net.CommutingMatrix(hin.MetaPath{TypeVenue, TypePaper, TypeAuthor})
	return &hin.Bipartite{X: TypeVenue, Y: TypeAuthor, W: m}
}

// AmbiguousReference is one paper occurrence of an ambiguous author
// name: the paper id plus the hidden true author. DISTINCT must split
// references of one name back into the underlying authors.
type AmbiguousReference struct {
	Paper      int
	TrueAuthor int
}

// AmbiguousName merges the identities of the given authors under one
// shared name and returns the reference list (every paper any of them
// wrote). This overlays the object-distinction workload of the DISTINCT
// experiments onto the corpus.
func (c *Corpus) AmbiguousName(authors []int) []AmbiguousReference {
	pa := c.Net.Relation(TypePaper, TypeAuthor)
	var refs []AmbiguousReference
	for p := 0; p < pa.Rows(); p++ {
		pa.Row(p, func(a int, v float64) {
			for _, target := range authors {
				if a == target {
					refs = append(refs, AmbiguousReference{Paper: p, TrueAuthor: a})
				}
			}
		})
	}
	return refs
}
