package netstat

import (
	"math"
	"testing"

	"hinet/internal/graph"
	"hinet/internal/netgen"
	"hinet/internal/stats"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n, false)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func completeGraph(n int) *graph.Graph {
	g := graph.New(n, false)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	return g
}

func TestDensity(t *testing.T) {
	if d := Density(completeGraph(5)); math.Abs(d-1) > 1e-12 {
		t.Errorf("complete density = %v", d)
	}
	if d := Density(graph.New(5, false)); d != 0 {
		t.Errorf("empty density = %v", d)
	}
	dg := graph.New(3, true)
	dg.AddEdge(0, 1, 1)
	if d := Density(dg); math.Abs(d-1.0/6) > 1e-12 {
		t.Errorf("directed density = %v", d)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram(pathGraph(4)) // degrees 1,2,2,1
	if h[1] != 2 || h[2] != 2 {
		t.Errorf("histogram = %v", h)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	if c := ClusteringCoefficient(completeGraph(5)); math.Abs(c-1) > 1e-12 {
		t.Errorf("complete CC = %v", c)
	}
	if c := ClusteringCoefficient(pathGraph(5)); c != 0 {
		t.Errorf("path CC = %v", c)
	}
	// triangle + pendant: CC = (1+1+1+0)/4
	g := graph.New(4, false)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 1)
	// node2 has degree 3, with 1 link among neighbors {0,1,3} → 2/6=1/3
	want := (1.0 + 1.0 + 1.0/3.0 + 0) / 4
	if c := ClusteringCoefficient(g); math.Abs(c-want) > 1e-12 {
		t.Errorf("CC = %v, want %v", c, want)
	}
}

func TestAveragePathLength(t *testing.T) {
	// path 0-1-2: pairs (0,1)=1 (0,2)=2 (1,2)=1 → avg (1+2+1+1+2+1)/6 = 4/3
	if l := AveragePathLength(pathGraph(3), 0); math.Abs(l-4.0/3) > 1e-12 {
		t.Errorf("APL = %v", l)
	}
}

func TestDiameter(t *testing.T) {
	if d := Diameter(pathGraph(6), true); d != 5 {
		t.Errorf("exact diameter = %d", d)
	}
	if d := Diameter(pathGraph(6), false); d != 5 {
		t.Errorf("double-sweep diameter = %d (path should be exact)", d)
	}
	if d := Diameter(completeGraph(4), true); d != 1 {
		t.Errorf("complete diameter = %d", d)
	}
}

func TestReachability(t *testing.T) {
	if r := Reachability(completeGraph(4)); r != 1 {
		t.Errorf("complete reachability = %v", r)
	}
	g := graph.New(4, false)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if r := Reachability(g); math.Abs(r-4.0/12) > 1e-12 {
		t.Errorf("split reachability = %v", r)
	}
}

func TestDegreeCentrality(t *testing.T) {
	c := DegreeCentrality(pathGraph(3))
	if c[1] != 1 || c[0] != 0.5 {
		t.Errorf("degree centrality = %v", c)
	}
}

func TestClosenessCentralityOrdering(t *testing.T) {
	c := ClosenessCentrality(pathGraph(5))
	if !(c[2] > c[1] && c[1] > c[0]) {
		t.Errorf("closeness should peak at center: %v", c)
	}
	iso := graph.New(2, false)
	if ClosenessCentrality(iso)[0] != 0 {
		t.Error("isolated closeness should be 0")
	}
}

func TestBetweennessPathCenter(t *testing.T) {
	b := BetweennessCentrality(pathGraph(5))
	// center node 2 lies on all 2·(2×2)=… pairs crossing it: exact value 4
	if math.Abs(b[2]-4) > 1e-9 {
		t.Errorf("betweenness center = %v, want 4", b[2])
	}
	if b[0] != 0 || b[4] != 0 {
		t.Errorf("endpoints should be 0: %v", b)
	}
	// star: center carries all (n-1 choose 2) pairs
	star := graph.New(5, false)
	for i := 1; i < 5; i++ {
		star.AddEdge(0, i, 1)
	}
	bs := BetweennessCentrality(star)
	if math.Abs(bs[0]-6) > 1e-9 {
		t.Errorf("star center betweenness = %v, want 6", bs[0])
	}
}

func TestPowerLawFitOnBA(t *testing.T) {
	rng := stats.NewRNG(1)
	g := netgen.BarabasiAlbert(rng, 5000, 3)
	alpha, n := PowerLawFit(g, 3)
	if n < 4000 {
		t.Fatalf("too few samples: %d", n)
	}
	// BA theoretical exponent is 3; MLE on finite graphs lands 2.2–3.5.
	if alpha < 2.0 || alpha > 3.8 {
		t.Errorf("BA power-law alpha = %v, want ≈3", alpha)
	}
}

func TestPowerLawFitNotPowerLawOnER(t *testing.T) {
	rng := stats.NewRNG(2)
	gER := netgen.ErdosRenyi(rng, 2000, 0.005) // avg degree 10
	gBA := netgen.BarabasiAlbert(stats.NewRNG(3), 2000, 5)
	// Fit the tail above the mean degree: ER's Poisson tail decays much
	// faster there than BA's power law, so its fitted alpha is larger.
	alphaER, nER := PowerLawFit(gER, 10)
	alphaBA, nBA := PowerLawFit(gBA, 10)
	if nER < 100 || nBA < 100 {
		t.Fatalf("too few tail samples: ER=%d BA=%d", nER, nBA)
	}
	if alphaER <= alphaBA {
		t.Errorf("expected alpha(ER)=%v > alpha(BA)=%v", alphaER, alphaBA)
	}
}

func TestSmallWorldSignature(t *testing.T) {
	// WS with low rewiring: high clustering, short paths vs same-size ER.
	ws := netgen.WattsStrogatz(stats.NewRNG(4), 500, 10, 0.1)
	er := netgen.ErdosRenyi(stats.NewRNG(5), 500, 10.0/499)
	ccWS := ClusteringCoefficient(ws)
	ccER := ClusteringCoefficient(er)
	if ccWS < 3*ccER {
		t.Errorf("WS clustering %v not ≫ ER %v", ccWS, ccER)
	}
	aplWS := AveragePathLength(ws, 50)
	if aplWS > 10 {
		t.Errorf("WS path length %v not small", aplWS)
	}
}

func TestDensificationExponent(t *testing.T) {
	// E = N^1.3 exactly.
	var nodes, edges []int
	for _, n := range []int{100, 200, 400, 800} {
		nodes = append(nodes, n)
		edges = append(edges, int(math.Pow(float64(n), 1.3)))
	}
	a := DensificationExponent(nodes, edges)
	if math.Abs(a-1.3) > 0.02 {
		t.Errorf("densification exponent = %v, want 1.3", a)
	}
	if DensificationExponent([]int{1}, []int{1}) != 0 {
		t.Error("single snapshot should give 0")
	}
}

func TestForestFireDensificationExponentAboveOne(t *testing.T) {
	_, snaps := netgen.ForestFire(stats.NewRNG(6), 4000, 0.35, 0.3, 400)
	var nodes, edges []int
	for _, s := range snaps {
		nodes = append(nodes, s.Nodes)
		edges = append(edges, s.Edges)
	}
	a := DensificationExponent(nodes, edges)
	if a <= 1.0 {
		t.Errorf("forest fire exponent = %v, want > 1 (densification)", a)
	}
}

func TestSummarize(t *testing.T) {
	g := completeGraph(6)
	s := Summarize(g)
	if s.Nodes != 6 || s.Edges != 15 || s.Components != 1 || s.LargestComp != 6 {
		t.Errorf("summary = %+v", s)
	}
	if s.MaxDegree != 5 || math.Abs(s.AvgDegree-5) > 1e-12 {
		t.Errorf("degrees = %+v", s)
	}
}

func TestTopCentral(t *testing.T) {
	top := TopCentral([]float64{0.1, 0.9, 0.5}, 2)
	if top[0] != 1 || top[1] != 2 {
		t.Errorf("TopCentral = %v", top)
	}
}
