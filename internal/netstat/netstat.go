// Package netstat implements the "measuring information networks" layer
// of the tutorial (§2a): density, connectivity, centrality and
// reachability analysis, plus the statistical signatures of real
// networks — power-law degree distributions (MLE exponent fit), the
// small-world phenomenon (average path length vs clustering
// coefficient), and densification of evolving networks.
package netstat

import (
	"math"
	"sort"

	"hinet/internal/graph"
)

// Density returns 2m/(n(n-1)) for undirected graphs and m/(n(n-1)) for
// directed ones; graphs with fewer than two nodes have density 0.
func Density(g *graph.Graph) float64 {
	n := float64(g.N())
	if n < 2 {
		return 0
	}
	m := float64(g.M())
	if g.Directed {
		return m / (n * (n - 1))
	}
	return 2 * m / (n * (n - 1))
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func DegreeHistogram(g *graph.Graph) []int {
	maxD := 0
	degs := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		d := len(g.NeighborSet(v, false))
		degs[v] = d
		if d > maxD {
			maxD = d
		}
	}
	h := make([]int, maxD+1)
	for _, d := range degs {
		h[d]++
	}
	return h
}

// PowerLawFit estimates the exponent α of P(d) ∝ d^−α for degrees
// ≥ dmin by the discrete maximum-likelihood approximation
// α ≈ 1 + n / Σ ln(d_i / (dmin − ½)). It returns the estimate and the
// number of samples used; graphs with no degree ≥ dmin return (0, 0).
func PowerLawFit(g *graph.Graph, dmin int) (alpha float64, samples int) {
	if dmin < 1 {
		dmin = 1
	}
	sum := 0.0
	for v := 0; v < g.N(); v++ {
		d := len(g.NeighborSet(v, false))
		if d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			samples++
		}
	}
	if samples == 0 || sum == 0 {
		return 0, samples
	}
	return 1 + float64(samples)/sum, samples
}

// ClusteringCoefficient returns the average local clustering coefficient
// (Watts–Strogatz definition; nodes with degree < 2 contribute 0).
func ClusteringCoefficient(g *graph.Graph) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	total := 0.0
	for v := 0; v < n; v++ {
		nb := g.NeighborSet(v, false)
		d := len(nb)
		if d < 2 {
			continue
		}
		links := 0
		set := make(map[int]bool, d)
		for _, u := range nb {
			set[u] = true
		}
		for _, u := range nb {
			for _, e := range g.Neighbors(u) {
				if e.To > u && set[e.To] {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(d*(d-1))
	}
	return total / float64(n)
}

// AveragePathLength estimates the mean shortest-path hop distance over
// reachable pairs by BFS from up to samples source nodes (all nodes when
// samples ≤ 0 or ≥ n). Unreachable pairs are excluded.
func AveragePathLength(g *graph.Graph, samples int) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	if samples <= 0 || samples > n {
		samples = n
	}
	step := n / samples
	if step == 0 {
		step = 1
	}
	totalDist, pairs := 0.0, 0
	for s := 0; s < n; s += step {
		for _, d := range g.BFS(s) {
			if d > 0 {
				totalDist += float64(d)
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return totalDist / float64(pairs)
}

// Diameter returns the exact largest eccentricity over all nodes when
// exact is true (O(n·m)); otherwise a double-BFS-sweep lower bound.
func Diameter(g *graph.Graph, exact bool) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	maxFrom := func(src int) (int, int) {
		far, fd := src, 0
		for v, d := range g.BFS(src) {
			if d > fd {
				fd, far = d, v
			}
		}
		return far, fd
	}
	if exact {
		best := 0
		for v := 0; v < n; v++ {
			if _, d := maxFrom(v); d > best {
				best = d
			}
		}
		return best
	}
	a, _ := maxFrom(0)
	_, d := maxFrom(a)
	return d
}

// Reachability returns the fraction of ordered node pairs (u,v), u≠v,
// where v is reachable from u, estimated via BFS from every node.
func Reachability(g *graph.Graph) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	reach := 0
	for s := 0; s < n; s++ {
		for v, d := range g.BFS(s) {
			if v != s && d >= 0 {
				reach++
			}
		}
	}
	return float64(reach) / float64(n*(n-1))
}

// DegreeCentrality returns degree/(n−1) per node.
func DegreeCentrality(g *graph.Graph) []float64 {
	n := g.N()
	c := make([]float64, n)
	if n < 2 {
		return c
	}
	for v := 0; v < n; v++ {
		c[v] = float64(len(g.NeighborSet(v, false))) / float64(n-1)
	}
	return c
}

// ClosenessCentrality returns, per node, (reachable count) / (n−1) ×
// (reachable count) / (total distance) — the Wasserman–Faust
// normalization that handles disconnected graphs. Nodes reaching nothing
// score 0.
func ClosenessCentrality(g *graph.Graph) []float64 {
	n := g.N()
	c := make([]float64, n)
	if n < 2 {
		return c
	}
	for v := 0; v < n; v++ {
		total, reach := 0, 0
		for u, d := range g.BFS(v) {
			if u != v && d > 0 {
				total += d
				reach++
			}
		}
		if total > 0 {
			r := float64(reach)
			c[v] = (r / float64(n-1)) * (r / float64(total))
		}
	}
	return c
}

// BetweennessCentrality computes exact shortest-path betweenness with
// Brandes' algorithm (unweighted). Undirected scores are halved per the
// usual convention.
func BetweennessCentrality(g *graph.Graph) []float64 {
	n := g.N()
	cb := make([]float64, n)
	for s := 0; s < n; s++ {
		// single-source shortest path counting
		var stack []int
		preds := make([][]int, n)
		sigma := make([]float64, n)
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		sigma[s] = 1
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, e := range g.Neighbors(v) {
				w := e.To
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		delta := make([]float64, n)
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				cb[w] += delta[w]
			}
		}
	}
	if !g.Directed {
		for i := range cb {
			cb[i] /= 2
		}
	}
	return cb
}

// DensificationExponent fits E ∝ N^a over growth snapshots by least
// squares in log–log space and returns a. Fewer than two snapshots give 0.
func DensificationExponent(nodes, edges []int) float64 {
	if len(nodes) != len(edges) || len(nodes) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range nodes {
		if nodes[i] <= 0 || edges[i] <= 0 {
			continue
		}
		x := math.Log(float64(nodes[i]))
		y := math.Log(float64(edges[i]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return 0
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (fn*sxy - sx*sy) / den
}

// Summary aggregates the headline statistics for one graph — the row
// format of the tutorial's network-measurement table.
type Summary struct {
	Nodes, Edges   int
	Density        float64
	Components     int
	LargestComp    int
	AvgDegree      float64
	MaxDegree      int
	ClusteringCoef float64
	AvgPathLength  float64 // sampled
	PowerLawAlpha  float64
}

// Summarize computes a Summary (path length sampled at ≤ 64 sources).
func Summarize(g *graph.Graph) Summary {
	s := Summary{Nodes: g.N(), Edges: g.M(), Density: Density(g)}
	comp, k := g.ConnectedComponents()
	s.Components = k
	sizes := make(map[int]int)
	for _, c := range comp {
		sizes[c]++
	}
	for _, sz := range sizes {
		if sz > s.LargestComp {
			s.LargestComp = sz
		}
	}
	totalDeg := 0
	for v := 0; v < g.N(); v++ {
		d := len(g.NeighborSet(v, false))
		totalDeg += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if g.N() > 0 {
		s.AvgDegree = float64(totalDeg) / float64(g.N())
	}
	s.ClusteringCoef = ClusteringCoefficient(g)
	s.AvgPathLength = AveragePathLength(g, 64)
	s.PowerLawAlpha, _ = PowerLawFit(g, 2)
	return s
}

// TopCentral returns the k node ids with the highest centrality score,
// descending (ties by id).
func TopCentral(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
