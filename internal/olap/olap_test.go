package olap

import (
	"math"
	"testing"

	"hinet/internal/dblp"
	"hinet/internal/stats"
)

func sampleCube() *Cube {
	dims := []Dimension{
		{Name: "year", Values: []string{"2000", "2001"}},
		{Name: "area", Values: []string{"db", "ir"}},
	}
	c := NewCube(dims, 3, 4)
	c.Add(Event{Src: 0, Dst: 0, Weight: 2, Coords: []int{0, 0}})
	c.Add(Event{Src: 0, Dst: 1, Weight: 1, Coords: []int{0, 1}})
	c.Add(Event{Src: 1, Dst: 2, Weight: 3, Coords: []int{1, 0}})
	c.Add(Event{Src: 2, Dst: 3, Weight: 5, Coords: []int{1, 1}})
	c.Add(Event{Src: 0, Dst: 0, Weight: 4, Coords: []int{1, 0}})
	return c
}

func TestSliceSingleCell(t *testing.T) {
	c := sampleCube()
	cell := c.Slice(CellQuery{0, 0})
	if cell.TotalWeight() != 2 || cell.Edges() != 1 {
		t.Errorf("cell (2000,db): weight=%v edges=%d", cell.TotalWeight(), cell.Edges())
	}
}

func TestSliceWildcard(t *testing.T) {
	c := sampleCube()
	all := c.Slice(CellQuery{-1, -1})
	if all.TotalWeight() != 15 {
		t.Errorf("full slice weight = %v", all.TotalWeight())
	}
	year1 := c.Slice(CellQuery{1, -1})
	if year1.TotalWeight() != 12 {
		t.Errorf("2001 slice weight = %v", year1.TotalWeight())
	}
}

func TestSlicePartitionsWeight(t *testing.T) {
	c := sampleCube()
	total := c.Slice(CellQuery{-1, -1}).TotalWeight()
	sum := 0.0
	for y := 0; y < 2; y++ {
		for a := 0; a < 2; a++ {
			sum += c.Slice(CellQuery{y, a}).TotalWeight()
		}
	}
	if math.Abs(total-sum) > 1e-12 {
		t.Errorf("cells sum %v != total %v", sum, total)
	}
}

func TestRollUpConservesWeight(t *testing.T) {
	c := sampleCube()
	r := c.RollUp(0) // drop year
	if len(r.Dimensions()) != 1 || r.Dimensions()[0].Name != "area" {
		t.Fatal("roll-up dimension bookkeeping wrong")
	}
	if got := r.Slice(CellQuery{-1}).TotalWeight(); got != 15 {
		t.Errorf("rolled-up total = %v", got)
	}
	db := r.Slice(CellQuery{0})
	if db.TotalWeight() != 9 { // 2+3+4
		t.Errorf("db cell after roll-up = %v", db.TotalWeight())
	}
}

func TestAggNetworkMeasures(t *testing.T) {
	c := sampleCube()
	agg := c.Slice(CellQuery{1, 0})
	s, d := agg.ActiveNodes()
	if s != 2 || d != 2 {
		t.Errorf("active nodes = %d,%d", s, d)
	}
	top := agg.TopSrc(1)
	if top[0] != 0 { // src 0 has weight 4 vs src 1 weight 3
		t.Errorf("top src = %v", top)
	}
}

func TestDrillCells(t *testing.T) {
	c := sampleCube()
	rows := c.DrillCells(0)
	if len(rows) != 2 {
		t.Fatal("drill rows wrong")
	}
	if rows[0].Member != "2000" || rows[0].TotalWeight != 3 {
		t.Errorf("2000 row = %+v", rows[0])
	}
	if rows[1].TotalWeight != 12 || rows[1].Edges != 3 {
		t.Errorf("2001 row = %+v", rows[1])
	}
}

func TestValidation(t *testing.T) {
	c := sampleCube()
	for name, f := range map[string]func(){
		"arity":   func() { c.Add(Event{Src: 0, Dst: 0, Weight: 1, Coords: []int{0}}) },
		"range":   func() { c.Add(Event{Src: 0, Dst: 0, Weight: 1, Coords: []int{0, 9}}) },
		"node":    func() { c.Add(Event{Src: 99, Dst: 0, Weight: 1, Coords: []int{0, 0}}) },
		"query":   func() { c.Slice(CellQuery{0}) },
		"rolldim": func() { c.RollUp(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

// TestDBLPCubeByYearAndArea builds the venue-author cube from the DBLP
// corpus: the canonical iNextCube demonstration.
func TestDBLPCubeByYearAndArea(t *testing.T) {
	corpus := dblp.Generate(stats.NewRNG(1), dblp.Config{
		VenuesPerArea:  3,
		AuthorsPerArea: 40,
		TermsPerArea:   30,
		SharedTerms:    10,
		Papers:         400,
		Years:          3,
	})
	years := []string{"2000", "2001", "2002"}
	dims := []Dimension{
		{Name: "year", Values: years},
		{Name: "area", Values: corpus.Config.Areas},
	}
	cube := NewCube(dims, corpus.Net.Count(dblp.TypeVenue), corpus.Net.Count(dblp.TypeAuthor))
	pv := corpus.Net.Relation(dblp.TypePaper, dblp.TypeVenue)
	pa := corpus.Net.Relation(dblp.TypePaper, dblp.TypeAuthor)
	for p := 0; p < corpus.Net.Count(dblp.TypePaper); p++ {
		year := corpus.PaperYear[p]
		area := corpus.PaperArea[p]
		pv.Row(p, func(v int, _ float64) {
			pa.Row(p, func(a int, _ float64) {
				cube.Add(Event{Src: v, Dst: a, Weight: 1, Coords: []int{year, area}})
			})
		})
	}
	// Total events = total (paper, author) pairs.
	if cube.Slice(CellQuery{-1, -1}).TotalWeight() != pa.Sum() {
		t.Error("cube mass != paper-author mass")
	}
	// Per-area cells should be venue-coherent: top venue of the db cell
	// belongs to area 0 (most links are within area).
	dbCell := cube.Slice(CellQuery{-1, 0})
	top := dbCell.TopSrc(1)
	if corpus.VenueArea[top[0]] != 0 {
		t.Errorf("top venue of area-0 cell is from area %d", corpus.VenueArea[top[0]])
	}
	// Roll up year, drill area: 4 rows, weights partition the total.
	byArea := cube.RollUp(0)
	rows := byArea.DrillCells(0)
	sum := 0.0
	for _, r := range rows {
		sum += r.TotalWeight
	}
	if math.Abs(sum-pa.Sum()) > 1e-9 {
		t.Errorf("area drill sums %v, want %v", sum, pa.Sum())
	}
}
