// Package olap implements information-network OLAP (tutorial §7c,
// iNextCube VLDB'09 demo): a data cube whose cells hold *aggregated
// sub-networks* instead of scalar measures. Link events carry
// dimension coordinates (e.g. year, research area); slicing fixes some
// dimensions, roll-up aggregates a dimension away, and every cell
// exposes graph measures — total link weight, distinct edges, active
// nodes, and ranked top nodes (iNextCube's "rank measure").
package olap

import (
	"fmt"

	"hinet/internal/sparse"
	"hinet/internal/stats"
)

// Dimension is one cube axis with named members.
type Dimension struct {
	Name   string
	Values []string
}

// Event is one link observation: an (src, dst, weight) edge stamped
// with one member index per dimension.
type Event struct {
	Src, Dst int
	Weight   float64
	Coords   []int
}

// Cube is an information-network cube over a fixed src×dst object
// space.
type Cube struct {
	dims   []Dimension
	events []Event
	nSrc   int
	nDst   int
}

// NewCube creates a cube with the given dimensions over an nSrc×nDst
// link space.
func NewCube(dims []Dimension, nSrc, nDst int) *Cube {
	return &Cube{dims: dims, nSrc: nSrc, nDst: nDst}
}

// Dimensions returns the cube's axes.
func (c *Cube) Dimensions() []Dimension { return c.dims }

// Events returns the number of stored link events.
func (c *Cube) Events() int { return len(c.events) }

// Add records a link event. Coordinate arity and ranges are validated.
func (c *Cube) Add(e Event) {
	if len(e.Coords) != len(c.dims) {
		panic("olap: coordinate arity mismatch")
	}
	for d, v := range e.Coords {
		if v < 0 || v >= len(c.dims[d].Values) {
			panic(fmt.Sprintf("olap: coord %d out of range for dimension %s", v, c.dims[d].Name))
		}
	}
	if e.Src < 0 || e.Src >= c.nSrc || e.Dst < 0 || e.Dst >= c.nDst {
		panic("olap: event endpoint out of range")
	}
	c.events = append(c.events, e)
}

// CellQuery fixes some dimensions: Filter[d] = member index, or -1 for
// "all" (the * wildcard).
type CellQuery []int

// AggNetwork is the aggregated sub-network measure of one cell.
type AggNetwork struct {
	W *sparse.Matrix // aggregated src×dst link weights
}

// TotalWeight is the summed link weight in the cell.
func (a *AggNetwork) TotalWeight() float64 { return a.W.Sum() }

// Edges is the number of distinct (src, dst) pairs.
func (a *AggNetwork) Edges() int { return a.W.NNZ() }

// ActiveNodes counts src and dst objects incident to any link.
func (a *AggNetwork) ActiveNodes() (srcs, dsts int) {
	seenDst := make(map[int]bool)
	for r := 0; r < a.W.Rows(); r++ {
		if a.W.RowNNZ(r) > 0 {
			srcs++
			a.W.Row(r, func(col int, v float64) { seenDst[col] = true })
		}
	}
	return srcs, len(seenDst)
}

// TopSrc returns the k src objects with the largest aggregated weight —
// the iNextCube rank measure for the cell.
func (a *AggNetwork) TopSrc(k int) []int {
	mass := make([]float64, a.W.Rows())
	for r := range mass {
		mass[r] = a.W.RowSum(r)
	}
	return stats.TopK(mass, k)
}

// Slice materializes one cell (or sub-cube aggregate when wildcards are
// used) as an aggregated network.
func (c *Cube) Slice(q CellQuery) *AggNetwork {
	if len(q) != len(c.dims) {
		panic("olap: query arity mismatch")
	}
	var entries []sparse.Coord
	for _, e := range c.events {
		ok := true
		for d, want := range q {
			if want >= 0 && e.Coords[d] != want {
				ok = false
				break
			}
		}
		if ok {
			entries = append(entries, sparse.Coord{Row: e.Src, Col: e.Dst, Val: e.Weight})
		}
	}
	return &AggNetwork{W: sparse.NewFromCoords(c.nSrc, c.nDst, entries)}
}

// RollUp removes a dimension, summing events that collide — the
// classic roll-up, producing a smaller cube over the remaining axes.
func (c *Cube) RollUp(dim int) *Cube {
	if dim < 0 || dim >= len(c.dims) {
		panic("olap: roll-up dimension out of range")
	}
	dims := make([]Dimension, 0, len(c.dims)-1)
	for d, dd := range c.dims {
		if d != dim {
			dims = append(dims, dd)
		}
	}
	out := NewCube(dims, c.nSrc, c.nDst)
	for _, e := range c.events {
		coords := make([]int, 0, len(dims))
		for d, v := range e.Coords {
			if d != dim {
				coords = append(coords, v)
			}
		}
		out.events = append(out.events, Event{Src: e.Src, Dst: e.Dst, Weight: e.Weight, Coords: coords})
	}
	return out
}

// DrillCells enumerates every cell of one dimension (others wildcarded)
// with its aggregate measures — the row set of a one-dimensional
// report, e.g. "co-publication network per year".
type CellReport struct {
	Member      string
	TotalWeight float64
	Edges       int
	SrcNodes    int
	DstNodes    int
}

// DrillCells reports aggregate measures for each member of dimension d.
func (c *Cube) DrillCells(d int) []CellReport {
	out := make([]CellReport, 0, len(c.dims[d].Values))
	for m := range c.dims[d].Values {
		q := make(CellQuery, len(c.dims))
		for i := range q {
			q[i] = -1
		}
		q[d] = m
		agg := c.Slice(q)
		s, t := agg.ActiveNodes()
		out = append(out, CellReport{
			Member:      c.dims[d].Values[m],
			TotalWeight: agg.TotalWeight(),
			Edges:       agg.Edges(),
			SrcNodes:    s,
			DstNodes:    t,
		})
	}
	return out
}
