package experiments

import (
	"strings"
	"testing"
)

// checkRows validates the structural contract every experiment shares:
// at least one row, aligned columns/values, finite values.
func checkRows(t *testing.T, rows []Row) {
	t.Helper()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for i, r := range rows {
		if len(r.Columns) == 0 || len(r.Columns) != len(r.Values) {
			t.Fatalf("row %d: %d columns vs %d values", i, len(r.Columns), len(r.Values))
		}
		for j, v := range r.Values {
			if v != v { // NaN
				t.Fatalf("row %d col %s is NaN", i, r.Columns[j])
			}
		}
		if r.Label == "" {
			t.Fatalf("row %d has no label", i)
		}
	}
}

func TestRowFormat(t *testing.T) {
	r := Row{Label: "x", Columns: []string{"a", "b"}, Values: []float64{1, 0.5}}
	s := r.Format()
	if !strings.Contains(s, "a=1") || !strings.Contains(s, "b=0.5") {
		t.Errorf("Format = %q", s)
	}
}

func TestE1Shape(t *testing.T) {
	rows := E1RankClusCaseStudy(1)
	checkRows(t, rows)
	// NMI and coherence are probabilities.
	for i, v := range rows[0].Values {
		if v < 0 || v > 1 {
			t.Errorf("metric %s = %v out of [0,1]", rows[0].Columns[i], v)
		}
	}
}

func TestE3ScaleMonotoneSimRank(t *testing.T) {
	rows := E3Scale(1, []int{50, 150})
	checkRows(t, rows)
	// SimRank time must grow superlinearly with the attribute side.
	if rows[1].Values[1] <= rows[0].Values[1] {
		t.Errorf("SimRank cost should grow: %v vs %v", rows[0].Values[1], rows[1].Values[1])
	}
}

func TestE6Shape(t *testing.T) {
	rows := E6PageRankHITS(1, 500)
	checkRows(t, rows)
	if rows[0].Values[0] <= 0 || rows[0].Values[1] <= 0 {
		t.Error("iteration counts must be positive")
	}
}

func TestE7Shape(t *testing.T) {
	rows := E7SimRank(1)
	checkRows(t, rows)
	for i, v := range rows[0].Values {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v out of [0,1]", rows[0].Columns[i], v)
		}
	}
}

func TestE10CopyDetectionHelps(t *testing.T) {
	rows := E10TruthFinder(1)
	checkRows(t, rows)
	last := rows[len(rows)-1]
	// TF+copydetect (col 2) must beat plain TF (col 0) under copycats.
	if last.Values[2] <= last.Values[0] {
		t.Errorf("copy detection should help: %v vs %v", last.Values[2], last.Values[0])
	}
}

func TestE11DistinctBeatsBaselines(t *testing.T) {
	rows := E11Distinct(1)
	checkRows(t, rows)
	v := rows[0].Values
	if v[0] <= v[1] || v[0] <= v[2] {
		t.Errorf("DISTINCT %v should beat merge %v and split %v", v[0], v[1], v[2])
	}
}

func TestE12PathSimWins(t *testing.T) {
	rows := E12PathSim(1)
	checkRows(t, rows)
	v := rows[0].Values
	if v[0] <= v[1] {
		t.Errorf("PathSim %v should beat PPR %v on peer search", v[0], v[1])
	}
}

func TestE13CrossMineWins(t *testing.T) {
	rows := E13CrossMine(1)
	checkRows(t, rows)
	v := rows[0].Values
	if v[0] <= v[1] {
		t.Errorf("CrossMine %v should beat 1R %v", v[0], v[1])
	}
}

func TestE14GuidedBeatsGuidanceOnly(t *testing.T) {
	rows := E14CrossClus(1)
	checkRows(t, rows)
	v := rows[0].Values
	if v[0] <= v[1] {
		t.Errorf("CrossClus %v should beat guidance-only %v", v[0], v[1])
	}
}

func TestE15MassConserved(t *testing.T) {
	rows := E15OLAP(1)
	checkRows(t, rows)
	if rows[0].Values[3] != 1 {
		t.Error("cube mass not conserved")
	}
}

func TestE16PropagationBeatsMajority(t *testing.T) {
	rows := E16Classify(1)
	checkRows(t, rows)
	for _, r := range rows {
		if r.Values[0] <= r.Values[2] {
			t.Errorf("%s: typed %v should beat majority %v", r.Label, r.Values[0], r.Values[2])
		}
	}
}

func TestAblationsShape(t *testing.T) {
	checkRows(t, AblationLinkClus(1))
	checkRows(t, AblationRankClusSmoothing(1))
	checkRows(t, AblationSCANEpsilon(1))
}
