package experiments

import (
	"fmt"
	"time"

	"hinet/internal/crossclus"
	"hinet/internal/crossmine"
	"hinet/internal/dblp"
	"hinet/internal/eval"
	"hinet/internal/kmeans"
	"hinet/internal/linkclus"
	"hinet/internal/netclus"
	"hinet/internal/netgen"
	"hinet/internal/netstat"
	"hinet/internal/olap"
	"hinet/internal/pathsim"
	"hinet/internal/rank"
	"hinet/internal/relational"
	"hinet/internal/scan"
	"hinet/internal/simrank"
	"hinet/internal/spectral"
	"hinet/internal/stats"

	"hinet/internal/core"
	"hinet/internal/hin"
)

// E4NetClusAccuracy reproduces NetClus KDD'09 Table 3: clustering
// quality of NetClus on the full star network vs RankClus on the
// collapsed venue–author bipartite view vs a link-blind PLSA-style
// baseline (NetClus with LambdaB ≈ 1, which collapses every cluster
// distribution to the background and leaves only the prior mixture).
func E4NetClusAccuracy(seed int64) []Row {
	c := dblp.Generate(stats.NewRNG(seed), DefaultDBLP())
	k := c.Areas()

	nc := netclus.Run(stats.NewRNG(seed+1), c.Star(), netclus.Options{K: k, Restarts: 2})
	paperNMI := eval.NMI(c.PaperArea, nc.AssignCenter)
	venueNMI := eval.NMI(c.VenueArea, nc.AssignAttr(1))
	authorNMI := eval.NMI(c.AuthorArea, nc.AssignAttr(0))

	rc := core.Run(stats.NewRNG(seed+2), c.VenueAuthorBipartite(), core.Options{K: k, Restarts: 2})
	rcVenueNMI := eval.NMI(c.VenueArea, rc.Assign)

	// Link-blind baseline: terms-only clustering via k-means on paper
	// term distributions (bag of words without network structure).
	pt := c.Net.Relation(dblp.TypePaper, dblp.TypeTerm)
	pts := make([][]float64, pt.Rows())
	for p := range pts {
		pts[p] = make([]float64, pt.Cols())
		pt.Row(p, func(t int, w float64) { pts[p][t] = w })
	}
	km := kmeans.Cluster(stats.NewRNG(seed+3), pts, k, kmeans.Options{Restarts: 1, MaxIter: 20})
	bowNMI := eval.NMI(c.PaperArea, km.Assign)

	return []Row{
		{
			Label:   "paper clustering NMI",
			Columns: []string{"NetClus", "BagOfWords-kmeans"},
			Values:  []float64{paperNMI, bowNMI},
		},
		{
			Label:   "venue clustering NMI",
			Columns: []string{"NetClus", "RankClus(bipartite)"},
			Values:  []float64{venueNMI, rcVenueNMI},
		},
		{
			Label:   "author clustering NMI",
			Columns: []string{"NetClus"},
			Values:  []float64{authorNMI},
		},
	}
}

// E5NetClusRanking reproduces the NetClus conditional-rank tables
// (KDD'09 Tables 1–2): area coherence of each net-cluster's top-ranked
// venues and terms, and the rank mass they capture.
func E5NetClusRanking(seed int64) []Row {
	c := dblp.Generate(stats.NewRNG(seed), DefaultDBLP())
	k := c.Areas()
	m := netclus.Run(stats.NewRNG(seed+1), c.Star(), netclus.Options{K: k, Restarts: 5})

	var rows []Row
	for cl := 0; cl < k; cl++ {
		// Dominant area by venue posterior votes.
		votes := map[int]int{}
		va := m.AssignAttr(1)
		for v, a := range va {
			if a == cl {
				votes[c.VenueArea[v]]++
			}
		}
		dom, bv := 0, -1
		for area, n := range votes {
			if n > bv {
				bv, dom = n, area
			}
		}
		topV := m.TopAttr(1, cl, 4)
		vHit := 0
		vMass := 0.0
		for _, v := range topV {
			if c.VenueArea[v] == dom {
				vHit++
			}
			vMass += m.RankDist[1][cl][v]
		}
		topT := m.TopAttr(2, cl, 10)
		tHit := 0
		for _, t := range topT {
			if c.TermArea[t] == dom {
				tHit++
			}
		}
		rows = append(rows, Row{
			Label:   fmt.Sprintf("net-cluster %d (area %s)", cl, c.Config.Areas[dom]),
			Columns: []string{"top4venue-coh", "top4venue-mass", "top10term-coh"},
			Values:  []float64{float64(vHit) / 4, vMass, float64(tHit) / 10},
		})
	}
	return rows
}

// E8SCAN reproduces the SCAN community study: recovery quality on a
// planted partition (members only), hub/outlier detection, and runtime
// vs spectral clustering.
func E8SCAN(seed int64) []Row {
	rng := stats.NewRNG(seed)
	g, truthL := netgen.PlantedPartition(rng, 4, 60, 0.35, 0.01)
	// Attach two deliberate hubs and two outliers.
	hub1 := g.AddNode("hub1")
	hub2 := g.AddNode("hub2")
	for k := 0; k < 4; k++ {
		g.AddEdge(hub1, k*60+1, 1)
		g.AddEdge(hub2, k*60+2, 1)
	}
	out1 := g.AddNode("out1")
	out2 := g.AddNode("out2")
	g.AddEdge(out1, 0, 1)
	g.AddEdge(out2, 61, 1)

	t0 := time.Now()
	res := scan.Run(g, scan.Options{Epsilon: 0.5, Mu: 3})
	scanMS := time.Since(t0).Seconds() * 1000

	var pt, pp []int
	for v := 0; v < len(truthL); v++ {
		if res.Cluster[v] >= 0 {
			pt = append(pt, truthL[v])
			pp = append(pp, res.Cluster[v])
		}
	}
	hubsFound := 0
	if res.Role[hub1] == scan.RoleHub {
		hubsFound++
	}
	if res.Role[hub2] == scan.RoleHub {
		hubsFound++
	}
	outliersFound := 0
	if res.Role[out1] == scan.RoleOutlier {
		outliersFound++
	}
	if res.Role[out2] == scan.RoleOutlier {
		outliersFound++
	}

	t0 = time.Now()
	sp := spectral.Cluster(stats.NewRNG(seed+1), g, 4, spectral.Options{})
	spectralMS := time.Since(t0).Seconds() * 1000
	spNMI := eval.NMI(truthL, sp.Assign[:len(truthL)])

	return []Row{{
		Label:   "planted 4x60 + hubs/outliers",
		Columns: []string{"SCAN-NMI", "Spectral-NMI", "hubs", "outliers", "SCAN-ms", "Spectral-ms"},
		Values:  []float64{eval.NMI(pt, pp), spNMI, float64(hubsFound), float64(outliersFound), scanMS, spectralMS},
	}}
}

// E9NetStats reproduces the tutorial's network-measurement section:
// power-law fit on BA vs ER, small-world signature of WS, and the
// densification exponent of forest fire growth.
func E9NetStats(seed int64) []Row {
	ba := netgen.BarabasiAlbert(stats.NewRNG(seed), 4000, 3)
	er := netgen.ErdosRenyi(stats.NewRNG(seed+1), 4000, 6.0/3999)
	ws := netgen.WattsStrogatz(stats.NewRNG(seed+2), 2000, 8, 0.1)
	_, snaps := netgen.ForestFire(stats.NewRNG(seed+3), 3000, 0.35, 0.3, 300)

	baAlpha, _ := netstat.PowerLawFit(ba, 6)
	erAlpha, _ := netstat.PowerLawFit(er, 6)
	var nodes, edges []int
	for _, s := range snaps {
		nodes = append(nodes, s.Nodes)
		edges = append(edges, s.Edges)
	}
	return []Row{
		{
			Label:   "power-law MLE alpha (dmin=6)",
			Columns: []string{"BarabasiAlbert", "ErdosRenyi"},
			Values:  []float64{baAlpha, erAlpha},
		},
		{
			Label:   "small world (WS n=2000 k=8 beta=0.1)",
			Columns: []string{"clustering", "ER-clustering", "avgPath"},
			Values: []float64{
				netstat.ClusteringCoefficient(ws),
				netstat.ClusteringCoefficient(netgen.ErdosRenyi(stats.NewRNG(seed+4), 2000, 8.0/1999)),
				netstat.AveragePathLength(ws, 50),
			},
		},
		{
			Label:   "forest-fire densification",
			Columns: []string{"exponent"},
			Values:  []float64{netstat.DensificationExponent(nodes, edges)},
		},
	}
}

// E12PathSim reproduces the peer-search comparison (PathSim Table 4
// shape): precision of top-10 same-area peers under PathSim vs
// Personalized PageRank vs SimRank on the APVPA meta path, averaged
// over the most productive authors.
func E12PathSim(seed int64) []Row {
	c := dblp.Generate(stats.NewRNG(seed), dblp.Config{
		VenuesPerArea:  3,
		AuthorsPerArea: 60,
		TermsPerArea:   40,
		SharedTerms:    20,
		Papers:         800,
	})
	path := hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue, dblp.TypePaper, dblp.TypeAuthor}
	ix := pathsim.NewIndex(c.Net, path)

	// Author–author random-walk graph for PPR along the same path: the
	// index already materialized the commuting matrix, reuse it.
	m := ix.M

	// SimRank on author–venue bipartite (APV collapsed) — the engine
	// hands back APVPA's cached half-path product.
	av := c.Net.CommutingMatrix(hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue})
	sr := simrank.Bipartite(av, simrank.Options{MaxIter: 5}).SX

	pa := c.Net.Relation(dblp.TypePaper, dblp.TypeAuthor)
	deg := make([]float64, c.Net.Count(dblp.TypeAuthor))
	for p := 0; p < pa.Rows(); p++ {
		pa.Row(p, func(a int, v float64) { deg[a] += v })
	}
	queries := stats.TopK(deg, 12)

	precAt10 := func(scores []float64, q int) float64 {
		rel := map[int]bool{}
		for a, ar := range c.AuthorArea {
			if a != q && ar == c.AuthorArea[q] {
				rel[a] = true
			}
		}
		scores[q] = -1 // exclude self
		return eval.PrecisionAtK(scores, rel, 10)
	}

	var ps, ppr, srp float64
	for _, q := range queries {
		ps += precAt10(ix.AllScores(q), q)

		restart := make([]float64, m.Rows())
		restart[q] = 1
		pr := rank.Personalized(m, restart, rank.Options{MaxIter: 30})
		ppr += precAt10(append([]float64(nil), pr.Scores...), q)

		srScores := append([]float64(nil), sr[q]...)
		srp += precAt10(srScores, q)
	}
	n := float64(len(queries))
	return []Row{{
		Label:   "peer precision@10 (APVPA, 12 busiest authors)",
		Columns: []string{"PathSim", "PPageRank", "SimRank"},
		Values:  []float64{ps / n, ppr / n, srp / n},
	}}
}

// E13CrossMine reproduces the cross-relational classification table:
// accuracy and train time of CrossMine vs the flattened single-table 1R
// learner on the synthetic customer schema.
func E13CrossMine(seed int64) []Row {
	s := relational.SyntheticCustomers(stats.NewRNG(seed), relational.SynthConfig{Customers: 600})
	var train, test []int
	for i := 0; i < 600; i++ {
		if i < 360 {
			train = append(train, i)
		} else {
			test = append(test, i)
		}
	}
	t0 := time.Now()
	cm := crossmine.Train(s.DB, "customer", s.Class, train, crossmine.Options{})
	cmMS := time.Since(t0).Seconds() * 1000
	t0 = time.Now()
	st := crossmine.TrainSingleTable(s.DB, "customer", s.Class, train)
	stMS := time.Since(t0).Seconds() * 1000
	return []Row{{
		Label:   "customer class (600 tuples, 60/40 split)",
		Columns: []string{"CrossMine-acc", "1R-acc", "CrossMine-ms", "1R-ms", "rules"},
		Values: []float64{
			cm.Accuracy(s.Class, test),
			st.Accuracy(s.DB, "customer", s.Class, test),
			cmMS, stMS, float64(len(cm.Rules)),
		},
	}}
}

// E14CrossClus reproduces the guided-clustering comparison: NMI to the
// latent customer groups for CrossClus vs guidance-only vs unguided
// all-features k-means.
func E14CrossClus(seed int64) []Row {
	const reps = 3
	var g, alone, ung float64
	for r := int64(0); r < reps; r++ {
		s := relational.SyntheticCustomers(stats.NewRNG(seed+11*r), relational.SynthConfig{Customers: 400, ProfileNoise: 0.35})
		guided := crossclus.Run(stats.NewRNG(seed+r+1), s.DB, "customer", "profile", crossclus.Options{K: 3})
		unguided := crossclus.UnguidedBaseline(stats.NewRNG(seed+r+2), s.DB, "customer", 3, 2, kmeans.Options{})
		cust := s.DB.Table("customer")
		profLabels := make([]int, len(cust.Rows))
		for i, row := range cust.Rows {
			profLabels[i] = int(row[1].(string)[1] - '0')
		}
		g += eval.NMI(s.Group, guided.Assign) / reps
		alone += eval.NMI(s.Group, profLabels) / reps
		ung += eval.NMI(s.Group, unguided) / reps
	}
	return []Row{{
		Label:   "latent customer groups (noise 0.35, 3 seeds)",
		Columns: []string{"CrossClus", "guidance-only", "unguided"},
		Values:  []float64{g, alone, ung},
	}}
}

// E15OLAP reproduces the iNextCube-style cube report: build the
// venue×author network cube over (year, area), roll up, and time the
// operations; cells must conserve total link mass.
func E15OLAP(seed int64) []Row {
	c := dblp.Generate(stats.NewRNG(seed), DefaultDBLP())
	years := make([]string, c.Config.Years)
	for y := range years {
		years[y] = fmt.Sprintf("%d", 2000+y)
	}
	dims := []olap.Dimension{
		{Name: "year", Values: years},
		{Name: "area", Values: c.Config.Areas},
	}
	t0 := time.Now()
	cube := olap.NewCube(dims, c.Net.Count(dblp.TypeVenue), c.Net.Count(dblp.TypeAuthor))
	pv := c.Net.Relation(dblp.TypePaper, dblp.TypeVenue)
	pa := c.Net.Relation(dblp.TypePaper, dblp.TypeAuthor)
	for p := 0; p < c.Net.Count(dblp.TypePaper); p++ {
		pv.Row(p, func(v int, _ float64) {
			pa.Row(p, func(a int, _ float64) {
				cube.Add(olap.Event{Src: v, Dst: a, Weight: 1, Coords: []int{c.PaperYear[p], c.PaperArea[p]}})
			})
		})
	}
	buildMS := time.Since(t0).Seconds() * 1000

	t0 = time.Now()
	total := cube.Slice(olap.CellQuery{-1, -1}).TotalWeight()
	cellSum := 0.0
	for y := range years {
		for a := range c.Config.Areas {
			cellSum += cube.Slice(olap.CellQuery{y, a}).TotalWeight()
		}
	}
	sliceMS := time.Since(t0).Seconds() * 1000

	t0 = time.Now()
	byArea := cube.RollUp(0)
	rows := byArea.DrillCells(0)
	rollupMS := time.Since(t0).Seconds() * 1000
	_ = rows

	return []Row{{
		Label:   fmt.Sprintf("venue-author cube (%d events)", cube.Events()),
		Columns: []string{"build-ms", "20cell-slice-ms", "rollup-ms", "massConserved"},
		Values:  []float64{buildMS, sliceMS, rollupMS, boolTo01(total == cellSum)},
	}}
}

// AblationLinkClus compares LinkClus-style low-rank similarity to
// bipartite SimRank: rank agreement and runtime — the LinkClus
// speed/quality trade the tutorial's §4a highlights.
func AblationLinkClus(seed int64) []Row {
	cfg := netgen.BiTypedConfig{
		K:     3,
		Nx:    []int{15, 15, 15},
		Ny:    []int{120, 120, 120},
		Links: []int{600, 600, 600},
		Cross: 0.15,
		Skew:  0.9,
	}
	res := netgen.BiTyped(stats.NewRNG(seed), cfg)
	w := res.Net.Relation(res.X, res.Y)

	t0 := time.Now()
	m := linkclus.Fit(stats.NewRNG(seed+1), w, linkclus.Options{})
	lcMS := time.Since(t0).Seconds() * 1000

	t0 = time.Now()
	sr := simrank.Bipartite(w, simrank.Options{MaxIter: 8})
	srMS := time.Since(t0).Seconds() * 1000

	var a, b []float64
	nx := w.Rows()
	for i := 0; i < nx; i++ {
		for j := i + 1; j < nx; j++ {
			a = append(a, m.Sim(i, j))
			b = append(b, sr.SX[i][j])
		}
	}
	assign := m.Cluster(stats.NewRNG(seed+2), 3)
	return []Row{{
		Label:   "LinkClus vs SimRank (45x360 bipartite)",
		Columns: []string{"tau", "clusterNMI", "LinkClus-ms", "SimRank-ms"},
		Values: []float64{
			eval.KendallTau(a, b),
			eval.NMI(res.TruthX, assign),
			lcMS, srMS,
		},
	}}
}

// AblationRankClusSmoothing sweeps the RankClus smoothing parameter —
// the design choice DESIGN.md calls out (zero smoothing risks
// zero-probability attribute objects; heavy smoothing blurs clusters).
func AblationRankClusSmoothing(seed int64) []Row {
	var rows []Row
	for _, lam := range []float64{0.02, 0.1, 0.3, 0.6, 0.9} {
		b, truthX := e2Workload(seed, E2Config{Name: "med", Cross: 0.2, Scale: 1})
		m := core.Run(stats.NewRNG(seed+1), b, core.Options{K: 3, Smoothing: lam, Restarts: 2})
		rows = append(rows, Row{
			Label:   fmt.Sprintf("smoothing=%.2f", lam),
			Columns: []string{"NMI"},
			Values:  []float64{eval.NMI(truthX, m.Assign)},
		})
	}
	return rows
}

// AblationSCANEpsilon sweeps SCAN's ε — the tuning curve from the SCAN
// paper's parameter study.
func AblationSCANEpsilon(seed int64) []Row {
	g, _ := netgen.PlantedPartition(stats.NewRNG(seed), 3, 50, 0.4, 0.02)
	var rows []Row
	for _, p := range scan.EpsilonSweep(g, 3, []float64{0.3, 0.45, 0.6, 0.75, 0.9}) {
		rows = append(rows, Row{
			Label:   fmt.Sprintf("epsilon=%.2f", p.Epsilon),
			Columns: []string{"clusters", "memberFrac", "hubs", "outliers"},
			Values:  []float64{float64(p.Clusters), p.MemberFrac, float64(p.Hubs), float64(p.Outliers)},
		})
	}
	return rows
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
