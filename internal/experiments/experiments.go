// Package experiments wires workload generators, algorithms and metrics
// into the reproduction experiments E1–E16 indexed in DESIGN.md. Each
// function returns the rows of one paper-style table; bench_test.go
// times the same computations and cmd/experiments prints them.
//
// The tutorial itself contains no tables (it is a survey); each
// experiment reconstructs the canonical result of the system the
// tutorial presents, on the synthetic substitutes documented in
// DESIGN.md §1. Quality numbers are therefore compared by *shape*
// (who wins, by roughly what factor) rather than absolute value.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"hinet/internal/classify"
	"hinet/internal/core"
	"hinet/internal/dblp"
	"hinet/internal/distinct"
	"hinet/internal/eval"
	"hinet/internal/flickr"
	"hinet/internal/hin"
	"hinet/internal/kmeans"
	"hinet/internal/netgen"
	"hinet/internal/rank"
	"hinet/internal/simrank"
	"hinet/internal/sparse"
	"hinet/internal/spectral"
	"hinet/internal/stats"
	"hinet/internal/truth"
)

// Row is one line of an experiment table: a label plus named metrics in
// column order.
type Row struct {
	Label   string
	Columns []string
	Values  []float64
}

// Format renders a row as "label  col=val col=val".
func (r Row) Format() string {
	s := fmt.Sprintf("%-34s", r.Label)
	for i, c := range r.Columns {
		s += fmt.Sprintf("  %s=%.4g", c, r.Values[i])
	}
	return s
}

// DefaultDBLP is the corpus configuration shared by the DBLP-based
// experiments (small enough for a 2-core box, structured like the
// four-area DBLP subset of the RankClus/NetClus studies).
func DefaultDBLP() dblp.Config {
	return dblp.Config{
		VenuesPerArea:  4,
		AuthorsPerArea: 100,
		TermsPerArea:   80,
		SharedTerms:    40,
		Papers:         1200,
		Years:          5,
	}
}

// E1RankClusCaseStudy reproduces the RankClus DBLP case study: cluster
// venues with integrated authority ranking and report cluster quality
// plus the area coherence of each cluster's top-ranked objects.
func E1RankClusCaseStudy(seed int64) []Row {
	c := dblp.Generate(stats.NewRNG(seed), DefaultDBLP())
	b := c.VenueAuthorBipartite()
	m := core.Run(stats.NewRNG(seed+1), b, core.Options{K: c.Areas(), Method: core.AuthorityRanking, Restarts: 3})
	nmi := eval.NMI(c.VenueArea, m.Assign)
	acc := eval.Accuracy(c.VenueArea, m.Assign)

	// Area coherence of top-ranked venues and authors per cluster.
	venueCoh, authorCoh := 0.0, 0.0
	for k := 0; k < m.K; k++ {
		domArea := dominantArea(m, c, k)
		vHit, aHit := 0, 0
		topV := m.TopX(k, 3)
		for _, v := range topV {
			if c.VenueArea[v] == domArea {
				vHit++
			}
		}
		topA := m.TopY(k, 10)
		for _, a := range topA {
			if c.AuthorArea[a] == domArea {
				aHit++
			}
		}
		venueCoh += float64(vHit) / float64(len(topV))
		authorCoh += float64(aHit) / float64(len(topA))
	}
	venueCoh /= float64(m.K)
	authorCoh /= float64(m.K)
	return []Row{{
		Label:   "RankClus(authority) on DBLP venues",
		Columns: []string{"NMI", "accuracy", "topVenueAreaCoh", "topAuthorAreaCoh"},
		Values:  []float64{nmi, acc, venueCoh, authorCoh},
	}}
}

func dominantArea(m *core.Model, c *dblp.Corpus, k int) int {
	votes := map[int]int{}
	for x, a := range m.Assign {
		if a == k {
			votes[c.VenueArea[x]]++
		}
	}
	best, bv := 0, -1
	for area, v := range votes {
		if v > bv {
			bv, best = v, area
		}
	}
	return best
}

// E2Config is one synthetic setting of the RankClus accuracy study
// (EDBT'09 Table 4): five datasets varying separability and density.
type E2Config struct {
	Name  string
	Cross float64
	Scale float64 // link-count multiplier
}

// E2Configs mirrors the paper's min/medium/max separation spread. The
// cross-link rates sit deliberately near the recovery threshold so the
// methods separate (at low noise every method is perfect and the table
// is uninformative).
func E2Configs() []E2Config {
	return []E2Config{
		{Name: "sep-high density-med", Cross: 0.20, Scale: 1},
		{Name: "sep-med  density-med", Cross: 0.35, Scale: 1},
		{Name: "sep-low  density-med", Cross: 0.45, Scale: 1},
		{Name: "sep-med  density-low", Cross: 0.35, Scale: 0.5},
		{Name: "sep-med  density-high", Cross: 0.35, Scale: 2},
	}
}

func e2Workload(seed int64, cfg E2Config) (*hin.Bipartite, []int) {
	c := netgen.MediumBiTyped()
	c.Cross = cfg.Cross
	for i := range c.Links {
		c.Links[i] = int(float64(c.Links[i]) * cfg.Scale)
	}
	res := netgen.BiTyped(stats.NewRNG(seed), c)
	return res.Net.Bipartite(res.X, res.Y), res.TruthX
}

// E2Accuracy compares RankClus (authority and simple ranking) against
// spectral N-cut on the venue graph and SimRank+k-means, the baselines
// of the RankClus evaluation, across the five synthetic settings.
// Scores are averaged over three generator seeds per setting.
func E2Accuracy(seed int64) []Row {
	var rows []Row
	const reps = 3
	for _, cfg := range E2Configs() {
		var vals [4]float64
		for r := int64(0); r < reps; r++ {
			b, truthX := e2Workload(seed+17*r, cfg)
			k := 3
			ra := core.Run(stats.NewRNG(seed+r+1), b, core.Options{K: k, Method: core.AuthorityRanking, Restarts: 3})
			rs := core.Run(stats.NewRNG(seed+r+1), b, core.Options{K: k, Method: core.SimpleRanking, Restarts: 3})
			sp := spectralBaseline(seed+r+2, b, k)
			sr := simrankBaseline(seed+r+3, b, k)
			vals[0] += eval.NMI(truthX, ra.Assign) / reps
			vals[1] += eval.NMI(truthX, rs.Assign) / reps
			vals[2] += eval.NMI(truthX, sp) / reps
			vals[3] += eval.NMI(truthX, sr) / reps
		}
		rows = append(rows, Row{
			Label:   cfg.Name,
			Columns: []string{"RankClus-auth", "RankClus-simple", "Spectral", "SimRank+km"},
			Values:  vals[:],
		})
	}
	return rows
}

// spectralBaseline clusters target objects by N-cut on the X–X graph
// induced by shared attribute neighbors (W·Wᵀ).
func spectralBaseline(seed int64, b *hin.Bipartite, k int) []int {
	xx := b.W.Mul(b.W.Transpose())
	return spectral.ClusterMatrix(stats.NewRNG(seed), xx, k, spectral.Options{}).Assign
}

// simrankBaseline clusters target objects by k-means on SimRank rows.
func simrankBaseline(seed int64, b *hin.Bipartite, k int) []int {
	sim := simrank.Bipartite(b.W, simrank.Options{MaxIter: 5}).SX
	return kmeans.Cluster(stats.NewRNG(seed), sim, k, kmeans.Options{}).Assign
}

// E3Scale measures runtime growth of RankClus vs SimRank-based
// clustering as the attribute side grows — the EDBT'09 scalability
// figure whose point is the order-of-magnitude gap.
func E3Scale(seed int64, authorCounts []int) []Row {
	var rows []Row
	for _, ny := range authorCounts {
		cfg := netgen.BiTypedConfig{
			K:     3,
			Nx:    []int{10, 10, 10},
			Ny:    []int{ny, ny, ny},
			Links: []int{ny * 2, ny * 2, ny * 2},
			Cross: 0.15,
			Skew:  0.95,
		}
		res := netgen.BiTyped(stats.NewRNG(seed), cfg)
		b := res.Net.Bipartite(res.X, res.Y)

		t0 := time.Now()
		core.Run(stats.NewRNG(seed+1), b, core.Options{K: 3, Restarts: 1})
		rcMS := time.Since(t0).Seconds() * 1000

		t0 = time.Now()
		simrankBaseline(seed+2, b, 3)
		srMS := time.Since(t0).Seconds() * 1000

		rows = append(rows, Row{
			Label:   fmt.Sprintf("authors/cluster=%d", ny),
			Columns: []string{"RankClus-ms", "SimRank-ms", "speedup"},
			Values:  []float64{rcMS, srMS, srMS / rcMS},
		})
	}
	return rows
}

// E6PageRankHITS runs PageRank and HITS on a preferential-attachment
// web-like graph and reports convergence and hub concentration.
func E6PageRankHITS(seed int64, n int) []Row {
	g := netgen.BarabasiAlbert(stats.NewRNG(seed), n, 3)
	adj := g.Adjacency()
	pr := rank.PageRank(adj, rank.Options{Tolerance: 1e-10})
	ht := rank.HITS(adj, rank.Options{Tolerance: 1e-10})
	// Mass captured by the top 10 nodes (hub concentration).
	top := stats.TopK(pr.Scores, 10)
	mass := 0.0
	for _, v := range top {
		mass += pr.Scores[v]
	}
	// Agreement between PageRank and HITS authority orderings.
	tau := eval.KendallTau(pr.Scores, ht.Authority)
	return []Row{{
		Label:   fmt.Sprintf("BA graph n=%d m=3", n),
		Columns: []string{"PR-iters", "HITS-iters", "top10-mass", "PR-HITS-tau"},
		Values:  []float64{float64(pr.Iterations), float64(ht.Iterations), mass, tau},
	}}
}

// E7SimRank compares SimRank against co-citation counting for
// structural-context similarity on a planted bipartite network:
// fraction of objects whose nearest neighbor shares their block.
func E7SimRank(seed int64) []Row {
	// Sparse links: direct co-citation overlap between same-block
	// objects is frequently zero, so counting fails where SimRank's
	// transitive propagation still ranks block-mates first.
	cfg := netgen.BiTypedConfig{
		K:     4,
		Nx:    []int{15, 15, 15, 15},
		Ny:    []int{80, 80, 80, 80},
		Links: []int{30, 30, 30, 30},
		Cross: 0.10,
		Skew:  0.6,
	}
	res := netgen.BiTyped(stats.NewRNG(seed), cfg)
	w := res.Net.Relation(res.X, res.Y)
	sr := simrank.Bipartite(w, simrank.Options{MaxIter: 7}).SX
	cc := w.Mul(w.Transpose()) // co-citation counts

	nnAcc := func(simOf func(a, b int) float64) float64 {
		hit := 0
		n := w.Rows()
		for a := 0; a < n; a++ {
			// A nearest neighbor must have strictly positive similarity;
			// an all-zero row is a retrieval failure, not a free pick.
			best, bv := -1, 0.0
			for b2 := 0; b2 < n; b2++ {
				if b2 == a {
					continue
				}
				if s := simOf(a, b2); s > bv {
					bv, best = s, b2
				}
			}
			if best >= 0 && res.TruthX[best] == res.TruthX[a] {
				hit++
			}
		}
		return float64(hit) / float64(n)
	}
	// Pair-level AUC: probability a random same-block pair outranks a
	// random cross-block pair. SimRank's graded scores break the heavy
	// ties of integer co-citation counts.
	n := w.Rows()
	var srScores, ccScores []float64
	var pos []bool
	for a := 0; a < n; a++ {
		for b2 := a + 1; b2 < n; b2++ {
			srScores = append(srScores, sr[a][b2])
			ccScores = append(ccScores, cc.At(a, b2))
			pos = append(pos, res.TruthX[a] == res.TruthX[b2])
		}
	}
	return []Row{{
		Label:   "same-block retrieval",
		Columns: []string{"SimRank-NN", "cocite-NN", "SimRank-AUC", "cocite-AUC"},
		Values: []float64{
			nnAcc(func(a, b int) float64 { return sr[a][b] }),
			nnAcc(func(a, b int) float64 { return cc.At(a, b) }),
			pairAUC(srScores, pos),
			pairAUC(ccScores, pos),
		},
	}}
}

// pairAUC is the rank-sum AUC with average ranks on ties.
func pairAUC(scores []float64, pos []bool) float64 {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sortByScore(idx, scores)
	ranks := make([]float64, len(scores))
	i := 0
	for i < len(idx) {
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}
	var sumPos, nPos, nNeg float64
	for i, p := range pos {
		if p {
			sumPos += ranks[i]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0
	}
	return (sumPos - nPos*(nPos+1)/2) / (nPos * nNeg)
}

func sortByScore(idx []int, scores []float64) {
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
}

// E10TruthFinder reproduces the veracity table: TruthFinder vs majority
// voting across error regimes, plus the copycat stress with and without
// copy detection.
func E10TruthFinder(seed int64) []Row {
	var rows []Row
	for _, setting := range []struct {
		name string
		cfg  truth.SynthConfig
	}{
		{"mostly reliable providers", truth.SynthConfig{GoodSites: 0.7, GoodErr: 0.15, BadErr: 0.65, Websites: 20, ClaimsPerSite: 25}},
		{"unreliable majority", truth.SynthConfig{GoodSites: 0.35, GoodErr: 0.1, BadErr: 0.6, FalsePerObj: 2, Websites: 30, ClaimsPerSite: 25, Objects: 80}},
	} {
		s := truth.Synthesize(stats.NewRNG(seed), setting.cfg)
		r := truth.Run(s.Net, truth.Options{})
		rows = append(rows, Row{
			Label:   setting.name,
			Columns: []string{"TruthFinder", "MajorityVote"},
			Values: []float64{
				s.Accuracy(truth.PredictTruth(s.Net, r.Confidence)),
				s.Accuracy(truth.MajorityVote(s.Net)),
			},
		})
	}
	// Copycat stress.
	s := truth.Synthesize(stats.NewRNG(seed+1), truth.SynthConfig{
		Objects: 80, Websites: 20, ClaimsPerSite: 40,
		GoodSites: 0.5, GoodErr: 0.05, BadErr: 0.65, Copycats: 6,
	})
	plain := truth.Run(s.Net, truth.Options{})
	plainAcc := s.Accuracy(truth.PredictTruth(s.Net, plain.Confidence))
	mv := s.Accuracy(truth.MajorityVote(s.Net))
	s.Net.SiteWeight = truth.DetectCopycats(s.Net, 0.9)
	guarded := truth.Run(s.Net, truth.Options{})
	rows = append(rows, Row{
		Label:   "6 copycat mirrors",
		Columns: []string{"TruthFinder", "MajorityVote", "TF+copydetect"},
		Values:  []float64{plainAcc, mv, s.Accuracy(truth.PredictTruth(s.Net, guarded.Confidence))},
	})
	return rows
}

// E11Distinct reproduces the object-distinction table: pairwise F1 of
// DISTINCT vs the merge-all / split-all / exact-link baselines on an
// ambiguous-name overlay of the DBLP corpus.
func E11Distinct(seed int64) []Row {
	c := dblp.Generate(stats.NewRNG(seed), dblp.Config{
		VenuesPerArea:  3,
		AuthorsPerArea: 60,
		TermsPerArea:   40,
		SharedTerms:    15,
		Papers:         900,
		MinAuthors:     2,
		MaxAuthors:     4,
	})
	pa := c.Net.Relation(dblp.TypePaper, dblp.TypeAuthor)
	pv := c.Net.Relation(dblp.TypePaper, dblp.TypeVenue)
	pt := c.Net.Relation(dblp.TypePaper, dblp.TypeTerm)
	deg := make([]int, c.Net.Count(dblp.TypeAuthor))
	for p := 0; p < pa.Rows(); p++ {
		pa.Row(p, func(a int, v float64) { deg[a]++ })
	}
	pick := func(area int) int {
		for a, d := range deg {
			if c.AuthorArea[a] == area && d >= 10 && d <= 25 {
				return a
			}
		}
		return 0
	}
	merged := []int{pick(0), pick(1), pick(2)}
	occ := c.AmbiguousName(merged)
	var refs []distinct.Reference
	var truthL []int
	for i, o := range occ {
		f := make(map[int]float64)
		pa.Row(o.Paper, func(a int, v float64) {
			if a != o.TrueAuthor {
				f[a] = v
			}
		})
		pv.Row(o.Paper, func(v int, w float64) { f[100000+v] = w })
		pt.Row(o.Paper, func(v int, w float64) { f[200000+v] = w })
		refs = append(refs, distinct.Reference{ID: i, Features: f})
		truthL = append(truthL, o.TrueAuthor)
	}
	pred := distinct.Cluster(refs, distinct.Options{Threshold: 0.15})
	return []Row{{
		Label:   fmt.Sprintf("3-way ambiguous name (%d refs)", len(refs)),
		Columns: []string{"DISTINCT-F1", "mergeAll-F1", "splitAll-F1", "exactLink-F1"},
		Values: []float64{
			eval.PairwisePRF(truthL, pred).F1,
			eval.PairwisePRF(truthL, distinct.MergeAllBaseline(len(refs))).F1,
			eval.PairwisePRF(truthL, distinct.SplitAllBaseline(len(refs))).F1,
			eval.PairwisePRF(truthL, distinct.ExactLinkBaseline(refs)).F1,
		},
	}}
}

// E16Classify reproduces the heterogeneous-network classification
// comparison: typed propagation vs homogeneous propagation vs majority
// on DBLP author areas and Flickr photo categories.
func E16Classify(seed int64) []Row {
	var rows []Row
	// DBLP: seed papers, classify everything.
	c := dblp.Generate(stats.NewRNG(seed), DefaultDBLP())
	rng := stats.NewRNG(seed + 1)
	seeds := classify.SampleSeeds(rng, dblp.TypePaper, c.PaperArea, c.Areas(), 10)
	seeded := map[int]bool{}
	for _, s := range seeds {
		seeded[s.ID] = true
	}
	typed := classify.Propagate(c.Net, c.Areas(), seeds, classify.Options{})
	homog := classify.PropagateHomogeneous(c.Net, c.Areas(), seeds, classify.Options{})
	maj := classify.MajorityBaseline(c.Areas(), seeds, c.Net.Count(dblp.TypePaper))
	rows = append(rows, Row{
		Label:   "DBLP paper areas (10 seeds/class)",
		Columns: []string{"typed", "homogeneous", "majority"},
		Values: []float64{
			unlabeledAcc(c.PaperArea, classify.Labels(typed[dblp.TypePaper]), seeded),
			unlabeledAcc(c.PaperArea, classify.Labels(homog[dblp.TypePaper]), seeded),
			unlabeledAcc(c.PaperArea, maj, seeded),
		},
	})
	// Flickr tagging graph.
	fc := flickr.Generate(stats.NewRNG(seed+2), flickr.Config{Photos: 800})
	rng2 := stats.NewRNG(seed + 3)
	fseeds := classify.SampleSeeds(rng2, flickr.TypePhoto, fc.PhotoCat, fc.Categories(), 12)
	fseeded := map[int]bool{}
	for _, s := range fseeds {
		fseeded[s.ID] = true
	}
	ftyped := classify.Propagate(fc.Net, fc.Categories(), fseeds, classify.Options{})
	fhomog := classify.PropagateHomogeneous(fc.Net, fc.Categories(), fseeds, classify.Options{})
	fmaj := classify.MajorityBaseline(fc.Categories(), fseeds, fc.Net.Count(flickr.TypePhoto))
	rows = append(rows, Row{
		Label:   "Flickr photo categories (12 seeds/class)",
		Columns: []string{"typed", "homogeneous", "majority"},
		Values: []float64{
			unlabeledAcc(fc.PhotoCat, classify.Labels(ftyped[flickr.TypePhoto]), fseeded),
			unlabeledAcc(fc.PhotoCat, classify.Labels(fhomog[flickr.TypePhoto]), fseeded),
			unlabeledAcc(fc.PhotoCat, fmaj, fseeded),
		},
	})
	return rows
}

func unlabeledAcc(truthL, pred []int, skip map[int]bool) float64 {
	hit, total := 0, 0
	for i := range truthL {
		if skip[i] {
			continue
		}
		total++
		if truthL[i] == pred[i] {
			hit++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// SparseMatrixFromBipartite is a small helper exposed for benches.
func SparseMatrixFromBipartite(b *hin.Bipartite) *sparse.Matrix { return b.W }
