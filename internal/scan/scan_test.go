package scan

import (
	"math"
	"testing"

	"hinet/internal/eval"
	"hinet/internal/graph"
	"hinet/internal/netgen"
	"hinet/internal/stats"
)

// twoCliquesBridge builds two 4-cliques {0..3} and {5..8} joined through
// bridge node 4, plus an isolated pendant 9 hanging off node 0.
func twoCliquesBridge() *graph.Graph {
	g := graph.New(10, false)
	clique := func(vs []int) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				g.AddEdge(vs[i], vs[j], 1)
			}
		}
	}
	clique([]int{0, 1, 2, 3})
	clique([]int{5, 6, 7, 8})
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(0, 9, 1)
	return g
}

func TestSigmaIdenticalNeighborhoods(t *testing.T) {
	g := graph.New(2, false)
	g.AddEdge(0, 1, 1)
	// Γ[0] = {0,1}, Γ[1] = {0,1} → σ = 2/2 = 1.
	if s := Sigma(g, 0, 1); math.Abs(s-1) > 1e-12 {
		t.Errorf("σ = %v, want 1", s)
	}
}

func TestSigmaDisjoint(t *testing.T) {
	g := graph.New(4, false)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if s := Sigma(g, 0, 2); s != 0 {
		t.Errorf("σ disjoint = %v", s)
	}
}

func TestRunFindsTwoCliques(t *testing.T) {
	g := twoCliquesBridge()
	r := Run(g, Options{Epsilon: 0.7, Mu: 3})
	if r.Clusters != 2 {
		t.Fatalf("clusters = %d, want 2", r.Clusters)
	}
	// All of each clique in one cluster.
	for _, v := range []int{1, 2, 3} {
		if r.Cluster[v] != r.Cluster[0] {
			t.Errorf("clique 1 split at node %d", v)
		}
	}
	for _, v := range []int{6, 7, 8} {
		if r.Cluster[v] != r.Cluster[5] {
			t.Errorf("clique 2 split at node %d", v)
		}
	}
	if r.Cluster[0] == r.Cluster[5] {
		t.Error("cliques merged")
	}
}

func TestHubAndOutlierRoles(t *testing.T) {
	g := twoCliquesBridge()
	r := Run(g, Options{Epsilon: 0.7, Mu: 3})
	if r.Cluster[4] >= 0 || r.Role[4] != RoleHub {
		t.Errorf("node 4 should be a hub; cluster=%d role=%d", r.Cluster[4], r.Role[4])
	}
	if r.Cluster[9] >= 0 || r.Role[9] != RoleOutlier {
		t.Errorf("node 9 should be an outlier; cluster=%d role=%d", r.Cluster[9], r.Role[9])
	}
}

func TestPlantedPartitionRecovery(t *testing.T) {
	rng := stats.NewRNG(1)
	g, truth := netgen.PlantedPartition(rng, 3, 30, 0.5, 0.02)
	r := Run(g, Options{Epsilon: 0.45, Mu: 3})
	// Evaluate only member nodes (SCAN may leave a few unclassified).
	var pt, pp []int
	for v := range truth {
		if r.Cluster[v] >= 0 {
			pt = append(pt, truth[v])
			pp = append(pp, r.Cluster[v])
		}
	}
	if len(pt) < 60 {
		t.Fatalf("too few members: %d", len(pt))
	}
	if nmi := eval.NMI(pt, pp); nmi < 0.8 {
		t.Errorf("member NMI = %v", nmi)
	}
}

func TestEpsilonSweepMonotoneMembership(t *testing.T) {
	rng := stats.NewRNG(2)
	g, _ := netgen.PlantedPartition(rng, 2, 40, 0.4, 0.05)
	pts := EpsilonSweep(g, 2, []float64{0.1, 0.5, 0.9})
	if len(pts) != 3 {
		t.Fatal("sweep size wrong")
	}
	// Very high ε excludes most nodes; very low ε includes almost all.
	if pts[0].MemberFrac < pts[2].MemberFrac {
		t.Errorf("member fraction should shrink with ε: %+v", pts)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(0, false)
	r := Run(g, Options{Epsilon: 0.5, Mu: 2})
	if r.Clusters != 0 || len(r.Cluster) != 0 {
		t.Error("empty graph should give empty result")
	}
}

func TestSingletonGraphOutlier(t *testing.T) {
	g := graph.New(1, false)
	r := Run(g, Options{Epsilon: 0.5, Mu: 2})
	if r.Cluster[0] >= 0 || r.Role[0] != RoleOutlier {
		t.Error("isolated node should be an outlier")
	}
}
