// Package scan implements SCAN (Xu et al., KDD'07), the structural
// clustering algorithm for homogeneous networks the tutorial covers in
// §2b.i. Unlike modularity methods, SCAN also labels the nodes that
// belong to no cluster: hubs (bridging several clusters) and outliers.
//
// Structural similarity of adjacent nodes uses closed neighborhoods:
//
//	σ(u,v) = |Γ[u] ∩ Γ[v]| / √(|Γ[u]|·|Γ[v]|)
//
// A node is a core when at least μ neighbors have σ ≥ ε; clusters are
// grown from cores by direct structural reachability.
package scan

import (
	"math"

	"hinet/internal/graph"
)

// Options holds the two SCAN parameters.
type Options struct {
	Epsilon float64 // similarity threshold, typically 0.5–0.8
	Mu      int     // minimum ε-neighborhood size to be a core, typically 2
}

// Node classification constants in Result.Role.
const (
	RoleMember  = iota // belongs to a cluster
	RoleHub            // non-member bridging ≥ 2 clusters
	RoleOutlier        // non-member touching ≤ 1 cluster
)

// Result is a SCAN clustering: cluster ids (−1 for non-members), the
// role of each node, and the number of clusters found.
type Result struct {
	Cluster  []int
	Role     []int
	Clusters int
}

// Sigma returns the structural similarity of u and v in g.
func Sigma(g *graph.Graph, u, v int) float64 {
	nu := g.NeighborSet(u, true)
	nv := g.NeighborSet(v, true)
	inter := intersectSize(nu, nv)
	if inter == 0 {
		return 0
	}
	return float64(inter) / sqrtProd(len(nu), len(nv))
}

// Run executes SCAN over an undirected graph.
func Run(g *graph.Graph, opt Options) Result {
	n := g.N()
	if opt.Mu <= 0 {
		opt.Mu = 2
	}
	// Precompute closed neighborhoods once.
	nbs := make([][]int, n)
	for v := 0; v < n; v++ {
		nbs[v] = g.NeighborSet(v, true)
	}
	sigma := func(u, v int) float64 {
		inter := intersectSize(nbs[u], nbs[v])
		if inter == 0 {
			return 0
		}
		return float64(inter) / sqrtProd(len(nbs[u]), len(nbs[v]))
	}
	// ε-neighborhood: similar *adjacent* nodes (plus self by convention).
	epsNb := make([][]int, n)
	for u := 0; u < n; u++ {
		list := []int{u}
		for _, v := range g.NeighborSet(u, false) {
			if sigma(u, v) >= opt.Epsilon {
				list = append(list, v)
			}
		}
		epsNb[u] = list
	}
	isCore := make([]bool, n)
	for u := 0; u < n; u++ {
		isCore[u] = len(epsNb[u]) >= opt.Mu
	}
	cluster := make([]int, n)
	for i := range cluster {
		cluster[i] = -1
	}
	next := 0
	for u := 0; u < n; u++ {
		if !isCore[u] || cluster[u] >= 0 {
			continue
		}
		// BFS over structurally reachable nodes.
		id := next
		next++
		queue := []int{u}
		cluster[u] = id
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			if !isCore[x] {
				continue // border nodes join but do not expand
			}
			for _, y := range epsNb[x] {
				if cluster[y] < 0 {
					cluster[y] = id
					queue = append(queue, y)
				}
			}
		}
	}
	// Classify non-members.
	role := make([]int, n)
	for v := 0; v < n; v++ {
		if cluster[v] >= 0 {
			role[v] = RoleMember
			continue
		}
		touched := map[int]bool{}
		for _, e := range g.Neighbors(v) {
			if c := cluster[e.To]; c >= 0 {
				touched[c] = true
			}
		}
		if len(touched) >= 2 {
			role[v] = RoleHub
		} else {
			role[v] = RoleOutlier
		}
	}
	return Result{Cluster: cluster, Role: role, Clusters: next}
}

// EpsilonSweep runs SCAN over a grid of ε values and reports the number
// of clusters and non-member count for each — the tuning curve from the
// SCAN paper's parameter study.
type SweepPoint struct {
	Epsilon    float64
	Clusters   int
	Hubs       int
	Outliers   int
	MemberFrac float64
}

// EpsilonSweep evaluates SCAN across the given epsilons.
func EpsilonSweep(g *graph.Graph, mu int, epsilons []float64) []SweepPoint {
	pts := make([]SweepPoint, 0, len(epsilons))
	for _, eps := range epsilons {
		r := Run(g, Options{Epsilon: eps, Mu: mu})
		p := SweepPoint{Epsilon: eps, Clusters: r.Clusters}
		members := 0
		for v := range r.Role {
			switch r.Role[v] {
			case RoleMember:
				members++
			case RoleHub:
				p.Hubs++
			case RoleOutlier:
				p.Outliers++
			}
		}
		if g.N() > 0 {
			p.MemberFrac = float64(members) / float64(g.N())
		}
		pts = append(pts, p)
	}
	return pts
}

func intersectSize(a, b []int) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			c++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return c
}

func sqrtProd(a, b int) float64 {
	return math.Sqrt(float64(a) * float64(b))
}
