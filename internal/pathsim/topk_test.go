// Equivalence tests for the heap-select TopK path: the bounded partial
// selection must reproduce the original full-sort-then-truncate results
// exactly, including the order of score ties.
package pathsim

import (
	"math/rand"
	"sort"
	"testing"

	"hinet/internal/hin"
	"hinet/internal/sparse"
)

// refTopK is the original implementation: collect every candidate of
// row x, full-sort (score descending, ties by id), truncate to k.
func refTopK(ix *Index, x, k int) []Pair {
	if x < 0 || x >= ix.M.Rows() || k <= 0 {
		return nil
	}
	var out []Pair
	ix.M.Row(x, func(y int, v float64) {
		if y == x || v == 0 {
			return
		}
		den := ix.diag[x] + ix.diag[y]
		if den == 0 {
			return
		}
		out = append(out, Pair{ID: y, Score: 2 * v / den})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// tieHeavyIndex builds an index over a random 0/1 bipartite incidence's
// Gram matrix: integer path counts and uniform diagonals produce many
// exactly-equal scores, stressing the tie-ordering contract.
func tieHeavyIndex(rng *rand.Rand, n, features int) *Index {
	var entries []sparse.Coord
	for r := 0; r < n; r++ {
		deg := 1 + rng.Intn(4)
		for i := 0; i < deg; i++ {
			entries = append(entries, sparse.Coord{Row: r, Col: rng.Intn(features), Val: 1})
		}
	}
	m := sparse.NewFromCoords(n, features, entries).Gram()
	ix, err := NewIndexFromMatrixE(m, hin.MetaPath{"x", "f", "x"})
	if err != nil {
		panic(err)
	}
	return ix
}

// TestTopKHeapMatchesFullSort pins the heap selection against the
// full-sort reference on tie-heavy random indexes, across k values
// below, at, and above the row population.
func TestTopKHeapMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		ix := tieHeavyIndex(rng, 30+rng.Intn(120), 4+rng.Intn(12))
		n := ix.Dim()
		for _, k := range []int{0, 1, 2, 5, 10, n, n + 50} {
			for q := 0; q < n; q += 1 + rng.Intn(3) {
				got := ix.TopK(q, k)
				want := refTopK(ix, q, k)
				if len(got) != len(want) {
					t.Fatalf("k=%d q=%d: %d results, want %d", k, q, len(got), len(want))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("k=%d q=%d rank %d: got %+v want %+v (tie order must match)",
							k, q, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// TestTopKEdgeCases pins the degenerate inputs.
func TestTopKEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := tieHeavyIndex(rng, 20, 5)
	if got := ix.TopK(-1, 5); got != nil {
		t.Errorf("negative id: %v", got)
	}
	if got := ix.TopK(ix.Dim(), 5); got != nil {
		t.Errorf("out-of-range id: %v", got)
	}
	if got := ix.TopK(0, 0); len(got) != 0 {
		t.Errorf("k=0: %v", got)
	}
	if got := ix.TopK(0, -3); len(got) != 0 {
		t.Errorf("negative k: %v", got)
	}
}

// TestBatchTopKArena pins that the arena-backed batch path returns the
// same pairs as single queries with mixed in/out-of-range ids and k
// larger than the dimension (the arena clamp).
func TestBatchTopKArena(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ix := tieHeavyIndex(rng, 60, 8)
	queries := []int{-5, 0, 7, 59, 60, 1000, 12, 7}
	for _, k := range []int{1, 3, 100} {
		batch := ix.BatchTopK(queries, k)
		for i, q := range queries {
			want := ix.TopK(q, k)
			if len(batch[i]) != len(want) {
				t.Fatalf("k=%d query %d: %d vs %d results", k, q, len(batch[i]), len(want))
			}
			for j := range want {
				if batch[i][j] != want[j] {
					t.Fatalf("k=%d query %d rank %d: %+v vs %+v", k, q, j, batch[i][j], want[j])
				}
			}
		}
	}
	// k<=0 batches return empty per-query slices.
	for _, k := range []int{0, -1} {
		for i, r := range ix.BatchTopK(queries, k) {
			if len(r) != 0 {
				t.Fatalf("k=%d query %d returned %v", k, i, r)
			}
		}
	}
}

// TestBatchTopKSteadyStateAllocs pins the allocation discipline: one
// batch call performs O(1) allocations (result header + arena),
// independent of batch size and row population.
func TestBatchTopKSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	ix := tieHeavyIndex(rng, 200, 10)
	queries := make([]int, 400)
	for i := range queries {
		queries[i] = i % ix.Dim()
	}
	old := sparse.Parallelism(0)
	sparse.Parallelism(1) // serial: the parallel fan-out adds pool bookkeeping
	defer sparse.Parallelism(old)
	allocs := testing.AllocsPerRun(20, func() {
		ix.BatchTopK(queries, 10)
	})
	if allocs > 4 {
		t.Errorf("BatchTopK allocates %.0f times per batch, want ≤ 4", allocs)
	}
}
