// Package pathsim implements PathSim (Sun et al., cited in the tutorial
// as the top-k similarity frontier, §7b): meta-path-based similarity in
// heterogeneous information networks. For a symmetric meta path P (e.g.
// author–paper–venue–paper–author), with commuting matrix M = W_P:
//
//	s(x, y) = 2·M[x][y] / (M[x][x] + M[y][y])
//
// PathSim favors *peers* — objects that are both strongly connected and
// of comparable visibility — where random-walk measures (Personalized
// PageRank) drift toward high-degree hubs and SimRank toward obscure
// low-degree look-alikes. TopK answers single-source queries.
package pathsim

import (
	"cmp"
	"context"
	"fmt"
	"math/bits"
	"slices"

	"hinet/internal/hin"
	"hinet/internal/sparse"
	"hinet/internal/stats"
)

// Index is a prepared PathSim index for one symmetric meta path: the
// commuting matrix plus its diagonal. Build it once (the commuting
// matrix product is the expensive part) and answer any number of Sim /
// TopK / BatchTopK queries against it concurrently — all query methods
// are read-only, so an Index is safe for unsynchronized sharing, which
// is how the serving layer (internal/serve) holds one per snapshot.
type Index struct {
	Path hin.MetaPath
	M    *sparse.Matrix
	diag []float64
}

// Dim returns the number of objects the index covers (the order of the
// commuting matrix).
func (ix *Index) Dim() int { return ix.M.Rows() }

// NNZ returns the stored nonzeros of the commuting matrix — the memory
// and scan cost the prebuilt index pays to make queries row-local.
func (ix *Index) NNZ() int { return ix.M.NNZ() }

// NewIndex builds the commuting matrix for a symmetric meta path via
// the network's meta-path engine (planned order, Gram factorization,
// cached intermediates). It panics on invalid paths; NewIndexE returns
// an error instead.
func NewIndex(n *hin.Network, path hin.MetaPath) *Index {
	ix, err := NewIndexE(n, path)
	if err != nil {
		panic("pathsim: " + err.Error())
	}
	return ix
}

// NewIndexE is the non-panicking NewIndex: the constructor the serving
// layer uses to turn client-supplied meta-paths into indexes (or 400s).
func NewIndexE(n *hin.Network, path hin.MetaPath) (*Index, error) {
	return NewIndexCtx(context.Background(), n, path)
}

// ValidatePath checks that a meta path can back a PathSim index:
// symmetric (the similarity definition needs M[x][x] diagonals on one
// object type) and at least three types long. Exported so the serving
// tier validates client paths identically whether or not it builds an
// index locally — the error text is part of the HTTP contract the
// replay harness digests.
func ValidatePath(path hin.MetaPath) error {
	if !path.Symmetric() || len(path) < 3 {
		return fmt.Errorf("meta path must be symmetric with length >= 3, got %q", path.String())
	}
	return nil
}

// NewIndexCtx is NewIndexE with cooperative cancellation threaded into
// the commuting-matrix materialization: a dead caller (deadline hit,
// client gone) stops the SpGEMM chain at its next row-block checkpoint
// and gets ctx.Err() back.
func NewIndexCtx(ctx context.Context, n *hin.Network, path hin.MetaPath) (*Index, error) {
	if err := ValidatePath(path); err != nil {
		return nil, err
	}
	m, err := n.CommutingMatrixCtx(ctx, path)
	if err != nil {
		return nil, err
	}
	return &Index{Path: path, M: m, diag: m.Diagonal()}, nil
}

// NewIndexFromMatrix wraps a precomputed commuting matrix (must be
// square; callers guarantee it corresponds to a symmetric path). It
// panics on non-square input; NewIndexFromMatrixE returns an error.
func NewIndexFromMatrix(m *sparse.Matrix, path hin.MetaPath) *Index {
	ix, err := NewIndexFromMatrixE(m, path)
	if err != nil {
		panic("pathsim: " + err.Error())
	}
	return ix
}

// NewIndexFromMatrixE wraps a precomputed commuting matrix, returning
// an error when it is not square.
func NewIndexFromMatrixE(m *sparse.Matrix, path hin.MetaPath) (*Index, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("commuting matrix must be square, got %dx%d", m.Rows(), m.Cols())
	}
	return &Index{Path: path, M: m, diag: m.Diagonal()}, nil
}

// inRange reports whether x is a valid object id for this index. Query
// methods treat out-of-range ids as "no results" rather than panicking,
// so a stray client id can never take down a serving process.
func (ix *Index) inRange(x int) bool { return x >= 0 && x < ix.M.Rows() }

// Sim returns the PathSim score s(x, y) ∈ [0, 1]. Out-of-range ids
// score 0.
func (ix *Index) Sim(x, y int) float64 {
	if !ix.inRange(x) || !ix.inRange(y) {
		return 0
	}
	den := ix.diag[x] + ix.diag[y]
	if den == 0 {
		return 0
	}
	return 2 * ix.M.At(x, y) / den
}

// Pair is a scored query answer.
type Pair struct {
	ID    int
	Score float64
}

// WorsePair reports whether a ranks strictly below b in the top-k
// order (score descending, ties by ascending id): a loses on a lower
// score, or on a higher id at an equal score. It is the strict total
// order every top-k selection in this package uses with
// stats.BoundedOffer; the cluster coordinator merges per-shard partial
// answers under the same order, which is what makes merged results
// bitwise-identical to single-index ones.
func WorsePair(a, b Pair) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// ComparePairs is the top-k output order for slices.SortFunc: score
// descending, ties by ascending id — the sort dual of WorsePair.
func ComparePairs(a, b Pair) int {
	if a.Score != b.Score {
		return cmp.Compare(b.Score, a.Score)
	}
	return cmp.Compare(a.ID, b.ID)
}

// topKInto is TopK writing its heap (and result) into dst's backing
// array: a bounded partial selection (stats.BoundedOffer min-heap,
// worst at root). The surviving ≤ k pairs are then sorted, which
// reproduces the full-sort-then-truncate order exactly — ties included
// — at O(m·log k) instead of O(m·log m) for a population-m row, with
// no candidate buffer proportional to the row size.
func (ix *Index) topKInto(x, k int, dst []Pair) []Pair {
	if !ix.inRange(x) || k <= 0 {
		return nil
	}
	h := dst[:0]
	dx := ix.diag[x]
	ix.M.Row(x, func(y int, v float64) {
		if y == x || v == 0 {
			return
		}
		den := dx + ix.diag[y]
		if den == 0 {
			return
		}
		h = stats.BoundedOffer(h, k, Pair{ID: y, Score: 2 * v / den}, WorsePair)
	})
	slices.SortFunc(h, ComparePairs)
	return h
}

// TopK returns the k most PathSim-similar objects to x (excluding x),
// descending, ties by id. Only objects sharing at least one path
// instance with x can score above 0, so the scan touches just row x;
// a bounded heap selects the k best without sorting the whole row.
// An out-of-range x returns no results.
func (ix *Index) TopK(x, k int) []Pair {
	return ix.topKInto(x, k, nil)
}

// BatchTopK answers one TopK query per entry of xs, fanning the
// queries out over the shared sparse worker pool. Queries only read the
// immutable commuting matrix, so they parallelize perfectly; this is
// the bulk entry point for serving many similarity queries at once.
// All result slices are carved from one arena sized by each query's
// true result bound — min(k, row population) — so a client-supplied
// huge k cannot inflate the batch beyond its actual result mass, and
// the heap selection works in place inside each query's segment: a
// batch performs O(1) allocations regardless of batch size or row
// population. (Result slices therefore share one backing array; copy a
// slice before retaining it long-term, or the whole batch's arena
// stays reachable.) The work estimate includes the per-query selection
// (≈ m·log k on the row population m), not just the row scan, so
// medium batches of dense-row queries cross the pool's serial
// threshold as their real cost warrants. Out-of-range entries of xs
// yield empty result slices, like TopK.
func (ix *Index) BatchTopK(xs []int, k int) [][]Pair {
	out, _ := ix.BatchTopKCtx(context.Background(), xs, k)
	return out
}

// BatchTopKCtx is BatchTopK with cooperative cancellation: the query
// fan-out polls ctx between blocks (sparse.ParRangeCtx), so a batch
// whose callers have all given up stops burning pool workers. On
// cancellation it returns ctx.Err() and the partial results must be
// discarded. With a non-cancelable ctx it is exactly BatchTopK.
func (ix *Index) BatchTopKCtx(ctx context.Context, xs []int, k int) ([][]Pair, error) {
	out := make([][]Pair, len(xs))
	rows := ix.M.Rows()
	if k <= 0 || rows == 0 {
		return out, nil
	}
	offsets := make([]int, len(xs)+1)
	for i, x := range xs {
		need := 0
		if x >= 0 && x < rows {
			if need = ix.M.RowNNZ(x); need > k {
				need = k
			}
		}
		offsets[i+1] = offsets[i] + need
	}
	arena := make([]Pair, offsets[len(xs)])
	avg := ix.M.NNZ() / rows
	perQuery := (1 + avg) * (1 + bits.Len(uint(min(k, rows))))
	err := sparse.ParRangeCtx(ctx, len(xs), len(xs)*perQuery, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = ix.topKInto(xs[i], k, arena[offsets[i]:offsets[i]:offsets[i+1]])
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AllScores materializes the full similarity row of x (dense), useful
// for metric comparison against baselines. An out-of-range x returns
// nil.
func (ix *Index) AllScores(x int) []float64 {
	if !ix.inRange(x) {
		return nil
	}
	scores := make([]float64, ix.M.Rows())
	ix.M.Row(x, func(y int, v float64) {
		den := ix.diag[x] + ix.diag[y]
		if den > 0 {
			scores[y] = 2 * v / den
		}
	})
	scores[x] = 1
	return scores
}
