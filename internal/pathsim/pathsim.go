// Package pathsim implements PathSim (Sun et al., cited in the tutorial
// as the top-k similarity frontier, §7b): meta-path-based similarity in
// heterogeneous information networks. For a symmetric meta path P (e.g.
// author–paper–venue–paper–author), with commuting matrix M = W_P:
//
//	s(x, y) = 2·M[x][y] / (M[x][x] + M[y][y])
//
// PathSim favors *peers* — objects that are both strongly connected and
// of comparable visibility — where random-walk measures (Personalized
// PageRank) drift toward high-degree hubs and SimRank toward obscure
// low-degree look-alikes. TopK answers single-source queries.
package pathsim

import (
	"fmt"
	"math/bits"
	"sort"

	"hinet/internal/hin"
	"hinet/internal/sparse"
)

// Index is a prepared PathSim index for one symmetric meta path: the
// commuting matrix plus its diagonal. Build it once (the commuting
// matrix product is the expensive part) and answer any number of Sim /
// TopK / BatchTopK queries against it concurrently — all query methods
// are read-only, so an Index is safe for unsynchronized sharing, which
// is how the serving layer (internal/serve) holds one per snapshot.
type Index struct {
	Path hin.MetaPath
	M    *sparse.Matrix
	diag []float64
}

// Dim returns the number of objects the index covers (the order of the
// commuting matrix).
func (ix *Index) Dim() int { return ix.M.Rows() }

// NNZ returns the stored nonzeros of the commuting matrix — the memory
// and scan cost the prebuilt index pays to make queries row-local.
func (ix *Index) NNZ() int { return ix.M.NNZ() }

// NewIndex builds the commuting matrix for a symmetric meta path via
// the network's meta-path engine (planned order, Gram factorization,
// cached intermediates). It panics on invalid paths; NewIndexE returns
// an error instead.
func NewIndex(n *hin.Network, path hin.MetaPath) *Index {
	ix, err := NewIndexE(n, path)
	if err != nil {
		panic("pathsim: " + err.Error())
	}
	return ix
}

// NewIndexE is the non-panicking NewIndex: the constructor the serving
// layer uses to turn client-supplied meta-paths into indexes (or 400s).
func NewIndexE(n *hin.Network, path hin.MetaPath) (*Index, error) {
	if !path.Symmetric() || len(path) < 3 {
		return nil, fmt.Errorf("meta path must be symmetric with length >= 3, got %q", path.String())
	}
	m, err := n.CommutingMatrixE(path)
	if err != nil {
		return nil, err
	}
	return &Index{Path: path, M: m, diag: m.Diagonal()}, nil
}

// NewIndexFromMatrix wraps a precomputed commuting matrix (must be
// square; callers guarantee it corresponds to a symmetric path). It
// panics on non-square input; NewIndexFromMatrixE returns an error.
func NewIndexFromMatrix(m *sparse.Matrix, path hin.MetaPath) *Index {
	ix, err := NewIndexFromMatrixE(m, path)
	if err != nil {
		panic("pathsim: " + err.Error())
	}
	return ix
}

// NewIndexFromMatrixE wraps a precomputed commuting matrix, returning
// an error when it is not square.
func NewIndexFromMatrixE(m *sparse.Matrix, path hin.MetaPath) (*Index, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("commuting matrix must be square, got %dx%d", m.Rows(), m.Cols())
	}
	return &Index{Path: path, M: m, diag: m.Diagonal()}, nil
}

// inRange reports whether x is a valid object id for this index. Query
// methods treat out-of-range ids as "no results" rather than panicking,
// so a stray client id can never take down a serving process.
func (ix *Index) inRange(x int) bool { return x >= 0 && x < ix.M.Rows() }

// Sim returns the PathSim score s(x, y) ∈ [0, 1]. Out-of-range ids
// score 0.
func (ix *Index) Sim(x, y int) float64 {
	if !ix.inRange(x) || !ix.inRange(y) {
		return 0
	}
	den := ix.diag[x] + ix.diag[y]
	if den == 0 {
		return 0
	}
	return 2 * ix.M.At(x, y) / den
}

// Pair is a scored query answer.
type Pair struct {
	ID    int
	Score float64
}

// TopK returns the k most PathSim-similar objects to x (excluding x),
// descending, ties by id. Only objects sharing at least one path
// instance with x can score above 0, so the scan touches just row x.
// An out-of-range x returns no results.
func (ix *Index) TopK(x, k int) []Pair {
	if !ix.inRange(x) {
		return nil
	}
	var out []Pair
	ix.M.Row(x, func(y int, v float64) {
		if y == x || v == 0 {
			return
		}
		den := ix.diag[x] + ix.diag[y]
		if den == 0 {
			return
		}
		out = append(out, Pair{ID: y, Score: 2 * v / den})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// BatchTopK answers one TopK query per entry of xs, fanning the
// queries out over the shared sparse worker pool. Queries only read the
// immutable commuting matrix, so they parallelize perfectly; this is
// the bulk entry point for serving many similarity queries at once.
// The work estimate includes the per-query sort (≈ m·log m on the row
// population m), not just the row scan, so medium batches of dense-row
// queries cross the pool's serial threshold as their real cost warrants.
// Out-of-range entries of xs yield empty result slices, like TopK.
func (ix *Index) BatchTopK(xs []int, k int) [][]Pair {
	out := make([][]Pair, len(xs))
	rows := ix.M.Rows()
	avg := 0
	if rows > 0 {
		avg = ix.M.NNZ() / rows
	}
	perQuery := (1 + avg) * (1 + bits.Len(uint(avg)))
	sparse.ParRange(len(xs), len(xs)*perQuery, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = ix.TopK(xs[i], k)
		}
	})
	return out
}

// AllScores materializes the full similarity row of x (dense), useful
// for metric comparison against baselines. An out-of-range x returns
// nil.
func (ix *Index) AllScores(x int) []float64 {
	if !ix.inRange(x) {
		return nil
	}
	scores := make([]float64, ix.M.Rows())
	ix.M.Row(x, func(y int, v float64) {
		den := ix.diag[x] + ix.diag[y]
		if den > 0 {
			scores[y] = 2 * v / den
		}
	})
	scores[x] = 1
	return scores
}
