package pathsim

import (
	"context"
	"errors"
	"testing"
)

// TestBatchTopKCtxMatchesBatchTopK: a live context is a no-op.
func TestBatchTopKCtxMatchesBatchTopK(t *testing.T) {
	ix := NewIndex(toyNet(), apvpa)
	queries := []int{0, 1, 2, 3}
	want := ix.BatchTopK(queries, 3)
	got, err := ix.BatchTopKCtx(context.Background(), queries, 3)
	if err != nil {
		t.Fatalf("BatchTopKCtx: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("query %d: %d pairs, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("query %d pair %d: %+v, want %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestBatchTopKCtxCancelled: a dead context aborts the batch with its
// error and no partial results.
func TestBatchTopKCtxCancelled(t *testing.T) {
	ix := NewIndex(toyNet(), apvpa)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := ix.BatchTopKCtx(ctx, []int{0, 1, 2, 3}, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("got partial results %v on cancellation", out)
	}
}

// TestNewIndexCtxCancelled: a dead context stops the commuting-matrix
// materialization behind an on-demand index build.
func TestNewIndexCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if ix, err := NewIndexCtx(ctx, toyNet(), apvpa); !errors.Is(err, context.Canceled) || ix != nil {
		t.Fatalf("NewIndexCtx = (%v, %v), want (nil, context.Canceled)", ix, err)
	}
	// The failed build must not poison the network's engine cache.
	if ix, err := NewIndexCtx(context.Background(), toyNet(), apvpa); err != nil || ix == nil {
		t.Fatalf("retry NewIndexCtx = (%v, %v), want success", ix, err)
	}
}
