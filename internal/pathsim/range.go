// Range-restricted PathSim indexes: the shard-local building block of
// the scatter-gather serving tier (internal/cluster). A RangeIndex
// owns the candidate range [Lo, Hi) of one symmetric meta path — the
// columns [Lo, Hi) of the commuting matrix plus the full diagonal — and
// answers partial top-k queries for ANY query object x, restricted to
// candidates it owns. Because the sliced columns carry the exact
// float64 entries of the full matrix (sparse.Matrix.ColSlice preserves
// values; the engine's range build reproduces them bitwise, see
// metapath.Engine.CommuteColsCtx), a partial answer's scores are
// bitwise-identical to the matching slice of a full-index scan, and
// MergeTopK reassembles the global answer exactly.

package pathsim

import (
	"context"
	"fmt"
	"math/bits"
	"slices"

	"hinet/internal/hin"
	"hinet/internal/sparse"
	"hinet/internal/stats"
)

// RangeIndex is one shard's slice of a PathSim index: candidates
// [Lo, Hi) of the path's endpoint type, scored against any query
// object. All query methods are read-only and safe for unsynchronized
// concurrent use, like Index.
type RangeIndex struct {
	Path hin.MetaPath
	lo   int
	hi   int
	cols *sparse.Matrix // dim × (hi-lo): columns [lo, hi) of the commuting matrix
	diag []float64      // full diagonal (PathSim denominators for every object)
}

// NewRangeIndexCtx builds the [lo, hi) slice of a PathSim index over a
// symmetric meta path without materializing the full commuting matrix
// for Gram-factorable paths (the common case): the engine multiplies
// the cached half-path product against its own row slice and derives
// the full diagonal from per-row norms. Entries are bitwise-identical
// to slicing a full NewIndexCtx build.
func NewRangeIndexCtx(ctx context.Context, n *hin.Network, path hin.MetaPath, lo, hi int) (*RangeIndex, error) {
	if err := ValidatePath(path); err != nil {
		return nil, err
	}
	cols, diag, err := n.CommutingColsCtx(ctx, path, lo, hi)
	if err != nil {
		return nil, err
	}
	return &RangeIndex{Path: path, lo: lo, hi: hi, cols: cols, diag: diag}, nil
}

// Range slices a full index into the candidate range [lo, hi) — the
// reference constructor the equivalence tests compare the engine-built
// ranges against, and the cheap path when a full index already exists.
// The diagonal is shared (it is immutable).
func (ix *Index) Range(lo, hi int) (*RangeIndex, error) {
	if lo < 0 || hi < lo || hi > ix.Dim() {
		return nil, fmt.Errorf("range [%d,%d) out of [0,%d)", lo, hi, ix.Dim())
	}
	return &RangeIndex{Path: ix.Path, lo: lo, hi: hi, cols: ix.M.ColSlice(lo, hi), diag: ix.diag}, nil
}

// Lo returns the first candidate id this slice owns.
func (ix *RangeIndex) Lo() int { return ix.lo }

// Hi returns one past the last candidate id this slice owns.
func (ix *RangeIndex) Hi() int { return ix.hi }

// Rows returns the number of candidate objects this slice owns.
func (ix *RangeIndex) Rows() int { return ix.hi - ix.lo }

// Dim returns the number of objects the underlying index covers — the
// valid query-id range, which is NOT restricted to [Lo, Hi).
func (ix *RangeIndex) Dim() int { return ix.cols.Rows() }

// NNZ returns the stored nonzeros of the slice — the shard's share of
// the full index's memory and scan cost (partition-skew signal).
func (ix *RangeIndex) NNZ() int { return ix.cols.NNZ() }

// Sim returns s(x, y) for a candidate y in [Lo, Hi); out-of-range ids
// (either side) score 0, like Index.Sim.
func (ix *RangeIndex) Sim(x, y int) float64 {
	if x < 0 || x >= ix.Dim() || y < ix.lo || y >= ix.hi {
		return 0
	}
	den := ix.diag[x] + ix.diag[y]
	if den == 0 {
		return 0
	}
	return 2 * ix.cols.At(x, y-ix.lo) / den
}

// topKInto is the partial-selection core: scan the query's sliced row
// (candidates ascending), bounded-heap the k best, sort. The visited
// entries are exactly the full row-scan's entries with Lo ≤ y < Hi, in
// the same relative order and with the same float64 scores, so the
// result is the full TopK answer filtered to this range.
func (ix *RangeIndex) topKInto(x, k int, dst []Pair) []Pair {
	if x < 0 || x >= ix.Dim() || k <= 0 {
		return nil
	}
	h := dst[:0]
	dx := ix.diag[x]
	ix.cols.Row(x, func(yl int, v float64) {
		y := ix.lo + yl
		if y == x || v == 0 {
			return
		}
		den := dx + ix.diag[y]
		if den == 0 {
			return
		}
		h = stats.BoundedOffer(h, k, Pair{ID: y, Score: 2 * v / den}, WorsePair)
	})
	slices.SortFunc(h, ComparePairs)
	return h
}

// TopK returns the k most similar candidates to x among [Lo, Hi)
// (excluding x itself), global ids, score descending, ties by id. An
// out-of-range x returns no results.
func (ix *RangeIndex) TopK(x, k int) []Pair {
	return ix.topKInto(x, k, nil)
}

// BatchTopK answers one partial TopK per entry of xs over the shared
// worker pool, mirroring Index.BatchTopK: one arena sized by each
// query's true result bound, O(1) allocations per batch, result slices
// aliasing the arena.
func (ix *RangeIndex) BatchTopK(xs []int, k int) [][]Pair {
	out, _ := ix.BatchTopKCtx(context.Background(), xs, k)
	return out
}

// BatchTopKCtx is BatchTopK with cooperative cancellation between
// row blocks; on cancellation the partial results must be discarded.
func (ix *RangeIndex) BatchTopKCtx(ctx context.Context, xs []int, k int) ([][]Pair, error) {
	out := make([][]Pair, len(xs))
	rows := ix.Dim()
	if k <= 0 || rows == 0 || ix.Rows() == 0 {
		return out, nil
	}
	offsets := make([]int, len(xs)+1)
	for i, x := range xs {
		need := 0
		if x >= 0 && x < rows {
			if need = ix.cols.RowNNZ(x); need > k {
				need = k
			}
		}
		offsets[i+1] = offsets[i] + need
	}
	arena := make([]Pair, offsets[len(xs)])
	avg := ix.cols.NNZ() / rows
	perQuery := (1 + avg) * (1 + bits.Len(uint(min(k, rows))))
	err := sparse.ParRangeCtx(ctx, len(xs), len(xs)*perQuery, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = ix.topKInto(xs[i], k, arena[offsets[i]:offsets[i]:offsets[i+1]])
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MergeTopK merges per-range partial top-k lists into the global
// top-k, writing into dst's backing array: bounded-heap selection over
// the concatenation under WorsePair, sorted with ComparePairs. Any
// global top-k member ranks within the top k of its own range, so as
// long as every partial was selected with the same k over disjoint
// covering ranges, the merge reproduces a single-index TopK exactly —
// scores bitwise, tie order included (the order is strict and total,
// and partial scores are float64-identical to full-scan scores).
func MergeTopK(parts [][]Pair, k int, dst []Pair) []Pair {
	h := dst[:0]
	for _, part := range parts {
		for _, p := range part {
			h = stats.BoundedOffer(h, k, p, WorsePair)
		}
	}
	slices.SortFunc(h, ComparePairs)
	return h
}
