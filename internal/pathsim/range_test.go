package pathsim

import (
	"context"
	"math/rand"
	"testing"

	"hinet/internal/dblp"
	"hinet/internal/hin"
	"hinet/internal/stats"
)

// pairsBitwiseEqual fails unless got and want match exactly: same
// length, same ids in the same order, scores bitwise-identical.
func pairsBitwiseEqual(t *testing.T, want, got []Pair, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
			t.Fatalf("%s: pair %d = {%d, %v}, want {%d, %v} (bitwise)",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// cutRanges splits [0, dim) into parts disjoint covering ranges —
// uniform when skew is false, heavily unbalanced (including empty
// ranges) when true.
func cutRanges(rng *rand.Rand, dim, parts int, skew bool) [][2]int {
	bounds := make([]int, parts+1)
	bounds[parts] = dim
	if skew {
		for i := 1; i < parts; i++ {
			bounds[i] = rng.Intn(dim + 1)
		}
		// Sort the interior cut points; duplicates yield empty ranges.
		for i := 1; i < parts; i++ {
			for j := i; j > 1 && bounds[j] < bounds[j-1]; j-- {
				bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
			}
		}
	} else {
		for i := 1; i < parts; i++ {
			bounds[i] = i * dim / parts
		}
	}
	out := make([][2]int, parts)
	for i := 0; i < parts; i++ {
		out[i] = [2]int{bounds[i], bounds[i+1]}
	}
	return out
}

// TestRangeTopKMergeMatchesFull is the core sharding equivalence
// property: for random corpora, shard counts and partition shapes —
// uniform and skewed, engine-built ranges and matrix slices alike —
// merging per-range partial TopK answers must reproduce the full
// index's answer bitwise, tie order included.
func TestRangeTopKMergeMatchesFull(t *testing.T) {
	path := hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue, dblp.TypePaper, dblp.TypeAuthor}
	for _, seed := range []int64{1, 7} {
		c := dblp.Generate(stats.NewRNG(seed), dblp.Config{
			VenuesPerArea:  3,
			AuthorsPerArea: 30,
			TermsPerArea:   20,
			SharedTerms:    8,
			Papers:         250,
		})
		full := NewIndex(c.Net, path)
		dim := full.Dim()
		rng := rand.New(rand.NewSource(seed * 101))
		for _, parts := range []int{1, 2, 3, 8} {
			for _, skewed := range []bool{false, true} {
				ranges := cutRanges(rng, dim, parts, skewed)
				slices := make([]*RangeIndex, parts)
				built := make([]*RangeIndex, parts)
				for i, r := range ranges {
					var err error
					if slices[i], err = full.Range(r[0], r[1]); err != nil {
						t.Fatal(err)
					}
					if built[i], err = NewRangeIndexCtx(context.Background(), c.Net, path, r[0], r[1]); err != nil {
						t.Fatal(err)
					}
					if slices[i].NNZ() != built[i].NNZ() {
						t.Fatalf("seed %d parts %d range %v: engine build nnz %d, slice nnz %d",
							seed, parts, r, built[i].NNZ(), slices[i].NNZ())
					}
				}
				for _, k := range []int{1, 10, dim} {
					for trial := 0; trial < 15; trial++ {
						x := rng.Intn(dim)
						want := full.TopK(x, k)
						for name, ixs := range map[string][]*RangeIndex{"slice": slices, "engine": built} {
							partials := make([][]Pair, parts)
							for i, ix := range ixs {
								partials[i] = ix.TopK(x, k)
							}
							got := MergeTopK(partials, k, nil)
							pairsBitwiseEqual(t, want, got,
								"seed "+string(rune('0'+seed))+" "+name)
						}
					}
				}
			}
		}
	}
}

// TestRangeBatchTopKMatchesSingles checks the arena batch path against
// per-query TopK, including out-of-range queries.
func TestRangeBatchTopKMatchesSingles(t *testing.T) {
	c := dblp.Generate(stats.NewRNG(3), dblp.Config{
		VenuesPerArea:  2,
		AuthorsPerArea: 25,
		TermsPerArea:   15,
		SharedTerms:    5,
		Papers:         200,
	})
	path := hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue, dblp.TypePaper, dblp.TypeAuthor}
	full := NewIndex(c.Net, path)
	dim := full.Dim()
	ix, err := full.Range(dim/4, dim/2)
	if err != nil {
		t.Fatal(err)
	}
	xs := []int{-1, 0, dim / 3, dim - 1, dim, dim / 2}
	for _, k := range []int{0, 5, dim} {
		batch := ix.BatchTopK(xs, k)
		for i, x := range xs {
			pairsBitwiseEqual(t, ix.TopK(x, k), batch[i], "batch entry")
		}
	}
}

// TestRangeSimMatchesFull checks the point lookup against the full
// index inside the owned range and zero outside it.
func TestRangeSimMatchesFull(t *testing.T) {
	full := NewIndex(toyNet(), apvpa)
	ix, err := full.Range(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for x := -1; x <= 4; x++ {
		for y := -1; y <= 4; y++ {
			want := 0.0
			if y >= 1 && y < 3 && x >= 0 && x < 4 {
				want = full.Sim(x, y)
			}
			if got := ix.Sim(x, y); got != want {
				t.Fatalf("Sim(%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
	if ix.Lo() != 1 || ix.Hi() != 3 || ix.Rows() != 2 || ix.Dim() != 4 {
		t.Fatalf("range geometry Lo=%d Hi=%d Rows=%d Dim=%d", ix.Lo(), ix.Hi(), ix.Rows(), ix.Dim())
	}
}

func TestRangeOutOfBounds(t *testing.T) {
	full := NewIndex(toyNet(), apvpa)
	for _, r := range [][2]int{{-1, 2}, {3, 2}, {0, 5}} {
		if _, err := full.Range(r[0], r[1]); err == nil {
			t.Fatalf("Range(%d,%d) should fail", r[0], r[1])
		}
		if _, err := NewRangeIndexCtx(context.Background(), toyNet(), apvpa, r[0], r[1]); err == nil {
			t.Fatalf("NewRangeIndexCtx(%d,%d) should fail", r[0], r[1])
		}
	}
	if _, err := NewRangeIndexCtx(context.Background(), toyNet(), hin.MetaPath{"author", "paper"}, 0, 1); err == nil {
		t.Fatal("asymmetric path should fail validation")
	}
}
