package pathsim

import (
	"math"
	"testing"

	"hinet/internal/dblp"
	"hinet/internal/hin"
	"hinet/internal/sparse"
	"hinet/internal/stats"
)

// toyNet: authors a0,a1 are prolific peers in venue v0; a2 is a small
// author also in v0; a3 publishes only in v1.
func toyNet() *hin.Network {
	n := hin.NewNetwork()
	for i := 0; i < 4; i++ {
		n.AddObject("author", string(rune('a'+i)))
	}
	n.AddObject("venue", "v0")
	n.AddObject("venue", "v1")
	paper := 0
	addPaper := func(author, venue int) {
		p := n.AddAnonymous("paper", 1)
		n.AddLink("paper", p, "author", author, 1)
		n.AddLink("paper", p, "venue", venue, 1)
		paper++
	}
	for i := 0; i < 10; i++ {
		addPaper(0, 0)
	}
	for i := 0; i < 10; i++ {
		addPaper(1, 0)
	}
	addPaper(2, 0)
	for i := 0; i < 3; i++ {
		addPaper(3, 1)
	}
	return n
}

var apvpa = hin.MetaPath{"author", "paper", "venue", "paper", "author"}

func TestSimSelfIsOne(t *testing.T) {
	ix := NewIndex(toyNet(), apvpa)
	for a := 0; a < 4; a++ {
		if ix.diag[a] > 0 {
			if s := ix.Sim(a, a); math.Abs(s-1) > 1e-12 {
				t.Errorf("s(%d,%d) = %v", a, a, s)
			}
		}
	}
}

func TestSimSymmetric(t *testing.T) {
	ix := NewIndex(toyNet(), apvpa)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if math.Abs(ix.Sim(a, b)-ix.Sim(b, a)) > 1e-12 {
				t.Fatalf("asymmetric at (%d,%d)", a, b)
			}
		}
	}
}

func TestPeersBeatUnbalancedNeighbors(t *testing.T) {
	ix := NewIndex(toyNet(), apvpa)
	// a0 and a1 both have 10 papers in v0 — peers. a2 has 1 paper in v0.
	// PathSim: s(a0,a1) > s(a0,a2) despite both sharing the venue.
	if ix.Sim(0, 1) <= ix.Sim(0, 2) {
		t.Errorf("peer score %v should beat unbalanced %v", ix.Sim(0, 1), ix.Sim(0, 2))
	}
	// Disconnected meta-path: zero.
	if ix.Sim(0, 3) != 0 {
		t.Errorf("cross-venue similarity = %v, want 0", ix.Sim(0, 3))
	}
}

func TestTopKOrderAndExclusion(t *testing.T) {
	ix := NewIndex(toyNet(), apvpa)
	top := ix.TopK(0, 3)
	if len(top) != 2 {
		t.Fatalf("topk = %v (a3 unreachable, self excluded)", top)
	}
	if top[0].ID != 1 || top[1].ID != 2 {
		t.Errorf("order = %v, want peer a1 first", top)
	}
	for _, p := range top {
		if p.ID == 0 {
			t.Error("query object must be excluded")
		}
	}
}

func TestAllScoresMatchesSim(t *testing.T) {
	ix := NewIndex(toyNet(), apvpa)
	scores := ix.AllScores(1)
	for y := 0; y < 4; y++ {
		want := ix.Sim(1, y)
		if y == 1 {
			want = 1
		}
		if math.Abs(scores[y]-want) > 1e-12 {
			t.Fatalf("AllScores[%d] = %v, want %v", y, scores[y], want)
		}
	}
}

func TestAsymmetricPathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("asymmetric path should panic")
		}
	}()
	NewIndex(toyNet(), hin.MetaPath{"author", "paper", "venue"})
}

func TestNewIndexFromMatrixValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-square matrix should panic")
		}
	}()
	NewIndexFromMatrix(sparse.NewFromCoords(2, 3, nil), apvpa)
}

func TestOnDBLPCorpusSameAreaPeers(t *testing.T) {
	c := dblp.Generate(stats.NewRNG(1), dblp.Config{
		VenuesPerArea:  3,
		AuthorsPerArea: 40,
		TermsPerArea:   30,
		SharedTerms:    10,
		Papers:         600,
	})
	ix := NewIndex(c.Net, hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue, dblp.TypePaper, dblp.TypeAuthor})
	// For a busy author, most top-10 APVPA peers share the true area.
	pa := c.Net.Relation(dblp.TypePaper, dblp.TypeAuthor)
	deg := make([]float64, c.Net.Count(dblp.TypeAuthor))
	for p := 0; p < pa.Rows(); p++ {
		pa.Row(p, func(a int, v float64) { deg[a] += v })
	}
	query := stats.ArgMax(deg)
	hits := 0
	top := ix.TopK(query, 10)
	if len(top) < 10 {
		t.Fatalf("too few results: %d", len(top))
	}
	for _, p := range top {
		if c.AuthorArea[p.ID] == c.AuthorArea[query] {
			hits++
		}
	}
	if hits < 7 {
		t.Errorf("only %d/10 peers share the query's area", hits)
	}
}

// BatchTopK must return exactly what per-query TopK returns, under
// both the serial fallback and the forced-parallel path.
func TestBatchTopKMatchesTopK(t *testing.T) {
	c := dblp.Generate(stats.NewRNG(2), dblp.Config{
		VenuesPerArea:  3,
		AuthorsPerArea: 25,
		TermsPerArea:   20,
		SharedTerms:    8,
		Papers:         300,
	})
	ix := NewIndex(c.Net, hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue, dblp.TypePaper, dblp.TypeAuthor})
	queries := make([]int, c.Net.Count(dblp.TypeAuthor))
	for i := range queries {
		queries[i] = i
	}
	check := func() {
		t.Helper()
		batch := ix.BatchTopK(queries, 5)
		if len(batch) != len(queries) {
			t.Fatalf("BatchTopK returned %d results for %d queries", len(batch), len(queries))
		}
		for i, q := range queries {
			want := ix.TopK(q, 5)
			if len(batch[i]) != len(want) {
				t.Fatalf("query %d: got %d pairs, want %d", q, len(batch[i]), len(want))
			}
			for j := range want {
				if batch[i][j] != want[j] {
					t.Fatalf("query %d rank %d: got %+v, want %+v", q, j, batch[i][j], want[j])
				}
			}
		}
	}
	check() // default knobs (serial on small indexes)
	oldW := sparse.Parallelism(0)
	oldT := sparse.SerialThreshold(0)
	sparse.Parallelism(4)
	sparse.SerialThreshold(1)
	defer func() {
		sparse.Parallelism(oldW)
		sparse.SerialThreshold(oldT)
	}()
	check() // forced parallel
}

func TestIndexAccessors(t *testing.T) {
	ix := NewIndex(toyNet(), apvpa)
	if ix.Dim() != 4 {
		t.Errorf("Dim = %d, want 4", ix.Dim())
	}
	if ix.NNZ() != ix.M.NNZ() || ix.NNZ() == 0 {
		t.Errorf("NNZ = %d (matrix %d)", ix.NNZ(), ix.M.NNZ())
	}
}
