// Package netclus implements NetClus (Sun, Yu, Han — KDD'09),
// ranking-based clustering for information networks with a *star*
// schema: a center type (papers) whose objects each link to attribute
// objects of several types (authors, venues, terms). Where RankClus
// handles one attribute type, NetClus models the full star and produces
// "net-clusters" — sub-networks with their own conditional rank
// distributions per attribute type.
//
// Generative model: net-cluster k owns a rank distribution p(o | T, k)
// for every attribute type T; a center object d in cluster k generates
// its attribute links independently:
//
//	p(d | k) = Π_T Π_{(o,w) ∈ links_T(d)} p_λ(o | T, k)^w
//
// where p_λ mixes the conditional distribution with a background model
// (the global rank distribution) at rate λ_B, exactly as NetClus smooths
// against the "background cluster". The algorithm alternates:
//
//  1. conditional ranking of attribute objects inside each current
//     net-cluster (authority ranking between the first two attribute
//     types through the center, simple ranking for the rest);
//  2. EM posterior estimation p(k | d) for every center object;
//  3. reassignment of center objects to their argmax cluster.
//
// Attribute objects receive posteriors by propagating the center
// posteriors across their links, which is how the DBLP case study
// labels authors and venues with research areas.
package netclus

import (
	"math"

	"hinet/internal/hin"
	"hinet/internal/rank"
	"hinet/internal/sparse"
	"hinet/internal/stats"
)

// Options configures a NetClus run.
type Options struct {
	K         int     // number of net-clusters (required, ≥ 2)
	LambdaB   float64 // background mixing weight, default 0.2
	EMIter    int     // EM rounds per outer iteration, default 5
	MaxIter   int     // outer iteration cap, default 30
	Authority bool    // authority ranking between attr types 0 and 1 (default simple everywhere)
	Restarts  int     // random restarts, best by log-likelihood; default 1
}

func (o Options) withDefaults() Options {
	if o.LambdaB == 0 {
		o.LambdaB = 0.2
	}
	if o.EMIter == 0 {
		o.EMIter = 5
	}
	if o.MaxIter == 0 {
		o.MaxIter = 30
	}
	if o.Restarts == 0 {
		o.Restarts = 1
	}
	return o
}

// Model is a fitted NetClus model.
type Model struct {
	K int

	// AssignCenter[d] is the hard cluster of center object d;
	// PosteriorCenter[d] the soft K-dim membership (sums to 1).
	AssignCenter    []int
	PosteriorCenter [][]float64

	// RankDist[t][k] is p(o | attribute-type t, cluster k) over the
	// objects of attribute type t (sums to 1).
	RankDist [][][]float64

	// Background[t] is the global rank distribution of type t.
	Background [][]float64

	// AttrPosterior[t][o] is the K-dim posterior of attribute object o,
	// propagated from the centers it links.
	AttrPosterior [][][]float64

	// Prior is the cluster prior p(k) from the final EM pass.
	Prior []float64

	LogLikelihood float64
	Iterations    int
	Converged     bool
}

// AssignAttr returns hard cluster labels for attribute type t.
func (m *Model) AssignAttr(t int) []int {
	out := make([]int, len(m.AttrPosterior[t]))
	for o, p := range m.AttrPosterior[t] {
		out[o] = stats.ArgMax(p)
	}
	return out
}

// TopAttr returns the n top-ranked objects of attribute type t in
// cluster k.
func (m *Model) TopAttr(t, k, n int) []int { return stats.TopK(m.RankDist[t][k], n) }

// Run fits NetClus to a star-schema network.
func Run(rng *stats.RNG, star *hin.Star, opt Options) *Model {
	opt = opt.withDefaults()
	if opt.K < 2 {
		panic("netclus: K must be >= 2")
	}
	var best *Model
	for r := 0; r < opt.Restarts; r++ {
		m := runOnce(rng, star, opt)
		if best == nil || m.LogLikelihood > best.LogLikelihood {
			best = m
		}
	}
	return best
}

func runOnce(rng *stats.RNG, star *hin.Star, opt Options) *Model {
	k := opt.K
	nd := 0
	if len(star.Rel) > 0 {
		nd = star.Rel[0].Rows()
	}
	nt := len(star.Rel)
	m := &Model{K: k}
	if nd == 0 {
		m.Converged = true
		return m
	}

	// Background distributions: global simple rank per attribute type.
	m.Background = make([][]float64, nt)
	for t := 0; t < nt; t++ {
		m.Background[t] = rank.SimpleRanking(star.Rel[t]).Y
	}

	assign := make([]int, nd)
	for d := range assign {
		assign[d] = rng.Intn(k)
	}
	prior := make([]float64, k)
	for i := range prior {
		prior[i] = 1 / float64(k)
	}
	post := make([][]float64, nd)
	for d := range post {
		post[d] = make([]float64, k)
	}
	prev := make([]int, nd)

	// Work estimate for one EM posterior pass: every link of every
	// center object is scored against all k clusters.
	emWork := 0
	for t := 0; t < nt; t++ {
		emWork += star.Rel[t].NNZ() * k
	}

	for it := 1; it <= opt.MaxIter; it++ {
		copy(prev, assign)

		// Step 1: conditional rank distributions per cluster.
		m.RankDist = conditionalRanks(star, assign, k, opt)

		// Step 2: EM over center objects. Posteriors of distinct center
		// objects are independent, so the E-step fans out over the
		// sparse worker pool; the prior M-step re-aggregates serially in
		// object order, keeping the update deterministic.
		for em := 0; em < opt.EMIter; em++ {
			sparse.ParRange(nd, emWork, func(lo, hi int) {
				lp := make([]float64, k)
				for d := lo; d < hi; d++ {
					for c := 0; c < k; c++ {
						lp[c] = math.Log(prior[c] + 1e-300)
					}
					for t := 0; t < nt; t++ {
						star.Rel[t].Row(d, func(o int, w float64) {
							for c := 0; c < k; c++ {
								p := (1-opt.LambdaB)*m.RankDist[t][c][o] + opt.LambdaB*m.Background[t][o]
								lp[c] += w * math.Log(p+1e-300)
							}
						})
					}
					lse := stats.LogSumExp(lp)
					for c := 0; c < k; c++ {
						post[d][c] = math.Exp(lp[c] - lse)
					}
				}
			})
			newPrior := make([]float64, k)
			for d := 0; d < nd; d++ {
				for c := 0; c < k; c++ {
					newPrior[c] += post[d][c]
				}
			}
			for c := 0; c < k; c++ {
				prior[c] = newPrior[c] / float64(nd)
			}
		}

		// Step 3: hard reassignment.
		for d := 0; d < nd; d++ {
			assign[d] = stats.ArgMax(post[d])
		}
		reseedEmpty(rng, assign, k, nd)

		m.Iterations = it
		if equal(prev, assign) {
			m.Converged = true
			break
		}
	}

	// Final ranking pass + likelihood + attribute posteriors.
	m.RankDist = conditionalRanks(star, assign, k, opt)
	m.AssignCenter = assign
	m.PosteriorCenter = post
	m.Prior = prior
	m.LogLikelihood = sparse.ParReduce(nd, emWork, func(lo, hi int) float64 {
		ll := 0.0
		lp := make([]float64, k)
		for d := lo; d < hi; d++ {
			for c := 0; c < k; c++ {
				lp[c] = math.Log(prior[c] + 1e-300)
			}
			for t := 0; t < nt; t++ {
				star.Rel[t].Row(d, func(o int, w float64) {
					for c := 0; c < k; c++ {
						p := (1-opt.LambdaB)*m.RankDist[t][c][o] + opt.LambdaB*m.Background[t][o]
						lp[c] += w * math.Log(p+1e-300)
					}
				})
			}
			ll += stats.LogSumExp(lp)
		}
		return ll
	})

	m.AttrPosterior = make([][][]float64, nt)
	for t := 0; t < nt; t++ {
		no := star.Rel[t].Cols()
		m.AttrPosterior[t] = make([][]float64, no)
		for o := 0; o < no; o++ {
			m.AttrPosterior[t][o] = make([]float64, k)
		}
		for d := 0; d < nd; d++ {
			star.Rel[t].Row(d, func(o int, w float64) {
				for c := 0; c < k; c++ {
					m.AttrPosterior[t][o][c] += w * post[d][c]
				}
			})
		}
		for o := 0; o < no; o++ {
			stats.Normalize(m.AttrPosterior[t][o])
		}
	}
	return m
}

// conditionalRanks computes p(o|T,k) for every attribute type and
// cluster. With opt.Authority and ≥ 2 attribute types, types 0 and 1
// are ranked by authority propagation through the composite
// attr0×attr1 matrix restricted to in-cluster centers; all other types
// use in-cluster simple (degree) ranking, following the NetClus setup
// where authors/venues reinforce each other and terms are counted.
func conditionalRanks(star *hin.Star, assign []int, k int, opt Options) [][][]float64 {
	nt := len(star.Rel)
	out := make([][][]float64, nt)
	members := make([][]int, k)
	for d, c := range assign {
		members[c] = append(members[c], d)
	}
	for t := 0; t < nt; t++ {
		no := star.Rel[t].Cols()
		out[t] = make([][]float64, k)
		for c := 0; c < k; c++ {
			out[t][c] = make([]float64, no)
		}
	}
	// Simple in-cluster degree ranks for every type.
	for t := 0; t < nt; t++ {
		rel := star.Rel[t]
		for d, c := range assign {
			rel.Row(d, func(o int, w float64) {
				out[t][c][o] += w
			})
		}
		for c := 0; c < k; c++ {
			stats.Normalize(out[t][c])
		}
	}
	if opt.Authority && nt >= 2 {
		// Clusters are ranked independently; fan them out over the
		// sparse worker pool (each iteration is itself a chain of
		// parallel kernel calls, which the pool nests safely). The work
		// estimate scales the one-pass link cost by authority ranking's
		// ~100-iteration fixed-point budget.
		sparse.ParRange(k, (star.Rel[0].NNZ()+star.Rel[1].NNZ())*100, func(lo, hi int) {
			for c := lo; c < hi; c++ {
				sub0 := restrictRows(star.Rel[0], members[c])
				sub1 := restrictRows(star.Rel[1], members[c])
				// attr0 × attr1 composite within the cluster.
				comp := sub0.Transpose().Mul(sub1)
				br := rank.AuthorityRanking(comp, nil, rank.AuthorityOptions{})
				copy(out[0][c], br.X)
				copy(out[1][c], br.Y)
			}
		})
	}
	return out
}

func restrictRows(w *sparse.Matrix, rows []int) *sparse.Matrix {
	var entries []sparse.Coord
	for i, r := range rows {
		w.Row(r, func(c int, v float64) {
			entries = append(entries, sparse.Coord{Row: i, Col: c, Val: v})
		})
	}
	return sparse.NewFromCoords(len(rows), w.Cols(), entries)
}

func reseedEmpty(rng *stats.RNG, assign []int, k, n int) {
	counts := make([]int, k)
	for _, c := range assign {
		counts[c]++
	}
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			continue
		}
		// Move one object out of a random multi-member cluster; when no
		// donor exists (fewer centers than clusters) the cluster stays
		// empty.
		start := rng.Intn(n)
		for off := 0; off < n; off++ {
			d := (start + off) % n
			if counts[assign[d]] > 1 {
				counts[assign[d]]--
				assign[d] = c
				counts[c]++
				break
			}
		}
	}
}

func equal(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
