package netclus

import (
	"math"
	"testing"

	"hinet/internal/dblp"
	"hinet/internal/eval"
	"hinet/internal/hin"
	"hinet/internal/stats"
)

func corpus(seed int64) *dblp.Corpus {
	return dblp.Generate(stats.NewRNG(seed), dblp.Config{
		VenuesPerArea:  4,
		AuthorsPerArea: 80,
		TermsPerArea:   60,
		SharedTerms:    30,
		Papers:         800,
		Years:          3,
	})
}

func TestNetClusRecoversPaperAreas(t *testing.T) {
	c := corpus(1)
	m := Run(stats.NewRNG(2), c.Star(), Options{K: 4, Restarts: 2})
	if nmi := eval.NMI(c.PaperArea, m.AssignCenter); nmi < 0.7 {
		t.Errorf("paper NMI = %v", nmi)
	}
}

func TestNetClusVenueAndAuthorPosteriors(t *testing.T) {
	c := corpus(3)
	m := Run(stats.NewRNG(4), c.Star(), Options{K: 4, Restarts: 2})
	// attribute type order: author=0, venue=1, term=2
	if nmi := eval.NMI(c.VenueArea, m.AssignAttr(1)); nmi < 0.7 {
		t.Errorf("venue NMI = %v", nmi)
	}
	if nmi := eval.NMI(c.AuthorArea, m.AssignAttr(0)); nmi < 0.5 {
		t.Errorf("author NMI = %v", nmi)
	}
}

func TestPosteriorRowsNormalized(t *testing.T) {
	c := corpus(5)
	m := Run(stats.NewRNG(6), c.Star(), Options{K: 4})
	for d, p := range m.PosteriorCenter {
		s := 0.0
		for _, v := range p {
			if v < 0 {
				t.Fatalf("negative posterior for paper %d", d)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("paper %d posterior sums to %v", d, s)
		}
	}
	for t2 := range m.AttrPosterior {
		for o, p := range m.AttrPosterior[t2] {
			s := 0.0
			for _, v := range p {
				s += v
			}
			if s > 0 && math.Abs(s-1) > 1e-6 {
				t.Fatalf("attr type %d obj %d posterior sums to %v", t2, o, s)
			}
		}
	}
}

func TestRankDistributionsNormalized(t *testing.T) {
	c := corpus(7)
	m := Run(stats.NewRNG(8), c.Star(), Options{K: 4})
	for t2 := range m.RankDist {
		for k2, dist := range m.RankDist[t2] {
			s := 0.0
			for _, v := range dist {
				if v < 0 {
					t.Fatalf("negative rank type %d cluster %d", t2, k2)
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("rank dist type %d cluster %d sums to %v", t2, k2, s)
			}
		}
	}
}

func TestConditionalRanksSeparateAreas(t *testing.T) {
	c := corpus(9)
	m := Run(stats.NewRNG(10), c.Star(), Options{K: 4, Restarts: 2})
	// For each cluster, its top-5 venues should share one true area.
	for k := 0; k < 4; k++ {
		top := m.TopAttr(1, k, 5)
		votes := map[int]int{}
		for _, v := range top {
			votes[c.VenueArea[v]]++
		}
		best := 0
		for _, n := range votes {
			if n > best {
				best = n
			}
		}
		if best < 4 {
			t.Errorf("cluster %d top venues not area-coherent: %v", k, votes)
		}
	}
}

func TestAuthorityRankingVariant(t *testing.T) {
	c := corpus(11)
	m := Run(stats.NewRNG(12), c.Star(), Options{K: 4, Authority: true, Restarts: 2})
	if nmi := eval.NMI(c.PaperArea, m.AssignCenter); nmi < 0.6 {
		t.Errorf("authority-variant paper NMI = %v", nmi)
	}
}

func TestPriorIsDistribution(t *testing.T) {
	c := corpus(13)
	m := Run(stats.NewRNG(14), c.Star(), Options{K: 4})
	s := 0.0
	for _, v := range m.Prior {
		if v < 0 {
			t.Fatal("negative prior")
		}
		s += v
	}
	if math.Abs(s-1) > 1e-6 {
		t.Errorf("prior sums to %v", s)
	}
}

func TestAllClustersPopulated(t *testing.T) {
	c := corpus(15)
	m := Run(stats.NewRNG(16), c.Star(), Options{K: 4})
	counts := make([]int, 4)
	for _, a := range m.AssignCenter {
		counts[a]++
	}
	for k, n := range counts {
		if n == 0 {
			t.Errorf("cluster %d empty", k)
		}
	}
}

func TestMoreRestartsNoWorseLikelihood(t *testing.T) {
	c := corpus(17)
	one := Run(stats.NewRNG(18), c.Star(), Options{K: 4, Restarts: 1})
	three := Run(stats.NewRNG(18), c.Star(), Options{K: 4, Restarts: 3})
	if three.LogLikelihood < one.LogLikelihood-1e-6 {
		t.Errorf("restarts lowered LL: %v vs %v", three.LogLikelihood, one.LogLikelihood)
	}
}

func TestKValidation(t *testing.T) {
	c := corpus(19)
	defer func() {
		if recover() == nil {
			t.Error("K=1 should panic")
		}
	}()
	Run(stats.NewRNG(20), c.Star(), Options{K: 1})
}

func TestEmptyStar(t *testing.T) {
	n := hin.NewNetwork()
	n.AddType("paper")
	n.AddObject("author", "a")
	n.AddObject("paper", "p") // one paper, then remove? build degenerate 1-paper star
	n.AddLink("paper", 0, "author", 0, 1)
	star := n.Star("paper", "author")
	m := Run(stats.NewRNG(21), star, Options{K: 2, MaxIter: 3})
	if len(m.AssignCenter) != 1 {
		t.Error("single-paper star should still fit")
	}
}
