// Package core implements RankClus (Sun, Han, Zhao, Yin, Cheng, Wu —
// EDBT'09), the paper's flagship technique: clustering and ranking of a
// bi-typed information network computed *together*, each strengthening
// the other, instead of clustering first and ranking inside clusters (or
// ranking globally and ignoring communities).
//
// Given a bi-typed network — target objects X (e.g. conferences),
// attribute objects Y (e.g. authors), links W — RankClus iterates:
//
//  1. Rank. Within each current cluster, compute the conditional rank
//     distributions of X and Y (simple degree ranking or authority
//     ranking; internal/rank).
//  2. Estimate. Treat the per-cluster Y rank distributions as the
//     components of a mixture model that generates the observed links;
//     run EM for the component priors and read off each target's
//     posterior membership vector π_x ∈ R^K.
//  3. Adjust. Re-assign every target object to the cluster whose center
//     (mean member posterior) is nearest in cosine distance; re-seed any
//     cluster that empties.
//
// The loop stops when assignments stabilize. The output is exactly what
// the tutorial showcases in the DBLP case study: clusters of venues
// *with* within-cluster conditional rankings of venues and authors.
package core

import (
	"math"

	"hinet/internal/hin"
	"hinet/internal/rank"
	"hinet/internal/sparse"
	"hinet/internal/stats"
)

// RankingMethod selects the conditional ranking function.
type RankingMethod int

const (
	// SimpleRanking ranks by in-cluster weighted degree.
	SimpleRanking RankingMethod = iota
	// AuthorityRanking propagates rank between the two types until a
	// fixed point (RankClus's recommended function).
	AuthorityRanking
)

// Options configures a RankClus run.
type Options struct {
	K         int           // number of clusters (required, ≥ 2)
	Method    RankingMethod // default AuthorityRanking
	Alpha     float64       // homogeneous-link mixing for authority ranking (used when WXX present)
	EMIter    int           // EM rounds per outer iteration (default 5)
	MaxIter   int           // outer iteration cap (default 50)
	Smoothing float64       // mix of global Y rank into conditional ranks, default 0.1
	Restarts  int           // random restarts, best by conditional log-likelihood; default 1
}

func (o Options) withDefaults() Options {
	if o.EMIter == 0 {
		o.EMIter = 5
	}
	if o.MaxIter == 0 {
		o.MaxIter = 50
	}
	if o.Smoothing == 0 {
		o.Smoothing = 0.1
	}
	if o.Restarts == 0 {
		o.Restarts = 1
	}
	return o
}

// Model is a fitted RankClus model.
type Model struct {
	K      int
	Assign []int // cluster of each target object

	// RankX[k] and RankY[k] are the final conditional rank
	// distributions of cluster k over all of X and Y (rows sum to 1;
	// non-members of k have RankX[k][x] = 0).
	RankX [][]float64
	RankY [][]float64

	// Posterior[x] is the K-dim mixture membership vector of target x
	// (sums to 1): the "soft clustering + low-dim embedding" RankClus
	// derives from ranking.
	Posterior [][]float64

	Iterations int
	Converged  bool
}

// Run fits RankClus to a bi-typed network.
func Run(rng *stats.RNG, b *hin.Bipartite, opt Options) *Model {
	opt = opt.withDefaults()
	if opt.K < 2 {
		panic("core: RankClus needs K >= 2")
	}
	best := (*Model)(nil)
	bestScore := math.Inf(-1)
	for r := 0; r < opt.Restarts; r++ {
		m := runOnce(rng, b, opt)
		s := logLikelihood(b, m)
		if s > bestScore {
			best, bestScore = m, s
		}
	}
	return best
}

// logLikelihood scores a fitted model by the assignment-conditional
// log-likelihood of the links: each target's links are evaluated under
// its *own* cluster's conditional Y rank distribution (lightly smoothed
// with the global distribution). Partitions whose clusters are coherent
// give their members' links high within-cluster probability, while
// degenerate splits (one venue alone, the rest blended) pay for every
// link that falls outside its component. This is the restart selector.
func logLikelihood(b *hin.Bipartite, m *Model) float64 {
	if len(m.Assign) == 0 {
		return 0
	}
	global := rank.SimpleRanking(b.W).Y
	const lam = 0.1
	ll := 0.0
	for x := 0; x < b.W.Rows(); x++ {
		c := m.Assign[x]
		b.W.Row(x, func(y int, w float64) {
			p := (1-lam)*m.RankY[c][y] + lam*global[y]
			if p < 1e-12 {
				p = 1e-12
			}
			ll += w * math.Log(p)
		})
	}
	return ll
}

func runOnce(rng *stats.RNG, b *hin.Bipartite, opt Options) *Model {
	nx := b.W.Rows()
	k := opt.K
	if nx == 0 {
		return &Model{K: k, Converged: true}
	}

	assign := randomPartition(rng, nx, k)
	m := &Model{K: k, Assign: assign}

	// Global Y rank for smoothing zero-support attribute objects.
	globalY := rank.SimpleRanking(b.W).Y

	// Per-target total link weight (for posteriors).
	xMass := make([]float64, nx)
	for x := 0; x < nx; x++ {
		xMass[x] = b.W.RowSum(x)
	}

	prev := make([]int, nx)
	for it := 1; it <= opt.MaxIter; it++ {
		copy(prev, assign)

		// Step 1: conditional ranking within each cluster. Clusters are
		// ranked independently, so the rank step fans out over the
		// sparse worker pool; every slot written below is indexed by c.
		members := clusterMembers(assign, k)
		rankX := make([][]float64, k)
		rankY := make([][]float64, k)
		phi := make([][]float64, k) // per-cluster target weight in the Y ranking
		dMass := make([]float64, k) // unnormalized Y-rank mass of each cluster
		// Authority ranking iterates up to ~100 power-iteration passes
		// per cluster, so the fan-out work estimate scales the one-pass
		// link cost by that factor (simple ranking is a single pass).
		rankWork := b.W.NNZ()
		if opt.Method == AuthorityRanking {
			rankWork *= 100
		}
		sparse.ParRange(k, rankWork, func(lo, hi int) {
			for c := lo; c < hi; c++ {
				br := rank.ConditionalRank(b.W, b.WXX, members[c], opt.Method == AuthorityRanking,
					rank.AuthorityOptions{Alpha: opt.Alpha})
				rankX[c] = br.X
				rankY[c] = br.Y
				// φ(x) is x's coefficient in the unnormalized conditional Y
				// rank: rank_X for authority ranking, 1 for simple ranking.
				phi[c] = make([]float64, nx)
				for _, x := range members[c] {
					if opt.Method == AuthorityRanking {
						phi[c][x] = br.X[x]
					} else {
						phi[c][x] = 1
					}
					dMass[c] += xMass[x] * phi[c][x]
				}
			}
		})

		// p(y|c) seen from target x: the conditional rank with x's own
		// links removed when x ∈ c (leave-one-out — otherwise a random
		// initial partition is self-reinforcing and never moves), mixed
		// with the global rank for smoothing.
		lam := opt.Smoothing
		componentY := func(c, x, y int, w float64) float64 {
			base := rankY[c][y]
			if assign[x] == c && dMass[c] > 0 {
				num := base - w*phi[c][x]/dMass[c]
				den := 1 - xMass[x]*phi[c][x]/dMass[c]
				if den <= 1e-12 {
					base = 0
				} else {
					base = num / den
					if base < 0 {
						base = 0
					}
				}
			}
			return (1-lam)*base + lam*globalY[y]
		}

		// Step 2: EM over the link mixture model. The E-step is
		// independent per target object, so it fans out over the sparse
		// worker pool; per-object posterior mass and link totals are
		// re-aggregated serially in object order (newPrior[c] equals the
		// sum of post[x][c], so the parallel E-step reproduces the
		// serial prior update deterministically).
		prior := uniformVec(k)
		post := make([][]float64, nx) // π_x
		xTot := make([]float64, nx)   // per-target link mass with nonzero support
		emWork := b.W.NNZ() * k
		for em := 0; em < opt.EMIter; em++ {
			sparse.ParRange(nx, emWork, func(lo, hi int) {
				pk := make([]float64, k)
				for x := lo; x < hi; x++ {
					if post[x] == nil {
						post[x] = make([]float64, k)
					} else {
						for c := range post[x] {
							post[x][c] = 0
						}
					}
					xTot[x] = 0
					b.W.Row(x, func(y int, w float64) {
						// E-step for one link bundle (x, y, w).
						s := 0.0
						for c := 0; c < k; c++ {
							pk[c] = prior[c] * componentY(c, x, y, w)
							s += pk[c]
						}
						if s == 0 {
							return
						}
						for c := 0; c < k; c++ {
							pk[c] /= s
							post[x][c] += w * pk[c]
						}
						xTot[x] += w
					})
				}
			})
			newPrior := make([]float64, k)
			total := 0.0
			for x := 0; x < nx; x++ {
				total += xTot[x]
				for c := 0; c < k; c++ {
					newPrior[c] += post[x][c]
				}
			}
			if total == 0 {
				break
			}
			for c := 0; c < k; c++ {
				prior[c] = newPrior[c] / total
			}
		}
		for x := 0; x < nx; x++ {
			if post[x] == nil {
				post[x] = uniformVec(k)
			} else {
				stats.Normalize(post[x])
			}
		}

		// Step 3: cluster adjustment by cosine similarity to centers.
		centers := make([][]float64, k)
		counts := make([]int, k)
		for c := 0; c < k; c++ {
			centers[c] = make([]float64, k)
		}
		for x := 0; x < nx; x++ {
			c := assign[x]
			counts[c]++
			for j := 0; j < k; j++ {
				centers[c][j] += post[x][j]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				for j := range centers[c] {
					centers[c][j] /= float64(counts[c])
				}
			}
		}
		for x := 0; x < nx; x++ {
			bestC, bestSim := assign[x], -1.0
			for c := 0; c < k; c++ {
				if counts[c] == 0 {
					continue
				}
				if sim := stats.CosineSim(post[x], centers[c]); sim > bestSim {
					bestSim, bestC = sim, c
				}
			}
			assign[x] = bestC
		}
		reseedEmpty(rng, assign, post, k)

		m.RankX, m.RankY, m.Posterior = rankX, rankY, post
		m.Iterations = it
		if same(prev, assign) {
			m.Converged = true
			break
		}
	}

	// Final ranking pass against the converged assignment so the
	// reported conditional ranks match the reported clusters.
	members := clusterMembers(assign, k)
	for c := 0; c < k; c++ {
		br := rank.ConditionalRank(b.W, b.WXX, members[c], opt.Method == AuthorityRanking,
			rank.AuthorityOptions{Alpha: opt.Alpha})
		m.RankX[c] = br.X
		m.RankY[c] = br.Y
	}
	return m
}

// TopX returns cluster c's n top-ranked target objects (ids, descending).
func (m *Model) TopX(c, n int) []int { return stats.TopK(m.RankX[c], n) }

// TopY returns cluster c's n top-ranked attribute objects.
func (m *Model) TopY(c, n int) []int { return stats.TopK(m.RankY[c], n) }

func randomPartition(rng *stats.RNG, n, k int) []int {
	assign := make([]int, n)
	// Guarantee non-empty clusters when n >= k.
	perm := rng.Perm(n)
	for i, p := range perm {
		if i < k {
			assign[p] = i
		} else {
			assign[p] = rng.Intn(k)
		}
	}
	return assign
}

func clusterMembers(assign []int, k int) [][]int {
	members := make([][]int, k)
	for x, c := range assign {
		members[c] = append(members[c], x)
	}
	return members
}

// reseedEmpty moves the worst-fitting objects into any empty clusters so
// K is preserved (the RankClus empty-cluster treatment).
func reseedEmpty(rng *stats.RNG, assign []int, post [][]float64, k int) {
	counts := make([]int, k)
	for _, c := range assign {
		counts[c]++
	}
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			continue
		}
		// pick the object with the most uncertain posterior (highest
		// entropy) from a cluster with more than one member
		worst, worstH := -1, -1.0
		for x := range post {
			if counts[assign[x]] <= 1 {
				continue
			}
			h := stats.Entropy(post[x])
			if h > worstH {
				worstH, worst = h, x
			}
		}
		if worst < 0 {
			worst = rng.Intn(len(assign))
		}
		counts[assign[worst]]--
		assign[worst] = c
		counts[c]++
	}
}

func uniformVec(k int) []float64 {
	v := make([]float64, k)
	for i := range v {
		v[i] = 1 / float64(k)
	}
	return v
}

func same(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
