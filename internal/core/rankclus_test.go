package core

import (
	"math"
	"testing"

	"hinet/internal/eval"
	"hinet/internal/hin"
	"hinet/internal/netgen"
	"hinet/internal/sparse"
	"hinet/internal/stats"
)

func planted(seed int64, cross float64) (*hin.Bipartite, []int) {
	cfg := netgen.MediumBiTyped()
	cfg.Cross = cross
	res := netgen.BiTyped(stats.NewRNG(seed), cfg)
	return res.Net.Bipartite(res.X, res.Y), res.TruthX
}

func TestRankClusRecoversPlantedClusters(t *testing.T) {
	b, truth := planted(1, 0.15)
	m := Run(stats.NewRNG(2), b, Options{K: 3, Method: AuthorityRanking, Restarts: 3})
	if nmi := eval.NMI(truth, m.Assign); nmi < 0.7 {
		t.Errorf("NMI = %v, want ≥ 0.7 on medium separation", nmi)
	}
}

func TestRankClusSimpleRankingAlsoWorks(t *testing.T) {
	b, truth := planted(3, 0.10)
	m := Run(stats.NewRNG(4), b, Options{K: 3, Method: SimpleRanking, Restarts: 3})
	if nmi := eval.NMI(truth, m.Assign); nmi < 0.6 {
		t.Errorf("simple-ranking NMI = %v", nmi)
	}
}

func TestPosteriorRowsSumToOne(t *testing.T) {
	b, _ := planted(5, 0.2)
	m := Run(stats.NewRNG(6), b, Options{K: 3})
	for x, p := range m.Posterior {
		s := 0.0
		for _, v := range p {
			if v < -1e-12 {
				t.Fatalf("negative posterior at %d: %v", x, p)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("posterior %d sums to %v", x, s)
		}
	}
}

func TestConditionalRankDistributions(t *testing.T) {
	b, _ := planted(7, 0.2)
	m := Run(stats.NewRNG(8), b, Options{K: 3})
	for c := 0; c < m.K; c++ {
		sx, sy := 0.0, 0.0
		for _, v := range m.RankX[c] {
			if v < 0 {
				t.Fatal("negative X rank")
			}
			sx += v
		}
		for _, v := range m.RankY[c] {
			if v < 0 {
				t.Fatal("negative Y rank")
			}
			sy += v
		}
		if math.Abs(sx-1) > 1e-9 || math.Abs(sy-1) > 1e-9 {
			t.Fatalf("cluster %d rank sums: X=%v Y=%v", c, sx, sy)
		}
	}
}

func TestNonMembersHaveZeroConditionalRank(t *testing.T) {
	b, _ := planted(9, 0.2)
	m := Run(stats.NewRNG(10), b, Options{K: 3})
	for c := 0; c < m.K; c++ {
		for x, a := range m.Assign {
			if a != c && m.RankX[c][x] != 0 {
				t.Fatalf("non-member %d has rank %v in cluster %d", x, m.RankX[c][x], c)
			}
		}
	}
}

func TestAllClustersNonEmpty(t *testing.T) {
	b, _ := planted(11, 0.3)
	m := Run(stats.NewRNG(12), b, Options{K: 3})
	counts := make([]int, m.K)
	for _, c := range m.Assign {
		counts[c]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Errorf("cluster %d empty", c)
		}
	}
}

func TestTopYAreClusterLocalAuthors(t *testing.T) {
	cfg := netgen.MediumBiTyped()
	cfg.Cross = 0.10
	res := netgen.BiTyped(stats.NewRNG(13), cfg)
	b := res.Net.Bipartite(res.X, res.Y)
	m := Run(stats.NewRNG(14), b, Options{K: 3, Restarts: 3})
	// Map each model cluster to its dominant true cluster via members.
	for c := 0; c < 3; c++ {
		votes := map[int]int{}
		for x, a := range m.Assign {
			if a == c {
				votes[res.TruthX[x]]++
			}
		}
		domTrue, best := -1, 0
		for k, v := range votes {
			if v > best {
				best, domTrue = v, k
			}
		}
		// Top-10 ranked authors of the cluster should mostly come from
		// the dominant true cluster.
		hits := 0
		for _, y := range m.TopY(c, 10) {
			if res.TruthY[y] == domTrue {
				hits++
			}
		}
		if hits < 6 {
			t.Errorf("cluster %d: only %d/10 top authors from dominant community", c, hits)
		}
	}
}

func TestAuthorityBeatsOrMatchesSimpleOnHardSetting(t *testing.T) {
	// With heavier cross noise authority ranking should not lose badly.
	sumAuth, sumSimple := 0.0, 0.0
	for seed := int64(0); seed < 3; seed++ {
		b, truth := planted(20+seed, 0.25)
		ma := Run(stats.NewRNG(30+seed), b, Options{K: 3, Method: AuthorityRanking, Restarts: 2})
		ms := Run(stats.NewRNG(30+seed), b, Options{K: 3, Method: SimpleRanking, Restarts: 2})
		sumAuth += eval.NMI(truth, ma.Assign)
		sumSimple += eval.NMI(truth, ms.Assign)
	}
	if sumAuth < sumSimple-0.45 {
		t.Errorf("authority NMI total %v much worse than simple %v", sumAuth, sumSimple)
	}
}

func TestKValidation(t *testing.T) {
	b, _ := planted(15, 0.2)
	defer func() {
		if recover() == nil {
			t.Error("K < 2 should panic")
		}
	}()
	Run(stats.NewRNG(16), b, Options{K: 1})
}

func TestEmptyNetwork(t *testing.T) {
	b := &hin.Bipartite{W: sparse.NewFromCoords(0, 0, nil)}
	m := Run(stats.NewRNG(17), b, Options{K: 2})
	if !m.Converged || len(m.Assign) != 0 {
		t.Error("empty network should trivially converge")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	b, _ := planted(18, 0.2)
	a := Run(stats.NewRNG(19), b, Options{K: 3})
	c := Run(stats.NewRNG(19), b, Options{K: 3})
	for i := range a.Assign {
		if a.Assign[i] != c.Assign[i] {
			t.Fatal("same-seed RankClus differs")
		}
	}
}

func TestWithHomogeneousLinks(t *testing.T) {
	// Attach weak X–X links and ensure the algorithm still runs and
	// produces valid output with Alpha mixing.
	res := netgen.BiTyped(stats.NewRNG(21), netgen.MediumBiTyped())
	rng := stats.NewRNG(22)
	for i := 0; i < 30; i++ {
		a := rng.Intn(res.Net.Count(res.X))
		b := rng.Intn(res.Net.Count(res.X))
		if a != b {
			res.Net.AddLink(res.X, a, res.X, b, 1)
		}
	}
	bip := res.Net.Bipartite(res.X, res.Y)
	if bip.WXX == nil {
		t.Fatal("WXX should be present")
	}
	m := Run(stats.NewRNG(23), bip, Options{K: 3, Alpha: 0.9, Restarts: 2})
	if nmi := eval.NMI(res.TruthX, m.Assign); nmi < 0.5 {
		t.Errorf("NMI with WXX = %v", nmi)
	}
}

func TestRestartsImproveOrEqual(t *testing.T) {
	b, truth := planted(24, 0.3)
	single := Run(stats.NewRNG(25), b, Options{K: 3, Restarts: 1})
	multi := Run(stats.NewRNG(25), b, Options{K: 3, Restarts: 5})
	nmiS := eval.NMI(truth, single.Assign)
	nmiM := eval.NMI(truth, multi.Assign)
	if nmiM < nmiS-0.3 {
		t.Errorf("restarts hurt badly: %v vs %v", nmiM, nmiS)
	}
}
