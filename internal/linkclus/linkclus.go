// Package linkclus implements the LinkClus layer of the tutorial
// (§4a): link-based similarity and clustering of bipartite networks at
// near-linear cost, positioned against quadratic SimRank.
//
// Substitution note (recorded in DESIGN.md): the original LinkClus
// (Yin, Han, Yu — VLDB'06) prunes SimRank's pair space with a SimTree
// whose construction exploits the power-law link distribution. This
// package keeps LinkClus's contract — mutual-reinforcement similarity
// with hierarchy-assisted queries in O(nnz·d) per iteration — but
// realizes it with a low-rank coupled embedding: alternating
// orthogonalized propagation U ← Ŵ V, V ← Ŵᵀ U (the same coupled
// recursion SimRank truncates), giving sim(a,b) = cos(U_a, U_b), plus a
// fanout-limited hierarchy built by recursive spherical k-means for
// query pruning. The experiment it supports preserves the paper's
// comparison shape: similarity quality close to SimRank at a fraction
// of its cost.
package linkclus

import (
	"cmp"
	"math"
	"slices"

	"hinet/internal/kmeans"
	"hinet/internal/sparse"
	"hinet/internal/stats"
)

// Options configures the embedding and hierarchy.
type Options struct {
	Dim      int // embedding rank, default 16
	Iters    int // propagation rounds, default 8
	Fanout   int // hierarchy branching factor, default 8
	LeafSize int // max objects per leaf, default 16
}

func (o Options) withDefaults() Options {
	if o.Dim == 0 {
		o.Dim = 16
	}
	if o.Iters == 0 {
		o.Iters = 8
	}
	if o.Fanout == 0 {
		o.Fanout = 8
	}
	if o.LeafSize == 0 {
		o.LeafSize = 16
	}
	return o
}

// Model holds the two-sided embeddings and the X-side hierarchy.
type Model struct {
	UX   [][]float64 // X-side embedding, row-normalized
	UY   [][]float64 // Y-side embedding, row-normalized
	Tree *TreeNode   // hierarchy over X objects
}

// TreeNode is one node of the SimTree-like hierarchy.
type TreeNode struct {
	Members  []int // X object ids under this node
	Centroid []float64
	Children []*TreeNode
}

// Fit builds the model from a bipartite matrix W (X×Y).
func Fit(rng *stats.RNG, w *sparse.Matrix, opt Options) *Model {
	opt = opt.withDefaults()
	nx, ny := w.Rows(), w.Cols()
	d := opt.Dim
	if d > nx {
		d = nx
	}
	if d > ny && ny > 0 {
		d = ny
	}
	if nx == 0 || ny == 0 || d == 0 {
		return &Model{UX: make([][]float64, nx), UY: make([][]float64, ny)}
	}
	// Row-stochastic propagation without materializing Ŵ and Ŵᵀ:
	// matProduct applies the inverse row sums on the fly — per-term
	// products (v·inv[r])·b match what RowNormalized copies would feed
	// the same loops bitwise — so only the transpose's structure is
	// built once.
	wt := w.Transpose()
	invX := w.RowInvSums()
	invY := wt.RowInvSums()

	// V: ny×d random orthonormal start.
	v := randomCols(rng, ny, d)
	u := make([][]float64, 0)
	for it := 0; it < opt.Iters; it++ {
		u = matProduct(w, invX, v, nx, d) // U ← Ŵ V
		orthonormalizeCols(u, d)
		v = matProduct(wt, invY, u, ny, d) // V ← Ŵᵀ U
		orthonormalizeCols(v, d)
	}
	u = matProduct(w, invX, v, nx, d)
	m := &Model{UX: rowNormalize(u), UY: rowNormalize(v)}
	m.Tree = buildTree(rng, m.UX, allIDs(nx), opt)
	return m
}

// Sim returns the estimated link-based similarity of X objects a and b
// in [-1, 1] (cosine of embeddings; linked-alike objects near 1).
func (m *Model) Sim(a, b int) float64 {
	return dot(m.UX[a], m.UX[b])
}

// SimY is Sim for Y-side objects.
func (m *Model) SimY(a, b int) float64 {
	return dot(m.UY[a], m.UY[b])
}

// Pair is a scored query answer.
type Pair struct {
	ID    int
	Score float64
}

// TopK returns the k most similar X objects to x, descending. The
// hierarchy prunes: beams of the most promising subtrees are descended
// (beam = 2×fanout), so only a fraction of objects is scored.
func (m *Model) TopK(x, k int) []Pair {
	if m.Tree == nil {
		return nil
	}
	q := m.UX[x]
	cands := map[int]bool{}
	frontier := []*TreeNode{m.Tree}
	for len(frontier) > 0 {
		// Score children of the frontier, keep the best few.
		var next []*TreeNode
		type scored struct {
			n *TreeNode
			s float64
		}
		var all []scored
		for _, node := range frontier {
			if len(node.Children) == 0 {
				for _, id := range node.Members {
					cands[id] = true
				}
				continue
			}
			for _, ch := range node.Children {
				all = append(all, scored{ch, dot(q, ch.Centroid)})
			}
		}
		slices.SortFunc(all, func(a, b scored) int { return cmp.Compare(b.s, a.s) })
		beam := 4
		if beam > len(all) {
			beam = len(all)
		}
		for _, sc := range all[:beam] {
			next = append(next, sc.n)
		}
		frontier = next
	}
	var out []Pair
	for id := range cands {
		if id != x {
			out = append(out, Pair{ID: id, Score: m.Sim(x, id)})
		}
	}
	slices.SortFunc(out, func(a, b Pair) int {
		if a.Score != b.Score {
			return cmp.Compare(b.Score, a.Score)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Cluster partitions the X side into k clusters on the embedding.
func (m *Model) Cluster(rng *stats.RNG, k int) []int {
	if len(m.UX) == 0 {
		return nil
	}
	return kmeans.Cluster(rng, m.UX, k, kmeans.Options{Spherical: true}).Assign
}

func buildTree(rng *stats.RNG, emb [][]float64, members []int, opt Options) *TreeNode {
	node := &TreeNode{Members: members, Centroid: centroid(emb, members)}
	if len(members) <= opt.LeafSize {
		return node
	}
	pts := make([][]float64, len(members))
	for i, id := range members {
		pts[i] = emb[id]
	}
	k := opt.Fanout
	if k > len(members) {
		k = len(members)
	}
	res := kmeans.Cluster(rng, pts, k, kmeans.Options{Spherical: true, Restarts: 1, MaxIter: 20})
	groups := make([][]int, k)
	for i, c := range res.Assign {
		groups[c] = append(groups[c], members[i])
	}
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		if len(g) == len(members) {
			// no split progress; stop to avoid recursion
			return node
		}
		node.Children = append(node.Children, buildTree(rng, emb, g, opt))
	}
	return node
}

func centroid(emb [][]float64, members []int) []float64 {
	if len(members) == 0 || len(emb) == 0 {
		return nil
	}
	d := len(emb[members[0]])
	c := make([]float64, d)
	for _, id := range members {
		for j, v := range emb[id] {
			c[j] += v
		}
	}
	norm := 0.0
	for _, v := range c {
		norm += v * v
	}
	if norm > 0 {
		norm = 1 / math.Sqrt(norm)
		for j := range c {
			c[j] *= norm
		}
	}
	return c
}

func randomCols(rng *stats.RNG, n, d int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, d)
		for j := range m[i] {
			m[i][j] = rng.NormFloat64()
		}
	}
	orthonormalizeCols(m, d)
	return m
}

// matProduct computes diag(inv)·A·B for sparse A (n×m), dense B (m×d)
// and the inverse-row-sum vector inv (the fused replacement for
// normalizing A first). Rows of the output are independent, so the loop
// runs on the shared sparse worker pool (each propagation round is the
// package's hot path).
func matProduct(a *sparse.Matrix, inv []float64, b [][]float64, n, d int) [][]float64 {
	out := make([][]float64, n)
	sparse.ParRange(n, a.NNZ()*d, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := make([]float64, d)
			xi := inv[r]
			a.Row(r, func(c int, v float64) {
				v *= xi
				for j := 0; j < d; j++ {
					row[j] += v * b[c][j]
				}
			})
			out[r] = row
		}
	})
	return out
}

// orthonormalizeCols runs modified Gram–Schmidt over the d columns.
func orthonormalizeCols(m [][]float64, d int) {
	n := len(m)
	for j := 0; j < d; j++ {
		for i := 0; i < j; i++ {
			dp := 0.0
			for r := 0; r < n; r++ {
				dp += m[r][j] * m[r][i]
			}
			for r := 0; r < n; r++ {
				m[r][j] -= dp * m[r][i]
			}
		}
		norm := 0.0
		for r := 0; r < n; r++ {
			norm += m[r][j] * m[r][j]
		}
		if norm < 1e-18 {
			// Collapsed column: replace with a deterministic vector,
			// project once against the earlier columns, and accept the
			// result (a second collapse leaves a unit basis vector).
			for r := 0; r < n; r++ {
				m[r][j] = float64((r*(j+7))%13) - 6
			}
			for i := 0; i < j; i++ {
				dp := 0.0
				for r := 0; r < n; r++ {
					dp += m[r][j] * m[r][i]
				}
				for r := 0; r < n; r++ {
					m[r][j] -= dp * m[r][i]
				}
			}
			norm = 0
			for r := 0; r < n; r++ {
				norm += m[r][j] * m[r][j]
			}
			if norm < 1e-18 {
				for r := 0; r < n; r++ {
					m[r][j] = 0
				}
				m[j%n][j] = 1
				continue
			}
		}
		norm = 1 / math.Sqrt(norm)
		for r := 0; r < n; r++ {
			m[r][j] *= norm
		}
	}
}

func rowNormalize(m [][]float64) [][]float64 {
	for i := range m {
		norm := 0.0
		for _, v := range m[i] {
			norm += v * v
		}
		if norm > 0 {
			norm = 1 / math.Sqrt(norm)
			for j := range m[i] {
				m[i][j] *= norm
			}
		}
	}
	return m
}

func allIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
