package linkclus

import (
	"math"
	"testing"

	"hinet/internal/eval"
	"hinet/internal/netgen"
	"hinet/internal/simrank"
	"hinet/internal/sparse"
	"hinet/internal/stats"
)

func blockBipartite() *sparse.Matrix {
	// X 0..3 linked to Y block {0,1}; X 4..7 to Y block {2,3}.
	d := make([][]float64, 8)
	for i := range d {
		d[i] = make([]float64, 4)
	}
	for i := 0; i < 4; i++ {
		d[i][0], d[i][1] = 1, 1
	}
	for i := 4; i < 8; i++ {
		d[i][2], d[i][3] = 1, 1
	}
	return sparse.NewFromDense(d)
}

func TestSimSeparatesBlocks(t *testing.T) {
	m := Fit(stats.NewRNG(1), blockBipartite(), Options{Dim: 4, LeafSize: 2})
	if m.Sim(0, 1) <= m.Sim(0, 5) {
		t.Errorf("within-block sim %v should beat cross-block %v", m.Sim(0, 1), m.Sim(0, 5))
	}
	if m.Sim(0, 1) < 0.9 {
		t.Errorf("identical-neighborhood sim = %v, want ≈1", m.Sim(0, 1))
	}
}

func TestSimSelfAndSymmetry(t *testing.T) {
	m := Fit(stats.NewRNG(2), blockBipartite(), Options{Dim: 4})
	for a := 0; a < 8; a++ {
		if s := m.Sim(a, a); math.Abs(s-1) > 1e-9 {
			t.Fatalf("self sim = %v", s)
		}
		for b := 0; b < 8; b++ {
			if math.Abs(m.Sim(a, b)-m.Sim(b, a)) > 1e-12 {
				t.Fatal("sim not symmetric")
			}
		}
	}
}

func TestClusterRecoversPlantedBiTyped(t *testing.T) {
	res := netgen.BiTyped(stats.NewRNG(3), netgen.MediumBiTyped())
	w := res.Net.Relation(res.X, res.Y)
	m := Fit(stats.NewRNG(4), w, Options{})
	assign := m.Cluster(stats.NewRNG(5), 3)
	if nmi := eval.NMI(res.TruthX, assign); nmi < 0.6 {
		t.Errorf("LinkClus cluster NMI = %v", nmi)
	}
}

func TestAgreesWithSimRankOrdering(t *testing.T) {
	// On a small planted network, LinkClus similarities should broadly
	// agree with bipartite SimRank (rank correlation over pairs).
	cfg := netgen.BiTypedConfig{
		K:     2,
		Nx:    []int{8, 8},
		Ny:    []int{40, 40},
		Links: []int{160, 160},
		Cross: 0.15,
		Skew:  0.8,
	}
	res := netgen.BiTyped(stats.NewRNG(6), cfg)
	w := res.Net.Relation(res.X, res.Y)
	m := Fit(stats.NewRNG(7), w, Options{Dim: 8})
	sr := simrank.Bipartite(w, simrank.Options{MaxIter: 8})
	var a, b []float64
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			a = append(a, m.Sim(i, j))
			b = append(b, sr.SX[i][j])
		}
	}
	if tau := eval.KendallTau(a, b); tau < 0.3 {
		t.Errorf("Kendall tau vs SimRank = %v, want ≥ 0.3", tau)
	}
}

func TestTopKReturnsBlockMates(t *testing.T) {
	m := Fit(stats.NewRNG(8), blockBipartite(), Options{Dim: 4, LeafSize: 2, Fanout: 2})
	top := m.TopK(0, 3)
	if len(top) != 3 {
		t.Fatalf("topk size = %d", len(top))
	}
	for _, p := range top {
		if p.ID >= 4 {
			t.Errorf("cross-block object %d in top-3: %v", p.ID, top)
		}
	}
}

func TestTreeCoversAllObjects(t *testing.T) {
	res := netgen.BiTyped(stats.NewRNG(9), netgen.MediumBiTyped())
	w := res.Net.Relation(res.X, res.Y)
	m := Fit(stats.NewRNG(10), w, Options{LeafSize: 4, Fanout: 3})
	seen := map[int]bool{}
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		if len(n.Children) == 0 {
			for _, id := range n.Members {
				seen[id] = true
			}
			return
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(m.Tree)
	if len(seen) != w.Rows() {
		t.Errorf("tree covers %d/%d objects", len(seen), w.Rows())
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := Fit(stats.NewRNG(11), sparse.NewFromCoords(0, 0, nil), Options{})
	if len(m.UX) != 0 {
		t.Error("empty input should give empty model")
	}
	if m.Cluster(stats.NewRNG(12), 3) != nil {
		t.Error("empty cluster should be nil")
	}
}

func TestDeterministic(t *testing.T) {
	w := blockBipartite()
	a := Fit(stats.NewRNG(13), w, Options{Dim: 4})
	b := Fit(stats.NewRNG(13), w, Options{Dim: 4})
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if math.Abs(a.Sim(i, j)-b.Sim(i, j)) > 1e-12 {
				t.Fatal("same-seed models differ")
			}
		}
	}
}
