// Package classify implements transductive classification of
// heterogeneous information networks (tutorial §5b–c): a GNetMine-style
// label propagation that respects object types, spreading a few labeled
// seeds across the typed relation graph, plus the homogeneous
// (type-blind) propagation baseline and a majority baseline.
//
// Model: every type t carries a score matrix F_t (objects × classes).
// Each relation (t, s) contributes the symmetrically normalized
// adjacency S_ts = D_t^{-1/2} W_ts D_s^{-1/2}; iteration
//
//	F_t ← α · mean_{s ~ t} S_ts F_s + (1 − α) · Y_t
//
// runs to a fixed point, where Y_t holds the seed labels. Seeds on any
// type (papers, authors, venues, tags, …) inform every other type
// through the links — classification of multiple heterogeneous objects
// at once, as the tutorial's outline item 5(c) describes.
package classify

import (
	"math"

	"hinet/internal/hin"
	"hinet/internal/sparse"
	"hinet/internal/stats"
)

// Seed is one labeled object.
type Seed struct {
	Type  hin.Type
	ID    int
	Label int
}

// Options tunes the propagation.
type Options struct {
	Alpha     float64 // propagation weight vs seed pull, default 0.8
	MaxIter   int     // default 50
	Tolerance float64 // L∞ on score change, default 1e-6
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.8
	}
	if o.MaxIter == 0 {
		o.MaxIter = 50
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	return o
}

// Scores maps each type to its objects × classes score matrix.
type Scores map[hin.Type][][]float64

// Labels converts one type's scores to hard labels (argmax; -1 when the
// object received no mass).
func Labels(scores [][]float64) []int {
	out := make([]int, len(scores))
	for i, row := range scores {
		best, bestV := -1, 0.0
		for c, v := range row {
			if v > bestV {
				bestV, best = v, c
			}
		}
		out[i] = best
	}
	return out
}

// Propagate runs typed label propagation with k classes.
func Propagate(n *hin.Network, k int, seeds []Seed, opt Options) Scores {
	opt = opt.withDefaults()
	types := n.Types()

	// Normalized relation operators per ordered type pair.
	type relOp struct {
		src, dst hin.Type
		m        *sparse.Matrix // normalized dst→src? stored as src×dst
	}
	var ops []relOp
	for i, a := range types {
		for j, b := range types {
			if j < i {
				continue
			}
			if !n.HasRelation(a, b) {
				continue
			}
			w := n.Relation(a, b)
			sym := symNormalize(w)
			ops = append(ops, relOp{src: a, dst: b, m: sym})
		}
	}

	// Seed matrices.
	y := make(Scores, len(types))
	f := make(Scores, len(types))
	for _, t := range types {
		cnt := n.Count(t)
		y[t] = zeros(cnt, k)
		f[t] = zeros(cnt, k)
	}
	for _, s := range seeds {
		if s.Label < 0 || s.Label >= k {
			panic("classify: seed label out of range")
		}
		y[s.Type][s.ID][s.Label] = 1
		f[s.Type][s.ID][s.Label] = 1
	}

	next := make(Scores, len(types))
	contrib := make(map[hin.Type]int)
	for it := 0; it < opt.MaxIter; it++ {
		for _, t := range types {
			next[t] = zeros(n.Count(t), k)
			contrib[t] = 0
		}
		for _, op := range ops {
			// src gains from dst via m; dst gains from src via mᵀ.
			addMul(next[op.src], op.m, f[op.dst])
			contrib[op.src]++
			if op.src != op.dst {
				addMulT(next[op.dst], op.m, f[op.src])
				contrib[op.dst]++
			}
		}
		maxDiff := 0.0
		for _, t := range types {
			c := float64(contrib[t])
			for i := range next[t] {
				for j := 0; j < k; j++ {
					v := (1 - opt.Alpha) * y[t][i][j]
					if c > 0 {
						v += opt.Alpha * next[t][i][j] / c
					}
					if d := abs(v - f[t][i][j]); d > maxDiff {
						maxDiff = d
					}
					f[t][i][j] = v
				}
			}
		}
		if maxDiff < opt.Tolerance {
			break
		}
	}
	return f
}

// PropagateHomogeneous is the type-blind baseline: the same propagation
// run on the network's homogeneous collapse. Returns per-type scores
// sliced back out of the flat graph for comparability.
func PropagateHomogeneous(n *hin.Network, k int, seeds []Seed, opt Options) Scores {
	opt = opt.withDefaults()
	g, offset := n.Homogeneous()
	adj := g.Adjacency()
	sym := symNormalize(adj)
	total := g.N()
	y := zeros(total, k)
	f := zeros(total, k)
	for _, s := range seeds {
		y[offset[s.Type]+s.ID][s.Label] = 1
		f[offset[s.Type]+s.ID][s.Label] = 1
	}
	next := zeros(total, k)
	for it := 0; it < opt.MaxIter; it++ {
		for i := range next {
			for j := 0; j < k; j++ {
				next[i][j] = 0
			}
		}
		addMul(next, sym, f)
		maxDiff := 0.0
		for i := 0; i < total; i++ {
			for j := 0; j < k; j++ {
				v := opt.Alpha*next[i][j] + (1-opt.Alpha)*y[i][j]
				if d := abs(v - f[i][j]); d > maxDiff {
					maxDiff = d
				}
				f[i][j] = v
			}
		}
		if maxDiff < opt.Tolerance {
			break
		}
	}
	out := make(Scores)
	for _, t := range n.Types() {
		cnt := n.Count(t)
		block := make([][]float64, cnt)
		for i := 0; i < cnt; i++ {
			block[i] = f[offset[t]+i]
		}
		out[t] = block
	}
	return out
}

// MajorityBaseline labels everything with the most frequent seed label.
func MajorityBaseline(k int, seeds []Seed, count int) []int {
	votes := make([]int, k)
	for _, s := range seeds {
		votes[s.Label]++
	}
	best := stats.ArgMax(intsToFloats(votes))
	out := make([]int, count)
	for i := range out {
		out[i] = best
	}
	return out
}

// symNormalize returns D_r^{-1/2} W D_c^{-1/2}.
func symNormalize(w *sparse.Matrix) *sparse.Matrix {
	rowDeg := make([]float64, w.Rows())
	colDeg := make([]float64, w.Cols())
	for r := 0; r < w.Rows(); r++ {
		w.Row(r, func(c int, v float64) {
			rowDeg[r] += v
			colDeg[c] += v
		})
	}
	var entries []sparse.Coord
	for r := 0; r < w.Rows(); r++ {
		w.Row(r, func(c int, v float64) {
			d := rowDeg[r] * colDeg[c]
			if d > 0 {
				entries = append(entries, sparse.Coord{Row: r, Col: c, Val: v / math.Sqrt(d)})
			}
		})
	}
	return sparse.NewFromCoords(w.Rows(), w.Cols(), entries)
}

// addMul computes dst += M · src for score matrices.
func addMul(dst [][]float64, m *sparse.Matrix, src [][]float64) {
	for r := range dst {
		m.Row(r, func(c int, v float64) {
			for j := range dst[r] {
				dst[r][j] += v * src[c][j]
			}
		})
	}
}

// addMulT computes dst += Mᵀ · src.
func addMulT(dst [][]float64, m *sparse.Matrix, src [][]float64) {
	for r := 0; r < m.Rows(); r++ {
		m.Row(r, func(c int, v float64) {
			for j := range dst[c] {
				dst[c][j] += v * src[r][j]
			}
		})
	}
}

func zeros(n, k int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, k)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// SampleSeeds picks seedsPerClass labeled examples per class from the
// given truth labels of one type, deterministically via rng.
func SampleSeeds(rng *stats.RNG, t hin.Type, truth []int, k, seedsPerClass int) []Seed {
	byClass := make([][]int, k)
	for id, c := range truth {
		if c >= 0 && c < k {
			byClass[c] = append(byClass[c], id)
		}
	}
	var seeds []Seed
	for c := 0; c < k; c++ {
		ids := byClass[c]
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		take := seedsPerClass
		if take > len(ids) {
			take = len(ids)
		}
		for _, id := range ids[:take] {
			seeds = append(seeds, Seed{Type: t, ID: id, Label: c})
		}
	}
	return seeds
}
