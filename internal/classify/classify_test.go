package classify

import (
	"testing"

	"hinet/internal/dblp"
	"hinet/internal/eval"
	"hinet/internal/flickr"
	"hinet/internal/hin"
	"hinet/internal/stats"
)

func dblpCorpus(seed int64) *dblp.Corpus {
	return dblp.Generate(stats.NewRNG(seed), dblp.Config{
		VenuesPerArea:  3,
		AuthorsPerArea: 60,
		TermsPerArea:   40,
		SharedTerms:    20,
		Papers:         600,
	})
}

func labeledAccuracy(truth, pred []int, skip map[int]bool) float64 {
	hit, total := 0, 0
	for i := range truth {
		if skip[i] {
			continue
		}
		total++
		if truth[i] == pred[i] {
			hit++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

func TestPropagateClassifiesUnlabeledPapers(t *testing.T) {
	c := dblpCorpus(1)
	rng := stats.NewRNG(2)
	seeds := SampleSeeds(rng, dblp.TypePaper, c.PaperArea, 4, 10)
	scores := Propagate(c.Net, 4, seeds, Options{})
	pred := Labels(scores[dblp.TypePaper])
	seeded := map[int]bool{}
	for _, s := range seeds {
		seeded[s.ID] = true
	}
	if acc := labeledAccuracy(c.PaperArea, pred, seeded); acc < 0.75 {
		t.Errorf("unlabeled paper accuracy = %.3f", acc)
	}
}

func TestPropagationReachesOtherTypes(t *testing.T) {
	c := dblpCorpus(3)
	rng := stats.NewRNG(4)
	seeds := SampleSeeds(rng, dblp.TypePaper, c.PaperArea, 4, 10)
	scores := Propagate(c.Net, 4, seeds, Options{})
	// Venues get labels purely through links.
	venuePred := Labels(scores[dblp.TypeVenue])
	if acc := eval.Accuracy(c.VenueArea, venuePred); acc < 0.8 {
		t.Errorf("venue accuracy through propagation = %.3f", acc)
	}
	authorPred := Labels(scores[dblp.TypeAuthor])
	if acc := labeledAccuracy(c.AuthorArea, authorPred, nil); acc < 0.6 {
		t.Errorf("author accuracy = %.3f", acc)
	}
}

func TestSeedsKeepTheirLabels(t *testing.T) {
	c := dblpCorpus(5)
	rng := stats.NewRNG(6)
	seeds := SampleSeeds(rng, dblp.TypePaper, c.PaperArea, 4, 5)
	scores := Propagate(c.Net, 4, seeds, Options{})
	pred := Labels(scores[dblp.TypePaper])
	wrong := 0
	for _, s := range seeds {
		if pred[s.ID] != s.Label {
			wrong++
		}
	}
	if wrong > len(seeds)/5 {
		t.Errorf("%d/%d seeds drifted from their label", wrong, len(seeds))
	}
}

func TestTypedAtLeastMatchesHomogeneous(t *testing.T) {
	var typed, homog float64
	for seed := int64(0); seed < 3; seed++ {
		c := dblpCorpus(10 + seed)
		rng := stats.NewRNG(20 + seed)
		seeds := SampleSeeds(rng, dblp.TypePaper, c.PaperArea, 4, 8)
		seeded := map[int]bool{}
		for _, s := range seeds {
			seeded[s.ID] = true
		}
		ts := Propagate(c.Net, 4, seeds, Options{})
		hs := PropagateHomogeneous(c.Net, 4, seeds, Options{})
		typed += labeledAccuracy(c.PaperArea, Labels(ts[dblp.TypePaper]), seeded)
		homog += labeledAccuracy(c.PaperArea, Labels(hs[dblp.TypePaper]), seeded)
	}
	if typed < homog-0.15 {
		t.Errorf("typed propagation total %.3f clearly below homogeneous %.3f", typed, homog)
	}
	if typed/3 < 0.7 {
		t.Errorf("typed propagation weak: %.3f", typed/3)
	}
}

func TestPropagateBeatsMajority(t *testing.T) {
	c := dblpCorpus(7)
	rng := stats.NewRNG(8)
	seeds := SampleSeeds(rng, dblp.TypePaper, c.PaperArea, 4, 10)
	scores := Propagate(c.Net, 4, seeds, Options{})
	pred := Labels(scores[dblp.TypePaper])
	maj := MajorityBaseline(4, seeds, c.Net.Count(dblp.TypePaper))
	pAcc := labeledAccuracy(c.PaperArea, pred, nil)
	mAcc := labeledAccuracy(c.PaperArea, maj, nil)
	if pAcc <= mAcc {
		t.Errorf("propagation %.3f should beat majority %.3f", pAcc, mAcc)
	}
}

func TestFlickrTaggingGraphClassification(t *testing.T) {
	c := flickr.Generate(stats.NewRNG(9), flickr.Config{Photos: 600})
	rng := stats.NewRNG(10)
	seeds := SampleSeeds(rng, flickr.TypePhoto, c.PhotoCat, 4, 12)
	scores := Propagate(c.Net, 4, seeds, Options{})
	seeded := map[int]bool{}
	for _, s := range seeds {
		seeded[s.ID] = true
	}
	if acc := labeledAccuracy(c.PhotoCat, Labels(scores[flickr.TypePhoto]), seeded); acc < 0.7 {
		t.Errorf("photo accuracy = %.3f", acc)
	}
	// Tags inherit categories; generic tags (truth −1) are excluded.
	tagPred := Labels(scores[flickr.TypeTag])
	hit, total := 0, 0
	for tag, cat := range c.TagCat {
		if cat < 0 {
			continue
		}
		total++
		if tagPred[tag] == cat {
			hit++
		}
	}
	if frac := float64(hit) / float64(total); frac < 0.7 {
		t.Errorf("tag accuracy = %.3f", frac)
	}
}

func TestSeedLabelValidation(t *testing.T) {
	c := dblpCorpus(11)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range label should panic")
		}
	}()
	Propagate(c.Net, 2, []Seed{{Type: dblp.TypePaper, ID: 0, Label: 7}}, Options{})
}

func TestLabelsUnreachedIsMinusOne(t *testing.T) {
	n := hin.NewNetwork()
	n.AddObject("a", "x")
	n.AddObject("a", "y")
	n.AddObject("b", "z")
	n.AddLink("a", 0, "b", 0, 1)
	// Object a/1 is isolated: no label mass.
	scores := Propagate(n, 2, []Seed{{Type: "a", ID: 0, Label: 1}}, Options{})
	pred := Labels(scores["a"])
	if pred[0] != 1 {
		t.Error("seed should keep label")
	}
	if pred[1] != -1 {
		t.Errorf("isolated object label = %d, want -1", pred[1])
	}
}

func TestSampleSeedsShape(t *testing.T) {
	rng := stats.NewRNG(12)
	truth := []int{0, 0, 0, 1, 1, 1, 2}
	seeds := SampleSeeds(rng, "x", truth, 3, 2)
	perClass := map[int]int{}
	for _, s := range seeds {
		perClass[s.Label]++
		if truth[s.ID] != s.Label {
			t.Fatal("seed label must match truth")
		}
	}
	if perClass[0] != 2 || perClass[1] != 2 || perClass[2] != 1 {
		t.Errorf("per-class seed counts = %v", perClass)
	}
}
