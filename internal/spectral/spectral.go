// Package spectral implements normalized spectral clustering
// (Ng–Jordan–Weiss style k-way normalized cut), the classic homogeneous
// clustering method the tutorial lists in §2b.i and the baseline the
// RankClus evaluation compares against.
//
// The top-k eigenvectors of the symmetric normalized adjacency
// D^{-1/2} W D^{-1/2} are computed by orthogonal (subspace) iteration
// with Gram–Schmidt re-orthonormalization — hand-rolled, stdlib only —
// then rows are L2-normalized and clustered with k-means.
package spectral

import (
	"math"

	"hinet/internal/graph"
	"hinet/internal/kmeans"
	"hinet/internal/sparse"
	"hinet/internal/stats"
)

// Options configures the eigensolver and the final k-means.
type Options struct {
	EigenIter int     // subspace iterations (default 150)
	Tolerance float64 // subspace convergence threshold (default 1e-8)
	KMeans    kmeans.Options
}

func (o Options) withDefaults() Options {
	if o.EigenIter == 0 {
		o.EigenIter = 150
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-8
	}
	return o
}

// Result is a spectral clustering outcome.
type Result struct {
	Assign    []int
	Embedding [][]float64 // n × k row-normalized spectral embedding
}

// Cluster partitions an undirected weighted graph into k clusters.
func Cluster(rng *stats.RNG, g *graph.Graph, k int, opt Options) Result {
	return ClusterMatrix(rng, g.Adjacency(), k, opt)
}

// ClusterMatrix is Cluster on a precomputed symmetric adjacency matrix.
func ClusterMatrix(rng *stats.RNG, w *sparse.Matrix, k int, opt Options) Result {
	opt = opt.withDefaults()
	n := w.Rows()
	if n == 0 || k <= 0 {
		return Result{}
	}
	if k > n {
		k = n
	}
	// Normalized adjacency S = D^{-1/2} (W + εI) D^{-1/2}; the small
	// self-loop regularizes isolated nodes.
	dinv := make([]float64, n)
	sparse.ParRange(n, w.NNZ(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d := w.RowSum(i) + 1e-9
			dinv[i] = 1 / math.Sqrt(d)
		}
	})
	mul := func(x, y []float64) {
		// y = S x computed as dinv ⊙ (W (dinv ⊙ x)) + ε dinv² x; the
		// element-wise stages run on the sparse worker pool alongside
		// the parallel MulVec.
		tmp := make([]float64, n)
		sparse.ParRange(n, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				tmp[i] = dinv[i] * x[i]
			}
		})
		w.MulVec(tmp, y)
		sparse.ParRange(n, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				y[i] = dinv[i]*y[i] + 1e-9*dinv[i]*dinv[i]*x[i]
			}
		})
	}
	vecs := TopEigenvectors(rng, mul, n, k, opt.EigenIter, opt.Tolerance)
	// Row-normalize the embedding.
	emb := make([][]float64, n)
	for i := 0; i < n; i++ {
		emb[i] = make([]float64, k)
		norm := 0.0
		for j := 0; j < k; j++ {
			emb[i][j] = vecs[j][i]
			norm += emb[i][j] * emb[i][j]
		}
		if norm > 0 {
			norm = math.Sqrt(norm)
			for j := 0; j < k; j++ {
				emb[i][j] /= norm
			}
		}
	}
	km := kmeans.Cluster(rng, emb, k, opt.KMeans)
	return Result{Assign: km.Assign, Embedding: emb}
}

// TopEigenvectors computes the k dominant eigenvectors (by |λ|) of the
// symmetric operator mul (y = A x on vectors of length n) via orthogonal
// iteration. Returned as k vectors of length n, unit norm, mutually
// orthogonal. Exported for reuse (e.g. in LinkClus's low-rank step).
func TopEigenvectors(rng *stats.RNG, mul func(x, y []float64), n, k, iters int, tol float64) [][]float64 {
	if k > n {
		k = n
	}
	vs := make([][]float64, k)
	for j := range vs {
		vs[j] = make([]float64, n)
		for i := range vs[j] {
			vs[j][i] = rng.NormFloat64()
		}
	}
	orthonormalize(vs)
	next := make([][]float64, k)
	for j := range next {
		next[j] = make([]float64, n)
	}
	for it := 0; it < iters; it++ {
		for j := 0; j < k; j++ {
			mul(vs[j], next[j])
		}
		// copy into vs before orthonormalizing
		maxShift := 0.0
		for j := 0; j < k; j++ {
			vs[j], next[j] = next[j], vs[j]
		}
		orthonormalize(vs)
		for j := 0; j < k; j++ {
			// measure angle change via 1-|dot| against previous (stored in next)
			d := math.Abs(sparse.Dot(vs[j], next[j]))
			nrm := sparse.Norm2(next[j])
			if nrm > 0 {
				d /= nrm
			}
			if shift := 1 - d; shift > maxShift {
				maxShift = shift
			}
		}
		if maxShift < tol {
			break
		}
	}
	return vs
}

// orthonormalize applies modified Gram–Schmidt in place; vectors that
// collapse to ~zero are re-randomized deterministically from their index.
func orthonormalize(vs [][]float64) {
	for j := range vs {
		for i := 0; i < j; i++ {
			d := sparse.Dot(vs[j], vs[i])
			sparse.AXPY(-d, vs[i], vs[j])
		}
		n := sparse.Norm2(vs[j])
		if n < 1e-12 {
			for i := range vs[j] {
				vs[j][i] = math.Sin(float64(i*(j+3) + 1))
			}
			for i := 0; i < j; i++ {
				d := sparse.Dot(vs[j], vs[i])
				sparse.AXPY(-d, vs[i], vs[j])
			}
			n = sparse.Norm2(vs[j])
			if n < 1e-12 {
				continue
			}
		}
		sparse.ScaleVec(1/n, vs[j])
	}
}
