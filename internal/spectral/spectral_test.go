package spectral

import (
	"math"
	"testing"

	"hinet/internal/eval"
	"hinet/internal/netgen"
	"hinet/internal/sparse"
	"hinet/internal/stats"
)

func TestClusterPlantedPartition(t *testing.T) {
	rng := stats.NewRNG(1)
	g, truth := netgen.PlantedPartition(rng, 3, 40, 0.4, 0.02)
	r := Cluster(stats.NewRNG(2), g, 3, Options{})
	if nmi := eval.NMI(truth, r.Assign); nmi < 0.85 {
		t.Errorf("NMI = %v on easy planted partition", nmi)
	}
}

func TestClusterTwoComponents(t *testing.T) {
	// Two disconnected triangles must be split perfectly.
	w := sparse.NewFromDense([][]float64{
		{0, 1, 1, 0, 0, 0},
		{1, 0, 1, 0, 0, 0},
		{1, 1, 0, 0, 0, 0},
		{0, 0, 0, 0, 1, 1},
		{0, 0, 0, 1, 0, 1},
		{0, 0, 0, 1, 1, 0},
	})
	r := ClusterMatrix(stats.NewRNG(3), w, 2, Options{})
	truth := []int{0, 0, 0, 1, 1, 1}
	if acc := eval.Accuracy(truth, r.Assign); acc != 1 {
		t.Errorf("accuracy = %v on disconnected components", acc)
	}
}

func TestEmbeddingRowsUnitNorm(t *testing.T) {
	rng := stats.NewRNG(4)
	g, _ := netgen.PlantedPartition(rng, 2, 25, 0.4, 0.05)
	r := Cluster(stats.NewRNG(5), g, 2, Options{})
	for i, row := range r.Embedding {
		n := 0.0
		for _, v := range row {
			n += v * v
		}
		if math.Abs(math.Sqrt(n)-1) > 1e-6 {
			t.Fatalf("row %d norm = %v", i, math.Sqrt(n))
		}
	}
}

func TestTopEigenvectorsDiagonal(t *testing.T) {
	// Operator = diag(5, 2, 1): dominant eigenvector is e0, second e1.
	d := []float64{5, 2, 1}
	mul := func(x, y []float64) {
		for i := range x {
			y[i] = d[i] * x[i]
		}
	}
	vs := TopEigenvectors(stats.NewRNG(6), mul, 3, 2, 500, 1e-12)
	if math.Abs(math.Abs(vs[0][0])-1) > 1e-4 {
		t.Errorf("dominant eigenvector = %v, want ±e0", vs[0])
	}
	if math.Abs(math.Abs(vs[1][1])-1) > 1e-4 {
		t.Errorf("second eigenvector = %v, want ±e1", vs[1])
	}
	// Orthogonality.
	if dot := vs[0][0]*vs[1][0] + vs[0][1]*vs[1][1] + vs[0][2]*vs[1][2]; math.Abs(dot) > 1e-6 {
		t.Errorf("eigenvectors not orthogonal: %v", dot)
	}
}

func TestTopEigenvectorsSymmetricMatrix(t *testing.T) {
	// A = [[2,1],[1,2]] has eigenpairs (3, [1,1]/√2), (1, [1,-1]/√2).
	a := sparse.NewFromDense([][]float64{{2, 1}, {1, 2}})
	mul := func(x, y []float64) { a.MulVec(x, y) }
	vs := TopEigenvectors(stats.NewRNG(7), mul, 2, 1, 300, 1e-12)
	want := 1 / math.Sqrt(2)
	if math.Abs(math.Abs(vs[0][0])-want) > 1e-6 || math.Abs(math.Abs(vs[0][1])-want) > 1e-6 {
		t.Errorf("dominant = %v, want ±[0.707, 0.707]", vs[0])
	}
}

func TestDegenerateInputs(t *testing.T) {
	r := ClusterMatrix(stats.NewRNG(8), sparse.NewFromCoords(0, 0, nil), 3, Options{})
	if r.Assign != nil {
		t.Error("empty matrix should give empty result")
	}
	// k > n clamps
	w := sparse.NewFromDense([][]float64{{0, 1}, {1, 0}})
	r = ClusterMatrix(stats.NewRNG(9), w, 5, Options{})
	if len(r.Assign) != 2 {
		t.Error("k>n should clamp")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := stats.NewRNG(10)
	g, _ := netgen.PlantedPartition(rng, 2, 30, 0.4, 0.05)
	a := Cluster(stats.NewRNG(11), g, 2, Options{})
	b := Cluster(stats.NewRNG(11), g, 2, Options{})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same-seed spectral clustering differs")
		}
	}
}
