package flickr

import (
	"testing"

	"hinet/internal/stats"
)

func TestGenerateShape(t *testing.T) {
	c := Generate(stats.NewRNG(1), Config{Photos: 300})
	n := c.Net
	if n.Count(TypePhoto) != 300 {
		t.Errorf("photos = %d", n.Count(TypePhoto))
	}
	if n.Count(TypeTag) != 4*60+40 {
		t.Errorf("tags = %d", n.Count(TypeTag))
	}
	if n.Count(TypeUser) != 150 || n.Count(TypeGroup) != 24 {
		t.Error("user/group counts wrong")
	}
	if len(c.PhotoCat) != 300 || len(c.TagCat) != 280 {
		t.Error("truth sizes wrong")
	}
}

func TestEveryPhotoHasOwnerAndTags(t *testing.T) {
	c := Generate(stats.NewRNG(2), Config{Photos: 200})
	pu := c.Net.Relation(TypePhoto, TypeUser)
	pt := c.Net.Relation(TypePhoto, TypeTag)
	for p := 0; p < 200; p++ {
		if pu.RowNNZ(p) != 1 {
			t.Fatalf("photo %d has %d owners", p, pu.RowNNZ(p))
		}
		if nt := pt.RowNNZ(p); nt < 3 || nt > 7 {
			t.Fatalf("photo %d has %d tags", p, nt)
		}
	}
}

func TestTagCategoryCoherence(t *testing.T) {
	c := Generate(stats.NewRNG(3), Config{Photos: 500})
	pt := c.Net.Relation(TypePhoto, TypeTag)
	match, total := 0, 0
	for p := 0; p < 500; p++ {
		pt.Row(p, func(tag int, w float64) {
			if c.TagCat[tag] < 0 {
				return // generic tags carry no category
			}
			total++
			if c.TagCat[tag] == c.PhotoCat[p] {
				match++
			}
		})
	}
	if frac := float64(match) / float64(total); frac < 0.95 {
		t.Errorf("category-tag coherence = %.3f", frac)
	}
}

func TestUsersJoinGroups(t *testing.T) {
	c := Generate(stats.NewRNG(4), Config{Photos: 100})
	ug := c.Net.Relation(TypeUser, TypeGroup)
	for u := 0; u < c.Config.Users; u++ {
		if ug.RowNNZ(u) < 2 {
			t.Fatalf("user %d joined %d groups", u, ug.RowNNZ(u))
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Generate(stats.NewRNG(5), Config{Photos: 150})
	b := Generate(stats.NewRNG(5), Config{Photos: 150})
	if a.Net.LinkCount(TypePhoto, TypeTag) != b.Net.LinkCount(TypePhoto, TypeTag) {
		t.Error("same-seed corpora differ")
	}
	for i := range a.PhotoCat {
		if a.PhotoCat[i] != b.PhotoCat[i] {
			t.Fatal("photo categories differ")
		}
	}
}

func TestCategoriesAccessor(t *testing.T) {
	c := Generate(stats.NewRNG(6), Config{Categories: 3, Photos: 50})
	if c.Categories() != 3 {
		t.Errorf("Categories = %d", c.Categories())
	}
	for _, cat := range c.PhotoCat {
		if cat < 0 || cat >= 3 {
			t.Fatal("photo category out of range")
		}
	}
}
