// Package flickr generates the synthetic photo-sharing network that
// substitutes for the real Flickr case study of tutorial §6: photos
// linked to tags, owners (users) and groups, with latent photo
// categories driving tag vocabulary, user interests and group themes.
//
// The tagging-graph web-object classification study (Yin, Li, Mei, Han
// — KDD'09) needs exactly this structure: photo labels correlate with
// tags, tags are shared across photos, users and groups bridge photos
// of the same interest, and a fraction of tags is generic noise.
package flickr

import (
	"fmt"

	"hinet/internal/hin"
	"hinet/internal/stats"
)

// Type names of the Flickr schema.
const (
	TypePhoto = hin.Type("photo")
	TypeTag   = hin.Type("tag")
	TypeUser  = hin.Type("user")
	TypeGroup = hin.Type("group")
)

// Config controls corpus size and noise.
type Config struct {
	Categories    int     // latent photo categories, default 4
	Photos        int     // default 1000
	TagsPerCat    int     // category vocabulary size, default 60
	SharedTags    int     // generic vocabulary, default 40
	Users         int     // default 150
	Groups        int     // default 24
	MinTags       int     // tags per photo lower bound, default 3
	MaxTags       int     // upper bound, default 7
	SharedTagRate float64 // P(tag drawn from generic vocab), default 0.3
	UserFocus     float64 // P(user uploads within home category), default 0.75
	GroupRate     float64 // P(photo posted to a group), default 0.7
	TagSkew       float64 // Zipf exponent, default 1.05
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.Categories, 4)
	def(&c.Photos, 1000)
	def(&c.TagsPerCat, 60)
	def(&c.SharedTags, 40)
	def(&c.Users, 150)
	def(&c.Groups, 24)
	def(&c.MinTags, 3)
	def(&c.MaxTags, 7)
	if c.SharedTagRate == 0 {
		c.SharedTagRate = 0.3
	}
	if c.UserFocus == 0 {
		c.UserFocus = 0.75
	}
	if c.GroupRate == 0 {
		c.GroupRate = 0.7
	}
	if c.TagSkew == 0 {
		c.TagSkew = 1.05
	}
	return c
}

// Corpus is a generated tagging graph with ground truth.
type Corpus struct {
	Net    *hin.Network
	Config Config

	PhotoCat []int // category per photo
	TagCat   []int // category per tag (−1 for generic)
	UserCat  []int // home category per user
	GroupCat []int // theme per group
}

// Generate builds the corpus deterministically from the seed.
func Generate(rng *stats.RNG, cfg Config) *Corpus {
	cfg = cfg.withDefaults()
	k := cfg.Categories
	n := hin.NewNetwork()
	c := &Corpus{Net: n, Config: cfg}

	for cat := 0; cat < k; cat++ {
		for t := 0; t < cfg.TagsPerCat; t++ {
			n.AddObject(TypeTag, fmt.Sprintf("cat%d-tag%d", cat, t))
			c.TagCat = append(c.TagCat, cat)
		}
	}
	for t := 0; t < cfg.SharedTags; t++ {
		n.AddObject(TypeTag, fmt.Sprintf("generic-tag%d", t))
		c.TagCat = append(c.TagCat, -1)
	}
	for u := 0; u < cfg.Users; u++ {
		n.AddObject(TypeUser, fmt.Sprintf("user%d", u))
		c.UserCat = append(c.UserCat, rng.Intn(k))
	}
	for g := 0; g < cfg.Groups; g++ {
		n.AddObject(TypeGroup, fmt.Sprintf("group%d", g))
		c.GroupCat = append(c.GroupCat, g%k)
	}
	// Users join a few groups, biased to their home category.
	groupsByCat := make([][]int, k)
	for g, cat := range c.GroupCat {
		groupsByCat[cat] = append(groupsByCat[cat], g)
	}
	for u := 0; u < cfg.Users; u++ {
		joined := map[int]bool{}
		for len(joined) < 2 {
			var g int
			if rng.Float64() < cfg.UserFocus && len(groupsByCat[c.UserCat[u]]) > 0 {
				gs := groupsByCat[c.UserCat[u]]
				g = gs[rng.Intn(len(gs))]
			} else {
				g = rng.Intn(cfg.Groups)
			}
			if !joined[g] {
				joined[g] = true
				n.AddLink(TypeUser, u, TypeGroup, g, 1)
			}
		}
	}

	tagZipf := stats.NewZipf(rng, cfg.TagsPerCat, cfg.TagSkew)
	sharedBase := k * cfg.TagsPerCat
	usersByCat := make([][]int, k)
	for u, cat := range c.UserCat {
		usersByCat[cat] = append(usersByCat[cat], u)
	}

	for p := 0; p < cfg.Photos; p++ {
		cat := rng.Intn(k)
		pid := n.AddObject(TypePhoto, fmt.Sprintf("photo%d", p))
		c.PhotoCat = append(c.PhotoCat, cat)

		// Owner: usually someone whose home category matches.
		var owner int
		if rng.Float64() < cfg.UserFocus && len(usersByCat[cat]) > 0 {
			us := usersByCat[cat]
			owner = us[rng.Intn(len(us))]
		} else {
			owner = rng.Intn(cfg.Users)
		}
		n.AddLink(TypePhoto, pid, TypeUser, owner, 1)

		// Tags: category vocabulary mixed with generic ones.
		nt := cfg.MinTags + rng.Intn(cfg.MaxTags-cfg.MinTags+1)
		used := map[int]bool{}
		for len(used) < nt {
			var tag int
			if cfg.SharedTags > 0 && rng.Float64() < cfg.SharedTagRate {
				tag = sharedBase + rng.Intn(cfg.SharedTags)
			} else {
				tag = cat*cfg.TagsPerCat + tagZipf.Draw()
			}
			if !used[tag] {
				used[tag] = true
				n.AddLink(TypePhoto, pid, TypeTag, tag, 1)
			}
		}

		// Groups: themed posting.
		if rng.Float64() < cfg.GroupRate {
			var g int
			if len(groupsByCat[cat]) > 0 && rng.Float64() < cfg.UserFocus {
				gs := groupsByCat[cat]
				g = gs[rng.Intn(len(gs))]
			} else {
				g = rng.Intn(cfg.Groups)
			}
			n.AddLink(TypePhoto, pid, TypeGroup, g, 1)
		}
	}
	return c
}

// Categories returns the number of latent categories.
func (c *Corpus) Categories() int { return c.Config.Categories }
