// Package netgen generates the synthetic networks the tutorial's
// statistics section (§2a) analyses and the clustering experiments need
// as planted ground truth:
//
//   - Erdős–Rényi G(n, p) — the null model for clustering coefficient,
//   - Watts–Strogatz — the small-world phenomenon,
//   - Barabási–Albert — the power-law (preferential attachment) model,
//   - forest fire — densification over time (Leskovec et al.),
//   - planted partition — community ground truth for SCAN/spectral, and
//   - BiTyped — the planted bi-typed network of the RankClus synthetic
//     accuracy study (EDBT'09 §5.2).
//
// All generators take an explicit *stats.RNG so runs replay exactly.
package netgen

import (
	"fmt"

	"hinet/internal/graph"
	"hinet/internal/hin"
	"hinet/internal/stats"
)

// ErdosRenyi samples G(n, p): each unordered pair is an edge with
// probability p.
func ErdosRenyi(rng *stats.RNG, n int, p float64) *graph.Graph {
	g := graph.New(n, false)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j, 1)
			}
		}
	}
	return g
}

// WattsStrogatz builds the small-world ring lattice: n nodes, each
// joined to its k nearest neighbors (k even), with each edge rewired to
// a random target with probability beta.
func WattsStrogatz(rng *stats.RNG, n, k int, beta float64) *graph.Graph {
	if k%2 != 0 || k >= n {
		panic("netgen: WattsStrogatz needs even k < n")
	}
	type pair struct{ u, v int }
	edges := make(map[pair]bool)
	for i := 0; i < n; i++ {
		for d := 1; d <= k/2; d++ {
			j := (i + d) % n
			edges[pair{min(i, j), max(i, j)}] = true
		}
	}
	// Rewire: iterate deterministic lattice order.
	for i := 0; i < n; i++ {
		for d := 1; d <= k/2; d++ {
			j := (i + d) % n
			key := pair{min(i, j), max(i, j)}
			if !edges[key] || rng.Float64() >= beta {
				continue
			}
			// pick new endpoint avoiding self loops and duplicates
			for attempt := 0; attempt < 20; attempt++ {
				t := rng.Intn(n)
				if t == i {
					continue
				}
				nk := pair{min(i, t), max(i, t)}
				if edges[nk] {
					continue
				}
				delete(edges, key)
				edges[nk] = true
				break
			}
		}
	}
	g := graph.New(n, false)
	for e := range edges {
		g.AddEdge(e.u, e.v, 1)
	}
	return g
}

// BarabasiAlbert grows a preferential-attachment graph: start from a
// small clique of m+1 nodes; each new node attaches to m existing nodes
// chosen proportionally to their current degree. The result has a
// power-law degree distribution with exponent ≈ 3.
func BarabasiAlbert(rng *stats.RNG, n, m int) *graph.Graph {
	if m < 1 || n <= m {
		panic("netgen: BarabasiAlbert needs 1 <= m < n")
	}
	g := graph.New(n, false)
	// repeated-endpoint list implements preferential attachment in O(1)
	var endpoints []int
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.AddEdge(i, j, 1)
			endpoints = append(endpoints, i, j)
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := make(map[int]bool)
		for len(chosen) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			if t != v {
				chosen[t] = true
			}
		}
		for t := range chosen {
			g.AddEdge(v, t, 1)
			endpoints = append(endpoints, v, t)
		}
	}
	return g
}

// ForestFire grows a directed graph with the forest-fire model
// (forward/backward burning probabilities p, r), which produces the
// densification power law E(t) ∝ N(t)^a with a > 1. Snapshots records
// (nodes, edges) after every snapshotEvery insertions.
type FireSnapshot struct {
	Nodes, Edges int
}

// ForestFire returns the grown graph plus densification snapshots.
func ForestFire(rng *stats.RNG, n int, p, r float64, snapshotEvery int) (*graph.Graph, []FireSnapshot) {
	g := graph.New(n, true)
	var snaps []FireSnapshot
	edges := 0
	for v := 1; v < n; v++ {
		// Each new node picks an ambassador and burns outward.
		amb := rng.Intn(v)
		visited := map[int]bool{v: true}
		frontier := []int{amb}
		g.AddEdge(v, amb, 1)
		edges++
		visited[amb] = true
		for len(frontier) > 0 {
			u := frontier[0]
			frontier = frontier[1:]
			// geometric number of forward links
			burn := geometric(rng, p)
			cnt := 0
			for _, e := range g.Neighbors(u) {
				if cnt >= burn {
					break
				}
				if !visited[e.To] {
					visited[e.To] = true
					g.AddEdge(v, e.To, 1)
					edges++
					frontier = append(frontier, e.To)
					cnt++
				}
			}
			// backward burning along in-links at rate r·p
			if r > 0 {
				backBurn := geometric(rng, p*r)
				cnt = 0
				for w := 0; w < v && cnt < backBurn; w++ {
					if visited[w] || !g.HasEdge(w, u) {
						continue
					}
					visited[w] = true
					g.AddEdge(v, w, 1)
					edges++
					frontier = append(frontier, w)
					cnt++
				}
			}
		}
		if snapshotEvery > 0 && (v+1)%snapshotEvery == 0 {
			snaps = append(snaps, FireSnapshot{Nodes: v + 1, Edges: edges})
		}
	}
	return g, snaps
}

func geometric(rng *stats.RNG, p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << 20
	}
	k := 0
	for rng.Float64() < p {
		k++
		if k > 1000 {
			break
		}
	}
	return k
}

// PlantedPartition builds k communities of size each; within-community
// pairs are edges with probability pin, cross pairs with pout. Returns
// the graph and ground-truth community labels.
func PlantedPartition(rng *stats.RNG, k, size int, pin, pout float64) (*graph.Graph, []int) {
	n := k * size
	g := graph.New(n, false)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i / size
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pout
			if labels[i] == labels[j] {
				p = pin
			}
			if rng.Float64() < p {
				g.AddEdge(i, j, 1)
			}
		}
	}
	return g, labels
}

// BiTypedConfig parameterizes the RankClus synthetic bi-typed network
// following the EDBT'09 accuracy study: K clusters; each cluster k has
// Nx[k] target objects (conferences) and Ny[k] attribute objects
// (authors); P[k] links are drawn inside cluster k with Zipf-skewed
// endpoints; and a fraction Cross of every object's links leak to other
// clusters, controlling separability.
type BiTypedConfig struct {
	K     int
	Nx    []int   // per-cluster target-type counts
	Ny    []int   // per-cluster attribute-type counts
	Links []int   // per-cluster link counts
	Cross float64 // probability a link's attribute endpoint leaks to another cluster
	Skew  float64 // Zipf exponent for endpoint popularity (e.g. 0.95)
}

// BiTypedResult is a planted bi-typed network plus ground truth.
type BiTypedResult struct {
	Net    *hin.Network
	X, Y   hin.Type
	TruthX []int // cluster of each target object
	TruthY []int // dominant cluster of each attribute object
}

// BiTyped generates the planted network. Target type "conf", attribute
// type "author" (names are cosmetic; RankClus sees only the structure).
func BiTyped(rng *stats.RNG, cfg BiTypedConfig) *BiTypedResult {
	if cfg.K != len(cfg.Nx) || cfg.K != len(cfg.Ny) || cfg.K != len(cfg.Links) {
		panic("netgen: BiTyped config length mismatch")
	}
	n := hin.NewNetwork()
	const X, Y = hin.Type("conf"), hin.Type("author")
	var truthX, truthY []int
	xBase := make([]int, cfg.K)
	yBase := make([]int, cfg.K)
	for k := 0; k < cfg.K; k++ {
		xBase[k] = n.Count(X)
		for i := 0; i < cfg.Nx[k]; i++ {
			n.AddObject(X, fmt.Sprintf("conf-k%d-%d", k, i))
			truthX = append(truthX, k)
		}
	}
	for k := 0; k < cfg.K; k++ {
		yBase[k] = n.Count(Y)
		for i := 0; i < cfg.Ny[k]; i++ {
			n.AddObject(Y, fmt.Sprintf("author-k%d-%d", k, i))
			truthY = append(truthY, k)
		}
	}
	for k := 0; k < cfg.K; k++ {
		zx := stats.NewZipf(rng, cfg.Nx[k], cfg.Skew)
		zy := stats.NewZipf(rng, cfg.Ny[k], cfg.Skew)
		for l := 0; l < cfg.Links[k]; l++ {
			x := xBase[k] + zx.Draw()
			kk := k
			if cfg.K > 1 && rng.Float64() < cfg.Cross {
				kk = rng.Intn(cfg.K - 1)
				if kk >= k {
					kk++
				}
			}
			var y int
			if kk == k {
				y = yBase[k] + zy.Draw()
			} else {
				y = yBase[kk] + rng.Intn(cfg.Ny[kk])
			}
			n.AddLink(X, x, Y, y, 1)
		}
	}
	return &BiTypedResult{Net: n, X: X, Y: Y, TruthX: truthX, TruthY: truthY}
}

// MediumBiTyped returns the "medium separation, medium density"
// configuration of the RankClus study: 3 clusters, 10/15/15 conferences,
// 500 authors each, 1000/1500/2000 links, 20% cross links.
func MediumBiTyped() BiTypedConfig {
	return BiTypedConfig{
		K:     3,
		Nx:    []int{10, 15, 15},
		Ny:    []int{500, 500, 500},
		Links: []int{1000, 1500, 2000},
		Cross: 0.20,
		Skew:  0.95,
	}
}
