package netgen

import (
	"testing"

	"hinet/internal/stats"
)

func TestErdosRenyiDensity(t *testing.T) {
	rng := stats.NewRNG(1)
	g := ErdosRenyi(rng, 200, 0.1)
	maxEdges := 200 * 199 / 2
	got := float64(g.M()) / float64(maxEdges)
	if got < 0.08 || got > 0.12 {
		t.Errorf("ER density = %.4f, want ≈0.1", got)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(stats.NewRNG(7), 50, 0.2)
	b := ErdosRenyi(stats.NewRNG(7), 50, 0.2)
	if a.M() != b.M() {
		t.Error("same-seed ER graphs differ")
	}
}

func TestWattsStrogatzDegreePreserved(t *testing.T) {
	rng := stats.NewRNG(2)
	g := WattsStrogatz(rng, 100, 4, 0.1)
	// rewiring preserves edge count: n*k/2
	if g.M() != 200 {
		t.Errorf("WS edges = %d, want 200", g.M())
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd k should panic")
		}
	}()
	WattsStrogatz(stats.NewRNG(1), 10, 3, 0.1)
}

func TestBarabasiAlbertHubEmergence(t *testing.T) {
	rng := stats.NewRNG(3)
	g := BarabasiAlbert(rng, 2000, 3)
	maxDeg, sumDeg := 0, 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sumDeg) / float64(g.N())
	if maxDeg < int(10*avg) {
		t.Errorf("BA max degree %d not hub-like vs avg %.1f", maxDeg, avg)
	}
	// each new node adds m edges
	wantEdges := 3*2 + (2000-4)*3 // initial K4 (m+1 clique, m=3 → 6 edges) + growth
	if g.M() != wantEdges {
		t.Errorf("BA edges = %d, want %d", g.M(), wantEdges)
	}
}

func TestForestFireDensifies(t *testing.T) {
	rng := stats.NewRNG(4)
	_, snaps := ForestFire(rng, 3000, 0.35, 0.3, 500)
	if len(snaps) < 3 {
		t.Fatalf("too few snapshots: %d", len(snaps))
	}
	// average degree must grow over time (densification)
	first := float64(snaps[0].Edges) / float64(snaps[0].Nodes)
	last := float64(snaps[len(snaps)-1].Edges) / float64(snaps[len(snaps)-1].Nodes)
	if last <= first {
		t.Errorf("no densification: avg degree %.3f → %.3f", first, last)
	}
}

func TestPlantedPartitionRecoverableStructure(t *testing.T) {
	rng := stats.NewRNG(5)
	g, labels := PlantedPartition(rng, 3, 40, 0.3, 0.01)
	if g.N() != 120 || len(labels) != 120 {
		t.Fatal("size wrong")
	}
	// within-community edges should dominate
	within, cross := 0, 0
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if e.To < u {
				continue
			}
			if labels[u] == labels[e.To] {
				within++
			} else {
				cross++
			}
		}
	}
	if within <= 3*cross {
		t.Errorf("planted structure weak: within=%d cross=%d", within, cross)
	}
}

func TestBiTypedShape(t *testing.T) {
	rng := stats.NewRNG(6)
	res := BiTyped(rng, MediumBiTyped())
	if res.Net.Count(res.X) != 40 {
		t.Errorf("conf count = %d, want 40", res.Net.Count(res.X))
	}
	if res.Net.Count(res.Y) != 1500 {
		t.Errorf("author count = %d, want 1500", res.Net.Count(res.Y))
	}
	if len(res.TruthX) != 40 || len(res.TruthY) != 1500 {
		t.Error("truth sizes wrong")
	}
	w := res.Net.Relation(res.X, res.Y)
	if int(w.Sum()) != 4500 {
		t.Errorf("total link weight = %v, want 4500", w.Sum())
	}
}

func TestBiTypedClusterCoherence(t *testing.T) {
	rng := stats.NewRNG(7)
	res := BiTyped(rng, MediumBiTyped())
	w := res.Net.Relation(res.X, res.Y)
	// Most of each conference's link mass should stay in its own cluster.
	agree, total := 0.0, 0.0
	for x := 0; x < w.Rows(); x++ {
		kx := res.TruthX[x]
		w.Row(x, func(y int, v float64) {
			total += v
			if res.TruthY[y] == kx {
				agree += v
			}
		})
	}
	if agree/total < 0.7 {
		t.Errorf("in-cluster link mass = %.2f, want > 0.7", agree/total)
	}
}

func TestBiTypedConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched config should panic")
		}
	}()
	BiTyped(stats.NewRNG(1), BiTypedConfig{K: 2, Nx: []int{1}, Ny: []int{1, 1}, Links: []int{1, 1}})
}
