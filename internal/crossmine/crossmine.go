// Package crossmine implements CrossMine (Yin, Han, Yang, Yu —
// TKDE'06), the cross-relational classifier of tutorial §5a. Instead of
// flattening a multi-relational database into one table (losing the
// semantics of one-to-many joins), CrossMine learns a decision list of
// conjunctive rules whose literals live in *different tables*, reached
// from the target table along foreign-key join paths, and evaluates
// them with tuple-ID propagation (internal/relational.IDSet) rather
// than materialized joins.
//
// A literal is "∃ a tuple t joined to the target along path P with
// t.column op value". Rules grow greedily by FOIL gain; sequential
// covering removes captured positives until none remain. Prediction
// fires the first matching rule, else the default class.
package crossmine

import (
	"fmt"
	"math"
	"sort"

	"hinet/internal/relational"
)

// Step is one foreign-key hop in a join path. Forward means the current
// frontier table owns the FK column (frontier → referenced table);
// backward means the edge's table references the frontier (frontier ←
// FK-owning table).
type Step struct {
	Edge    relational.JoinEdge
	Forward bool
}

// Op is a literal comparison operator.
type Op int

// Operators.
const (
	Eq Op = iota // string equality
	Le           // numeric ≤
	Gt           // numeric >
)

// Literal is one condition: follow Path from the target table, test the
// final table's column against Value.
type Literal struct {
	Path   []Step
	Table  string // final table
	Column string
	Op     Op
	Value  any
}

// String renders the literal for rule inspection.
func (l Literal) String() string {
	ops := map[Op]string{Eq: "=", Le: "<=", Gt: ">"}
	return fmt.Sprintf("%s.%s %s %v (hops=%d)", l.Table, l.Column, ops[l.Op], l.Value, len(l.Path))
}

// Rule is a conjunction of literals predicting class 1.
type Rule struct {
	Literals  []Literal
	Precision float64 // training precision
	Coverage  int     // training positives covered
}

// Model is a fitted decision list.
type Model struct {
	Target  string
	Rules   []Rule
	Default int

	matched []map[int]bool // per rule, target ids matched (whole DB)
}

// Options tunes training.
type Options struct {
	MaxRules     int     // sequential covering cap, default 8
	MaxLiterals  int     // literals per rule, default 3
	MaxDepth     int     // join path hops, default 2
	MinCoverage  int     // minimum positives a rule must cover, default 3
	MaxCatValues int     // distinct categorical values considered per column, default 8
	MinPrecision float64 // stop growing a rule at this precision, default 0.85
}

func (o Options) withDefaults() Options {
	if o.MaxRules == 0 {
		o.MaxRules = 8
	}
	if o.MaxLiterals == 0 {
		o.MaxLiterals = 3
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 2
	}
	if o.MinCoverage == 0 {
		o.MinCoverage = 3
	}
	if o.MaxCatValues == 0 {
		o.MaxCatValues = 8
	}
	if o.MinPrecision == 0 {
		o.MinPrecision = 0.85
	}
	return o
}

// EvalLiteral returns the set of target-tuple ids satisfying the
// literal over the whole database.
func EvalLiteral(db *relational.DB, target string, l Literal) map[int]bool {
	ids := relational.InitIDs(db.Table(target))
	for _, s := range l.Path {
		if s.Forward {
			ids = db.PropagateForward(s.Edge, ids)
		} else {
			ids = db.PropagateBackward(s.Edge, ids)
		}
	}
	t := db.Table(l.Table)
	ci := t.Schema.ColIndex(l.Column)
	out := make(map[int]bool)
	for rowID, targets := range ids {
		if !testValue(t.Rows[rowID][ci], l.Op, l.Value) {
			continue
		}
		for id := range targets {
			out[id] = true
		}
	}
	return out
}

func testValue(v any, op Op, want any) bool {
	switch op {
	case Eq:
		return v == want
	case Le:
		return v.(float64) <= want.(float64)
	case Gt:
		return v.(float64) > want.(float64)
	}
	return false
}

// Train learns a decision list for binary labels (0/1) on the target
// table, using only tuples in trainIdx.
func Train(db *relational.DB, target string, labels []int, trainIdx []int, opt Options) *Model {
	opt = opt.withDefaults()
	m := &Model{Target: target}

	cands := candidates(db, target, opt)
	// Evaluate every candidate literal once over the whole DB.
	sat := make([]map[int]bool, len(cands))
	for i, l := range cands {
		sat[i] = EvalLiteral(db, target, l)
	}

	inTrain := make(map[int]bool, len(trainIdx))
	for _, i := range trainIdx {
		inTrain[i] = true
	}
	remaining := make(map[int]bool) // uncovered train positives
	negatives := make(map[int]bool)
	for _, i := range trainIdx {
		if labels[i] == 1 {
			remaining[i] = true
		} else {
			negatives[i] = true
		}
	}

	for len(m.Rules) < opt.MaxRules && len(remaining) >= opt.MinCoverage {
		rule, matchedAll := growRule(cands, sat, inTrain, labels, remaining, opt)
		if rule == nil {
			break
		}
		covered := 0
		for id := range matchedAll {
			if remaining[id] {
				covered++
			}
		}
		if covered < opt.MinCoverage {
			break
		}
		rule.Coverage = covered
		m.Rules = append(m.Rules, *rule)
		m.matched = append(m.matched, matchedAll)
		for id := range matchedAll {
			delete(remaining, id)
		}
	}

	// Default class: majority among train tuples not matched by any rule.
	def0, def1 := 0, 0
	for _, i := range trainIdx {
		hit := false
		for _, set := range m.matched {
			if set[i] {
				hit = true
				break
			}
		}
		if !hit {
			if labels[i] == 1 {
				def1++
			} else {
				def0++
			}
		}
	}
	if def1 > def0 {
		m.Default = 1
	}
	return m
}

// growRule greedily extends a rule by FOIL gain against the remaining
// positives. Returns the rule and its full-DB match set.
func growRule(cands []Literal, sat []map[int]bool, inTrain map[int]bool, labels []int,
	positives map[int]bool, opt Options) (*Rule, map[int]bool) {

	current := make(map[int]bool) // matched target ids (whole DB); nil-stage = all
	first := true
	var rule Rule
	used := make(map[int]bool)

	countPN := func(set map[int]bool) (p, n int) {
		for id := range set {
			if !inTrain[id] {
				continue
			}
			if positives[id] {
				p++
			} else if labels[id] == 0 {
				n++
			}
		}
		return
	}
	// Base counts for the empty rule: all train tuples.
	p0, n0 := 0, 0
	for id := range inTrain {
		if positives[id] {
			p0++
		} else if labels[id] == 0 {
			n0++
		}
	}

	for len(rule.Literals) < opt.MaxLiterals {
		bestGain, bestIdx := 1e-9, -1
		var bestSet map[int]bool
		var bestP, bestN int
		for i := range cands {
			if used[i] {
				continue
			}
			var next map[int]bool
			if first {
				next = sat[i]
			} else {
				next = intersect(current, sat[i])
			}
			p1, n1 := countPN(next)
			if p1 < opt.MinCoverage {
				continue
			}
			gain := foilGain(p0, n0, p1, n1)
			if gain > bestGain {
				bestGain, bestIdx, bestSet = gain, i, next
				bestP, bestN = p1, n1
			}
		}
		if bestIdx < 0 {
			break
		}
		rule.Literals = append(rule.Literals, cands[bestIdx])
		used[bestIdx] = true
		current = bestSet
		first = false
		p0, n0 = bestP, bestN
		rule.Precision = float64(bestP) / float64(bestP+bestN)
		if rule.Precision >= opt.MinPrecision {
			break
		}
	}
	if len(rule.Literals) == 0 {
		return nil, nil
	}
	return &rule, current
}

func foilGain(p0, n0, p1, n1 int) float64 {
	if p1 == 0 {
		return 0
	}
	f := func(p, n int) float64 {
		if p == 0 {
			return math.Inf(-1)
		}
		return math.Log2(float64(p) / float64(p+n))
	}
	return float64(p1) * (f(p1, n1) - f(p0, n0))
}

func intersect(a, b map[int]bool) map[int]bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	out := make(map[int]bool)
	for id := range a {
		if b[id] {
			out[id] = true
		}
	}
	return out
}

// Predict classifies target tuple idx: the first matching rule fires.
func (m *Model) Predict(idx int) int {
	for _, set := range m.matched {
		if set[idx] {
			return 1
		}
	}
	return m.Default
}

// Accuracy scores the model on the given tuple ids.
func (m *Model) Accuracy(labels []int, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	hit := 0
	for _, i := range idx {
		if m.Predict(i) == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(idx))
}

// candidates enumerates literals: join paths up to MaxDepth hops from
// the target (BFS over the schema's FK edges, both directions), then
// per reachable table every categorical value (top MaxCatValues by
// frequency) and numeric quartile thresholds.
func candidates(db *relational.DB, target string, opt Options) []Literal {
	type pathState struct {
		table string
		path  []Step
	}
	var fks []struct {
		owner, column, ref string
	}
	for _, name := range db.Tables() {
		t := db.Table(name)
		for _, c := range t.Schema.Columns {
			if c.FK != "" {
				fks = append(fks, struct{ owner, column, ref string }{name, c.Name, c.FK})
			}
		}
	}
	var states []pathState
	frontier := []pathState{{table: target}}
	states = append(states, frontier...)
	for d := 0; d < opt.MaxDepth; d++ {
		var next []pathState
		for _, st := range frontier {
			for _, fk := range fks {
				if fk.owner == st.table {
					next = append(next, pathState{
						table: fk.ref,
						path:  appendStep(st.path, Step{Edge: relational.JoinEdge{Table: fk.owner, Column: fk.column}, Forward: true}),
					})
				}
				if fk.ref == st.table && fk.owner != st.table {
					next = append(next, pathState{
						table: fk.owner,
						path:  appendStep(st.path, Step{Edge: relational.JoinEdge{Table: fk.owner, Column: fk.column}, Forward: false}),
					})
				}
			}
		}
		states = append(states, next...)
		frontier = next
	}

	var out []Literal
	seen := make(map[string]bool)
	for _, st := range states {
		t := db.Table(st.table)
		for ci, c := range t.Schema.Columns {
			if c.FK != "" {
				continue
			}
			switch c.Type {
			case StringColAlias:
				counts := make(map[string]int)
				for _, row := range t.Rows {
					counts[row[ci].(string)]++
				}
				vals := make([]string, 0, len(counts))
				for v := range counts {
					vals = append(vals, v)
				}
				sort.Slice(vals, func(a, b int) bool {
					if counts[vals[a]] != counts[vals[b]] {
						return counts[vals[a]] > counts[vals[b]]
					}
					return vals[a] < vals[b]
				})
				if len(vals) > opt.MaxCatValues {
					vals = vals[:opt.MaxCatValues]
				}
				for _, v := range vals {
					l := Literal{Path: st.path, Table: st.table, Column: c.Name, Op: Eq, Value: v}
					if key := l.String(); !seen[key] {
						seen[key] = true
						out = append(out, l)
					}
				}
			case FloatColAlias:
				var xs []float64
				for _, row := range t.Rows {
					xs = append(xs, row[ci].(float64))
				}
				if len(xs) == 0 {
					continue
				}
				sort.Float64s(xs)
				for _, q := range []float64{0.25, 0.5, 0.75} {
					th := xs[int(q*float64(len(xs)-1))]
					for _, op := range []Op{Le, Gt} {
						l := Literal{Path: st.path, Table: st.table, Column: c.Name, Op: op, Value: th}
						if key := l.String(); !seen[key] {
							seen[key] = true
							out = append(out, l)
						}
					}
				}
			}
		}
	}
	return out
}

// Aliases keep the switch readable without importing the enum names
// into this package's namespace.
const (
	StringColAlias = relational.StringCol
	FloatColAlias  = relational.FloatCol
)

func appendStep(path []Step, s Step) []Step {
	out := make([]Step, len(path)+1)
	copy(out, path)
	out[len(path)] = s
	return out
}

// SingleTableBaseline is the flattened comparator: a 1R classifier that
// picks the single best (target-table column, value) split on the
// training data and predicts with it. Cross-table signal is invisible
// to it, which is exactly the gap the CrossMine evaluation reports.
type SingleTableBaseline struct {
	Column  int
	Value   any
	Match   int // class when the value matches
	NoMatch int
}

// TrainSingleTable fits the 1R baseline.
func TrainSingleTable(db *relational.DB, target string, labels []int, trainIdx []int) *SingleTableBaseline {
	t := db.Table(target)
	best := &SingleTableBaseline{Column: -1}
	bestAcc := -1.0
	// Also consider the constant classifier.
	zeros, ones := 0, 0
	for _, i := range trainIdx {
		if labels[i] == 1 {
			ones++
		} else {
			zeros++
		}
	}
	constClass := 0
	if ones > zeros {
		constClass = 1
	}
	best.Match = constClass
	best.NoMatch = constClass
	bestAcc = float64(maxInt(zeros, ones)) / float64(len(trainIdx))

	for ci, c := range t.Schema.Columns {
		if c.FK != "" || c.Type != relational.StringCol {
			continue
		}
		values := make(map[string]bool)
		for _, i := range trainIdx {
			values[t.Rows[i][ci].(string)] = true
		}
		for v := range values {
			// Majority class inside and outside the value.
			var in1, in0, out1, out0 int
			for _, i := range trainIdx {
				if t.Rows[i][ci].(string) == v {
					if labels[i] == 1 {
						in1++
					} else {
						in0++
					}
				} else {
					if labels[i] == 1 {
						out1++
					} else {
						out0++
					}
				}
			}
			acc := float64(maxInt(in0, in1)+maxInt(out0, out1)) / float64(len(trainIdx))
			if acc > bestAcc {
				bestAcc = acc
				best.Column = ci
				best.Value = v
				best.Match = boolToClass(in1 > in0)
				best.NoMatch = boolToClass(out1 > out0)
			}
		}
	}
	return best
}

// Predict classifies one target tuple.
func (b *SingleTableBaseline) Predict(db *relational.DB, target string, idx int) int {
	if b.Column < 0 {
		return b.Match
	}
	if db.Table(target).Rows[idx][b.Column] == b.Value {
		return b.Match
	}
	return b.NoMatch
}

// Accuracy scores the baseline.
func (b *SingleTableBaseline) Accuracy(db *relational.DB, target string, labels []int, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	hit := 0
	for _, i := range idx {
		if b.Predict(db, target, i) == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(idx))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func boolToClass(b bool) int {
	if b {
		return 1
	}
	return 0
}
