package crossmine

import (
	"testing"

	"hinet/internal/relational"
	"hinet/internal/stats"
)

func split(n int, frac float64) (train, test []int) {
	cut := int(float64(n) * frac)
	for i := 0; i < n; i++ {
		if i < cut {
			train = append(train, i)
		} else {
			test = append(test, i)
		}
	}
	return
}

func TestEvalLiteralTargetColumn(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(1), relational.SynthConfig{Customers: 50})
	lit := Literal{Table: "customer", Column: "profile", Op: Eq, Value: "p0"}
	set := EvalLiteral(s.DB, "customer", lit)
	cust := s.DB.Table("customer")
	for i, row := range cust.Rows {
		want := row[1].(string) == "p0"
		if set[i] != want {
			t.Fatalf("literal eval wrong at %d", i)
		}
	}
}

func TestEvalLiteralForwardJoin(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(2), relational.SynthConfig{Customers: 50})
	lit := Literal{
		Path:  []Step{{Edge: relational.JoinEdge{Table: "customer", Column: "branch_id"}, Forward: true}},
		Table: "branch", Column: "quality", Op: Eq, Value: "premium",
	}
	set := EvalLiteral(s.DB, "customer", lit)
	cust := s.DB.Table("customer")
	branch := s.DB.Table("branch")
	for i, row := range cust.Rows {
		want := branch.Rows[row[0].(int)][1].(string) == "premium"
		if set[i] != want {
			t.Fatalf("forward-join literal wrong at customer %d", i)
		}
	}
}

func TestEvalLiteralBackwardJoinExistential(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(3), relational.SynthConfig{Customers: 40, TransPerCus: 3})
	lit := Literal{
		Path:  []Step{{Edge: relational.JoinEdge{Table: "transaction", Column: "customer_id"}, Forward: false}},
		Table: "transaction", Column: "kind", Op: Eq, Value: "credit",
	}
	set := EvalLiteral(s.DB, "customer", lit)
	// verify existential semantics directly
	trans := s.DB.Table("transaction")
	want := make(map[int]bool)
	for _, row := range trans.Rows {
		if row[1].(string) == "credit" {
			want[row[0].(int)] = true
		}
	}
	if len(set) != len(want) {
		t.Fatalf("existential set size %d, want %d", len(set), len(want))
	}
	for id := range want {
		if !set[id] {
			t.Fatal("missing customer with credit transaction")
		}
	}
}

func TestCrossMineLearnsCrossTableRule(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(4), relational.SynthConfig{Customers: 500})
	train, test := split(500, 0.6)
	m := Train(s.DB, "customer", s.Class, train, Options{})
	if len(m.Rules) == 0 {
		t.Fatal("no rules learned")
	}
	acc := m.Accuracy(s.Class, test)
	if acc < 0.75 {
		t.Errorf("CrossMine test accuracy = %.3f, want ≥ 0.75", acc)
	}
	// At least one rule must use a join path (cross-table literal).
	crossTable := false
	for _, r := range m.Rules {
		for _, l := range r.Literals {
			if len(l.Path) > 0 {
				crossTable = true
			}
		}
	}
	if !crossTable {
		t.Error("no cross-table literal in any rule")
	}
}

func TestCrossMineBeatsSingleTable(t *testing.T) {
	var cmSum, stSum float64
	for seed := int64(0); seed < 3; seed++ {
		s := relational.SyntheticCustomers(stats.NewRNG(10+seed), relational.SynthConfig{Customers: 500})
		train, test := split(500, 0.6)
		cm := Train(s.DB, "customer", s.Class, train, Options{})
		st := TrainSingleTable(s.DB, "customer", s.Class, train)
		cmSum += cm.Accuracy(s.Class, test)
		stSum += st.Accuracy(s.DB, "customer", s.Class, test)
	}
	if cmSum <= stSum {
		t.Errorf("CrossMine total %.3f should beat single-table %.3f", cmSum/3, stSum/3)
	}
	if stSum/3 > 0.7 {
		t.Errorf("single-table baseline suspiciously strong: %.3f (class should live in joins)", stSum/3)
	}
}

func TestRulesHaveReportedPrecisionAndCoverage(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(5), relational.SynthConfig{Customers: 300})
	train, _ := split(300, 0.7)
	m := Train(s.DB, "customer", s.Class, train, Options{})
	for i, r := range m.Rules {
		if r.Precision < 0 || r.Precision > 1 {
			t.Errorf("rule %d precision %v", i, r.Precision)
		}
		if r.Coverage < 3 {
			t.Errorf("rule %d coverage %d below MinCoverage", i, r.Coverage)
		}
		if len(r.Literals) == 0 || len(r.Literals) > 3 {
			t.Errorf("rule %d has %d literals", i, len(r.Literals))
		}
	}
}

func TestPredictDeterministic(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(6), relational.SynthConfig{Customers: 200})
	train, test := split(200, 0.5)
	m := Train(s.DB, "customer", s.Class, train, Options{})
	for _, i := range test {
		if m.Predict(i) != m.Predict(i) {
			t.Fatal("prediction not deterministic")
		}
	}
}

func TestSingleTableBaselineSane(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(7), relational.SynthConfig{Customers: 300})
	train, test := split(300, 0.6)
	b := TrainSingleTable(s.DB, "customer", s.Class, train)
	acc := b.Accuracy(s.DB, "customer", s.Class, test)
	// Should be at least as good as random coin but not great.
	if acc < 0.35 {
		t.Errorf("baseline accuracy %.3f below chance band", acc)
	}
}

func TestTrainOnAllLabelsOneClass(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(8), relational.SynthConfig{Customers: 60})
	labels := make([]int, 60) // all class 0
	train, _ := split(60, 1.0)
	m := Train(s.DB, "customer", labels, train, Options{})
	if len(m.Rules) != 0 {
		t.Error("no class-1 rules should be learned without positives")
	}
	if m.Default != 0 {
		t.Error("default should be 0")
	}
	if m.Accuracy(labels, train) != 1 {
		t.Error("constant problem should be perfectly classified")
	}
}
