package crossclus

import (
	"strings"
	"testing"

	"hinet/internal/eval"
	"hinet/internal/relational"
	"hinet/internal/stats"
)

func TestGuidedRecoversLatentGroups(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(1), relational.SynthConfig{Customers: 300})
	r := Run(stats.NewRNG(2), s.DB, "customer", "profile", Options{K: 3})
	if nmi := eval.NMI(s.Group, r.Assign); nmi < 0.5 {
		t.Errorf("guided NMI = %v, want ≥ 0.5", nmi)
	}
}

func TestGuidedBeatsGuidanceAlone(t *testing.T) {
	// The guidance column is a noisy group label; adding pertinent
	// cross-table features (branch region, transaction kinds) must beat
	// clustering on the guidance column alone.
	var guided, alone float64
	for seed := int64(0); seed < 3; seed++ {
		s := relational.SyntheticCustomers(stats.NewRNG(10+seed), relational.SynthConfig{Customers: 300, ProfileNoise: 0.35})
		r := Run(stats.NewRNG(20+seed), s.DB, "customer", "profile", Options{K: 3})
		guided += eval.NMI(s.Group, r.Assign)

		// guidance-only clustering: the profile value itself as label
		cust := s.DB.Table("customer")
		labels := make([]int, len(cust.Rows))
		for i, row := range cust.Rows {
			labels[i] = int(row[1].(string)[1] - '0')
		}
		alone += eval.NMI(s.Group, labels)
	}
	if guided <= alone {
		t.Errorf("guided total NMI %.3f should beat guidance-only %.3f", guided, alone)
	}
}

func TestPertinentFeaturesSelected(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(3), relational.SynthConfig{Customers: 300})
	r := Run(stats.NewRNG(4), s.DB, "customer", "profile", Options{K: 3})
	// transaction.kind and branch.region are group-driven: at least one
	// must be selected with non-trivial weight.
	foundPertinent := false
	for _, f := range r.Features {
		if strings.HasPrefix(f.Desc, "transaction.kind") || strings.HasPrefix(f.Desc, "branch.region") {
			if f.Weight > 0.15 {
				foundPertinent = true
			}
		}
	}
	if !foundPertinent {
		descs := []string{}
		for _, f := range r.Features {
			descs = append(descs, f.Desc)
		}
		t.Errorf("no pertinent cross-table feature selected: %v", descs)
	}
}

func TestNoiseFeatureDownWeighted(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(5), relational.SynthConfig{Customers: 300})
	r := Run(stats.NewRNG(6), s.DB, "customer", "profile", Options{K: 3, MinWeight: 1e-9, MaxFeatures: 100})
	var segW, kindW float64
	for _, f := range r.Features {
		if f.Desc == "customer.segment" {
			segW = f.Weight
		}
		if f.Desc == "transaction.kind via 1 hops" {
			kindW = f.Weight
		}
	}
	if kindW <= segW {
		t.Errorf("kind weight %.3f should exceed noise segment weight %.3f", kindW, segW)
	}
}

func TestGuidedAtLeastMatchesUnguided(t *testing.T) {
	var guided, unguided float64
	for seed := int64(0); seed < 3; seed++ {
		s := relational.SyntheticCustomers(stats.NewRNG(30+seed), relational.SynthConfig{Customers: 250})
		r := Run(stats.NewRNG(40+seed), s.DB, "customer", "profile", Options{K: 3})
		guided += eval.NMI(s.Group, r.Assign)
		u := UnguidedBaseline(stats.NewRNG(40+seed), s.DB, "customer", 3, 2, Options{}.KMeans)
		unguided += eval.NMI(s.Group, u)
	}
	if guided < unguided-0.15 {
		t.Errorf("guided total %.3f clearly below unguided %.3f", guided, unguided)
	}
}

func TestKValidation(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(7), relational.SynthConfig{Customers: 50})
	defer func() {
		if recover() == nil {
			t.Error("K=1 should panic")
		}
	}()
	Run(stats.NewRNG(8), s.DB, "customer", "profile", Options{K: 1})
}

func TestResultShape(t *testing.T) {
	s := relational.SyntheticCustomers(stats.NewRNG(9), relational.SynthConfig{Customers: 120})
	r := Run(stats.NewRNG(10), s.DB, "customer", "profile", Options{K: 3})
	if len(r.Assign) != 120 {
		t.Fatal("assignment length wrong")
	}
	for _, a := range r.Assign {
		if a < 0 || a >= 3 {
			t.Fatal("cluster id out of range")
		}
	}
	if len(r.Features) == 0 {
		t.Fatal("no features reported")
	}
	// Weights sorted descending and within [0, 1].
	for i, f := range r.Features {
		if f.Weight < 0 || f.Weight > 1+1e-9 {
			t.Errorf("feature %d weight %v out of range", i, f.Weight)
		}
		if i > 0 && f.Weight > r.Features[i-1].Weight+1e-12 {
			t.Error("features not sorted by weight")
		}
	}
}
