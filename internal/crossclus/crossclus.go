// Package crossclus implements CrossClus (Yin, Han, Yu — DMKD'07),
// user-guided multi-relational clustering (tutorial §4b). The user asks
// to cluster a target table "by" a guidance attribute; CrossClus
// searches the schema for *pertinent* features in joined tables —
// features whose induced tuple-similarity agrees with the guidance —
// weights them by pertinence, and clusters the target tuples on the
// weighted multi-relational feature space.
//
// A feature here is (join path, categorical column): each target tuple
// gets the distribution of column values reachable along the path
// (computed by tuple-ID propagation). Pertinence between features f, g
// follows the paper's definition — the cosine of their induced n×n
// tuple-similarity matrices — computed without materializing them:
//
//	⟨DfDfᵀ, DgDgᵀ⟩_F = ‖Dfᵀ·Dg‖²_F
//
// where Df is the n×|values| distribution matrix of f.
package crossclus

import (
	"fmt"
	"math"

	"hinet/internal/kmeans"
	"hinet/internal/relational"
	"hinet/internal/stats"
)

// Feature is one multi-relational feature: a join path from the target
// table and a categorical column on the final table. Vectors[i] is the
// value distribution of target tuple i (rows sum to 1 when the tuple
// reaches any value).
type Feature struct {
	Desc    string
	Vectors [][]float64
	Weight  float64 // pertinence to the guidance, filled by Run
}

// Options configures a CrossClus run.
type Options struct {
	K           int     // clusters (required)
	MaxDepth    int     // join path hops, default 2
	MinWeight   float64 // features below this pertinence are dropped, default 0.1
	MaxFeatures int     // keep at most this many features, default 8
	Refinements int     // weight-refinement rounds, default 3
	KMeans      kmeans.Options
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 2
	}
	if o.MinWeight == 0 {
		o.MinWeight = 0.1
	}
	if o.MaxFeatures == 0 {
		o.MaxFeatures = 8
	}
	if o.Refinements == 0 {
		o.Refinements = 3
	}
	return o
}

// Result is a guided clustering outcome.
type Result struct {
	Assign   []int
	Features []Feature // selected features with weights, by descending weight
}

// Run clusters the target table guided by guidanceColumn (a categorical
// column on the target table).
//
// The weight schedule follows the paper's iterative refinement: weights
// start as pertinence to the user's guidance (the guidance itself at
// weight 1), the tuples are clustered on the weighted feature space,
// and weights are then re-estimated as pertinence to the *clustering*
// and the process repeats. This lets mass migrate from a noisy guidance
// attribute to the coherent group of cross-table features that agree
// with each other.
func Run(rng *stats.RNG, db *relational.DB, target, guidanceColumn string, opt Options) Result {
	opt = opt.withDefaults()
	if opt.K < 2 {
		panic("crossclus: K must be >= 2")
	}
	n := len(db.Table(target).Rows)
	if n == 0 {
		return Result{}
	}
	guidance := columnFeature(db, target, nil, target, guidanceColumn)
	guidance.Weight = 1
	features := append([]Feature{guidance}, enumerate(db, target, guidanceColumn, opt.MaxDepth)...)
	for i := 1; i < len(features); i++ {
		features[i].Weight = pertinence(features[i].Vectors, guidance.Vectors)
	}

	var assign []int
	for round := 0; round < opt.Refinements; round++ {
		assign = clusterWeighted(rng, features, n, opt)
		// Re-estimate weights against the clustering (one-hot feature).
		clusterVecs := make([][]float64, n)
		for i := 0; i < n; i++ {
			clusterVecs[i] = make([]float64, opt.K)
			clusterVecs[i][assign[i]] = 1
		}
		for i := range features {
			features[i].Weight = pertinence(features[i].Vectors, clusterVecs)
		}
		// The guidance (features[0]) scores pertinence ≈ 1 against any
		// clustering it anchored — a self-fulfilling loop that would
		// keep a noisy guidance dominant forever. Cap it at the best
		// cross-relational feature so weight can migrate to the
		// coherent feature group.
		bestOther := 0.0
		for i := 1; i < len(features); i++ {
			if features[i].Weight > bestOther {
				bestOther = features[i].Weight
			}
		}
		if features[0].Weight > bestOther {
			features[0].Weight = bestOther
		}
	}

	// Report selected features: weight-sorted, thresholded.
	selected := make([]Feature, 0, len(features))
	for _, f := range features {
		if f.Weight >= opt.MinWeight {
			selected = append(selected, f)
		}
	}
	sortByWeight(selected)
	if len(selected) > opt.MaxFeatures {
		selected = selected[:opt.MaxFeatures]
	}
	return Result{Assign: assign, Features: selected}
}

// clusterWeighted runs k-means on the concatenation of feature blocks
// scaled by √weight (so squared Euclidean distance weights each block's
// similarity linearly by its weight).
func clusterWeighted(rng *stats.RNG, features []Feature, n int, opt Options) []int {
	pts := make([][]float64, n)
	for i := 0; i < n; i++ {
		for _, f := range features {
			if f.Weight <= 0 {
				continue
			}
			s := math.Sqrt(f.Weight)
			for _, v := range f.Vectors[i] {
				pts[i] = append(pts[i], v*s)
			}
		}
	}
	return kmeans.Cluster(rng, pts, opt.K, opt.KMeans).Assign
}

// UnguidedBaseline clusters the target table on all enumerable features
// with equal weights — what a guidance-free multi-relational k-means
// would do. The CrossClus evaluation's comparison shape is guided ≥
// unguided on the guidance-aligned ground truth.
func UnguidedBaseline(rng *stats.RNG, db *relational.DB, target string, k int, maxDepth int, kopt kmeans.Options) []int {
	n := len(db.Table(target).Rows)
	if n == 0 {
		return nil
	}
	if maxDepth == 0 {
		maxDepth = 2
	}
	feats := enumerate(db, target, "", maxDepth)
	if len(feats) == 0 {
		return make([]int, n)
	}
	pts := make([][]float64, n)
	for i := 0; i < n; i++ {
		for _, f := range feats {
			pts[i] = append(pts[i], f.Vectors[i]...)
		}
	}
	return kmeans.Cluster(rng, pts, k, kopt).Assign
}

// pertinence is the cosine similarity between the tuple-similarity
// matrices induced by two distribution matrices, via ‖AᵀB‖²_F.
func pertinence(a, b [][]float64) float64 {
	num := frobeniusSqCross(a, b)
	da := frobeniusSqCross(a, a)
	db := frobeniusSqCross(b, b)
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

// frobeniusSqCross returns ‖AᵀB‖²_F for n×va and n×vb matrices.
func frobeniusSqCross(a, b [][]float64) float64 {
	va, vb := len(a[0]), len(b[0])
	cross := make([]float64, va*vb)
	for i := range a {
		for x := 0; x < va; x++ {
			ax := a[i][x]
			if ax == 0 {
				continue
			}
			row := cross[x*vb : (x+1)*vb]
			for y := 0; y < vb; y++ {
				row[y] += ax * b[i][y]
			}
		}
	}
	s := 0.0
	for _, v := range cross {
		s += v * v
	}
	return s
}

// enumerate builds all candidate features: categorical columns on the
// target table (excluding the guidance and FKs) and on tables reachable
// within maxDepth FK hops.
func enumerate(db *relational.DB, target, guidanceColumn string, maxDepth int) []Feature {
	type state struct {
		table string
		path  []pathStep
	}
	var fks []struct{ owner, column, ref string }
	for _, name := range db.Tables() {
		t := db.Table(name)
		for _, c := range t.Schema.Columns {
			if c.FK != "" {
				fks = append(fks, struct{ owner, column, ref string }{name, c.Name, c.FK})
			}
		}
	}
	var states []state
	frontier := []state{{table: target}}
	states = append(states, frontier...)
	for d := 0; d < maxDepth; d++ {
		var next []state
		for _, st := range frontier {
			for _, fk := range fks {
				if fk.owner == st.table {
					next = append(next, state{fk.ref, appendPath(st.path, pathStep{relational.JoinEdge{Table: fk.owner, Column: fk.column}, true})})
				}
				if fk.ref == st.table && fk.owner != st.table {
					next = append(next, state{fk.owner, appendPath(st.path, pathStep{relational.JoinEdge{Table: fk.owner, Column: fk.column}, false})})
				}
			}
		}
		states = append(states, next...)
		frontier = next
	}
	var out []Feature
	seen := map[string]bool{}
	for _, st := range states {
		t := db.Table(st.table)
		for _, c := range t.Schema.Columns {
			if c.FK != "" || c.Type != relational.StringCol {
				continue
			}
			if st.table == target && len(st.path) == 0 && c.Name == guidanceColumn {
				continue
			}
			f := columnFeature(db, target, st.path, st.table, c.Name)
			if !seen[f.Desc] {
				seen[f.Desc] = true
				out = append(out, f)
			}
		}
	}
	return out
}

type pathStep struct {
	edge    relational.JoinEdge
	forward bool
}

func appendPath(p []pathStep, s pathStep) []pathStep {
	out := make([]pathStep, len(p)+1)
	copy(out, p)
	out[len(p)] = s
	return out
}

// columnFeature materializes one feature's per-tuple value distribution
// by propagating target ids along the path and counting values.
func columnFeature(db *relational.DB, target string, path []pathStep, table, column string) Feature {
	tt := db.Table(target)
	t := db.Table(table)
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		panic(fmt.Sprintf("crossclus: unknown column %s.%s", table, column))
	}
	// Dense value ids.
	valueID := map[string]int{}
	for _, row := range t.Rows {
		v := row[ci].(string)
		if _, ok := valueID[v]; !ok {
			valueID[v] = len(valueID)
		}
	}
	nv := len(valueID)
	vectors := make([][]float64, len(tt.Rows))
	for i := range vectors {
		vectors[i] = make([]float64, nv)
	}
	ids := relational.InitIDs(tt)
	for _, s := range path {
		if s.forward {
			ids = db.PropagateForward(s.edge, ids)
		} else {
			ids = db.PropagateBackward(s.edge, ids)
		}
	}
	for rowID, targets := range ids {
		v := valueID[t.Rows[rowID][ci].(string)]
		for id, mult := range targets {
			vectors[id][v] += float64(mult)
		}
	}
	for i := range vectors {
		s := 0.0
		for _, v := range vectors[i] {
			s += v
		}
		if s > 0 {
			for j := range vectors[i] {
				vectors[i][j] /= s
			}
		}
		// Tuples that reach no value keep an all-zero row: they carry no
		// evidence rather than a fake uniform distribution.
	}
	desc := table + "." + column
	if len(path) > 0 {
		desc = fmt.Sprintf("%s via %d hops", desc, len(path))
	}
	return Feature{Desc: desc, Vectors: vectors}
}

func sortByWeight(fs []Feature) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].Weight > fs[j-1].Weight; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}
