package relational

import (
	"testing"

	"hinet/internal/hin"
	"hinet/internal/stats"
)

func sampleDB() *DB {
	db := NewDB()
	db.CreateTable(Schema{Name: "dept", Columns: []Column{
		{Name: "name", Type: StringCol},
	}})
	db.CreateTable(Schema{Name: "emp", Columns: []Column{
		{Name: "name", Type: StringCol},
		{Name: "dept_id", Type: IntCol, FK: "dept"},
		{Name: "salary", Type: FloatCol},
	}})
	d0 := db.Insert("dept", Tuple{"eng"})
	d1 := db.Insert("dept", Tuple{"sales"})
	db.Insert("emp", Tuple{"ann", d0, 100.0})
	db.Insert("emp", Tuple{"bob", d0, 90.0})
	db.Insert("emp", Tuple{"cat", d1, 80.0})
	return db
}

func TestCreateAndInsert(t *testing.T) {
	db := sampleDB()
	if len(db.Table("emp").Rows) != 3 || len(db.Table("dept").Rows) != 2 {
		t.Fatal("row counts wrong")
	}
	if got := db.Tables(); len(got) != 2 || got[0] != "dept" {
		t.Errorf("Tables = %v", got)
	}
}

func TestInsertValidation(t *testing.T) {
	db := sampleDB()
	cases := map[string]func(){
		"arity":    func() { db.Insert("emp", Tuple{"x"}) },
		"type":     func() { db.Insert("emp", Tuple{"x", "notint", 1.0}) },
		"fk range": func() { db.Insert("emp", Tuple{"x", 99, 1.0}) },
		"unknown":  func() { db.Insert("nope", Tuple{}) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDB()
	defer func() {
		if recover() == nil {
			t.Error("unknown FK target should panic")
		}
	}()
	db.CreateTable(Schema{Name: "x", Columns: []Column{{Name: "r", Type: IntCol, FK: "ghost"}}})
}

func TestSelect(t *testing.T) {
	db := sampleDB()
	rich := db.Select("emp", func(r Tuple) bool { return r[2].(float64) >= 90 })
	if len(rich) != 2 || rich[0] != 0 || rich[1] != 1 {
		t.Errorf("Select = %v", rich)
	}
}

func TestPropagateForward(t *testing.T) {
	db := sampleDB()
	ids := InitIDs(db.Table("emp"))
	// emp → dept: dept 0 should carry targets {0,1}, dept 1 {2}.
	out := db.PropagateForward(JoinEdge{Table: "emp", Column: "dept_id"}, ids)
	if got := TargetsOf(out, 0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("dept0 targets = %v", got)
	}
	if got := TargetsOf(out, 1); len(got) != 1 || got[0] != 2 {
		t.Errorf("dept1 targets = %v", got)
	}
}

func TestPropagateBackward(t *testing.T) {
	db := sampleDB()
	ids := InitIDs(db.Table("dept"))
	// dept → emp: each emp carries its department id.
	out := db.PropagateBackward(JoinEdge{Table: "emp", Column: "dept_id"}, ids)
	if got := TargetsOf(out, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("emp0 targets = %v", got)
	}
	if got := TargetsOf(out, 2); len(got) != 1 || got[0] != 1 {
		t.Errorf("emp2 targets = %v", got)
	}
}

func TestPropagationRoundTripMultiplicity(t *testing.T) {
	// emp→dept then dept→emp: each emp ends with the ids of everyone in
	// its department (join multiset semantics).
	db := sampleDB()
	fwd := db.PropagateForward(JoinEdge{Table: "emp", Column: "dept_id"}, InitIDs(db.Table("emp")))
	back := db.PropagateBackward(JoinEdge{Table: "emp", Column: "dept_id"}, fwd)
	if got := TargetsOf(back, 0); len(got) != 2 {
		t.Errorf("emp0 round-trip targets = %v, want dept-mates {0,1}", got)
	}
	if got := TargetsOf(back, 2); len(got) != 1 || got[0] != 2 {
		t.Errorf("emp2 round-trip targets = %v", got)
	}
}

func TestPropagateValidation(t *testing.T) {
	db := sampleDB()
	defer func() {
		if recover() == nil {
			t.Error("non-FK propagation should panic")
		}
	}()
	db.PropagateForward(JoinEdge{Table: "emp", Column: "name"}, InitIDs(db.Table("emp")))
}

func TestNetworkConversion(t *testing.T) {
	db := sampleDB()
	n := db.Network(NetworkOptions{CategoricalAsObjects: []string{"dept.name"}})
	if n.Count("emp") != 3 || n.Count("dept") != 2 {
		t.Fatal("object counts wrong")
	}
	// FK links: 3 emp→dept links.
	if n.LinkCount("emp", "dept") != 3 {
		t.Errorf("emp-dept links = %d", n.LinkCount("emp", "dept"))
	}
	// Value objects for dept.name.
	if n.Count(hin.Type("dept.name")) != 2 {
		t.Errorf("value objects = %d", n.Count(hin.Type("dept.name")))
	}
	if n.Lookup(hin.Type("dept.name"), "eng") < 0 {
		t.Error("value object 'eng' missing")
	}
}

func TestNetworkSkipsUnlistedCategoricals(t *testing.T) {
	db := sampleDB()
	n := db.Network(NetworkOptions{})
	if n.Count(hin.Type("dept.name")) != 0 {
		t.Error("unlisted categorical should not become objects")
	}
}

func TestSyntheticCustomersShape(t *testing.T) {
	s := SyntheticCustomers(stats.NewRNG(1), SynthConfig{Customers: 100, Branches: 10, TransPerCus: 2})
	if len(s.DB.Table("customer").Rows) != 100 {
		t.Fatal("customer count wrong")
	}
	if len(s.DB.Table("transaction").Rows) != 200 {
		t.Fatal("transaction count wrong")
	}
	if len(s.Class) != 100 || len(s.Group) != 100 {
		t.Fatal("truth sizes wrong")
	}
	// Class roughly balanced (rule designed for ~50%).
	ones := 0
	for _, c := range s.Class {
		ones += c
	}
	if ones < 30 || ones > 70 {
		t.Errorf("class balance = %d/100", ones)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := SyntheticCustomers(stats.NewRNG(2), SynthConfig{})
	b := SyntheticCustomers(stats.NewRNG(2), SynthConfig{})
	for i := range a.Class {
		if a.Class[i] != b.Class[i] || a.Group[i] != b.Group[i] {
			t.Fatal("same-seed synthetic differs")
		}
	}
}

func TestSyntheticGroupDrivesTransactions(t *testing.T) {
	s := SyntheticCustomers(stats.NewRNG(3), SynthConfig{Customers: 200})
	// Group-0 customers should have mostly credit transactions.
	trans := s.DB.Table("transaction")
	match, total := 0, 0
	for _, row := range trans.Rows {
		cust := row[0].(int)
		kind := row[1].(string)
		total++
		if synthKinds[s.Group[cust]] == kind {
			match++
		}
	}
	if frac := float64(match) / float64(total); frac < 0.8 {
		t.Errorf("kind-group coherence = %.2f", frac)
	}
}
