package relational

import (
	"fmt"

	"hinet/internal/stats"
)

// SynthConfig sizes the synthetic multi-relational workload standing in
// for the financial-style benchmark of the CrossMine evaluation: a
// customer target table whose class is decided by information scattered
// across joined tables, never by the target's own columns.
type SynthConfig struct {
	Customers    int     // default 400
	Branches     int     // default 20
	TransPerCus  int     // transactions per customer, default 3
	LabelNoise   float64 // P(class label flipped), default 0.05
	ProfileNoise float64 // P(guidance column mislabels the group), default 0.3
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Customers == 0 {
		c.Customers = 400
	}
	if c.Branches == 0 {
		c.Branches = 20
	}
	if c.TransPerCus == 0 {
		c.TransPerCus = 3
	}
	if c.LabelNoise == 0 {
		c.LabelNoise = 0.05
	}
	if c.ProfileNoise == 0 {
		c.ProfileNoise = 0.3
	}
	return c
}

// Synthetic is a generated multi-relational instance with ground truth.
//
// Schema:
//
//	branch(region string, quality string, size string)
//	customer(branch_id → branch, profile string, segment string)
//	transaction(customer_id → customer, kind string, amount float, channel string, weekday string)
//
// Latent structure: each customer belongs to a hidden group g ∈ {0,1,2}
// that drives its branch's region, its transaction-kind mix, and the
// noisy "profile" guidance column. The binary class is
//
//	class = 1  iff  (branch premium ∧ g = 0) ∨ (branch standard ∧ g ≠ 0)
//
// (≈ balanced), so a correct classifier must join through branch *and*
// aggregate transactions — the cross-relational setting CrossMine is
// built for. The flattened single-table baseline sees only profile and
// segment: profile is a noisy proxy of g and segment is pure noise.
type Synthetic struct {
	DB    *DB
	Class []int // per customer, 0/1 (noisy realization of the rule)
	Group []int // per customer, latent group 0..2
}

// Regions and transaction kinds indexed by group.
var (
	synthRegions = []string{"north", "south", "east"}
	synthKinds   = []string{"credit", "debit", "transfer"}
	synthAges    = []string{"young", "mid", "senior"}
)

// SyntheticCustomers generates a deterministic instance.
func SyntheticCustomers(rng *stats.RNG, cfg SynthConfig) *Synthetic {
	cfg = cfg.withDefaults()
	db := NewDB()
	// segment / size / channel / weekday are pure noise: the irrelevant
	// attributes CrossClus must learn to down-weight.
	db.CreateTable(Schema{
		Name: "branch",
		Columns: []Column{
			{Name: "region", Type: StringCol},
			{Name: "quality", Type: StringCol},
			{Name: "size", Type: StringCol},
		},
	})
	db.CreateTable(Schema{
		Name: "customer",
		Columns: []Column{
			{Name: "branch_id", Type: IntCol, FK: "branch"},
			{Name: "profile", Type: StringCol},
			{Name: "segment", Type: StringCol},
		},
	})
	db.CreateTable(Schema{
		Name: "transaction",
		Columns: []Column{
			{Name: "customer_id", Type: IntCol, FK: "customer"},
			{Name: "kind", Type: StringCol},
			{Name: "amount", Type: FloatCol},
			{Name: "channel", Type: StringCol},
			{Name: "weekday", Type: StringCol},
		},
	})

	// Branches: region uniform, quality fair coin, size pure noise.
	branchQuality := make([]string, cfg.Branches)
	branchRegion := make([]int, cfg.Branches)
	sizes := []string{"small", "medium", "large"}
	for b := 0; b < cfg.Branches; b++ {
		branchRegion[b] = rng.Intn(3)
		q := "standard"
		if rng.Float64() < 0.5 {
			q = "premium"
		}
		branchQuality[b] = q
		db.Insert("branch", Tuple{synthRegions[branchRegion[b]], q, sizes[rng.Intn(3)]})
	}
	// Branches grouped by region for preference sampling.
	byRegion := make([][]int, 3)
	for b, r := range branchRegion {
		byRegion[r] = append(byRegion[r], b)
	}

	s := &Synthetic{DB: db}
	for c := 0; c < cfg.Customers; c++ {
		g := rng.Intn(3)
		s.Group = append(s.Group, g)
		// Branch: home region w.p. 0.8 (fallback uniform if region empty).
		var branch int
		if rng.Float64() < 0.8 && len(byRegion[g]) > 0 {
			branch = byRegion[g][rng.Intn(len(byRegion[g]))]
		} else {
			branch = rng.Intn(cfg.Branches)
		}
		// Guidance column: noisy group label.
		profile := g
		if rng.Float64() < cfg.ProfileNoise {
			profile = rng.Intn(3)
		}
		segment := synthAges[rng.Intn(3)] // pure noise
		db.Insert("customer", Tuple{branch, fmt.Sprintf("p%d", profile), segment})

		// Class rule across tables.
		premium := branchQuality[branch] == "premium"
		class := 0
		if (premium && g == 0) || (!premium && g != 0) {
			class = 1
		}
		if rng.Float64() < cfg.LabelNoise {
			class = 1 - class
		}
		s.Class = append(s.Class, class)

		// Transactions: kind biased 85% toward the group's kind; channel
		// and weekday are noise.
		channels := []string{"online", "teller", "atm"}
		days := []string{"mon", "wed", "fri", "sat"}
		for t := 0; t < cfg.TransPerCus; t++ {
			kind := g
			if rng.Float64() >= 0.85 {
				kind = rng.Intn(3)
			}
			db.Insert("transaction", Tuple{
				c, synthKinds[kind], 10 + 90*rng.Float64(),
				channels[rng.Intn(3)], days[rng.Intn(4)],
			})
		}
	}
	return s
}
