// Package relational implements the miniature in-memory relational
// database that grounds the tutorial's central claim (§1): a database's
// tuples and foreign keys already form a heterogeneous information
// network. The package provides typed tables, foreign-key integrity,
// selection and join primitives, the tuple-ID propagation operator that
// CrossMine/CrossClus traverse schemas with, and the Network() export
// that turns a database instance into a hin.Network.
package relational

import (
	"fmt"
	"sort"

	"hinet/internal/hin"
)

// ColumnType enumerates supported column types.
type ColumnType int

// Column types.
const (
	IntCol ColumnType = iota
	FloatCol
	StringCol
)

// Column describes one attribute: its name, type, and (optionally) the
// table its values reference as a foreign key.
type Column struct {
	Name string
	Type ColumnType
	FK   string // referenced table name; "" when not a foreign key
}

// Schema describes a table: name and columns. The primary key is the
// implicit tuple index (0..n-1); FK columns store the referenced
// tuple's index as an int.
type Schema struct {
	Name    string
	Columns []Column
}

// ColIndex returns the index of the named column or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Tuple is one row; values are int (IntCol and FK), float64, or string.
type Tuple []any

// Table holds a schema and its rows.
type Table struct {
	Schema Schema
	Rows   []Tuple
}

// DB is a set of tables with foreign-key integrity.
type DB struct {
	tables map[string]*Table
	order  []string
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable registers a table. FK columns must reference existing
// tables (self-references allowed). Duplicate names panic.
func (db *DB) CreateTable(s Schema) *Table {
	if _, ok := db.tables[s.Name]; ok {
		panic("relational: duplicate table " + s.Name)
	}
	for _, c := range s.Columns {
		if c.FK != "" && c.FK != s.Name {
			if _, ok := db.tables[c.FK]; !ok {
				panic(fmt.Sprintf("relational: %s.%s references unknown table %s", s.Name, c.Name, c.FK))
			}
		}
		if c.FK != "" && c.Type != IntCol {
			panic("relational: FK columns must be IntCol")
		}
	}
	t := &Table{Schema: s}
	db.tables[s.Name] = t
	db.order = append(db.order, s.Name)
	return t
}

// Table returns the named table or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// Tables lists table names in creation order.
func (db *DB) Tables() []string { return append([]string(nil), db.order...) }

// Insert appends a row, checking arity, types and FK targets. It
// returns the new tuple's id.
func (db *DB) Insert(table string, row Tuple) int {
	t := db.tables[table]
	if t == nil {
		panic("relational: unknown table " + table)
	}
	if len(row) != len(t.Schema.Columns) {
		panic(fmt.Sprintf("relational: %s arity %d, got %d", table, len(t.Schema.Columns), len(row)))
	}
	for i, c := range t.Schema.Columns {
		switch c.Type {
		case IntCol:
			v, ok := row[i].(int)
			if !ok {
				panic(fmt.Sprintf("relational: %s.%s expects int", table, c.Name))
			}
			if c.FK != "" {
				ref := db.tables[c.FK]
				if v < -1 || v >= len(ref.Rows)+boolToInt(c.FK == table) {
					panic(fmt.Sprintf("relational: %s.%s FK %d out of range", table, c.Name, v))
				}
			}
		case FloatCol:
			if _, ok := row[i].(float64); !ok {
				panic(fmt.Sprintf("relational: %s.%s expects float64", table, c.Name))
			}
		case StringCol:
			if _, ok := row[i].(string); !ok {
				panic(fmt.Sprintf("relational: %s.%s expects string", table, c.Name))
			}
		}
	}
	t.Rows = append(t.Rows, row)
	return len(t.Rows) - 1
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Select returns ids of rows in table satisfying pred.
func (db *DB) Select(table string, pred func(Tuple) bool) []int {
	t := db.tables[table]
	var out []int
	for i, r := range t.Rows {
		if pred(r) {
			out = append(out, i)
		}
	}
	return out
}

// JoinEdge names one FK hop in a join path: the table holding the FK
// column and the column name. Direction is implied by which side the
// current frontier is on.
type JoinEdge struct {
	Table  string // table that owns the FK column
	Column string // FK column name
}

// IDSet maps a tuple id to the multiset of target-tuple ids it is
// joined with — the tuple-ID propagation structure from CrossMine
// (Yin et al., TKDE'06): instead of materializing joins, each tuple
// carries the ids (and multiplicities) of the classification targets it
// reaches.
type IDSet map[int]map[int]int

// InitIDs builds the identity propagation for a target table: each
// tuple carries itself.
func InitIDs(t *Table) IDSet {
	s := make(IDSet, len(t.Rows))
	for i := range t.Rows {
		s[i] = map[int]int{i: 1}
	}
	return s
}

// PropagateForward pushes target ids across edge from the FK-owning
// table to the referenced table: ids attached to rows of edge.Table flow
// to the tuples their FK points at. from must be keyed by edge.Table
// row ids; the result is keyed by referenced-table row ids.
func (db *DB) PropagateForward(edge JoinEdge, from IDSet) IDSet {
	t := db.tables[edge.Table]
	ci := t.Schema.ColIndex(edge.Column)
	if ci < 0 || t.Schema.Columns[ci].FK == "" {
		panic(fmt.Sprintf("relational: %s.%s is not a FK", edge.Table, edge.Column))
	}
	out := make(IDSet)
	for rowID, ids := range from {
		ref := t.Rows[rowID][ci].(int)
		if ref < 0 {
			continue
		}
		dst := out[ref]
		if dst == nil {
			dst = make(map[int]int)
			out[ref] = dst
		}
		for id, n := range ids {
			dst[id] += n
		}
	}
	return out
}

// PropagateBackward pulls target ids across edge from the referenced
// table into the FK-owning table: ids attached to referenced tuples flow
// to every row whose FK points at them. from must be keyed by the
// referenced table's row ids; the result is keyed by edge.Table row ids.
func (db *DB) PropagateBackward(edge JoinEdge, from IDSet) IDSet {
	t := db.tables[edge.Table]
	ci := t.Schema.ColIndex(edge.Column)
	if ci < 0 || t.Schema.Columns[ci].FK == "" {
		panic(fmt.Sprintf("relational: %s.%s is not a FK", edge.Table, edge.Column))
	}
	out := make(IDSet)
	for rowID, row := range t.Rows {
		ref := row[ci].(int)
		if ref < 0 {
			continue
		}
		ids, ok := from[ref]
		if !ok {
			continue
		}
		dst := out[rowID]
		if dst == nil {
			dst = make(map[int]int)
			out[rowID] = dst
		}
		for id, n := range ids {
			dst[id] += n
		}
	}
	return out
}

// TargetsOf flattens an IDSet entry into a sorted id list (test helper).
func TargetsOf(s IDSet, row int) []int {
	var out []int
	for id := range s[row] {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// NetworkOptions controls the DB → information network conversion.
type NetworkOptions struct {
	// CategoricalAsObjects lists "table.column" strings whose distinct
	// values become first-class objects linked to their tuples — the
	// step that turns, e.g., a venue column into venue nodes.
	CategoricalAsObjects []string
}

// Network converts the database instance into a heterogeneous
// information network: one object type per table, one object per tuple,
// one link per foreign-key reference, plus optional value objects for
// selected categorical columns. This is the tutorial's "viewing
// databases as information networks" operator.
func (db *DB) Network(opt NetworkOptions) *hin.Network {
	n := hin.NewNetwork()
	catCols := make(map[string]bool, len(opt.CategoricalAsObjects))
	for _, c := range opt.CategoricalAsObjects {
		catCols[c] = true
	}
	for _, name := range db.order {
		t := db.tables[name]
		typ := hin.Type(name)
		n.AddType(typ)
		for i := range t.Rows {
			n.AddObject(typ, fmt.Sprintf("%s/%d", name, i))
		}
	}
	for _, name := range db.order {
		t := db.tables[name]
		typ := hin.Type(name)
		for ci, c := range t.Schema.Columns {
			qualified := name + "." + c.Name
			switch {
			case c.FK != "":
				refType := hin.Type(c.FK)
				for i, row := range t.Rows {
					ref := row[ci].(int)
					if ref >= 0 {
						n.AddLink(typ, i, refType, ref, 1)
					}
				}
			case c.Type == StringCol && catCols[qualified]:
				valType := hin.Type(qualified)
				n.AddType(valType)
				for i, row := range t.Rows {
					v := row[ci].(string)
					id := n.AddObject(valType, v)
					n.AddLink(typ, i, valType, id, 1)
				}
			}
		}
	}
	return n
}
