module hinet

go 1.22
