// Package hinet is the module root of a Go reproduction of "Mining
// knowledge from databases: an information network analysis approach"
// (Han, Sun, Yan, Yu — SIGMOD 2010 tutorial).
//
// The library lives under internal/ (see README.md for the package
// map): internal/sparse provides the parallel CSR kernel engine, hin
// and graph the network representations, internal/metapath the
// meta-path engine (spec parsing, cost-based chain planning, Gram
// factorization, materialization caching) every commuting-matrix
// product runs through, and the remaining packages the reproduced
// techniques — RankClus, NetClus, PathSim, SimRank, LinkClus, SCAN,
// CrossMine, CrossClus, DISTINCT, TruthFinder, network OLAP and
// transductive classification. internal/serve layers an online query
// service on top (model snapshots, result caching, micro-batched
// top-k, arbitrary path= meta-path queries; run it with `hinet
// serve`). Entry points are cmd/hinet, cmd/experiments and the
// walkthroughs in examples/.
//
// This file only carries the module-level documentation; the root
// directory's test files (bench_test.go, integration_test.go) hold the
// cross-package benchmark and integration suites.
package hinet
