// Package hinet_test is the benchmark harness: one testing.B benchmark
// per reproduced table/figure (E1–E16 in DESIGN.md) plus the ablations.
// Each benchmark times the core computation and attaches the
// experiment's quality metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates both the performance and the quality side of every
// experiment. cmd/experiments prints the same tables in full.
package hinet_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"hinet/internal/classify"
	"hinet/internal/cluster"
	"hinet/internal/core"
	"hinet/internal/crossmine"
	"hinet/internal/dblp"
	"hinet/internal/eval"
	"hinet/internal/experiments"
	"hinet/internal/flickr"
	"hinet/internal/hin"
	"hinet/internal/ingest"
	"hinet/internal/kmeans"
	"hinet/internal/linkclus"
	"hinet/internal/loadgen"
	"hinet/internal/netclus"
	"hinet/internal/netgen"
	"hinet/internal/netstat"
	"hinet/internal/pathsim"
	"hinet/internal/rank"
	"hinet/internal/relational"
	"hinet/internal/scan"
	"hinet/internal/serve"
	"hinet/internal/simrank"
	"hinet/internal/sparse"
	"hinet/internal/spectral"
	"hinet/internal/stats"
	"hinet/internal/truth"
)

// report attaches experiment rows as custom benchmark metrics.
func report(b *testing.B, rows []experiments.Row) {
	b.Helper()
	for _, r := range rows {
		for i, c := range r.Columns {
			b.ReportMetric(r.Values[i], c)
		}
	}
}

// --- E1: RankClus DBLP case study -----------------------------------

func BenchmarkE1RankClusDBLP(b *testing.B) {
	c := dblp.Generate(stats.NewRNG(1), experiments.DefaultDBLP())
	bip := c.VenueAuthorBipartite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(stats.NewRNG(2), bip, core.Options{K: c.Areas(), Method: core.AuthorityRanking})
	}
	b.StopTimer()
	report(b, experiments.E1RankClusCaseStudy(1))
}

// --- E2: RankClus accuracy vs baselines ------------------------------

func BenchmarkE2RankClusAccuracy(b *testing.B) {
	cfg := netgen.MediumBiTyped()
	cfg.Cross = 0.15
	res := netgen.BiTyped(stats.NewRNG(1), cfg)
	bip := res.Net.Bipartite(res.X, res.Y)
	for _, m := range []struct {
		name   string
		method core.RankingMethod
	}{{"authority", core.AuthorityRanking}, {"simple", core.SimpleRanking}} {
		b.Run(m.name, func(b *testing.B) {
			var nmi float64
			for i := 0; i < b.N; i++ {
				r := core.Run(stats.NewRNG(2), bip, core.Options{K: 3, Method: m.method, Restarts: 2})
				nmi = eval.NMI(res.TruthX, r.Assign)
			}
			b.ReportMetric(nmi, "NMI")
		})
	}
	b.Run("spectral-baseline", func(b *testing.B) {
		var nmi float64
		for i := 0; i < b.N; i++ {
			xx := bip.W.Mul(bip.W.Transpose())
			a := spectral.ClusterMatrix(stats.NewRNG(3), xx, 3, spectral.Options{}).Assign
			nmi = eval.NMI(res.TruthX, a)
		}
		b.ReportMetric(nmi, "NMI")
	})
	b.Run("simrank-baseline", func(b *testing.B) {
		var nmi float64
		for i := 0; i < b.N; i++ {
			sim := simrank.Bipartite(bip.W, simrank.Options{MaxIter: 5}).SX
			a := kmeans.Cluster(stats.NewRNG(4), sim, 3, kmeans.Options{}).Assign
			nmi = eval.NMI(res.TruthX, a)
		}
		b.ReportMetric(nmi, "NMI")
	})
}

// --- E3: scalability RankClus vs SimRank -----------------------------

func BenchmarkE3RankClusScale(b *testing.B) {
	for _, ny := range []int{100, 200, 400} {
		cfg := netgen.BiTypedConfig{
			K: 3, Nx: []int{10, 10, 10}, Ny: []int{ny, ny, ny},
			Links: []int{ny * 2, ny * 2, ny * 2}, Cross: 0.15, Skew: 0.95,
		}
		res := netgen.BiTyped(stats.NewRNG(1), cfg)
		bip := res.Net.Bipartite(res.X, res.Y)
		b.Run(fmt.Sprintf("RankClus/ny=%d", ny), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Run(stats.NewRNG(2), bip, core.Options{K: 3})
			}
		})
		b.Run(fmt.Sprintf("SimRank/ny=%d", ny), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simrank.Bipartite(bip.W, simrank.Options{MaxIter: 5})
			}
		})
	}
}

// --- E4/E5: NetClus ---------------------------------------------------

func BenchmarkE4NetClusAccuracy(b *testing.B) {
	c := dblp.Generate(stats.NewRNG(1), experiments.DefaultDBLP())
	star := c.Star()
	var m *netclus.Model
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = netclus.Run(stats.NewRNG(2), star, netclus.Options{K: c.Areas()})
	}
	b.StopTimer()
	b.ReportMetric(eval.NMI(c.PaperArea, m.AssignCenter), "paperNMI")
	b.ReportMetric(eval.NMI(c.VenueArea, m.AssignAttr(1)), "venueNMI")
	b.ReportMetric(eval.NMI(c.AuthorArea, m.AssignAttr(0)), "authorNMI")
}

func BenchmarkE5NetClusRanking(b *testing.B) {
	var rows []experiments.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = experiments.E5NetClusRanking(1)
	}
	b.StopTimer()
	// Average coherence across clusters.
	var vc, tc float64
	for _, r := range rows {
		vc += r.Values[0]
		tc += r.Values[2]
	}
	b.ReportMetric(vc/float64(len(rows)), "meanTopVenueCoh")
	b.ReportMetric(tc/float64(len(rows)), "meanTopTermCoh")
}

// --- E6: PageRank / HITS ---------------------------------------------

func BenchmarkE6PageRankHITS(b *testing.B) {
	g := netgen.BarabasiAlbert(stats.NewRNG(1), 3000, 3)
	adj := g.Adjacency()
	b.Run("PageRank", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			iters = rank.PageRank(adj, rank.Options{Tolerance: 1e-10}).Iterations
		}
		b.ReportMetric(float64(iters), "iters")
	})
	b.Run("HITS", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			iters = rank.HITS(adj, rank.Options{Tolerance: 1e-10}).Iterations
		}
		b.ReportMetric(float64(iters), "iters")
	})
	b.Run("PersonalizedPageRank", func(b *testing.B) {
		restart := make([]float64, 3000)
		restart[7] = 1
		for i := 0; i < b.N; i++ {
			rank.Personalized(adj, restart, rank.Options{})
		}
	})
}

// --- E7: SimRank vs co-citation --------------------------------------

func BenchmarkE7SimRank(b *testing.B) {
	var rows []experiments.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = experiments.E7SimRank(1)
	}
	b.StopTimer()
	report(b, rows)
}

// --- E8: SCAN ---------------------------------------------------------

func BenchmarkE8SCAN(b *testing.B) {
	g, truthL := netgen.PlantedPartition(stats.NewRNG(1), 4, 60, 0.35, 0.01)
	b.Run("SCAN", func(b *testing.B) {
		var res scan.Result
		for i := 0; i < b.N; i++ {
			res = scan.Run(g, scan.Options{Epsilon: 0.5, Mu: 3})
		}
		var pt, pp []int
		for v := range truthL {
			if res.Cluster[v] >= 0 {
				pt = append(pt, truthL[v])
				pp = append(pp, res.Cluster[v])
			}
		}
		b.ReportMetric(eval.NMI(pt, pp), "memberNMI")
	})
	b.Run("Spectral", func(b *testing.B) {
		var nmi float64
		for i := 0; i < b.N; i++ {
			r := spectral.Cluster(stats.NewRNG(2), g, 4, spectral.Options{})
			nmi = eval.NMI(truthL, r.Assign)
		}
		b.ReportMetric(nmi, "NMI")
	})
}

// --- E9: network statistics ------------------------------------------

func BenchmarkE9NetStats(b *testing.B) {
	ba := netgen.BarabasiAlbert(stats.NewRNG(1), 4000, 3)
	b.Run("PowerLawFit", func(b *testing.B) {
		var alpha float64
		for i := 0; i < b.N; i++ {
			alpha, _ = netstat.PowerLawFit(ba, 6)
		}
		b.ReportMetric(alpha, "alpha")
	})
	ws := netgen.WattsStrogatz(stats.NewRNG(2), 2000, 8, 0.1)
	b.Run("ClusteringCoefficient", func(b *testing.B) {
		var cc float64
		for i := 0; i < b.N; i++ {
			cc = netstat.ClusteringCoefficient(ws)
		}
		b.ReportMetric(cc, "cc")
	})
	b.Run("AveragePathLength", func(b *testing.B) {
		var apl float64
		for i := 0; i < b.N; i++ {
			apl = netstat.AveragePathLength(ws, 50)
		}
		b.ReportMetric(apl, "apl")
	})
	b.Run("Betweenness", func(b *testing.B) {
		small := netgen.ErdosRenyi(stats.NewRNG(3), 300, 0.05)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			netstat.BetweennessCentrality(small)
		}
	})
	b.Run("Densification", func(b *testing.B) {
		var exp float64
		for i := 0; i < b.N; i++ {
			_, snaps := netgen.ForestFire(stats.NewRNG(4), 3000, 0.35, 0.3, 300)
			var nodes, edges []int
			for _, s := range snaps {
				nodes = append(nodes, s.Nodes)
				edges = append(edges, s.Edges)
			}
			exp = netstat.DensificationExponent(nodes, edges)
		}
		b.ReportMetric(exp, "exponent")
	})
}

// --- E10: TruthFinder -------------------------------------------------

func BenchmarkE10TruthFinder(b *testing.B) {
	s := truth.Synthesize(stats.NewRNG(1), truth.SynthConfig{})
	b.ResetTimer()
	var r truth.Result
	for i := 0; i < b.N; i++ {
		r = truth.Run(s.Net, truth.Options{})
	}
	b.StopTimer()
	b.ReportMetric(s.Accuracy(truth.PredictTruth(s.Net, r.Confidence)), "TFacc")
	b.ReportMetric(s.Accuracy(truth.MajorityVote(s.Net)), "MVacc")
	b.ReportMetric(float64(r.Iterations), "iters")
}

// --- E11: DISTINCT -----------------------------------------------------

func BenchmarkE11Distinct(b *testing.B) {
	var rows []experiments.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = experiments.E11Distinct(1)
	}
	b.StopTimer()
	report(b, rows)
}

// --- E12: PathSim ------------------------------------------------------

func BenchmarkE12PathSim(b *testing.B) {
	c := dblp.Generate(stats.NewRNG(1), dblp.Config{
		VenuesPerArea: 3, AuthorsPerArea: 60, TermsPerArea: 40,
		SharedTerms: 20, Papers: 800,
	})
	path := hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue, dblp.TypePaper, dblp.TypeAuthor}
	b.Run("BuildIndex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pathsim.NewIndex(c.Net, path)
		}
	})
	ix := pathsim.NewIndex(c.Net, path)
	b.Run("TopK", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.TopK(i%c.Net.Count(dblp.TypeAuthor), 10)
		}
	})
	b.StopTimer()
	report(b, experiments.E12PathSim(1))
}

// BenchmarkCommutingMatrix measures the meta-path engine against the
// pre-engine baseline on the APVPA chain of the default synthetic DBLP
// corpus — an asymmetric-size chain (≈800 authors × 2000 papers × 20
// venues) where association order dominates cost:
//
//   - naive:   strict left-to-right product of Relation matrices (what
//     hin.CommutingMatrix did before the engine existed);
//   - planned: the engine on a cold cache each iteration — DP-chosen
//     association order plus half-path Gram factorization;
//   - cached:  the engine on a warm cache — a repeated path query is a
//     canonical-key lookup.
func BenchmarkCommutingMatrix(b *testing.B) {
	c := dblp.Generate(stats.NewRNG(1), dblp.Config{})
	path := hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue, dblp.TypePaper, dblp.TypeAuthor}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := c.Net.Relation(path[0], path[1])
			for j := 1; j < len(path)-1; j++ {
				m = m.Mul(c.Net.Relation(path[j], path[j+1]))
			}
		}
	})
	b.Run("planned", func(b *testing.B) {
		eng := c.Net.PathEngine()
		for i := 0; i < b.N; i++ {
			eng.Reset()
			if _, err := c.Net.CommutingMatrixE(path); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		if _, err := c.Net.CommutingMatrixE(path); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Net.CommutingMatrixE(path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E13: CrossMine ----------------------------------------------------

func BenchmarkE13CrossMine(b *testing.B) {
	s := relational.SyntheticCustomers(stats.NewRNG(1), relational.SynthConfig{Customers: 600})
	var train, test []int
	for i := 0; i < 600; i++ {
		if i < 360 {
			train = append(train, i)
		} else {
			test = append(test, i)
		}
	}
	var m *crossmine.Model
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = crossmine.Train(s.DB, "customer", s.Class, train, crossmine.Options{})
	}
	b.StopTimer()
	b.ReportMetric(m.Accuracy(s.Class, test), "accuracy")
	b.ReportMetric(float64(len(m.Rules)), "rules")
	st := crossmine.TrainSingleTable(s.DB, "customer", s.Class, train)
	b.ReportMetric(st.Accuracy(s.DB, "customer", s.Class, test), "baseline1R")
}

// --- E14: CrossClus ----------------------------------------------------

func BenchmarkE14CrossClus(b *testing.B) {
	var rows []experiments.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = experiments.E14CrossClus(1)
	}
	b.StopTimer()
	report(b, rows)
}

// --- E15: OLAP ---------------------------------------------------------

func BenchmarkE15OLAP(b *testing.B) {
	var rows []experiments.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = experiments.E15OLAP(1)
	}
	b.StopTimer()
	report(b, rows)
}

// --- E16: heterogeneous classification ---------------------------------

func BenchmarkE16Classify(b *testing.B) {
	c := flickr.Generate(stats.NewRNG(1), flickr.Config{Photos: 800})
	rng := stats.NewRNG(2)
	seeds := classify.SampleSeeds(rng, flickr.TypePhoto, c.PhotoCat, c.Categories(), 12)
	var scores classify.Scores
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores = classify.Propagate(c.Net, c.Categories(), seeds, classify.Options{})
	}
	b.StopTimer()
	seeded := map[int]bool{}
	for _, s := range seeds {
		seeded[s.ID] = true
	}
	pred := classify.Labels(scores[flickr.TypePhoto])
	hit, total := 0, 0
	for i, cat := range c.PhotoCat {
		if seeded[i] {
			continue
		}
		total++
		if pred[i] == cat {
			hit++
		}
	}
	b.ReportMetric(float64(hit)/float64(total), "photoAcc")
}

// --- Ablations ----------------------------------------------------------

func BenchmarkAblationLinkClusVsSimRank(b *testing.B) {
	cfg := netgen.BiTypedConfig{
		K: 3, Nx: []int{15, 15, 15}, Ny: []int{120, 120, 120},
		Links: []int{600, 600, 600}, Cross: 0.15, Skew: 0.9,
	}
	res := netgen.BiTyped(stats.NewRNG(1), cfg)
	w := res.Net.Relation(res.X, res.Y)
	b.Run("LinkClus", func(b *testing.B) {
		var m *linkclus.Model
		for i := 0; i < b.N; i++ {
			m = linkclus.Fit(stats.NewRNG(2), w, linkclus.Options{})
		}
		assign := m.Cluster(stats.NewRNG(3), 3)
		b.ReportMetric(eval.NMI(res.TruthX, assign), "NMI")
	})
	b.Run("SimRank", func(b *testing.B) {
		var sx [][]float64
		for i := 0; i < b.N; i++ {
			sx = simrank.Bipartite(w, simrank.Options{MaxIter: 8}).SX
		}
		a := kmeans.Cluster(stats.NewRNG(4), sx, 3, kmeans.Options{}).Assign
		b.ReportMetric(eval.NMI(res.TruthX, a), "NMI")
	})
}

func BenchmarkAblationRankClusSmoothing(b *testing.B) {
	for _, lam := range []float64{0.02, 0.1, 0.3, 0.6} {
		b.Run(fmt.Sprintf("lambda=%.2f", lam), func(b *testing.B) {
			cfg := netgen.MediumBiTyped()
			cfg.Cross = 0.2
			res := netgen.BiTyped(stats.NewRNG(1), cfg)
			bip := res.Net.Bipartite(res.X, res.Y)
			var nmi float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := core.Run(stats.NewRNG(2), bip, core.Options{K: 3, Smoothing: lam, Restarts: 2})
				nmi = eval.NMI(res.TruthX, m.Assign)
			}
			b.ReportMetric(nmi, "NMI")
		})
	}
}

func BenchmarkAblationSCANEpsilon(b *testing.B) {
	g, truthL := netgen.PlantedPartition(stats.NewRNG(1), 3, 50, 0.4, 0.02)
	for _, eps := range []float64{0.3, 0.5, 0.7} {
		b.Run(fmt.Sprintf("eps=%.1f", eps), func(b *testing.B) {
			var res scan.Result
			for i := 0; i < b.N; i++ {
				res = scan.Run(g, scan.Options{Epsilon: eps, Mu: 3})
			}
			var pt, pp []int
			for v := range truthL {
				if res.Cluster[v] >= 0 {
					pt = append(pt, truthL[v])
					pp = append(pp, res.Cluster[v])
				}
			}
			if len(pt) > 0 {
				b.ReportMetric(eval.NMI(pt, pp), "memberNMI")
			}
			b.ReportMetric(float64(res.Clusters), "clusters")
		})
	}
}

// --- Sparse kernel engine: parallel vs serial -------------------------
//
// The BenchmarkMulVec family measures every parallel kernel against its
// serial baseline (sparse.Parallelism(1)) at three scales, the largest
// above 1M stored nonzeros. On a multi-core host the parallel rows
// should clear ≥2x at the large scale; with GOMAXPROCS=1 the two modes
// coincide (the engine falls back to the serial path).
//
// Note the small-10k "parallel" rows deliberately measure the engine's
// production dispatch decision, which falls back to the serial loop
// below the default SerialThreshold — equality with the serial rows at
// that scale IS the "no regression on small matrices" check, not a
// measurement of the parallel code path.

type kernelScale struct {
	name string
	n    int // square dimension
	deg  int // nonzeros per row
}

var kernelScales = []kernelScale{
	{"small-10k", 2_000, 5},
	{"medium-100k", 20_000, 5},
	{"large-1M", 131_072, 8},
}

func kernelMatrix(sc kernelScale) *sparse.Matrix {
	rng := rand.New(rand.NewSource(int64(sc.n)))
	entries := make([]sparse.Coord, 0, sc.n*sc.deg)
	for r := 0; r < sc.n; r++ {
		for j := 0; j < sc.deg; j++ {
			entries = append(entries, sparse.Coord{Row: r, Col: rng.Intn(sc.n), Val: rng.Float64() + 0.1})
		}
	}
	return sparse.NewFromCoords(sc.n, sc.n, entries)
}

func denseVec(n int) []float64 {
	rng := rand.New(rand.NewSource(7))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// benchModes runs fn once per execution mode with the parallelism knob
// set accordingly and restored afterwards.
func benchModes(b *testing.B, fn func(b *testing.B)) {
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(mode.name, func(b *testing.B) {
			old := sparse.Parallelism(0)
			sparse.Parallelism(mode.workers)
			defer sparse.Parallelism(old)
			fn(b)
		})
	}
}

func BenchmarkMulVec(b *testing.B) {
	for _, sc := range kernelScales {
		m := kernelMatrix(sc)
		x := denseVec(sc.n)
		y := make([]float64, sc.n)
		b.Run(sc.name, func(b *testing.B) {
			benchModes(b, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.MulVec(x, y)
				}
			})
		})
	}
}

func BenchmarkMulVecT(b *testing.B) {
	for _, sc := range kernelScales {
		m := kernelMatrix(sc)
		x := denseVec(sc.n)
		y := make([]float64, sc.n)
		b.Run(sc.name, func(b *testing.B) {
			benchModes(b, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.MulVecT(x, y)
				}
			})
		})
	}
}

func BenchmarkMulSparse(b *testing.B) {
	for _, sc := range kernelScales {
		m := kernelMatrix(sc)
		b.Run(sc.name, func(b *testing.B) {
			benchModes(b, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.Mul(m)
				}
			})
		})
	}
}

func BenchmarkTranspose(b *testing.B) {
	for _, sc := range kernelScales {
		m := kernelMatrix(sc)
		b.Run(sc.name, func(b *testing.B) {
			benchModes(b, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.Transpose()
				}
			})
		})
	}
}

func BenchmarkRowNormalized(b *testing.B) {
	for _, sc := range kernelScales {
		m := kernelMatrix(sc)
		b.Run(sc.name, func(b *testing.B) {
			benchModes(b, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.RowNormalized()
				}
			})
		})
	}
}

// --- top-k selection: heap select vs row population ------------------

// topKIndexes builds the two row-shape regimes the heap selection must
// win on: the APVPA index (venue-mediated — authors of an area form a
// near-clique, so rows are dense) and the APA co-author index (rows
// hold only direct collaborators, so they are sparse).
func topKIndexes(b *testing.B) (dense, sparseIx *pathsim.Index) {
	b.Helper()
	c := dblp.Generate(stats.NewRNG(1), dblp.Config{})
	dense = pathsim.NewIndex(c.Net, hin.MetaPath{
		dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue, dblp.TypePaper, dblp.TypeAuthor,
	})
	sparseIx = pathsim.NewIndex(c.Net, hin.MetaPath{
		dblp.TypeAuthor, dblp.TypePaper, dblp.TypeAuthor,
	})
	return dense, sparseIx
}

// BenchmarkTopK measures single-query top-k selection at k well below
// and near typical row populations, on dense and sparse rows. The heap
// path is O(m·log k) per population-m row where the old full sort paid
// O(m·log m) plus a candidate buffer per call.
func BenchmarkTopK(b *testing.B) {
	dense, sparseIx := topKIndexes(b)
	for _, tc := range []struct {
		name string
		ix   *pathsim.Index
	}{{"dense-rows", dense}, {"sparse-rows", sparseIx}} {
		n := tc.ix.Dim()
		for _, k := range []int{10, 100} {
			b.Run(fmt.Sprintf("%s/k=%d", tc.name, k), func(b *testing.B) {
				b.ReportMetric(float64(tc.ix.NNZ())/float64(n), "avgRowNNZ")
				for i := 0; i < b.N; i++ {
					tc.ix.TopK(i%n, k)
				}
			})
		}
	}
}

// BenchmarkBatchTopK measures the bulk entry point (one query per
// author): all results are carved from a single arena, so allocs/op
// stays O(1) per batch regardless of batch size or row population.
func BenchmarkBatchTopK(b *testing.B) {
	dense, sparseIx := topKIndexes(b)
	for _, tc := range []struct {
		name string
		ix   *pathsim.Index
	}{{"dense-rows", dense}, {"sparse-rows", sparseIx}} {
		queries := make([]int, tc.ix.Dim())
		for i := range queries {
			queries[i] = i
		}
		for _, k := range []int{10, 100} {
			b.Run(fmt.Sprintf("%s/k=%d", tc.name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tc.ix.BatchTopK(queries, k)
				}
			})
		}
	}
}

// BenchmarkPageRankFused measures the fused PageRank path: "full" runs
// the whole call (RowInvSums once, no row-stochastic matrix copy);
// "iteration" isolates one steady-state power iteration, which with the
// fused MulVecTNorm kernel allocates nothing.
func BenchmarkPageRankFused(b *testing.B) {
	g := netgen.BarabasiAlbert(stats.NewRNG(1), 3000, 3)
	adj := g.Adjacency()
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rank.PageRank(adj, rank.Options{})
		}
	})
	b.Run("iteration", func(b *testing.B) {
		n := adj.Rows()
		inv := adj.RowInvSums()
		x := make([]float64, n)
		next := make([]float64, n)
		for i := range x {
			x[i] = 1 / float64(n)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			adj.MulVecTNorm(x, inv, next)
			x, next = next, x
		}
	})
}

// BenchmarkPathSimBatchTopK measures bulk similarity serving through
// the parallel engine (one TopK per author over the APVPA index).
func BenchmarkPathSimBatchTopK(b *testing.B) {
	c := dblp.Generate(stats.NewRNG(1), dblp.Config{
		VenuesPerArea: 3, AuthorsPerArea: 60, TermsPerArea: 40,
		SharedTerms: 20, Papers: 800,
	})
	path := hin.MetaPath{dblp.TypeAuthor, dblp.TypePaper, dblp.TypeVenue, dblp.TypePaper, dblp.TypeAuthor}
	ix := pathsim.NewIndex(c.Net, path)
	// 10 query rounds over every author push the batch's work estimate
	// past the serial threshold, so the parallel mode actually
	// exercises the parallel fan-out rather than the serial fallback.
	na := c.Net.Count(dblp.TypeAuthor)
	queries := make([]int, 10*na)
	for i := range queries {
		queries[i] = i % na
	}
	benchModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.BatchTopK(queries, 10)
		}
	})
}

// --- serving layer: cold vs cached vs batched top-k ------------------

// newBenchServer builds a serving stack over an 800-paper corpus.
// cacheCap < 0 disables the result cache so every query pays the full
// index scan; window > 0 turns on the micro-batching wait.
func newBenchServer(b *testing.B, cacheCap int, window time.Duration) *serve.Server {
	b.Helper()
	srv := serve.New(serve.Options{
		Seed:          1,
		CacheCapacity: cacheCap,
		BatchWindow:   window,
		Models: serve.ModelConfig{Corpus: dblp.Config{
			VenuesPerArea: 3, AuthorsPerArea: 60, TermsPerArea: 40,
			SharedTerms: 20, Papers: 800,
		}},
	})
	b.Cleanup(func() { _ = srv.Shutdown(context.Background()) })
	return srv
}

// BenchmarkServeTopK serves the same hot query stream (an 8-id working
// set, k=10) through the three serving paths: uncached sequential
// singles (every query pays the full index scan, one batch of one at a
// time), cache hits, and concurrent clients whose queries the
// micro-batching queue coalesces — duplicates in a batch are computed
// once (singleflight) and wide batches fan out over the sparse pool on
// multi-core hosts. Cached and batched must beat uncached.
func BenchmarkServeTopK(b *testing.B) {
	const hotSet = 8
	ctx := context.Background()
	b.Run("uncached", func(b *testing.B) {
		srv := newBenchServer(b, -1, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := srv.TopK(ctx, i%hotSet, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		srv := newBenchServer(b, 8192, 0)
		for x := 0; x < hotSet; x++ { // warm the working set
			if _, _, err := srv.TopK(ctx, x, 10); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := srv.TopK(ctx, i%hotSet, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		srv := newBenchServer(b, -1, 0)
		b.SetParallelism(32) // 32×GOMAXPROCS concurrent clients feed the queue
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := rand.Int()
			for pb.Next() {
				if _, _, err := srv.TopK(ctx, i%hotSet, 10); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
}

// --- Sharded scatter-gather tier -------------------------------------

// BenchmarkClusterTopK measures the scatter-gather top-k path through
// the in-process sharded coordinator at 1, 2, and 4 shards on the same
// 800-paper corpus BenchmarkServeTopK uses. Each query scatters to all
// shards (each scans only its nnz-balanced column slice of the APVPA
// index) and the coordinator merges the partials; the single-shard rows
// are the scatter-gather overhead baseline — one shard scans the whole
// index, so any gap versus multi-shard rows is pure fan-out/merge cost.
func BenchmarkClusterTopK(b *testing.B) {
	ctx := context.Background()
	spec := cluster.ModelSpec{Corpus: dblp.Config{
		VenuesPerArea: 3, AuthorsPerArea: 60, TermsPerArea: 40,
		SharedTerms: 20, Papers: 800,
	}}
	// One full index up front supplies the row-nnz weights the
	// nnz-balanced partitioner needs (the same weights `hinet serve
	// -shards N` reads off the store's snapshot).
	full := cluster.BuildModels(1, spec)
	path := cluster.PathAPVPA
	dim := full.PathSim.Dim()
	for _, shards := range []int{1, 2, 4} {
		part := cluster.PartitionByNNZ(string(path[0]), dim, shards, full.PathSim.M.RowNNZ)
		coord, err := cluster.NewLocalCluster(shards, part, spec, &cluster.RoundRobin{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		epoch := coord.Epoch()
		for _, k := range []int{10, 100} {
			b.Run(fmt.Sprintf("shards=%d/k=%d", shards, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := coord.TopKAt(ctx, epoch, path.String(), i%dim, k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Incremental ingestion & delta rebuild ---------------------------

// BenchmarkDeltaApply measures the copy-on-write CSR delta merge
// against the from-scratch rebuild it replaces: a 1% coordinate batch
// merged into the large kernel matrix (≈1M nnz) versus rebuilding the
// matrix from its full coordinate list. The acceptance target for the
// ingestion subsystem is delta ≥ 5× faster than rebuild.
func BenchmarkDeltaApply(b *testing.B) {
	sc := kernelScales[2] // large-1M
	rng := rand.New(rand.NewSource(int64(sc.n)))
	coords := make([]sparse.Coord, 0, sc.n*sc.deg)
	for r := 0; r < sc.n; r++ {
		for j := 0; j < sc.deg; j++ {
			coords = append(coords, sparse.Coord{Row: r, Col: rng.Intn(sc.n), Val: float64(1 + rng.Intn(4))})
		}
	}
	m := sparse.NewFromCoords(sc.n, sc.n, coords)
	delta := make([]sparse.Coord, len(coords)/100)
	for i := range delta {
		if i%2 == 0 {
			// Half the batch perturbs existing entries.
			e := coords[rng.Intn(len(coords))]
			delta[i] = sparse.Coord{Row: e.Row, Col: e.Col, Val: 1}
		} else {
			delta[i] = sparse.Coord{Row: rng.Intn(sc.n), Col: rng.Intn(sc.n), Val: 1}
		}
	}
	all := append(append([]sparse.Coord(nil), coords...), delta...)
	b.Run("delta-1pct", func(b *testing.B) {
		b.ReportMetric(float64(len(delta)), "delta-coords")
		for i := 0; i < b.N; i++ {
			m.ApplyDelta(delta)
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.NewFromCoords(sc.n, sc.n, all)
		}
	})
}

// BenchmarkIngest measures the serving layer's two paths to a new
// generation on the default DBLP-scale corpus: Store.Ingest of a 1%
// paper-arrival batch (copy-on-write clone, merged relations, surviving
// meta-path cache, warm-started PageRank, carried-over cluster models)
// versus the full Store.Rebuild that POST /v1/rebuild runs.
func BenchmarkIngest(b *testing.B) {
	store := serve.NewStore(serve.ModelConfig{})
	store.Rebuild(1)
	papers := store.Current().Corpus.Net.Count(dblp.TypePaper)
	batch := ingest.SamplePapers(store.Current().Corpus, stats.NewRNG(77), papers/100)
	b.Run(fmt.Sprintf("delta-%dpapers", papers/100), func(b *testing.B) {
		b.ReportMetric(float64(len(batch)), "deltas")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := store.Ingest(batch, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			store.Rebuild(int64(i + 2))
		}
	})
}

// --- Load generation -------------------------------------------------

// BenchmarkLoadgenGenerate measures schedule generation throughput: the
// harness must be able to synthesize schedules orders of magnitude
// faster than it plays them, or the generator (not the server) becomes
// the bottleneck of a capacity sweep.
func BenchmarkLoadgenGenerate(b *testing.B) {
	corpus := dblp.Generate(stats.NewRNG(1), dblp.Config{})
	ks, err := loadgen.NewKeyspace(corpus, []string{"", "A-P-A"})
	if err != nil {
		b.Fatal(err)
	}
	cfg := loadgen.Config{Seed: 42, Rate: 1000, Duration: 10 * time.Second}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := loadgen.Generate(cfg, ks)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(tr.Events)), "events")
		}
	}
}
