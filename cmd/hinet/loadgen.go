// hinet loadgen: the deterministic load-generation and capacity-
// planning front end over internal/loadgen. Modes, composable
// left-to-right:
//
//	(default)            generate a schedule and run it against a server
//	-schedule-only FILE  write the generated schedule as a JSONL trace and exit
//	-record FILE         run sequentially, record status+digests into FILE
//	-replay FILE         replay a recorded trace (sequential, digest-checked)
//	-sweep               stepped-rate saturation sweep; report the SLO knee
//
// With no -server URL the harness boots an in-process server from the
// same -seed/-papers, which is also how the record/replay golden test
// runs in CI. Reports land in -out as JSON (schema hinet-serve/1).
package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"hinet/internal/cluster"
	"hinet/internal/dblp"
	"hinet/internal/loadgen"
	"hinet/internal/serve"
	"hinet/internal/stats"
)

// loadgenFlags carries the loadgen-specific flag values out of main's
// shared FlagSet.
type loadgenFlags struct {
	seed            int64
	k               int
	papers          int
	workers         int
	cacheCap        int
	window          time.Duration
	server          string
	arrival         string
	rate            float64
	duration        time.Duration
	concurrency     int
	requests        int
	mix             string
	zipf            float64
	paths           string
	record          string
	replay          string
	out             string
	sweep           bool
	sweepSteps      int
	stepDuration    time.Duration
	sloP99          time.Duration
	sloErrors       float64
	strict          bool
	scheduleOnly    string
	honorRetryAfter bool
	shards          int
	shardPolicy     string
}

func runLoadgen(f loadgenFlags) {
	// Same pre-flight as runServe: serve.New panics on an unknown
	// routing policy, so a bad -shard-policy must die as a CLI error
	// before the in-process server boots.
	if _, err := cluster.NewPolicy(f.shardPolicy); err != nil {
		fmt.Fprintf(os.Stderr, "hinet loadgen: %v\n", err)
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "hinet loadgen: %v\n", err)
		os.Exit(1)
	}

	cfg := loadgen.Config{
		Seed:     f.seed,
		Arrival:  f.arrival,
		Rate:     f.rate,
		Duration: f.duration,
		Requests: f.requests,
		ZipfS:    f.zipf,
	}
	if f.mix != "" {
		m, err := loadgen.ParseMix(f.mix)
		if err != nil {
			fail(err)
		}
		cfg.Mix = m
	}
	if f.paths != "" {
		for _, p := range strings.Split(f.paths, ",") {
			cfg.Paths = append(cfg.Paths, strings.TrimSpace(p))
		}
	}

	// The keyspace comes from a locally generated same-seed corpus — the
	// `hinet ingest` convention: object names resolve identically on any
	// server built from the same seed and size.
	dcfg := dblp.Config{}
	if f.papers > 0 {
		dcfg.Papers = f.papers
	}

	var tr *loadgen.Trace
	if f.replay != "" {
		rf, err := os.Open(f.replay)
		if err != nil {
			fail(err)
		}
		tr, err = loadgen.ParseTrace(rf)
		rf.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("replaying %d events from %s\n", len(tr.Events), f.replay)
	} else {
		ks, err := loadgen.NewKeyspace(dblp.Generate(stats.NewRNG(f.seed), dcfg), cfg.Paths)
		if err != nil {
			fail(err)
		}
		tr, err = loadgen.Generate(cfg, ks)
		if err != nil {
			fail(err)
		}
		if f.scheduleOnly != "" {
			if err := writeTraceFile(f.scheduleOnly, tr); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %d scheduled events to %s\n", len(tr.Events), f.scheduleOnly)
			return
		}
	}

	// Target: remote URL, or an in-process server from the same seed.
	var target loadgen.Target
	if f.server != "" {
		target = loadgen.NewTarget(f.server)
	} else {
		opts := serve.Options{
			Addr:          "127.0.0.1:0",
			Seed:          f.seed,
			Models:        serve.ModelConfig{K: f.k},
			CacheCapacity: f.cacheCap,
			BatchWindow:   f.window,
			Workers:       f.workers,
			Shards:        f.shards,
			ShardPolicy:   f.shardPolicy,
		}
		if f.papers > 0 {
			opts.Models.Corpus.Papers = f.papers
		}
		if f.shards > 1 {
			fmt.Printf("booting in-process server (seed %d, %d shards)...\n", f.seed, f.shards)
		} else {
			fmt.Printf("booting in-process server (seed %d)...\n", f.seed)
		}
		s := serve.New(opts)
		bound, err := s.Start()
		if err != nil {
			fail(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Shutdown(ctx)
		}()
		target = loadgen.NewTarget("http://" + bound)
	}

	slo := loadgen.DefaultSLO()
	if f.sloP99 > 0 {
		slo.P99 = f.sloP99
	}
	if f.sloErrors > 0 {
		slo.MaxErrorRate = f.sloErrors
	}

	ropts := loadgen.RunOptions{
		Concurrency:     f.concurrency,
		Record:          f.record != "",
		CheckDigests:    f.replay != "",
		HonorRetryAfter: f.honorRetryAfter,
	}
	if f.arrival == loadgen.ArrivalClosed && ropts.Concurrency == 0 {
		ropts.Concurrency = 8
	}
	if f.replay != "" && ropts.Concurrency == 0 {
		// Replays are sequential by default: the recorded digests assume
		// the recorded ingest/query interleaving.
		ropts.Concurrency = 1
	}

	res, err := loadgen.Run(target, tr.Events, ropts)
	if err != nil {
		fail(err)
	}

	if f.record != "" {
		tr.Header.Concurrency = 1
		if err := writeTraceFile(f.record, tr); err != nil {
			fail(err)
		}
		fmt.Printf("recorded %d events (status+digest) to %s\n", len(tr.Events), f.record)
	}

	report := loadgen.BuildReport(cfg, res, slo)

	if f.sweep {
		fmt.Printf("saturation sweep: %d steps of %s, doubling from %g rps\n",
			f.sweepSteps, f.stepDuration, cfg.Rate)
		sw, err := loadgen.RunSweep(target, cfg, mustKeyspace(f, dcfg, cfg.Paths), slo,
			f.sweepSteps, f.stepDuration, func(st loadgen.SweepStep) {
				verdict := "pass"
				if !st.Pass {
					verdict = st.Violation
				}
				fmt.Printf("  step %8.0f rps target: achieved %8.1f rps  p99 %8s  err %5.2f%%  %s\n",
					st.TargetRPS, st.AchievedRPS, time.Duration(st.P99US)*time.Microsecond,
					st.ErrorRate*100, verdict)
			})
		if err != nil {
			fail(err)
		}
		report.Sweep = sw
		if sw.KneeRPS > 0 {
			fmt.Printf("knee at %g rps offered; capacity %.1f rps within SLO\n", sw.KneeRPS, sw.CapacityRPS)
		} else {
			fmt.Printf("no knee found up to the last step; capacity >= %.1f rps\n", sw.CapacityRPS)
		}
	}

	printSummary(res, report)

	if f.out != "" {
		of, err := os.Create(f.out)
		if err != nil {
			fail(err)
		}
		if err := report.WriteJSON(of); err != nil {
			fail(err)
		}
		if err := of.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("report written to %s\n", f.out)
	}

	if f.strict {
		switch {
		case res.Requests == 0:
			fail(fmt.Errorf("strict: no requests completed"))
		case res.Errors > 0:
			fail(fmt.Errorf("strict: %d unexpected errors (first: %s)", res.Errors, firstDetail(res)))
		case res.Mismatches > 0:
			fail(fmt.Errorf("strict: %d replay mismatches (first: %s)", res.Mismatches, firstDetail(res)))
		}
	}
}

func mustKeyspace(f loadgenFlags, dcfg dblp.Config, paths []string) *loadgen.Keyspace {
	ks, err := loadgen.NewKeyspace(dblp.Generate(stats.NewRNG(f.seed), dcfg), paths)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hinet loadgen: %v\n", err)
		os.Exit(1)
	}
	return ks
}

func firstDetail(res *loadgen.RunResult) string {
	if len(res.MismatchDetails) > 0 {
		return res.MismatchDetails[0]
	}
	return "no detail captured"
}

func writeTraceFile(path string, tr *loadgen.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := loadgen.WriteTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printSummary(res *loadgen.RunResult, report *loadgen.Report) {
	fmt.Printf("%d requests in %s: %.1f rps, %d errors (%.2f%%), %d shed, cache hit %.0f%%\n",
		res.Requests, res.Duration.Round(time.Millisecond), res.ThroughputRPS(),
		res.Errors, res.ErrorRate()*100, res.Shed, report.CacheHit*100)
	if res.ShedServer > 0 || res.Timeouts > 0 || res.Degraded > 0 {
		fmt.Printf("overload: %d shed by server (503), %d deadline-exceeded (504), %d degraded (brownout)",
			res.ShedServer, res.Timeouts, res.Degraded)
		if res.Admitted.Count() > 0 {
			fmt.Printf("; admitted p99 %s", res.Admitted.Quantile(0.99).Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Printf("%-10s %9s %9s %9s %9s %9s %9s\n", "cohort", "requests", "p50", "p90", "p99", "p999", "max")
	for _, e := range report.Endpoints {
		fmt.Printf("%-10s %9d %9s %9s %9s %9s %9s\n", e.Cohort, e.Requests,
			time.Duration(e.P50US)*time.Microsecond, time.Duration(e.P90US)*time.Microsecond,
			time.Duration(e.P99US)*time.Microsecond, time.Duration(e.P999US)*time.Microsecond,
			time.Duration(e.MaxUS)*time.Microsecond)
	}
	fmt.Printf("SLO verdict: %s\n", report.Verdict)
	for _, d := range res.MismatchDetails {
		fmt.Printf("  detail: %s\n", d)
	}
}
